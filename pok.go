// Package pok (Partial Operand Knowledge) is a library-level reproduction
// of Mestan & Lipasti, "Exploiting Partial Operand Knowledge", ICPP 2003.
//
// It provides, entirely from scratch and on the standard library only:
//
//   - a PISA-like 32-bit MIPS instruction set with real binary encodings,
//     an assembler and a functional emulator (internal/isa, asm, emu);
//   - the paper's machine substrates: a 64k gshare + BTB + RAS predictor,
//     a two-level set-associative cache hierarchy with partial tag
//     matching and MRU way prediction, and a unified load/store queue
//     with bit-serial early disambiguation (internal/bpred, cache, lsq);
//   - a cycle-level, 4-wide, 15-stage out-of-order timing model whose
//     execution stage can be bit-sliced by 2 or 4, with the paper's five
//     partial-operand techniques as independent toggles (internal/core);
//     scheduling is event-driven (a wakeup wheel plus pooled window
//     entries), with the original full-window scan preserved behind
//     Config.LegacyScheduler and proven cycle-exact against it;
//   - eleven synthetic stand-ins for the paper's SPECint benchmarks
//     (internal/workload), each verified against a Go reference model;
//   - drivers that regenerate every table and figure of the paper's
//     evaluation (internal/exp).
//
// The exported API of this package is a thin facade over those layers:
// assemble programs, pick a machine configuration, simulate, and run the
// paper's experiments.
package pok

import (
	"pok/internal/asm"
	"pok/internal/cc"
	"pok/internal/check"
	"pok/internal/check/inject"
	"pok/internal/check/reduce"
	"pok/internal/core"
	"pok/internal/emu"
	"pok/internal/exp"
	"pok/internal/gen"
	"pok/internal/metrics"
	"pok/internal/profile"
	"pok/internal/serve"
	"pok/internal/sig"
	"pok/internal/soak"
	"pok/internal/telemetry"
	"pok/internal/workload"
)

// Re-exported machine-model types.
type (
	// Config is a timing-model machine configuration.
	Config = core.Config
	// Result holds the statistics of one timing simulation.
	Result = core.Result
	// Program is a loadable binary image produced by the assembler.
	Program = emu.Program
	// Workload is one of the paper's benchmark stand-ins.
	Workload = workload.Workload
	// Options selects benchmarks and instruction budgets for experiments.
	Options = exp.Options
)

// Machine configurations (paper Table 2 / Figure 10).
var (
	// BaseConfig is the ideal machine with a single-cycle execution stage.
	BaseConfig = core.BaseConfig
	// SimplePipelined pipelines the execution stage into n slices without
	// exposing partial operands (the paper's naive baseline).
	SimplePipelined = core.SimplePipelined
	// BitSliced enables every partial-operand technique on an n-slice
	// datapath (the paper's proposed microarchitecture).
	BitSliced = core.BitSliced
	// ConfigLadder returns the cumulative technique ladder used by
	// Figures 11 and 12.
	ConfigLadder = exp.ConfigLadder
)

// Assemble translates MIPS-style assembly source into a runnable program.
func Assemble(source string) (*Program, error) { return asm.Assemble(source) }

// CompileC compiles MiniC source (see internal/cc) into a runnable
// program — the compiled-language path the paper's SPEC benchmarks took.
func CompileC(source string) (*Program, error) { return cc.CompileProgram(source) }

// Run simulates prog under cfg for up to maxInsts committed instructions
// (0 = to completion) and returns the timing statistics.
func Run(prog *Program, cfg Config, maxInsts uint64) (*Result, error) {
	return core.Run(prog, cfg, maxInsts)
}

// RunWarm is Run with a functional fast-forward of warmup instructions
// before measurement (the paper fast-forwards 1B instructions).
func RunWarm(prog *Program, cfg Config, warmup, maxInsts uint64) (*Result, error) {
	return core.RunWarm(prog, cfg, warmup, maxInsts)
}

// RunSampled performs SMARTS-style sampled simulation: nSamples detailed
// windows of sampleLen instructions separated by functionally-warmed
// skips of skipLen instructions. The result's IPC estimates the full-run
// IPC at a fraction of the cost.
func RunSampled(prog *Program, cfg Config, warmup, sampleLen, skipLen uint64,
	nSamples int) (*Result, error) {
	return core.RunSampled(prog, cfg, warmup, sampleLen, skipLen, nSamples)
}

// Execute runs prog functionally (no timing) for up to maxInsts
// instructions and returns its printed output.
func Execute(prog *Program, maxInsts uint64) (string, error) {
	e := emu.New(prog)
	if _, err := e.Run(maxInsts, nil); err != nil {
		return e.Output(), err
	}
	return e.Output(), nil
}

// Benchmarks returns the names of the paper's Table 1 benchmark suite.
func Benchmarks() []string { return workload.Names() }

// GetWorkload returns the named benchmark stand-in.
func GetWorkload(name string) (*Workload, error) { return workload.Get(name) }

// SimulateBenchmark runs the named benchmark under cfg with its standard
// fast-forward and the given instruction budget.
func SimulateBenchmark(name string, cfg Config, maxInsts uint64) (*Result, error) {
	w, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		return nil, err
	}
	r, err := core.RunWarm(prog, cfg, w.FastForward, maxInsts)
	if err != nil {
		return nil, err
	}
	r.Benchmark = name
	return r, nil
}

// Experiment drivers (one per paper table/figure) and their renderers.
var (
	Table1          = exp.Table1
	RenderTable1    = exp.RenderTable1
	EmuBench        = exp.EmuBench
	RenderEmuBench  = exp.RenderEmuBench
	CkptBench       = exp.CkptBench
	RenderCkptBench = exp.RenderCkptBench
	Figure2         = exp.Figure2
	RenderFigure2   = exp.RenderFigure2
	Figure4         = exp.Figure4
	RenderFigure4   = exp.RenderFigure4
	Figure6         = exp.Figure6
	RenderFigure6   = exp.RenderFigure6
	Figure11        = exp.Figure11
	RenderFigure11  = exp.RenderFigure11
	Figure12        = exp.Figure12
	RenderFigure12  = exp.RenderFigure12
	// CPIStackReport runs the technique ladder with the profiler
	// attached: the per-technique cycle-attribution companion to
	// Figures 11/12.
	CPIStackReport       = exp.CPIStackReport
	RenderCPIStackReport = exp.RenderCPIStackReport
)

// Ablation studies beyond the paper's figures.
var (
	// NarrowWidthAblation measures the paper's narrow-width future-work
	// extension on top of the bit-sliced machine.
	NarrowWidthAblation = exp.NarrowWidthAblation
	// PredictorAblation swaps gshare for bimodal on the base machine.
	PredictorAblation = exp.PredictorAblation
	// WrongPathAblation measures the effect of simulating wrong-path
	// instructions on the bit-sliced machine.
	WrongPathAblation = exp.WrongPathAblation
	// CompiledSuite times the MiniC-compiled workloads on the headline
	// machines, checking the paper shape on compiler output.
	CompiledSuite       = exp.CompiledSuite
	RenderCompiledSuite = exp.RenderCompiledSuite
	// WindowSweep varies the RUU size on the bit-sliced machine.
	WindowSweep = exp.WindowSweep
	// LSQSweep varies the load/store queue size on the bit-sliced machine.
	LSQSweep          = exp.LSQSweep
	RenderAblation    = exp.RenderAblation
	RenderWindowSweep = exp.RenderWindowSweep
	RenderLSQSweep    = exp.RenderLSQSweep
)

// ASCII figure sketches accompanying the numeric tables.
var (
	PlotFigure6  = exp.PlotFigure6
	PlotFigure11 = exp.PlotFigure11
	PlotFigure12 = exp.PlotFigure12
)

// Telemetry: the structured observability layer of internal/telemetry.
// Attach a recorder via Config.Collector (or Config.NewRecorder) to
// capture the per-pipeline-stage event stream and occupancy
// histograms; the aggregated summary lands in Result.Telemetry.
type (
	// TelemetryCollector receives structured pipeline events.
	TelemetryCollector = telemetry.Collector
	// TelemetryRecorder is the standard ring-buffered collector.
	TelemetryRecorder = telemetry.Recorder
	// TelemetrySummary is the aggregated telemetry of one run.
	TelemetrySummary = telemetry.Summary
	// TelemetryEvent is one fixed-size structured pipeline event.
	TelemetryEvent = telemetry.Event
	// TimelineOptions bounds the pok-trace wavefront rendering.
	TimelineOptions = telemetry.TimelineOptions
)

var (
	// WriteEventsJSONL dumps an event stream as JSON Lines.
	WriteEventsJSONL = telemetry.WriteJSONL
	// ReadEventsJSONL parses a JSONL event dump.
	ReadEventsJSONL = telemetry.ReadJSONL
	// RenderTimeline draws the per-instruction slice-pipeline wavefront
	// (cmd/pok-trace) from an event dump.
	RenderTimeline = telemetry.RenderTimeline
)

// Cycle accounting & critical path: the offline analysis engine of
// internal/profile (CLI: cmd/pok-prof). A CPIStack attributes every
// cycle of a run to one bottleneck component; a CriticalPath is the
// longest dependence chain through the per-slice dataflow DAG. See
// DESIGN.md, "Cycle accounting & critical path".
type (
	// EventDumpMeta is the self-describing header line of a JSONL
	// event dump (benchmark, config, cycles, dropped-event count).
	EventDumpMeta = telemetry.DumpMeta
	// CPIStack is one run's cycle-accounting breakdown.
	CPIStack = profile.CPIStack
	// CriticalPath is the longest dependence chain of one run.
	CriticalPath = profile.CriticalPath
	// ProfileCollector is the chained live-profiling collector
	// (pok-sim -prof).
	ProfileCollector = profile.Live
	// PerfettoOptions tunes the Chrome trace-event export.
	PerfettoOptions = profile.PerfettoOptions
	// SelfProfile records the analyser's own wall-time phases.
	SelfProfile = profile.SelfProfile
)

var (
	// WriteEventsDump writes a self-describing JSONL dump (meta header
	// plus event stream).
	WriteEventsDump = telemetry.WriteJSONLDump
	// ReadEventsDump parses a JSONL dump, returning the meta header
	// when present.
	ReadEventsDump = telemetry.ReadJSONLDump
	// BuildCPIStack attributes every cycle of an event stream.
	BuildCPIStack = profile.BuildCPIStack
	// RenderCPIStackCompare renders a side-by-side CPI-stack diff.
	RenderCPIStackCompare = profile.RenderCompare
	// BuildCriticalPath extracts the longest dependence chain.
	BuildCriticalPath = profile.BuildCriticalPath
	// WritePerfetto exports the slice pipeline as Chrome trace-event
	// JSON (load in ui.perfetto.dev).
	WritePerfetto = profile.WritePerfetto
	// NewProfileCollector chains a live profiler in front of an inner
	// collector (which may be nil).
	NewProfileCollector = profile.NewLive
	// NewSelfProfile starts a wall-clock phase recorder for the
	// Perfetto self-profiling overlay.
	NewSelfProfile = profile.NewSelfProfile
)

// Benchmark-regression records: the machine-readable BENCH_<date>.json
// files pok-bench -json writes and CI gates on via -compare.
type (
	// BenchReport is one pok-bench -json record.
	BenchReport = exp.BenchReport
	// BenchExperiment is one experiment entry of a BenchReport.
	BenchExperiment = exp.BenchExperiment
	// BenchComparison is the diff of two BenchReports.
	BenchComparison = exp.BenchComparison
)

var (
	// LoadBenchReport reads a BENCH_<date>.json file.
	LoadBenchReport = exp.LoadBenchReport
	// CompareBenchReports diffs two records against a regression
	// tolerance (0 = the default 25%).
	CompareBenchReports = exp.CompareBenchReports
)

// Robustness & verification: the lockstep commit oracle, the per-cycle
// invariant checker and the deterministic fault-injection harness of
// internal/check (CLI: cmd/pok-check). See DESIGN.md, "Robustness &
// Verification".
type (
	// CheckOptions configures one checked (oracle + invariants +
	// optional injection) run.
	CheckOptions = check.Options
	// CheckReport is the machine-readable outcome of a checked run.
	CheckReport = check.Report
	// Divergence is the first commit at which the timing machine's
	// architectural state differed from the functional reference.
	Divergence = check.Divergence
	// InvariantConfig tunes the per-cycle invariant checker and the
	// deadlock watchdog (Config.Invariants).
	InvariantConfig = core.InvariantConfig
	// InjectOptions configures the deterministic fault injector.
	InjectOptions = inject.Options
	// FaultInjector is the seeded injector implementing Config.Inject.
	FaultInjector = inject.Injector
)

var (
	// RunChecked runs a program under the lockstep oracle and invariant
	// checker (plus an optional injector) and classifies the outcome.
	RunChecked = check.RunChecked
	// NewOracle builds a standalone lockstep commit oracle for
	// Config.Oracle.
	NewOracle = check.NewOracle
	// NewInjector builds the seeded deterministic fault injector.
	NewInjector = inject.New
	// ErrDeadlock identifies a tripped deadlock watchdog via errors.Is.
	ErrDeadlock = core.ErrDeadlock
)

// Soak testing: the seeded random-program generator, the ddmin
// delta-debugging reducer and the differential soak harness of
// internal/gen, internal/check/reduce and internal/soak (CLI:
// cmd/pok-soak). See DESIGN.md, "Soak testing & reduction".
type (
	// GenOptions seeds and shapes one generated program.
	GenOptions = gen.Options
	// GenMix weights the generator's fragment kinds.
	GenMix = gen.Mix
	// GenProgram is one generated (prologue, body, epilogue) program.
	GenProgram = gen.Program
	// SoakOptions configures one soak campaign.
	SoakOptions = soak.Options
	// SoakReport is the machine-readable outcome of a soak campaign.
	SoakReport = soak.Report
	// SoakFinding is one failure the soak attributed to its seed cell.
	SoakFinding = soak.Finding
	// SoakCheckpoint is the resumable frontier of a soak campaign.
	SoakCheckpoint = soak.Checkpoint
	// ReproBundle is a self-contained minimized failure reproducer.
	ReproBundle = soak.Bundle
	// ReduceOutcome classifies one candidate run during reduction.
	ReduceOutcome = reduce.Outcome
)

// Distributed fleet: the coordinator/worker scaling layer of
// internal/serve (CLI: cmd/pok-serve; pok-soak and pok-bench submit
// with -submit). Failure signatures (internal/sig) are the shared
// dedupe key of the reducer, the soak harness and the fleet. See
// DESIGN.md, "Distributed simulation".
type (
	// FleetJobSpec is a job submitted to a fleet coordinator.
	FleetJobSpec = serve.JobSpec
	// FleetSoakSpec is a soak campaign as a fleet job.
	FleetSoakSpec = serve.SoakSpec
	// FleetBenchSpec is a benchmark sweep as a fleet job.
	FleetBenchSpec = serve.BenchSpec
	// FleetJobResult is a completed fleet job's merged outcome.
	FleetJobResult = serve.JobResult
	// FleetCoordinator owns fleet state and serves the HTTP job API.
	FleetCoordinator = serve.Coordinator
	// FleetWorker pulls and executes cells from a coordinator.
	FleetWorker = serve.Worker
	// FleetClient talks to a coordinator's HTTP API.
	FleetClient = serve.Client
	// FleetJournal is the coordinator's crash-recovery write-ahead log.
	FleetJournal = serve.Journal
	// FleetReplayStats summarizes a journal replay on coordinator start.
	FleetReplayStats = serve.ReplayStats
	// FleetWorkerStats is a worker's self-reported RPC/retry counters.
	FleetWorkerStats = serve.WorkerStats
	// FleetReleaseRequest hands a lease back on graceful worker drain.
	FleetReleaseRequest = serve.ReleaseRequest
	// FleetTransportError wraps a network-level RPC failure (retryable).
	FleetTransportError = serve.TransportError
	// FleetStatusError is a non-2xx coordinator reply with its body.
	FleetStatusError = serve.StatusError
	// FleetChaosTransport is the seeded fault-injecting RoundTripper.
	FleetChaosTransport = serve.ChaosTransport
	// FailureSignature is the (kind, field) dedupe key of a finding.
	FailureSignature = sig.Signature
	// FailureClass is one deduplicated signature with its count.
	FailureClass = sig.Class
)

// Fleet observability: mergeable telemetry snapshots flow worker →
// coordinator and surface as Prometheus text (/metrics), JSON
// (/api/metrics) and the live dashboard. See DESIGN.md, "Fleet
// observability".
type (
	// MetricsSnapshot is the mergeable unit of fleet telemetry (CPI
	// stacks, occupancy histograms, throughput, RPC health).
	MetricsSnapshot = metrics.Snapshot
	// MetricsBuildInfo is build provenance (git SHA, go version).
	MetricsBuildInfo = metrics.BuildInfo
	// MetricsProm builds Prometheus text-exposition payloads.
	MetricsProm = metrics.Prom
	// FleetMetrics is the coordinator's aggregated observability view.
	FleetMetrics = serve.FleetMetrics
	// FleetJobMetrics is one job's merged telemetry.
	FleetJobMetrics = serve.JobMetrics
	// FleetWorkerMetrics is one worker's throughput and RPC health.
	FleetWorkerMetrics = serve.WorkerMetrics
	// FleetMetricsSample is one entry of the bounded time-series ring.
	FleetMetricsSample = serve.MetricsSample
)

var (
	// DetectBuild resolves build provenance from the binary/git.
	DetectBuild = metrics.DetectBuild
	// NewProm returns an empty Prometheus text-payload builder.
	NewProm = metrics.NewProm
)

var (
	// NewFleetCoordinator builds a coordinator with the given lease TTL.
	NewFleetCoordinator = serve.NewCoordinator
	// NewFleetClient builds a client for the coordinator at a base URL.
	NewFleetClient = serve.NewClient
	// OpenFleetJournal opens (or creates) a coordinator journal dir.
	OpenFleetJournal = serve.OpenJournal
	// ParseFleetChaosSpec parses "drop=..,dup=..,err=..,delay=.." specs.
	ParseFleetChaosSpec = serve.ParseChaosSpec
	// FleetRetryable reports whether a client RPC error is transient.
	FleetRetryable = serve.Retryable
)

var (
	// Generate builds the deterministic random program selected by its
	// options.
	Generate = gen.New
	// GenProgramSeed derives the seed of the idx-th program of a soak.
	GenProgramSeed = gen.ProgramSeed
	// Soak runs a differential soak campaign (resume=true continues
	// from the options' checkpoint file).
	Soak = soak.Run
	// ReplayBundle re-runs a repro bundle under the lockstep checker.
	ReplayBundle = soak.ReplayBundle
	// DDMin minimizes a failing line sequence (ddmin delta debugging).
	DDMin = reduce.DDMin
	// ErrUnknownWorkload identifies a benchmark-name lookup miss via
	// errors.Is; the error message lists the available names.
	ErrUnknownWorkload = workload.ErrUnknownWorkload
)

// ProfileBenchmark returns the dynamic instruction mix of the named
// benchmark over maxInsts instructions.
func ProfileBenchmark(name string, maxInsts uint64) (*emu.Profile, error) {
	w, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		return nil, err
	}
	return emu.ProfileProgram(prog, maxInsts)
}
