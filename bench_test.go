package pok

import (
	"fmt"
	"runtime"
	"testing"

	"pok/internal/asm"
	"pok/internal/bitslice"
	"pok/internal/bpred"
	"pok/internal/cache"
	"pok/internal/core"
	"pok/internal/emu"
	"pok/internal/exp"
	"pok/internal/lsq"
	"pok/internal/workload"
)

// Benchmark budgets are reduced relative to cmd/pok-bench so that
// `go test -bench=.` completes in minutes; run cmd/pok-bench for the
// full-budget regeneration of the paper's evaluation.
const benchBudget = 60_000

// The experiment benchmarks fan each suite out over all cores: per-
// benchmark simulations are independent, so wall-clock scales with the
// machine while results stay identical (TestBenchOptParallelIdentity).
var benchOpt = Options{MaxInsts: benchBudget, Parallel: runtime.NumCPU()}

// ---------------------------------------------------------------------------
// One benchmark per paper table/figure.
// ---------------------------------------------------------------------------

// BenchmarkTable1 regenerates Table 1 (baseline IPC, %loads, branch
// accuracy for the whole suite) once per iteration.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var ipc float64
			for _, r := range rows {
				ipc += r.IPC
			}
			b.ReportMetric(ipc/float64(len(rows)), "meanIPC")
		}
	}
}

// BenchmarkFigure2 regenerates the early load-store disambiguation
// characterization on the paper's two example benchmarks.
func BenchmarkFigure2(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"bzip", "gcc"}
	for i := 0; i < b.N; i++ {
		res, err := Figure2(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res[0].ResolvedFrac(9), "%resolved@bit9")
		}
	}
}

// BenchmarkFigure4 regenerates the partial tag matching characterization
// on the paper's two example benchmarks across all six geometries.
func BenchmarkFigure4(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"mcf", "twolf"}
	for i := 0; i < b.N; i++ {
		res, err := Figure4(opt, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res[0].UniqueFrac(2), "%unique@2tagbits")
		}
	}
}

// BenchmarkFigure6 regenerates the early branch misprediction detection
// characterization over the full suite.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure6(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*exp.AverageCumFrac(res, 7), "%detected@8bits")
		}
	}
}

// benchFigure11 runs the Figure 11 ladder at one slice count and reports
// the paper's headline metrics.
func benchFigure11(b *testing.B, sliceBy int) {
	opt := benchOpt
	opt.Benchmarks = []string{"gzip", "li", "vortex"} // representative subset
	for i := 0; i < b.N; i++ {
		rows, err := Figure11(opt, sliceBy)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var vsBase, speedup float64
			for _, r := range rows {
				vsBase += r.VsBase()
				speedup += r.SpeedupOverSimple()
			}
			n := float64(len(rows))
			b.ReportMetric(vsBase/n, "IPCvsIdeal")
			b.ReportMetric(100*(speedup/n-1), "%speedupVsSimple")
		}
	}
}

// BenchmarkFigure11SliceBy2 regenerates the slice-by-2 IPC stacks.
func BenchmarkFigure11SliceBy2(b *testing.B) { benchFigure11(b, 2) }

// BenchmarkFigure11SliceBy4 regenerates the slice-by-4 IPC stacks.
func BenchmarkFigure11SliceBy4(b *testing.B) { benchFigure11(b, 4) }

// BenchmarkFigure12 derives the per-technique speedup breakdown from a
// Figure 11 run and reports the contribution of the newly proposed
// techniques (the paper: +8% for slice-by-2, +13% for slice-by-4).
func BenchmarkFigure12(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"gzip", "li", "vortex"}
	for i := 0; i < b.N; i++ {
		rows, err := Figure11(opt, 2)
		if err != nil {
			b.Fatal(err)
		}
		f12 := Figure12(rows)
		if i == 0 {
			var nw float64
			for _, r := range f12 {
				nw += r.NewTechniques
			}
			b.ReportMetric(100*nw/float64(len(f12)), "%newTechniques")
		}
	}
}

// TestBenchOptParallelIdentity pins the claim benchOpt relies on: the
// worker pool changes wall-clock, never results. Table 1 under the
// benchmark options (full parallelism) must match a sequential run row
// for row.
func TestBenchOptParallelIdentity(t *testing.T) {
	opt := benchOpt
	opt.Benchmarks = []string{"bzip", "li", "mcf", "vpr"}
	opt.MaxInsts = 20_000
	seq := opt
	seq.Parallel = 1
	par := opt
	if par.Parallel < 2 {
		par.Parallel = 2 // keep the pool engaged even on one-CPU runners
	}
	rs, err := Table1(seq)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Table1(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(rp) {
		t.Fatalf("row count differs: %d vs %d", len(rs), len(rp))
	}
	for i := range rs {
		if rs[i] != rp[i] {
			t.Errorf("row %d differs:\nsequential %+v\nparallel   %+v", i, rs[i], rp[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks (throughput of the building blocks).
// ---------------------------------------------------------------------------

// BenchmarkEmulator measures functional emulation speed.
func BenchmarkEmulator(b *testing.B) {
	w := workload.MustGet("gcc")
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		e := emu.New(prog)
		n, err := e.Run(benchBudget, nil)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkTimingSim measures cycle-level simulation speed on the full
// bit-sliced configuration.
func BenchmarkTimingSim(b *testing.B) {
	w := workload.MustGet("gcc")
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.BitSliced(2)
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r, err := core.Run(prog, cfg, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkAssembler measures assembly throughput on the largest kernel.
func BenchmarkAssembler(b *testing.B) {
	src := workload.MustGet("vortex").Source(1000)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachePartialClassify measures the partial tag classification
// hot path used by Figure 4 and the timing model.
func BenchmarkCachePartialClassify(b *testing.B) {
	c := cache.MustNew(cache.Config{Name: "b", SizeBytes: 64 << 10, LineBytes: 64,
		Assoc: 4, HitLatency: 1})
	for a := uint32(0); a < 1<<16; a += 64 {
		c.Access(a * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ClassifyPartial(uint32(i*64), 2)
	}
}

// BenchmarkGshare measures direction predictor throughput.
func BenchmarkGshare(b *testing.B) {
	g := bpred.NewGshare(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint32(i * 4)
		g.Update(pc, g.Predict(pc) != (i&3 == 0))
	}
}

// BenchmarkSlicedAdd measures the slice-arithmetic substrate.
func BenchmarkSlicedAdd(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("x%d", n), func(b *testing.B) {
			var sink uint32
			for i := 0; i < b.N; i++ {
				sums, _ := bitslice.Add(uint32(i), uint32(i)*2654435761, n)
				sink += sums[0]
			}
			_ = sink
		})
	}
}

// BenchmarkLSQDisambiguate measures the partial disambiguation hot path.
func BenchmarkLSQDisambiguate(b *testing.B) {
	q := newBenchLSQ(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Disambiguate(31, true)
	}
}

func newBenchLSQ(b *testing.B) *lsqQueue {
	q := lsqNew(32)
	for i := uint64(0); i < 31; i++ {
		err := q.Insert(&lsqEntry{Seq: i, IsStore: i%2 == 0,
			Addr: uint32(i * 4096), Size: 4, KnownBits: 16, DataReady: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := q.Insert(&lsqEntry{Seq: 31, Addr: 0x1234, Size: 4, KnownBits: 16}); err != nil {
		b.Fatal(err)
	}
	return q
}

// Aliases keeping the LSQ micro-benchmark tidy.
type (
	lsqQueue = lsq.Queue
	lsqEntry = lsq.Entry
)

var lsqNew = lsq.New
