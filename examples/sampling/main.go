// Sampling: estimate a benchmark's IPC with SMARTS-style sampled
// simulation — short detailed windows separated by functionally-warmed
// fast-forward gaps — and compare against the full detailed run. Also
// prints the workload's dynamic instruction mix.
//
//	go run ./examples/sampling [benchmark]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pok"
)

func main() {
	bench := "gcc"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	prof, err := pok.ProfileBenchmark(bench, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s instruction mix ===\n%s\n", bench, prof)

	cfg := pok.BitSliced(2)
	const budget = 400_000

	t0 := time.Now()
	full, err := pok.SimulateBenchmark(bench, cfg, budget)
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(t0)

	w, err := pok.GetWorkload(bench)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	// 20 windows of 4k detailed instructions, 16k warmed skip between:
	// one fifth of the budget simulated in detail.
	sampled, err := pok.RunSampled(prog, cfg, w.FastForward, 4_000, 16_000, 20)
	if err != nil {
		log.Fatal(err)
	}
	sampledTime := time.Since(t0)

	fmt.Printf("full run:    IPC %.3f  (%d insts in detail, %v)\n",
		full.IPC, full.Insts, fullTime.Round(time.Millisecond))
	fmt.Printf("sampled run: IPC %.3f  (%d insts in detail, %v)\n",
		sampled.IPC, sampled.Insts, sampledTime.Round(time.Millisecond))
	fmt.Printf("error: %+.1f%%\n", 100*(sampled.IPC-full.IPC)/full.IPC)
}
