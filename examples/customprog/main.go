// Customprog: build your own workload against the public API. This one
// walks a linked list whose nodes carry a GC-style tag bit (the paper's
// Figure 5 pattern), then measures how each memory-side technique —
// early load-store disambiguation and partial tag matching — changes the
// pipeline behaviour.
//
//	go run ./examples/customprog
package main

import (
	"fmt"
	"log"
	"strings"

	"pok"
)

// buildList generates assembly that allocates n 16-byte nodes, links them
// into a ring, then repeatedly traverses the ring flipping tag bits and
// storing back — a store->load aliasing pattern the LSQ must untangle.
func buildList(n, passes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
.data
nodes: .space %d
.text
main:
	la $s1, nodes
	li $t0, 0
build:
	sll $t1, $t0, 4
	addu $t1, $s1, $t1
	addiu $t2, $t0, 1
	li $t3, %d
	remu $t2, $t2, $t3
	sll $t2, $t2, 4
	addu $t2, $s1, $t2
	sw $t2, 4($t1)        # next
	sw $t0, 8($t1)        # payload
	sw $zero, 0($t1)      # tag
	addiu $t0, $t0, 1
	bne $t0, $t3, build
	li $s0, %d            # passes
	move $s2, $s1
walk:
	li $t4, %d            # nodes per pass
step:
	lw $t5, 0($s2)        # load tag word
	xori $t5, $t5, 1      # flip tag
	sw $t5, 0($s2)        # store it back
	lw $t6, 8($s2)        # payload (different offset: disambiguable early)
	addu $s6, $s6, $t6
	lw $s2, 4($s2)        # chase next
	addiu $t4, $t4, -1
	bgtz $t4, step
	addiu $s0, $s0, -1
	bgtz $s0, walk
	li $v0, 1
	move $a0, $s6
	syscall
	li $v0, 10
	syscall
`, n*16, n, passes, n)
	return b.String()
}

func main() {
	src := buildList(64, 400)

	ladder := []struct {
		name string
		mod  func(*pok.Config)
	}{
		{"x2 bypassing only", func(c *pok.Config) {
			c.PartialBypass, c.OoOSlices = true, true
		}},
		{"  +early l/s disambiguation", func(c *pok.Config) {
			c.PartialBypass, c.OoOSlices, c.EarlyLSDisambig = true, true, true
		}},
		{"  +partial tag matching", func(c *pok.Config) {
			c.PartialBypass, c.OoOSlices, c.EarlyLSDisambig, c.PartialTag =
				true, true, true, true
		}},
	}

	fmt.Printf("%-30s %8s %8s %10s %10s %8s\n",
		"config", "cycles", "IPC", "fwd", "early-ls", "ptag")
	for _, step := range ladder {
		cfg := pok.SimplePipelined(2)
		step.mod(&cfg)
		cfg.Name = step.name
		prog, err := pok.Assemble(src)
		if err != nil {
			log.Fatal(err)
		}
		r, err := pok.Run(prog, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %8d %8.3f %10d %10d %8d\n",
			step.name, r.Cycles, r.IPC, r.StoreForwards,
			r.LoadsEarlyRelease, r.PartialTagAccess)
	}
	fmt.Println("\nThe tag store aliases the tag load of the next visit; the payload")
	fmt.Println("load differs only in low address bits, so partial-address comparison")
	fmt.Println("releases it before the store's address fully resolves.")
}
