// Slicecompare: walk the paper's Figure 11/12 optimization ladder on one
// benchmark, printing the IPC recovered by each partial-operand technique.
//
//	go run ./examples/slicecompare [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"pok"
)

func main() {
	bench := "gzip"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	opt := pok.Options{Benchmarks: []string{bench}, MaxInsts: 150_000}

	for _, sliceBy := range []int{2, 4} {
		rows, err := pok.Figure11(opt, sliceBy)
		if err != nil {
			log.Fatal(err)
		}
		r := rows[0]
		fmt.Printf("=== %s, slice-by-%d (16->%d-bit slices) ===\n",
			bench, sliceBy, 32/sliceBy)
		fmt.Printf("%-32s %8.3f\n", "ideal (1-cycle EX)", r.BaseIPC)
		prev := 0.0
		for i, name := range []string{
			"simple pipelining",
			"+partial operand bypassing",
			"+out-of-order slices",
			"+early branch resolution",
			"+early l/s disambiguation",
			"+partial tag matching",
		} {
			ipc := r.StackIPC[i]
			delta := ""
			if i > 0 {
				delta = fmt.Sprintf("  (%+.3f)", ipc-prev)
			}
			fmt.Printf("%-32s %8.3f%s\n", name, ipc, delta)
			prev = ipc
		}
		fmt.Printf("bit-slice vs ideal: %.1f%%   speedup over simple pipelining: %+.1f%%\n\n",
			100*r.VsBase(), 100*(r.SpeedupOverSimple()-1))
	}
}
