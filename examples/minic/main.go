// Minic: write a workload in the MiniC language, compile it with the
// bundled compiler, and compare it across machine configurations — the
// full toolchain path the paper's own (compiled-C) benchmarks took.
//
//	go run ./examples/minic
package main

import (
	"fmt"
	"log"

	"pok"
	"pok/internal/cc"
)

// An N-queens counter: recursion, bitwise ops and data-dependent
// branches — compiled, not hand-written.
const source = `
int solve(int row, int cols, int diag1, int diag2) {
	if (row == 8) return 1;
	int count = 0;
	int c;
	for (c = 0; c < 8; c++) {
		int bit = 1 << c;
		int d1 = 1 << (row + c);
		int d2 = 1 << (row - c + 8);
		if (!(cols & bit) && !(diag1 & d1) && !(diag2 & d2)) {
			count += solve(row + 1, cols | bit, diag1 | d1, diag2 | d2);
		}
	}
	return count;
}

int main() {
	print(solve(0, 0, 0, 0));   // 92 solutions
	return 0;
}
`

func main() {
	asmText, err := cc.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled to %d lines of assembly\n\n", countLines(asmText))

	prog, err := pok.Assemble(asmText)
	if err != nil {
		log.Fatal(err)
	}
	out, err := pok.Execute(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-queens solutions: %s\n", out)

	fmt.Printf("%-22s %10s %8s\n", "machine", "cycles", "IPC")
	for _, cfg := range []pok.Config{
		pok.BaseConfig(), pok.SimplePipelined(2), pok.BitSliced(2),
	} {
		prog, err := pok.Assemble(asmText)
		if err != nil {
			log.Fatal(err)
		}
		r, err := pok.Run(prog, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d %8.3f\n", cfg.Name, r.Cycles, r.IPC)
	}
}

func countLines(s string) int {
	n := 1
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
