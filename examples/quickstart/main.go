// Quickstart: assemble a small program, execute it functionally, then
// compare its timing on the ideal machine, the naively pipelined machine,
// and the bit-sliced microarchitecture.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pok"
)

// A dependence-chain-heavy kernel: exactly the kind of code the paper
// says suffers under naive execution-stage pipelining.
const source = `
.data
result: .word 0
.text
main:
	li   $t0, 5000        # iterations
	li   $t1, 0x1234      # accumulator
loop:
	addu $t1, $t1, $t0    # serial dependence chain ...
	addu $t1, $t1, $t1
	xor  $t1, $t1, $t0
	addu $t1, $t1, $t0
	addiu $t0, $t0, -1
	bne  $t0, $zero, loop
	la   $t2, result
	sw   $t1, 0($t2)
	li   $v0, 1           # print the accumulated value
	move $a0, $t1
	syscall
	li   $v0, 10
	syscall
`

func main() {
	prog, err := pok.Assemble(source)
	if err != nil {
		log.Fatal(err)
	}

	out, err := pok.Execute(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s\n\n", out)

	fmt.Printf("%-22s %10s %10s %8s\n", "machine", "cycles", "insts", "IPC")
	for _, cfg := range []pok.Config{
		pok.BaseConfig(),       // ideal: single-cycle execution stage
		pok.SimplePipelined(2), // naive 2-stage EX pipeline
		pok.BitSliced(2),       // 2x16-bit slices + partial operand knowledge
		pok.SimplePipelined(4),
		pok.BitSliced(4),
	} {
		prog, err := pok.Assemble(source)
		if err != nil {
			log.Fatal(err)
		}
		r, err := pok.Run(prog, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d %10d %8.3f\n", cfg.Name, r.Cycles, r.Insts, r.IPC)
	}
	fmt.Println("\nNaive pipelining stretches the dependence chain;" +
		" slice-granular bypassing recovers the lost IPC.")
}
