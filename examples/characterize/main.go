// Characterize: reproduce the paper's Figure 5/6 observation on the li
// benchmark — the mark-bit test (lbu; andi; bne) makes a large share of
// branch mispredictions detectable from the very first operand bit.
//
//	go run ./examples/characterize
package main

import (
	"fmt"
	"log"

	"pok"
)

func main() {
	opt := pok.Options{
		Benchmarks: []string{"li", "gcc", "vpr"},
		MaxInsts:   200_000,
	}

	results, err := pok.Figure6(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pok.RenderFigure6(results))

	fmt.Println()
	for _, r := range results {
		fmt.Printf("%-6s: %4.1f%% of mispredictions visible at bit 0, %4.1f%% within 8 bits\n",
			r.Benchmark, 100*r.CumFrac[0], 100*r.CumFrac[7])
	}
	fmt.Println("\nThe li kernel is the paper's Figure 5 example: its branch tests a")
	fmt.Println("single mark bit, so a mispredicted 'not taken' is refuted by the")
	fmt.Println("first slice of the comparison, long before the upper bits exist.")

	// Show the same effect end-to-end in the timing model: early branch
	// resolution shortens li's misprediction loop.
	withCfg := pok.SimplePipelined(4)
	withCfg.PartialBypass = true
	withCfg.EarlyBranch = true
	withCfg.Name = "x4 + early branch resolution"
	withoutCfg := pok.SimplePipelined(4)
	withoutCfg.PartialBypass = true
	withoutCfg.Name = "x4 bypassing only"

	for _, cfg := range []pok.Config{withoutCfg, withCfg} {
		r, err := pok.SimulateBenchmark("li", cfg, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-30s IPC %.3f (%d mispredicts, %d resolved early)",
			cfg.Name, r.IPC, r.Mispredicts, r.EarlyResolved)
	}
	fmt.Println()
}
