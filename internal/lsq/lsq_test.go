package lsq

import (
	"testing"
	"testing/quick"
)

func TestInsertRemoveOrdering(t *testing.T) {
	q := New(4)
	for i := uint64(0); i < 4; i++ {
		if err := q.Insert(&Entry{Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	if !q.Full() || q.Len() != 4 {
		t.Fatal("should be full")
	}
	if err := q.Insert(&Entry{Seq: 5}); err == nil {
		t.Fatal("insert into full queue succeeded")
	}
	q.Remove(1)
	if q.Len() != 3 || q.Find(1) != nil {
		t.Fatal("remove failed")
	}
	if err := q.Insert(&Entry{Seq: 2}); err == nil {
		t.Fatal("out-of-order insert accepted")
	}
	q.Remove(99) // removing a missing seq is a no-op
	if q.Len() != 3 {
		t.Fatal("phantom removal")
	}
}

func TestPriorStores(t *testing.T) {
	q := New(8)
	q.Insert(&Entry{Seq: 1, IsStore: true, Addr: 0x10})
	q.Insert(&Entry{Seq: 2, IsStore: false, Addr: 0x20})
	q.Insert(&Entry{Seq: 3, IsStore: true, Addr: 0x30})
	q.Insert(&Entry{Seq: 4, IsStore: false, Addr: 0x40})
	ss := q.PriorStores(4)
	if len(ss) != 2 || ss[0].Seq != 1 || ss[1].Seq != 3 {
		t.Fatalf("PriorStores = %+v", ss)
	}
	if len(q.PriorStores(1)) != 0 {
		t.Fatal("oldest entry has prior stores")
	}
}

func st(seq uint64, addr uint32, known int, ready bool) *Entry {
	return &Entry{Seq: seq, IsStore: true, Addr: addr, Size: 4,
		KnownBits: known, DataReady: ready}
}

func ld(seq uint64, addr uint32, known int) *Entry {
	return &Entry{Seq: seq, IsStore: false, Addr: addr, Size: 4, KnownBits: known}
}

func TestBaselineWaitsForUnknownStore(t *testing.T) {
	q := New(8)
	q.Insert(st(1, 0x1000, 16, true)) // address not fully known
	q.Insert(ld(2, 0x2000, 32))
	if s, _ := q.Disambiguate(2, false); s != LoadWait {
		t.Fatalf("baseline status %v, want wait", s)
	}
	// Once the store address completes and differs, the load may go.
	q.Find(1).KnownBits = 32
	if s, _ := q.Disambiguate(2, false); s != LoadReady {
		t.Fatal("baseline should release after full disambiguation")
	}
}

func TestPartialReleasesEarly(t *testing.T) {
	q := New(8)
	// Store and load differ in bit 4; with 8 low bits known on both sides
	// the partial comparison proves independence.
	q.Insert(st(1, 0x1010, 8, true))
	q.Insert(ld(2, 0x1000, 8))
	if s, _ := q.Disambiguate(2, true); s != LoadReady {
		t.Fatal("partial disambiguation should release the load")
	}
	// Baseline cannot.
	if s, _ := q.Disambiguate(2, false); s != LoadWait {
		t.Fatal("baseline must wait")
	}
}

func TestPartialWaitsWhenLowBitsMatch(t *testing.T) {
	q := New(8)
	// Same low 16 bits, differ at bit 20: with only 16 bits known the load
	// must wait; with full addresses it is released.
	q.Insert(st(1, 0x0010_1000, 16, true))
	q.Insert(ld(2, 0x0020_1000, 16))
	if s, _ := q.Disambiguate(2, true); s != LoadWait {
		t.Fatal("ambiguous partial match must wait")
	}
	q.Find(1).KnownBits = 32
	q.Find(2).KnownBits = 32
	if s, _ := q.Disambiguate(2, true); s != LoadReady {
		t.Fatal("full comparison should release")
	}
}

func TestForwarding(t *testing.T) {
	q := New(8)
	q.Insert(st(1, 0x1000, 32, true))
	q.Insert(st(2, 0x1000, 32, true))
	q.Insert(ld(3, 0x1000, 32))
	s, fwd := q.Disambiguate(3, true)
	if s != LoadForward || fwd != 2 {
		t.Fatalf("status %v fwd %d, want forward from youngest (2)", s, fwd)
	}
	// Store data not ready -> wait.
	q.Find(2).DataReady = false
	if s, _ := q.Disambiguate(3, true); s != LoadWait {
		t.Fatal("cannot forward unready data")
	}
}

func TestPartialOverlapWaits(t *testing.T) {
	q := New(8)
	// Byte store into the word the load reads: no clean forward.
	q.Insert(&Entry{Seq: 1, IsStore: true, Addr: 0x1001, Size: 1,
		KnownBits: 32, DataReady: true})
	q.Insert(ld(2, 0x1000, 32))
	if s, _ := q.Disambiguate(2, true); s != LoadWait {
		t.Fatal("partial-overlap store must block the load")
	}
	// A store to a different word does not block.
	q2 := New(8)
	q2.Insert(&Entry{Seq: 1, IsStore: true, Addr: 0x1004, Size: 1,
		KnownBits: 32, DataReady: true})
	q2.Insert(ld(2, 0x1000, 32))
	if s, _ := q2.Disambiguate(2, true); s != LoadReady {
		t.Fatal("disjoint store blocked the load")
	}
}

func TestDisambiguateNoStores(t *testing.T) {
	q := New(8)
	q.Insert(ld(1, 0x1000, 0))
	if s, _ := q.Disambiguate(1, false); s != LoadReady {
		t.Fatal("load with no prior stores must be ready")
	}
	if s, _ := q.Disambiguate(99, true); s != LoadWait {
		t.Fatal("unknown seq should wait")
	}
}

func TestClassifyAliasCases(t *testing.T) {
	cases := []struct {
		name   string
		load   uint32
		stores []uint32
		k      int
		want   AliasKind
	}{
		{"no stores", 0x1000, nil, 9, NoStores},
		{"zero match", 0x1000, []uint32{0x1010, 0x1020}, 9, ZeroMatch},
		{"single non-match", 0x0010_1000, []uint32{0x0020_1000}, 16, SingleNonMatch},
		{"single match one store", 0x1000, []uint32{0x1000}, 9, SingleMatchOneStore},
		{"single match mult stores", 0x1000, []uint32{0x1000, 0x1040}, 9, SingleMatchMultStores},
		{"multi diff addr", 0x1000, []uint32{0x0011_1000, 0x0022_1000}, 9, MultiDiffAddr},
		{"multi same addr", 0x1000, []uint32{0x1000, 0x1000}, 9, MultiSameAddr},
		// Bytes within a word never disambiguate (comparison starts at bit 2).
		{"same word", 0x1001, []uint32{0x1002}, 32, SingleMatchOneStore},
	}
	for _, c := range cases {
		if got := ClassifyAlias(c.load, c.stores, c.k); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: the k=32 classification is consistent with exact word-address
// aliasing, and classifications only move "toward resolution" as k grows:
// once zero/single-match is reached it never reverts to multi.
func TestClassifyAliasMonotonic(t *testing.T) {
	f := func(load uint32, s1, s2, s3 uint32) bool {
		stores := []uint32{s1, s2, s3}
		prevMatches := len(stores) + 1
		for k := 2; k <= 32; k++ {
			n := 0
			for _, s := range stores {
				if !wordsDisjoint(load, s, k) {
					n++
				}
			}
			if n > prevMatches {
				return false // match set must shrink monotonically
			}
			prevMatches = n
		}
		// Full comparison equals exact word match count.
		exact := 0
		for _, s := range stores {
			if s>>2 == load>>2 {
				exact++
			}
		}
		return prevMatches == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestAliasKindStrings(t *testing.T) {
	for k := 0; k < NumAliasKinds; k++ {
		if AliasKind(k).String() == "?" {
			t.Fatalf("kind %d has no label", k)
		}
	}
}
