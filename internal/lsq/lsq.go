// Package lsq models the unified 32-entry load/store queue of the paper's
// machine and the early (partial-address) load-store disambiguation
// mechanism of §5.1: as the low bits of effective addresses are generated
// slice by slice, a load can be compared bit-serially against prior stores
// and either proven independent (issue early), uniquely matched (forward),
// or forced to wait for more address bits.
package lsq

import (
	"fmt"

	"pok/internal/bitslice"
)

// Entry is one in-flight memory operation in the queue.
type Entry struct {
	Seq       uint64 // program-order sequence number
	IsStore   bool
	Addr      uint32
	Size      uint8
	KnownBits int  // how many low address bits have been generated (0..32)
	DataReady bool // stores: store data available for forwarding
}

// AddrKnown reports whether the full address has been generated.
func (e *Entry) AddrKnown() bool { return e.KnownBits >= 32 }

// Queue is a bounded, program-ordered load/store queue.
type Queue struct {
	cap     int
	entries []*Entry
	// scratch is reused by Disambiguate to collect prior stores without
	// allocating on every call.
	scratch []*Entry
}

// New creates a queue with the given capacity (the paper uses 32).
func New(capacity int) *Queue {
	return &Queue{cap: capacity}
}

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.entries) }

// Cap returns the configured capacity.
func (q *Queue) Cap() int { return q.cap }

// Full reports whether another entry can be inserted.
func (q *Queue) Full() bool { return len(q.entries) >= q.cap }

// Insert appends a memory op in program order.
func (q *Queue) Insert(e *Entry) error {
	if q.Full() {
		return fmt.Errorf("lsq: queue full (%d entries)", q.cap)
	}
	if n := len(q.entries); n > 0 && q.entries[n-1].Seq >= e.Seq {
		return fmt.Errorf("lsq: out-of-order insert seq %d after %d",
			e.Seq, q.entries[n-1].Seq)
	}
	q.entries = append(q.entries, e)
	return nil
}

// Remove deletes the entry with the given sequence number (at commit).
func (q *Queue) Remove(seq uint64) {
	i := q.index(seq)
	if i < 0 {
		return
	}
	copy(q.entries[i:], q.entries[i+1:])
	n := len(q.entries) - 1
	q.entries[n] = nil
	q.entries = q.entries[:n]
}

// index locates seq in the seq-ordered entries by binary search, or -1.
// The queue is small (the paper's machine holds 32 entries), so this
// outperforms the hash map it replaced on every per-cycle lookup.
func (q *Queue) index(seq uint64) int {
	lo, hi := 0, len(q.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if q.entries[mid].Seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(q.entries) && q.entries[lo].Seq == seq {
		return lo
	}
	return -1
}

// Find returns the entry with the given sequence number, if present.
func (q *Queue) Find(seq uint64) *Entry {
	if i := q.index(seq); i >= 0 {
		return q.entries[i]
	}
	return nil
}

// PriorStores returns the stores older than seq, oldest first.
func (q *Queue) PriorStores(seq uint64) []*Entry {
	return q.AppendPriorStores(nil, seq)
}

// AppendPriorStores appends the stores older than seq, oldest first, to
// dst and returns the extended slice. Passing a reused buffer makes the
// per-cycle disambiguation checks in the timing model allocation-free.
func (q *Queue) AppendPriorStores(dst []*Entry, seq uint64) []*Entry {
	for _, e := range q.entries {
		if e.Seq >= seq {
			break
		}
		if e.IsStore {
			dst = append(dst, e)
		}
	}
	return dst
}

// wordsDisjoint reports whether the two addresses provably reference
// different words given that only the low k bits of each are known.
// Following the paper's Figure 2 methodology, comparison starts at bit 2
// (loads and stores to the same word always alias conservatively).
func wordsDisjoint(a, b uint32, k int) bool {
	if k <= 2 {
		return false
	}
	if k > 32 {
		k = 32
	}
	// Differ somewhere in bits [2, k)?
	return !bitslice.MatchField(a, b, 2, k-2)
}

// overlap reports whether two fully-known accesses touch common bytes.
func overlap(a uint32, an uint8, b uint32, bn uint8) bool {
	return a < b+uint32(bn) && b < a+uint32(an)
}

// LoadStatus is the outcome of a disambiguation attempt.
type LoadStatus uint8

// Load disambiguation outcomes.
const (
	// LoadWait: the load cannot yet issue (a prior store may alias).
	LoadWait LoadStatus = iota
	// LoadReady: every prior store is provably disjoint; the load may
	// issue to the memory system.
	LoadReady
	// LoadForward: a unique prior store fully matches; its data should be
	// forwarded to the load (from the youngest matching store).
	LoadForward
)

// Disambiguate decides whether the load with sequence number seq can issue.
// Under the baseline policy (partial=false) the load waits until every
// prior store address is fully known, as in the paper's base machine.
// With partial=true, bit-serial comparison of the known low address bits
// is used: a mismatch in bits [2,k) proves independence even while the
// upper bits are still being generated.
//
// On LoadForward the returned sequence number identifies the forwarding
// store (the youngest store with a full exact match).
func (q *Queue) Disambiguate(seq uint64, partial bool) (LoadStatus, uint64) {
	load := q.Find(seq)
	if load == nil || load.IsStore {
		return LoadWait, 0
	}
	q.scratch = q.AppendPriorStores(q.scratch[:0], seq)
	stores := q.scratch
	if len(stores) == 0 {
		return LoadReady, 0
	}

	var fwd *Entry
	for _, st := range stores {
		if !partial {
			// Baseline: all prior store addresses must be fully known, and
			// the load's own address must be complete too.
			if !st.AddrKnown() || !load.AddrKnown() {
				return LoadWait, 0
			}
			if overlap(load.Addr, load.Size, st.Addr, st.Size) {
				fwd = st
			}
			continue
		}
		k := min(load.KnownBits, st.KnownBits)
		if wordsDisjoint(load.Addr, st.Addr, k) {
			continue // proven independent with partial bits
		}
		if st.AddrKnown() && load.AddrKnown() {
			if overlap(load.Addr, load.Size, st.Addr, st.Size) {
				fwd = st
			}
			continue // full addresses known and disjoint (same word ruled out by overlap check)
		}
		// Partial bits match and full comparison is not yet possible.
		return LoadWait, 0
	}

	if fwd == nil {
		return LoadReady, 0
	}
	// Forwarding requires an exact, fully-contained match with data ready.
	if fwd.Addr == load.Addr && fwd.Size >= load.Size && fwd.DataReady {
		return LoadForward, fwd.Seq
	}
	// Partial overlap or data not ready: wait for the store to drain.
	return LoadWait, 0
}

// AliasKind classifies the Figure 2 characterization cases for a load
// entering the queue, compared bit-serially against prior store addresses.
type AliasKind uint8

// Figure 2 categories (legend order).
const (
	// NoStores: the queue holds no prior stores at all (subset of the
	// zero-entries-match case).
	NoStores AliasKind = iota
	// ZeroMatch: at least one prior store, none matches the bits compared
	// so far — the load may issue immediately.
	ZeroMatch
	// SingleNonMatch: exactly one store matches so far, but the full
	// comparison will rule it out.
	SingleNonMatch
	// SingleMatchOneStore: exactly one store matches so far, it is a full
	// match, and it was the only store in the queue.
	SingleMatchOneStore
	// SingleMatchMultStores: exactly one store matches so far, it is a
	// full match, and it was disambiguated from other stores.
	SingleMatchMultStores
	// MultiDiffAddr: several stores match so far and they go to different
	// addresses — a unique forwarder cannot be determined yet.
	MultiDiffAddr
	// MultiSameAddr: several stores match so far but all to the same
	// address; the youngest can forward.
	MultiSameAddr

	NumAliasKinds = int(MultiSameAddr) + 1
)

// String returns the Figure 2 legend label.
func (k AliasKind) String() string {
	switch k {
	case NoStores:
		return "no stores in queue"
	case ZeroMatch:
		return "zero entries match"
	case SingleNonMatch:
		return "single entry - non-match"
	case SingleMatchOneStore:
		return "single entry - match (one store)"
	case SingleMatchMultStores:
		return "single entry - match (mult stores)"
	case MultiDiffAddr:
		return "mult entries match - diff addr"
	case MultiSameAddr:
		return "mult entries match - same addr"
	}
	return "?"
}

// ClassifyAlias reproduces the Figure 2 measurement: given a load address
// and the (fully known) addresses of prior stores in the queue, classify
// the state of the bit-serial comparison after examining address bits
// [2, k). k=32 is the conventional full comparison.
func ClassifyAlias(loadAddr uint32, storeAddrs []uint32, k int) AliasKind {
	if len(storeAddrs) == 0 {
		return NoStores
	}
	var matches []uint32
	for _, s := range storeAddrs {
		if !wordsDisjoint(loadAddr, s, k) {
			matches = append(matches, s)
		}
	}
	switch {
	case len(matches) == 0:
		return ZeroMatch
	case len(matches) == 1:
		if !wordsDisjoint(loadAddr, matches[0], 32) {
			if len(storeAddrs) == 1 {
				return SingleMatchOneStore
			}
			return SingleMatchMultStores
		}
		return SingleNonMatch
	default:
		first := matches[0]
		for _, m := range matches[1:] {
			if m>>2 != first>>2 {
				return MultiDiffAddr
			}
		}
		return MultiSameAddr
	}
}
