package cc

// Program is a parsed MiniC translation unit.
type Program struct {
	Globals []*Global
	Funcs   []*Func
}

// Global is a module-level variable or array.
type Global struct {
	Name string
	// Len is 0 for a scalar, else the array element count.
	Len int
	// Init holds the scalar initializer (arrays zero-initialize unless
	// Elems is set).
	Init int32
	// Elems holds the array initializer list (may be shorter than Len;
	// the remainder zero-fills).
	Elems []int32
	Line  int
}

// Func is a function definition.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int

	// nLocals is filled by the parser: parameters plus declared locals.
	nLocals int
}

// Stmt is a statement node.
type Stmt interface{ stmtLine() int }

type (
	// DeclStmt declares a local with an optional initializer.
	DeclStmt struct {
		Name string
		Init Expr // nil = zero
		Line int
		slot int
	}
	// AssignStmt stores Value into a variable or array element.
	AssignStmt struct {
		Target *LValue
		Value  Expr
		Line   int
	}
	// IfStmt with optional else.
	IfStmt struct {
		Cond Expr
		Then []Stmt
		Else []Stmt
		Line int
	}
	// WhileStmt loops while Cond is non-zero.
	WhileStmt struct {
		Cond Expr
		Body []Stmt
		Line int
	}
	// ForStmt is the C for loop; any of Init/Cond/Post may be nil.
	ForStmt struct {
		Init Stmt // DeclStmt or AssignStmt
		Cond Expr
		Post Stmt
		Body []Stmt
		Line int
	}
	// ReturnStmt returns Value (nil = return 0).
	ReturnStmt struct {
		Value Expr
		Line  int
	}
	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Line int }
	// ContinueStmt jumps to the innermost loop's continuation point.
	ContinueStmt struct{ Line int }
	// ExprStmt evaluates an expression for its side effects (calls).
	ExprStmt struct {
		X    Expr
		Line int
	}
)

func (s *DeclStmt) stmtLine() int     { return s.Line }
func (s *AssignStmt) stmtLine() int   { return s.Line }
func (s *IfStmt) stmtLine() int       { return s.Line }
func (s *WhileStmt) stmtLine() int    { return s.Line }
func (s *ForStmt) stmtLine() int      { return s.Line }
func (s *ReturnStmt) stmtLine() int   { return s.Line }
func (s *BreakStmt) stmtLine() int    { return s.Line }
func (s *ContinueStmt) stmtLine() int { return s.Line }
func (s *ExprStmt) stmtLine() int     { return s.Line }

// LValue is an assignable location: a scalar variable or an array element.
type LValue struct {
	Name  string
	Index Expr // nil for scalars
	Line  int
}

// Expr is an expression node.
type Expr interface{ exprLine() int }

type (
	// NumExpr is an integer literal.
	NumExpr struct {
		Val  int32
		Line int
	}
	// VarExpr reads a scalar variable (local, param or global).
	VarExpr struct {
		Name string
		Line int
	}
	// IndexExpr reads a global array element.
	IndexExpr struct {
		Name  string
		Index Expr
		Line  int
	}
	// UnaryExpr applies -, ! or ~.
	UnaryExpr struct {
		Op   string
		X    Expr
		Line int
	}
	// BinExpr applies a binary operator (including short-circuit && / ||).
	BinExpr struct {
		Op   string
		L, R Expr
		Line int
	}
	// CallExpr invokes a function or builtin.
	CallExpr struct {
		Name string
		Args []Expr
		Line int
	}
	// CondExpr is the C ternary operator cond ? then : else.
	CondExpr struct {
		Cond, Then, Else Expr
		Line             int
	}
)

func (e *NumExpr) exprLine() int   { return e.Line }
func (e *VarExpr) exprLine() int   { return e.Line }
func (e *IndexExpr) exprLine() int { return e.Line }
func (e *UnaryExpr) exprLine() int { return e.Line }
func (e *BinExpr) exprLine() int   { return e.Line }
func (e *CallExpr) exprLine() int  { return e.Line }
func (e *CondExpr) exprLine() int  { return e.Line }
