// Package cc implements MiniC, a small C-subset compiler targeting the
// simulator's assembly language. The paper's benchmarks are compiled C
// programs; MiniC completes that toolchain story — workloads can be
// written in a high-level language, compiled with this package, assembled
// by internal/asm and executed or timed like any hand-written kernel.
//
// The language: 32-bit signed int is the only scalar type; global
// variables and one-dimensional global arrays; functions with up to four
// int parameters and int return values (recursion supported); if/else,
// while, for, return, break, continue; the full C expression set over
// ints (arithmetic, comparison, bitwise, shifts, logical with
// short-circuit, unary minus/not/complement); and two builtins, print(x)
// (decimal + newline) and putc(x).
package cc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct   // operators and punctuation
	tokKeyword // int, if, else, while, for, return, break, continue, void
)

type token struct {
	kind tokKind
	text string
	val  int64 // for numbers
	line int
}

// Error reports a compile failure with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

var keywords = map[string]bool{
	"int": true, "void": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "break": true, "continue": true,
}

// multi-character operators, longest first.
var punctuators = []string{
	"<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
}

// lex tokenizes MiniC source.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, errf(line, "unterminated comment")
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (isAlnum(src[j])) {
				j++
			}
			text := src[i:j]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				return nil, errf(line, "bad number %q", text)
			}
			toks = append(toks, token{kind: tokNumber, text: text, val: v, line: line})
			i = j
		case c == '\'':
			j := i + 1
			esc := false
			for j < len(src) && (src[j] != '\'' || esc) {
				esc = !esc && src[j] == '\\'
				j++
			}
			if j >= len(src) {
				return nil, errf(line, "unterminated char literal")
			}
			body, err := strconv.Unquote(src[i : j+1])
			if err != nil || len(body) != 1 {
				return nil, errf(line, "bad char literal %s", src[i:j+1])
			}
			toks = append(toks, token{kind: tokNumber, text: src[i : j+1],
				val: int64(body[0]), line: line})
			i = j + 1
		case isAlpha(c):
			j := i
			for j < len(src) && isAlnum(src[j]) {
				j++
			}
			text := src[i:j]
			k := tokIdent
			if keywords[text] {
				k = tokKeyword
			}
			toks = append(toks, token{kind: k, text: text, line: line})
			i = j
		default:
			matched := false
			for _, p := range punctuators {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(line, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isAlnum(c byte) bool { return isAlpha(c) || c >= '0' && c <= '9' }
