package cc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstantFoldingShrinksCode(t *testing.T) {
	folded, err := Compile(`int main() { print(2 * 3 + 4 << 1); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	// The whole expression folds to one literal load: no runtime mult.
	if strings.Contains(folded, "mult") {
		t.Fatalf("fold failed:\n%s", folded)
	}
	if !strings.Contains(folded, "li $v0, 20") {
		t.Fatalf("folded constant missing:\n%s", folded)
	}
}

func TestFoldingPreservesSemantics(t *testing.T) {
	// Mixed constant and variable subexpressions.
	out := compileRun(t, `
int main() {
	int x = 7;
	print(2 + 3 * 4 - x);      // 7
	print((10 / 3) % 2);       // 1
	print(1 << 31 >> 31);      // -1 (sign extension)
	print(5 && 0 || 1);        // 1
	print(0 && x);             // 0, x not folded away incorrectly
	print(1 || x);             // 1
	print(0 || x);             // boolified: 1
	print(1 && x);             // 1
	print(!3 == 0);            // 1
	return 0;
}`)
	want := "7\n1\n-1\n1\n0\n1\n1\n1\n1\n"
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
}

func TestFoldDivByZeroDeferred(t *testing.T) {
	// 1/0 must not be folded (runtime semantics apply) and must not
	// crash the compiler.
	if _, err := Compile(`int main() { return 1 / 0; }`); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

// Property: evalConst agrees with Go's int32 semantics for total ops.
func TestEvalConstMatchesGo(t *testing.T) {
	f := func(a, b int32) bool {
		cases := map[string]int32{
			"+": a + b, "-": a - b, "*": a * b,
			"&": a & b, "|": a | b, "^": a ^ b,
			"<<": a << (uint32(b) & 31), ">>": a >> (uint32(b) & 31),
			"<": b2i(a < b), "==": b2i(a == b), "!=": b2i(a != b),
		}
		for op, want := range cases {
			got, ok := evalConst(op, a, b)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
