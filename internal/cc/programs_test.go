package cc

import (
	"fmt"
	"sort"
	"testing"

	"pok/internal/core"
)

// Larger end-to-end programs: each compiled binary must reproduce the
// output of a Go reference computation.

func TestQuicksortProgram(t *testing.T) {
	out := compileRun(t, `
int a[64];
int lcg = 1;
int rand() {
	lcg = lcg * 1103515245 + 12345;
	return (lcg >> 16) & 32767;
}
int swap(int i, int j) {
	int t = a[i];
	a[i] = a[j];
	a[j] = t;
	return 0;
}
int qsort(int lo, int hi) {
	if (lo >= hi) return 0;
	int pivot = a[hi];
	int i = lo - 1;
	int j;
	for (j = lo; j < hi; j++) {
		if (a[j] < pivot) {
			i++;
			swap(i, j);
		}
	}
	swap(i + 1, hi);
	qsort(lo, i);
	qsort(i + 2, hi);
	return 0;
}
int main() {
	int i;
	for (i = 0; i < 64; i++) a[i] = rand();
	qsort(0, 63);
	int sum = 0;
	int sorted = 1;
	for (i = 0; i < 64; i++) {
		sum += a[i];
		if (i > 0 && a[i] < a[i - 1]) sorted = 0;
	}
	print(sorted);
	print(sum);
	print(a[0]);
	print(a[63]);
	return 0;
}`)
	// Go reference.
	lcg := int32(1)
	rand := func() int32 {
		lcg = lcg*1103515245 + 12345
		return (lcg >> 16) & 32767
	}
	vals := make([]int32, 64)
	var sum int32
	for i := range vals {
		vals[i] = rand()
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		sum += v
	}
	want := fmt.Sprintf("1\n%d\n%d\n%d\n", sum, vals[0], vals[63])
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
}

func TestMatrixMultiply(t *testing.T) {
	out := compileRun(t, `
int a[64];
int b[64];
int c[64];
int main() {
	int i;
	int j;
	int k;
	for (i = 0; i < 64; i++) {
		a[i] = i + 1;
		b[i] = (i * 3) % 17;
	}
	for (i = 0; i < 8; i++) {
		for (j = 0; j < 8; j++) {
			int acc = 0;
			for (k = 0; k < 8; k++) {
				acc += a[i * 8 + k] * b[k * 8 + j];
			}
			c[i * 8 + j] = acc;
		}
	}
	int sum = 0;
	for (i = 0; i < 64; i++) sum += c[i];
	print(sum);
	print(c[0]);
	print(c[63]);
	return 0;
}`)
	var a, b, c [64]int32
	for i := int32(0); i < 64; i++ {
		a[i] = i + 1
		b[i] = (i * 3) % 17
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			var acc int32
			for k := 0; k < 8; k++ {
				acc += a[i*8+k] * b[k*8+j]
			}
			c[i*8+j] = acc
		}
	}
	var sum int32
	for _, v := range c {
		sum += v
	}
	want := fmt.Sprintf("%d\n%d\n%d\n", sum, c[0], c[63])
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
}

func TestCollatzAndAckermannLite(t *testing.T) {
	out := compileRun(t, `
int steps(int n) {
	int c = 0;
	while (n != 1) {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		c++;
	}
	return c;
}
int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	print(steps(27));          // 111
	print(ack(2, 3));          // 9
	print(ack(3, 3));          // 61
	return 0;
}`)
	if out != "111\n9\n61\n" {
		t.Fatalf("output %q", out)
	}
}

// TestCompiledCodeUnderTimingModel: a compiled kernel behaves like any
// workload — it runs under every machine configuration and the bit-sliced
// machine beats simple pipelining on its dependence chains.
func TestCompiledCodeUnderTimingModel(t *testing.T) {
	prog := func() string {
		return `
int main() {
	int x = 1;
	int i;
	for (i = 0; i < 3000; i++) {
		x = x * 3 + 1;
		x = x ^ (x >> 2);
		x = x + i;
	}
	print(x);
	return 0;
}`
	}
	var ipcs []float64
	for _, cfg := range []core.Config{
		core.BaseConfig(), core.SimplePipelined(2), core.BitSliced(2),
	} {
		p, err := CompileProgram(prog())
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.Run(p, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		ipcs = append(ipcs, r.IPC)
	}
	// Compiled code is stack-traffic heavy, so the extra per-slice issue
	// capacity of the sliced machines can outweigh the longer execution
	// latency even without partial operands; the robust paper-shape claim
	// is that the full bit-sliced machine beats naive pipelining.
	if ipcs[2] <= ipcs[1] {
		t.Fatalf("bit slicing did not help compiled code: %v", ipcs)
	}
	for i, ipc := range ipcs {
		if ipc <= 0 {
			t.Fatalf("config %d produced no throughput: %v", i, ipcs)
		}
	}
}
