package cc

// fold performs constant folding on an expression tree, evaluating
// operators whose operands are literals at compile time. It returns the
// (possibly replaced) expression. Folding matches the emulator's 32-bit
// two's-complement semantics exactly, including shift masking and the
// divide-by-zero convention, so folded and unfolded programs print the
// same output.
func fold(e Expr) Expr {
	switch ex := e.(type) {
	case *UnaryExpr:
		ex.X = fold(ex.X)
		if n, ok := ex.X.(*NumExpr); ok {
			switch ex.Op {
			case "-":
				return &NumExpr{Val: -n.Val, Line: ex.Line}
			case "~":
				return &NumExpr{Val: ^n.Val, Line: ex.Line}
			case "!":
				v := int32(0)
				if n.Val == 0 {
					v = 1
				}
				return &NumExpr{Val: v, Line: ex.Line}
			}
		}
		return ex
	case *BinExpr:
		ex.L = fold(ex.L)
		ex.R = fold(ex.R)
		l, lok := ex.L.(*NumExpr)
		r, rok := ex.R.(*NumExpr)
		if !lok || !rok {
			// Partial short-circuit folding: a literal left side decides.
			if lok && ex.Op == "&&" {
				if l.Val == 0 {
					return &NumExpr{Val: 0, Line: ex.Line}
				}
				return boolify(ex.R, ex.Line)
			}
			if lok && ex.Op == "||" {
				if l.Val != 0 {
					return &NumExpr{Val: 1, Line: ex.Line}
				}
				return boolify(ex.R, ex.Line)
			}
			return ex
		}
		if v, ok := evalConst(ex.Op, l.Val, r.Val); ok {
			return &NumExpr{Val: v, Line: ex.Line}
		}
		return ex
	case *CondExpr:
		ex.Cond = fold(ex.Cond)
		ex.Then = fold(ex.Then)
		ex.Else = fold(ex.Else)
		if n, ok := ex.Cond.(*NumExpr); ok {
			if n.Val != 0 {
				return ex.Then
			}
			return ex.Else
		}
		return ex
	case *IndexExpr:
		ex.Index = fold(ex.Index)
		return ex
	case *CallExpr:
		for i := range ex.Args {
			ex.Args[i] = fold(ex.Args[i])
		}
		return ex
	default:
		return e
	}
}

// boolify normalizes an expression to 0/1 (the value of a logical
// operator) without evaluating it twice.
func boolify(e Expr, line int) Expr {
	return &BinExpr{Op: "!=", L: e, R: &NumExpr{Val: 0, Line: line}, Line: line}
}

// evalConst evaluates op over two int32 constants with the machine's
// semantics. The divide-by-zero case is left to runtime (ok=false) so the
// emulator's convention applies uniformly.
func evalConst(op string, a, b int32) (int32, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 || (a == -1<<31 && b == -1) {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 || (a == -1<<31 && b == -1) {
			return 0, false
		}
		return a % b, true
	case "&":
		return a & b, true
	case "|":
		return a | b, true
	case "^":
		return a ^ b, true
	case "<<":
		return a << (uint32(b) & 31), true
	case ">>":
		return a >> (uint32(b) & 31), true
	case "<":
		return b2i(a < b), true
	case "<=":
		return b2i(a <= b), true
	case ">":
		return b2i(a > b), true
	case ">=":
		return b2i(a >= b), true
	case "==":
		return b2i(a == b), true
	case "!=":
		return b2i(a != b), true
	case "&&":
		return b2i(a != 0 && b != 0), true
	case "||":
		return b2i(a != 0 || b != 0), true
	}
	return 0, false
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// foldStmts folds every expression in a statement list in place.
func foldStmts(ss []Stmt) {
	for _, s := range ss {
		switch st := s.(type) {
		case *DeclStmt:
			if st.Init != nil {
				st.Init = fold(st.Init)
			}
		case *AssignStmt:
			st.Value = fold(st.Value)
			if st.Target.Index != nil {
				st.Target.Index = fold(st.Target.Index)
			}
		case *IfStmt:
			st.Cond = fold(st.Cond)
			foldStmts(st.Then)
			foldStmts(st.Else)
		case *WhileStmt:
			st.Cond = fold(st.Cond)
			foldStmts(st.Body)
		case *ForStmt:
			if st.Init != nil {
				foldStmts([]Stmt{st.Init})
			}
			if st.Cond != nil {
				st.Cond = fold(st.Cond)
			}
			if st.Post != nil {
				foldStmts([]Stmt{st.Post})
			}
			foldStmts(st.Body)
		case *ReturnStmt:
			if st.Value != nil {
				st.Value = fold(st.Value)
			}
		case *ExprStmt:
			st.X = fold(st.X)
		}
	}
}
