package cc

import (
	"fmt"
	"strings"

	"pok/internal/asm"
	"pok/internal/emu"
)

// Compile translates MiniC source into assembly text for internal/asm.
func Compile(src string) (string, error) {
	prog, err := Parse(src)
	if err != nil {
		return "", err
	}
	for _, fn := range prog.Funcs {
		foldStmts(fn.Body)
	}
	g := &gen{prog: prog}
	return g.run()
}

// CompileProgram compiles and assembles MiniC source into a runnable
// program image.
func CompileProgram(src string) (*emu.Program, error) {
	text, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(text)
}

// gen holds code-generation state.
type gen struct {
	prog *Program
	out  strings.Builder

	globals map[string]*Global
	funcs   map[string]*Func

	// per-function state
	fn       *Func
	slots    map[string]int // variable name -> frame slot
	frame    int            // frame size in bytes
	labelCnt int
	brkLbl   []string // break targets, innermost last
	contLbl  []string // continue targets
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.out, format+"\n", args...)
}

func (g *gen) label(prefix string) string {
	g.labelCnt++
	return fmt.Sprintf("L%s%d", prefix, g.labelCnt)
}

func (g *gen) run() (string, error) {
	g.globals = make(map[string]*Global)
	g.funcs = make(map[string]*Func)
	for _, gl := range g.prog.Globals {
		if _, dup := g.globals[gl.Name]; dup {
			return "", errf(gl.Line, "duplicate global %q", gl.Name)
		}
		g.globals[gl.Name] = gl
	}
	hasMain := false
	for _, fn := range g.prog.Funcs {
		if _, dup := g.funcs[fn.Name]; dup {
			return "", errf(fn.Line, "duplicate function %q", fn.Name)
		}
		if _, clash := g.globals[fn.Name]; clash {
			return "", errf(fn.Line, "%q is both a global and a function", fn.Name)
		}
		if fn.Name == "print" || fn.Name == "putc" {
			return "", errf(fn.Line, "%q is a builtin", fn.Name)
		}
		g.funcs[fn.Name] = fn
		if fn.Name == "main" {
			hasMain = true
		}
	}
	if !hasMain {
		return "", errf(1, "no main function")
	}

	// Data section.
	if len(g.prog.Globals) > 0 {
		g.emit(".data")
		for _, gl := range g.prog.Globals {
			switch {
			case gl.Len > 0 && len(gl.Elems) > 0:
				words := make([]string, len(gl.Elems))
				for i, v := range gl.Elems {
					words[i] = fmt.Sprintf("%d", v)
				}
				g.emit("g_%s: .word %s", gl.Name, strings.Join(words, ", "))
				if rest := gl.Len - len(gl.Elems); rest > 0 {
					g.emit("	.space %d", 4*rest)
				}
			case gl.Len > 0:
				g.emit("g_%s: .space %d", gl.Name, 4*gl.Len)
			default:
				g.emit("g_%s: .word %d", gl.Name, gl.Init)
			}
		}
	}

	// Entry shim: call main, exit with its return value.
	g.emit(".text")
	g.emit("main:")
	g.emit("\tjal fn_main")
	g.emit("\tmove $a0, $v0")
	g.emit("\tli $v0, 10")
	g.emit("\tsyscall")

	for _, fn := range g.prog.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	return g.out.String(), nil
}

// assignSlots walks the function body allocating a frame slot for every
// parameter and declaration.
func (g *gen) assignSlots(fn *Func) error {
	g.slots = make(map[string]int)
	for _, p := range fn.Params {
		if _, dup := g.slots[p]; dup {
			return errf(fn.Line, "duplicate parameter %q", p)
		}
		g.slots[p] = len(g.slots)
	}
	var walk func(ss []Stmt) error
	walk = func(ss []Stmt) error {
		for _, s := range ss {
			switch st := s.(type) {
			case *DeclStmt:
				if _, dup := g.slots[st.Name]; dup {
					return errf(st.Line, "redeclaration of %q", st.Name)
				}
				st.slot = len(g.slots)
				g.slots[st.Name] = st.slot
			case *IfStmt:
				if err := walk(st.Then); err != nil {
					return err
				}
				if err := walk(st.Else); err != nil {
					return err
				}
			case *WhileStmt:
				if err := walk(st.Body); err != nil {
					return err
				}
			case *ForStmt:
				if st.Init != nil {
					if err := walk([]Stmt{st.Init}); err != nil {
						return err
					}
				}
				if st.Post != nil {
					if err := walk([]Stmt{st.Post}); err != nil {
						return err
					}
				}
				if err := walk(st.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(fn.Body); err != nil {
		return err
	}
	fn.nLocals = len(g.slots)
	return nil
}

func (g *gen) genFunc(fn *Func) error {
	g.fn = fn
	g.brkLbl, g.contLbl = nil, nil
	if err := g.assignSlots(fn); err != nil {
		return err
	}
	// Frame: slots + saved $ra + saved $fp, 8-byte aligned for tidiness.
	g.frame = 4*fn.nLocals + 8
	if g.frame%8 != 0 {
		g.frame += 4
	}
	g.emit("fn_%s:", fn.Name)
	g.emit("\taddiu $sp, $sp, -%d", g.frame)
	g.emit("\tsw $ra, %d($sp)", g.frame-4)
	g.emit("\tsw $fp, %d($sp)", g.frame-8)
	g.emit("\tmove $fp, $sp")
	for i := range fn.Params {
		g.emit("\tsw $a%d, %d($fp)", i, 4*i)
	}
	for _, s := range fn.Body {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	// Implicit `return 0`.
	g.emit("\tli $v0, 0")
	g.emit("ret_%s:", fn.Name)
	g.emit("\tmove $t9, $fp")
	g.emit("\tlw $ra, %d($t9)", g.frame-4)
	g.emit("\tlw $fp, %d($t9)", g.frame-8)
	g.emit("\taddiu $sp, $t9, %d", g.frame)
	g.emit("\tjr $ra")
	return nil
}

func (g *gen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			if err := g.genExpr(st.Init); err != nil {
				return err
			}
		} else {
			g.emit("\tli $v0, 0")
		}
		g.emit("\tsw $v0, %d($fp)", 4*st.slot)
		return nil

	case *AssignStmt:
		return g.genAssign(st.Target, st.Value)

	case *IfStmt:
		els := g.label("else")
		end := g.label("endif")
		if err := g.genExpr(st.Cond); err != nil {
			return err
		}
		g.emit("\tbeqz $v0, %s", els)
		for _, t := range st.Then {
			if err := g.genStmt(t); err != nil {
				return err
			}
		}
		g.emit("\tb %s", end)
		g.emit("%s:", els)
		for _, e := range st.Else {
			if err := g.genStmt(e); err != nil {
				return err
			}
		}
		g.emit("%s:", end)
		return nil

	case *WhileStmt:
		top := g.label("while")
		end := g.label("endwhile")
		g.emit("%s:", top)
		if err := g.genExpr(st.Cond); err != nil {
			return err
		}
		g.emit("\tbeqz $v0, %s", end)
		g.brkLbl = append(g.brkLbl, end)
		g.contLbl = append(g.contLbl, top)
		for _, b := range st.Body {
			if err := g.genStmt(b); err != nil {
				return err
			}
		}
		g.brkLbl = g.brkLbl[:len(g.brkLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		g.emit("\tb %s", top)
		g.emit("%s:", end)
		return nil

	case *ForStmt:
		top := g.label("for")
		cont := g.label("forpost")
		end := g.label("endfor")
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		g.emit("%s:", top)
		if st.Cond != nil {
			if err := g.genExpr(st.Cond); err != nil {
				return err
			}
			g.emit("\tbeqz $v0, %s", end)
		}
		g.brkLbl = append(g.brkLbl, end)
		g.contLbl = append(g.contLbl, cont)
		for _, b := range st.Body {
			if err := g.genStmt(b); err != nil {
				return err
			}
		}
		g.brkLbl = g.brkLbl[:len(g.brkLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		g.emit("%s:", cont)
		if st.Post != nil {
			if err := g.genStmt(st.Post); err != nil {
				return err
			}
		}
		g.emit("\tb %s", top)
		g.emit("%s:", end)
		return nil

	case *ReturnStmt:
		if st.Value != nil {
			if err := g.genExpr(st.Value); err != nil {
				return err
			}
		} else {
			g.emit("\tli $v0, 0")
		}
		g.emit("\tb ret_%s", g.fn.Name)
		return nil

	case *BreakStmt:
		if len(g.brkLbl) == 0 {
			return errf(st.Line, "break outside loop")
		}
		g.emit("\tb %s", g.brkLbl[len(g.brkLbl)-1])
		return nil

	case *ContinueStmt:
		if len(g.contLbl) == 0 {
			return errf(st.Line, "continue outside loop")
		}
		g.emit("\tb %s", g.contLbl[len(g.contLbl)-1])
		return nil

	case *ExprStmt:
		return g.genExpr(st.X)
	}
	return errf(s.stmtLine(), "internal: unhandled statement %T", s)
}

func (g *gen) genAssign(lv *LValue, val Expr) error {
	if lv.Index == nil {
		if err := g.genExpr(val); err != nil {
			return err
		}
		if slot, ok := g.slots[lv.Name]; ok {
			g.emit("\tsw $v0, %d($fp)", 4*slot)
			return nil
		}
		if gl, ok := g.globals[lv.Name]; ok && gl.Len == 0 {
			g.emit("\tla $t9, g_%s", lv.Name)
			g.emit("\tsw $v0, 0($t9)")
			return nil
		}
		return errf(lv.Line, "cannot assign to %q", lv.Name)
	}
	gl, ok := g.globals[lv.Name]
	if !ok || gl.Len == 0 {
		return errf(lv.Line, "%q is not an array", lv.Name)
	}
	if err := g.genExpr(lv.Index); err != nil {
		return err
	}
	g.push()
	if err := g.genExpr(val); err != nil {
		return err
	}
	g.pop("$t1")
	g.emit("\tsll $t1, $t1, 2")
	g.emit("\tla $t9, g_%s", lv.Name)
	g.emit("\taddu $t9, $t9, $t1")
	g.emit("\tsw $v0, 0($t9)")
	return nil
}

func (g *gen) push() {
	g.emit("\taddiu $sp, $sp, -4")
	g.emit("\tsw $v0, 0($sp)")
}

func (g *gen) pop(reg string) {
	g.emit("\tlw %s, 0($sp)", reg)
	g.emit("\taddiu $sp, $sp, 4")
}

func (g *gen) genExpr(e Expr) error {
	switch ex := e.(type) {
	case *NumExpr:
		g.emit("\tli $v0, %d", ex.Val)
		return nil

	case *VarExpr:
		if slot, ok := g.slots[ex.Name]; ok {
			g.emit("\tlw $v0, %d($fp)", 4*slot)
			return nil
		}
		if gl, ok := g.globals[ex.Name]; ok {
			if gl.Len > 0 {
				return errf(ex.Line, "array %q used without index", ex.Name)
			}
			g.emit("\tla $t9, g_%s", ex.Name)
			g.emit("\tlw $v0, 0($t9)")
			return nil
		}
		return errf(ex.Line, "undefined variable %q", ex.Name)

	case *IndexExpr:
		gl, ok := g.globals[ex.Name]
		if !ok || gl.Len == 0 {
			return errf(ex.Line, "%q is not an array", ex.Name)
		}
		if err := g.genExpr(ex.Index); err != nil {
			return err
		}
		g.emit("\tsll $v0, $v0, 2")
		g.emit("\tla $t9, g_%s", ex.Name)
		g.emit("\taddu $t9, $t9, $v0")
		g.emit("\tlw $v0, 0($t9)")
		return nil

	case *UnaryExpr:
		if err := g.genExpr(ex.X); err != nil {
			return err
		}
		switch ex.Op {
		case "-":
			g.emit("\tsubu $v0, $zero, $v0")
		case "~":
			g.emit("\tnor $v0, $v0, $zero")
		case "!":
			g.emit("\tsltiu $v0, $v0, 1")
		}
		return nil

	case *BinExpr:
		return g.genBinary(ex)

	case *CallExpr:
		return g.genCall(ex)

	case *CondExpr:
		els := g.label("terne")
		end := g.label("ternx")
		if err := g.genExpr(ex.Cond); err != nil {
			return err
		}
		g.emit("\tbeqz $v0, %s", els)
		if err := g.genExpr(ex.Then); err != nil {
			return err
		}
		g.emit("\tb %s", end)
		g.emit("%s:", els)
		if err := g.genExpr(ex.Else); err != nil {
			return err
		}
		g.emit("%s:", end)
		return nil
	}
	return errf(e.exprLine(), "internal: unhandled expression %T", e)
}

func (g *gen) genBinary(ex *BinExpr) error {
	// Short-circuit logicals.
	if ex.Op == "&&" || ex.Op == "||" {
		out := g.label("sc")
		end := g.label("scend")
		if err := g.genExpr(ex.L); err != nil {
			return err
		}
		if ex.Op == "&&" {
			g.emit("\tbeqz $v0, %s", out)
		} else {
			g.emit("\tbnez $v0, %s", out)
		}
		if err := g.genExpr(ex.R); err != nil {
			return err
		}
		if ex.Op == "&&" {
			g.emit("\tbeqz $v0, %s", out)
			g.emit("\tli $v0, 1")
			g.emit("\tb %s", end)
			g.emit("%s:", out)
			g.emit("\tli $v0, 0")
		} else {
			g.emit("\tbnez $v0, %s", out)
			g.emit("\tli $v0, 0")
			g.emit("\tb %s", end)
			g.emit("%s:", out)
			g.emit("\tli $v0, 1")
		}
		g.emit("%s:", end)
		return nil
	}

	if err := g.genExpr(ex.L); err != nil {
		return err
	}
	g.push()
	if err := g.genExpr(ex.R); err != nil {
		return err
	}
	g.pop("$t1") // $t1 = lhs, $v0 = rhs
	switch ex.Op {
	case "+":
		g.emit("\taddu $v0, $t1, $v0")
	case "-":
		g.emit("\tsubu $v0, $t1, $v0")
	case "*":
		g.emit("\tmult $t1, $v0")
		g.emit("\tmflo $v0")
	case "/":
		g.emit("\tdiv $t1, $v0")
		g.emit("\tmflo $v0")
	case "%":
		g.emit("\tdiv $t1, $v0")
		g.emit("\tmfhi $v0")
	case "&":
		g.emit("\tand $v0, $t1, $v0")
	case "|":
		g.emit("\tor $v0, $t1, $v0")
	case "^":
		g.emit("\txor $v0, $t1, $v0")
	case "<<":
		g.emit("\tsllv $v0, $t1, $v0")
	case ">>":
		g.emit("\tsrav $v0, $t1, $v0")
	case "<":
		g.emit("\tslt $v0, $t1, $v0")
	case ">":
		g.emit("\tslt $v0, $v0, $t1")
	case "<=":
		g.emit("\tslt $v0, $v0, $t1")
		g.emit("\txori $v0, $v0, 1")
	case ">=":
		g.emit("\tslt $v0, $t1, $v0")
		g.emit("\txori $v0, $v0, 1")
	case "==":
		g.emit("\txor $v0, $t1, $v0")
		g.emit("\tsltiu $v0, $v0, 1")
	case "!=":
		g.emit("\txor $v0, $t1, $v0")
		g.emit("\tsltu $v0, $zero, $v0")
	default:
		return errf(ex.Line, "internal: unhandled operator %q", ex.Op)
	}
	return nil
}

func (g *gen) genCall(ex *CallExpr) error {
	// Builtins.
	switch ex.Name {
	case "print", "putc":
		if len(ex.Args) != 1 {
			return errf(ex.Line, "%s takes one argument", ex.Name)
		}
		if err := g.genExpr(ex.Args[0]); err != nil {
			return err
		}
		g.emit("\tmove $a0, $v0")
		if ex.Name == "print" {
			g.emit("\tli $v0, 1")
			g.emit("\tsyscall")
			g.emit("\tli $a0, 10") // newline
		}
		g.emit("\tli $v0, 11")
		g.emit("\tsyscall")
		g.emit("\tli $v0, 0")
		return nil
	}
	fn, ok := g.funcs[ex.Name]
	if !ok {
		return errf(ex.Line, "undefined function %q", ex.Name)
	}
	if len(ex.Args) != len(fn.Params) {
		return errf(ex.Line, "%s expects %d arguments, got %d",
			ex.Name, len(fn.Params), len(ex.Args))
	}
	for _, a := range ex.Args {
		if err := g.genExpr(a); err != nil {
			return err
		}
		g.push()
	}
	for i := len(ex.Args) - 1; i >= 0; i-- {
		g.pop(fmt.Sprintf("$a%d", i))
	}
	g.emit("\tjal fn_%s", ex.Name)
	return nil
}
