package cc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pok/internal/emu"
)

// exprGen builds random MiniC expressions together with a Go evaluator,
// for differential testing of the whole compile-assemble-execute path.
type exprGen struct {
	r    *rand.Rand
	vars map[string]int32
}

var fuzzBinOps = []string{"+", "-", "*", "/", "%", "&", "|", "^",
	"<<", ">>", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}

// gen returns the source text and the expected value of a random
// expression of the given depth.
func (g *exprGen) gen(depth int) (string, int32) {
	if depth == 0 || g.r.Intn(4) == 0 {
		if g.r.Intn(2) == 0 {
			v := int32(g.r.Uint32() >> uint(g.r.Intn(24)))
			if g.r.Intn(2) == 0 {
				v = -v
			}
			return fmt.Sprintf("(%d)", v), v
		}
		names := []string{"va", "vb", "vc"}
		n := names[g.r.Intn(len(names))]
		return n, g.vars[n]
	}
	if g.r.Intn(5) == 0 {
		src, v := g.gen(depth - 1)
		switch g.r.Intn(3) {
		case 0:
			return "(-" + src + ")", -v
		case 1:
			return "(~" + src + ")", ^v
		default:
			if v == 0 {
				return "(!" + src + ")", 1
			}
			return "(!" + src + ")", 0
		}
	}
	op := fuzzBinOps[g.r.Intn(len(fuzzBinOps))]
	ls, lv := g.gen(depth - 1)
	rs, rv := g.gen(depth - 1)
	return "(" + ls + " " + op + " " + rs + ")", evalRef(op, lv, rv)
}

// evalRef mirrors the machine semantics, including the emulator's
// divide-by-zero convention (quotient -1, like the DIV unit's fixed
// value) and 5-bit shift masking.
func evalRef(op string, a, b int32) int32 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		if b == 0 {
			return -1 // emulator: lo = ^0 on divide by zero
		}
		if a == -1<<31 && b == -1 {
			return a
		}
		return a / b
	case "%":
		if b == 0 {
			return a // emulator: hi = rs on divide by zero
		}
		if a == -1<<31 && b == -1 {
			return 0
		}
		return a % b
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	case "<<":
		return a << (uint32(b) & 31)
	case ">>":
		return a >> (uint32(b) & 31)
	case "<":
		return b2i(a < b)
	case "<=":
		return b2i(a <= b)
	case ">":
		return b2i(a > b)
	case ">=":
		return b2i(a >= b)
	case "==":
		return b2i(a == b)
	case "!=":
		return b2i(a != b)
	case "&&":
		return b2i(a != 0 && b != 0)
	case "||":
		return b2i(a != 0 || b != 0)
	}
	panic("bad op " + op)
}

// TestExpressionFuzz compiles batches of random expressions and checks
// the executed results against the Go reference evaluator. Constant
// folding sees the literal halves of these trees, so the test covers both
// the folded and the emitted paths.
func TestExpressionFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	const rounds = 12
	const perRound = 20
	for round := 0; round < rounds; round++ {
		g := &exprGen{r: r, vars: map[string]int32{
			"va": int32(r.Uint32()),
			"vb": int32(r.Uint32() >> 16),
			"vc": int32(r.Intn(64)) - 32,
		}}
		var body strings.Builder
		var want strings.Builder
		for i := 0; i < perRound; i++ {
			src, v := g.gen(3)
			fmt.Fprintf(&body, "\tprint(%s);\n", src)
			fmt.Fprintf(&want, "%d\n", v)
		}
		prog := fmt.Sprintf(`
int main() {
	int va = %d;
	int vb = %d;
	int vc = %d;
%s	return 0;
}`, g.vars["va"], g.vars["vb"], g.vars["vc"], body.String())

		compiled, err := CompileProgram(prog)
		if err != nil {
			t.Fatalf("round %d: compile: %v\n%s", round, err, prog)
		}
		e := emu.New(compiled)
		if _, err := e.Run(50_000_000, nil); err != nil {
			t.Fatalf("round %d: run: %v", round, err)
		}
		if got := e.Output(); got != want.String() {
			t.Fatalf("round %d mismatch:\nprogram:\n%s\ngot:\n%s\nwant:\n%s",
				round, prog, got, want.String())
		}
	}
}
