package cc

import (
	"strings"
	"testing"

	"pok/internal/emu"
)

// compileRun compiles src, executes it, and returns the program output.
func compileRun(t *testing.T, src string) string {
	t.Helper()
	prog, err := CompileProgram(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e := emu.New(prog)
	if _, err := e.Run(50_000_000, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !e.Halted() {
		t.Fatal("program did not halt")
	}
	return e.Output()
}

func TestArithmeticAndPrecedence(t *testing.T) {
	out := compileRun(t, `
int main() {
	print(1 + 2 * 3);          // 7
	print((1 + 2) * 3);        // 9
	print(10 - 4 - 3);         // 3 (left assoc)
	print(100 / 7);            // 14
	print(100 % 7);            // 2
	print(-5 + 2);             // -3
	print(1 << 4 | 1);         // 17
	print(255 & 15 ^ 1);       // 14
	print(~0);                 // -1
	print(!0 + !5);            // 1
	print(-8 >> 1);            // -4 (arithmetic shift)
	return 0;
}`)
	want := "7\n9\n3\n14\n2\n-3\n17\n14\n-1\n1\n-4\n"
	if out != want {
		t.Fatalf("output:\n%q\nwant:\n%q", out, want)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	out := compileRun(t, `
int side = 0;
int effect(int v) { side = side + 1; return v; }
int main() {
	print(3 < 5);
	print(5 <= 5);
	print(5 > 5);
	print(5 >= 6);
	print(4 == 4);
	print(4 != 4);
	print(-1 < 0);             // signed comparison
	print(1 && 2);
	print(1 && 0);
	print(0 || 3);
	print(0 || 0);
	// Short circuit: the right side must not evaluate.
	int r = 0 && effect(1);
	r = 1 || effect(1);
	print(side);               // 0
	r = 1 && effect(1);
	print(side);               // 1
	return 0;
}`)
	want := "1\n1\n0\n0\n1\n0\n1\n1\n0\n1\n0\n0\n1\n"
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
}

func TestControlFlow(t *testing.T) {
	out := compileRun(t, `
int main() {
	int i;
	int sum = 0;
	for (i = 1; i <= 10; i++) sum += i;
	print(sum);                // 55
	int n = 0;
	while (n < 100) {
		n = n + 7;
		if (n % 2 == 0) continue;
		if (n > 60) break;
	}
	print(n);                  // 63
	if (sum > 50) print(1); else print(2);
	if (sum > 500) { print(3); } else { print(4); }
	return 0;
}`)
	want := "55\n63\n1\n4\n"
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	out := compileRun(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int gcd(int a, int b) {
	while (b != 0) {
		int t = b;
		b = a % b;
		a = t;
	}
	return a;
}
int sum4(int a, int b, int c, int d) { return a + b + c + d; }
int main() {
	print(fib(15));            // 610
	print(gcd(1071, 462));     // 21
	print(sum4(1, 2, 3, 4));   // 10
	print(sum4(fib(5), gcd(12, 18), 1, 0)); // 5 + 6 + 1 = 12
	return 0;
}`)
	want := "610\n21\n10\n12\n"
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	out := compileRun(t, `
int counter = 40;
int neg = -7;
int a[16];
int main() {
	counter += 2;
	print(counter);            // 42
	print(neg);                // -7
	int i;
	for (i = 0; i < 16; i++) a[i] = i * i;
	int sum = 0;
	for (i = 0; i < 16; i++) sum += a[i];
	print(sum);                // 1240
	a[3] = a[2] + a[4];        // 4 + 16
	print(a[3]);               // 20
	return 0;
}`)
	want := "42\n-7\n1240\n20\n"
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
}

func TestSieve(t *testing.T) {
	out := compileRun(t, `
int sieve[100];
int main() {
	int i;
	int count = 0;
	for (i = 2; i < 100; i++) {
		if (sieve[i] == 0) {
			count++;
			int j;
			for (j = i + i; j < 100; j += i) sieve[j] = 1;
		}
	}
	print(count);              // 25 primes below 100
	return 0;
}`)
	if out != "25\n" {
		t.Fatalf("output %q", out)
	}
}

func TestPutcAndCharLiterals(t *testing.T) {
	out := compileRun(t, `
int main() {
	putc('o');
	putc('k');
	putc(10);
	return 0;
}`)
	if out != "ok\n" {
		t.Fatalf("output %q", out)
	}
}

func TestExitCodeIsMainReturn(t *testing.T) {
	prog, err := CompileProgram(`int main() { return 42; }`)
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(prog)
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.ExitCode() != 42 {
		t.Fatalf("exit code %d", e.ExitCode())
	}
}

func TestCompoundAssignAndIncrement(t *testing.T) {
	out := compileRun(t, `
int a[4];
int main() {
	int x = 10;
	x += 5; x -= 3; x *= 2; x /= 3; x %= 5;  // ((10+5-3)*2/3)%5 = 8%5 = 3
	print(x);
	x <<= 4; x >>= 2; x |= 1; x &= 13; x ^= 6;  // ((3<<4)>>2|1)&13^6
	print(x);
	a[2] = 5;
	a[2] += 7;
	a[2]++;
	print(a[2]);               // 13
	int i = 0;
	i++; i++; i--;
	print(i);                  // 1
	return 0;
}`)
	// ((3<<4)>>2) = 12; 12|1 = 13; 13&13 = 13; 13^6 = 11
	want := "3\n11\n13\n1\n"
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":          `int f() { return 1; }`,
		"undefined var":    `int main() { return x; }`,
		"undefined func":   `int main() { return f(); }`,
		"redeclare":        `int main() { int x; int x; }`,
		"dup global":       "int g;\nint g;\nint main() { return 0; }",
		"dup func":         "int f() { return 0; }\nint f() { return 0; }\nint main() { return 0; }",
		"arg count":        `int f(int a) { return a; } int main() { return f(); }`,
		"too many params":  `int f(int a, int b, int c, int d, int e) { return 0; } int main() { return 0; }`,
		"break outside":    `int main() { break; }`,
		"continue outside": `int main() { continue; }`,
		"array no index":   `int a[4]; int main() { return a; }`,
		"index scalar":     `int x; int main() { x[0] = 1; }`,
		"assign to func":   `int f() { return 0; } int main() { f = 1; }`,
		"builtin redef":    `int print(int x) { return x; } int main() { return 0; }`,
		"bad token":        `int main() { return $; }`,
		"unterminated":     `int main() { /* forever`,
		"lex garbage":      "int main() { return 0; } @",
		"global func name": "int f;\nint f() { return 0; }\nint main() { return 0; }",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compile succeeded", name)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s: error %q lacks position", name, err)
		}
	}
}

func TestNestedCallsPreserveTemporaries(t *testing.T) {
	// The left operand of + must survive the call on the right.
	out := compileRun(t, `
int id(int x) { return x; }
int main() {
	int a = 3;
	print(a + id(4) * id(5));  // 23
	print(id(a) + a * id(2));  // 9
	return 0;
}`)
	if out != "23\n9\n" {
		t.Fatalf("output %q", out)
	}
}

func TestDeepRecursionStack(t *testing.T) {
	// 1000-deep recursion exercises frame handling.
	out := compileRun(t, `
int depth(int n) {
	if (n == 0) return 0;
	return 1 + depth(n - 1);
}
int main() {
	print(depth(1000));
	return 0;
}`)
	if out != "1000\n" {
		t.Fatalf("output %q", out)
	}
}

func TestCommentsAndFormats(t *testing.T) {
	out := compileRun(t, `
// line comment
/* block
   comment */
int main() {
	int hex = 0x10;   // 16
	print(hex /* inline */ + 1);
	return 0;
}`)
	if out != "17\n" {
		t.Fatalf("output %q", out)
	}
}

func TestTernary(t *testing.T) {
	out := compileRun(t, `
int max(int a, int b) { return a > b ? a : b; }
int main() {
	print(max(3, 9));                    // 9
	print(max(-3, -9));                  // -3
	print(1 ? 2 : 3);                    // folded: 2
	print(0 ? 2 : 3);                    // folded: 3
	int x = 5;
	print(x > 0 ? x > 3 ? 2 : 1 : 0);    // nested, right assoc: 2
	print((x % 2 == 0) ? 100 : 200);     // 200
	return 0;
}`)
	want := "9\n-3\n2\n3\n2\n200\n"
	if out != want {
		t.Fatalf("output %q want %q", out, want)
	}
	// Only the taken arm may have side effects.
	out = compileRun(t, `
int n = 0;
int bump() { n++; return n; }
int main() {
	int r = 1 == 2 ? bump() : 7;
	print(r);
	print(n);
	return 0;
}`)
	if out != "7\n0\n" {
		t.Fatalf("side effects: %q", out)
	}
	if _, err := Compile(`int main() { return 1 ? 2; }`); err == nil {
		t.Fatal("missing colon accepted")
	}
}

func TestGlobalArrayInitializers(t *testing.T) {
	out := compileRun(t, `
int lut[8] = {10, -20, 30};
int full[3] = {1, 2, 3};
int main() {
	print(lut[0] + lut[1] + lut[2]);  // 20
	print(lut[7]);                    // zero-filled
	print(full[2]);
	return 0;
}`)
	if out != "20\n0\n3\n" {
		t.Fatalf("output %q", out)
	}
	if _, err := Compile(`int a[2] = {1, 2, 3}; int main() { return 0; }`); err == nil {
		t.Fatal("oversized initializer accepted")
	}
	if _, err := Compile(`int a[2] = {1, x}; int main() { return 0; }`); err == nil {
		t.Fatal("non-constant initializer accepted")
	}
}
