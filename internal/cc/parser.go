package cc

import "fmt"

type parser struct {
	toks []token
	pos  int
}

// Parse builds the AST of a MiniC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		if err := p.topLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) line() int   { return p.cur().line }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", k)
	}
	return t, errf(t.line, "expected %q, found %q", want, t.text)
}

// topLevel parses one global declaration or function definition.
func (p *parser) topLevel(prog *Program) error {
	line := p.line()
	if !p.accept(tokKeyword, "int") && !p.accept(tokKeyword, "void") {
		return errf(line, "expected declaration, found %q", p.cur().text)
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	switch {
	case p.at(tokPunct, "("):
		fn, err := p.funcRest(name.text, line)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
	case p.at(tokPunct, "["):
		p.next()
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return err
		}
		if n.val <= 0 || n.val > 1<<20 {
			return errf(line, "array %s has invalid length %d", name.text, n.val)
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return err
		}
		g := &Global{Name: name.text, Len: int(n.val), Line: line}
		if p.accept(tokPunct, "=") {
			if _, err := p.expect(tokPunct, "{"); err != nil {
				return err
			}
			for !p.accept(tokPunct, "}") {
				v, err := p.constInt()
				if err != nil {
					return err
				}
				g.Elems = append(g.Elems, v)
				if !p.accept(tokPunct, ",") {
					if _, err := p.expect(tokPunct, "}"); err != nil {
						return err
					}
					break
				}
			}
			if len(g.Elems) > g.Len {
				return errf(line, "array %s has %d initializers for %d elements",
					name.text, len(g.Elems), g.Len)
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, g)
	default:
		g := &Global{Name: name.text, Line: line}
		if p.accept(tokPunct, "=") {
			v, err := p.constInt()
			if err != nil {
				return errf(line, "global initializers must be constants")
			}
			g.Init = v
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return nil
}

func (p *parser) funcRest(name string, line int) (*Func, error) {
	p.next() // consume "("
	fn := &Func{Name: name, Line: line}
	if !p.accept(tokPunct, ")") {
		p.accept(tokKeyword, "void")
		if !p.at(tokPunct, ")") {
			for {
				if !p.accept(tokKeyword, "int") {
					return nil, errf(p.line(), "parameter must be int")
				}
				id, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				fn.Params = append(fn.Params, id.text)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if len(fn.Params) > 4 {
		return nil, errf(line, "function %s has %d parameters (max 4)",
			name, len(fn.Params))
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, errf(p.line(), "unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// blockOrStmt parses either a braced block or a single statement.
func (p *parser) blockOrStmt() ([]Stmt, error) {
	if p.at(tokPunct, "{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) stmt() (Stmt, error) {
	line := p.line()
	switch {
	case p.accept(tokKeyword, "int"):
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Name: id.text, Line: line}
		if p.accept(tokPunct, "=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return d, nil

	case p.accept(tokKeyword, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: line}
		if p.accept(tokKeyword, "else") {
			els, err := p.blockOrStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.accept(tokKeyword, "while"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil

	case p.accept(tokKeyword, "for"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		st := &ForStmt{Line: line}
		if !p.at(tokPunct, ";") {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ")") {
			post, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil

	case p.accept(tokKeyword, "return"):
		st := &ReturnStmt{Line: line}
		if !p.at(tokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Value = e
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil

	case p.accept(tokKeyword, "break"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, nil

	case p.accept(tokKeyword, "continue"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, nil

	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// simpleStmt parses a declaration-free statement usable in for-headers:
// assignment (including op= and ++/--) or expression statement.
func (p *parser) simpleStmt() (Stmt, error) {
	line := p.line()
	if p.accept(tokKeyword, "int") {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Name: id.text, Line: line}
		if p.accept(tokPunct, "=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, nil
	}

	// Peek for an lvalue followed by an assignment operator.
	save := p.pos
	if p.at(tokIdent, "") {
		id := p.next()
		var idx Expr
		if p.accept(tokPunct, "[") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			idx = e
		}
		lv := &LValue{Name: id.text, Index: idx, Line: line}
		t := p.cur()
		switch t.text {
		case "=":
			p.next()
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Target: lv, Value: val, Line: line}, nil
		case "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			p.next()
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Target: lv, Line: line,
				Value: &BinExpr{Op: t.text[:len(t.text)-1],
					L: lvalueExpr(lv), R: val, Line: line}}, nil
		case "++", "--":
			p.next()
			op := "+"
			if t.text == "--" {
				op = "-"
			}
			return &AssignStmt{Target: lv, Line: line,
				Value: &BinExpr{Op: op, L: lvalueExpr(lv),
					R: &NumExpr{Val: 1, Line: line}, Line: line}}, nil
		}
		p.pos = save // not an assignment: re-parse as expression
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Line: line}, nil
}

// lvalueExpr converts an lvalue back into the matching read expression.
func lvalueExpr(lv *LValue) Expr {
	if lv.Index != nil {
		return &IndexExpr{Name: lv.Name, Index: lv.Index, Line: lv.Line}
	}
	return &VarExpr{Name: lv.Name, Line: lv.Line}
}

// constInt parses a (possibly negated) integer literal.
func (p *parser) constInt() (int32, error) {
	neg := p.accept(tokPunct, "-")
	n, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v := int32(n.val)
	if neg {
		v = -v
	}
	return v, nil
}

// Operator precedence, lowest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expr() (Expr, error) {
	cond, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if !p.at(tokPunct, "?") {
		return cond, nil
	}
	line := p.line()
	p.next()
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Line: line}, nil
}

func (p *parser) binary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binLevels[level] {
			if p.at(tokPunct, op) {
				line := p.line()
				p.next()
				rhs, err := p.binary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &BinExpr{Op: op, L: lhs, R: rhs, Line: line}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	line := p.line()
	for _, op := range []string{"-", "!", "~"} {
		if p.accept(tokPunct, op) {
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: op, X: x, Line: line}, nil
		}
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &NumExpr{Val: int32(t.val), Line: t.line}, nil
	case p.accept(tokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		switch {
		case p.accept(tokPunct, "("):
			call := &CallExpr{Name: t.text, Line: t.line}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
			}
			if len(call.Args) > 4 {
				return nil, errf(t.line, "call to %s has %d arguments (max 4)",
					t.text, len(call.Args))
			}
			return call, nil
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.text, Index: idx, Line: t.line}, nil
		default:
			return &VarExpr{Name: t.text, Line: t.line}, nil
		}
	}
	return nil, errf(t.line, "unexpected token %q in expression", t.text)
}
