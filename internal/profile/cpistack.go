package profile

import (
	"fmt"
	"strings"

	"pok/internal/telemetry"
)

// CPIStack is one run's cycle-accounting breakdown: every cycle of the
// run attributed to exactly one Component, so Comp sums to Cycles by
// construction (the invariant test in cpistack_test.go holds this
// against core.Result.Cycles for every baked-in workload).
type CPIStack struct {
	// Benchmark / Config label the run (from the dump meta or caller).
	Benchmark string `json:"benchmark,omitempty"`
	Config    string `json:"config,omitempty"`
	// Cycles is the attributed total (== the run's cycle count).
	Cycles int64 `json:"cycles"`
	// Insts counts committed instructions observed in the stream.
	Insts uint64 `json:"insts"`
	// Comp holds per-component attributed cycles, indexed by Component.
	Comp [NumComponents]int64 `json:"components"`
	// Lossy marks a stack built from a stream whose bounded ring
	// dropped events: totals still sum to Cycles, but early-run
	// attribution is approximate.
	Lossy bool `json:"lossy,omitempty"`
}

// CPI returns cycles per committed instruction.
func (st *CPIStack) CPI() float64 {
	if st.Insts == 0 {
		return 0
	}
	return float64(st.Cycles) / float64(st.Insts)
}

// Sum returns the attributed-cycle total (== Cycles by construction;
// exported so tests and the pok-prof self-check can assert it).
func (st *CPIStack) Sum() int64 {
	var n int64
	for _, c := range st.Comp {
		n += c
	}
	return n
}

// Merge folds o into st component-by-component, summing Cycles and
// Insts. Because each side's Comp sums to its Cycles by construction,
// the merged stack keeps the invariant (Sum() == Cycles) — the exported
// mergeable accumulator the fleet metrics pipeline aggregates across
// cells and workers. Merge is associative and commutative; a nil o is
// a no-op. Benchmark/Config labels are kept when they agree and
// cleared when they conflict.
func (st *CPIStack) Merge(o *CPIStack) {
	if o == nil {
		return
	}
	st.Benchmark = mergeLabel(st.Benchmark, o.Benchmark)
	st.Config = mergeLabel(st.Config, o.Config)
	st.Cycles += o.Cycles
	st.Insts += o.Insts
	for i := range st.Comp {
		st.Comp[i] += o.Comp[i]
	}
	st.Lossy = st.Lossy || o.Lossy
}

// mergeLabel keeps a label two sides agree on; "" is the identity and
// the result of a conflict (a merged stack spanning two benchmarks has
// no single benchmark).
func mergeLabel(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "" || a == b:
		return a
	}
	return ""
}

// Clone returns an independent copy (nil in, nil out).
func (st *CPIStack) Clone() *CPIStack {
	if st == nil {
		return nil
	}
	c := *st
	return &c
}

// commitRec is one committed instruction's attribution inputs, in
// commit (== program) order.
type commitRec struct {
	seq      uint64
	cycle    int64 // commit cycle
	fetchC   int64
	dispC    int64
	doneC    int64 // EvCommit.Arg: last obligation completed
	dep      int64 // EvCommit.Arg2: CommitDep* class
	resolveC int64 // branch resolution cycle (branches only)
	mispred  bool
}

// instRec accumulates one in-flight instruction's events until commit.
type instRec struct {
	fetchC   int64
	dispC    int64
	resolveC int64
	mispred  bool
	hasFetch bool
	hasDisp  bool
}

// BuildCPIStack attributes every cycle of a run to one component using
// interval-style accounting over the event stream.
//
// Cycles in which an instruction committed are CompBase. Every
// zero-commit gap cycle is attributed through the *next* committing
// instruction — with in-order commit the next committer is exactly the
// window head during the gap, so its oldest-unresolved obligation is
// what the machine was waiting for:
//
//   - before its dispatch, when the previous commit was a mispredicted
//     branch: CompBranch — the gap is the mispredict shadow (resolve
//     wait plus refetch and front-end refill), the penalty §5's early
//     resolution shrinks; interval accounting charges the whole refill
//     to the mispredict;
//   - otherwise before its fetch, or fetched but within the front-end
//     pipeline depth: CompFetch;
//   - front end cleared but not dispatched: CompWindow;
//   - dispatched: the component of the commit's dependence class
//     (EvCommit.Arg2) — slice, replay, LSQ, D-cache, branch, DRAM.
//
// Cycles after the last commit (pipeline drain) are CompFetch.
//
// totalCycles is the run's cycle count (core.Result.Cycles, or the
// dump meta's cycles field); when <= 0 it is inferred as the last
// event cycle + 1, which undercounts only the silent drain tail.
func BuildCPIStack(events []telemetry.Event, totalCycles int64) (*CPIStack, error) {
	live := make(map[uint64]*instRec)
	var commits []commitRec
	var maxCycle int64

	for i := range events {
		ev := &events[i]
		if ev.Cycle > maxCycle {
			maxCycle = ev.Cycle
		}
		switch ev.Kind {
		case telemetry.EvFetch:
			if ev.Arg2 != 0 {
				continue // wrong-path fetch: never commits
			}
			live[ev.Seq] = &instRec{fetchC: ev.Cycle, hasFetch: true}
		case telemetry.EvDispatch:
			if r := live[ev.Seq]; r != nil {
				r.dispC, r.hasDisp = ev.Cycle, true
			}
		case telemetry.EvBranchResolve:
			if r := live[ev.Seq]; r != nil {
				r.resolveC = ev.Arg
				r.mispred = ev.Arg2&telemetry.ResolveMispredict != 0
			}
		case telemetry.EvSquash:
			delete(live, ev.Seq)
		case telemetry.EvCommit:
			c := commitRec{seq: ev.Seq, cycle: ev.Cycle,
				doneC: ev.Arg, dep: ev.Arg2}
			if r := live[ev.Seq]; r != nil {
				c.fetchC, c.dispC = r.fetchC, r.dispC
				c.resolveC, c.mispred = r.resolveC, r.mispred
				if !r.hasFetch || !r.hasDisp {
					c.fetchC, c.dispC = ev.Cycle, ev.Cycle
				}
				delete(live, ev.Seq)
			} else {
				// Lossy stream: the fetch/dispatch events fell off the
				// ring. Clamp the boundaries to the commit cycle so
				// the gap attribution stays well-formed.
				c.fetchC, c.dispC = ev.Cycle, ev.Cycle
			}
			commits = append(commits, c)
		}
	}

	if totalCycles <= 0 {
		totalCycles = maxCycle + 1
	}

	st := &CPIStack{Cycles: totalCycles, Insts: uint64(len(commits))}
	if len(commits) == 0 {
		st.Comp[CompFetch] = totalCycles
		return st, nil
	}

	// Front-end latency: the pipeline's fetch-to-dispatch depth is the
	// minimum observed over all commits (the first instruction after a
	// quiet front end dispatches unblocked).
	frontLat := int64(1 << 62)
	for i := range commits {
		if d := commits[i].dispC - commits[i].fetchC; d >= 0 && d < frontLat {
			frontLat = d
		}
	}

	prev := int64(-1) // last attributed cycle (commit or gap)
	shadowed := false // previous commit was a mispredicted branch
	for i := range commits {
		c := &commits[i]
		end := c.cycle
		if end >= totalCycles {
			end = totalCycles - 1
		}
		for x := prev + 1; x < end; x++ {
			st.Comp[st.gapComponent(x, c, frontLat, shadowed)]++
		}
		if end > prev {
			st.Comp[CompBase]++ // first commit in this cycle
			prev = end
		}
		shadowed = c.mispred
	}
	// Drain tail: cycles after the last commit.
	for x := prev + 1; x < totalCycles; x++ {
		st.Comp[CompFetch]++
	}
	return st, nil
}

// gapComponent attributes one zero-commit cycle x via the next
// committing instruction c. shadowed marks c as the refetch target of
// a just-committed mispredicted branch: its whole pre-dispatch refill
// is then the mispredict penalty.
func (st *CPIStack) gapComponent(x int64, c *commitRec, frontLat int64, shadowed bool) Component {
	if shadowed && x < c.dispC {
		return CompBranch // mispredict shadow: resolve wait + refill
	}
	switch {
	case x < c.fetchC:
		return CompFetch
	case x < c.fetchC+frontLat:
		return CompFetch // in flight in the front-end pipeline
	case x < c.dispC:
		return CompWindow
	default:
		return depComponent(c.dep)
	}
}

// Render formats the stack as the fixed-width report pok-prof prints.
func (st *CPIStack) Render() string {
	var b strings.Builder
	name := st.Benchmark
	if st.Config != "" {
		if name != "" {
			name += " / "
		}
		name += st.Config
	}
	if name == "" {
		name = "run"
	}
	fmt.Fprintf(&b, "CPI stack: %s\n", name)
	fmt.Fprintf(&b, "  cycles %d  insts %d  CPI %.4f\n", st.Cycles, st.Insts, st.CPI())
	if st.Lossy {
		b.WriteString("  (lossy stream: ring dropped events; early-run attribution approximate)\n")
	}
	for i := 0; i < NumComponents; i++ {
		cyc := st.Comp[i]
		pct := 0.0
		if st.Cycles > 0 {
			pct = 100 * float64(cyc) / float64(st.Cycles)
		}
		bar := strings.Repeat("#", int(pct/2.5+0.5))
		fmt.Fprintf(&b, "  %-18s %10d  %5.1f%%  %s\n",
			Component(i).Label(), cyc, pct, bar)
	}
	fmt.Fprintf(&b, "  %-18s %10d  100.0%%\n", "total", st.Sum())
	return b.String()
}

// RenderCompare formats a side-by-side CPI-stack diff between two
// runs (pok-prof -compare). Deltas are relative to a.
func RenderCompare(a, b *CPIStack) string {
	var sb strings.Builder
	la, lb := a.label(), b.label()
	fmt.Fprintf(&sb, "CPI-stack compare: %s vs %s\n", la, lb)
	fmt.Fprintf(&sb, "  %-18s %12s %12s %9s\n", "component", la, lb, "delta")
	for i := 0; i < NumComponents; i++ {
		ca, cb := a.Comp[i], b.Comp[i]
		var delta string
		switch {
		case ca == 0 && cb == 0:
			delta = "-"
		case ca == 0:
			delta = "new"
		default:
			delta = fmt.Sprintf("%+.1f%%", 100*float64(cb-ca)/float64(ca))
		}
		fmt.Fprintf(&sb, "  %-18s %12d %12d %9s\n",
			Component(i).Label(), ca, cb, delta)
	}
	fmt.Fprintf(&sb, "  %-18s %12d %12d %9s\n", "total", a.Cycles, b.Cycles,
		fmt.Sprintf("%+.1f%%", pctDelta(a.Cycles, b.Cycles)))
	fmt.Fprintf(&sb, "  %-18s %12.4f %12.4f %9s\n", "CPI", a.CPI(), b.CPI(), "")
	return sb.String()
}

func pctDelta(a, b int64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * float64(b-a) / float64(a)
}

func (st *CPIStack) label() string {
	switch {
	case st.Benchmark != "" && st.Config != "":
		return st.Benchmark + "/" + st.Config
	case st.Benchmark != "":
		return st.Benchmark
	case st.Config != "":
		return st.Config
	}
	return "run"
}
