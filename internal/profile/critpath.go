package profile

import (
	"errors"
	"fmt"
	"strings"

	"pok/internal/telemetry"
)

// EdgeKind classifies one hop of the critical path: what kind of
// dependence made the child wait for the parent.
type EdgeKind int

const (
	// EdgeDispatch: the chain's root — front-end and dispatch time of
	// the first instruction on the path (no in-flight producer).
	EdgeDispatch EdgeKind = iota
	// EdgeSlice: a register slice-dependence edge between instructions.
	EdgeSlice
	// EdgeCarry: the entry's own previous slice (carry chain or
	// in-order slice issue).
	EdgeCarry
	// EdgeLoadLSQ: the producing load was gated by LSQ disambiguation
	// or satisfied by store forwarding.
	EdgeLoadLSQ
	// EdgeLoadDCache: the producing load's D-cache hit latency.
	EdgeLoadDCache
	// EdgeLoadWay: the producing load replayed through partial-tag way
	// verification (§5.2).
	EdgeLoadWay
	// EdgeLoadDRAM: the producing load missed L1 and waited on the
	// lower hierarchy.
	EdgeLoadDRAM
	// EdgeBranchResolve: the instruction's fetch was gated by a
	// mispredicted branch's resolution (§5 early resolution shrinks
	// these edges).
	EdgeBranchResolve

	// NumEdgeKinds is the edge taxonomy size.
	NumEdgeKinds = int(EdgeBranchResolve) + 1
)

var edgeKindNames = [NumEdgeKinds]string{
	"dispatch", "slice", "carry", "load-lsq", "load-dcache",
	"load-way-mispredict", "load-dram", "branch-resolve",
}

// String returns the edge kind's stable report name.
func (k EdgeKind) String() string {
	if k >= 0 && int(k) < NumEdgeKinds {
		return edgeKindNames[k]
	}
	return "unknown"
}

// PathStep is one hop of the critical path, listed end-first: the
// chain waited Cycles for this dependence, completing at cycle At.
type PathStep struct {
	Seq    uint64   `json:"seq"`
	Slice  int8     `json:"slice"`
	Kind   EdgeKind `json:"-"`
	KindS  string   `json:"kind"`
	Cycles int64    `json:"cycles"`
	At     int64    `json:"at"`
}

// CriticalPath is the longest dependence chain through the per-slice
// dataflow DAG, with per-edge-kind cycle totals: "slice4 helps gcc
// because branch-resolution edges shrink 31%" read straight off Kind.
type CriticalPath struct {
	// Length is the completion cycle of the path's terminal slice-op.
	Length int64 `json:"length"`
	// Kind holds per-edge-kind cycle totals, summing to Length.
	Kind [NumEdgeKinds]int64 `json:"kinds"`
	// Steps is the full chain, end-first.
	Steps []PathStep `json:"steps"`
}

// cpNode is one executed slice-op in the rebuilt dependence DAG.
type cpNode struct {
	startC  int64 // issue cycle (EvSliceIssue)
	doneC   int64 // bypass-availability cycle (EvSliceComplete.Arg)
	critArg int64 // EvSliceIssue.Arg: critical-producer encoding
	seq     uint64
	slice   int8
	present bool
}

// cpInst accumulates one instruction's DAG-relevant state.
type cpInst struct {
	nodes     []cpNode
	fetchC    int64
	resolveC  int64
	memDone   int64
	dep       int64 // EvCommit.Arg2
	seq       uint64
	committed bool
	isLoad    bool
	mispred   bool
	forwarded bool
}

// lastNode returns the instruction's latest-completing slice-op.
func (in *cpInst) lastNode() *cpNode {
	var best *cpNode
	for i := range in.nodes {
		n := &in.nodes[i]
		if n.present && (best == nil || n.doneC > best.doneC) {
			best = n
		}
	}
	return best
}

// producerNode picks the node of producer pr that gated a consumer
// slice-op at slice sl which completed by cycle t. With partial
// operand bypassing the consumer's slice s waits only for the
// producer's matching slice s, so prefer that node; when it is absent
// (or finished after t, which cannot be the gating edge), fall back to
// the producer's latest node done by t.
func producerNode(pr *cpInst, sl int8, t int64) *cpNode {
	if s := int(sl); s >= 0 && s < len(pr.nodes) &&
		pr.nodes[s].present && pr.nodes[s].doneC <= t {
		return &pr.nodes[s]
	}
	var best *cpNode
	for i := range pr.nodes {
		n := &pr.nodes[i]
		if n.present && n.doneC <= t && (best == nil || n.doneC > best.doneC) {
			best = n
		}
	}
	return best
}

// loadEdgeKind maps a producing load's commit-dependence class onto
// the edge taxonomy.
func loadEdgeKind(in *cpInst) EdgeKind {
	switch in.dep {
	case telemetry.CommitDepLSQ:
		return EdgeLoadLSQ
	case telemetry.CommitDepWayMispredict:
		return EdgeLoadWay
	case telemetry.CommitDepDRAM:
		return EdgeLoadDRAM
	default:
		if in.forwarded {
			return EdgeLoadLSQ
		}
		return EdgeLoadDCache
	}
}

// ErrNoCommits reports an event stream with no committed instructions.
var ErrNoCommits = errors.New("profile: event stream contains no commits")

// BuildCriticalPath rebuilds the per-slice dependence DAG from the
// slice-issue/complete edges of a complete event stream and walks the
// longest chain backward from the latest-completing committed slice-op.
//
// Each EvSliceIssue carries its critical producer (the input whose
// ground-truth availability gated the issue), so the backward walk
// follows exactly the gating edges: register slice dependences, carry
// chains, load completions (classified by the load's own commit
// dependence: LSQ / D-cache / way-mispredict / DRAM), and — when a
// chain root's fetch sat in a mispredicted branch's shadow — the
// branch-resolution edge back into the branch's comparison slices.
//
// The stream must be complete: a lossy (ring-overwritten) dump would
// silently produce a wrong path, so callers with a DumpMeta must
// refuse Dropped > 0 streams (pok-prof does).
func BuildCriticalPath(events []telemetry.Event) (*CriticalPath, error) {
	insts := make(map[uint64]*cpInst)
	get := func(seq uint64) *cpInst {
		in := insts[seq]
		if in == nil {
			in = &cpInst{seq: seq, resolveC: -1, memDone: -1, dep: -1}
			insts[seq] = in
		}
		return in
	}
	// Mispredicted committed branches, in commit order, for shadow
	// (fetch-gating) edges.
	var mispredBr []*cpInst

	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case telemetry.EvFetch:
			in := get(ev.Seq)
			in.fetchC = ev.Cycle
		case telemetry.EvSliceIssue:
			in := get(ev.Seq)
			sl := int(ev.Slice)
			for len(in.nodes) <= sl {
				in.nodes = append(in.nodes, cpNode{})
			}
			in.nodes[sl] = cpNode{startC: ev.Cycle, doneC: ev.Cycle + 1,
				critArg: ev.Arg, seq: ev.Seq, slice: ev.Slice, present: true}
		case telemetry.EvSliceComplete:
			in := get(ev.Seq)
			if sl := int(ev.Slice); sl < len(in.nodes) && in.nodes[sl].present {
				in.nodes[sl].doneC = ev.Arg
			}
		case telemetry.EvMemIssue:
			in := get(ev.Seq)
			in.isLoad = true
			in.memDone = ev.Arg
			in.forwarded = in.forwarded || ev.Arg2 != 0
		case telemetry.EvBranchResolve:
			in := get(ev.Seq)
			in.resolveC = ev.Arg
			in.mispred = ev.Arg2&telemetry.ResolveMispredict != 0
		case telemetry.EvCommit:
			in := get(ev.Seq)
			in.committed = true
			in.dep = ev.Arg2
			if in.mispred {
				mispredBr = append(mispredBr, in)
			}
		case telemetry.EvSquash:
			// Sequence numbers are rolled back on squash and reused by
			// the refetched correct path; drop the wrong-path record.
			delete(insts, ev.Seq)
		}
	}

	// Terminal node: the latest-completing slice-op of any committed
	// instruction (ties to the younger instruction).
	var end *cpNode
	var endInst *cpInst
	for _, in := range insts {
		if !in.committed {
			continue
		}
		n := in.lastNode()
		if n == nil {
			continue
		}
		if end == nil || n.doneC > end.doneC ||
			(n.doneC == end.doneC && in.seq > endInst.seq) {
			end, endInst = n, in
		}
	}
	if end == nil {
		return nil, ErrNoCommits
	}

	cp := &CriticalPath{Length: end.doneC}
	add := func(seq uint64, sl int8, k EdgeKind, cycles, at int64) {
		if cycles < 0 {
			cycles = 0
		}
		cp.Kind[k] += cycles
		cp.Steps = append(cp.Steps, PathStep{Seq: seq, Slice: sl,
			Kind: k, KindS: k.String(), Cycles: cycles, At: at})
	}
	// shadowBranch finds the mispredicted branch whose resolution
	// gated a refetch at cycle fetchC (resolution just before fetch).
	shadowBranch := func(seq uint64, fetchC int64) *cpInst {
		var best *cpInst
		for _, b := range mispredBr {
			if b.seq >= seq || b.resolveC > fetchC {
				continue
			}
			if fetchC-b.resolveC > 8 {
				continue // too old: fetch was blocked on something else
			}
			if best == nil || b.resolveC > best.resolveC {
				best = b
			}
		}
		return best
	}

	cur, curInst, t := end, endInst, end.doneC
	for steps := 0; steps < 1<<20; steps++ {
		// Carry chain / in-order slice issue: previous own slice.
		if cur.critArg == -1 && int(cur.slice) > 0 {
			if sl := int(cur.slice) - 1; sl < len(curInst.nodes) && curInst.nodes[sl].present {
				p := &curInst.nodes[sl]
				add(cur.seq, cur.slice, EdgeCarry, t-p.doneC, t)
				cur, t = p, p.doneC
				continue
			}
		}
		// Recorded register producer.
		if cur.critArg > 0 {
			if pr := insts[uint64(cur.critArg-1)]; pr != nil {
				if pr.isLoad && pr.memDone >= 0 && pr.memDone <= t {
					// The operand arrived with the load's data: split
					// the hop into the consumer's wait on the memory
					// system (classified by the load's commit
					// dependence) and continue from the load's address
					// generation.
					if agen := pr.lastNode(); agen != nil && agen.doneC <= pr.memDone {
						add(cur.seq, cur.slice, EdgeSlice, t-pr.memDone, t)
						add(pr.seq, -1, loadEdgeKind(pr), pr.memDone-agen.doneC, pr.memDone)
						cur, curInst, t = agen, pr, agen.doneC
						continue
					}
				}
				if p := producerNode(pr, cur.slice, t); p != nil {
					add(cur.seq, cur.slice, EdgeSlice, t-p.doneC, t)
					cur, curInst, t = p, pr, p.doneC
					continue
				}
			}
		}
		// No gating producer left in the stream. If this instruction's
		// fetch sat in a mispredicted branch's shadow the path
		// continues through the branch's resolving comparison;
		// otherwise dispatch is in order, so what gated this
		// instruction's issue was its dispatch predecessor — follow
		// it, charging the hop to the dispatch edge, so the per-kind
		// totals describe the whole run instead of collapsing into one
		// giant root edge.
		if b := shadowBranch(curInst.seq, curInst.fetchC); b != nil {
			if p := b.lastNode(); p != nil && p.doneC <= t {
				add(cur.seq, cur.slice, EdgeBranchResolve, t-p.doneC, t)
				cur, curInst, t = p, b, p.doneC
				continue
			}
		}
		pr, p := dispatchPred(insts, curInst.seq, t)
		if pr == nil {
			// True root: the first instruction of the chain (or no
			// earlier-completing predecessor under OoO slices).
			add(cur.seq, cur.slice, EdgeDispatch, t, t)
			return cp, nil
		}
		add(cur.seq, cur.slice, EdgeDispatch, t-p.doneC, t)
		cur, curInst, t = p, pr, p.doneC
	}
	return cp, nil
}

// dispatchPred finds the nearest older committed instruction whose
// latest slice-op completed by cycle t — the in-order dispatch
// predecessor the walk continues through when an instruction had no
// in-flight register producer. Out-of-order slice completion can leave
// immediate predecessors finishing after t; the scan skips up to a
// small window of them before declaring a root.
func dispatchPred(insts map[uint64]*cpInst, seq uint64, t int64) (*cpInst, *cpNode) {
	for back := uint64(1); back <= 64 && back <= seq; back++ {
		pr := insts[seq-back]
		if pr == nil || !pr.committed {
			continue
		}
		if p := pr.lastNode(); p != nil && p.doneC <= t {
			return pr, p
		}
	}
	return nil, nil
}

// Render formats the critical path: per-edge-kind totals, then up to
// maxSteps hops from the end of the chain (0 = all).
func (cp *CriticalPath) Render(maxSteps int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d cycles, %d hops\n", cp.Length, len(cp.Steps))
	for k := 0; k < NumEdgeKinds; k++ {
		cyc := cp.Kind[k]
		if cyc == 0 {
			continue
		}
		pct := 0.0
		if cp.Length > 0 {
			pct = 100 * float64(cyc) / float64(cp.Length)
		}
		fmt.Fprintf(&b, "  %-20s %10d  %5.1f%%\n", EdgeKind(k).String(), cyc, pct)
	}
	n := len(cp.Steps)
	if maxSteps > 0 && maxSteps < n {
		n = maxSteps
	}
	if n > 0 {
		b.WriteString("  chain (end first):\n")
	}
	for i := 0; i < n; i++ {
		s := cp.Steps[i]
		loc := fmt.Sprintf("#%d", s.Seq)
		if s.Slice >= 0 {
			loc += fmt.Sprintf(" s%d", s.Slice)
		} else {
			loc += " mem"
		}
		fmt.Fprintf(&b, "    @%-8d %-12s %-20s +%d\n", s.At, loc, s.KindS, s.Cycles)
	}
	if n < len(cp.Steps) {
		fmt.Fprintf(&b, "    ... %d more hops\n", len(cp.Steps)-n)
	}
	return b.String()
}
