package profile

import "pok/internal/telemetry"

// Live is a chained telemetry.Collector that accumulates the complete
// event stream for profiling while forwarding everything to an inner
// collector (typically the standard Recorder), so attaching the
// profiler changes nothing about what the Recorder sees or aggregates.
//
// Unlike the Recorder's bounded ring, Live grows without dropping —
// the CPI stack and critical path need every commit edge — so it is an
// opt-in analysis mode (pok-sim -prof), not an always-on collector.
// Because it only copies value-typed events, attaching it cannot
// perturb simulated timing: the nil-collector identity test holds the
// profiled run's Result bit-identical to the bare run's.
type Live struct {
	inner  telemetry.Collector
	events []telemetry.Event
	cycles int64 // last sampled cycle + 1

	// Benchmark / Config label the stacks built from this collector.
	Benchmark string
	Config    string
}

// NewLive chains a profiling collector in front of inner (which may be
// nil to profile without recording).
func NewLive(inner telemetry.Collector) *Live {
	return &Live{inner: inner, events: make([]telemetry.Event, 0, 1<<16)}
}

// Event implements telemetry.Collector.
func (l *Live) Event(ev telemetry.Event) {
	l.events = append(l.events, ev)
	if l.inner != nil {
		l.inner.Event(ev)
	}
}

// CycleSample implements telemetry.Collector.
func (l *Live) CycleSample(cs telemetry.CycleSample) {
	if cs.Cycle+1 > l.cycles {
		l.cycles = cs.Cycle + 1
	}
	if l.inner != nil {
		l.inner.CycleSample(cs)
	}
}

// Summary implements telemetry.Collector by forwarding the inner
// collector's aggregation (nil when profiling without a Recorder).
func (l *Live) Summary() *telemetry.Summary {
	if l.inner != nil {
		return l.inner.Summary()
	}
	return nil
}

// Events returns the complete accumulated stream in emission order.
func (l *Live) Events() []telemetry.Event { return l.events }

// Cycles returns the number of simulated cycles observed.
func (l *Live) Cycles() int64 { return l.cycles }

// Stack builds the run's CPI stack from the accumulated stream.
func (l *Live) Stack() (*CPIStack, error) {
	st, err := BuildCPIStack(l.events, l.cycles)
	if err != nil {
		return nil, err
	}
	st.Benchmark, st.Config = l.Benchmark, l.Config
	return st, nil
}

// CriticalPath extracts the run's critical path from the accumulated
// stream (which is complete by construction, so never lossy).
func (l *Live) CriticalPath() (*CriticalPath, error) {
	return BuildCriticalPath(l.events)
}
