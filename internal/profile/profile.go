// Package profile is the offline cycle-accounting and critical-path
// analysis engine over the telemetry event stream.
//
// The telemetry layer (PR 2) counts pipeline events; this package
// explains *where a run's cycles went*. It consumes the structured
// event stream — live, via the Live chained Collector, or offline from
// a JSONL dump — and produces three views:
//
//   - a CPI stack (cpistack.go): every commit-to-commit cycle of the
//     run attributed to exactly one bottleneck component, so the stack
//     sums to the run's total cycle count by construction;
//   - a critical path (critpath.go): the longest dependence chain
//     through the per-slice dataflow DAG rebuilt from slice-issue
//     edges, with per-edge-kind cycle totals;
//   - a Perfetto / Chrome trace-event export (perfetto.go) of the
//     slice pipeline, one track per stage, plus a self-profiling
//     overlay of the analyser's own wall-time phases (selfprof.go).
//
// The attribution taxonomy mirrors the paper's argument (§5, §7):
// partial operand knowledge removes cycles from LSQ disambiguation
// waits, D-cache way verification, and branch resolution latency. The
// CPI stack makes those three components (and their shrinkage between
// configurations) directly printable.
package profile

import "pok/internal/telemetry"

// Component enumerates the CPI-stack attribution taxonomy. Every cycle
// of a run is attributed to exactly one component.
type Component int

const (
	// CompBase: cycles in which at least one instruction committed.
	CompBase Component = iota
	// CompFetch: zero-commit cycles in which the next committing
	// instruction had not yet cleared the front end (I-cache misses,
	// refetch after squash, wrong-path occupancy, fill and drain).
	CompFetch
	// CompWindow: zero-commit cycles the next committing instruction
	// spent fetched but not dispatched — the window, LSQ or issue
	// queue was full.
	CompWindow
	// CompSlice: zero-commit cycles after dispatch in which the next
	// committing instruction waited on slice-dependence edges
	// (operands, carry chain, in-order slice issue, issue bandwidth).
	CompSlice
	// CompReplay: as CompSlice, but the instruction's own slice-ops
	// replayed, so misspeculation recovery is the binding cost.
	CompReplay
	// CompLSQ: zero-commit cycles gated by load/store-queue
	// disambiguation (a load held back, or satisfied by forwarding).
	CompLSQ
	// CompDCache: zero-commit cycles gated by a D-cache hit access,
	// including partial-tag way-mispredict verification replays (§5.2).
	CompDCache
	// CompBranch: zero-commit cycles gated by branch resolution —
	// either the committing branch's own resolve, or fetch blocked in
	// a mispredicted branch's shadow (§5 early resolution shrinks it).
	CompBranch
	// CompDRAM: zero-commit cycles gated by an L1 D-cache miss waiting
	// on the lower memory hierarchy.
	CompDRAM

	// NumComponents is the taxonomy size.
	NumComponents = int(CompDRAM) + 1
)

// componentNames are the stable short names (wire/report keys).
var componentNames = [NumComponents]string{
	"base", "fetch", "window", "slice", "replay",
	"lsq", "dcache", "branch", "dram",
}

// componentLabels are the human-facing report labels.
var componentLabels = [NumComponents]string{
	"base", "fetch/wrong-path", "window-full", "slice-dependence",
	"replay", "lsq-disambig", "dcache/way-verify", "branch-resolution",
	"dram",
}

// String returns the component's stable short name.
func (c Component) String() string {
	if c >= 0 && int(c) < NumComponents {
		return componentNames[c]
	}
	return "unknown"
}

// Label returns the component's human-facing report label.
func (c Component) Label() string {
	if c >= 0 && int(c) < NumComponents {
		return componentLabels[c]
	}
	return "unknown"
}

// depComponent maps an EvCommit.Arg2 dependence class to the stack
// component that owns the gap cycles it explains.
func depComponent(dep int64) Component {
	switch dep {
	case telemetry.CommitDepReplay:
		return CompReplay
	case telemetry.CommitDepLSQ:
		return CompLSQ
	case telemetry.CommitDepDCache, telemetry.CommitDepWayMispredict:
		return CompDCache
	case telemetry.CommitDepDRAM:
		return CompDRAM
	case telemetry.CommitDepBranch:
		return CompBranch
	default: // CommitDepNone, CommitDepSlice
		return CompSlice
	}
}
