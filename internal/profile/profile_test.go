package profile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pok/internal/telemetry"
)

// Synthetic-stream unit tests for the attribution logic itself: the
// workload sweep in cpistack_test.go proves conservation at scale, and
// these pin *which* component individual gap cycles land in.

// TestCPIStackGapAttribution builds a hand-written stream:
//
//	#1: fetch 0, dispatch 1, commits at 3 waiting on nothing
//	#2: fetch 1, dispatch 2, commits at 9 waiting on DRAM
//	#3: fetch 10, dispatch 12, commits at 15 as a mispredicted branch
//	#4: fetch 16, dispatch 19, commits at 22 (in #3's shadow)
//
// with 24 total cycles. frontLat = min(disp-fetch) = 1.
func TestCPIStackGapAttribution(t *testing.T) {
	evs := []telemetry.Event{
		{Cycle: 0, Seq: 1, Kind: telemetry.EvFetch, Slice: -1},
		{Cycle: 1, Seq: 1, Kind: telemetry.EvDispatch, Slice: -1},
		{Cycle: 3, Seq: 1, Kind: telemetry.EvCommit, Slice: -1, Arg: 2, Arg2: telemetry.CommitDepNone},
		{Cycle: 1, Seq: 2, Kind: telemetry.EvFetch, Slice: -1},
		{Cycle: 2, Seq: 2, Kind: telemetry.EvDispatch, Slice: -1},
		{Cycle: 9, Seq: 2, Kind: telemetry.EvCommit, Slice: -1, Arg: 9, Arg2: telemetry.CommitDepDRAM},
		{Cycle: 10, Seq: 3, Kind: telemetry.EvFetch, Slice: -1},
		{Cycle: 12, Seq: 3, Kind: telemetry.EvDispatch, Slice: -1},
		{Cycle: 14, Seq: 3, Kind: telemetry.EvBranchResolve, Slice: -1, Arg: 14, Arg2: telemetry.ResolveMispredict},
		{Cycle: 15, Seq: 3, Kind: telemetry.EvCommit, Slice: -1, Arg: 14, Arg2: telemetry.CommitDepBranch},
		{Cycle: 16, Seq: 4, Kind: telemetry.EvFetch, Slice: -1},
		{Cycle: 19, Seq: 4, Kind: telemetry.EvDispatch, Slice: -1},
		{Cycle: 22, Seq: 4, Kind: telemetry.EvCommit, Slice: -1, Arg: 20, Arg2: telemetry.CommitDepSlice},
	}
	st, err := BuildCPIStack(evs, 24)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sum() != 24 {
		t.Fatalf("attributed %d of 24 cycles\n%s", st.Sum(), st.Render())
	}
	if st.Insts != 4 {
		t.Fatalf("insts = %d, want 4", st.Insts)
	}
	// Interval rules, cycle by cycle (frontLat = 1):
	//   cycle  0     -> #1 in front end (x < fetch+frontLat) -> fetch
	//   cycles 1,2   -> #1 post-dispatch, dep none           -> slice
	//   cycles 4-8   -> #2 post-dispatch, DRAM               -> dram
	//   cycle  10    -> #3 in front end                      -> fetch
	//   cycle  11    -> #3 renamed but not dispatched        -> window
	//   cycles 12-14 -> #3 post-dispatch, branch-resolution  -> branch
	//   cycles 16-18 -> #4 pre-dispatch in #3's shadow       -> branch
	//   cycles 19-21 -> #4 post-dispatch, slice              -> slice
	//   cycle  23    -> drain                                -> fetch
	checks := map[Component]int64{
		CompBase:   4, // commit cycles 3, 9, 15, 22
		CompFetch:  3,
		CompWindow: 1,
		CompSlice:  5,
		CompDRAM:   5,
		CompBranch: 6,
	}
	for comp, n := range checks {
		if st.Comp[comp] != n {
			t.Errorf("%s = %d cycles, want %d\n%s", comp.Label(), st.Comp[comp], n, st.Render())
		}
	}
}

// TestCPIStackLossyClamp feeds a stream whose fetch/dispatch events
// are missing (as after ring overwrite) and requires conservation to
// survive via the commit-cycle clamp.
func TestCPIStackLossyClamp(t *testing.T) {
	evs := []telemetry.Event{
		{Cycle: 5, Seq: 1, Kind: telemetry.EvCommit, Slice: -1, Arg: 5, Arg2: telemetry.CommitDepDCache},
		{Cycle: 9, Seq: 2, Kind: telemetry.EvCommit, Slice: -1, Arg: 9, Arg2: telemetry.CommitDepLSQ},
	}
	st, err := BuildCPIStack(evs, 12)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sum() != 12 {
		t.Fatalf("attributed %d of 12 cycles\n%s", st.Sum(), st.Render())
	}
	// Gap cycles before a clamped commit are all pre-fetch.
	if st.Comp[CompBase] != 2 {
		t.Errorf("base = %d, want 2", st.Comp[CompBase])
	}
}

// TestCPIStackSquashDropsRecord: a squashed seq must not leak its
// wrong-path record into a later commit with the same (reused) seq.
func TestCPIStackSquashDropsRecord(t *testing.T) {
	evs := []telemetry.Event{
		{Cycle: 0, Seq: 1, Kind: telemetry.EvFetch, Slice: -1},
		{Cycle: 2, Seq: 1, Kind: telemetry.EvSquash, Slice: -1},
		// Reused seq 1 on the correct path.
		{Cycle: 4, Seq: 1, Kind: telemetry.EvFetch, Slice: -1},
		{Cycle: 5, Seq: 1, Kind: telemetry.EvDispatch, Slice: -1},
		{Cycle: 7, Seq: 1, Kind: telemetry.EvCommit, Slice: -1, Arg: 6, Arg2: telemetry.CommitDepNone},
	}
	st, err := BuildCPIStack(evs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sum() != 8 || st.Insts != 1 {
		t.Fatalf("sum %d insts %d, want 8 and 1\n%s", st.Sum(), st.Insts, st.Render())
	}
	// Cycles 0-3 must route through the refetched record (fetchC=4), so
	// they are pre-fetch, not post-dispatch of the squashed ghost.
	if st.Comp[CompFetch] < 4 {
		t.Errorf("fetch = %d, want >= 4 (pre-refetch gap)\n%s", st.Comp[CompFetch], st.Render())
	}
}

// TestCriticalPathSyntheticChain rebuilds a three-instruction chain
// (producer slice ops -> consumer via recorded critical producer) and
// checks the walk follows the recorded edges.
func TestCriticalPathSyntheticChain(t *testing.T) {
	evs := []telemetry.Event{
		// #1: slices 0,1 carry chain, done at 3.
		{Cycle: 0, Seq: 1, Kind: telemetry.EvFetch, Slice: -1},
		{Cycle: 1, Seq: 1, Kind: telemetry.EvSliceIssue, Slice: 0, Arg: 0},
		{Cycle: 1, Seq: 1, Kind: telemetry.EvSliceComplete, Slice: 0, Arg: 2},
		{Cycle: 2, Seq: 1, Kind: telemetry.EvSliceIssue, Slice: 1, Arg: -1},
		{Cycle: 2, Seq: 1, Kind: telemetry.EvSliceComplete, Slice: 1, Arg: 3},
		{Cycle: 3, Seq: 1, Kind: telemetry.EvCommit, Slice: -1, Arg: 3, Arg2: telemetry.CommitDepSlice},
		// #2: slice 0 waits on #1 (critArg = seq+1 = 2), slice 1 rides
		// its own carry chain; done at 6.
		{Cycle: 1, Seq: 2, Kind: telemetry.EvFetch, Slice: -1},
		{Cycle: 4, Seq: 2, Kind: telemetry.EvSliceIssue, Slice: 0, Arg: 2},
		{Cycle: 4, Seq: 2, Kind: telemetry.EvSliceComplete, Slice: 0, Arg: 5},
		{Cycle: 5, Seq: 2, Kind: telemetry.EvSliceIssue, Slice: 1, Arg: -1},
		{Cycle: 5, Seq: 2, Kind: telemetry.EvSliceComplete, Slice: 1, Arg: 6},
		{Cycle: 6, Seq: 2, Kind: telemetry.EvCommit, Slice: -1, Arg: 6, Arg2: telemetry.CommitDepSlice},
	}
	cp, err := BuildCriticalPath(evs)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length != 6 {
		t.Fatalf("length = %d, want 6\n%s", cp.Length, cp.Render(0))
	}
	var sum int64
	for _, k := range cp.Kind {
		sum += k
	}
	if sum != cp.Length {
		t.Fatalf("kinds sum to %d, length %d\n%s", sum, cp.Length, cp.Render(0))
	}
	// The chain must include a slice edge (#2 <- #1) and a carry edge
	// (#1 s1 <- s0).
	if cp.Kind[EdgeSlice] == 0 || cp.Kind[EdgeCarry] == 0 {
		t.Fatalf("chain missed slice/carry edges:\n%s", cp.Render(0))
	}
	if cp.Steps[0].Seq != 2 {
		t.Fatalf("chain should end at #2:\n%s", cp.Render(0))
	}
}

// TestCriticalPathNoCommits: a stream with no commits has no path.
func TestCriticalPathNoCommits(t *testing.T) {
	evs := []telemetry.Event{
		{Cycle: 0, Seq: 1, Kind: telemetry.EvFetch, Slice: -1},
	}
	if _, err := BuildCriticalPath(evs); err != ErrNoCommits {
		t.Fatalf("err = %v, want ErrNoCommits", err)
	}
}

// TestWritePerfettoValidJSON runs the exporter over a synthetic stream
// and requires structurally valid Chrome trace-event JSON with the
// expected track metadata.
func TestWritePerfettoValidJSON(t *testing.T) {
	evs := []telemetry.Event{
		{Cycle: 0, Seq: 1, Kind: telemetry.EvFetch, Slice: -1, Arg: 0x400000},
		{Cycle: 2, Seq: 1, Kind: telemetry.EvDispatch, Slice: -1},
		{Cycle: 3, Seq: 1, Kind: telemetry.EvSliceIssue, Slice: 0, Arg: 0},
		{Cycle: 3, Seq: 1, Kind: telemetry.EvSliceComplete, Slice: 0, Arg: 4},
		{Cycle: 3, Seq: 1, Kind: telemetry.EvMemIssue, Slice: -1, Arg: 6},
		{Cycle: 5, Seq: 1, Kind: telemetry.EvBranchResolve, Slice: -1, Arg: 5, Arg2: telemetry.ResolveEarly},
		{Cycle: 6, Seq: 1, Kind: telemetry.EvCommit, Slice: -1, Arg: 6},
		{Cycle: 4, Seq: 2, Kind: telemetry.EvFetch, Slice: -1, Arg: 0x400004, Arg2: 1},
		{Cycle: 5, Seq: 2, Kind: telemetry.EvSquash, Slice: -1},
	}
	sp := NewSelfProfile()
	sp.Phase("unit")()
	var b bytes.Buffer
	if err := WritePerfetto(&b, evs, PerfettoOptions{Self: sp}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	out := b.String()
	for _, want := range []string{"process_name", "thread_name", "front end", "commit", "squash"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

// TestPerfettoMaxEventsCap: the exporter truncates at MaxEvents
// without corrupting the JSON envelope.
func TestPerfettoMaxEventsCap(t *testing.T) {
	var evs []telemetry.Event
	for i := 0; i < 200; i++ {
		evs = append(evs,
			telemetry.Event{Cycle: int64(i), Seq: uint64(i + 1), Kind: telemetry.EvFetch, Slice: -1},
			telemetry.Event{Cycle: int64(i + 1), Seq: uint64(i + 1), Kind: telemetry.EvDispatch, Slice: -1},
			telemetry.Event{Cycle: int64(i + 3), Seq: uint64(i + 1), Kind: telemetry.EvCommit, Slice: -1, Arg: int64(i + 3)},
		)
	}
	var b bytes.Buffer
	if err := WritePerfetto(&b, evs, PerfettoOptions{MaxEvents: 50}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("truncated trace is invalid JSON: %v", err)
	}
}
