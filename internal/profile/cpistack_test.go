package profile_test

import (
	"fmt"
	"testing"

	"pok/internal/core"
	"pok/internal/profile"
	"pok/internal/workload"
)

// The CPI stack's headline contract is conservation: every cycle of a
// run is attributed to exactly one component, so the per-component
// cycles sum to core.Result.Cycles exactly — not approximately — for
// every baked-in workload, under the simple pipeline and both
// bit-slice widths, on both schedulers. The companion contract is that
// profiling is pure observation: a run with the Live collector
// attached produces a Result bit-identical to the bare run's.

func invariantConfigs() []core.Config {
	return []core.Config{
		core.SimplePipelined(4),
		core.BitSliced(2),
		core.BitSliced(4),
	}
}

func runProfiled(t *testing.T, bench string, cfg core.Config, insts uint64) (*core.Result, *profile.Live) {
	t.Helper()
	w := workload.MustGet(bench)
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	lc := profile.NewLive(nil)
	lc.Benchmark, lc.Config = bench, cfg.Name
	cfg.Collector = lc
	r, err := core.RunWarm(prog, cfg, w.FastForward, insts)
	if err != nil {
		t.Fatal(err)
	}
	return r, lc
}

func runPlain(t *testing.T, bench string, cfg core.Config, insts uint64) *core.Result {
	t.Helper()
	w := workload.MustGet(bench)
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.RunWarm(prog, cfg, w.FastForward, insts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCPIStackAccountsEveryCycle sweeps every workload x config x
// scheduler and requires exact cycle conservation plus a bit-identical
// Result with and without the profiler attached.
func TestCPIStackAccountsEveryCycle(t *testing.T) {
	const insts = 10_000
	for _, bench := range workload.Names() {
		for _, base := range invariantConfigs() {
			for _, legacy := range []bool{false, true} {
				cfg := base
				cfg.LegacyScheduler = legacy
				name := fmt.Sprintf("%s/%s/legacy=%v", bench, cfg.Name, legacy)
				t.Run(name, func(t *testing.T) {
					r, lc := runProfiled(t, bench, cfg, insts)
					st, err := lc.Stack()
					if err != nil {
						t.Fatal(err)
					}
					if got := st.Sum(); got != r.Cycles {
						t.Errorf("attributed %d cycles, run has %d\n%s",
							got, r.Cycles, st.Render())
					}
					if st.Insts != r.Insts {
						t.Errorf("stack saw %d commits, run committed %d", st.Insts, r.Insts)
					}
					if lc.Cycles() != r.Cycles {
						t.Errorf("collector sampled %d cycles, run has %d", lc.Cycles(), r.Cycles)
					}

					plain := runPlain(t, bench, cfg, insts)
					got, want := *r, *plain
					got.Telemetry, want.Telemetry = nil, nil
					if got != want {
						t.Errorf("profiler perturbed the run:\nwith:\n%s\nwithout:\n%s",
							r.Summary(), plain.Summary())
					}
				})
			}
		}
	}
}

// TestCriticalPathConservation holds the path extractor to its own
// telescoping invariant on a real stream: the per-edge-kind totals sum
// to the path length, and the chain is non-empty for any committing
// run.
func TestCriticalPathConservation(t *testing.T) {
	for _, base := range invariantConfigs() {
		r, lc := runProfiled(t, "gzip", base, 10_000)
		cp, err := lc.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, k := range cp.Kind {
			sum += k
		}
		if sum != cp.Length {
			t.Errorf("%s: edge kinds sum to %d, path length %d", base.Name, sum, cp.Length)
		}
		if cp.Length <= 0 || cp.Length > r.Cycles {
			t.Errorf("%s: path length %d outside (0, %d]", base.Name, cp.Length, r.Cycles)
		}
		if len(cp.Steps) == 0 {
			t.Errorf("%s: empty chain", base.Name)
		}
	}
}
