package profile

import (
	"fmt"
	"strings"
	"time"
)

// SelfProfile records the analyser's own wall-time phases so a
// Perfetto export can overlay "what the tool spent its time on" next
// to the simulated pipeline (the self-profiling mode of pok-prof).
type SelfProfile struct {
	t0     time.Time
	phases []SelfPhase
}

// SelfPhase is one wall-clock phase of the analyser.
type SelfPhase struct {
	Name  string
	Start time.Duration // offset from profile start
	End   time.Duration
}

// NewSelfProfile starts a wall-clock phase recorder.
func NewSelfProfile() *SelfProfile {
	return &SelfProfile{t0: time.Now()}
}

// Phase opens a named wall-time phase and returns its closer:
//
//	defer sp.Phase("parse dump")()
func (sp *SelfProfile) Phase(name string) func() {
	i := len(sp.phases)
	sp.phases = append(sp.phases, SelfPhase{Name: name, Start: time.Since(sp.t0)})
	return func() { sp.phases[i].End = time.Since(sp.t0) }
}

// Phases returns the recorded phases in open order.
func (sp *SelfProfile) Phases() []SelfPhase { return sp.phases }

// Render formats the phases as a short wall-time report.
func (sp *SelfProfile) Render() string {
	var b strings.Builder
	b.WriteString("self-profile (wall time):\n")
	for _, p := range sp.phases {
		end := p.End
		if end == 0 {
			end = time.Since(sp.t0)
		}
		fmt.Fprintf(&b, "  %-16s %10.3fms\n", p.Name,
			float64(end-p.Start)/float64(time.Millisecond))
	}
	return b.String()
}
