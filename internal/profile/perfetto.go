package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"pok/internal/telemetry"
)

// Perfetto / Chrome trace-event export: the slice pipeline rendered as
// one track per stage (fetch, one execute track per slice index,
// memory), one trace slice per instruction-slice, with branch
// resolutions and commits as instant markers. Load the JSON in
// ui.perfetto.dev or chrome://tracing. One simulated cycle maps to one
// microsecond of trace time.
//
// Stages overlap freely inside a cycle (IssueWidth > 1), which the
// trace-event model renders as nesting; a per-stage lane allocator
// spreads concurrent slices over parallel threads instead, so each
// lane shows a clean, non-overlapping sequence.

// PerfettoOptions tunes the export.
type PerfettoOptions struct {
	// MaxEvents caps emitted trace events (0 = DefaultPerfettoMax);
	// the export stops cleanly at the cap so huge dumps stay loadable.
	MaxEvents int
	// Self overlays the analyser's own wall-time phases as a second
	// process track when non-nil.
	Self *SelfProfile
}

// DefaultPerfettoMax bounds the export to stay loadable in the UI.
const DefaultPerfettoMax = 400000

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	pidPipeline = 1
	pidSelf     = 2

	tidFetch  = 100 // + lane
	tidExec   = 200 // + 16*slice + lane
	tidMem    = 400 // + lane
	tidMark   = 500 // resolve / commit instants
	laneWidth = 16
)

// laneAlloc spreads overlapping intervals over parallel lanes.
type laneAlloc struct{ busy []int64 }

func (la *laneAlloc) alloc(start, end int64) int {
	for i, b := range la.busy {
		if b <= start {
			la.busy[i] = end
			return i
		}
	}
	la.busy = append(la.busy, end)
	return len(la.busy) - 1
}

// WritePerfetto renders the event stream as trace-event JSON.
func WritePerfetto(w io.Writer, events []telemetry.Event, opt PerfettoOptions) error {
	maxEv := opt.MaxEvents
	if maxEv <= 0 {
		maxEv = DefaultPerfettoMax
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	n := 0
	first := true
	emit := func(te *traceEvent) error {
		if n >= maxEv {
			return nil
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		n++
		b, err := json.Marshal(te)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Track metadata.
	meta := func(pid, tid int, name string, sort int) error {
		if err := emit(&traceEvent{Name: "process_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": map[int]string{
				pidPipeline: "pok slice pipeline", pidSelf: "pok-prof self"}[pid]}}); err != nil {
			return err
		}
		if err := emit(&traceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name}}); err != nil {
			return err
		}
		return emit(&traceEvent{Name: "thread_sort_index", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"sort_index": sort}})
	}

	type pending struct {
		fetchC int64
		pc     int64
		wp     bool
	}
	inFlight := make(map[uint64]*pending)
	var fetchLanes laneAlloc
	execLanes := make(map[int8]*laneAlloc)
	var memLanes laneAlloc
	namedExec := make(map[int8]bool)
	namedFetch, namedMem, namedMark := false, false, false

	for i := range events {
		if n >= maxEv {
			break
		}
		ev := &events[i]
		ts := ev.Cycle // 1 cycle == 1µs
		var err error
		switch ev.Kind {
		case telemetry.EvFetch:
			inFlight[ev.Seq] = &pending{fetchC: ev.Cycle, pc: ev.Arg, wp: ev.Arg2 != 0}
		case telemetry.EvDispatch:
			p := inFlight[ev.Seq]
			if p == nil {
				break
			}
			if !namedFetch {
				namedFetch = true
				if err = meta(pidPipeline, tidFetch, "front end", 0); err != nil {
					break
				}
			}
			dur := ev.Cycle - p.fetchC
			if dur < 1 {
				dur = 1
			}
			lane := fetchLanes.alloc(p.fetchC, p.fetchC+dur)
			if lane >= laneWidth {
				lane = laneWidth - 1
			}
			err = emit(&traceEvent{Name: fmt.Sprintf("#%d", ev.Seq), Cat: "front",
				Ph: "X", TS: p.fetchC, Dur: dur, PID: pidPipeline, TID: tidFetch + lane,
				Args: map[string]any{"pc": fmt.Sprintf("0x%x", p.pc), "wrong_path": p.wp}})
		case telemetry.EvSliceIssue:
			la := execLanes[ev.Slice]
			if la == nil {
				la = &laneAlloc{}
				execLanes[ev.Slice] = la
			}
			if !namedExec[ev.Slice] {
				namedExec[ev.Slice] = true
				name := fmt.Sprintf("exec s%d", ev.Slice)
				if ev.Arg2 != 0 {
					name = "exec s0 (full/sliced)"
				}
				if err = meta(pidPipeline, tidExec+laneWidth*int(ev.Slice),
					name, 10+int(ev.Slice)); err != nil {
					break
				}
			}
			// Duration refined by EvSliceComplete, which the core emits
			// in the same call; 1 cycle is the sliced default.
			lane := la.alloc(ts, ts+1)
			if lane >= laneWidth {
				lane = laneWidth - 1
			}
			err = emit(&traceEvent{Name: fmt.Sprintf("#%d s%d", ev.Seq, ev.Slice),
				Cat: "exec", Ph: "X", TS: ts, Dur: 1, PID: pidPipeline,
				TID:  tidExec + laneWidth*int(ev.Slice) + lane,
				Args: map[string]any{"critical_producer": ev.Arg}})
		case telemetry.EvReplay:
			err = emit(&traceEvent{Name: fmt.Sprintf("replay #%d s%d", ev.Seq, ev.Slice),
				Cat: "replay", Ph: "i", TS: ts, PID: pidPipeline, TID: tidMark, S: "t",
				Args: map[string]any{"retry": ev.Arg, "cause": ev.Arg2}})
		case telemetry.EvMemIssue:
			if !namedMem {
				namedMem = true
				if err = meta(pidPipeline, tidMem, "memory", 90); err != nil {
					break
				}
			}
			dur := ev.Arg - ts
			if dur < 1 || ev.Arg >= int64(1)<<60 {
				dur = 1
			}
			lane := memLanes.alloc(ts, ts+dur)
			if lane >= laneWidth {
				lane = laneWidth - 1
			}
			err = emit(&traceEvent{Name: fmt.Sprintf("#%d mem", ev.Seq), Cat: "mem",
				Ph: "X", TS: ts, Dur: dur, PID: pidPipeline, TID: tidMem + lane,
				Args: map[string]any{"forwarded": ev.Arg2 != 0}})
		case telemetry.EvBranchResolve:
			if !namedMark {
				namedMark = true
				if err = meta(pidPipeline, tidMark, "resolve/commit/squash", 95); err != nil {
					break
				}
			}
			err = emit(&traceEvent{Name: fmt.Sprintf("resolve #%d", ev.Seq),
				Cat: "branch", Ph: "i", TS: ev.Arg, PID: pidPipeline, TID: tidMark, S: "t",
				Args: map[string]any{"mispredict": ev.Arg2&telemetry.ResolveMispredict != 0,
					"early": ev.Arg2&telemetry.ResolveEarly != 0}})
		case telemetry.EvCommit:
			delete(inFlight, ev.Seq)
			err = emit(&traceEvent{Name: fmt.Sprintf("commit #%d", ev.Seq),
				Cat: "commit", Ph: "i", TS: ts, PID: pidPipeline, TID: tidMark, S: "t",
				Args: map[string]any{"done": ev.Arg,
					"dep": telemetry.CommitDepName(ev.Arg2)}})
		case telemetry.EvSquash:
			delete(inFlight, ev.Seq)
			err = emit(&traceEvent{Name: fmt.Sprintf("squash #%d", ev.Seq),
				Cat: "squash", Ph: "i", TS: ts, PID: pidPipeline, TID: tidMark, S: "t"})
		}
		if err != nil {
			return err
		}
	}

	// Self-profiling overlay: the analyser's wall-time phases as a
	// second process (ts in real microseconds).
	if opt.Self != nil {
		if err := meta(pidSelf, 1, "phases", 0); err != nil {
			return err
		}
		for _, p := range opt.Self.Phases() {
			end := p.End
			if end == 0 {
				end = p.Start
			}
			if err := emit(&traceEvent{Name: p.Name, Cat: "self", Ph: "X",
				TS:  p.Start.Microseconds(),
				Dur: maxI64(1, (end - p.Start).Microseconds()),
				PID: pidSelf, TID: 1}); err != nil {
				return err
			}
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
