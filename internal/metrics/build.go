package metrics

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// BuildInfo is the provenance stamp attached to /api/status and the
// pok-serve startup log, mirroring the BENCH_*.json provenance fields
// so dashboard snapshots archived from CI are attributable to a
// commit and toolchain.
type BuildInfo struct {
	GitSHA    string `json:"git_sha,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
}

// DetectBuild resolves provenance at startup: the go toolchain version
// from the runtime, and the git SHA from the binary's embedded VCS
// stamp when present, else `git rev-parse --short HEAD` (empty outside
// a checkout — provenance is best-effort, never fatal).
func DetectBuild() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 7 {
				b.GitSHA = s.Value[:7]
			}
		}
	}
	if b.GitSHA == "" {
		if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			b.GitSHA = strings.TrimSpace(string(out))
		}
	}
	return b
}

// String renders the stamp for log lines ("abc1234 go1.22.1", or just
// the go version when no SHA is resolvable).
func (b BuildInfo) String() string {
	if b.GitSHA == "" {
		return b.GoVersion
	}
	return b.GitSHA + " " + b.GoVersion
}
