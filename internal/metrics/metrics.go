// Package metrics is the fleet observability layer: compact, mergeable
// telemetry snapshots that flow worker → coordinator → humans and
// machines.
//
// Workers fold each finished program's telemetry into a Snapshot
// (CPI-stack component cycles from internal/profile, per-stage
// occupancy histograms from internal/stats via the telemetry summary,
// throughput, replay/squash counts, RPC health counters) and piggyback
// it on the existing heartbeat/complete RPCs. Snapshots are
// deterministic except for the explicitly wall-clock fields (WallNanos
// and the derived Minst/s), and they never influence simulation
// results — the fleet equivalence tests prove findings stay
// byte-identical with metrics on or off.
//
// Merge is associative and commutative, so the coordinator can fold
// cell snapshots in any arrival order: fleet aggregates are
// reproducible regardless of worker interleaving. The coordinator
// exposes the aggregates as Prometheus text (prom.go), JSON
// (/api/metrics) and the live dashboard.
package metrics

import (
	"time"

	"pok/internal/profile"
	"pok/internal/telemetry"
)

// Snapshot is the unit of fleet telemetry: one worker's accumulated
// view of one lease (or one solo campaign). All fields are sums (or
// unions) so that snapshots from disjoint program ranges merge into
// the campaign total.
type Snapshot struct {
	// Programs / Runs / Findings count campaign progress: programs
	// completed, detection runs executed, findings recorded.
	Programs int `json:"programs,omitempty"`
	Runs     int `json:"runs,omitempty"`
	Findings int `json:"findings,omitempty"`

	// Insts / Cycles are the committed-instruction and simulated-cycle
	// totals over all successful detection runs; with WallNanos they
	// give the emulator+timing-core throughput (MinstPerSec).
	Insts  uint64 `json:"insts,omitempty"`
	Cycles int64  `json:"cycles,omitempty"`
	// WallNanos is wall time spent in detection runs. It is the one
	// intentionally nondeterministic field (throughput is meaningless
	// without it); everything else in a snapshot is reproducible.
	WallNanos int64 `json:"wall_nanos,omitempty"`

	// Replays / Squashes count scheduler replay and pipeline squash
	// events over all runs.
	Replays  uint64 `json:"replays,omitempty"`
	Squashes uint64 `json:"squashes,omitempty"`
	// EventsDropped counts telemetry events that fell off bounded
	// recorder rings — surfaced as a red badge on the dashboard.
	EventsDropped uint64 `json:"events_dropped,omitempty"`

	// RPCRetries / TransportErrors mirror the worker's client stats at
	// snapshot-send time (cumulative per worker, not per cell); the
	// coordinator reads them for per-worker RPC-health series.
	RPCRetries      int64 `json:"rpc_retries,omitempty"`
	TransportErrors int64 `json:"transport_errors,omitempty"`

	// Stacks holds one merged CPI stack per simulator config name —
	// the per-config cycle-accounting breakdown (profile.CPIStack.Comp
	// sums to Cycles by construction, and Merge preserves that).
	// Cardinality is bounded by the config whitelist (soak.ConfigByName).
	Stacks map[string]*profile.CPIStack `json:"stacks,omitempty"`

	// Telemetry is the merged lightweight summary fold (event counts,
	// occupancy histograms, replay attribution) over all runs.
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
}

// AddRun folds one finished detection run into the snapshot: its
// committed insts/cycles/replays, its per-config CPI stack (nil when
// the run failed or telemetry was off) and its telemetry summary.
func (s *Snapshot) AddRun(config string, insts uint64, cycles int64,
	replays uint64, stack *profile.CPIStack, sum *telemetry.Summary,
	wall time.Duration) {
	s.Runs++
	s.Insts += insts
	s.Cycles += cycles
	s.Replays += replays
	s.WallNanos += int64(wall)
	if stack != nil {
		if s.Stacks == nil {
			s.Stacks = make(map[string]*profile.CPIStack)
		}
		if acc := s.Stacks[config]; acc != nil {
			acc.Merge(stack)
		} else {
			s.Stacks[config] = stack.Clone()
		}
	}
	if sum != nil {
		s.Squashes += sum.Events["squash"]
		s.EventsDropped += sum.EventsDropped
		if s.Telemetry == nil {
			s.Telemetry = &telemetry.Summary{}
		}
		s.Telemetry.Merge(sum)
	}
}

// Merge folds o into s. Associative and commutative (over snapshots
// whose per-config stacks carry matching labels), so cell snapshots
// can be folded in any arrival order. A nil o is a no-op.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	s.Programs += o.Programs
	s.Runs += o.Runs
	s.Findings += o.Findings
	s.Insts += o.Insts
	s.Cycles += o.Cycles
	s.WallNanos += o.WallNanos
	s.Replays += o.Replays
	s.Squashes += o.Squashes
	s.EventsDropped += o.EventsDropped
	s.RPCRetries += o.RPCRetries
	s.TransportErrors += o.TransportErrors
	if len(o.Stacks) > 0 && s.Stacks == nil {
		s.Stacks = make(map[string]*profile.CPIStack, len(o.Stacks))
	}
	for cfg, st := range o.Stacks {
		if acc := s.Stacks[cfg]; acc != nil {
			acc.Merge(st)
		} else {
			s.Stacks[cfg] = st.Clone()
		}
	}
	if o.Telemetry != nil {
		if s.Telemetry == nil {
			s.Telemetry = &telemetry.Summary{}
		}
		s.Telemetry.Merge(o.Telemetry)
	}
}

// Clone returns an independent deep copy (nil in, nil out) — what
// workers hand to the heartbeat path so in-flight RPC encoding never
// races the soak loop's ongoing accumulation.
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	c := *s
	if s.Stacks != nil {
		c.Stacks = make(map[string]*profile.CPIStack, len(s.Stacks))
		for cfg, st := range s.Stacks {
			c.Stacks[cfg] = st.Clone()
		}
	}
	c.Telemetry = s.Telemetry.Clone()
	return &c
}

// MinstPerSec is the blended throughput: committed instructions per
// wall second, in millions (0 before any wall time accrues).
func (s *Snapshot) MinstPerSec() float64 {
	if s == nil || s.WallNanos <= 0 {
		return 0
	}
	return float64(s.Insts) / (float64(s.WallNanos) / 1e9) / 1e6
}
