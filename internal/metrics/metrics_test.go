package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pok/internal/profile"
	"pok/internal/stats"
	"pok/internal/telemetry"
)

// genStack builds a random CPI stack whose components sum to Cycles
// (the invariant BuildCPIStack guarantees by construction) and whose
// Config label matches its map key, as real snapshots carry.
func genStack(r *rand.Rand, cfg string) *profile.CPIStack {
	st := &profile.CPIStack{Config: cfg, Insts: uint64(r.Intn(10_000))}
	for i := range st.Comp {
		st.Comp[i] = int64(r.Intn(5_000))
		st.Cycles += st.Comp[i]
	}
	st.Lossy = r.Intn(4) == 0
	return st
}

func genHist(r *rand.Rand) *stats.Histogram {
	if r.Intn(4) == 0 {
		return nil
	}
	h := &stats.Histogram{Bins: make([]uint64, 1+r.Intn(16))}
	for i := range h.Bins {
		h.Bins[i] = uint64(r.Intn(100))
		h.Total += h.Bins[i]
		h.Sum += uint64(i) * h.Bins[i]
		if h.Bins[i] > 0 {
			h.Max = i
		}
	}
	return h
}

func genSummary(r *rand.Rand) *telemetry.Summary {
	if r.Intn(4) == 0 {
		return nil
	}
	s := &telemetry.Summary{
		CyclesSampled:     uint64(r.Intn(100_000)),
		EventsDropped:     uint64(r.Intn(3)),
		ReplayLoadLatency: uint64(r.Intn(50)),
		ReplayPendingAddr: uint64(r.Intn(50)),
		ResolvesEarly:     uint64(r.Intn(50)),
		ResolvesFull:      uint64(r.Intn(50)),
		WindowOcc:         genHist(r),
		IQOcc:             genHist(r),
		LSQOcc:            genHist(r),
		IssueUse:          genHist(r),
		PortUse:           genHist(r),
	}
	// nil or non-empty, never empty-non-nil: Merge's lazy map allocation
	// would otherwise distinguish the two orders.
	if n := r.Intn(4); n > 0 {
		s.Events = make(map[string]uint64, n)
		for _, k := range []string{"commit", "squash", "replay"}[:n] {
			s.Events[k] = uint64(r.Intn(1_000))
		}
	}
	return s
}

func genSnapshot(r *rand.Rand) *Snapshot {
	s := &Snapshot{
		Programs:        r.Intn(100),
		Runs:            r.Intn(100),
		Findings:        r.Intn(5),
		Insts:           uint64(r.Intn(1_000_000)),
		Cycles:          int64(r.Intn(1_000_000)),
		WallNanos:       int64(r.Intn(1_000_000)),
		Replays:         uint64(r.Intn(1_000)),
		Squashes:        uint64(r.Intn(1_000)),
		EventsDropped:   uint64(r.Intn(3)),
		RPCRetries:      int64(r.Intn(5)),
		TransportErrors: int64(r.Intn(5)),
		Telemetry:       genSummary(r),
	}
	if n := r.Intn(4); n > 0 {
		s.Stacks = make(map[string]*profile.CPIStack, n)
		for _, cfg := range []string{"simple4", "slice2", "slice4"}[:n] {
			s.Stacks[cfg] = genStack(r, cfg)
		}
	}
	return s
}

func merged(a, b *Snapshot) *Snapshot {
	m := a.Clone()
	m.Merge(b)
	return m
}

// TestMergeCommutative: a+b == b+a for random snapshots, so the
// coordinator's fold is independent of cell arrival order.
func TestMergeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b := genSnapshot(r), genSnapshot(r)
		ab, ba := merged(a, b), merged(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("iter %d: merge not commutative:\na+b = %+v\nb+a = %+v", i, ab, ba)
		}
	}
}

// TestMergeAssociative: (a+b)+c == a+(b+c), so re-folds after requeues
// and partial-lease merges agree with one-shot folds.
func TestMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a, b, c := genSnapshot(r), genSnapshot(r), genSnapshot(r)
		left := merged(merged(a, b), c)
		right := merged(a, merged(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("iter %d: merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v",
				i, left, right)
		}
	}
}

// TestMergePreservesStackInvariant: per-config component cycles sum to
// the config's attributed total after arbitrary merges — the property
// the /metrics acceptance check scrapes for.
func TestMergePreservesStackInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	acc := &Snapshot{}
	var wantCycles int64
	for i := 0; i < 50; i++ {
		s := genSnapshot(r)
		wantCycles += s.Cycles
		acc.Merge(s)
	}
	if acc.Cycles != wantCycles {
		t.Fatalf("merged Cycles = %d, want %d", acc.Cycles, wantCycles)
	}
	for cfg, st := range acc.Stacks {
		if st.Sum() != st.Cycles {
			t.Fatalf("config %s: component sum %d != cycles %d", cfg, st.Sum(), st.Cycles)
		}
		if st.Config != cfg {
			t.Fatalf("config %s: merged stack label %q", cfg, st.Config)
		}
	}
}

// TestAddRun: runs fold their stack/summary into the per-config
// accumulators and the squash/drop counters come from the summary.
func TestAddRun(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	s := &Snapshot{}
	st1, st2 := genStack(r, "slice2"), genStack(r, "slice2")
	sum := &telemetry.Summary{
		Events:        map[string]uint64{"squash": 7, "commit": 100},
		EventsDropped: 2,
	}
	s.AddRun("slice2", 1000, st1.Cycles, 3, st1, sum, 2*time.Second)
	s.AddRun("slice2", 500, st2.Cycles, 1, st2, nil, time.Second)
	s.AddRun("slice4", 0, 0, 0, nil, nil, time.Second) // failed run: counts only

	if s.Runs != 3 || s.Insts != 1500 || s.Replays != 4 {
		t.Fatalf("runs=%d insts=%d replays=%d, want 3/1500/4", s.Runs, s.Insts, s.Replays)
	}
	if s.Squashes != 7 || s.EventsDropped != 2 {
		t.Fatalf("squashes=%d dropped=%d, want 7/2", s.Squashes, s.EventsDropped)
	}
	if len(s.Stacks) != 1 {
		t.Fatalf("stacks = %v, want just slice2", s.Stacks)
	}
	got := s.Stacks["slice2"]
	if got.Cycles != st1.Cycles+st2.Cycles || got.Sum() != got.Cycles {
		t.Fatalf("slice2 stack cycles=%d sum=%d, want both %d",
			got.Cycles, got.Sum(), st1.Cycles+st2.Cycles)
	}
	if s.WallNanos != int64(4*time.Second) {
		t.Fatalf("wall = %d, want 4s", s.WallNanos)
	}
	if mps := s.MinstPerSec(); mps < 0.00037 || mps > 0.00038 {
		t.Fatalf("MinstPerSec = %v, want 1500 insts / 4s = 0.000375", mps)
	}
}

// TestCloneIndependent: mutating a clone never leaks into the source —
// the property that lets workers hand snapshots to in-flight RPC
// encoding while the soak loop keeps accumulating.
func TestCloneIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	var orig *Snapshot
	for orig == nil || orig.Stacks == nil || orig.Telemetry == nil ||
		orig.Telemetry.WindowOcc == nil {
		orig = genSnapshot(r)
	}
	want := orig.Clone()
	cl := orig.Clone()
	cl.Runs++
	for _, st := range cl.Stacks {
		st.Cycles++
	}
	cl.Telemetry.WindowOcc.Bins[0]++
	cl.Telemetry.Events["commit"]++
	if !reflect.DeepEqual(orig, want) {
		t.Fatalf("mutating a clone changed the source:\ngot  %+v\nwant %+v", orig, want)
	}
	if (*Snapshot)(nil).Clone() != nil {
		t.Fatal("nil.Clone() != nil")
	}
}
