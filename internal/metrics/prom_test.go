package metrics

import (
	"bytes"
	"testing"

	"pok/internal/stats"
)

// TestPromGolden: the hand-rolled exposition encoder emits exactly the
// Prometheus text format 0.0.4 — HELP/TYPE headers, label rendering
// with escapes, histogram buckets — and is byte-stable (samples sorted
// by label block regardless of registration order).
func TestPromGolden(t *testing.T) {
	p := NewProm()
	p.Gauge("pok_queue_depth", "Pending cells.", nil, 3)
	// Registered out of label order on purpose: Render must sort.
	p.Counter("pok_job_runs_total", "Detection runs.",
		[][2]string{{"job", "job-2"}}, 7)
	p.Counter("pok_job_runs_total", "",
		[][2]string{{"job", "job-1"}}, 5)
	p.Gauge("pok_build_info", "Build provenance.",
		[][2]string{{"git_sha", `ab"c\d`}, {"go_version", "go1.22"}}, 1)
	h := &stats.Histogram{Bins: []uint64{4, 3, 2, 0, 1}, Total: 10, Sum: 12, Max: 4}
	p.Histogram("pok_job_occupancy", "Occupancy.",
		[][2]string{{"stage", "window"}}, h, []int{0, 1, 2, 4})
	p.Gauge("pok_minst_per_sec", "Throughput.", nil, 1.25)

	want := `# HELP pok_queue_depth Pending cells.
# TYPE pok_queue_depth gauge
pok_queue_depth 3
# HELP pok_job_runs_total Detection runs.
# TYPE pok_job_runs_total counter
pok_job_runs_total{job="job-1"} 5
pok_job_runs_total{job="job-2"} 7
# HELP pok_build_info Build provenance.
# TYPE pok_build_info gauge
pok_build_info{git_sha="ab\"c\\d",go_version="go1.22"} 1
# HELP pok_job_occupancy Occupancy.
# TYPE pok_job_occupancy histogram
pok_job_occupancy_bucket{stage="window",le="0"} 4
pok_job_occupancy_bucket{stage="window",le="1"} 7
pok_job_occupancy_bucket{stage="window",le="2"} 9
pok_job_occupancy_bucket{stage="window",le="4"} 10
pok_job_occupancy_bucket{stage="window",le="+Inf"} 10
pok_job_occupancy_sum{stage="window"} 12
pok_job_occupancy_count{stage="window"} 10
# HELP pok_minst_per_sec Throughput.
# TYPE pok_minst_per_sec gauge
pok_minst_per_sec 1.25
`
	got := p.Render()
	if string(got) != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Byte-stable: rendering again yields the identical payload.
	if again := p.Render(); !bytes.Equal(got, again) {
		t.Fatal("second Render differs from first")
	}
}

// TestPromNilHistogram: a nil histogram emits nothing (jobs without
// telemetry summaries must not produce empty families).
func TestPromNilHistogram(t *testing.T) {
	p := NewProm()
	p.Histogram("pok_job_occupancy", "x", nil, nil, []int{0, 1})
	if out := p.Render(); len(out) != 0 {
		t.Fatalf("nil histogram rendered %q", out)
	}
}
