package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pok/internal/stats"
)

// Prom builds a Prometheus text-exposition (version 0.0.4) payload
// with no external dependencies: the coordinator renders its fleet
// aggregates through it for GET /metrics. Families are emitted in
// sorted name order and samples in sorted label order, so the scrape
// is byte-stable for a given fleet state — the scrape golden test
// relies on that.
type Prom struct {
	order    []string
	families map[string]*promFamily
}

type promFamily struct {
	help    string
	typ     string
	samples []promSample
	// keepOrder skips the label sort on Render: histogram buckets must
	// stay in ascending-le order with +Inf last, which lexicographic
	// label sorting would scramble. Emitters that set it are expected
	// to append samples in a deterministic order themselves.
	keepOrder bool
}

type promSample struct {
	labels string // rendered {k="v",...} block, "" for none
	value  string
}

// NewProm returns an empty payload builder.
func NewProm() *Prom {
	return &Prom{families: make(map[string]*promFamily)}
}

// Gauge adds one sample to a gauge family (registering the family's
// HELP/TYPE header on first use).
func (p *Prom) Gauge(name, help string, labels [][2]string, v float64) {
	p.add(name, help, "gauge", labels, v)
}

// Counter adds one sample to a counter family. Prometheus counter
// names should end in _total; the caller owns the convention.
func (p *Prom) Counter(name, help string, labels [][2]string, v float64) {
	p.add(name, help, "counter", labels, v)
}

// Histogram renders a stats.Histogram as a native Prometheus histogram
// family: cumulative _bucket{le=...} samples at the given bucket upper
// bounds (+Inf is appended automatically), plus _sum and _count.
func (p *Prom) Histogram(name, help string, labels [][2]string,
	h *stats.Histogram, les []int) {
	if h == nil {
		return
	}
	// HELP/TYPE go on the base name; the samples live in the _bucket /
	// _sum / _count suffixed families, per the exposition format.
	p.family(name, help, "histogram")
	fam := p.family(name+"_bucket", "", "")
	fam.keepOrder = true
	var cum uint64
	next := 0
	for _, le := range les {
		for next < len(h.Bins) && next <= le {
			cum += h.Bins[next]
			next++
		}
		fam.add(withLabel(labels, "le", strconv.Itoa(le)), float64(cum))
	}
	fam.add(withLabel(labels, "le", "+Inf"), float64(h.Total))
	p.family(name+"_sum", "", "").add(renderLabels(labels), float64(h.Sum))
	p.family(name+"_count", "", "").add(renderLabels(labels), float64(h.Total))
}

func (p *Prom) add(name, help, typ string, labels [][2]string, v float64) {
	p.family(name, help, typ).add(renderLabels(labels), v)
}

func (p *Prom) family(name, help, typ string) *promFamily {
	fam := p.families[name]
	if fam == nil {
		fam = &promFamily{help: help, typ: typ}
		p.families[name] = fam
		p.order = append(p.order, name)
	}
	return fam
}

func (fam *promFamily) add(labels string, v float64) {
	fam.samples = append(fam.samples,
		promSample{labels: labels, value: formatValue(v)})
}

// Render serializes the payload. Families keep registration order
// (callers register them in a stable order already); samples within a
// family are sorted by label block so map-driven emitters stay stable.
func (p *Prom) Render() []byte {
	var b strings.Builder
	for _, name := range p.order {
		fam := p.families[name]
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, fam.help)
		}
		if fam.typ != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, fam.typ)
		}
		if !fam.keepOrder {
			sort.SliceStable(fam.samples, func(i, j int) bool {
				return fam.samples[i].labels < fam.samples[j].labels
			})
		}
		for _, s := range fam.samples {
			b.WriteString(name)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(s.value)
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func renderLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func withLabel(labels [][2]string, k, v string) string {
	ext := make([][2]string, 0, len(labels)+1)
	ext = append(ext, labels...)
	ext = append(ext, [2]string{k, v})
	return renderLabels(ext)
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
