package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pok/internal/check"
	"pok/internal/check/inject"
	"pok/internal/check/reduce"
	"pok/internal/gen"
)

// Bundle is the self-contained description of one minimized repro: the
// repro.json half of a bundle directory (prog.s is the other half).
// Everything needed to re-run the failure standalone is here — seed,
// generator options, machine config, scheduler, injection options and
// the expected failure signature — plus a ready-made pok-check command
// line.
type Bundle struct {
	Name      string      `json:"name"`
	Seed      uint64      `json:"seed"`
	Gen       gen.Options `json:"gen"`
	Config    string      `json:"config"`
	Scheduler string      `json:"scheduler"`
	// Inject is nil for clean-config findings.
	Inject *inject.Options `json:"inject,omitempty"`

	// Expected failure signature (the reducer verified the minimized
	// program still produces exactly this).
	Kind   string `json:"kind"`
	Field  string `json:"field,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Want/Got carry the expected-vs-actual commit diff for
	// divergences.
	Want string `json:"want,omitempty"`
	Got  string `json:"got,omitempty"`

	// BodyInsts is the minimized body instruction count.
	BodyInsts int    `json:"body_insts"`
	MaxInsts  uint64 `json:"max_insts,omitempty"`

	// PokCheck is a copy-pasteable command that replays the repro
	// standalone from the bundle directory.
	PokCheck string `json:"pok_check"`
}

// WriteBundle writes a repro bundle (prog.s + repro.json) for finding f
// under outDir and returns the bundle path relative to outDir.
func WriteBundle(outDir string, f *Finding, prog *gen.Program, minBody []string,
	injOpts *inject.Options, maxInsts uint64, res reduce.RunResult) (string, error) {
	rel := bundleDirName(f)
	dir := filepath.Join(outDir, rel)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	src := gen.Render(prog.Prologue, minBody, prog.Epilogue)
	if err := os.WriteFile(filepath.Join(dir, "prog.s"), []byte(src), 0o644); err != nil {
		return "", err
	}
	b := &Bundle{
		Name:      filepath.Base(rel),
		Seed:      f.Seed,
		Gen:       prog.Opts,
		Config:    f.Config,
		Scheduler: f.Scheduler,
		Inject:    injOpts,
		Kind:      f.Kind,
		Field:     f.Field,
		Detail:    f.Detail,
		BodyInsts: gen.InstCount(minBody),
		MaxInsts:  maxInsts,
		PokCheck:  pokCheckCommand(f, injOpts, maxInsts),
	}
	if res.Report != nil && res.Report.Divergence != nil {
		b.Want = res.Report.Divergence.Want
		b.Got = res.Report.Divergence.Got
	}
	js, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	js = append(js, '\n')
	if err := os.WriteFile(filepath.Join(dir, "repro.json"), js, 0o644); err != nil {
		return "", err
	}
	return rel, nil
}

// pokCheckCommand renders the standalone replay command for a bundle.
func pokCheckCommand(f *Finding, injOpts *inject.Options, maxInsts uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "go run ./cmd/pok-check -prog prog.s -config %s -scheduler %s",
		f.Config, f.Scheduler)
	if maxInsts > 0 {
		fmt.Fprintf(&sb, " -insts %d", maxInsts)
	} else {
		sb.WriteString(" -insts 0")
	}
	if injOpts != nil {
		switch {
		case injOpts.CorruptOn:
			fmt.Fprintf(&sb, " -corrupt %d", injOpts.CorruptAt)
		case injOpts.WedgeOn:
			fmt.Fprintf(&sb, " -wedge %d", injOpts.WedgeSeq)
		}
		if injOpts.SliceFlipRate > 0 || injOpts.WayMissRate > 0 ||
			injOpts.ConflictRate > 0 || injOpts.StormEvery > 0 {
			fmt.Fprintf(&sb,
				" -inject -seed %d -flip-rate %g -waymiss-rate %g -conflict-rate %g -storm-every %d -storm-len %d",
				injOpts.Seed, injOpts.SliceFlipRate, injOpts.WayMissRate,
				injOpts.ConflictRate, injOpts.StormEvery, injOpts.StormLen)
		}
	}
	return sb.String()
}

// LoadBundle reads a bundle directory's repro.json and prog.s.
func LoadBundle(dir string) (*Bundle, string, error) {
	js, err := os.ReadFile(filepath.Join(dir, "repro.json"))
	if err != nil {
		return nil, "", err
	}
	var b Bundle
	if err := json.Unmarshal(js, &b); err != nil {
		return nil, "", fmt.Errorf("bundle %s: %w", dir, err)
	}
	src, err := os.ReadFile(filepath.Join(dir, "prog.s"))
	if err != nil {
		return nil, "", err
	}
	return &b, string(src), nil
}

// ReplayBundle re-executes a repro bundle exactly as recorded and
// returns the observed outcome alongside the bundle's expectation. The
// repro reproduces iff result.Outcome.Matches(bundle's signature) —
// which Reproduces checks for you.
func ReplayBundle(dir string) (*Bundle, reduce.RunResult, error) {
	b, src, err := LoadBundle(dir)
	if err != nil {
		return nil, reduce.RunResult{}, err
	}
	cfg, err := ConfigByName(b.Config)
	if err != nil {
		return nil, reduce.RunResult{}, err
	}
	cfg.LegacyScheduler = b.Scheduler == "legacy"
	opts := checkOptionsFor(b)
	res := reduce.CheckRunner(cfg, opts, 2*time.Minute)(src)
	return b, res, nil
}

// Reproduces reports whether a replay observation matches the bundle's
// recorded failure signature.
func (b *Bundle) Reproduces(res reduce.RunResult) bool {
	return res.Outcome.Matches(reduce.Outcome{Kind: b.Kind, Field: b.Field})
}

func checkOptionsFor(b *Bundle) check.Options {
	opts := check.Options{Benchmark: b.Name, MaxInsts: b.MaxInsts}
	if b.Inject != nil {
		opts.Injector = inject.New(*b.Inject)
	}
	return opts
}
