package soak

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pok/internal/check/inject"
	"pok/internal/ckpt"
)

// midOpts is small(t) tuned for instruction-granular checkpointing:
// two configs (so the cell matrix is non-trivial), a snapshot cadence
// that fires twice inside every ~100-instruction generated program,
// and a corrupt hook placed after the second snapshot so every cell
// yields a divergence finding discovered beyond a resume point.
func midOpts(t *testing.T) Options {
	t.Helper()
	opts := small(t)
	opts.Configs = []string{"slice2", "slice4"}
	opts.Programs = 2
	opts.CkptInsts = 30
	opts.Hook = &inject.Options{CorruptOn: true, CorruptAt: 70}
	opts.NoReduce = true
	return opts
}

// TestSoakResumeMidProgram drain-stops a campaign at an arbitrary
// instruction-granular checkpoint inside a program's cell matrix and
// resumes it from the file cursor. The resumed campaign must cover
// exactly what an uninterrupted campaign of the same cadence covers —
// same run count, byte-identical findings — with already-completed
// cells skipped and the interrupted cell continued from its snapshot.
func TestSoakResumeMidProgram(t *testing.T) {
	ref := midOpts(t)
	refRep, err := Run(ref, false)
	if err != nil {
		t.Fatal(err)
	}
	wantFindings := ref.Programs * len(ref.Configs)
	if len(refRep.Findings) != wantFindings {
		t.Fatalf("reference: %d findings, want %d: %+v",
			len(refRep.Findings), wantFindings, refRep.Findings)
	}
	if refRep.Stopped {
		t.Fatal("reference run marked stopped")
	}

	// Interrupted: stop at the second snapshot — inside cell 1 of
	// program 0 (each cell drains at least one snapshot around
	// instruction 30-60 before the corruption fires at 70).
	part := midOpts(t)
	snaps := 0
	part.CellCursor = func(program, cell int, rep *Report, s *ckpt.Snapshot) bool {
		snaps++
		return snaps == 2
	}
	partRep, err := Run(part, false)
	if err != nil {
		t.Fatal(err)
	}
	if snaps < 2 || !partRep.Stopped {
		t.Fatalf("campaign not drain-stopped (snaps=%d stopped=%v)", snaps, partRep.Stopped)
	}

	cp, err := LoadCheckpoint(part.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NextProgram != 0 || cp.NextCell != 1 || len(cp.CellSnap) == 0 {
		t.Fatalf("cursor not instruction-granular: program=%d cell=%d snap=%d bytes",
			cp.NextProgram, cp.NextCell, len(cp.CellSnap))
	}
	if _, err := ckpt.Decode(cp.CellSnap); err != nil {
		t.Fatalf("checkpointed cell snapshot does not decode: %v", err)
	}

	part.CellCursor = nil
	resumed, err := Run(part, true)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed || resumed.Stopped {
		t.Fatalf("resumed run flags wrong: %+v", resumed)
	}
	if resumed.Runs != refRep.Runs {
		t.Fatalf("resumed covered %d runs, reference covered %d", resumed.Runs, refRep.Runs)
	}
	if !reflect.DeepEqual(resumed.Findings, refRep.Findings) {
		t.Fatalf("resumed findings differ from uninterrupted run:\nresumed: %+v\nref:     %+v",
			resumed.Findings, refRep.Findings)
	}
}

// TestSoakCkptWriteErrorsNonFatal: losing a checkpoint write must not
// kill the campaign — the soak completes and surfaces the failure count
// on the report instead.
func TestSoakCkptWriteErrorsNonFatal(t *testing.T) {
	opts := small(t)
	opts.Programs = 1
	// A regular file where the checkpoint's parent directory should be
	// makes every SaveCheckpoint fail (MkdirAll over a file).
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = filepath.Join(blocker, "cp.json")

	rep, err := Run(opts, false)
	if err != nil {
		t.Fatalf("checkpoint write failure must be non-fatal: %v", err)
	}
	if rep.Runs != 1 || len(rep.Findings) != 0 {
		t.Fatalf("campaign did not complete: %+v", rep)
	}
	if rep.CkptErrs == 0 || rep.LastCkptErr == "" {
		t.Fatalf("checkpoint write failures not surfaced: errs=%d last=%q",
			rep.CkptErrs, rep.LastCkptErr)
	}
}
