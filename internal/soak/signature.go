package soak

import "pok/internal/sig"

// Signature is the finding's failure class — the same (kind, field)
// signature the reducer matched during minimization, shared via
// internal/sig so local dedupe and the fleet coordinator's dedupe are
// the same code.
func (f Finding) Signature() sig.Signature {
	return sig.Signature{Kind: f.Kind, Field: f.Field}
}

// Deduped groups the report's findings by failure signature in
// first-seen order.
func (r *Report) Deduped() []sig.Class {
	var d sig.Deduper
	for _, f := range r.Findings {
		d.Add(f.Signature())
	}
	return d.Classes()
}
