// Package soak drives the random-program differential soak: generated
// PISA programs (internal/gen) run through emulator-vs-core lockstep
// verification (internal/check) across a machine-config × scheduler ×
// fault-injection-seed matrix, with per-run wall-clock watchdogs and
// panic recovery — a generator or core panic is a *finding* attributed
// to its seed, not a crash. Any divergence, invariant violation,
// deadlock, panic or timeout is delta-debugged down to a minimal body
// (internal/check/reduce) and written out as a self-contained repro
// bundle. A checkpoint file makes multi-hour soaks resumable.
//
// cmd/pok-soak is the CLI.
package soak

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"pok/internal/check"
	"pok/internal/check/inject"
	"pok/internal/check/reduce"
	"pok/internal/ckpt"
	"pok/internal/core"
	"pok/internal/gen"
	"pok/internal/metrics"
	"pok/internal/profile"
	"pok/internal/workload"
)

// Options configures one soak campaign.
type Options struct {
	// BaseSeed keys the whole campaign: program i is generated from
	// gen.ProgramSeed(BaseSeed, i).
	BaseSeed uint64
	// Programs is the number of programs to generate (0 with Duration
	// set = until the time box expires). With StartProgram set it is
	// the exclusive end index instead — the campaign covers program
	// indices [StartProgram, Programs).
	Programs int
	// StartProgram is the first program index to run (default 0). The
	// fleet coordinator (internal/serve) shards a campaign into
	// [start, end) cells with it; because a program's seed is a pure
	// function of (BaseSeed, index), the union of the cells covers
	// exactly the programs a single-process run covers.
	StartProgram int
	// Duration time-boxes the soak (0 = no box). When both Programs
	// and Duration are set, whichever limit hits first ends the run.
	Duration time.Duration
	// Configs names the machine configs to differentially execute
	// (default: simple4, slice2, slice4).
	Configs []string
	// Schedulers selects "event", "legacy" or both (default both).
	Schedulers []string
	// InjectSeeds is the number of fault-injection campaigns per
	// (program, config, scheduler) cell beyond the clean run (default
	// 0: clean only).
	InjectSeeds int
	// Inject carries the base injection rates; its Seed is overridden
	// per campaign. The zero value with InjectSeeds > 0 gets default
	// rates (see defaultInject).
	Inject inject.Options
	// Hook, when non-nil, seeds a deliberate fault (the inject
	// corrupt/wedge test hooks) into every clean cell — the end-to-end
	// proof that the soak catches a failure, the reducer shrinks it,
	// and the bundle replays it.
	Hook *inject.Options
	// MaxInsts bounds each checked run (0 = run to completion; every
	// generated program terminates by construction).
	MaxInsts uint64
	// Watchdog bounds each run's wall clock (default 30s).
	Watchdog time.Duration
	// Retries re-attempts a timed-out run before recording the finding
	// (default 1 retry; timeouts on loaded CI machines are otherwise
	// indistinguishable from livelocks).
	Retries int
	// NoReduce skips delta-debugging of findings.
	NoReduce bool
	// ReduceMaxTests caps candidate evaluations per reduction
	// (default 400).
	ReduceMaxTests int
	// MaxFindings stops the soak early once this many findings are
	// recorded (default 20; a broken build would otherwise reduce
	// thousands of identical failures).
	MaxFindings int
	// OutDir receives repro bundles under OutDir/repros (default
	// "soak-out"; empty string with WriteBundles false writes nothing).
	OutDir string
	// Checkpoint is the checkpoint file path ("" = no checkpointing).
	Checkpoint string
	// CheckpointEvery snapshots after this many programs (default 25).
	CheckpointEvery int
	// CkptInsts arms instruction-granular architectural checkpointing
	// inside every detection run: each checked run snapshots its
	// complete state every CkptInsts committed instructions (the
	// internal/ckpt drain checkpoints), so long programs become
	// resumable mid-run — the campaign checkpoint records the cell
	// cursor plus the snapshot, and the CellCursor hook observes it.
	// Checkpoint drains perturb run timing deterministically, so
	// cycle-dependent finding details are byte-identical only across
	// runs with the same cadence (CkptInsts is therefore part of the
	// checkpoint signature). Reduction candidate runs never checkpoint.
	// 0 = off.
	CkptInsts uint64
	// StartCell resumes the campaign's first program mid-matrix: cells
	// with flat index below StartCell (config-major, then scheduler,
	// then injection seed) are skipped — they are already covered by the
	// caller's carried-over Runs/Findings — and cell StartCell resumes
	// from StartSnap when non-nil. The fleet worker fills these from a
	// requeued assignment's resume cursor; file-checkpoint resume fills
	// them from NextCell/CellSnap.
	StartCell int
	StartSnap *ckpt.Snapshot
	// CellCursor, when non-nil and CkptInsts is armed, observes every
	// mid-run snapshot of a detection run with the program index, the
	// flat cell index and the report so far (rep.Runs/rep.Findings cover
	// everything before this cell). Returning stop=true requests a
	// drain-stop: the in-flight run finalizes at this checkpoint
	// boundary, the campaign checkpoint keeps the mid-program cursor,
	// and Run returns with Report.Stopped set — the instruction-granular
	// SIGINT/drain path.
	CellCursor func(program, cell int, rep *Report, snap *ckpt.Snapshot) (stop bool)
	// Gen shapes the generated programs; Seed is overridden per
	// program.
	Gen gen.Options
	// RegisterWorkloads registers each generated program as an ad-hoc
	// workload (workload.RegisterAdHoc) so downstream tools can address
	// it by name ("gen-p<index>").
	RegisterWorkloads bool
	// Log receives one progress line per program (nil = quiet).
	Log io.Writer
	// Progress, when non-nil, is called after every completed program
	// with the next program index and the report so far (findings and
	// runs are cumulative for this campaign). A returned newEnd in
	// (0, current end) lowers the campaign's end bound — the fleet
	// coordinator uses this to steal the tail of a running cell — and
	// stop=true aborts the campaign after checkpointing. Raising the
	// bound is ignored. Excluded from the checkpoint signature, like
	// the other pacing knobs.
	Progress func(next int, rep *Report) (newEnd int, stop bool)
	// Snapshot, when non-nil, turns on metrics collection: each checked
	// run keeps its telemetry (check.Options.KeepTelemetry) and is
	// folded into a cumulative metrics.Snapshot (CPI stacks per config,
	// occupancy histograms, throughput). The hook is called after every
	// completed program, right before Progress, with the next program
	// index and an independent clone of the accumulator — the fleet
	// worker piggybacks it on heartbeats. Collection never changes run
	// results: findings stay byte-identical with the hook on or off
	// (TestSnapshotFindingsEquivalence).
	Snapshot func(next int, snap *metrics.Snapshot)
}

func (o Options) withDefaults() Options {
	if len(o.Configs) == 0 {
		o.Configs = []string{"simple4", "slice2", "slice4"}
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = []string{"event", "legacy"}
	}
	if o.Watchdog == 0 {
		o.Watchdog = 30 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 1
	}
	if o.ReduceMaxTests == 0 {
		o.ReduceMaxTests = 400
	}
	if o.MaxFindings == 0 {
		o.MaxFindings = 20
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 25
	}
	if o.OutDir == "" {
		o.OutDir = "soak-out"
	}
	if o.InjectSeeds > 0 && o.Inject == (inject.Options{}) {
		o.Inject = defaultInject()
	}
	return o
}

// defaultInject mirrors pok-check's default recoverable-fault rates.
func defaultInject() inject.Options {
	return inject.Options{
		SliceFlipRate: 0.02,
		WayMissRate:   0.10,
		ConflictRate:  0.05,
		StormEvery:    20_000,
		StormLen:      8,
	}
}

// ConfigByName resolves a soak config name to a machine configuration.
func ConfigByName(name string) (core.Config, error) {
	switch name {
	case "base", "ideal":
		return core.BaseConfig(), nil
	case "simple2":
		return core.SimplePipelined(2), nil
	case "simple4":
		return core.SimplePipelined(4), nil
	case "slice2", "bitslice2":
		return core.BitSliced(2), nil
	case "slice4", "bitslice4":
		return core.BitSliced(4), nil
	}
	return core.Config{}, fmt.Errorf("soak: unknown config %q (base, simple2, simple4, slice2, slice4)", name)
}

// Finding is one failure observed by the soak, attributed to the exact
// (program seed, config, scheduler, injection seed) cell that produced
// it. Field order and content are wall-clock-free so a findings report
// is byte-identical across reruns of the same campaign.
type Finding struct {
	Program    int    `json:"program"`
	Seed       uint64 `json:"seed"`
	Config     string `json:"config"`
	Scheduler  string `json:"scheduler"`
	InjectSeed uint64 `json:"inject_seed,omitempty"`
	Kind       string `json:"kind"`
	Field      string `json:"field,omitempty"`
	Detail     string `json:"detail,omitempty"`
	// ReducedInsts is the instruction count of the minimized body
	// (-1: reduction skipped or not attempted).
	ReducedInsts int `json:"reduced_insts"`
	// ReduceTests is how many candidate runs the reducer spent.
	ReduceTests int `json:"reduce_tests,omitempty"`
	// Bundle is the repro-bundle directory, relative to OutDir.
	Bundle string `json:"bundle,omitempty"`
}

// Report is the machine-readable outcome of one soak campaign.
type Report struct {
	BaseSeed    uint64    `json:"base_seed"`
	Programs    int       `json:"programs"`
	Configs     []string  `json:"configs"`
	Schedulers  []string  `json:"schedulers"`
	InjectSeeds int       `json:"inject_seeds"`
	Runs        int       `json:"runs"`
	Findings    []Finding `json:"findings"`
	// Resumed reports whether this campaign continued from a
	// checkpoint (informational; does not affect coverage).
	Resumed bool `json:"resumed,omitempty"`
	// Stopped reports that the campaign was drain-stopped early (a
	// CellCursor or Progress hook returned stop) rather than running
	// its program range to exhaustion; the checkpoint file, when
	// configured, holds the resumable cursor.
	Stopped bool `json:"stopped,omitempty"`
	// CkptErrs counts checkpoint-file writes that failed during the
	// campaign; LastCkptErr is the most recent failure. Losing a
	// cursor must not kill a multi-hour soak, so these are surfaced
	// instead of returned as errors — and excluded from the JSON so
	// findings reports stay byte-identical whether or not the disk
	// hiccupped.
	CkptErrs    int    `json:"-"`
	LastCkptErr string `json:"-"`
}

// Run executes the soak campaign. When resume is true and opts.Checkpoint
// exists, the campaign continues from the checkpointed cursor with the
// checkpointed findings; otherwise it starts fresh. The returned error
// covers setup problems only — failures found by the soak are Findings.
func Run(opts Options, resume bool) (*Report, error) {
	opts = opts.withDefaults()

	cfgs := make([]core.Config, len(opts.Configs))
	for i, name := range opts.Configs {
		c, err := ConfigByName(name)
		if err != nil {
			return nil, err
		}
		cfgs[i] = c
	}
	for _, s := range opts.Schedulers {
		if s != "event" && s != "legacy" {
			return nil, fmt.Errorf("soak: unknown scheduler %q (event, legacy)", s)
		}
	}

	rep := &Report{
		BaseSeed:    opts.BaseSeed,
		Configs:     opts.Configs,
		Schedulers:  opts.Schedulers,
		InjectSeeds: opts.InjectSeeds,
	}
	start := opts.StartProgram
	startCell := opts.StartCell
	startSnap := opts.StartSnap
	if resume && opts.Checkpoint != "" {
		cp, err := LoadCheckpoint(opts.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("soak: resume: %w", err)
		}
		if want := optionsSig(opts); cp.Sig != want {
			return nil, fmt.Errorf("soak: checkpoint %s was written by a different campaign (sig %s, want %s)",
				opts.Checkpoint, cp.Sig, want)
		}
		if cp.NextProgram >= start {
			// The checkpoint cursor wins, including its mid-matrix cell
			// position; a caller-supplied StartCell/StartSnap only
			// applies when the caller's StartProgram is further along.
			start = cp.NextProgram
			startCell = cp.NextCell
			startSnap = nil
			if len(cp.CellSnap) > 0 {
				s, derr := ckpt.Decode(cp.CellSnap)
				if derr != nil {
					return nil, fmt.Errorf("soak: resume: cell snapshot: %w", derr)
				}
				startSnap = s
			}
		}
		rep.Runs = cp.Runs
		rep.Findings = cp.Findings
		rep.Resumed = true
		if startCell > 0 || startSnap != nil {
			logf(opts.Log, "resuming at program %d cell %d with %d findings\n",
				start, startCell, len(rep.Findings))
		} else {
			logf(opts.Log, "resuming at program %d with %d findings\n", start, len(rep.Findings))
		}
	}

	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = time.Now().Add(opts.Duration)
	}

	var snap *metrics.Snapshot
	if opts.Snapshot != nil {
		snap = &metrics.Snapshot{}
	}

	// midStop: the campaign drain-stopped inside a program's cell
	// matrix (instruction-granular cursor already on disk), as opposed
	// to a clean program-boundary stop.
	midStop := false
	idx := start
	for {
		if opts.Programs > 0 && idx >= opts.Programs {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		if opts.Programs <= 0 && deadline.IsZero() {
			return nil, fmt.Errorf("soak: need Programs or Duration")
		}
		if len(rep.Findings) >= opts.MaxFindings {
			logf(opts.Log, "stopping early: %d findings\n", len(rep.Findings))
			break
		}

		seed := gen.ProgramSeed(opts.BaseSeed, idx)
		prog, panicText := generate(opts.Gen, seed)
		if prog == nil {
			rep.Findings = append(rep.Findings, Finding{
				Program: idx, Seed: seed, Kind: "panic",
				Detail: "generator: " + firstLine(panicText), ReducedInsts: -1,
			})
			idx++
			continue
		}
		if opts.RegisterWorkloads {
			w := workload.NewAdHoc(fmt.Sprintf("gen-p%d", idx),
				fmt.Sprintf("generated program (seed %#x)", seed), prog.Source())
			_ = workload.RegisterAdHoc(w) // duplicate on resume is fine
		}

		// firstCell/resumeSnap apply to the resume program only; every
		// later program starts at cell 0 with no snapshot.
		firstCell := 0
		var resumeSnap *ckpt.Snapshot
		if idx == start {
			firstCell = startCell
			resumeSnap = startSnap
		}
		found := 0
		cellStopped := false
		cellIdx := 0
	cells:
		for ci, cfg := range cfgs {
			for _, sched := range opts.Schedulers {
				for k := 0; k <= opts.InjectSeeds; k++ {
					cell := cellIdx
					cellIdx++
					if cell < firstCell {
						continue
					}
					var cellSnap *ckpt.Snapshot
					if cell == firstCell {
						cellSnap = resumeSnap
					}
					var injSeed uint64
					var injOpts *inject.Options
					if k > 0 {
						injSeed = mixInject(seed, uint64(k))
						campaign := opts.Inject
						campaign.Seed = injSeed
						injOpts = &campaign
					} else if opts.Hook != nil {
						hook := *opts.Hook
						injOpts = &hook
					}
					f, stopped := runCell(opts, prog, idx, opts.Configs[ci], cfg, sched,
						injSeed, injOpts, snap, cell, cellSnap, rep)
					if stopped {
						// The in-flight run drained at a checkpoint
						// boundary; the mid-run cursor write already
						// recorded (program, cell, snapshot), so the run
						// is NOT counted here — the resume re-runs cell
						// `cell` from the snapshot and counts it then.
						cellStopped = true
						break cells
					}
					rep.Runs++
					if f != nil {
						rep.Findings = append(rep.Findings, *f)
						found++
					}
				}
			}
		}
		if cellStopped {
			rep.Stopped = true
			midStop = true
			logf(opts.Log, "p%04d interrupted mid-matrix; cursor checkpointed\n", idx)
			break
		}
		logf(opts.Log, "p%04d seed=%#016x body=%d iters=%d findings=%d\n",
			idx, seed, gen.InstCount(prog.Body), prog.Iters, found)
		idx++
		if opts.Checkpoint != "" && (idx-start)%opts.CheckpointEvery == 0 {
			if err := saveProgress(opts, idx, rep); err != nil {
				rep.CkptErrs++
				rep.LastCkptErr = err.Error()
				logf(opts.Log, "WARNING: checkpoint write failed: %v\n", err)
			}
		}
		if snap != nil {
			snap.Programs = idx - start
			snap.Findings = len(rep.Findings)
			opts.Snapshot(idx, snap.Clone())
		}
		if opts.Progress != nil {
			newEnd, stop := opts.Progress(idx, rep)
			if newEnd > 0 && (opts.Programs <= 0 || newEnd < opts.Programs) {
				opts.Programs = newEnd
			}
			if stop {
				rep.Stopped = true
				break
			}
		}
	}
	rep.Programs = idx
	// A mid-matrix stop already wrote its instruction-granular cursor;
	// overwriting it with a program-boundary checkpoint here would
	// re-run cells the report has already counted — skip the final save
	// in that case only. A Progress (program-boundary) stop still gets
	// the normal save: idx is a correct boundary cursor.
	if opts.Checkpoint != "" && !midStop {
		if err := saveProgress(opts, idx, rep); err != nil {
			rep.CkptErrs++
			rep.LastCkptErr = err.Error()
			logf(opts.Log, "WARNING: checkpoint write failed: %v\n", err)
		}
	}
	return rep, nil
}

// generate builds program seed under panic recovery: a generator panic
// is a finding, not a crash.
func generate(base gen.Options, seed uint64) (p *gen.Program, panicText string) {
	defer func() {
		if r := recover(); r != nil {
			p = nil
			panicText = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	o := base
	o.Seed = seed
	return gen.New(o), ""
}

func mixInject(seed, k uint64) uint64 {
	return gen.ProgramSeed(seed^0x5bd1e995, int(k))
}

// cellAttempt wires one detection attempt's instruction-granular
// checkpoints (Options.CkptInsts) into the campaign: every snapshot the
// checked run drains to becomes a mid-program campaign-checkpoint write
// and a CellCursor observation, and a CellCursor stop request is
// forwarded to the run's drain-stop hook. The live flag guards the
// abandoned-goroutine hazard: after a wall-watchdog timeout the run
// goroutine may still be executing, and must not write a stale cursor
// over the retry's.
type cellAttempt struct {
	opts    Options
	program int
	cell    int
	resume  *ckpt.Snapshot
	rep     *Report

	mu      sync.Mutex
	live    bool
	stop    func(reason string)
	stopped bool
}

func (a *cellAttempt) WantFull() bool { return true }

func (a *cellAttempt) onStart(stop func(reason string)) {
	a.mu.Lock()
	a.stop = stop
	a.mu.Unlock()
}

// finish retires the attempt: later Write calls (an abandoned runaway
// goroutine) become no-ops.
func (a *cellAttempt) finish() {
	a.mu.Lock()
	a.live = false
	a.mu.Unlock()
}

func (a *cellAttempt) Write(s *ckpt.Snapshot) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.live {
		return nil
	}
	if a.opts.Checkpoint != "" {
		if err := saveCursor(a.opts, a.program, a.cell, ckpt.Encode(s), a.rep); err != nil {
			a.rep.CkptErrs++
			a.rep.LastCkptErr = err.Error()
			logf(a.opts.Log, "WARNING: cursor checkpoint write failed: %v\n", err)
		}
	}
	if a.opts.CellCursor != nil && !a.stopped {
		if a.opts.CellCursor(a.program, a.cell, a.rep, s) && a.stop != nil {
			a.stopped = true
			a.stop("cell-cursor stop")
		}
	}
	return nil
}

// runCell executes one (program, config, scheduler, inject) cell with
// retries, classifies the outcome, and — on failure — reduces it and
// writes a repro bundle. It returns (nil, false) on a clean run and
// (nil, true) when the run was drain-stopped mid-flight (cursor already
// checkpointed; the cell is not finished). With resume non-nil the
// detection run restarts from that snapshot instead of the program
// start; retried (timed-out) attempts restart from the same snapshot.
func runCell(opts Options, prog *gen.Program, idx int, cfgName string,
	cfg core.Config, sched string, injSeed uint64, injOpts *inject.Options,
	snap *metrics.Snapshot, cell int, resume *ckpt.Snapshot, rep *Report) (*Finding, bool) {
	cfg.LegacyScheduler = sched == "legacy"
	chkOpts := check.Options{
		Benchmark: fmt.Sprintf("gen-p%d", idx),
		MaxInsts:  opts.MaxInsts,
	}
	// A fresh injector per attempt: the injector carries per-run
	// delivery state, so reusing one across runs would skew replays.
	// Only detection runs keep telemetry (keep=true when metrics are
	// on); reduction candidates never do — their reports are discarded
	// and the reducer is the wall-clock hot path. Likewise only
	// detection runs checkpoint (att non-nil): reduction candidates are
	// short, discardable and not resumable by construction.
	newRunner := func(keep bool, att *cellAttempt) reduce.Runner {
		o := chkOpts
		o.KeepTelemetry = keep
		if injOpts != nil {
			o.Injector = inject.New(*injOpts)
		}
		if att != nil {
			o.CkptEvery = opts.CkptInsts
			o.CkptSink = att
			o.Resume = att.resume
			o.OnStart = att.onStart
		}
		return reduce.CheckRunner(cfg, o, opts.Watchdog)
	}
	src := prog.Source()

	var res reduce.RunResult
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		var att *cellAttempt
		if opts.CkptInsts > 0 {
			att = &cellAttempt{opts: opts, program: idx, cell: cell,
				resume: resume, rep: rep, live: true}
		}
		res = newRunner(snap != nil, att)(src)
		if att != nil {
			att.finish()
		}
		if res.Outcome.Kind != "timeout" || attempt >= opts.Retries {
			break
		}
	}
	if res.Report != nil && res.Report.Stopped {
		// Drain-stopped before completion: no outcome to classify, no
		// metrics to fold — the resumed run re-covers this cell.
		return nil, true
	}
	if snap != nil {
		foldRun(snap, cfgName, res.Report, time.Since(t0))
	}
	if !res.Outcome.Failing() {
		return nil, false
	}

	f := &Finding{
		Program:      idx,
		Seed:         prog.Seed,
		Config:       cfgName,
		Scheduler:    sched,
		InjectSeed:   injSeed,
		Kind:         res.Outcome.Kind,
		Field:        res.Outcome.Field,
		Detail:       findingDetail(res),
		ReducedInsts: -1,
	}

	minBody := prog.Body
	if !opts.NoReduce {
		candRunner := func(s string) reduce.RunResult { return newRunner(false, nil)(s) }
		r := reduce.Program(prog.Prologue, prog.Body, prog.Epilogue,
			res.Outcome, gen.Render, candRunner, opts.ReduceMaxTests)
		minBody = r.Body
		f.ReducedInsts = gen.InstCount(minBody)
		f.ReduceTests = r.Tests
	}

	if opts.OutDir != "" {
		bundle, err := WriteBundle(opts.OutDir, f, prog, minBody, injOpts, opts.MaxInsts, res)
		if err != nil {
			f.Detail += "; bundle write failed: " + err.Error()
		} else {
			f.Bundle = bundle
		}
	}
	return f, false
}

// foldRun folds one detection attempt into the metrics snapshot: CPI
// stack (successful runs with a kept event stream only — a failed run
// has no meaningful cycle accounting), telemetry summary, counters and
// wall time. A nil report (watchdog timeout) still counts the run and
// its wall cost. Never touches the finding path.
func foldRun(snap *metrics.Snapshot, cfgName string, rep *check.Report, wall time.Duration) {
	if rep == nil {
		snap.AddRun(cfgName, 0, 0, 0, nil, nil, wall)
		return
	}
	var stack *profile.CPIStack
	if rep.OK && len(rep.Events) > 0 {
		if st, err := profile.BuildCPIStack(rep.Events, rep.Cycles); err == nil {
			st.Config = cfgName
			if rep.Telemetry != nil && rep.Telemetry.EventsDropped > 0 {
				st.Lossy = true
			}
			stack = st
		}
	}
	snap.AddRun(cfgName, rep.Insts, rep.Cycles, rep.Replays, stack, rep.Telemetry, wall)
}

func findingDetail(res reduce.RunResult) string {
	switch {
	case res.Report != nil && res.Report.Divergence != nil:
		d := res.Report.Divergence
		return fmt.Sprintf("seq %d pc %s `%s`: %s: want %s got %s",
			d.Seq, d.PC, d.Disasm, d.Field, d.Want, d.Got)
	case res.Report != nil && res.Report.Invariant != nil:
		iv := res.Report.Invariant
		return fmt.Sprintf("cycle %d seq %d: %s", iv.Cycle, iv.Seq, iv.Detail)
	case res.Report != nil && res.Report.Deadlock != nil:
		dl := res.Report.Deadlock
		return fmt.Sprintf("no commit for %d cycles at cycle %d (%d committed)",
			dl.Budget, dl.Cycle, dl.Committed)
	case res.Report != nil && res.Report.Error != "":
		return firstLine(res.Report.Error)
	default:
		return firstLine(res.Err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// bundleDirName names a finding's repro bundle deterministically.
func bundleDirName(f *Finding) string {
	name := fmt.Sprintf("p%04d-%s-%s", f.Program, f.Config, f.Scheduler)
	if f.InjectSeed != 0 {
		name += fmt.Sprintf("-inj%x", f.InjectSeed)
	}
	return filepath.Join("repros", name)
}
