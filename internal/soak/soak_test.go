package soak

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pok/internal/check/inject"
	"pok/internal/gen"
)

// small returns campaign options scaled down for unit-test speed: tiny
// programs, one config, one scheduler, bounded reduction.
func small(t *testing.T) Options {
	t.Helper()
	dir := t.TempDir()
	return Options{
		BaseSeed:   41,
		Programs:   3,
		Configs:    []string{"slice2"},
		Schedulers: []string{"event"},
		OutDir:     dir,
		Checkpoint: filepath.Join(dir, "cp.json"),
		Gen: gen.Options{
			Fragments: 6,
			LoopIters: 2,
			MaxInsts:  2000,
		},
		ReduceMaxTests: 64,
	}
}

// TestSoakCleanRun: a fault-free campaign over generated programs must
// produce zero findings (the emulator and the timing cores agree by
// construction) and count every cell.
func TestSoakCleanRun(t *testing.T) {
	opts := small(t)
	rep, err := Run(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean soak produced findings: %+v", rep.Findings)
	}
	if rep.Runs != opts.Programs {
		t.Fatalf("ran %d cells, want %d", rep.Runs, opts.Programs)
	}
	if rep.Resumed {
		t.Fatal("fresh run marked resumed")
	}
}

// TestSoakCatchesSeededFault is the end-to-end proof the ISSUE asks
// for: with a deliberate corrupt hook seeded into every clean cell, the
// soak must catch the divergence, the reducer must shrink it to a tiny
// body, and the written bundle must reproduce standalone.
func TestSoakCatchesSeededFault(t *testing.T) {
	opts := small(t)
	opts.Programs = 1
	opts.Hook = &inject.Options{CorruptOn: true, CorruptAt: 20}
	rep, err := Run(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("seeded fault produced %d findings, want 1: %+v",
			len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Kind != "divergence" {
		t.Fatalf("finding kind %q, want divergence (%+v)", f.Kind, f)
	}
	if f.ReducedInsts < 0 || f.ReducedInsts > 12 {
		t.Fatalf("reduced body is %d insts, want 0..12", f.ReducedInsts)
	}
	if f.Bundle == "" {
		t.Fatal("finding carries no bundle")
	}

	dir := filepath.Join(opts.OutDir, f.Bundle)
	for _, name := range []string{"prog.s", "repro.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("bundle incomplete: %v", err)
		}
	}
	b, res, err := ReplayBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reproduces(res) {
		t.Fatalf("bundle replay classified %+v, want kind=%s field=%s",
			res.Outcome, b.Kind, b.Field)
	}
}

// TestSoakResumeEquivalence: killing a campaign after a checkpoint and
// resuming it must cover exactly the seed set an uninterrupted campaign
// covers — same runs, same findings, byte for byte. The corrupt hook
// makes every cell a finding so the comparison is non-trivial.
func TestSoakResumeEquivalence(t *testing.T) {
	hook := &inject.Options{CorruptOn: true, CorruptAt: 20}

	full := small(t)
	full.Hook = hook
	fullRep, err := Run(full, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullRep.Findings) != full.Programs {
		t.Fatalf("full run: %d findings, want %d", len(fullRep.Findings), full.Programs)
	}

	// Interrupted: stop after 1 program (the final checkpoint write
	// plays the role of the mid-flight snapshot), then resume to the
	// full target.
	part := small(t)
	part.Hook = hook
	part.Programs = 1
	if _, err := Run(part, false); err != nil {
		t.Fatal(err)
	}
	part.Programs = full.Programs
	resumed, err := Run(part, true)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Fatal("resumed run not marked resumed")
	}
	if resumed.Runs != fullRep.Runs {
		t.Fatalf("resumed covered %d runs, full run covered %d", resumed.Runs, fullRep.Runs)
	}
	if !reflect.DeepEqual(resumed.Findings, fullRep.Findings) {
		t.Fatalf("resumed findings differ from uninterrupted run:\nresumed: %+v\nfull:    %+v",
			resumed.Findings, fullRep.Findings)
	}
}

// TestResumeRefusesDifferentCampaign: a checkpoint written by one
// campaign must not seed a campaign with different coverage options.
func TestResumeRefusesDifferentCampaign(t *testing.T) {
	opts := small(t)
	opts.Programs = 1
	if _, err := Run(opts, false); err != nil {
		t.Fatal(err)
	}
	opts.Configs = []string{"slice4"} // different coverage
	if _, err := Run(opts, true); err == nil {
		t.Fatal("resume with different campaign options must be refused")
	}
	// Extending the program target is a valid resume (pacing knob).
	opts.Configs = []string{"slice2"}
	opts.Programs = 2
	if _, err := Run(opts, true); err != nil {
		t.Fatalf("extending the program target must be a valid resume: %v", err)
	}
}

// TestCheckpointAtomicityAndVersion: round trip, version gate.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cp.json")
	cp := &Checkpoint{
		Version: checkpointVersion, Sig: "abc", BaseSeed: 9,
		NextProgram: 3, Runs: 12,
		Findings: []Finding{{Program: 1, Kind: "panic", ReducedInsts: -1}},
	}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip: got %+v want %+v", got, cp)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	cp.Version = 99
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

// TestGenerateRecovery: generate must return a program (and no panic
// text) for every valid option set — the recover seam only engages on a
// generator bug, which the soak then attributes to the seed.
func TestGenerateRecovery(t *testing.T) {
	p, text := generate(gen.Options{Fragments: 4}, 123)
	if p == nil || text != "" {
		t.Fatalf("generate(valid) = (%v, %q)", p, text)
	}
	if p.Seed != 123 {
		t.Fatalf("seed not threaded: %d", p.Seed)
	}
}
