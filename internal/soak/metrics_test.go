package soak

import (
	"encoding/json"
	"testing"

	"pok/internal/check/inject"
	"pok/internal/metrics"
)

// TestSnapshotFindingsEquivalence: attaching the metrics Snapshot hook
// must never change what the soak finds — the findings report stays
// byte-identical with the hook on or off. The corrupt hook makes every
// program a finding so the comparison exercises the full detect+reduce
// path (the one that re-runs programs with telemetry attached).
func TestSnapshotFindingsEquivalence(t *testing.T) {
	hook := &inject.Options{CorruptOn: true, CorruptAt: 20}

	plain := small(t)
	plain.Programs = 1
	plain.Hook = hook
	plainRep, err := Run(plain, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plainRep.Findings) != 1 {
		t.Fatalf("baseline found %d findings, want 1", len(plainRep.Findings))
	}

	var last *metrics.Snapshot
	observed := small(t)
	observed.Programs = 1
	observed.Hook = hook
	observed.Snapshot = func(next int, snap *metrics.Snapshot) { last = snap }
	obsRep, err := Run(observed, false)
	if err != nil {
		t.Fatal(err)
	}

	want, err := json.Marshal(plainRep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(obsRep)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("snapshot hook changed the findings report:\nwith:    %s\nwithout: %s",
			got, want)
	}

	if last == nil {
		t.Fatal("snapshot hook never fired")
	}
	if last.Programs != 1 || last.Runs == 0 || last.Findings != 1 {
		t.Fatalf("final snapshot %+v, want programs=1, runs>0, findings=1", last)
	}
	if last.WallNanos <= 0 {
		t.Fatalf("snapshot carries no wall time: %+v", last)
	}
}

// TestSnapshotCleanRunStacks: on a clean campaign the snapshot carries
// per-config CPI stacks built from the detection runs' telemetry, and
// each keeps the component-sum-equals-cycles invariant the /metrics
// acceptance check scrapes for.
func TestSnapshotCleanRunStacks(t *testing.T) {
	var last *metrics.Snapshot
	opts := small(t)
	opts.Snapshot = func(next int, snap *metrics.Snapshot) { last = snap }
	rep, err := Run(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean soak produced findings: %+v", rep.Findings)
	}
	if last == nil {
		t.Fatal("snapshot hook never fired")
	}
	if last.Programs != opts.Programs || last.Runs != opts.Programs {
		t.Fatalf("snapshot programs=%d runs=%d, want %d/%d",
			last.Programs, last.Runs, opts.Programs, opts.Programs)
	}
	st := last.Stacks["slice2"]
	if st == nil {
		t.Fatalf("snapshot has no slice2 CPI stack: %+v", last.Stacks)
	}
	if st.Sum() != st.Cycles || st.Cycles == 0 {
		t.Fatalf("slice2 stack: component sum %d, cycles %d — want equal and nonzero",
			st.Sum(), st.Cycles)
	}
	if st.Config != "slice2" {
		t.Fatalf("stack label %q, want slice2", st.Config)
	}
	if last.Insts == 0 || last.Cycles == 0 {
		t.Fatalf("snapshot has no throughput numerators: %+v", last)
	}
	if last.Telemetry == nil || last.Telemetry.CyclesSampled == 0 {
		t.Fatalf("snapshot carries no telemetry summary: %+v", last.Telemetry)
	}
}
