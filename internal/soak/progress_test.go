package soak

import (
	"reflect"
	"testing"

	"pok/internal/check/inject"
)

// TestSoakSplitEquivalence is the sharding invariant the fleet
// coordinator (internal/serve) is built on: running [0,3) in one pass
// and running [0,2) + [2,3) as separate StartProgram slices must
// produce identical findings and the same run count, because each
// program's seed is a pure function of (BaseSeed, index).
func TestSoakSplitEquivalence(t *testing.T) {
	hook := &inject.Options{CorruptOn: true, CorruptAt: 20}

	full := small(t)
	full.Hook = hook
	full.NoReduce = true
	fullRep, err := Run(full, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullRep.Findings) == 0 {
		t.Fatal("seeded fault produced no findings; the split test is vacuous")
	}

	lo := small(t)
	lo.Hook = hook
	lo.NoReduce = true
	lo.Programs = 2
	loRep, err := Run(lo, false)
	if err != nil {
		t.Fatal(err)
	}

	hi := small(t)
	hi.Hook = hook
	hi.NoReduce = true
	hi.StartProgram = 2
	hiRep, err := Run(hi, false)
	if err != nil {
		t.Fatal(err)
	}

	merged := append(append([]Finding(nil), loRep.Findings...), hiRep.Findings...)
	if !reflect.DeepEqual(merged, fullRep.Findings) {
		t.Fatalf("split findings differ from the full run\nfull:   %+v\nmerged: %+v",
			fullRep.Findings, merged)
	}
	if got := loRep.Runs + hiRep.Runs; got != fullRep.Runs {
		t.Fatalf("split runs %d, full run %d", got, fullRep.Runs)
	}
}

// TestSoakProgressShrink: the Progress hook's newEnd return tightens
// the campaign's end bound mid-run — the mechanism a fleet worker uses
// when the coordinator steals the tail of its cell.
func TestSoakProgressShrink(t *testing.T) {
	opts := small(t)
	calls := 0
	opts.Progress = func(next int, rep *Report) (int, bool) {
		calls++
		return 1, false // shrink to a single program after the first
	}
	rep, err := Run(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Programs != 1 || rep.Runs != 1 {
		t.Fatalf("shrunk run covered programs=%d runs=%d, want 1/1", rep.Programs, rep.Runs)
	}
	if calls != 1 {
		t.Fatalf("progress hook ran %d times, want 1", calls)
	}
}

// TestSoakProgressStop: a stop=true return abandons the campaign
// immediately (a fleet worker does this when its lease is cancelled).
func TestSoakProgressStop(t *testing.T) {
	opts := small(t)
	opts.Progress = func(next int, rep *Report) (int, bool) {
		return 0, true
	}
	rep, err := Run(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Programs != 1 || rep.Runs != 1 {
		t.Fatalf("stopped run covered programs=%d runs=%d, want 1/1", rep.Programs, rep.Runs)
	}
}
