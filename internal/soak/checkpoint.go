package soak

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Checkpoint is the resumable frontier of a soak campaign. Because a
// program's generator seed is a pure function of (BaseSeed, index)
// (gen.ProgramSeed), the only RNG state the snapshot needs is the
// cursor: resuming at NextProgram regenerates exactly the programs an
// uninterrupted run would have produced.
type Checkpoint struct {
	Version int `json:"version"`
	// Sig fingerprints the campaign options that affect coverage; a
	// resume with a different campaign is refused rather than silently
	// mixing seed spaces.
	Sig         string    `json:"sig"`
	BaseSeed    uint64    `json:"base_seed"`
	NextProgram int       `json:"next_program"`
	Runs        int       `json:"runs"`
	Findings    []Finding `json:"findings"`

	// NextCell / CellSnap extend the cursor to instruction granularity
	// (Options.CkptInsts): when present, program NextProgram was
	// interrupted mid-matrix — cells with flat index below NextCell
	// (config-major, then scheduler, then injection seed) are already
	// covered by Runs/Findings, and CellSnap is cell NextCell's latest
	// architectural snapshot (ckpt.Encode bytes; base64 in the JSON).
	// Program-boundary checkpoints omit both, so version 1 files stay
	// readable in either direction.
	NextCell int    `json:"next_cell,omitempty"`
	CellSnap []byte `json:"cell_snap,omitempty"`
}

const checkpointVersion = 1

// optionsSig fingerprints every option that changes which (program,
// config, scheduler, injection) cells the campaign covers. Output and
// pacing knobs (OutDir, Watchdog, CheckpointEvery, Log, Duration,
// Programs) are deliberately excluded: extending a time box or raising
// the program target is a valid resume.
func optionsSig(o Options) string {
	h := fnv.New64a()
	// CkptInsts is part of the signature even though it looks like a
	// pacing knob: checkpoint drains perturb run timing
	// deterministically, so cycle-dependent finding details are
	// reproducible only under the same cadence.
	fmt.Fprintf(h, "%d|%v|%v|%d|%+v|%d|%+v|%+v|%d",
		o.BaseSeed, o.Configs, o.Schedulers, o.InjectSeeds, o.Inject,
		o.MaxInsts, o.Gen, o.Hook, o.CkptInsts)
	return fmt.Sprintf("%016x", h.Sum64())
}

// SaveCheckpoint writes cp atomically (temp file + rename) so a soak
// killed mid-snapshot never leaves a truncated checkpoint behind.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d",
			path, cp.Version, checkpointVersion)
	}
	return &cp, nil
}

func saveProgress(opts Options, next int, rep *Report) error {
	return SaveCheckpoint(opts.Checkpoint, &Checkpoint{
		Version:     checkpointVersion,
		Sig:         optionsSig(opts),
		BaseSeed:    opts.BaseSeed,
		NextProgram: next,
		Runs:        rep.Runs,
		Findings:    rep.Findings,
	})
}

// saveCursor writes a mid-program checkpoint: the campaign is inside
// cell `cell` of program `program`, whose latest architectural snapshot
// is snapBytes. Runs/Findings cover everything before that point.
func saveCursor(opts Options, program, cell int, snapBytes []byte, rep *Report) error {
	return SaveCheckpoint(opts.Checkpoint, &Checkpoint{
		Version:     checkpointVersion,
		Sig:         optionsSig(opts),
		BaseSeed:    opts.BaseSeed,
		NextProgram: program,
		NextCell:    cell,
		CellSnap:    snapBytes,
		Runs:        rep.Runs,
		Findings:    rep.Findings,
	})
}
