// Package inject implements the deterministic fault injector behind
// core.Config.Inject. Every decision is a pure function of (Seed,
// sequence number, slice, fault kind) — independent of call order or
// call count — so a fault campaign replays identically given the same
// seed, on either scheduler.
//
// All injected faults perturb *speculation only*: a flipped slice result
// is caught at issue verify and replays; a forced MRU way miss takes the
// §5.2 full-address verification path; a forced alias conflict stalls
// the load like an unresolved partial-address match of §5.1. A correct
// machine therefore recovers from every injected fault to an
// oracle-identical commit stream — that recovery is exactly what
// cmd/pok-check asserts. The two exceptions are deliberate test hooks:
// Wedge (flip one slice forever, proving the deadlock watchdog fires)
// and Corrupt (mutate one commit record, proving the oracle detects
// divergence).
package inject

import (
	"encoding/json"
	"fmt"

	"pok/internal/core"
)

// Options configures an Injector. Rates are probabilities in [0, 1]
// evaluated independently per candidate (per (seq, slice) for slice
// flips, per load for the memory faults).
type Options struct {
	// Seed selects the deterministic fault pattern.
	Seed uint64

	// SliceFlipRate is the probability a given (seq, slice) result is
	// declared corrupt at its first issue; the slice-op replays once.
	SliceFlipRate float64
	// WayMissRate is the probability a correct MRU way prediction is
	// forced wrong, sending the load down the full-address replay path.
	WayMissRate float64
	// ConflictRate is the probability a load is stalled by a fake
	// partial-address store conflict for ConflictDelay cycles.
	ConflictRate float64
	// ConflictDelay is how many cycles a forced conflict stalls the load
	// (0 = default 8).
	ConflictDelay int

	// StormEvery/StormLen inject replay storms: every StormEvery
	// sequence numbers, a burst of StormLen consecutive instructions has
	// every slice flipped once — a worst-case pile-up of simultaneous
	// replays. 0 disables.
	StormEvery uint64
	StormLen   uint64

	// MaxFaults caps the total number of delivered faults (0 = no cap).
	MaxFaults uint64

	// WedgeOn/WedgeSeq: flip slice 0 of instruction WedgeSeq on *every*
	// issue attempt, so it can never execute. The machine stops
	// committing and the deadlock watchdog must fire — a test hook for
	// the watchdog, not a recoverable fault.
	WedgeOn  bool
	WedgeSeq uint64

	// CorruptOn/CorruptAt: mutate the commit record at commit index
	// CorruptAt (flip destination-value bit 0) before the oracle sees
	// it — a test hook proving divergence detection end to end.
	CorruptOn bool
	CorruptAt uint64
}

// Injector implements core.Injector deterministically from a seed.
type Injector struct {
	opt Options

	// fired tracks (seq<<3|slice) slice flips already delivered, so a
	// flipped slice-op replays once rather than livelocking.
	fired map[uint64]struct{}
	// wayDone tracks loads whose way-miss decision was consumed.
	wayDone map[uint64]struct{}
	// stall maps a conflicted load to its remaining stall cycles.
	stall map[uint64]int

	counts       map[string]uint64
	total        uint64
	wedgeCounted bool // wedge fault already counted once
}

// New builds an injector.
func New(opt Options) *Injector {
	if opt.ConflictDelay <= 0 {
		opt.ConflictDelay = 8
	}
	return &Injector{
		opt:     opt,
		fired:   make(map[uint64]struct{}),
		wayDone: make(map[uint64]struct{}),
		stall:   make(map[uint64]int),
		counts:  make(map[string]uint64),
	}
}

var _ core.Injector = (*Injector)(nil)

// splitmix64 finalizer: a full-avalanche 64-bit mix.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Per-kind salts keep the fault streams independent.
const (
	saltFlip = iota + 1
	saltWay
	saltConflict
)

// roll returns a uniform [0,1) deterministic in (seed, salt, seq, sl).
func (j *Injector) roll(salt uint64, seq uint64, sl int) float64 {
	h := mix(mix(j.opt.Seed^salt*0x9e3779b97f4a7c15) ^ mix(seq)*2 + uint64(sl))
	return float64(h>>11) / float64(1<<53)
}

func (j *Injector) capped() bool {
	return j.opt.MaxFaults > 0 && j.total >= j.opt.MaxFaults
}

func (j *Injector) deliver(kind string) {
	j.counts[kind]++
	j.total++
}

// inStorm reports whether seq falls in a configured replay-storm burst.
func (j *Injector) inStorm(seq uint64) bool {
	return j.opt.StormEvery > 0 && j.opt.StormLen > 0 &&
		seq%j.opt.StormEvery < j.opt.StormLen
}

// FlipSlice implements core.Injector.
func (j *Injector) FlipSlice(seq uint64, sl int) bool {
	if j.opt.WedgeOn && seq == j.opt.WedgeSeq && sl == 0 {
		// The wedge hook flips forever: the slice can never issue and
		// the deadlock watchdog must end the run.
		if !j.wedgeCounted {
			j.wedgeCounted = true
			j.deliver("wedge")
		}
		return true
	}
	key := seq<<3 | uint64(sl)
	if _, done := j.fired[key]; done || j.capped() {
		return false
	}
	switch {
	case j.inStorm(seq):
		j.fired[key] = struct{}{}
		j.deliver("storm-flip")
		return true
	case j.opt.SliceFlipRate > 0 && j.roll(saltFlip, seq, sl) < j.opt.SliceFlipRate:
		j.fired[key] = struct{}{}
		j.deliver("slice-flip")
		return true
	}
	return false
}

// ForceWayMiss implements core.Injector.
func (j *Injector) ForceWayMiss(seq uint64) bool {
	if _, done := j.wayDone[seq]; done || j.capped() {
		return false
	}
	if j.opt.WayMissRate > 0 && j.roll(saltWay, seq, 0) < j.opt.WayMissRate {
		j.wayDone[seq] = struct{}{}
		j.deliver("way-miss")
		return true
	}
	return false
}

// ForceAliasConflict implements core.Injector. The memory stage retries
// an unissued load every cycle, so this is polled repeatedly: the first
// positive decision arms a ConflictDelay-cycle stall that then drains.
func (j *Injector) ForceAliasConflict(seq uint64) bool {
	if left, armed := j.stall[seq]; armed {
		if left > 0 {
			j.stall[seq] = left - 1
			return true
		}
		return false
	}
	if j.capped() || j.opt.ConflictRate <= 0 ||
		j.roll(saltConflict, seq, 0) >= j.opt.ConflictRate {
		j.stall[seq] = 0 // decided: never conflict this load
		return false
	}
	j.stall[seq] = j.opt.ConflictDelay - 1
	j.deliver("alias-conflict")
	return true
}

// MutateCommit implements core.Injector: the deliberate-corruption test
// hook. It flips destination-value bit 0 at commit index CorruptAt (or
// the next-PC when the instruction writes no register), guaranteeing the
// oracle sees a field mismatch.
func (j *Injector) MutateCommit(r *core.CommitRecord) {
	if !j.opt.CorruptOn || r.Index != j.opt.CorruptAt {
		return
	}
	if r.Dst != 0 {
		r.DstVal ^= 1
	} else {
		r.NextPC ^= 4
	}
	j.deliver("commit-corrupt")
}

// injectorState is the injector's checkpointable state: the monotonic
// fault counters and caps. The per-instruction maps (fired, wayDone,
// stall) are deliberately absent — SnapshotState is called only at
// quiescent checkpoint boundaries, where no instruction is in flight,
// and every map key is a strictly increasing sequence number that will
// never be polled again.
type injectorState struct {
	Counts       map[string]uint64 `json:"counts,omitempty"`
	Total        uint64            `json:"total"`
	WedgeCounted bool              `json:"wedge_counted"`
}

// SnapshotState implements core.StateSnapshotter. The encoding is
// deterministic (encoding/json sorts map keys), so identical injector
// histories produce identical checkpoint bytes.
func (j *Injector) SnapshotState() ([]byte, error) {
	return json.Marshal(&injectorState{
		Counts:       j.counts,
		Total:        j.total,
		WedgeCounted: j.wedgeCounted,
	})
}

// RestoreState implements core.StateSnapshotter: the resumed injector
// continues the fault budget (MaxFaults) and counters exactly where the
// checkpointed one stopped, so every later roll lands identically.
func (j *Injector) RestoreState(b []byte) error {
	var st injectorState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("inject: restore: %w", err)
	}
	j.counts = st.Counts
	if j.counts == nil {
		j.counts = make(map[string]uint64)
	}
	j.total = st.Total
	j.wedgeCounted = st.WedgeCounted
	j.fired = make(map[uint64]struct{})
	j.wayDone = make(map[uint64]struct{})
	j.stall = make(map[uint64]int)
	return nil
}

var _ core.StateSnapshotter = (*Injector)(nil)

// FaultCounts returns the number of faults delivered, by kind (the
// check.FaultCounter interface).
func (j *Injector) FaultCounts() map[string]uint64 {
	out := make(map[string]uint64, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of delivered faults.
func (j *Injector) Total() uint64 { return j.total }
