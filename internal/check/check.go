// Package check verifies the timing simulator against its functional
// ground truth. It provides the three robustness pillars of the
// reproduction:
//
//   - a lockstep commit oracle (Oracle): a second, independent instance of
//     the functional emulator steps once per committed instruction and
//     diffs the architectural record — PC, source values, destination
//     values, memory effect, control outcome — aborting the run at the
//     first divergence;
//   - the per-cycle structural invariant checker lives in internal/core
//     (core.InvariantConfig) and is enabled by RunChecked;
//   - the deterministic fault injector lives in internal/check/inject and
//     plugs into core.Config.Inject.
//
// RunChecked composes all three around one timing run and renders the
// outcome as a machine-readable Report; cmd/pok-check is its CLI.
package check

import (
	"errors"
	"fmt"

	"pok/internal/core"
	"pok/internal/emu"
)

// Oracle is the lockstep functional reference: an emulator instance
// advanced once per committed instruction, in commit order. Because the
// timing model's speculation (partial tag matches, early branch
// resolution, early disambiguation, injected faults) is timing-only,
// every committed record must match the reference exactly; any
// difference means the machine corrupted, reordered, dropped or
// duplicated architectural state.
type Oracle struct {
	em        *emu.Emulator
	committed uint64
}

// NewOracle builds the reference emulator for prog and fast-forwards it
// warmup instructions so it is aligned with a core.RunWarm(prog, cfg,
// warmup, ...) timing run.
func NewOracle(prog *emu.Program, warmup uint64) (*Oracle, error) {
	em := emu.New(prog)
	if warmup > 0 {
		if _, err := em.Run(warmup, nil); err != nil {
			return nil, fmt.Errorf("check: oracle warmup: %w", err)
		}
	}
	return &Oracle{em: em}, nil
}

// NewOracleFromState rebuilds the reference emulator from a checkpoint's
// architectural state. At a quiescent snapshot boundary the timing
// machine's emulator sits exactly at the commit frontier — everything it
// executed has committed — so the same State seeds both the resumed
// machine and its lockstep oracle, and no separate oracle state needs to
// travel in the checkpoint. committed seeds the verified-commit counter
// (Meta.Insts of the snapshot).
func NewOracleFromState(st *emu.State, committed uint64) (*Oracle, error) {
	em, err := emu.NewFromState(st)
	if err != nil {
		return nil, fmt.Errorf("check: oracle restore: %w", err)
	}
	return &Oracle{em: em, committed: committed}, nil
}

// Committed returns how many commits the oracle has verified.
func (o *Oracle) Committed() uint64 { return o.committed }

// Emulator exposes the reference emulator (for final-state assertions in
// tests).
func (o *Oracle) Emulator() *emu.Emulator { return o.em }

// CheckCommit implements core.CommitChecker: step the reference once and
// diff the committed record against it.
func (o *Oracle) CheckCommit(r *core.CommitRecord) error {
	d, err := o.em.Step()
	if err != nil {
		if errors.Is(err, emu.ErrHalted) {
			return o.div(r, "stream", "halted reference (no instruction left)",
				fmt.Sprintf("commit of pc=0x%x", r.PC))
		}
		return fmt.Errorf("check: reference emulator at commit %d: %w", o.committed, err)
	}
	o.committed++
	if d.PC != r.PC {
		return o.div(r, "pc", hex(d.PC), hex(r.PC))
	}
	if d.Inst != r.Inst {
		return o.div(r, "inst", d.Inst.String(), r.Inst.String())
	}
	if d.NSrc != r.NSrc {
		return o.div(r, "nsrc", fmt.Sprint(d.NSrc), fmt.Sprint(r.NSrc))
	}
	for i := 0; i < d.NSrc && i < len(d.SrcVal); i++ {
		if d.SrcVal[i] != r.SrcVal[i] {
			return o.div(r, fmt.Sprintf("src%d", i), hex(d.SrcVal[i]), hex(r.SrcVal[i]))
		}
	}
	if d.Dst != r.Dst {
		return o.div(r, "dst", d.Dst.String(), r.Dst.String())
	}
	if d.Dst != 0 && d.DstVal != r.DstVal {
		return o.div(r, "dstval", hex(d.DstVal), hex(r.DstVal))
	}
	if d.Dst2 != r.Dst2 {
		return o.div(r, "dst2", d.Dst2.String(), r.Dst2.String())
	}
	if d.Dst2 != 0 && d.Dst2Val != r.Dst2Val {
		return o.div(r, "dst2val", hex(d.Dst2Val), hex(r.Dst2Val))
	}
	if d.Inst.Op.IsLoad() || d.Inst.Op.IsStore() {
		if d.EffAddr != r.EffAddr {
			return o.div(r, "effaddr", hex(d.EffAddr), hex(r.EffAddr))
		}
	}
	if d.Inst.Op.IsControl() && d.Taken != r.Taken {
		return o.div(r, "taken", fmt.Sprint(d.Taken), fmt.Sprint(r.Taken))
	}
	if d.NextPC != r.NextPC {
		return o.div(r, "nextpc", hex(d.NextPC), hex(r.NextPC))
	}
	return nil
}

func (o *Oracle) div(r *core.CommitRecord, field, want, got string) error {
	return &Divergence{
		Seq:    r.Seq,
		Index:  r.Index,
		Cycle:  r.Cycle,
		PC:     hex(r.PC),
		Disasm: r.Inst.String(),
		Field:  field,
		Want:   want,
		Got:    got,
	}
}

func hex(v uint32) string { return fmt.Sprintf("0x%08x", v) }

// Divergence is the first point at which the timing machine's committed
// architectural state differed from the functional reference. Want is
// the reference's value, Got the machine's.
type Divergence struct {
	Seq    uint64 `json:"seq"`
	Index  uint64 `json:"index"`
	Cycle  int64  `json:"cycle"`
	PC     string `json:"pc"`
	Disasm string `json:"disasm"`
	Field  string `json:"field"`
	Want   string `json:"want"`
	Got    string `json:"got"`
}

func (d *Divergence) Error() string {
	return fmt.Sprintf(
		"check: commit divergence at seq %d (commit #%d, cycle %d, pc %s `%s`): %s: reference %s, machine %s",
		d.Seq, d.Index, d.Cycle, d.PC, d.Disasm, d.Field, d.Want, d.Got)
}
