package check

import (
	"errors"
	"fmt"

	"pok/internal/ckpt"
	"pok/internal/core"
	"pok/internal/emu"
	"pok/internal/telemetry"
)

// Options configures one checked run.
type Options struct {
	// Benchmark labels the report.
	Benchmark string
	// Warmup fast-forwards both the timing machine and the oracle.
	Warmup uint64
	// MaxInsts bounds the committed instruction count (0 = to exit).
	MaxInsts uint64
	// Invariants overrides the invariant/watchdog budgets (nil = enable
	// the checker with defaults; the checker is always on under
	// RunChecked).
	Invariants *core.InvariantConfig
	// Injector, when non-nil, is installed as core.Config.Inject.
	Injector core.Injector
	// RingCap sizes the telemetry ring backing the failure trace window
	// (0 = the telemetry default).
	RingCap int
	// TraceRadius selects events within +/- this many sequence numbers
	// of the failing instruction for Report.Trace (0 = default 4).
	TraceRadius uint64
	// KeepTelemetry exposes the run's recorder output on the report
	// (Report.Telemetry, Report.Events) even on success, for the fleet
	// metrics pipeline. It reuses the recorder RunChecked already
	// attaches for failure traces, so the simulated run is bit-identical
	// with or without it; ignored when the caller brought its own
	// Collector.
	KeepTelemetry bool

	// CkptEvery arms architectural checkpointing at this committed-
	// instruction cadence (0 = off); snapshots go to CkptSink. With
	// CkptEvery 0 but a non-nil sink, only a RequestStop writes a final
	// snapshot. Checkpoint drains perturb timing deterministically, so
	// two runs compare bit-identically only under the same cadence.
	CkptEvery uint64
	CkptSink  ckpt.Sink

	// Resume restarts the run from a full (chain-resolved) snapshot
	// instead of the program start. Benchmark, the config and the
	// injector settings must match the checkpointed run; Warmup is
	// ignored (the snapshot is already past it). The lockstep oracle is
	// reconstructed from the snapshot's emulator state.
	Resume *ckpt.Snapshot

	// OnStart, when non-nil, receives the running simulation's stop
	// trigger before the first cycle — the hook signal handlers and
	// watchdogs use to request a drain + final snapshot + partial report.
	OnStart func(stop func(reason string))
}

// FaultCounter is implemented by injectors that can report how many
// faults of each kind they actually delivered (inject.Injector does).
type FaultCounter interface {
	FaultCounts() map[string]uint64
}

// Report is the machine-readable outcome of one checked run; pok-check
// marshals it to JSON. Exactly one of Divergence / Invariant / Deadlock
// is set when OK is false (or none, for a plain error).
type Report struct {
	Benchmark string `json:"benchmark,omitempty"`
	Config    string `json:"config"`
	Scheduler string `json:"scheduler"`
	Seed      uint64 `json:"seed,omitempty"`

	Insts   uint64  `json:"insts"`
	Cycles  int64   `json:"cycles"`
	IPC     float64 `json:"ipc"`
	Replays uint64  `json:"replays"`

	// Faults counts injected faults by kind, when the injector can
	// report them.
	Faults map[string]uint64 `json:"faults,omitempty"`

	OK bool `json:"ok"`
	// Stopped marks a run ended early by a stop request (signal or
	// watchdog): the counters cover the committed prefix, OK reflects
	// that prefix, and a final snapshot went to the checkpoint sink if
	// one was attached.
	Stopped    bool   `json:"stopped,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	// FailKind classifies a failure: "divergence", "invariant",
	// "deadlock" or "error".
	FailKind   string           `json:"fail_kind,omitempty"`
	Divergence *Divergence      `json:"divergence,omitempty"`
	Invariant  *InvariantReport `json:"invariant,omitempty"`
	Deadlock   *DeadlockReport  `json:"deadlock,omitempty"`
	Error      string           `json:"error,omitempty"`

	// Trace is the telemetry-derived per-slice event window around the
	// failing instruction (empty on success).
	Trace []string `json:"trace,omitempty"`

	// Telemetry and Events carry the run's recorder output when
	// Options.KeepTelemetry is set — consumed in-process by the fleet
	// metrics fold, and deliberately excluded from JSON so repro
	// bundles and findings stay byte-identical with metrics on or off.
	Telemetry *telemetry.Summary `json:"-"`
	Events    []telemetry.Event  `json:"-"`
}

// InvariantReport is the JSON shape of a core.InvariantError.
type InvariantReport struct {
	Rule   string `json:"rule"`
	Cycle  int64  `json:"cycle"`
	Seq    uint64 `json:"seq"`
	Detail string `json:"detail"`
	Dump   string `json:"dump,omitempty"`
}

// DeadlockReport is the JSON shape of a core.DeadlockError.
type DeadlockReport struct {
	Cycle     int64  `json:"cycle"`
	Committed uint64 `json:"committed"`
	Budget    int64  `json:"budget"`
	Dump      string `json:"dump,omitempty"`
}

// RunChecked runs prog under cfg with the lockstep oracle and the
// invariant checker enabled (plus opts.Injector, if any) and classifies
// the outcome. The returned error is non-nil only for setup problems;
// run-time failures are reported in Report with OK=false.
func RunChecked(prog *emu.Program, cfg core.Config, opts Options) (*Report, error) {
	rep := &Report{
		Benchmark: opts.Benchmark,
		Config:    cfg.Name,
		Scheduler: schedulerName(cfg),
	}
	var oracle *Oracle
	var err error
	if opts.Resume != nil {
		oracle, err = NewOracleFromState(opts.Resume.Emu, opts.Resume.Meta.Insts)
	} else {
		oracle, err = NewOracle(prog, opts.Warmup)
	}
	if err != nil {
		return nil, err
	}
	cfg.Oracle = oracle
	if opts.Invariants != nil {
		cfg.Invariants = opts.Invariants
	} else if cfg.Invariants == nil {
		cfg.Invariants = &core.InvariantConfig{}
	}
	if opts.Injector != nil {
		cfg.Inject = opts.Injector
	}
	// Attach a recorder (unless the caller brought a collector) so a
	// failure report can include the pipeline event window around the
	// offending instruction.
	var rec *telemetry.Recorder
	if cfg.Collector == nil {
		rec = cfg.NewRecorder(opts.RingCap)
		cfg.Collector = rec
	}

	var sim *core.Sim
	if opts.Resume != nil {
		sim, err = core.NewSimFromSnapshot(opts.Resume, cfg, opts.MaxInsts)
	} else {
		sim, err = core.NewSim(prog, cfg, opts.MaxInsts)
		if err == nil && opts.Warmup > 0 {
			err = sim.FastForward(opts.Warmup)
		}
	}
	if err != nil {
		return nil, err
	}
	if opts.CkptEvery > 0 || opts.CkptSink != nil {
		sim.SetCheckpoint(opts.CkptEvery, opts.CkptSink, opts.Benchmark)
	}
	if opts.OnStart != nil {
		opts.OnStart(sim.RequestStop)
	}
	res, runErr := sim.Run()
	if fc, ok := opts.Injector.(FaultCounter); ok {
		rep.Faults = fc.FaultCounts()
	}
	if rec != nil && opts.KeepTelemetry {
		rep.Telemetry = rec.Summary()
		rep.Events = rec.Events()
	}
	if runErr == nil {
		rep.OK = true
		rep.Insts = res.Insts
		rep.Cycles = res.Cycles
		rep.IPC = res.IPC
		rep.Replays = res.Replays
		rep.Stopped = res.Stopped
		rep.StopReason = res.StopReason
		return rep, nil
	}

	rep.Error = runErr.Error()
	var failSeq uint64
	var div *Divergence
	var invErr *core.InvariantError
	var dl *core.DeadlockError
	switch {
	case errors.As(runErr, &div):
		rep.FailKind = "divergence"
		rep.Divergence = div
		failSeq = div.Seq
	case errors.As(runErr, &invErr):
		rep.FailKind = "invariant"
		rep.Invariant = &InvariantReport{
			Rule: invErr.Rule, Cycle: invErr.Cycle, Seq: invErr.Seq,
			Detail: invErr.Detail, Dump: invErr.Dump,
		}
		failSeq = invErr.Seq
	case errors.As(runErr, &dl):
		rep.FailKind = "deadlock"
		rep.Deadlock = &DeadlockReport{
			Cycle: dl.Cycle, Committed: dl.Committed, Budget: dl.Budget,
			Dump: dl.Dump,
		}
	default:
		rep.FailKind = "error"
	}
	if rec != nil {
		radius := opts.TraceRadius
		if radius == 0 {
			radius = 4
		}
		rep.Trace = traceWindow(rec.Events(), failSeq, radius)
	}
	return rep, nil
}

func schedulerName(cfg core.Config) string {
	if cfg.LegacyScheduler {
		return "legacy"
	}
	return "event"
}

// traceWindow renders the telemetry events near the failing instruction:
// every ring event whose sequence number is within radius of seq, or the
// tail of the ring when no instruction is identifiable (seq 0, e.g. a
// deadlock) — the most recent events are the relevant ones there.
func traceWindow(events []telemetry.Event, seq, radius uint64) []string {
	const tailLen = 32
	var out []string
	if seq == 0 {
		lo := 0
		if len(events) > tailLen {
			lo = len(events) - tailLen
		}
		for _, ev := range events[lo:] {
			out = append(out, fmtEvent(&ev))
		}
		return out
	}
	lo := uint64(0)
	if seq > radius {
		lo = seq - radius
	}
	hi := seq + radius
	for i := range events {
		ev := &events[i]
		if ev.Seq >= lo && ev.Seq <= hi {
			out = append(out, fmtEvent(ev))
		}
	}
	return out
}

func fmtEvent(ev *telemetry.Event) string {
	return fmt.Sprintf("c=%d seq=%d %s slice=%d arg=%d arg2=%d",
		ev.Cycle, ev.Seq, ev.Kind, ev.Slice, ev.Arg, ev.Arg2)
}
