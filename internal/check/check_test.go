package check_test

import (
	"strings"
	"testing"

	"pok/internal/check"
	"pok/internal/check/inject"
	"pok/internal/core"
	"pok/internal/workload"
)

func runChecked(t *testing.T, name string, cfg core.Config, opts check.Options) *check.Report {
	t.Helper()
	w, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	opts.Benchmark = name
	opts.Warmup = w.FastForward
	rep, err := check.RunChecked(prog, cfg, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rep
}

// TestCheckedCleanRuns holds three workloads to the lockstep oracle and
// the invariant checker under both schedulers: the machine must commit
// the reference's exact architectural stream with no violations.
func TestCheckedCleanRuns(t *testing.T) {
	t.Parallel()
	for _, bench := range []string{"gzip", "li", "mcf"} {
		for _, legacy := range []bool{false, true} {
			bench, legacy := bench, legacy
			name := bench + "/" + schedName(legacy)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := core.BitSliced(2)
				cfg.LegacyScheduler = legacy
				rep := runChecked(t, bench, cfg, check.Options{MaxInsts: 60_000})
				if !rep.OK {
					t.Fatalf("checked run failed: %s\n%s", rep.FailKind, rep.Error)
				}
				if rep.Insts == 0 || rep.Cycles == 0 {
					t.Fatalf("empty run: %+v", rep)
				}
			})
		}
	}
}

func schedName(legacy bool) string {
	if legacy {
		return "legacy"
	}
	return "event"
}

// TestCheckedHooksPreserveResult is the nil-cheap identity guarantee
// from the other side: enabling the oracle and the invariant checker
// must not change a single Result counter relative to an unchecked run.
func TestCheckedHooksPreserveResult(t *testing.T) {
	t.Parallel()
	w, err := workload.Get("gzip")
	if err != nil {
		t.Fatal(err)
	}
	run := func(checked bool) *core.Result {
		prog, err := w.Program(w.DefaultScale)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.BitSliced(2)
		if checked {
			oracle, err := check.NewOracle(prog, w.FastForward)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Oracle = oracle
			cfg.Invariants = &core.InvariantConfig{}
		}
		r, err := core.RunWarm(prog, cfg, w.FastForward, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain, checked := run(false), run(true)
	if *plain != *checked {
		t.Errorf("oracle+invariants changed the Result\nplain:\n%s\nchecked:\n%s",
			plain.Summary(), checked.Summary())
	}
}

// TestInjectionRecovery hammers the machine with every recoverable fault
// kind at once — slice flips, forced way mispredicts, fake
// disambiguation conflicts — on both schedulers and (for the event
// scheduler) with wrong-path fetch on. The machine must recover from
// every fault to an oracle-identical commit stream.
func TestInjectionRecovery(t *testing.T) {
	t.Parallel()
	type variant struct {
		name      string
		legacy    bool
		wrongPath bool
	}
	for _, v := range []variant{
		{"event", false, false},
		{"legacy", true, false},
		{"event-wrongpath", false, true},
	} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			cfg := core.BitSliced(2)
			cfg.LegacyScheduler = v.legacy
			cfg.WrongPath = v.wrongPath
			inj := inject.New(inject.Options{
				Seed:          7,
				SliceFlipRate: 0.02,
				WayMissRate:   0.10,
				ConflictRate:  0.05,
			})
			rep := runChecked(t, "gzip", cfg, check.Options{
				MaxInsts: 60_000,
				Injector: inj,
			})
			if !rep.OK {
				t.Fatalf("injection broke architectural state: %s\n%s",
					rep.FailKind, rep.Error)
			}
			if inj.Total() < 100 {
				t.Fatalf("campaign too weak: only %d faults delivered (%v)",
					inj.Total(), rep.Faults)
			}
			if rep.Replays == 0 {
				t.Fatal("injected slice flips produced no replays")
			}
		})
	}
}

// TestReplayStormRecovery drives periodic bursts where every slice of
// consecutive instructions is corrupted at first issue — a worst-case
// pile-up of simultaneous replays — on the slice-by-4 machine.
func TestReplayStormRecovery(t *testing.T) {
	t.Parallel()
	for _, legacy := range []bool{false, true} {
		legacy := legacy
		t.Run(schedName(legacy), func(t *testing.T) {
			t.Parallel()
			cfg := core.BitSliced(4)
			cfg.LegacyScheduler = legacy
			inj := inject.New(inject.Options{
				Seed:       11,
				StormEvery: 1_000,
				StormLen:   16,
			})
			rep := runChecked(t, "li", cfg, check.Options{
				MaxInsts: 40_000,
				Injector: inj,
			})
			if !rep.OK {
				t.Fatalf("replay storm broke the machine: %s\n%s", rep.FailKind, rep.Error)
			}
			if got := rep.Faults["storm-flip"]; got < 500 {
				t.Fatalf("storm too weak: %d flips", got)
			}
		})
	}
}

// TestSeededDivergence proves the oracle detects corruption: the
// MutateCommit test hook flips one destination bit at a chosen commit,
// and the report must name the seq, cycle and field.
func TestSeededDivergence(t *testing.T) {
	t.Parallel()
	cfg := core.BitSliced(2)
	inj := inject.New(inject.Options{Seed: 3, CorruptOn: true, CorruptAt: 500})
	rep := runChecked(t, "li", cfg, check.Options{
		MaxInsts: 20_000,
		Injector: inj,
	})
	if rep.OK {
		t.Fatal("corrupted commit went undetected")
	}
	if rep.FailKind != "divergence" || rep.Divergence == nil {
		t.Fatalf("wrong failure class: %s (%s)", rep.FailKind, rep.Error)
	}
	d := rep.Divergence
	if d.Index != 500 {
		t.Errorf("divergence at commit %d, corrupted 500", d.Index)
	}
	if d.Seq == 0 || d.Cycle == 0 || d.Field == "" || d.Want == d.Got {
		t.Errorf("underspecified divergence: %+v", d)
	}
	if len(rep.Trace) == 0 {
		t.Error("no telemetry trace window around the divergence")
	}
	for _, line := range rep.Trace {
		if !strings.Contains(line, "seq=") {
			t.Fatalf("malformed trace line %q", line)
		}
	}
}

// TestWedgeDeadlock proves the watchdog converts a wedged pipeline into
// a structured report instead of a hang: one slice is corrupted on
// every issue attempt, so its instruction can never complete.
func TestWedgeDeadlock(t *testing.T) {
	t.Parallel()
	cfg := core.BitSliced(2)
	inj := inject.New(inject.Options{Seed: 5, WedgeOn: true, WedgeSeq: 300})
	rep := runChecked(t, "li", cfg, check.Options{
		MaxInsts:   20_000,
		Injector:   inj,
		Invariants: &core.InvariantConfig{DeadlockBudget: 2_000},
	})
	if rep.OK {
		t.Fatal("wedged machine reported success")
	}
	if rep.FailKind != "deadlock" || rep.Deadlock == nil {
		t.Fatalf("wrong failure class: %s (%s)", rep.FailKind, rep.Error)
	}
	if rep.Deadlock.Budget != 2_000 || rep.Deadlock.Dump == "" {
		t.Errorf("underspecified deadlock report: %+v", rep.Deadlock)
	}
}
