package check_test

import (
	"reflect"
	"testing"

	"pok/internal/check"
	"pok/internal/check/inject"
	"pok/internal/ckpt"
	"pok/internal/core"
	"pok/internal/workload"
)

// allSink records every snapshot (always full) and can fire a stop
// trigger after the Nth write — the checked-run version of the core
// layer's kill-at-every-checkpoint harness, now with the lockstep
// oracle, the invariant checker and the fault injector all attached.
type allSink struct {
	snaps  []*ckpt.Snapshot
	stopAt int
	stop   func(reason string)
}

func (a *allSink) WantFull() bool { return true }

func (a *allSink) Write(s *ckpt.Snapshot) error {
	a.snaps = append(a.snaps, s)
	if a.stopAt > 0 && len(a.snaps) == a.stopAt && a.stop != nil {
		a.stop("checkpoint-boundary stop")
	}
	return nil
}

// TestCheckedResumeWithInjector kills a fully-checked faulty run (oracle
// + invariants + injector) at a checkpoint boundary and resumes it with
// a freshly built injector of the same options. The resumed report —
// instruction/cycle counts, replay count and the cumulative per-kind
// fault counts — must equal the uninterrupted reference's exactly.
func TestCheckedResumeWithInjector(t *testing.T) {
	t.Parallel()
	const maxInsts = 20_000
	const every = 5_000
	w := workload.MustGet("li")
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.BitSliced(4)
	injOpts := inject.Options{
		Seed:          7,
		SliceFlipRate: 0.002,
		WayMissRate:   0.01,
		ConflictRate:  0.005,
		MaxFaults:     200,
	}

	ref := &allSink{}
	refRep, err := check.RunChecked(prog, cfg, check.Options{
		Benchmark: "li", Warmup: w.FastForward, MaxInsts: maxInsts,
		Injector:  inject.New(injOpts),
		CkptEvery: every, CkptSink: ref,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !refRep.OK {
		t.Fatalf("reference run failed: %s %s", refRep.FailKind, refRep.Error)
	}
	if len(ref.snaps) < 2 {
		t.Fatalf("want >= 2 snapshots, got %d", len(ref.snaps))
	}

	killed := &allSink{stopAt: 2}
	prog2, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	killedRep, err := check.RunChecked(prog2, cfg, check.Options{
		Benchmark: "li", Warmup: w.FastForward, MaxInsts: maxInsts,
		Injector:  inject.New(injOpts),
		CkptEvery: every, CkptSink: killed,
		OnStart: func(stop func(string)) { killed.stop = stop },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !killedRep.Stopped || killedRep.StopReason == "" {
		t.Fatalf("killed run not marked stopped: %+v", killedRep)
	}

	// Resume from the stop-boundary snapshot; prog is not needed.
	resumed, err := check.RunChecked(nil, cfg, check.Options{
		Benchmark: "li", MaxInsts: maxInsts,
		Injector:  inject.New(injOpts),
		CkptEvery: every, CkptSink: &allSink{},
		Resume: killed.snaps[1],
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.OK || resumed.Stopped {
		t.Fatalf("resumed run failed: %s %s", resumed.FailKind, resumed.Error)
	}
	if resumed.Insts != refRep.Insts || resumed.Cycles != refRep.Cycles ||
		resumed.IPC != refRep.IPC || resumed.Replays != refRep.Replays {
		t.Errorf("resumed counters diverge:\nref: %+v\ngot: %+v", refRep, resumed)
	}
	if !reflect.DeepEqual(resumed.Faults, refRep.Faults) {
		t.Errorf("cumulative fault counts diverge: ref %v, got %v", refRep.Faults, resumed.Faults)
	}
}

// TestCheckedResumeDetectsDivergence plants a deliberate commit-record
// corruption beyond the checkpoint boundary: both the uninterrupted run
// and the resumed run must report the identical divergence — proving the
// reconstructed oracle still verifies every post-resume commit.
func TestCheckedResumeDetectsDivergence(t *testing.T) {
	t.Parallel()
	const maxInsts = 12_000
	const every = 4_000
	const corruptAt = 9_000
	w := workload.MustGet("gzip")
	cfg := core.BitSliced(2)
	injOpts := inject.Options{CorruptOn: true, CorruptAt: corruptAt}

	run := func(resume *ckpt.Snapshot, sink *allSink) *check.Report {
		t.Helper()
		opts := check.Options{
			Benchmark: "gzip", MaxInsts: maxInsts,
			Injector:  inject.New(injOpts),
			CkptEvery: every, CkptSink: sink,
			Resume: resume,
		}
		var rep *check.Report
		var err error
		if resume == nil {
			p, perr := w.Program(w.DefaultScale)
			if perr != nil {
				t.Fatal(perr)
			}
			opts.Warmup = w.FastForward
			rep, err = check.RunChecked(p, cfg, opts)
		} else {
			rep, err = check.RunChecked(nil, cfg, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	ref := &allSink{}
	refRep := run(nil, ref)
	if refRep.OK || refRep.FailKind != "divergence" {
		t.Fatalf("reference run did not diverge: %+v", refRep)
	}
	if len(ref.snaps) == 0 {
		t.Fatal("no snapshot before the corruption point")
	}
	resumed := run(ref.snaps[len(ref.snaps)-1], &allSink{})
	if resumed.OK || resumed.FailKind != "divergence" {
		t.Fatalf("resumed run did not diverge: %+v", resumed)
	}
	if !reflect.DeepEqual(resumed.Divergence, refRep.Divergence) {
		t.Errorf("divergence reports differ:\nref: %+v\ngot: %+v",
			refRep.Divergence, resumed.Divergence)
	}
}
