package reduce

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"pok/internal/check"
	"pok/internal/check/inject"
	"pok/internal/core"
)

// TestDDMinFindsSingleton: the failure depends on one line; ddmin must
// isolate exactly that line.
func TestDDMinFindsSingleton(t *testing.T) {
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, "noise")
	}
	lines[23] = "needle"
	test := func(cand []string) bool {
		for _, l := range cand {
			if l == "needle" {
				return true
			}
		}
		return false
	}
	got := DDMin(lines, test)
	if !reflect.DeepEqual(got, []string{"needle"}) {
		t.Fatalf("DDMin = %v, want [needle]", got)
	}
}

// TestDDMinPair: the failure needs two lines that start far apart; the
// result must contain both and nothing else (1-minimality).
func TestDDMinPair(t *testing.T) {
	var lines []string
	for i := 0; i < 64; i++ {
		lines = append(lines, "x")
	}
	lines[3] = "a"
	lines[57] = "b"
	test := func(cand []string) bool {
		hasA, hasB := false, false
		for _, l := range cand {
			hasA = hasA || l == "a"
			hasB = hasB || l == "b"
		}
		return hasA && hasB
	}
	got := DDMin(lines, test)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("DDMin = %v, want [a b]", got)
	}
}

// TestDDMinPreservesOrder: reduction must be an order-preserving
// subsequence (assembly programs are order-sensitive).
func TestDDMinPreservesOrder(t *testing.T) {
	lines := []string{"1", "2", "3", "4", "5", "6", "7", "8"}
	test := func(cand []string) bool {
		// Need "2" before "7".
		i2, i7 := -1, -1
		for i, l := range cand {
			if l == "2" {
				i2 = i
			}
			if l == "7" {
				i7 = i
			}
		}
		return i2 >= 0 && i7 >= 0 && i2 < i7
	}
	got := DDMin(lines, test)
	if !reflect.DeepEqual(got, []string{"2", "7"}) {
		t.Fatalf("DDMin = %v, want [2 7]", got)
	}
}

// TestDDMinBounded stops after the test budget and still returns a
// valid (possibly non-minimal) reproducer.
func TestDDMinBounded(t *testing.T) {
	var lines []string
	for i := 0; i < 100; i++ {
		lines = append(lines, "x")
	}
	lines[50] = "needle"
	calls := 0
	test := func(cand []string) bool {
		calls++
		for _, l := range cand {
			if l == "needle" {
				return true
			}
		}
		return false
	}
	got, tests := DDMinBounded(lines, test, 5)
	if tests > 5 {
		t.Fatalf("spent %d tests, budget 5", tests)
	}
	found := false
	for _, l := range got {
		found = found || l == "needle"
	}
	if !found {
		t.Fatalf("bounded reduction lost the needle: %v", got)
	}
}

func TestOutcomeMatches(t *testing.T) {
	div := Outcome{Kind: "divergence", Field: "dstval"}
	if !div.Matches(Outcome{Kind: "divergence", Field: "dstval"}) {
		t.Fatal("exact match failed")
	}
	if div.Matches(Outcome{Kind: "divergence", Field: "pc"}) {
		t.Fatal("different field must not match a field-specific reference")
	}
	if !div.Matches(Outcome{Kind: "divergence"}) {
		t.Fatal("field-less reference must accept any field")
	}
	if (Outcome{Kind: "deadlock"}).Matches(div) {
		t.Fatal("kind mismatch accepted")
	}
	if (Outcome{}).Failing() {
		t.Fatal("zero outcome must not be failing")
	}
}

// minimal program for CheckRunner tests.
const tinyProg = `
main:
	li $t0, 5
loop:
	addiu $t0, $t0, -1
	bgtz $t0, loop
	li $v0, 10
	syscall
`

func TestCheckRunnerClean(t *testing.T) {
	res := CheckRunner(core.BitSliced(2), check.Options{}, time.Minute)(tinyProg)
	if res.Outcome.Failing() {
		t.Fatalf("clean program classified %+v (%s)", res.Outcome, res.Err)
	}
	if res.Report == nil || !res.Report.OK {
		t.Fatal("clean run must carry an OK report")
	}
}

func TestCheckRunnerAssemblyError(t *testing.T) {
	res := CheckRunner(core.BitSliced(2), check.Options{}, time.Minute)("bogus $q9\n")
	if res.Outcome.Kind != "error" {
		t.Fatalf("unassemblable candidate classified %+v", res.Outcome)
	}
	if res.Err == "" {
		t.Fatal("assembly failure must carry a diagnostic")
	}
}

// TestCheckRunnerDetectsSeededDivergence: the inject corrupt hook must
// classify as a dstval/nextpc divergence through the runner.
func TestCheckRunnerDetectsSeededDivergence(t *testing.T) {
	opts := check.Options{
		Injector: inject.New(inject.Options{CorruptOn: true, CorruptAt: 3}),
	}
	res := CheckRunner(core.BitSliced(2), opts, time.Minute)(tinyProg)
	if res.Outcome.Kind != "divergence" {
		t.Fatalf("seeded corruption classified %+v (%s)", res.Outcome, res.Err)
	}
}

// TestProgramReduction reduces a seeded divergence end to end: the
// minimal body must be tiny and still reproduce the exact failure
// signature. The corrupt hook fires at commit index 10 regardless of
// body content, but the *field* it corrupts depends on the instruction
// at that index (dstval for register writers, nextpc otherwise), so
// ddmin must keep just enough body to preserve the signature — at most
// one line here.
func TestProgramReduction(t *testing.T) {
	prologue := []string{"main:", "\tli $t0, 40", "loop:"}
	epilogue := []string{
		"\taddiu $t0, $t0, -1",
		"\tbgtz $t0, loop",
		"\tli $v0, 10",
		"\tsyscall",
	}
	var body []string
	for i := 0; i < 24; i++ {
		body = append(body, "\taddu $s2, $s2, $t0", "\txor $s3, $s3, $s2")
	}
	render := func(pro, b, epi []string) string {
		return strings.Join(pro, "\n") + "\n" + strings.Join(b, "\n") + "\n" +
			strings.Join(epi, "\n") + "\n"
	}
	newRunner := func() Runner {
		return CheckRunner(core.BitSliced(2), check.Options{
			Injector: inject.New(inject.Options{CorruptOn: true, CorruptAt: 10}),
		}, time.Minute)
	}
	ref := newRunner()(render(prologue, body, epilogue)).Outcome
	if ref.Kind != "divergence" {
		t.Fatalf("reference run classified %+v", ref)
	}
	res := Program(prologue, body, epilogue, ref, render,
		func(s string) RunResult { return newRunner()(s) }, 0)
	if len(res.Body) > 1 {
		t.Fatalf("reduction kept %d body lines, want <=1: %v", len(res.Body), res.Body)
	}
	if !newRunner()(render(prologue, res.Body, epilogue)).Outcome.Matches(ref) {
		t.Fatal("minimized program no longer reproduces")
	}
}
