// Package reduce shrinks a failing generated program to a minimal
// reproducer. It implements the classic ddmin delta-debugging loop
// (Zeller & Hildebrandt) over the program's body lines: candidate
// subsets are re-rendered, re-assembled and re-verified under the
// lockstep oracle, and only candidates that still reproduce the
// original failure signature survive. Candidates that fail to assemble
// (e.g. a removed label still referenced by a kept branch) simply test
// negative — the reducer needs no assembly-aware dependency tracking.
package reduce

import (
	"fmt"
	"runtime/debug"
	"time"

	"pok/internal/asm"
	"pok/internal/check"
	"pok/internal/core"
	"pok/internal/sig"
)

// Outcome classifies one run of a (candidate) program. It is the
// shared failure signature of internal/sig — kind "" means the run was
// clean; otherwise it matches check.Report.FailKind plus the
// soak-level kinds "panic" and "timeout", with Field refining the
// match (the diverging commit field, or the violated invariant rule).
// The alias keeps the reducer's matcher and the soak/fleet dedupe
// literally the same code: Outcome.Matches IS sig.Signature.Matches.
type Outcome = sig.Signature

// RunResult is the full observation of one candidate run.
type RunResult struct {
	Outcome Outcome
	// Report is the check report (nil when the candidate did not
	// assemble, panicked, or timed out).
	Report *check.Report
	// Err carries the assembly/setup error or recovered panic text.
	Err string
}

// Runner executes one candidate program source and classifies it.
type Runner func(src string) RunResult

// Classify maps a check.Report to its failure signature (sig.Classify).
func Classify(rep *check.Report) Outcome { return sig.Classify(rep) }

// CheckRunner builds a Runner that assembles src and executes it under
// check.RunChecked with cfg/opts. A panic anywhere in assembly or
// simulation is recovered into Outcome{Kind: "panic"}; a run exceeding
// watchdog wall-clock is classified Outcome{Kind: "timeout"} (the
// runaway goroutine is abandoned — acceptable for a test harness, and
// the per-run deadlock watchdog inside the core bounds the common
// case). watchdog <= 0 disables the wall-clock bound.
func CheckRunner(cfg core.Config, opts check.Options, watchdog time.Duration) Runner {
	return func(src string) RunResult {
		done := make(chan RunResult, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- RunResult{
						Outcome: Outcome{Kind: "panic"},
						Err:     fmt.Sprintf("panic: %v\n%s", r, debug.Stack()),
					}
				}
			}()
			prog, err := asm.Assemble(src)
			if err != nil {
				done <- RunResult{Outcome: Outcome{Kind: "error"}, Err: err.Error()}
				return
			}
			rep, err := check.RunChecked(prog, cfg, opts)
			if err != nil {
				done <- RunResult{Outcome: Outcome{Kind: "error"}, Err: err.Error()}
				return
			}
			done <- RunResult{Outcome: Classify(rep), Report: rep}
		}()
		if watchdog <= 0 {
			return <-done
		}
		timer := time.NewTimer(watchdog)
		defer timer.Stop()
		select {
		case r := <-done:
			return r
		case <-timer.C:
			return RunResult{
				Outcome: Outcome{Kind: "timeout"},
				Err:     fmt.Sprintf("run exceeded watchdog %v", watchdog),
			}
		}
	}
}

// DDMin returns a 1-minimal subsequence of lines that still satisfies
// test, evaluating at most maxTests candidates (0 = no bound; the
// algorithm terminates regardless). test must hold on the full input;
// DDMin never calls test on the full input itself.
//
// 1-minimality means removing any single remaining line breaks the
// test — the strongest guarantee ddmin gives without trying all 2^n
// subsets.
func DDMin(lines []string, test func([]string) bool) []string {
	return ddmin(lines, test, 0)
}

// DDMinBounded is DDMin with a cap on candidate evaluations.
func DDMinBounded(lines []string, test func([]string) bool, maxTests int) ([]string, int) {
	tests := 0
	bounded := func(cand []string) bool {
		if maxTests > 0 && tests >= maxTests {
			return false
		}
		tests++
		return test(cand)
	}
	out := ddmin(lines, bounded, maxTests)
	return out, tests
}

func ddmin(lines []string, test func([]string) bool, maxTests int) []string {
	cur := lines
	n := 2
	for len(cur) >= 2 {
		chunks := split(cur, n)
		reduced := false

		// Try each chunk alone.
		for _, c := range chunks {
			if len(c) < len(cur) && test(c) {
				cur, n, reduced = c, 2, true
				break
			}
		}
		if reduced {
			continue
		}
		// Try each complement.
		for i := range chunks {
			comp := complement(chunks, i)
			if len(comp) < len(cur) && test(comp) {
				cur = comp
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(cur) {
			break
		}
		n = min(2*n, len(cur))
	}
	// Final polish: drop single lines while any single drop still
	// reproduces (cheap on the now-tiny input, and guarantees
	// 1-minimality even when the chunk boundaries hid a removable
	// line).
	for i := 0; i < len(cur); {
		cand := append(append([]string{}, cur[:i]...), cur[i+1:]...)
		if len(cand) < len(cur) && test(cand) {
			cur = cand
		} else {
			i++
		}
	}
	return cur
}

func split(lines []string, n int) [][]string {
	if n > len(lines) {
		n = len(lines)
	}
	out := make([][]string, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		end := start + (len(lines)-start)/(n-i)
		out = append(out, lines[start:end])
		start = end
	}
	return out
}

func complement(chunks [][]string, drop int) []string {
	var out []string
	for i, c := range chunks {
		if i != drop {
			out = append(out, c...)
		}
	}
	return out
}

// Result is the outcome of a program reduction.
type Result struct {
	// Body is the minimized body (order-preserving subsequence of the
	// original).
	Body []string
	// Tests is how many candidate evaluations were spent.
	Tests int
}

// Program minimizes body with respect to run: a candidate reproduces
// when rendering (prologue, candidate, epilogue) through render yields
// a program whose outcome Matches ref. maxTests bounds the candidate
// evaluations (0 = unbounded).
func Program(prologue, body, epilogue []string, ref Outcome,
	render func(pro, body, epi []string) string, run Runner, maxTests int) Result {
	test := func(cand []string) bool {
		return run(render(prologue, cand, epilogue)).Outcome.Matches(ref)
	}
	minBody, tests := DDMinBounded(body, test, maxTests)
	return Result{Body: minBody, Tests: tests}
}
