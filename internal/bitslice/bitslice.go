// Package bitslice implements the slice-at-a-time datapath arithmetic that
// underlies the bit-sliced microarchitecture (paper §6). A 32-bit operand
// is decomposed into n equal slices (n = 2 → 16-bit slices, n = 4 → 8-bit
// slices). Functional units evaluate one slice per step; carry bits link
// adjacent slices of arithmetic operations, while logic operations have no
// inter-slice communication and may evaluate slices in any order.
//
// The package is the functional ground truth for the timing model: every
// sliced evaluation is property-tested against the corresponding full
// 32-bit operation.
package bitslice

import (
	"fmt"
	"math/bits"
)

// Word is the full datapath width in bits.
const Word = 32

// ValidSliceCounts lists the slice-by-N configurations the paper studies
// (1 = conventional full-width datapath).
var ValidSliceCounts = []int{1, 2, 4}

// ValidateSliceCount reports whether n is a realizable slice count for
// the 32-bit datapath: positive and evenly dividing the word width.
// Callers holding externally-supplied configuration (the simulator's
// Config.Validate, tools parsing flags) should reject bad counts through
// this function; the arithmetic helpers below assume a validated n.
func ValidateSliceCount(n int) error {
	if n <= 0 || Word%n != 0 {
		return fmt.Errorf("bitslice: invalid slice count %d (must divide the %d-bit word)", n, Word)
	}
	return nil
}

// Width returns the width in bits of one slice for an n-slice datapath.
// n must have passed ValidateSliceCount; the panic here marks a
// programming error (an unvalidated count reaching the datapath), not a
// recoverable condition.
func Width(n int) int {
	if err := ValidateSliceCount(n); err != nil {
		panic(err)
	}
	return Word / n
}

// Split decomposes v into n slices, low-order slice first.
func Split(v uint32, n int) []uint32 {
	w := Width(n)
	mask := sliceMask(w)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = v >> (i * w) & mask
	}
	return out
}

// Join reassembles slices (low-order first) into a full word.
func Join(slices []uint32) uint32 {
	w := Width(len(slices))
	var v uint32
	for i, s := range slices {
		v |= s << (i * w)
	}
	return v
}

func sliceMask(w int) uint32 {
	if w >= 32 {
		return ^uint32(0)
	}
	return 1<<w - 1
}

// AddStep evaluates one slice of a carry-chained addition: it adds the
// w-bit slices a and b with carry-in cin and returns the w-bit sum slice
// and the carry out. This is the unit of work one adder stage performs per
// cycle in the sliced pipeline.
func AddStep(a, b uint32, cin uint32, w int) (sum, cout uint32) {
	t := uint64(a) + uint64(b) + uint64(cin)
	return uint32(t) & sliceMask(w), uint32(t >> w & 1)
}

// Add performs a full sliced addition, returning the per-slice results and
// per-slice carry-outs (index i holds the carry out of slice i).
func Add(a, b uint32, n int) (sums, carries []uint32) {
	w := Width(n)
	as, bs := Split(a, n), Split(b, n)
	sums = make([]uint32, n)
	carries = make([]uint32, n)
	var c uint32
	for i := 0; i < n; i++ {
		sums[i], c = AddStep(as[i], bs[i], c, w)
		carries[i] = c
	}
	return sums, carries
}

// Sub performs a sliced subtraction a-b using two's-complement addition
// (invert b, carry-in 1), returning per-slice results and carries.
func Sub(a, b uint32, n int) (diffs, carries []uint32) {
	w := Width(n)
	mask := sliceMask(w)
	as, bs := Split(a, n), Split(b, n)
	diffs = make([]uint32, n)
	carries = make([]uint32, n)
	c := uint32(1)
	for i := 0; i < n; i++ {
		diffs[i], c = AddStep(as[i], bs[i]^mask, c, w)
		carries[i] = c
	}
	return diffs, carries
}

// LogicOp identifies a bitwise operation evaluated independently per slice.
type LogicOp uint8

// Logic operations.
const (
	AND LogicOp = iota
	OR
	XOR
	NOR
)

// Logic evaluates one slice of a bitwise operation. Slices of logic ops
// carry no inter-slice state, so callers may evaluate them in any order.
func Logic(op LogicOp, a, b uint32, w int) uint32 {
	var v uint32
	switch op {
	case AND:
		v = a & b
	case OR:
		v = a | b
	case XOR:
		v = a ^ b
	case NOR:
		v = ^(a | b)
	default:
		panic("bitslice: unknown logic op")
	}
	return v & sliceMask(w)
}

// ShiftLeftSlice computes output slice out of (v << sh) given only the
// input slices 0..out, demonstrating that a left shift needs no
// information from higher input slices.
func ShiftLeftSlice(inSlices []uint32, out, sh, n int) uint32 {
	w := Width(n)
	// Reassemble the low out+1 slices; bits above them cannot influence
	// output slice out for a left shift.
	var low uint64
	for i := 0; i <= out && i < len(inSlices); i++ {
		low |= uint64(inSlices[i]) << (i * w)
	}
	return uint32(low<<uint(sh)>>(out*w)) & sliceMask(w)
}

// ShiftRightSlice computes output slice out of a right shift given only
// the input slices out..n-1. arith selects an arithmetic (sign-extending)
// shift.
func ShiftRightSlice(inSlices []uint32, out, sh, n int, arith bool) uint32 {
	w := Width(n)
	var high uint64
	for i := out; i < n; i++ {
		high |= uint64(inSlices[i]) << (i * w)
	}
	if arith && inSlices[n-1]>>(w-1)&1 == 1 {
		// Sign-extend above bit 31 so the arithmetic shift pulls in ones.
		high |= 0xffff_ffff_0000_0000
	}
	return uint32(high>>uint(sh)>>(out*w)) & sliceMask(w)
}

// FirstDiffSlice returns the index of the lowest slice in which a and b
// differ, or -1 if the values are equal. A conditional beq/bne branch that
// asserted equality is refuted as soon as this slice has been compared
// (paper §5.3).
func FirstDiffSlice(a, b uint32, n int) int {
	if a == b {
		return -1
	}
	w := Width(n)
	return bits.TrailingZeros32(a^b) / w
}

// FirstDiffBit returns the lowest differing bit position between a and b,
// or 32 if they are equal. The Figure 6 characterization counts how many
// low-order bits of the branch operands must be examined to expose a
// misprediction.
func FirstDiffBit(a, b uint32) int {
	return bits.TrailingZeros32(a ^ b)
}

// MatchLow reports whether a and b agree in their low k bits. k=0 always
// matches; k>=32 compares the full words. Early load-store disambiguation
// (paper §5.1) applies this predicate with growing k as address slices
// arrive.
func MatchLow(a, b uint32, k int) bool {
	if k <= 0 {
		return true
	}
	if k >= Word {
		return a == b
	}
	return (a^b)&(1<<k-1) == 0
}

// MatchField reports whether a and b agree on bit positions [lo, lo+k).
// Partial tag matching (paper §5.2) compares the k tag bits above the
// cache index that are already known after the first address slice.
func MatchField(a, b uint32, lo, k int) bool {
	if k <= 0 {
		return true
	}
	if lo+k > Word {
		k = Word - lo
	}
	var mask uint32
	if k >= Word {
		mask = ^uint32(0)
	} else {
		mask = (1<<k - 1) << lo
	}
	return (a^b)&mask == 0
}

// MulLowSlices computes the low n result slices of a*b one slice at a
// time, the way a bit-serial multiplier releases its product low-first.
// Slice i of the product depends only on input slices 0..i.
func MulLowSlices(a, b uint32, n int) []uint32 {
	w := Width(n)
	out := make([]uint32, n)
	full := uint64(a) * uint64(b)
	for i := 0; i < n; i++ {
		out[i] = uint32(full>>(i*w)) & sliceMask(w)
	}
	return out
}

// CompareSigned evaluates a signed a<b comparison from the top slice down,
// returning the result and the number of slices examined before it
// resolved. The top slice always participates (sign bits); ties descend.
func CompareSigned(a, b uint32, n int) (less bool, slicesExamined int) {
	w := Width(n)
	as, bs := Split(a, n), Split(b, n)
	for i := n - 1; i >= 0; i-- {
		av, bv := as[i], bs[i]
		if i == n-1 {
			// Flip the sign bit of the top slice to order signed values.
			flip := uint32(1) << (w - 1)
			av ^= flip
			bv ^= flip
		}
		if av != bv {
			return av < bv, n - i
		}
	}
	return false, n
}
