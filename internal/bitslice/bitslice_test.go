package bitslice

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestWidth(t *testing.T) {
	if Width(1) != 32 || Width(2) != 16 || Width(4) != 8 || Width(8) != 4 {
		t.Fatal("Width wrong")
	}
	for _, bad := range []int{0, -1, 3, 5, 7, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Width(%d) did not panic", bad)
				}
			}()
			Width(bad)
		}()
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		for _, n := range []int{1, 2, 4, 8} {
			if Join(Split(v, n)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitValues(t *testing.T) {
	s := Split(0xdeadbeef, 4)
	want := []uint32{0xef, 0xbe, 0xad, 0xde}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Split(0xdeadbeef,4) = %x", s)
		}
	}
	s2 := Split(0xdeadbeef, 2)
	if s2[0] != 0xbeef || s2[1] != 0xdead {
		t.Fatalf("Split(0xdeadbeef,2) = %x", s2)
	}
}

// Property: sliced addition equals full-width addition for every slicing.
func TestAddMatchesFullWidth(t *testing.T) {
	f := func(a, b uint32) bool {
		for _, n := range []int{1, 2, 4} {
			sums, _ := Add(a, b, n)
			if Join(sums) != a+b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: sliced subtraction equals full-width subtraction.
func TestSubMatchesFullWidth(t *testing.T) {
	f := func(a, b uint32) bool {
		for _, n := range []int{1, 2, 4} {
			diffs, _ := Sub(a, b, n)
			if Join(diffs) != a-b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddCarries(t *testing.T) {
	// 0xffff + 1 carries out of the low 16-bit slice.
	sums, carries := Add(0xffff, 1, 2)
	if sums[0] != 0 || carries[0] != 1 || sums[1] != 1 || carries[1] != 0 {
		t.Fatalf("sums=%x carries=%x", sums, carries)
	}
	// No carry case.
	_, carries = Add(1, 2, 2)
	if carries[0] != 0 {
		t.Fatal("unexpected carry")
	}
	// Carry out of the whole word.
	_, carries = Add(0xffff_ffff, 1, 4)
	if carries[3] != 1 {
		t.Fatal("missing top carry")
	}
}

func TestAddStep(t *testing.T) {
	s, c := AddStep(0xff, 0x01, 0, 8)
	if s != 0 || c != 1 {
		t.Fatalf("AddStep = %x,%x", s, c)
	}
	s, c = AddStep(0x7f, 0x00, 1, 8)
	if s != 0x80 || c != 0 {
		t.Fatalf("AddStep = %x,%x", s, c)
	}
}

// Property: per-slice logic equals full-width logic.
func TestLogicMatchesFullWidth(t *testing.T) {
	ops := map[LogicOp]func(a, b uint32) uint32{
		AND: func(a, b uint32) uint32 { return a & b },
		OR:  func(a, b uint32) uint32 { return a | b },
		XOR: func(a, b uint32) uint32 { return a ^ b },
		NOR: func(a, b uint32) uint32 { return ^(a | b) },
	}
	f := func(a, b uint32) bool {
		for op, ref := range ops {
			for _, n := range []int{2, 4} {
				w := Width(n)
				as, bs := Split(a, n), Split(b, n)
				out := make([]uint32, n)
				// Evaluate slices deliberately out of order.
				for i := n - 1; i >= 0; i-- {
					out[i] = Logic(op, as[i], bs[i], w)
				}
				if Join(out) != ref(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: slice-wise shifts agree with full-width shifts, using only the
// input slices the dependence model says are needed.
func TestShiftSlicesMatchFullWidth(t *testing.T) {
	f := func(v uint32, shRaw uint8) bool {
		sh := int(shRaw % 32)
		for _, n := range []int{2, 4} {
			in := Split(v, n)
			// Left shift.
			out := make([]uint32, n)
			for s := 0; s < n; s++ {
				// Zero out the higher slices to prove they are unused.
				visible := make([]uint32, s+1)
				copy(visible, in[:s+1])
				out[s] = ShiftLeftSlice(visible, s, sh, n)
			}
			if Join(out) != v<<sh {
				return false
			}
			// Logical right shift.
			for s := 0; s < n; s++ {
				visible := make([]uint32, n)
				copy(visible[s:], in[s:])
				out[s] = ShiftRightSlice(visible, s, sh, n, false)
			}
			if Join(out) != v>>sh {
				return false
			}
			// Arithmetic right shift.
			for s := 0; s < n; s++ {
				visible := make([]uint32, n)
				copy(visible[s:], in[s:])
				out[s] = ShiftRightSlice(visible, s, sh, n, true)
			}
			if Join(out) != uint32(int32(v)>>sh) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstDiffSlice(t *testing.T) {
	cases := []struct {
		a, b uint32
		n    int
		want int
	}{
		{5, 5, 4, -1},
		{0x00000001, 0x00000000, 4, 0},
		{0x00000100, 0x00000000, 4, 1},
		{0x00010000, 0x00000000, 4, 2},
		{0x80000000, 0x00000000, 4, 3},
		{0x00010000, 0x00000000, 2, 1},
		{0x0000ffff, 0x0000fffe, 2, 0},
	}
	for _, c := range cases {
		if got := FirstDiffSlice(c.a, c.b, c.n); got != c.want {
			t.Errorf("FirstDiffSlice(%x,%x,%d) = %d, want %d", c.a, c.b, c.n, got, c.want)
		}
	}
}

// Property: FirstDiffBit agrees with trailing-zero count of xor; the
// values match in the low k bits iff k <= FirstDiffBit.
func TestFirstDiffBitAndMatchLow(t *testing.T) {
	f := func(a, b uint32, kRaw uint8) bool {
		d := FirstDiffBit(a, b)
		if d != bits.TrailingZeros32(a^b) {
			return false
		}
		k := int(kRaw % 40)
		return MatchLow(a, b, k) == (k <= d || a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchField(t *testing.T) {
	a := uint32(0b1011_0110)
	b := uint32(0b1001_0110)
	if !MatchField(a, b, 0, 5) { // low 5 bits agree
		t.Fatal("low field should match")
	}
	if MatchField(a, b, 5, 1) { // bit 5 differs
		t.Fatal("bit 5 should differ")
	}
	if !MatchField(a, b, 6, 2) {
		t.Fatal("bits 6..7 agree")
	}
	if !MatchField(a, b, 0, 0) {
		t.Fatal("k=0 must always match")
	}
	// Ranges extending past bit 31 are clamped to the word.
	if MatchField(a, b, 30, 10) != (a>>30 == b>>30) {
		t.Fatal("clamped high field")
	}
	// Full-width check.
	if !MatchField(7, 7, 0, 32) || MatchField(7, 5, 0, 32) {
		t.Fatal("full width")
	}
}

func TestMulLowSlices(t *testing.T) {
	f := func(a, b uint32) bool {
		for _, n := range []int{2, 4} {
			out := MulLowSlices(a, b, n)
			if Join(out) != a*b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSigned(t *testing.T) {
	f := func(a, b uint32) bool {
		for _, n := range []int{1, 2, 4} {
			less, k := CompareSigned(a, b, n)
			if less != (int32(a) < int32(b)) {
				return false
			}
			if k < 1 || k > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Values differing in the top slice resolve after one slice.
	if _, k := CompareSigned(0x8000_0000, 0, 4); k != 1 {
		t.Fatalf("top-slice compare took %d slices", k)
	}
	// Equal values examine every slice.
	if _, k := CompareSigned(42, 42, 4); k != 4 {
		t.Fatalf("equal compare took %d slices", k)
	}
}
