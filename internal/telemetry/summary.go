package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"

	"pok/internal/stats"
)

// Summary is the aggregated, machine-readable view of one run's
// telemetry: per-kind event counts, per-stage occupancy histograms,
// issue-slot utilisation and replay-cause attribution. It is folded
// into core.Result when a Recorder is attached and is what the CI
// smoke job and pok-bench -telemetry serialize.
type Summary struct {
	// CyclesSampled counts the per-cycle snapshots taken (== simulated
	// cycles when a Recorder observes the whole run).
	CyclesSampled uint64 `json:"cycles_sampled"`
	// Events maps event-kind name -> count over the whole run (counted
	// even when the ring has since overwritten the event itself).
	Events map[string]uint64 `json:"events"`
	// EventsDropped is how many events fell off the bounded ring.
	EventsDropped uint64 `json:"events_dropped"`

	// Per-stage occupancy distributions, one sample per cycle.
	WindowOcc *stats.Histogram `json:"window_occupancy"`
	IQOcc     *stats.Histogram `json:"iq_occupancy"`
	LSQOcc    *stats.Histogram `json:"lsq_occupancy"`
	// IssueUse is the distribution of issue slots consumed per cycle
	// (all slice schedulers combined); PortUse the same for D$ ports.
	IssueUse *stats.Histogram `json:"issue_slots_used"`
	PortUse  *stats.Histogram `json:"cache_ports_used"`

	// Replay attribution (EvReplay.Arg2).
	ReplayLoadLatency uint64 `json:"replay_load_latency"`
	ReplayPendingAddr uint64 `json:"replay_pending_addr"`

	// Branch resolution split (EvBranchResolve.Arg2).
	ResolvesEarly uint64 `json:"resolves_early"`
	ResolvesFull  uint64 `json:"resolves_full"`
}

// Merge folds o into s: counters sum, histograms merge bin-by-bin
// (stats.Histogram.Merge). This is the lightweight fold the fleet
// metrics pipeline ships instead of full JSONL event dumps; it is
// associative and commutative so cell snapshots can arrive in any
// order. A nil o is a no-op.
func (s *Summary) Merge(o *Summary) {
	if o == nil {
		return
	}
	s.CyclesSampled += o.CyclesSampled
	if len(o.Events) > 0 && s.Events == nil {
		s.Events = make(map[string]uint64, len(o.Events))
	}
	for k, n := range o.Events {
		s.Events[k] += n
	}
	s.EventsDropped += o.EventsDropped
	mergeHist(&s.WindowOcc, o.WindowOcc)
	mergeHist(&s.IQOcc, o.IQOcc)
	mergeHist(&s.LSQOcc, o.LSQOcc)
	mergeHist(&s.IssueUse, o.IssueUse)
	mergeHist(&s.PortUse, o.PortUse)
	s.ReplayLoadLatency += o.ReplayLoadLatency
	s.ReplayPendingAddr += o.ReplayPendingAddr
	s.ResolvesEarly += o.ResolvesEarly
	s.ResolvesFull += o.ResolvesFull
}

func mergeHist(dst **stats.Histogram, src *stats.Histogram) {
	if src == nil {
		return
	}
	if *dst == nil {
		*dst = src.Clone()
		return
	}
	(*dst).Merge(src)
}

// Clone returns an independent deep copy (nil in, nil out).
func (s *Summary) Clone() *Summary {
	if s == nil {
		return nil
	}
	c := *s
	if s.Events != nil {
		c.Events = make(map[string]uint64, len(s.Events))
		for k, n := range s.Events {
			c.Events[k] = n
		}
	}
	c.WindowOcc = s.WindowOcc.Clone()
	c.IQOcc = s.IQOcc.Clone()
	c.LSQOcc = s.LSQOcc.Clone()
	c.IssueUse = s.IssueUse.Clone()
	c.PortUse = s.PortUse.Clone()
	return &c
}

// MarshalJSON is the plain struct encoding; declared so the summary
// shape is an explicit, stable contract for CI consumers.
func (s *Summary) MarshalJSON() ([]byte, error) {
	type alias Summary // drop methods to avoid recursion
	return json.Marshal((*alias)(s))
}

// Render formats the summary as the human-readable telemetry report
// pok-sim -telemetry prints.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d cycles sampled, %d events",
		s.CyclesSampled, s.totalEvents())
	if s.EventsDropped > 0 {
		fmt.Fprintf(&b, " (%d dropped from ring)", s.EventsDropped)
	}
	b.WriteByte('\n')
	for i := 0; i < numKinds; i++ {
		name := Kind(i).String()
		if n := s.Events[name]; n > 0 {
			fmt.Fprintf(&b, "  %-15s %d\n", name, n)
		}
	}
	if s.ReplayLoadLatency+s.ReplayPendingAddr > 0 {
		fmt.Fprintf(&b, "replay causes     load-latency=%d pending-addr=%d\n",
			s.ReplayLoadLatency, s.ReplayPendingAddr)
	}
	if s.ResolvesEarly+s.ResolvesFull > 0 {
		fmt.Fprintf(&b, "branch resolves   early=%d full=%d\n",
			s.ResolvesEarly, s.ResolvesFull)
	}
	for _, h := range []struct {
		label string
		hist  *stats.Histogram
	}{
		{"window occ", s.WindowOcc},
		{"iq occ", s.IQOcc},
		{"lsq occ", s.LSQOcc},
		{"issue slots", s.IssueUse},
		{"cache ports", s.PortUse},
	} {
		if h.hist != nil && h.hist.Total > 0 {
			b.WriteString(h.hist.Render(h.label))
		}
	}
	return b.String()
}

func (s *Summary) totalEvents() uint64 {
	var n uint64
	for _, c := range s.Events {
		n += c
	}
	return n
}
