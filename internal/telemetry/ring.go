package telemetry

// Ring is a fixed-capacity event ring: one flat []Event allocated up
// front, a write cursor, and a drop counter. Recording is a struct
// copy plus two integer updates — no allocation, no pointer writes —
// so the enabled path stays cheap enough for multi-million-event runs,
// and a bounded ring means an unattended dump cannot eat the heap.
// When the ring wraps, the oldest events are overwritten and Dropped
// reports how many were lost.
type Ring struct {
	buf     []Event
	next    int    // next write index
	n       int    // live events (<= cap)
	dropped uint64 // events overwritten after the ring filled
}

// DefaultRingCap bounds the standard Recorder's event ring: enough for
// every event of a few hundred thousand simulated instructions.
const DefaultRingCap = 1 << 21

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Ring) Record(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
}

// Len returns the number of live events.
func (r *Ring) Len() int { return r.n }

// Dropped returns how many events were overwritten after the ring
// filled.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the live events in recording order. The slice is
// freshly assembled; mutating it does not affect the ring.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.n)
	if r.n == len(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf[:r.next]...)
}
