package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// TimelineOptions bounds the rendered wavefront window.
type TimelineOptions struct {
	// FromSeq/ToSeq select the instruction range (inclusive); ToSeq 0
	// means "through the last instruction in the dump".
	FromSeq, ToSeq uint64
	// FromCycle/ToCycle clip the horizontal axis; ToCycle 0 means
	// auto-fit to the selected instructions.
	FromCycle, ToCycle int64
	// MaxRows bounds the number of instruction rows (0 = 64).
	MaxRows int
	// MaxCols bounds the number of cycle columns (0 = 160); a wider
	// span is truncated with a ">" marker.
	MaxCols int
}

// lane is the per-instruction accumulation of events.
type lane struct {
	seq        uint64
	pc         int64
	wp         bool
	first, end int64
	cells      map[int64]byte
}

// RenderTimeline draws the Figure 1-style per-instruction
// slice-pipeline wavefront from an event dump: one row per dynamic
// instruction, one column per cycle.
//
//	F fetch        D dispatch    0-7 slice issue   e full-width issue
//	* >1 slice     r replay      m   memory issue  b/B resolve (B=early)
//	C commit       S squash      .   in flight
func RenderTimeline(events []Event, opt TimelineOptions) string {
	if opt.MaxRows == 0 {
		opt.MaxRows = 64
	}
	if opt.MaxCols == 0 {
		opt.MaxCols = 160
	}

	lanes := map[uint64]*lane{}
	order := []uint64{}
	get := func(seq uint64) *lane {
		l := lanes[seq]
		if l == nil {
			l = &lane{seq: seq, pc: -1, first: -1, end: -1, cells: map[int64]byte{}}
			lanes[seq] = l
			order = append(order, seq)
		}
		return l
	}
	// set writes c at cycle unless a higher-priority mark is present.
	prio := func(c byte) int {
		switch {
		case c == 'C' || c == 'S':
			return 5
		case c >= '0' && c <= '9', c == 'e', c == '*':
			return 4
		case c == 'm', c == 'b', c == 'B':
			return 3
		case c == 'r':
			return 2
		case c == 'D', c == 'F':
			return 1
		}
		return 0
	}
	for _, ev := range events {
		if ev.Seq < opt.FromSeq || (opt.ToSeq > 0 && ev.Seq > opt.ToSeq) {
			continue
		}
		l := get(ev.Seq)
		if l.first < 0 || ev.Cycle < l.first {
			l.first = ev.Cycle
		}
		if ev.Cycle > l.end {
			l.end = ev.Cycle
		}
		var c byte
		switch ev.Kind {
		case EvFetch:
			c, l.pc, l.wp = 'F', ev.Arg, ev.Arg2 != 0
		case EvDispatch:
			c = 'D'
		case EvSliceIssue:
			c = byte('0' + ev.Slice)
			if ev.Arg2 != 0 {
				c = 'e' // full-width op
			}
			if old, ok := l.cells[ev.Cycle]; ok && (old >= '0' && old <= '9') && old != c {
				c = '*' // several slices issued this cycle
			}
		case EvSliceComplete:
			continue // completion is implied one lane cell later
		case EvReplay:
			c = 'r'
		case EvMemIssue:
			c = 'm'
		case EvBranchResolve:
			c = 'b'
			if ev.Arg2&ResolveEarly != 0 {
				c = 'B'
			}
		case EvCommit:
			c = 'C'
		case EvSquash:
			c = 'S'
		default:
			continue
		}
		if old, ok := l.cells[ev.Cycle]; !ok || prio(c) >= prio(old) {
			if !(ok && old == '*' && c >= '0' && c <= '9') {
				l.cells[ev.Cycle] = c
			}
		}
	}
	if len(order) == 0 {
		return "timeline: no events in range\n"
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	if len(order) > opt.MaxRows {
		order = order[:opt.MaxRows]
	}

	lo, hi := opt.FromCycle, opt.ToCycle
	if hi == 0 {
		lo, hi = int64(1)<<62, int64(-1)
		for _, seq := range order {
			l := lanes[seq]
			if l.first >= 0 && l.first < lo {
				lo = l.first
			}
			if l.end > hi {
				hi = l.end
			}
		}
		if opt.FromCycle > lo {
			lo = opt.FromCycle
		}
	}
	truncated := false
	if hi-lo+1 > int64(opt.MaxCols) {
		hi = lo + int64(opt.MaxCols) - 1
		truncated = true
	}

	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d  (F fetch, D dispatch, 0-7 slice issue, e full op, r replay,\n", lo, hi)
	b.WriteString("                m mem issue, b/B resolve (B=early), C commit, S squash)\n")
	// Cycle ruler, one tick per 10 columns.
	ruler := make([]byte, hi-lo+1)
	for i := range ruler {
		ruler[i] = ' '
	}
	for c := lo; c <= hi; c++ {
		if c%10 == 0 {
			tick := fmt.Sprintf("%d", c)
			for k := 0; k < len(tick) && int(c-lo)+k < len(ruler); k++ {
				ruler[int(c-lo)+k] = tick[k]
			}
		}
	}
	fmt.Fprintf(&b, "%26s %s\n", "", string(ruler))
	for _, seq := range order {
		l := lanes[seq]
		row := make([]byte, hi-lo+1)
		for i := range row {
			row[i] = ' '
		}
		end := l.end
		for c := l.first; c <= end; c++ {
			if c < lo || c > hi {
				continue
			}
			row[c-lo] = '.'
		}
		for c, ch := range l.cells {
			if c >= lo && c <= hi {
				row[c-lo] = ch
			}
		}
		mark := ' '
		if l.wp {
			mark = 'w' // wrong-path instruction
		}
		pc := "?"
		if l.pc >= 0 {
			pc = fmt.Sprintf("0x%x", uint32(l.pc))
		}
		fmt.Fprintf(&b, "#%-12d %c %-9s %s", l.seq, mark, pc, string(row))
		if truncated && l.end > hi {
			b.WriteByte('>')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
