package telemetry

import "pok/internal/stats"

// Recorder is the standard Collector: a bounded event ring plus
// per-cycle occupancy histograms and event-kind counters, all
// preallocated so the steady-state Record path never allocates.
type Recorder struct {
	ring   *Ring
	counts [numKinds]uint64

	cycles    uint64
	windowOcc *stats.Histogram
	iqOcc     *stats.Histogram
	lsqOcc    *stats.Histogram
	issueUse  *stats.Histogram
	portUse   *stats.Histogram

	replayLoadLat  uint64
	replayPendAddr uint64
	resolvesEarly  uint64
	resolvesFull   uint64
}

// RecorderConfig sizes a Recorder for one machine configuration.
type RecorderConfig struct {
	// RingCap bounds the event ring (DefaultRingCap when 0).
	RingCap int
	// WindowSize / LSQSize / IssueSlots size the occupancy histograms;
	// small defaults are substituted when 0.
	WindowSize int
	LSQSize    int
	IssueSlots int
	CachePorts int
}

// NewRecorder builds a Recorder with the given sizing.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.RingCap == 0 {
		cfg.RingCap = DefaultRingCap
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 64
	}
	if cfg.LSQSize == 0 {
		cfg.LSQSize = 32
	}
	if cfg.IssueSlots == 0 {
		cfg.IssueSlots = 16
	}
	if cfg.CachePorts == 0 {
		cfg.CachePorts = 2
	}
	return &Recorder{
		ring:      NewRing(cfg.RingCap),
		windowOcc: stats.NewHistogram(cfg.WindowSize + 1),
		iqOcc:     stats.NewHistogram(cfg.WindowSize + 1),
		lsqOcc:    stats.NewHistogram(cfg.LSQSize + 1),
		issueUse:  stats.NewHistogram(cfg.IssueSlots + 1),
		portUse:   stats.NewHistogram(cfg.CachePorts + 1),
	}
}

// Event implements Collector.
func (r *Recorder) Event(ev Event) {
	r.counts[ev.Kind]++
	switch ev.Kind {
	case EvReplay:
		if ev.Arg2 == ReplayPendingAddr {
			r.replayPendAddr++
		} else {
			r.replayLoadLat++
		}
	case EvBranchResolve:
		if ev.Arg2&ResolveEarly != 0 {
			r.resolvesEarly++
		} else {
			r.resolvesFull++
		}
	}
	r.ring.Record(ev)
}

// CycleSample implements Collector.
func (r *Recorder) CycleSample(cs CycleSample) {
	r.cycles++
	r.windowOcc.Add(cs.Window)
	r.iqOcc.Add(cs.IQ)
	r.lsqOcc.Add(cs.LSQ)
	r.issueUse.Add(cs.Issued)
	r.portUse.Add(cs.Ports)
}

// Events returns the live (non-overwritten) event stream in emission
// order.
func (r *Recorder) Events() []Event { return r.ring.Events() }

// Dropped reports how many events fell off the bounded ring. A dump
// written from a Recorder with Dropped() > 0 is lossy: counts in
// Summary are still exact, but event-stream consumers that need every
// edge (the critical-path extractor) must refuse it.
func (r *Recorder) Dropped() uint64 { return r.ring.Dropped() }

// Summary implements Collector, aggregating everything recorded so far.
func (r *Recorder) Summary() *Summary {
	ev := make(map[string]uint64, numKinds)
	for i, c := range r.counts {
		if c > 0 {
			ev[Kind(i).String()] = c
		}
	}
	return &Summary{
		CyclesSampled:     r.cycles,
		Events:            ev,
		EventsDropped:     r.ring.Dropped(),
		WindowOcc:         r.windowOcc,
		IQOcc:             r.iqOcc,
		LSQOcc:            r.lsqOcc,
		IssueUse:          r.issueUse,
		PortUse:           r.portUse,
		ReplayLoadLatency: r.replayLoadLat,
		ReplayPendingAddr: r.replayPendAddr,
		ResolvesEarly:     r.resolvesEarly,
		ResolvesFull:      r.resolvesFull,
	}
}
