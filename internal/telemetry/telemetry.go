// Package telemetry is the timing model's structured observability
// layer: a zero-allocation, ring-buffered event stream plus per-cycle
// occupancy and stall-cause histograms.
//
// The timing core (internal/core) emits one fixed-size Event per
// pipeline occurrence — fetch, dispatch, slice-issue, slice-complete,
// replay, partial-match verify, branch resolution, memory issue,
// commit, squash — through the Collector interface. With a nil
// Collector the instrumentation reduces to one predictable branch per
// site, so the disabled path stays off the scheduler's hot path; with
// the standard Recorder attached, events land in a preallocated ring
// and per-cycle samples fold into fixed-size histograms, so steady
// state allocates nothing.
//
// The package also provides the offline halves of the pipeline:
// JSONL export/import of event dumps (jsonl.go), an aggregated
// machine-readable Summary (summary.go), and the per-instruction
// slice-pipeline timeline renderer behind cmd/pok-trace
// (timeline.go).
package telemetry

// Kind enumerates the structured pipeline event taxonomy.
type Kind uint8

const (
	// EvFetch: an instruction entered the fetch buffer.
	// Arg = PC, Arg2 = 1 when fetched on the wrong path.
	EvFetch Kind = iota
	// EvDispatch: the instruction was renamed into the window.
	EvDispatch
	// EvSliceIssue: slice Slice won an issue slot and began execution.
	// Arg2 = 1 when the op is full-width (Slice is then always 0).
	EvSliceIssue
	// EvSliceComplete: slice Slice's result becomes bypassable.
	// Arg = the cycle the result is available.
	EvSliceComplete
	// EvReplay: a slice-op issued speculatively and must replay.
	// Arg = earliest retry cycle (0 = retry when a slot frees),
	// Arg2 = replay cause (ReplayLoadLatency / ReplayPendingAddr).
	EvReplay
	// EvMemIssue: a load was sent to the memory system.
	// Arg = established completion cycle (or a large sentinel while
	// deferred), Arg2 = 1 when satisfied by store forwarding.
	EvMemIssue
	// EvPartialVerify: a partial-tag access classified its match.
	// Arg = the cache's partial-match class, Arg2 = 1 on way mispredict.
	EvPartialVerify
	// EvBranchResolve: a control instruction resolved.
	// Arg = resolution cycle, Arg2 = resolution flags
	// (ResolveEarly|ResolveMispredict).
	EvBranchResolve
	// EvCommit: the instruction retired architecturally.
	EvCommit
	// EvSquash: a wrong-path instruction was removed from the machine.
	EvSquash

	numKinds = int(EvSquash) + 1
)

// Replay causes (EvReplay.Arg2).
const (
	// ReplayLoadLatency: a producer load announced a hit but missed (or
	// was slower than the speculative wakeup assumed).
	ReplayLoadLatency = int64(iota)
	// ReplayPendingAddr: the producer is a partial-tag load whose
	// completion time is still unknown pending its full address.
	ReplayPendingAddr
	// ReplayInjected: the slice result was declared corrupt by a fault
	// injector (internal/check/inject); the verify stage caught it and
	// the slice-op replays, exactly like a hardware soft-error recovery.
	ReplayInjected
)

// Branch resolution flags (EvBranchResolve.Arg2).
const (
	// ResolveMispredict marks the resolved branch as mispredicted.
	ResolveMispredict = int64(1) << iota
	// ResolveEarly marks a mispredict exposed by a partial comparison
	// before the full-width compare finished (paper §5).
	ResolveEarly
)

var kindNames = [numKinds]string{
	EvFetch:         "fetch",
	EvDispatch:      "dispatch",
	EvSliceIssue:    "slice-issue",
	EvSliceComplete: "slice-complete",
	EvReplay:        "replay",
	EvMemIssue:      "mem-issue",
	EvPartialVerify: "partial-verify",
	EvBranchResolve: "branch-resolve",
	EvCommit:        "commit",
	EvSquash:        "squash",
}

// String returns the stable wire name of the kind (used by the JSONL
// dump and the golden event-stream tests).
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok reports whether name is a known
// event kind.
func KindFromString(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one fixed-size structured pipeline event. It carries no
// pointers and no strings so a ring of them is a single flat
// allocation and recording one is a copy.
type Event struct {
	Cycle int64  // cycle the event was emitted
	Seq   uint64 // dynamic instruction sequence number
	Arg   int64  // kind-specific payload (see Kind docs)
	Arg2  int64  // kind-specific payload (see Kind docs)
	Kind  Kind
	Slice int8 // slice index, -1 when not slice-scoped
}

// CycleSample is the per-cycle occupancy snapshot the core publishes
// once per simulated clock.
type CycleSample struct {
	Cycle  int64
	Window int // RUU entries in flight
	IQ     int // window entries still holding an issue-queue slot
	LSQ    int // load/store queue occupancy
	Issued int // issue slots consumed this cycle (all slices)
	Ports  int // D$ ports consumed this cycle
}

// Collector receives the structured event stream and the per-cycle
// samples. Implementations must not retain pointers into the core;
// both payload types are plain values.
//
// The core guards every emission with a cached boolean, so a nil
// Collector costs one branch per site and nothing else.
type Collector interface {
	// Event records one pipeline event.
	Event(ev Event)
	// CycleSample records the end-of-cycle occupancy snapshot.
	CycleSample(cs CycleSample)
	// Summary renders whatever the collector aggregated; collectors
	// that only forward events may return nil.
	Summary() *Summary
}
