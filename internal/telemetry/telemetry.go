// Package telemetry is the timing model's structured observability
// layer: a zero-allocation, ring-buffered event stream plus per-cycle
// occupancy and stall-cause histograms.
//
// The timing core (internal/core) emits one fixed-size Event per
// pipeline occurrence — fetch, dispatch, slice-issue, slice-complete,
// replay, partial-match verify, branch resolution, memory issue,
// commit, squash — through the Collector interface. With a nil
// Collector the instrumentation reduces to one predictable branch per
// site, so the disabled path stays off the scheduler's hot path; with
// the standard Recorder attached, events land in a preallocated ring
// and per-cycle samples fold into fixed-size histograms, so steady
// state allocates nothing.
//
// The package also provides the offline halves of the pipeline:
// JSONL export/import of event dumps (jsonl.go), an aggregated
// machine-readable Summary (summary.go), and the per-instruction
// slice-pipeline timeline renderer behind cmd/pok-trace
// (timeline.go).
package telemetry

// Kind enumerates the structured pipeline event taxonomy.
type Kind uint8

const (
	// EvFetch: an instruction entered the fetch buffer.
	// Arg = PC, Arg2 = 1 when fetched on the wrong path.
	EvFetch Kind = iota
	// EvDispatch: the instruction was renamed into the window.
	EvDispatch
	// EvSliceIssue: slice Slice won an issue slot and began execution.
	// Arg = the critical producer of the slice-op: seq+1 of the
	// latest-arriving register producer, -1 when the entry's own previous
	// slice (carry chain / in-order slice issue) gated it, 0 when every
	// operand was ready at dispatch. The offline critical-path extractor
	// (internal/profile) rebuilds the per-slice dependence DAG from this.
	// Arg2 = 1 when the op is full-width (Slice is then always 0).
	EvSliceIssue
	// EvSliceComplete: slice Slice's result becomes bypassable.
	// Arg = the cycle the result is available.
	EvSliceComplete
	// EvReplay: a slice-op issued speculatively and must replay.
	// Arg = earliest retry cycle (0 = retry when a slot frees),
	// Arg2 = replay cause (ReplayLoadLatency / ReplayPendingAddr).
	EvReplay
	// EvMemIssue: a load was sent to the memory system.
	// Arg = established completion cycle (or a large sentinel while
	// deferred), Arg2 = 1 when satisfied by store forwarding.
	EvMemIssue
	// EvPartialVerify: a partial-tag access classified its match.
	// Arg = the cache's partial-match class, Arg2 = 1 on way mispredict.
	EvPartialVerify
	// EvBranchResolve: a control instruction resolved.
	// Arg = resolution cycle, Arg2 = resolution flags
	// (ResolveEarly|ResolveMispredict).
	EvBranchResolve
	// EvCommit: the instruction retired architecturally.
	// Arg = the cycle the instruction's last pipeline obligation
	// completed (it was commit-ready from Arg onward and retired when it
	// reached the window head under the commit width), Arg2 = the
	// CommitDep* classification of that oldest-unresolved obligation.
	// The CPI-stack builder (internal/profile) attributes zero-commit
	// gap cycles to the component named by the next commit's Arg2.
	EvCommit
	// EvSquash: a wrong-path instruction was removed from the machine.
	EvSquash

	numKinds = int(EvSquash) + 1
)

// Replay causes (EvReplay.Arg2).
const (
	// ReplayLoadLatency: a producer load announced a hit but missed (or
	// was slower than the speculative wakeup assumed).
	ReplayLoadLatency = int64(iota)
	// ReplayPendingAddr: the producer is a partial-tag load whose
	// completion time is still unknown pending its full address.
	ReplayPendingAddr
	// ReplayInjected: the slice result was declared corrupt by a fault
	// injector (internal/check/inject); the verify stage caught it and
	// the slice-op replays, exactly like a hardware soft-error recovery.
	ReplayInjected
)

// Commit dependence classes (EvCommit.Arg2): which pipeline obligation
// of the committing instruction finished last. Computed by the core at
// commit from shared producer state so both schedulers classify
// identically; consumed by the CPI-stack builder to attribute
// zero-commit gap cycles.
const (
	// CommitDepNone: every obligation was satisfied as soon as the
	// instruction dispatched (single-cycle op, operands ready).
	CommitDepNone = int64(iota)
	// CommitDepSlice: the last obligation was slice execution — the op
	// waited on slice-dependence edges (operands, carry chain, in-order
	// slice issue) or on issue bandwidth.
	CommitDepSlice
	// CommitDepReplay: as CommitDepSlice, but at least one of the
	// entry's own slice-ops replayed, so replay recovery is the binding
	// cost.
	CommitDepReplay
	// CommitDepLSQ: a load whose completion was gated by load/store
	// queue disambiguation (held back, or satisfied by store forwarding).
	CommitDepLSQ
	// CommitDepDCache: a load that hit the D-cache; its completion time
	// is the cache access itself.
	CommitDepDCache
	// CommitDepWayMispredict: a load whose partial-tag way prediction
	// was wrong; completion waited for the full-address verification
	// replay (§5.2).
	CommitDepWayMispredict
	// CommitDepDRAM: a load that missed the L1 D-cache; completion
	// waited on the lower memory hierarchy.
	CommitDepDRAM
	// CommitDepBranch: a control instruction whose resolution was the
	// last obligation (§5 early branch resolution shrinks this).
	CommitDepBranch

	numCommitDeps = int(CommitDepBranch) + 1
)

// CommitDepName returns a stable short label for a CommitDep* class
// (used by CPI-stack rendering and the JSONL-facing tools).
func CommitDepName(dep int64) string {
	names := [numCommitDeps]string{
		"none", "slice", "replay", "lsq", "dcache", "way-mispredict",
		"dram", "branch",
	}
	if dep >= 0 && dep < int64(numCommitDeps) {
		return names[dep]
	}
	return "unknown"
}

// Branch resolution flags (EvBranchResolve.Arg2).
const (
	// ResolveMispredict marks the resolved branch as mispredicted.
	ResolveMispredict = int64(1) << iota
	// ResolveEarly marks a mispredict exposed by a partial comparison
	// before the full-width compare finished (paper §5).
	ResolveEarly
)

var kindNames = [numKinds]string{
	EvFetch:         "fetch",
	EvDispatch:      "dispatch",
	EvSliceIssue:    "slice-issue",
	EvSliceComplete: "slice-complete",
	EvReplay:        "replay",
	EvMemIssue:      "mem-issue",
	EvPartialVerify: "partial-verify",
	EvBranchResolve: "branch-resolve",
	EvCommit:        "commit",
	EvSquash:        "squash",
}

// String returns the stable wire name of the kind (used by the JSONL
// dump and the golden event-stream tests).
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok reports whether name is a known
// event kind.
func KindFromString(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one fixed-size structured pipeline event. It carries no
// pointers and no strings so a ring of them is a single flat
// allocation and recording one is a copy.
type Event struct {
	Cycle int64  // cycle the event was emitted
	Seq   uint64 // dynamic instruction sequence number
	Arg   int64  // kind-specific payload (see Kind docs)
	Arg2  int64  // kind-specific payload (see Kind docs)
	Kind  Kind
	Slice int8 // slice index, -1 when not slice-scoped
}

// CycleSample is the per-cycle occupancy snapshot the core publishes
// once per simulated clock.
type CycleSample struct {
	Cycle  int64
	Window int // RUU entries in flight
	IQ     int // window entries still holding an issue-queue slot
	LSQ    int // load/store queue occupancy
	Issued int // issue slots consumed this cycle (all slices)
	Ports  int // D$ ports consumed this cycle
}

// Collector receives the structured event stream and the per-cycle
// samples. Implementations must not retain pointers into the core;
// both payload types are plain values.
//
// The core guards every emission with a cached boolean, so a nil
// Collector costs one branch per site and nothing else.
type Collector interface {
	// Event records one pipeline event.
	Event(ev Event)
	// CycleSample records the end-of-cycle occupancy snapshot.
	CycleSample(cs CycleSample)
	// Summary renders whatever the collector aggregated; collectors
	// that only forward events may return nil.
	Summary() *Summary
}
