package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := 0; k < numKinds; k++ {
		name := Kind(k).String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no wire name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != Kind(k) {
			t.Fatalf("kind %d (%s) does not round trip: got %d ok=%v", k, name, back, ok)
		}
	}
	if _, ok := KindFromString("no-such-kind"); ok {
		t.Fatal("unknown kind name accepted")
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Cycle: int64(i), Seq: uint64(i), Slice: -1})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	ev := r.Events()
	for i, e := range ev {
		if want := int64(6 + i); e.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest must be dropped first)", i, e.Cycle, want)
		}
	}
}

func TestRecorderAggregation(t *testing.T) {
	rec := NewRecorder(RecorderConfig{RingCap: 16})
	rec.Event(Event{Kind: EvReplay, Slice: 0, Arg2: ReplayPendingAddr})
	rec.Event(Event{Kind: EvReplay, Slice: 1, Arg2: ReplayLoadLatency})
	rec.Event(Event{Kind: EvBranchResolve, Slice: -1, Arg2: ResolveMispredict | ResolveEarly})
	rec.Event(Event{Kind: EvBranchResolve, Slice: -1})
	rec.CycleSample(CycleSample{Cycle: 0, Window: 3, IQ: 2, LSQ: 1, Issued: 4})
	rec.CycleSample(CycleSample{Cycle: 1, Window: 5, IQ: 1, LSQ: 0, Issued: 0})

	s := rec.Summary()
	if s.CyclesSampled != 2 {
		t.Fatalf("CyclesSampled = %d", s.CyclesSampled)
	}
	if s.ReplayPendingAddr != 1 || s.ReplayLoadLatency != 1 {
		t.Fatalf("replay causes = %d/%d", s.ReplayLoadLatency, s.ReplayPendingAddr)
	}
	if s.ResolvesEarly != 1 || s.ResolvesFull != 1 {
		t.Fatalf("resolves = %d/%d", s.ResolvesEarly, s.ResolvesFull)
	}
	if got := s.Events[EvReplay.String()]; got != 2 {
		t.Fatalf("replay count = %d", got)
	}
	if s.WindowOcc.Mean() != 4 {
		t.Fatalf("window mean = %v, want 4", s.WindowOcc.Mean())
	}
	if !strings.Contains(s.Render(), "replay causes") {
		t.Fatalf("Render missing replay causes:\n%s", s.Render())
	}
}

func TestJSONLOmitsEmptyFields(t *testing.T) {
	var b bytes.Buffer
	err := WriteJSONL(&b, []Event{
		{Cycle: 7, Seq: 3, Kind: EvCommit, Slice: -1},
		{Cycle: 9, Seq: 4, Kind: EvSliceIssue, Slice: 2, Arg2: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"cycle":7,"seq":3,"kind":"commit"}
{"cycle":9,"seq":4,"kind":"slice-issue","slice":2,"arg2":1}
`
	if b.String() != want {
		t.Fatalf("wire form:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRenderTimeline(t *testing.T) {
	events := []Event{
		{Cycle: 0, Seq: 1, Kind: EvFetch, Slice: -1, Arg: 0x400010},
		{Cycle: 3, Seq: 1, Kind: EvDispatch, Slice: -1},
		{Cycle: 6, Seq: 1, Kind: EvSliceIssue, Slice: 0},
		{Cycle: 7, Seq: 1, Kind: EvSliceIssue, Slice: 1},
		{Cycle: 9, Seq: 1, Kind: EvCommit, Slice: -1},
		{Cycle: 1, Seq: 2, Kind: EvFetch, Slice: -1, Arg: 0x400014, Arg2: 1},
		{Cycle: 5, Seq: 2, Kind: EvSquash, Slice: -1},
	}
	out := RenderTimeline(events, TimelineOptions{})
	for _, want := range []string{"#1", "#2", "0x400010", "F", "D", "C", "S"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Row for seq 1: F at col 0, D at 3, slices at 6/7, C at 9.
	var row1 string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#1") {
			row1 = line
		}
	}
	if row1 == "" {
		t.Fatalf("no row for seq 1:\n%s", out)
	}
	cells := row1[len(row1)-10:]
	if cells != "F..D..01.C" {
		t.Fatalf("seq 1 lane = %q, want F..D..01.C\n%s", cells, out)
	}

	if got := RenderTimeline(nil, TimelineOptions{}); !strings.Contains(got, "no events") {
		t.Fatalf("empty dump render = %q", got)
	}
}

func TestTimelineSeqAndCycleClipping(t *testing.T) {
	events := []Event{
		{Cycle: 0, Seq: 1, Kind: EvFetch, Slice: -1},
		{Cycle: 1, Seq: 2, Kind: EvFetch, Slice: -1},
		{Cycle: 2, Seq: 3, Kind: EvFetch, Slice: -1},
	}
	out := RenderTimeline(events, TimelineOptions{FromSeq: 2, ToSeq: 2})
	if strings.Contains(out, "#1") || strings.Contains(out, "#3") {
		t.Fatalf("seq clipping leaked rows:\n%s", out)
	}
	if !strings.Contains(out, "#2") {
		t.Fatalf("seq clipping lost the selected row:\n%s", out)
	}
}
