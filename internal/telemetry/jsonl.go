package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonlEvent is the wire form of one event: one JSON object per line,
// kinds by stable name, slice omitted when not slice-scoped. The field
// order of the writer is fixed so golden tests can compare dumps
// byte-for-byte.
type jsonlEvent struct {
	Cycle int64  `json:"cycle"`
	Seq   uint64 `json:"seq"`
	Kind  string `json:"kind"`
	Slice *int8  `json:"slice,omitempty"`
	Arg   int64  `json:"arg,omitempty"`
	Arg2  int64  `json:"arg2,omitempty"`
}

// WriteJSONL streams events to w as JSON Lines. The encoder is
// hand-rolled (fixed field order, no reflection) so multi-million-event
// dumps stay cheap and byte-stable.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	for i := range events {
		buf = appendJSONL(buf[:0], &events[i])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendJSONL renders one event in the fixed wire order.
func appendJSONL(b []byte, ev *Event) []byte {
	b = append(b, `{"cycle":`...)
	b = strconv.AppendInt(b, ev.Cycle, 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Slice >= 0 {
		b = append(b, `,"slice":`...)
		b = strconv.AppendInt(b, int64(ev.Slice), 10)
	}
	if ev.Arg != 0 {
		b = append(b, `,"arg":`...)
		b = strconv.AppendInt(b, ev.Arg, 10)
	}
	if ev.Arg2 != 0 {
		b = append(b, `,"arg2":`...)
		b = strconv.AppendInt(b, ev.Arg2, 10)
	}
	b = append(b, '}', '\n')
	return b
}

// DumpMeta is the optional self-describing first line of a JSONL event
// dump: `{"meta":"pok-events",...}`. It carries what an offline
// consumer cannot reconstruct from the events alone — whether the
// bounded ring dropped events (the stream is lossy) and the run's total
// cycle count (events only bound the last *observed* cycle).
type DumpMeta struct {
	Meta      string `json:"meta"` // always "pok-events"
	Benchmark string `json:"benchmark,omitempty"`
	Config    string `json:"config,omitempty"`
	Insts     uint64 `json:"insts,omitempty"`
	Cycles    int64  `json:"cycles,omitempty"`
	Dropped   uint64 `json:"dropped,omitempty"`
}

// dumpMetaTag is the sentinel value of DumpMeta.Meta on the wire.
const dumpMetaTag = "pok-events"

// WriteJSONLDump writes a self-describing dump: the meta header line
// followed by the event stream. Pass a nil meta to write a bare stream
// (the WriteJSONL wire format, unchanged for golden-test stability).
func WriteJSONLDump(w io.Writer, meta *DumpMeta, events []Event) error {
	if meta != nil {
		m := *meta
		m.Meta = dumpMetaTag
		hdr, err := json.Marshal(&m)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(hdr, '\n')); err != nil {
			return err
		}
	}
	return WriteJSONL(w, events)
}

// ReadJSONL parses a JSONL event dump produced by WriteJSONL or
// WriteJSONLDump (a meta header is skipped, blank lines are skipped,
// unknown kinds rejected).
func ReadJSONL(r io.Reader) ([]Event, error) {
	_, evs, err := ReadJSONLDump(r)
	return evs, err
}

// ReadJSONLDump parses a JSONL event dump, returning the meta header
// when present (nil for bare WriteJSONL streams, which predate it).
func ReadJSONLDump(r io.Reader) (*DumpMeta, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var meta *DumpMeta
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if line == 1 && bytes.Contains(raw, []byte(`"meta"`)) {
			var m DumpMeta
			if err := json.Unmarshal(raw, &m); err == nil && m.Meta == dumpMetaTag {
				meta = &m
				continue
			}
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		k, ok := KindFromString(je.Kind)
		if !ok {
			return nil, nil, fmt.Errorf("telemetry: line %d: unknown kind %q", line, je.Kind)
		}
		ev := Event{Cycle: je.Cycle, Seq: je.Seq, Kind: k,
			Slice: -1, Arg: je.Arg, Arg2: je.Arg2}
		if je.Slice != nil {
			ev.Slice = *je.Slice
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return meta, out, nil
}
