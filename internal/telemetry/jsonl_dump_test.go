package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONLDumpMetaRoundTrip: a dump written with a meta header parses
// back into the identical header plus the identical events, and the
// event lines after the header are byte-identical to the bare
// WriteJSONL wire form (the header is purely additive).
func TestJSONLDumpMetaRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 0, Seq: 1, Kind: EvFetch, Slice: -1, Arg: 0x400000},
		{Cycle: 2, Seq: 1, Kind: EvSliceIssue, Slice: 0, Arg: -1},
		{Cycle: 5, Seq: 1, Kind: EvCommit, Slice: -1, Arg: 4, Arg2: CommitDepDRAM},
	}
	meta := &DumpMeta{Benchmark: "gzip", Config: "slice4",
		Insts: 20000, Cycles: 21611, Dropped: 7}

	var dump bytes.Buffer
	if err := WriteJSONLDump(&dump, meta, events); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotEvents, err := ReadJSONLDump(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta == nil {
		t.Fatal("meta header lost in round trip")
	}
	want := *meta
	want.Meta = dumpMetaTag
	if *gotMeta != want {
		t.Fatalf("meta = %+v, want %+v", *gotMeta, want)
	}
	if len(gotEvents) != len(events) {
		t.Fatalf("%d events, want %d", len(gotEvents), len(events))
	}
	for i := range events {
		if gotEvents[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, gotEvents[i], events[i])
		}
	}

	// Header is additive: stripping line 1 yields the bare wire form.
	var bare bytes.Buffer
	if err := WriteJSONL(&bare, events); err != nil {
		t.Fatal(err)
	}
	_, rest, ok := strings.Cut(dump.String(), "\n")
	if !ok || rest != bare.String() {
		t.Fatalf("dump body diverged from bare WriteJSONL:\n%q\nvs\n%q", rest, bare.String())
	}
}

// TestJSONLDumpNilMetaAndLegacyStreams: nil meta writes a bare stream,
// and bare streams read back with a nil header — old dumps keep
// working.
func TestJSONLDumpNilMetaAndLegacyStreams(t *testing.T) {
	events := []Event{{Cycle: 3, Seq: 9, Kind: EvDispatch, Slice: -1}}
	var a, b bytes.Buffer
	if err := WriteJSONLDump(&a, nil, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("nil-meta dump %q differs from bare stream %q", a.String(), b.String())
	}
	meta, evs, err := ReadJSONLDump(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Fatalf("bare stream produced a meta header: %+v", meta)
	}
	if len(evs) != 1 || evs[0] != events[0] {
		t.Fatalf("events = %+v, want %+v", evs, events)
	}
}

// TestJSONLDumpFirstEventNotMistakenForMeta: an event line mentioning
// "meta" in a string field must not be swallowed as a header.
func TestJSONLDumpFirstEventNotMistakenForMeta(t *testing.T) {
	in := `{"meta":"not-pok-events","benchmark":"x"}` + "\n"
	if _, _, err := ReadJSONLDump(strings.NewReader(in)); err == nil {
		t.Fatal("bogus meta line should fail event parsing, not vanish")
	}
}
