package telemetry

import (
	"strings"
	"testing"
)

// The timeline goldens pin RenderTimeline's exact byte-for-byte output
// for the tricky renderer paths: the empty-dump message, wrong-path
// squash marking, a replay chain re-issue, and the MaxRows/MaxCols
// window clamping with its ">" truncation marker. pok-trace's output
// is a debugging surface people diff across runs, so accidental
// formatting drift is a regression.

func timelineGolden(t *testing.T, got string, want []string) {
	t.Helper()
	w := strings.Join(want, "\n") + "\n"
	if got != w {
		t.Fatalf("timeline drifted:\ngot:\n%q\nwant:\n%q", got, w)
	}
}

func TestTimelineGoldenEmptyDump(t *testing.T) {
	if got := RenderTimeline(nil, TimelineOptions{}); got != "timeline: no events in range\n" {
		t.Fatalf("empty dump = %q", got)
	}
	// A non-empty stream clipped to a seq range with no members is the
	// same "no events" case, not a zero-width panic.
	events := []Event{{Cycle: 0, Seq: 1, Kind: EvFetch, Slice: -1}}
	got := RenderTimeline(events, TimelineOptions{FromSeq: 7, ToSeq: 9})
	if got != "timeline: no events in range\n" {
		t.Fatalf("clipped-to-empty dump = %q", got)
	}
}

func TestTimelineGoldenSquashedInstruction(t *testing.T) {
	events := []Event{
		{Cycle: 0, Seq: 1, Kind: EvFetch, Slice: -1, Arg: 0x400000},
		{Cycle: 2, Seq: 1, Kind: EvDispatch, Slice: -1},
		{Cycle: 4, Seq: 1, Kind: EvSliceIssue, Slice: 0},
		{Cycle: 6, Seq: 1, Kind: EvBranchResolve, Slice: -1, Arg: 6, Arg2: ResolveMispredict},
		{Cycle: 7, Seq: 1, Kind: EvCommit, Slice: -1},
		// Wrong-path fetch (Arg2=1) squashed when the branch resolves.
		{Cycle: 1, Seq: 2, Kind: EvFetch, Slice: -1, Arg: 0x400abc, Arg2: 1},
		{Cycle: 3, Seq: 2, Kind: EvDispatch, Slice: -1},
		{Cycle: 6, Seq: 2, Kind: EvSquash, Slice: -1},
	}
	got := RenderTimeline(events, TimelineOptions{})
	timelineGolden(t, got, []string{
		"cycles 0..7  (F fetch, D dispatch, 0-7 slice issue, e full op, r replay,",
		"                m mem issue, b/B resolve (B=early), C commit, S squash)",
		"                           0       ",
		"#1              0x400000  F.D.0.bC",
		"#2            w 0x400abc   F.D..S ",
	})
}

func TestTimelineGoldenReplayChain(t *testing.T) {
	events := []Event{
		{Cycle: 0, Seq: 1, Kind: EvFetch, Slice: -1, Arg: 0x400010},
		{Cycle: 2, Seq: 1, Kind: EvDispatch, Slice: -1},
		{Cycle: 4, Seq: 1, Kind: EvSliceIssue, Slice: 0},
		{Cycle: 4, Seq: 1, Kind: EvMemIssue, Slice: -1, Arg: 7},
		{Cycle: 5, Seq: 1, Kind: EvCommit, Slice: -1},
		// Consumer issues speculatively at 5, replays (producer load was
		// slower than the wakeup assumed), re-issues at 8.
		{Cycle: 1, Seq: 2, Kind: EvFetch, Slice: -1, Arg: 0x400014},
		{Cycle: 3, Seq: 2, Kind: EvDispatch, Slice: -1},
		{Cycle: 5, Seq: 2, Kind: EvSliceIssue, Slice: 0},
		{Cycle: 6, Seq: 2, Kind: EvReplay, Slice: 0, Arg: 8, Arg2: ReplayLoadLatency},
		{Cycle: 8, Seq: 2, Kind: EvSliceIssue, Slice: 0},
		{Cycle: 9, Seq: 2, Kind: EvSliceComplete, Slice: 0, Arg: 10},
		{Cycle: 10, Seq: 2, Kind: EvCommit, Slice: -1},
	}
	got := RenderTimeline(events, TimelineOptions{})
	timelineGolden(t, got, []string{
		"cycles 0..10  (F fetch, D dispatch, 0-7 slice issue, e full op, r replay,",
		"                m mem issue, b/B resolve (B=early), C commit, S squash)",
		"                           0         1",
		"#1              0x400010  F.D.0C     ",
		"#2              0x400014   F.D.0r.0.C",
	})
}

func TestTimelineGoldenWindowClamping(t *testing.T) {
	events := []Event{
		{Cycle: 0, Seq: 1, Kind: EvFetch, Slice: -1, Arg: 0x400020},
		{Cycle: 12, Seq: 1, Kind: EvCommit, Slice: -1},
		{Cycle: 1, Seq: 2, Kind: EvFetch, Slice: -1, Arg: 0x400024},
		{Cycle: 5, Seq: 2, Kind: EvCommit, Slice: -1},
		{Cycle: 2, Seq: 3, Kind: EvFetch, Slice: -1, Arg: 0x400028},
		{Cycle: 6, Seq: 3, Kind: EvCommit, Slice: -1},
	}
	// MaxRows 2 drops seq 3; MaxCols 8 clips the axis to cycles 0..7,
	// and seq 1 (which runs to cycle 12) gets the ">" truncation mark.
	got := RenderTimeline(events, TimelineOptions{MaxRows: 2, MaxCols: 8})
	timelineGolden(t, got, []string{
		"cycles 0..7  (F fetch, D dispatch, 0-7 slice issue, e full op, r replay,",
		"                m mem issue, b/B resolve (B=early), C commit, S squash)",
		"                           0       ",
		"#1              0x400020  F.......>",
		"#2              0x400024   F...C  ",
	})
}
