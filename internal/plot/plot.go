// Package plot renders small ASCII charts for terminal output: the
// experiment harnesses use it to sketch the paper's figures (cumulative
// detection curves, IPC stacks) next to the numeric tables.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// HBar renders a horizontal bar chart. Values must be non-negative; bars
// are scaled to width columns against the maximum value.
func HBar(title string, labels []string, values []float64, width int) string {
	if width < 1 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if i < len(labels) && len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %0.3g\n", maxL, label, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Curve renders a y-vs-index line chart using a height-row character
// grid. Values are auto-scaled between their min and max.
func Curve(title string, ys []float64, height int) string {
	if len(ys) == 0 {
		return title + "\n(no data)\n"
	}
	if height < 2 {
		height = 8
	}
	minY, maxY := ys[0], ys[0]
	for _, y := range ys {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	span := maxY - minY
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(ys)))
	}
	for x, y := range ys {
		r := int(math.Round((maxY - y) / span * float64(height-1)))
		grid[r][x] = '*'
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for r, row := range grid {
		yVal := maxY - float64(r)/float64(height-1)*span
		fmt.Fprintf(&b, "%8.3f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", len(ys)))
	return b.String()
}

// Stack renders grouped stacked bars: for each group (e.g. benchmark) a
// bar built of per-segment contributions, each segment drawn with its own
// rune. Used for Figure 12-style breakdowns.
func Stack(title string, groups []string, segments []string, values [][]float64,
	width int) string {
	if width < 1 {
		width = 50
	}
	runes := []byte{'#', '=', '+', 'o', '.', '~', '%', '@'}
	maxTotal := 0.0
	maxL := 0
	for i, g := range groups {
		total := 0.0
		for _, v := range values[i] {
			if v > 0 {
				total += v
			}
		}
		if total > maxTotal {
			maxTotal = total
		}
		if len(g) > maxL {
			maxL = len(g)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, g := range groups {
		fmt.Fprintf(&b, "%-*s |", maxL, g)
		total := 0.0
		for s, v := range values[i] {
			if v <= 0 || maxTotal == 0 {
				continue
			}
			n := int(math.Round(v / maxTotal * float64(width)))
			b.Write(bytesRepeat(runes[s%len(runes)], n))
			total += v
		}
		fmt.Fprintf(&b, " %0.3g\n", total)
	}
	b.WriteString("legend:")
	for s, name := range segments {
		fmt.Fprintf(&b, " %c=%s", runes[s%len(runes)], name)
	}
	b.WriteByte('\n')
	return b.String()
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}
