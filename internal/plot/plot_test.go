package plot

import (
	"strings"
	"testing"
)

func TestHBar(t *testing.T) {
	out := HBar("ipc", []string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "ipc" {
		t.Fatalf("got:\n%s", out)
	}
	// The larger value fills the full width.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[2])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
	// Zero width defaults.
	if HBar("", nil, []float64{1}, 0) == "" {
		t.Fatal("empty output")
	}
	// All-zero values render without panicking.
	if !strings.Contains(HBar("", []string{"x"}, []float64{0}, 10), "| 0") {
		t.Fatal("zero bar")
	}
}

func TestCurve(t *testing.T) {
	ys := []float64{0, 0.25, 0.5, 0.75, 1}
	out := Curve("cum", ys, 5)
	if !strings.HasPrefix(out, "cum\n") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // title + 5 rows + axis
		t.Fatalf("rows = %d:\n%s", len(lines), out)
	}
	// Monotone data: one star per column, descending row as x grows.
	stars := 0
	for _, l := range lines {
		stars += strings.Count(l, "*")
	}
	if stars != len(ys) {
		t.Fatalf("stars = %d", stars)
	}
	// Flat data and empty data are handled.
	if !strings.Contains(Curve("", []float64{2, 2}, 4), "*") {
		t.Fatal("flat curve")
	}
	if !strings.Contains(Curve("x", nil, 4), "no data") {
		t.Fatal("empty curve")
	}
}

func TestStack(t *testing.T) {
	out := Stack("fig12", []string{"gcc", "li"}, []string{"bypass", "ptag"},
		[][]float64{{0.1, 0.05}, {0.02, 0.08}}, 20)
	if !strings.Contains(out, "legend: #=bypass ==ptag") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "gcc") || !strings.Contains(out, "li") {
		t.Fatal("groups missing")
	}
	// Negative contributions are skipped, not drawn (the legend still
	// mentions the segment rune, so inspect the bar line only).
	out = Stack("", []string{"x"}, []string{"a"}, [][]float64{{-1}}, 10)
	barLine := strings.Split(out, "\n")[0]
	if strings.Contains(barLine, "#") {
		t.Fatalf("negative segment drawn: %q", barLine)
	}
}
