package workload

import "fmt"

// ---------------------------------------------------------------------------
// twolf — simulated-annealing placement: swap two cells, recompute the
// wirelength, and accept or roll back on a data-dependent branch.
// ---------------------------------------------------------------------------

func twolfSource(scale int) string {
	return fmt.Sprintf(`
.data
xs: .space 64
ys: .space 64
.text
main:
	li $s7, 2718
	li $s6, 0
	la $s1, xs
	la $s2, ys
	li $t1, 0
	li $t4, 64
tfill:
%s	srl $t2, $s7, 16
	andi $t2, $t2, 0xff
	addu $t3, $s1, $t1
	sb $t2, 0($t3)
%s	srl $t2, $s7, 16
	andi $t2, $t2, 0xff
	addu $t3, $s2, $t1
	sb $t2, 0($t3)
	addiu $t1, $t1, 1
	bne $t1, $t4, tfill
	jal wirelen
	move $s3, $v0        # prevW
	li $s5, %d           # passes remaining
pass:
%s	srl $t0, $s7, 16
	andi $s0, $t0, 63    # i
%s	srl $t0, $s7, 16
	andi $s4, $t0, 63    # j
	jal swapcells
	jal wirelen
	blt $v0, $s3, accept
	andi $t0, $s7, 7     # occasional uphill accept
	beqz $t0, accept
	jal swapcells        # reject: swap back
	b pnext
accept:
	move $s3, $v0
	addiu $s6, $s6, 1    # checksum += accepted
pnext:
	addiu $s5, $s5, -1
	bgtz $s5, pass
	addu $s6, $s6, $s3   # checksum += final wirelength
%s
# wirelen: $v0 = sum |x[i]-x[i+1]| + |y[i]-y[i+1]|
wirelen:
	li $v0, 0
	li $t0, 0
wl:
	addu $t1, $s1, $t0
	lbu $t2, 0($t1)
	lbu $t3, 1($t1)
	subu $t4, $t2, $t3
	bgez $t4, wx
	subu $t4, $zero, $t4
wx:
	addu $v0, $v0, $t4
	addu $t1, $s2, $t0
	lbu $t2, 0($t1)
	lbu $t3, 1($t1)
	subu $t4, $t2, $t3
	bgez $t4, wy
	subu $t4, $zero, $t4
wy:
	addu $v0, $v0, $t4
	addiu $t0, $t0, 1
	li $t5, 63
	bne $t0, $t5, wl
	jr $ra
# swapcells: exchange cells $s0 and $s4 in both coordinate arrays
swapcells:
	addu $t0, $s1, $s0
	addu $t1, $s1, $s4
	lbu $t2, 0($t0)
	lbu $t3, 0($t1)
	sb $t3, 0($t0)
	sb $t2, 0($t1)
	addu $t0, $s2, $s0
	addu $t1, $s2, $s4
	lbu $t2, 0($t0)
	lbu $t3, 0($t1)
	sb $t3, 0($t0)
	sb $t2, 0($t1)
	jr $ra
`, lcgAsm, lcgAsm, scale, lcgAsm, lcgAsm, epilogue)
}

func twolfReference(scale int) string {
	var xs, ys [64]byte
	x := uint32(2718)
	for i := 0; i < 64; i++ {
		x = lcgNext(x)
		xs[i] = byte(x >> 16)
		x = lcgNext(x)
		ys[i] = byte(x >> 16)
	}
	abs := func(a, b byte) uint32 {
		d := int32(a) - int32(b)
		if d < 0 {
			d = -d
		}
		return uint32(d)
	}
	wirelen := func() uint32 {
		var w uint32
		for i := 0; i < 63; i++ {
			w += abs(xs[i], xs[i+1]) + abs(ys[i], ys[i+1])
		}
		return w
	}
	prevW := wirelen()
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		x = lcgNext(x)
		i := x >> 16 & 63
		x = lcgNext(x)
		j := x >> 16 & 63
		xs[i], xs[j] = xs[j], xs[i]
		ys[i], ys[j] = ys[j], ys[i]
		w := wirelen()
		if w < prevW || x&7 == 0 {
			prevW = w
			sum++
		} else {
			xs[i], xs[j] = xs[j], xs[i]
			ys[i], ys[j] = ys[j], ys[i]
		}
	}
	sum += prevW
	return fmt.Sprintf("%d", int32(sum))
}

// ---------------------------------------------------------------------------
// vortex — object-store lookup: hashed open-addressing probe followed by a
// whole-record field copy (the paper's Figure 9 lui/sll/addu/lw pattern).
// ---------------------------------------------------------------------------

func vortexSource(scale int) string {
	return fmt.Sprintf(`
.data
recs: .space 2048        # 128 records x 16 bytes {key, a, b, c}
htab: .space 512         # 128 words: record index+1, 0 = empty
out:  .space 16
.text
main:
	li $s7, 1618
	li $s6, 0
	la $s1, recs
	la $s2, htab
	la $s3, out
	li $t0, 0            # build records and hash table
vbuild:
	li $t2, 31
	mult $t0, $t2
	mflo $t3
	addiu $t3, $t3, 7    # key = i*31 + 7
	sll $t1, $t0, 4
	addu $t1, $s1, $t1
	sw $t3, 0($t1)       # key
	xori $t4, $t3, 0x5a5a
	sw $t4, 4($t1)       # a
	sll $t4, $t3, 1
	addu $t4, $t4, $t3
	sw $t4, 8($t1)       # b = key*3
	sw $t0, 12($t1)      # c = i
	li $t5, 67           # h = key %% 67, linear probe
	remu $t6, $t3, $t5
vprobe0:
	sll $t7, $t6, 2
	addu $t7, $s2, $t7
	lw $t8, 0($t7)
	beqz $t8, vslot
	addiu $t6, $t6, 1
	andi $t6, $t6, 127
	b vprobe0
vslot:
	addiu $t8, $t0, 1
	sw $t8, 0($t7)
	addiu $t0, $t0, 1
	li $t4, 128
	bne $t0, $t4, vbuild
	li $s5, %d           # passes remaining
pass:
%s	srl $t0, $s7, 16
	andi $t0, $t0, 127   # pick a record number
	li $t2, 31
	mult $t0, $t2
	mflo $s0
	addiu $s0, $s0, 7    # key
	li $t5, 67
	remu $t6, $s0, $t5   # h
vprobe:
	sll $t7, $t6, 2
	addu $t7, $s2, $t7
	lw $t8, 0($t7)
	beqz $t8, vmiss      # cannot happen: all keys present
	addiu $t9, $t8, -1   # rec = entry-1
	sll $t9, $t9, 4      # the Figure 9 address pattern
	addu $t9, $s1, $t9
	lw $t1, 0($t9)
	beq $t1, $s0, vfound
	addiu $t6, $t6, 1
	andi $t6, $t6, 127
	b vprobe
vfound:
	lw $t1, 0($t9)       # copy the record out, field by field
	sw $t1, 0($s3)
	addu $s6, $s6, $t1
	lw $t1, 4($t9)
	sw $t1, 4($s3)
	addu $s6, $s6, $t1
	lw $t1, 8($t9)
	sw $t1, 8($s3)
	addu $s6, $s6, $t1
	lw $t1, 12($t9)
	sw $t1, 12($s3)
	addu $s6, $s6, $t1
	b vnext
vmiss:
	addiu $s6, $s6, 1
vnext:
	addiu $s5, $s5, -1
	bgtz $s5, pass
%s`, scale, lcgAsm, epilogue)
}

func vortexReference(scale int) string {
	type rec struct{ key, a, b, c uint32 }
	var recs [128]rec
	var htab [128]uint32
	for i := uint32(0); i < 128; i++ {
		key := i*31 + 7
		recs[i] = rec{key, key ^ 0x5a5a, key * 3, i}
		h := key % 67
		for htab[h] != 0 {
			h = (h + 1) & 127
		}
		htab[h] = i + 1
	}
	x := uint32(1618)
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		x = lcgNext(x)
		key := (x>>16&127)*31 + 7
		h := key % 67
		for {
			e := htab[h]
			if e == 0 {
				sum++
				break
			}
			r := recs[e-1]
			if r.key == key {
				sum += r.key + r.a + r.b + r.c
				break
			}
			h = (h + 1) & 127
		}
	}
	return fmt.Sprintf("%d", int32(sum))
}

// ---------------------------------------------------------------------------
// vpr — maze-routing breadth-first search over a 16x16 grid with
// obstacles: queue pushes/pops, bound checks and visited-bitmap tests.
// ---------------------------------------------------------------------------

func vprSource(scale int) string {
	return fmt.Sprintf(`
.data
grid:    .space 256
visited: .space 256
queue:   .space 1024     # 256 words
.text
main:
	li $s7, 161803
	li $s6, 0
	la $s1, grid
	la $s2, visited
	la $s3, queue
	li $t1, 0
	li $t4, 256
gfill:
%s	srl $t2, $s7, 16
	andi $t2, $t2, 7     # 1-in-8 obstacle density
	sltiu $t2, $t2, 1
	addu $t3, $s1, $t1
	sb $t2, 0($t3)
	addiu $t1, $t1, 1
	bne $t1, $t4, gfill
	sb $zero, 0($s1)     # keep source and sink open
	sb $zero, 255($s1)
	li $s5, 0            # pass
pass:
	li $t0, 0            # clear visited
vclr:
	addu $t1, $s2, $t0
	sb $zero, 0($t1)
	addiu $t0, $t0, 1
	li $t4, 256
	bne $t0, $t4, vclr
	sw $zero, 0($s3)     # queue[0] = 0
	li $t0, 1
	sb $t0, 0($s2)       # visited[0] = 1
	li $s0, 0            # head
	li $s4, 1            # tail
	li $t9, 0            # count
bfs:
	bge $s0, $s4, done   # queue empty
	sll $t0, $s0, 2
	addu $t0, $s3, $t0
	lw $t1, 0($t0)       # cur
	addiu $s0, $s0, 1
	addiu $t9, $t9, 1
	li $t2, 255
	beq $t1, $t2, found
	srl $t3, $t1, 4      # r
	andi $t4, $t1, 15    # c
	# north: r > 0
	blez $t3, bsouth
	addiu $t5, $t1, -16
	jal tryPush
bsouth:
	li $t6, 15
	bge $t3, $t6, bwest
	addiu $t5, $t1, 16
	jal tryPush
bwest:
	blez $t4, beast
	addiu $t5, $t1, -1
	jal tryPush
beast:
	li $t6, 15
	bge $t4, $t6, bfs
	addiu $t5, $t1, 1
	jal tryPush
	b bfs
found:
	addiu $t9, $t9, 1000
done:
	addu $s6, $s6, $t9   # checksum += count (+1000 if reached)
	li $t0, 11           # grid[(pass*11) %% 254 + 1] ^= 1
	mult $s5, $t0
	mflo $t1
	li $t2, 254
	remu $t1, $t1, $t2
	addiu $t1, $t1, 1
	addu $t2, $s1, $t1
	lbu $t3, 0($t2)
	xori $t3, $t3, 1
	sb $t3, 0($t2)
	addiu $s5, $s5, 1
	li $t2, %d
	bne $s5, $t2, pass
%s
# tryPush($t5 = cell): enqueue if unvisited and open.
# Clobbers $t7, $t8. Preserves $t1-$t4, $t6, $t9.
tryPush:
	addu $t7, $s2, $t5
	lbu $t8, 0($t7)
	bnez $t8, tpout      # visited
	addu $t8, $s1, $t5
	lbu $t8, 0($t8)
	bnez $t8, tpout      # obstacle
	li $t8, 1
	sb $t8, 0($t7)
	sll $t7, $s4, 2
	addu $t7, $s3, $t7
	sw $t5, 0($t7)
	addiu $s4, $s4, 1
tpout:
	jr $ra
`, lcgAsm, scale, epilogue)
}

func vprReference(scale int) string {
	var grid [256]byte
	x := uint32(161803)
	for i := range grid {
		x = lcgNext(x)
		if x>>16&7 == 0 {
			grid[i] = 1
		}
	}
	grid[0], grid[255] = 0, 0
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		var visited [256]byte
		queue := make([]uint32, 0, 256)
		queue = append(queue, 0)
		visited[0] = 1
		count := uint32(0)
		tryPush := func(cell uint32) {
			if visited[cell] == 0 && grid[cell] == 0 {
				visited[cell] = 1
				queue = append(queue, cell)
			}
		}
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			count++
			if cur == 255 {
				count += 1000
				break
			}
			r, c := cur>>4, cur&15
			if r > 0 {
				tryPush(cur - 16)
			}
			if r < 15 {
				tryPush(cur + 16)
			}
			if c > 0 {
				tryPush(cur - 1)
			}
			if c < 15 {
				tryPush(cur + 1)
			}
		}
		sum += count
		k := uint32(pass)*11%254 + 1
		grid[k] ^= 1
	}
	return fmt.Sprintf("%d", int32(sum))
}

func init() {
	register(&Workload{
		Name: "twolf", Paper: "300.twolf (SPECint2000)",
		Description:  "annealing cell swaps with accept/reject wirelength test",
		DefaultScale: 1 << 22,
		source:       twolfSource, reference: twolfReference,
	})
	register(&Workload{
		Name: "vortex", Paper: "255.vortex (SPECint2000)",
		Description:  "hashed object-store lookup with whole-record copies",
		DefaultScale: 1 << 22,
		source:       vortexSource, reference: vortexReference,
	})
	register(&Workload{
		Name: "vpr", Paper: "175.vpr (SPECint2000)",
		Description:  "BFS maze routing over a 16x16 obstacle grid",
		DefaultScale: 1 << 22,
		source:       vprSource, reference: vprReference,
	})
}
