package workload

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestGetUnknownIsErrorsIsable: lookups of unknown names must wrap
// ErrUnknownWorkload (so callers can errors.Is) and the message must
// list every available benchmark (so a typo is diagnosable from the
// error alone).
func TestGetUnknownIsErrorsIsable(t *testing.T) {
	_, err := Get("no-such-bench")
	if !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("Get error %v does not wrap ErrUnknownWorkload", err)
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list workload %q", err, name)
		}
	}
	if _, err := GetCompiled("no-such-bench"); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("GetCompiled error does not wrap ErrUnknownWorkload")
	}
}

// TestMustGetPanicListsNames: the MustGet panic message must carry the
// available names.
func TestMustGetPanicListsNames(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustGet(unknown) did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "gzip") || !strings.Contains(msg, "vortex") {
			t.Fatalf("panic message %q does not list available names", r)
		}
	}()
	MustGet("no-such-bench")
}

// TestAdHocRegistration: generated programs register as first-class
// workloads, show up in Names, and compute an emulator reference. The
// registry entry is removed afterwards so the paper-table tests stay
// order-independent.
func TestAdHocRegistration(t *testing.T) {
	const name = "adhoc-test-prog"
	src := "main:\n\tli $v0, 1\n\tli $a0, 42\n\tsyscall\n\tli $v0, 10\n\tsyscall\n"
	w := NewAdHoc(name, "test program", src)
	if err := RegisterAdHoc(w); err != nil {
		t.Fatal(err)
	}
	defer delete(registry, name)

	if err := RegisterAdHoc(w); err == nil {
		t.Fatal("duplicate ad-hoc registration accepted")
	}
	got, err := Get(name)
	if err != nil || got != w {
		t.Fatalf("Get(%s) = %v, %v", name, got, err)
	}
	found := false
	for _, n := range Names() {
		found = found || n == name
	}
	if !found {
		t.Fatalf("Names() does not list %s: %v", name, Names())
	}
	if ref := w.Reference(1); !strings.Contains(ref, "42") {
		t.Fatalf("ad-hoc reference = %q, want it to contain 42", ref)
	}
	if RegisterAdHoc(nil) == nil || RegisterAdHoc(&Workload{}) == nil {
		t.Fatal("nil/unnamed ad-hoc registration accepted")
	}
}
