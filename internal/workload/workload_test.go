package workload

import (
	"strings"
	"testing"

	"pok/internal/emu"
)

// TestAllKernelsMatchReference is the package's central correctness check:
// every assembled benchmark, run to completion on the emulator, must print
// exactly what its Go reference model computes. This exercises the ISA,
// encoder/decoder, assembler and emulator end to end.
func TestAllKernelsMatchReference(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := MustGet(name)
			for _, scale := range []int{1, 2, 5} {
				prog, err := w.Program(scale)
				if err != nil {
					t.Fatalf("scale %d: %v", scale, err)
				}
				e := emu.New(prog)
				if _, err := e.Run(300_000_000, nil); err != nil {
					t.Fatalf("scale %d: %v", scale, err)
				}
				if !e.Halted() {
					t.Fatalf("scale %d: did not halt", scale)
				}
				want := w.Reference(scale)
				if got := e.Output(); got != want {
					t.Fatalf("scale %d: output %q, reference %q", scale, got, want)
				}
			}
		})
	}
}

func TestNamesMatchPaperTable1(t *testing.T) {
	want := []string{"bzip", "gcc", "go", "gzip", "ijpeg", "li",
		"mcf", "parser", "twolf", "vortex", "vpr"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("have %d workloads, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestGetAndMustGet(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet(nope) did not panic")
		}
	}()
	MustGet("nope")
}

func TestScaleClamping(t *testing.T) {
	w := MustGet("li")
	if w.Source(0) != w.Source(1) || w.Reference(-3) != w.Reference(1) {
		t.Fatal("non-positive scales must clamp to 1")
	}
}

func TestWorkGrowsWithScale(t *testing.T) {
	w := MustGet("ijpeg")
	counts := make([]uint64, 2)
	for i, scale := range []int{1, 4} {
		prog, err := w.Program(scale)
		if err != nil {
			t.Fatal(err)
		}
		e := emu.New(prog)
		n, err := e.Run(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = n
	}
	if counts[1] < counts[0]*3 {
		t.Fatalf("scale 4 ran %d insts vs %d at scale 1", counts[1], counts[0])
	}
}

func TestMetadataComplete(t *testing.T) {
	for _, name := range Names() {
		w := MustGet(name)
		if w.Paper == "" || w.Description == "" || w.DefaultScale < 1000 {
			t.Errorf("%s: incomplete metadata %+v", name, w)
		}
		if !strings.Contains(w.Paper, "SPEC") {
			t.Errorf("%s: Paper field should cite the SPEC program", name)
		}
	}
}

// TestInstructionMix sanity-checks that the suite spans the behaviours the
// paper's techniques target: loads, stores, equality branches and
// sign-test branches must all appear in every kernel's dynamic stream.
func TestInstructionMix(t *testing.T) {
	for _, name := range Names() {
		w := MustGet(name)
		prog, err := w.Program(3)
		if err != nil {
			t.Fatal(err)
		}
		e := emu.New(prog)
		var loads, stores, eqBranches uint64
		_, err = e.Run(0, func(d *emu.DynInst) {
			op := d.Inst.Op
			if op.IsLoad() {
				loads++
			}
			if op.IsStore() {
				stores++
			}
			if op.EqualityBranch() {
				eqBranches++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if loads == 0 || stores == 0 || eqBranches == 0 {
			t.Errorf("%s: degenerate mix loads=%d stores=%d eqBranches=%d",
				name, loads, stores, eqBranches)
		}
	}
}
