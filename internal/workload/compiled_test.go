package workload

import (
	"testing"

	"pok/internal/emu"
)

// TestCompiledKernelsMatchReference verifies the whole toolchain: MiniC
// source -> compiler -> assembler -> emulator must print exactly what the
// Go reference computes, at several scales.
func TestCompiledKernelsMatchReference(t *testing.T) {
	for _, name := range CompiledNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := GetCompiled(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, scale := range []int{1, 3} {
				prog, err := w.Program(scale)
				if err != nil {
					t.Fatal(err)
				}
				e := emu.New(prog)
				if _, err := e.Run(200_000_000, nil); err != nil {
					t.Fatal(err)
				}
				if !e.Halted() {
					t.Fatal("did not halt")
				}
				if got, want := e.Output(), w.Reference(scale); got != want {
					t.Fatalf("scale %d: output %q, reference %q", scale, got, want)
				}
			}
		})
	}
}

func TestCompiledRegistry(t *testing.T) {
	if len(CompiledNames()) != 5 {
		t.Fatalf("compiled suite size %d", len(CompiledNames()))
	}
	if _, err := GetCompiled("nope"); err == nil {
		t.Fatal("unknown compiled workload accepted")
	}
	w, _ := GetCompiled("cc-hanoi")
	if w.Source(0) != w.Source(1) || w.Reference(-1) != w.Reference(1) {
		t.Fatal("scale clamping")
	}
	if w.Description == "" || w.DefaultScale < 1000 {
		t.Fatal("metadata incomplete")
	}
}
