// Package workload provides the benchmark suite used throughout the
// reproduction. The paper evaluates 11 programs from SPECint95/2000
// (Table 1); SPEC sources and reference inputs are not redistributable, so
// each benchmark is replaced by a synthetic kernel, written in the
// simulator's own assembly language, that mimics the dominant behaviour of
// its namesake: bzip's move-to-front coding, gzip's LZ77 match search,
// li's tag-bit pointer traversal (the paper's Figure 5 example), mcf's
// pointer chasing, and so on.
//
// Every kernel is paired with a pure-Go reference model; tests assert that
// the assembled program and the reference produce identical output, so the
// workloads double as end-to-end tests of the ISA, assembler and emulator.
package workload

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pok/internal/asm"
	"pok/internal/emu"
)

// ErrUnknownWorkload identifies a lookup of a benchmark name that is
// not registered (in either the assembly or the compiled suite); test
// for it with errors.Is.
var ErrUnknownWorkload = errors.New("unknown workload")

// Workload is one benchmark program generator.
type Workload struct {
	// Name matches the paper's Table 1 benchmark name.
	Name string
	// Paper identifies the SPEC program this kernel stands in for.
	Paper string
	// Description summarizes the kernel's behaviour.
	Description string
	// DefaultScale is the outer-iteration count used by the experiment
	// harnesses (large enough to exceed any instruction budget they use).
	DefaultScale int
	// FastForward is the number of instructions the experiment harnesses
	// functionally execute before measurement begins, skipping
	// initialization phases (the paper fast-forwards 1B instructions).
	FastForward uint64

	source    func(scale int) string
	reference func(scale int) string
}

var (
	registry = map[string]*Workload{}

	// regErr accumulates registration mistakes (duplicate names) instead
	// of panicking inside package init, where a crash would predate main
	// and produce an unactionable stack. Get surfaces it on first use.
	regErr error
)

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		regErr = errors.Join(regErr, fmt.Errorf("workload: duplicate %s", w.Name))
		return
	}
	registry[w.Name] = w
}

// RegistrationError reports any benchmark-table registration mistakes
// (duplicate names in either the assembly or compiled suite) accumulated
// during package init; nil means the tables are coherent.
func RegistrationError() error {
	return errors.Join(regErr, compiledRegErr)
}

// Names returns all benchmark names in the paper's Table 1 order.
func Names() []string {
	order := []string{"bzip", "gcc", "go", "gzip", "ijpeg", "li",
		"mcf", "parser", "twolf", "vortex", "vpr"}
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	// Any extras (future workloads) follow alphabetically.
	var extra []string
	for n := range registry {
		found := false
		for _, o := range order {
			if n == o {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Get returns the named workload. A registration error (duplicate names
// at init) is surfaced here, on first use, rather than crashing init.
// An unknown name returns a wrapped ErrUnknownWorkload whose message
// lists every available benchmark.
func Get(name string) (*Workload, error) {
	if regErr != nil {
		return nil, regErr
	}
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: %w %q (available: %s)",
			ErrUnknownWorkload, name, strings.Join(Names(), ", "))
	}
	return w, nil
}

// MustGet returns the named workload or panics (for static tables). The
// panic message lists the available workload names, so a typo in a
// static table is diagnosable from the crash alone.
func MustGet(name string) *Workload {
	w, err := Get(name)
	if err != nil {
		panic(err)
	}
	return w
}

// NewAdHoc wraps a fixed assembly source as a Workload — the shape the
// soak harness uses to treat generated programs as first-class
// benchmarks. The reference output is computed by the functional
// emulator (bounded at adHocRefBudget instructions), so Source/
// Reference keep the same contract as the hand-written kernels.
func NewAdHoc(name, description, source string) *Workload {
	return &Workload{
		Name:         name,
		Paper:        "generated",
		Description:  description,
		DefaultScale: 1,
		source:       func(int) string { return source },
		reference: func(int) string {
			prog, err := asm.Assemble(source)
			if err != nil {
				return ""
			}
			e := emu.New(prog)
			_, _ = e.Run(adHocRefBudget, nil)
			return e.Output()
		},
	}
}

// adHocRefBudget bounds the reference execution of ad-hoc workloads
// (generated programs terminate well under this by construction).
const adHocRefBudget = 10_000_000

// RegisterAdHoc adds w to the registry so Get, MustGet and Names find
// it. Unlike package-init registration, a duplicate name is returned as
// an error to the caller.
func RegisterAdHoc(w *Workload) error {
	if w == nil || w.Name == "" {
		return errors.New("workload: ad-hoc registration needs a name")
	}
	if _, dup := registry[w.Name]; dup {
		return fmt.Errorf("workload: duplicate %s", w.Name)
	}
	registry[w.Name] = w
	return nil
}

// Source returns the assembly source at the given scale (outer iteration
// count). Scale must be positive.
func (w *Workload) Source(scale int) string {
	if scale < 1 {
		scale = 1
	}
	return w.source(scale)
}

// Reference returns the output the program must print at the given scale,
// computed by the Go reference model.
func (w *Workload) Reference(scale int) string {
	if scale < 1 {
		scale = 1
	}
	return w.reference(scale)
}

// Program assembles the workload at the given scale.
func (w *Workload) Program(scale int) (*emu.Program, error) {
	prog, err := asm.Assemble(w.Source(scale))
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return prog, nil
}

// lcgNext advances the shared linear congruential generator every kernel
// uses (and mirrors in assembly): x' = x*1103515245 + 12345 (mod 2^32).
func lcgNext(x uint32) uint32 {
	return x*1103515245 + 12345
}

// The assembly fragment implementing one LCG step on register $s7 using
// $at-free temporaries $t8/$t9. Clobbers $t8, $t9, hi, lo.
const lcgAsm = `
	li $t8, 1103515245
	mult $s7, $t8
	mflo $s7
	addiu $s7, $s7, 12345
`

// epilogue prints $s6 as the checksum and exits.
const epilogue = `
	li $v0, 1
	move $a0, $s6
	syscall
	li $v0, 10
	syscall
`
