package workload

import "fmt"

// ---------------------------------------------------------------------------
// bzip — move-to-front coder (the heart of the BWT compressor stage):
// byte loads, linear scans and data-dependent inner loop trip counts.
// ---------------------------------------------------------------------------

func bzipSource(scale int) string {
	return fmt.Sprintf(`
.data
buf:   .space 256
table: .space 256
.text
main:
	li $s7, 12345        # lcg state
	li $s6, 0            # checksum
	la $t0, buf
	li $t1, 0
	li $t4, 256
fill:
%s	srl $t2, $s7, 16
	andi $t2, $t2, 0xff
	addu $t3, $t0, $t1
	sb $t2, 0($t3)
	addiu $t1, $t1, 1
	bne $t1, $t4, fill
	la $t0, table
	li $t1, 0
tinit:
	addu $t3, $t0, $t1
	sb $t1, 0($t3)
	addiu $t1, $t1, 1
	bne $t1, $t4, tinit
	li $s5, 0            # pass counter
	la $s1, buf
	la $s2, table
pass:
	li $s0, 0            # i
iloop:
	addu $t0, $s1, $s0
	lbu $t1, 0($t0)      # b = buf[i]
	li $t2, 0            # j
find:
	addu $t3, $s2, $t2
	lbu $t4, 0($t3)
	beq $t4, $t1, found
	addiu $t2, $t2, 1
	b find
found:
	addu $s6, $s6, $t2   # checksum += j
shift:
	blez $t2, place
	addu $t3, $s2, $t2
	lbu $t5, -1($t3)
	sb $t5, 0($t3)
	addiu $t2, $t2, -1
	b shift
place:
	sb $t1, 0($s2)       # table[0] = b
	addiu $s0, $s0, 1
	li $t6, 256
	bne $s0, $t6, iloop
	andi $t0, $s5, 255   # buf[pass & 255] = pass & 255
	addu $t0, $s1, $t0
	andi $t1, $s5, 255
	sb $t1, 0($t0)
	addiu $s5, $s5, 1
	li $t2, %d
	bne $s5, $t2, pass
%s`, lcgAsm, scale, epilogue)
}

func bzipReference(scale int) string {
	var buf, table [256]byte
	x := uint32(12345)
	for i := range buf {
		x = lcgNext(x)
		buf[i] = byte(x >> 16)
	}
	for i := range table {
		table[i] = byte(i)
	}
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		for i := 0; i < 256; i++ {
			b := buf[i]
			j := 0
			for table[j] != b {
				j++
			}
			sum += uint32(j)
			for ; j > 0; j-- {
				table[j] = table[j-1]
			}
			table[0] = b
		}
		buf[pass&255] = byte(pass & 255)
	}
	return fmt.Sprintf("%d", int32(sum))
}

// ---------------------------------------------------------------------------
// gcc — token hashing with an 8-way opcode dispatch: irregular,
// data-dependent multiway branches over a hash-bucket table.
// ---------------------------------------------------------------------------

func gccSource(scale int) string {
	return fmt.Sprintf(`
.data
buf:    .space 256
bucket: .space 256        # 64 words
.text
main:
	li $s7, 54321
	li $s6, 0
	la $t0, buf
	li $t1, 0
	li $t4, 256
gfill:
%s	srl $t2, $s7, 16
	andi $t2, $t2, 0xff
	addu $t3, $t0, $t1
	sb $t2, 0($t3)
	addiu $t1, $t1, 1
	bne $t1, $t4, gfill
	li $s5, 0            # pass
	la $s1, buf
	la $s2, bucket
pass:
	li $s0, 0            # i
tok:
	addu $t0, $s1, $s0
	lbu $t1, 0($t0)      # b
	xor $t2, $t1, $s5    # h = (b ^ pass) & 63
	andi $t2, $t2, 63
	sll $t3, $t2, 2
	addu $t3, $s2, $t3
	lw $t4, 0($t3)       # bucket[h]
	addu $t4, $t4, $t1
	sw $t4, 0($t3)
	andi $t5, $t1, 7     # dispatch on b & 7
	beq $t5, $zero, c0
	li $t6, 1
	beq $t5, $t6, c1
	li $t6, 2
	beq $t5, $t6, c2
	li $t6, 3
	beq $t5, $t6, c3
	li $t6, 4
	beq $t5, $t6, c4
	li $t6, 5
	beq $t5, $t6, c5
	li $t6, 6
	beq $t5, $t6, c6
	addiu $s6, $s6, 1    # case 7
	b next
c0:	addu $s6, $s6, $t4
	b next
c1:	xor $s6, $s6, $t1
	b next
c2:	addu $s6, $s6, $s0
	b next
c3:	subu $s6, $s6, $t1
	b next
c4:	addu $s6, $s6, $t2
	b next
c5:	srl $t7, $t4, 3
	xor $s6, $s6, $t7
	b next
c6:	sll $t7, $t1, 1
	addu $t7, $t7, $t1
	addu $s6, $s6, $t7
next:
	addiu $s0, $s0, 1
	li $t6, 256
	bne $s0, $t6, tok
	addiu $s5, $s5, 1
	li $t2, %d
	bne $s5, $t2, pass
%s`, lcgAsm, scale, epilogue)
}

func gccReference(scale int) string {
	var buf [256]byte
	var bucket [64]uint32
	x := uint32(54321)
	for i := range buf {
		x = lcgNext(x)
		buf[i] = byte(x >> 16)
	}
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		for i := 0; i < 256; i++ {
			b := uint32(buf[i])
			h := (b ^ uint32(pass)) & 63
			bucket[h] += b
			switch b & 7 {
			case 0:
				sum += bucket[h]
			case 1:
				sum ^= b
			case 2:
				sum += uint32(i)
			case 3:
				sum -= b
			case 4:
				sum += h
			case 5:
				sum ^= bucket[h] >> 3
			case 6:
				sum += b * 3
			case 7:
				sum++
			}
		}
	}
	return fmt.Sprintf("%d", int32(sum))
}

// ---------------------------------------------------------------------------
// go — board-scanning liberty counter: dense 2-D array walks with
// bounds-check branches on every neighbour.
// ---------------------------------------------------------------------------

func goSource(scale int) string {
	return fmt.Sprintf(`
.data
board: .space 361        # 19x19 bytes
.text
main:
	li $s7, 99991
	li $s6, 0
	la $s1, board
	li $t1, 0
	li $t4, 361
	li $t5, 3
bfill:
%s	srl $t2, $s7, 16
	remu $t2, $t2, $t5   # stone in {0,1,2}
	addu $t3, $s1, $t1
	sb $t2, 0($t3)
	addiu $t1, $t1, 1
	bne $t1, $t4, bfill
	li $s5, 0            # pass
pass:
	li $s0, 0            # r
	li $s4, 0            # libs
rloop:
	li $s2, 0            # c
cloop:
	li $t0, 19           # idx = r*19 + c
	mult $s0, $t0
	mflo $t1
	addu $t1, $t1, $s2
	addu $t2, $s1, $t1
	lbu $t3, 0($t2)
	li $t4, 1
	bne $t3, $t4, cnext  # only black stones
	# north
	blez $s0, s_south
	lbu $t5, -19($t2)
	bnez $t5, s_south
	addiu $s4, $s4, 1
s_south:
	li $t6, 18
	bge $s0, $t6, s_west
	lbu $t5, 19($t2)
	bnez $t5, s_west
	addiu $s4, $s4, 1
s_west:
	blez $s2, s_east
	lbu $t5, -1($t2)
	bnez $t5, s_east
	addiu $s4, $s4, 1
s_east:
	li $t6, 18
	bge $s2, $t6, cnext
	lbu $t5, 1($t2)
	bnez $t5, cnext
	addiu $s4, $s4, 1
cnext:
	addiu $s2, $s2, 1
	li $t6, 19
	bne $s2, $t6, cloop
	addiu $s0, $s0, 1
	bne $s0, $t6, rloop
	addu $s6, $s6, $s4   # checksum += libs
	li $t0, 7            # board[(pass*7) %% 361] = pass %% 3
	mult $s5, $t0
	mflo $t1
	li $t2, 361
	remu $t1, $t1, $t2
	addu $t2, $s1, $t1
	li $t3, 3
	remu $t4, $s5, $t3
	sb $t4, 0($t2)
	addiu $s5, $s5, 1
	li $t2, %d
	bne $s5, $t2, pass
%s`, lcgAsm, scale, epilogue)
}

func goReference(scale int) string {
	var board [361]byte
	x := uint32(99991)
	for i := range board {
		x = lcgNext(x)
		board[i] = byte(x >> 16 % 3)
	}
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		libs := uint32(0)
		for r := 0; r < 19; r++ {
			for c := 0; c < 19; c++ {
				if board[r*19+c] != 1 {
					continue
				}
				if r > 0 && board[(r-1)*19+c] == 0 {
					libs++
				}
				if r < 18 && board[(r+1)*19+c] == 0 {
					libs++
				}
				if c > 0 && board[r*19+c-1] == 0 {
					libs++
				}
				if c < 18 && board[r*19+c+1] == 0 {
					libs++
				}
			}
		}
		sum += libs
		board[pass*7%361] = byte(pass % 3)
	}
	return fmt.Sprintf("%d", int32(sum))
}

// ---------------------------------------------------------------------------
// gzip — LZ77 match search: 3-byte context hashing against a head table,
// back-referencing loads with data-dependent match confirmation.
// ---------------------------------------------------------------------------

func gzipSource(scale int) string {
	return fmt.Sprintf(`
.data
buf:  .space 512
head: .space 1024        # 256 words
.text
main:
	li $s7, 777
	li $s6, 0
	la $s1, buf
	la $s2, head
	li $t1, 0
	li $t4, 512
zfill:
%s	srl $t2, $s7, 16
	andi $t2, $t2, 0x0f  # small alphabet so matches occur
	addu $t3, $s1, $t1
	sb $t2, 0($t3)
	addiu $t1, $t1, 1
	bne $t1, $t4, zfill
	li $s5, 0            # pass
pass:
	li $s0, 3            # i
	li $s4, 0            # matches
zloop:
	addu $t0, $s1, $s0
	lbu $t1, -3($t0)
	lbu $t2, -2($t0)
	lbu $t3, -1($t0)
	sll $t5, $t1, 6      # h = (a<<6 ^ b<<3 ^ c) & 255
	sll $t6, $t2, 3
	xor $t5, $t5, $t6
	xor $t5, $t5, $t3
	andi $t5, $t5, 255
	sll $t5, $t5, 2
	addu $t5, $s2, $t5
	lw $t7, 0($t5)       # cand = head[h]
	sw $s0, 0($t5)       # head[h] = i
	beqz $t7, znext
	addu $t6, $s1, $t7   # confirm 3-byte match at cand
	lbu $t8, -3($t6)
	bne $t8, $t1, znext
	lbu $t8, -2($t6)
	bne $t8, $t2, znext
	lbu $t8, -1($t6)
	bne $t8, $t3, znext
	addiu $s4, $s4, 1
znext:
	addiu $s0, $s0, 1
	li $t6, 512
	bne $s0, $t6, zloop
	addu $s6, $s6, $s4
	li $t0, 509          # buf[pass %% 509 + 3] ^= pass & 15
	remu $t1, $s5, $t0
	addiu $t1, $t1, 3
	addu $t1, $s1, $t1
	lbu $t2, 0($t1)
	andi $t3, $s5, 15
	xor $t2, $t2, $t3
	sb $t2, 0($t1)
	addiu $s5, $s5, 1
	li $t2, %d
	bne $s5, $t2, pass
%s`, lcgAsm, scale, epilogue)
}

func gzipReference(scale int) string {
	var buf [512]byte
	var head [256]uint32
	x := uint32(777)
	for i := range buf {
		x = lcgNext(x)
		buf[i] = byte(x>>16) & 0x0f
	}
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		matches := uint32(0)
		for i := 3; i < 512; i++ {
			a, b, c := uint32(buf[i-3]), uint32(buf[i-2]), uint32(buf[i-1])
			h := (a<<6 ^ b<<3 ^ c) & 255
			cand := head[h]
			head[h] = uint32(i)
			if cand != 0 &&
				buf[cand-3] == buf[i-3] &&
				buf[cand-2] == buf[i-2] &&
				buf[cand-1] == buf[i-1] {
				matches++
			}
		}
		sum += matches
		j := pass%509 + 3
		buf[j] ^= byte(pass & 15)
	}
	return fmt.Sprintf("%d", int32(sum))
}

func init() {
	register(&Workload{
		Name: "bzip", Paper: "256.bzip2 (SPECint2000)",
		Description:  "move-to-front coder over a pseudo-random byte buffer",
		DefaultScale: 1 << 20,
		source:       bzipSource, reference: bzipReference,
	})
	register(&Workload{
		Name: "gcc", Paper: "176.gcc (SPECint2000)",
		Description:  "token hashing with an 8-way dispatch over hash buckets",
		DefaultScale: 1 << 20,
		source:       gccSource, reference: gccReference,
	})
	register(&Workload{
		Name: "go", Paper: "099.go (SPECint95)",
		Description:  "19x19 board liberty counting with neighbour bound checks",
		DefaultScale: 1 << 20,
		source:       goSource, reference: goReference,
	})
	register(&Workload{
		Name: "gzip", Paper: "164.gzip (SPECint2000)",
		Description:  "LZ77 3-byte context match search against a head table",
		DefaultScale: 1 << 20,
		source:       gzipSource, reference: gzipReference,
	})
}
