package workload

import "fmt"

// ---------------------------------------------------------------------------
// ijpeg — integer 8x8 block transform: multiply-accumulate row and column
// passes, the arithmetic-dense kernel of JPEG's forward DCT.
// ---------------------------------------------------------------------------

func ijpegSource(scale int) string {
	return fmt.Sprintf(`
.data
blk: .space 256          # 64 words
.text
main:
	li $s7, 4242
	li $s6, 0
	la $s1, blk
	li $s5, %d           # passes remaining
pass:
	li $t1, 0            # refill block each pass
jfill:
%s	srl $t2, $s7, 16
	andi $t2, $t2, 0xff
	sll $t3, $t1, 2
	addu $t3, $s1, $t3
	sw $t2, 0($t3)
	addiu $t1, $t1, 1
	li $t4, 64
	bne $t1, $t4, jfill
	li $s0, 0            # r: row transform
rowt:
	li $t0, 0            # acc
	li $t1, 0            # j
	sll $t2, $s0, 5      # &blk[r*8]
	addu $t2, $s1, $t2
rowj:
	sll $t3, $t1, 2
	addu $t3, $t2, $t3
	lw $t4, 0($t3)
	addiu $t5, $t1, 1    # coefficient j+1
	mult $t4, $t5
	mflo $t6
	addu $t0, $t0, $t6
	addiu $t1, $t1, 1
	li $t7, 8
	bne $t1, $t7, rowj
	sw $t0, 0($t2)       # blk[r*8] = acc
	addiu $s0, $s0, 1
	bne $s0, $t7, rowt
	li $s0, 0            # c: column transform
	li $s4, 0            # total
colt:
	li $t0, 0            # acc
	li $t1, 0            # j
colj:
	sll $t3, $t1, 5      # &blk[j*8 + c]
	sll $t5, $s0, 2
	addu $t3, $t3, $t5
	addu $t3, $s1, $t3
	lw $t4, 0($t3)
	li $t5, 8            # coefficient 8-j
	subu $t5, $t5, $t1
	mult $t4, $t5
	mflo $t6
	addu $t0, $t0, $t6
	addiu $t1, $t1, 1
	li $t7, 8
	bne $t1, $t7, colj
	addu $s4, $s4, $t0
	addiu $s0, $s0, 1
	bne $s0, $t7, colt
	andi $t0, $s4, 0xffff
	addu $s6, $s6, $t0   # checksum += total & 0xffff
	addiu $s5, $s5, -1
	bgtz $s5, pass
%s`, scale, lcgAsm, epilogue)
}

func ijpegReference(scale int) string {
	var blk [64]uint32
	x := uint32(4242)
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		for i := range blk {
			x = lcgNext(x)
			blk[i] = x >> 16 & 0xff
		}
		for r := 0; r < 8; r++ {
			acc := uint32(0)
			for j := 0; j < 8; j++ {
				acc += blk[r*8+j] * uint32(j+1)
			}
			blk[r*8] = acc
		}
		total := uint32(0)
		for c := 0; c < 8; c++ {
			acc := uint32(0)
			for j := 0; j < 8; j++ {
				acc += blk[j*8+c] * uint32(8-j)
			}
			total += acc
		}
		sum += total & 0xffff
	}
	return fmt.Sprintf("%d", int32(sum))
}

// ---------------------------------------------------------------------------
// li — cons-cell mark phase: the paper's Figure 5 kernel. Each node's flag
// byte is tested with lbu+andi+bne; the traversal breaks at the first
// already-marked node, so the branch flips behaviour between passes.
// ---------------------------------------------------------------------------

func liSource(scale int) string {
	return fmt.Sprintf(`
.data
nodes: .space 2048       # 128 nodes x 16 bytes {flags, next, val, pad}
.text
main:
	li $s6, 0
	la $s1, nodes
	li $t0, 0            # i: build the cycle next[i] = (i*7+1) %% 128
nbuild:
	sll $t1, $t0, 4
	addu $t1, $s1, $t1   # &node[i]
	sw $zero, 0($t1)     # flags = 0
	li $t2, 7
	mult $t0, $t2
	mflo $t3
	addiu $t3, $t3, 1
	andi $t3, $t3, 127
	sll $t3, $t3, 4
	addu $t3, $s1, $t3
	sw $t3, 4($t1)       # next pointer
	sw $t0, 8($t1)       # val = i
	addiu $t0, $t0, 1
	li $t4, 128
	bne $t0, $t4, nbuild
	li $s5, 0            # pass
pass:
	move $s2, $s1        # p = &node[0]
	li $s4, 0            # cnt
	li $s0, 0            # k
mark:
	lbu $t1, 0($s2)      # the Figure 5 idiom: lbu; andi; bne
	andi $t2, $t1, 1
	bnez $t2, broke      # if (n_flags & MARK) break
	ori $t1, $t1, 1
	sb $t1, 0($s2)
	addiu $s4, $s4, 1
	lw $t3, 8($s2)
	addu $s6, $s6, $t3   # checksum += val
	lw $s2, 4($s2)       # p = p->next
	addiu $s0, $s0, 1
	li $t4, 128
	bne $s0, $t4, mark
broke:
	addu $s6, $s6, $s4   # checksum += cnt
	andi $t0, $s5, 1
	beqz $t0, nopclear   # clear marks on odd passes
	li $t0, 0
clear:
	sll $t1, $t0, 4
	addu $t1, $s1, $t1
	sw $zero, 0($t1)
	addiu $t0, $t0, 1
	li $t4, 128
	bne $t0, $t4, clear
nopclear:
	addiu $s5, $s5, 1
	li $t2, %d
	bne $s5, $t2, pass
%s`, scale, epilogue)
}

func liReference(scale int) string {
	type node struct {
		flags uint32
		next  int
		val   uint32
	}
	var nodes [128]node
	for i := range nodes {
		nodes[i] = node{next: (i*7 + 1) % 128, val: uint32(i)}
	}
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		p := 0
		cnt := uint32(0)
		for k := 0; k < 128; k++ {
			if nodes[p].flags&1 != 0 {
				break
			}
			nodes[p].flags |= 1
			cnt++
			sum += nodes[p].val
			p = nodes[p].next
		}
		sum += cnt
		if pass&1 == 1 {
			for i := range nodes {
				nodes[i].flags = 0
			}
		}
	}
	return fmt.Sprintf("%d", int32(sum))
}

// ---------------------------------------------------------------------------
// mcf — pointer chasing through a 128KB pseudo-random permutation:
// load-to-load dependent chains with poor locality, the network-simplex
// arc traversal pattern.
// ---------------------------------------------------------------------------

func mcfSource(scale int) string {
	return fmt.Sprintf(`
.data
next: .space 131072      # 32768 words
.text
main:
	li $s6, 0
	la $s1, next
	li $t0, 0            # i: next[i] = &next[(i*1677+947) & 32767]
mbuild:
	li $t2, 1677
	mult $t0, $t2
	mflo $t3
	addiu $t3, $t3, 947
	andi $t3, $t3, 32767
	sll $t3, $t3, 2
	addu $t3, $s1, $t3   # address form: chase is a bare lw chain
	sll $t1, $t0, 2
	addu $t1, $s1, $t1
	sw $t3, 0($t1)
	addiu $t0, $t0, 1
	li $t4, 32768
	bne $t0, $t4, mbuild
	li $s5, 0            # pass
pass:
	andi $t0, $s5, 32767 # start node varies per pass
	sll $t0, $t0, 2
	addu $s2, $s1, $t0   # p
	li $s0, 4096         # k counts down to zero
chase:
	lw $s2, 0($s2)       # p = *p
	addiu $s0, $s0, -1
	bgtz $s0, chase
	subu $t5, $s2, $s1   # checksum += final index
	srl $t5, $t5, 2
	addu $s6, $s6, $t5
	addiu $s5, $s5, 1
	li $t2, %d
	bne $s5, $t2, pass
%s`, scale, epilogue)
}

func mcfReference(scale int) string {
	const n = 32768
	next := make([]uint32, n)
	for i := uint32(0); i < n; i++ {
		next[i] = (i*1677 + 947) & (n - 1)
	}
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		p := uint32(pass) & (n - 1)
		for k := 0; k < 4096; k++ {
			p = next[p]
		}
		sum += p
	}
	return fmt.Sprintf("%d", int32(sum))
}

// ---------------------------------------------------------------------------
// parser — dictionary binary search: hard-to-predict compare branches over
// a sorted table with a mix of hits and deliberate near-misses.
// ---------------------------------------------------------------------------

func parserSource(scale int) string {
	return fmt.Sprintf(`
.data
dict: .space 256         # 64 words, sorted
.text
main:
	li $s7, 31337
	li $s6, 0
	la $s1, dict
	li $t0, 0            # dict[i] = i*977 + 13
dbuild:
	li $t2, 977
	mult $t0, $t2
	mflo $t3
	addiu $t3, $t3, 13
	sll $t1, $t0, 2
	addu $t1, $s1, $t1
	sw $t3, 0($t1)
	addiu $t0, $t0, 1
	li $t4, 64
	bne $t0, $t4, dbuild
	li $s5, %d           # passes remaining
pass:
%s	srl $t0, $s7, 16     # idx = (x>>16) & 63
	andi $t0, $t0, 63
	li $t2, 977
	mult $t0, $t2
	mflo $s2
	addiu $s2, $s2, 13   # q
	andi $t3, $s7, 0x80  # half the queries miss by one
	beqz $t3, search
	addiu $s2, $s2, 1
search:
	li $s0, 0            # lo
	li $s3, 63           # hi
bsloop:
	bgt $s0, $s3, miss
	addu $t0, $s0, $s3
	srl $t0, $t0, 1      # mid
	sll $t1, $t0, 2
	addu $t1, $s1, $t1
	lw $t2, 0($t1)
	beq $t2, $s2, hit
	blt $t2, $s2, goRight
	addiu $s3, $t0, -1   # hi = mid-1
	b bsloop
goRight:
	addiu $s0, $t0, 1    # lo = mid+1
	b bsloop
hit:
	addu $s6, $s6, $t0   # checksum += mid
	b pnext
miss:
	addiu $t0, $s0, 100  # checksum += 100 + lo
	addu $s6, $s6, $t0
pnext:
	addiu $s5, $s5, -1
	bgtz $s5, pass
%s`, scale, lcgAsm, epilogue)
}

func parserReference(scale int) string {
	var dict [64]uint32
	for i := range dict {
		dict[i] = uint32(i)*977 + 13
	}
	x := uint32(31337)
	var sum uint32
	for pass := 0; pass < scale; pass++ {
		x = lcgNext(x)
		idx := x >> 16 & 63
		q := idx*977 + 13
		if x&0x80 != 0 {
			q++
		}
		lo, hi := 0, 63
		found := -1
		for lo <= hi {
			mid := (lo + hi) / 2
			v := dict[mid]
			if v == q {
				found = mid
				break
			}
			if v < q {
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		if found >= 0 {
			sum += uint32(found)
		} else {
			sum += uint32(100 + lo)
		}
	}
	return fmt.Sprintf("%d", int32(sum))
}

func init() {
	register(&Workload{
		Name: "ijpeg", Paper: "132.ijpeg (SPECint95)",
		Description:  "integer 8x8 block transform with row/column MAC passes",
		DefaultScale: 1 << 20,
		source:       ijpegSource, reference: ijpegReference,
	})
	register(&Workload{
		Name: "li", Paper: "130.li (SPECint95)",
		Description:  "cons-cell mark phase with tag-bit tests (paper Figure 5)",
		DefaultScale: 1 << 20,
		source:       liSource, reference: liReference,
	})
	register(&Workload{
		Name: "mcf", Paper: "181.mcf (SPECint2000)",
		Description:  "pointer chasing through a 128KB random permutation",
		DefaultScale: 1 << 20,
		FastForward:  450_000, // skip the permutation build phase
		source:       mcfSource, reference: mcfReference,
	})
	register(&Workload{
		Name: "parser", Paper: "197.parser (SPECint2000)",
		Description:  "sorted-dictionary binary search with near-miss queries",
		DefaultScale: 1 << 22,
		source:       parserSource, reference: parserReference,
	})
}
