package workload

import (
	"errors"
	"fmt"
	"strings"

	"pok/internal/cc"
	"pok/internal/emu"
)

// CompiledWorkload is a benchmark written in MiniC and built with the
// bundled compiler — the compiled-language path the paper's SPEC
// benchmarks took. Like the assembly kernels, every compiled workload is
// paired with a Go reference model so the whole toolchain (compiler,
// assembler, emulator) is verified end to end.
type CompiledWorkload struct {
	Name         string
	Description  string
	DefaultScale int

	source    func(scale int) string
	reference func(scale int) string
}

var (
	compiledRegistry = map[string]*CompiledWorkload{}

	// compiledRegErr mirrors regErr for the compiled suite: duplicate
	// registrations are recorded, not panicked, and surface on first Get.
	compiledRegErr error
)

func registerCompiled(w *CompiledWorkload) {
	if _, dup := compiledRegistry[w.Name]; dup {
		compiledRegErr = errors.Join(compiledRegErr,
			fmt.Errorf("workload: duplicate compiled %s", w.Name))
		return
	}
	compiledRegistry[w.Name] = w
}

// CompiledNames lists the compiled suite in a fixed order.
func CompiledNames() []string {
	return []string{"cc-queens", "cc-qsort", "cc-matmul", "cc-sieve", "cc-hanoi"}
}

// GetCompiled returns the named compiled workload. A registration error
// (duplicate names at init) is surfaced here, on first use.
func GetCompiled(name string) (*CompiledWorkload, error) {
	if compiledRegErr != nil {
		return nil, compiledRegErr
	}
	w, ok := compiledRegistry[name]
	if !ok {
		return nil, fmt.Errorf("workload: %w %q (available compiled: %s)",
			ErrUnknownWorkload, name, strings.Join(CompiledNames(), ", "))
	}
	return w, nil
}

// Source returns the MiniC source at the given scale.
func (w *CompiledWorkload) Source(scale int) string {
	if scale < 1 {
		scale = 1
	}
	return w.source(scale)
}

// Reference returns the expected program output at the given scale.
func (w *CompiledWorkload) Reference(scale int) string {
	if scale < 1 {
		scale = 1
	}
	return w.reference(scale)
}

// Program compiles the workload at the given scale.
func (w *CompiledWorkload) Program(scale int) (*emu.Program, error) {
	prog, err := cc.CompileProgram(w.Source(scale))
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return prog, nil
}

func init() {
	registerCompiled(&CompiledWorkload{
		Name:         "cc-queens",
		Description:  "N-queens backtracking: recursion and bitwise pruning",
		DefaultScale: 1 << 12,
		source: func(scale int) string {
			return fmt.Sprintf(`
int solve(int row, int cols, int d1, int d2) {
	if (row == 6) return 1;
	int count = 0;
	int c;
	for (c = 0; c < 6; c++) {
		int bit = 1 << c;
		int a = 1 << (row + c);
		int b = 1 << (row - c + 6);
		if (!(cols & bit) && !(d1 & a) && !(d2 & b)) {
			count += solve(row + 1, cols | bit, d1 | a, d2 | b);
		}
	}
	return count;
}
int main() {
	int sum = 0;
	int pass;
	for (pass = 0; pass < %d; pass++) sum += solve(0, 0, 0, 0) + pass;
	print(sum);
	return 0;
}`, scale)
		},
		reference: func(scale int) string {
			// 6-queens has 4 solutions.
			var sum int32
			for pass := int32(0); pass < int32(scale); pass++ {
				sum += 4 + pass
			}
			return fmt.Sprintf("%d\n", sum)
		},
	})

	registerCompiled(&CompiledWorkload{
		Name:         "cc-qsort",
		Description:  "quicksort over LCG data: recursion, swaps, compares",
		DefaultScale: 1 << 12,
		source: func(scale int) string {
			return fmt.Sprintf(`
int a[32];
int lcg = 7;
int rand() {
	lcg = lcg * 1103515245 + 12345;
	return (lcg >> 16) & 1023;
}
int qsort(int lo, int hi) {
	if (lo >= hi) return 0;
	int p = a[hi];
	int i = lo - 1;
	int j;
	for (j = lo; j < hi; j++) {
		if (a[j] < p) {
			i++;
			int t = a[i]; a[i] = a[j]; a[j] = t;
		}
	}
	int u = a[i + 1]; a[i + 1] = a[hi]; a[hi] = u;
	qsort(lo, i);
	qsort(i + 2, hi);
	return 0;
}
int main() {
	int sum = 0;
	int pass;
	for (pass = 0; pass < %d; pass++) {
		int i;
		for (i = 0; i < 32; i++) a[i] = rand();
		qsort(0, 31);
		sum += a[0] + a[16] + a[31];
	}
	print(sum);
	return 0;
}`, scale)
		},
		reference: func(scale int) string {
			lcg := int32(7)
			rand := func() int32 {
				lcg = lcg*1103515245 + 12345
				return (lcg >> 16) & 1023
			}
			var sum int32
			a := make([]int32, 32)
			for pass := 0; pass < scale; pass++ {
				for i := range a {
					a[i] = rand()
				}
				// Mirror insertion-free sort semantics (values only).
				sortInt32(a)
				sum += a[0] + a[16] + a[31]
			}
			return fmt.Sprintf("%d\n", sum)
		},
	})

	registerCompiled(&CompiledWorkload{
		Name:         "cc-matmul",
		Description:  "8x8 integer matrix multiply: MAC-dense loops",
		DefaultScale: 1 << 12,
		source: func(scale int) string {
			return fmt.Sprintf(`
int a[64];
int b[64];
int c[64];
int main() {
	int sum = 0;
	int pass;
	for (pass = 0; pass < %d; pass++) {
		int i;
		for (i = 0; i < 64; i++) {
			a[i] = i + pass;
			b[i] = (i * 5 + pass) %% 13;
		}
		int r;
		for (r = 0; r < 8; r++) {
			int col;
			for (col = 0; col < 8; col++) {
				int acc = 0;
				int k;
				for (k = 0; k < 8; k++) acc += a[r * 8 + k] * b[k * 8 + col];
				c[r * 8 + col] = acc;
			}
		}
		sum += c[0] + c[63];
	}
	print(sum);
	return 0;
}`, scale)
		},
		reference: func(scale int) string {
			var sum int32
			var a, b, c [64]int32
			for pass := int32(0); pass < int32(scale); pass++ {
				for i := int32(0); i < 64; i++ {
					a[i] = i + pass
					b[i] = (i*5 + pass) % 13
				}
				for r := 0; r < 8; r++ {
					for col := 0; col < 8; col++ {
						var acc int32
						for k := 0; k < 8; k++ {
							acc += a[r*8+k] * b[k*8+col]
						}
						c[r*8+col] = acc
					}
				}
				sum += c[0] + c[63]
			}
			return fmt.Sprintf("%d\n", sum)
		},
	})

	registerCompiled(&CompiledWorkload{
		Name:         "cc-sieve",
		Description:  "prime sieve below 512: flag writes and stride loops",
		DefaultScale: 1 << 12,
		source: func(scale int) string {
			return fmt.Sprintf(`
int flags[512];
int main() {
	int total = 0;
	int pass;
	for (pass = 0; pass < %d; pass++) {
		int i;
		for (i = 0; i < 512; i++) flags[i] = 0;
		int count = 0;
		for (i = 2; i < 512; i++) {
			if (flags[i] == 0) {
				count++;
				int j;
				for (j = i + i; j < 512; j += i) flags[j] = 1;
			}
		}
		total += count;
	}
	print(total);
	return 0;
}`, scale)
		},
		reference: func(scale int) string {
			flags := make([]bool, 512)
			count := 0
			for i := 2; i < 512; i++ {
				if !flags[i] {
					count++
					for j := i + i; j < 512; j += i {
						flags[j] = true
					}
				}
			}
			return fmt.Sprintf("%d\n", count*scale)
		},
	})

	registerCompiled(&CompiledWorkload{
		Name:         "cc-hanoi",
		Description:  "towers of Hanoi: deep recursion, tiny frames",
		DefaultScale: 1 << 12,
		source: func(scale int) string {
			return fmt.Sprintf(`
int moves = 0;
int hanoi(int n, int from, int to, int via) {
	if (n == 0) return 0;
	hanoi(n - 1, from, via, to);
	moves++;
	hanoi(n - 1, via, to, from);
	return 0;
}
int main() {
	int pass;
	for (pass = 0; pass < %d; pass++) hanoi(7, 0, 2, 1);
	print(moves);
	return 0;
}`, scale)
		},
		reference: func(scale int) string {
			return fmt.Sprintf("%d\n", int32(scale)*127)
		},
	})
}

// sortInt32 is a tiny ascending sort (reference-model helper).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
