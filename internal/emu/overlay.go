package emu

// Backend is the byte-addressed memory interface the emulator executes
// against. Memory implements it directly; Overlay implements it as a
// copy-on-write view for speculative (wrong-path) execution.
type Backend interface {
	Read8(addr uint32) byte
	Write8(addr uint32, b byte)
	Read16(addr uint32) uint16
	Write16(addr uint32, v uint16)
	Read32(addr uint32) uint32
	Write32(addr uint32, v uint32)
	ReadCString(addr uint32) (string, error)
}

var (
	_ Backend = (*Memory)(nil)
	_ Backend = (*Overlay)(nil)
)

// Overlay is a copy-on-write view over a base memory: writes land in a
// private byte map and reads prefer it, so a speculative execution path
// can run ahead without disturbing the architectural image. Overlays are
// intended for short excursions (a misprediction shadow); the write set
// is byte-granular.
type Overlay struct {
	base   Backend
	writes map[uint32]byte
}

// NewOverlay creates an empty copy-on-write view of base.
func NewOverlay(base Backend) *Overlay {
	return &Overlay{base: base, writes: make(map[uint32]byte)}
}

// Read8 returns the overlaid byte at addr.
func (o *Overlay) Read8(addr uint32) byte {
	if b, ok := o.writes[addr]; ok {
		return b
	}
	return o.base.Read8(addr)
}

// Write8 stores b privately at addr.
func (o *Overlay) Write8(addr uint32, b byte) { o.writes[addr] = b }

// Read16 returns the overlaid little-endian 16-bit value at addr.
func (o *Overlay) Read16(addr uint32) uint16 {
	return uint16(o.Read8(addr)) | uint16(o.Read8(addr+1))<<8
}

// Write16 stores v privately, little-endian.
func (o *Overlay) Write16(addr uint32, v uint16) {
	o.Write8(addr, byte(v))
	o.Write8(addr+1, byte(v>>8))
}

// Read32 returns the overlaid little-endian 32-bit value at addr.
func (o *Overlay) Read32(addr uint32) uint32 {
	// Fast path: no private bytes in this word.
	if len(o.writes) == 0 {
		return o.base.Read32(addr)
	}
	return uint32(o.Read16(addr)) | uint32(o.Read16(addr+2))<<16
}

// Write32 stores v privately, little-endian.
func (o *Overlay) Write32(addr uint32, v uint32) {
	o.Write16(addr, uint16(v))
	o.Write16(addr+2, uint16(v>>16))
}

// ReadCString reads a NUL-terminated string through the overlay.
func (o *Overlay) ReadCString(addr uint32) (string, error) {
	const limit = 1 << 20
	var buf []byte
	for i := 0; i < limit; i++ {
		b := o.Read8(addr + uint32(i))
		if b == 0 {
			return string(buf), nil
		}
		buf = append(buf, b)
	}
	return "", errUnterminated(addr)
}

// WriteCount reports how many private bytes the overlay holds.
func (o *Overlay) WriteCount() int { return len(o.writes) }
