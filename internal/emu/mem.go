// Package emu provides the functional half of the simulator: a sparse
// little-endian memory image and an architectural-state emulator that
// executes the ISA defined in internal/isa and streams a dynamic
// instruction trace for the timing model and the characterization
// experiments.
package emu

import "fmt"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// PageSize is the memory page granularity, exported for the checkpoint
// layer (internal/ckpt) which serializes whole pages.
const PageSize = pageSize

// memPage is one materialized page. dirty is set by every store and
// cleared when a checkpoint captures the page, so periodic snapshots can
// write deltas; the flag is a plain byte store on the write fast path,
// not a map operation.
type memPage struct {
	data  [pageSize]byte
	dirty bool
}

// Memory is a sparse, paged, little-endian 32-bit memory image. The zero
// value is an empty memory ready for use; untouched bytes read as zero.
type Memory struct {
	pages map[uint32]*memPage
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*memPage)}
}

func (m *Memory) page(addr uint32, create bool) *memPage {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new(memPage)
		p.dirty = true // a fresh page exists only because of a store
		if m.pages == nil {
			m.pages = make(map[uint32]*memPage)
		}
		m.pages[pn] = p
	}
	return p
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint32) byte {
	if p := m.page(addr, false); p != nil {
		return p.data[addr&pageMask]
	}
	return 0
}

// Write8 stores b at addr.
func (m *Memory) Write8(addr uint32, b byte) {
	p := m.page(addr, true)
	p.dirty = true
	p.data[addr&pageMask] = b
}

// Read16 returns the little-endian 16-bit value at addr.
func (m *Memory) Read16(addr uint32) uint16 {
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores v little-endian at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
}

// Read32 returns the little-endian 32-bit value at addr.
func (m *Memory) Read32(addr uint32) uint32 {
	// Fast path for aligned access within one page.
	if addr&3 == 0 {
		if p := m.page(addr, false); p != nil {
			o := addr & pageMask
			return uint32(p.data[o]) | uint32(p.data[o+1])<<8 | uint32(p.data[o+2])<<16 |
				uint32(p.data[o+3])<<24
		}
		return 0
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write32 stores v little-endian at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&3 == 0 {
		p := m.page(addr, true)
		p.dirty = true
		o := addr & pageMask
		p.data[o] = byte(v)
		p.data[o+1] = byte(v >> 8)
		p.data[o+2] = byte(v >> 16)
		p.data[o+3] = byte(v >> 24)
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// WriteBlock copies data into memory starting at addr.
func (m *Memory) WriteBlock(addr uint32, data []byte) {
	for i, b := range data {
		m.Write8(addr+uint32(i), b)
	}
}

// ReadBlock copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBlock(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint32(i))
	}
	return out
}

// ReadCString reads a NUL-terminated string at addr (capped at 1MB to
// bound runaway reads from corrupted programs).
func (m *Memory) ReadCString(addr uint32) (string, error) {
	const limit = 1 << 20
	var buf []byte
	for i := 0; i < limit; i++ {
		b := m.Read8(addr + uint32(i))
		if b == 0 {
			return string(buf), nil
		}
		buf = append(buf, b)
	}
	return "", errUnterminated(addr)
}

func errUnterminated(addr uint32) error {
	return fmt.Errorf("emu: unterminated string at 0x%08x", addr)
}

// PageCount reports how many 4KB pages have been materialized.
func (m *Memory) PageCount() int { return len(m.pages) }

// DirtyPageCount reports how many pages carry writes since the last
// clearDirty (checkpoint delta size, in pages).
func (m *Memory) DirtyPageCount() int {
	n := 0
	for _, p := range m.pages {
		if p.dirty {
			n++
		}
	}
	return n
}

// clearDirty marks every materialized page clean. Called after a
// checkpoint captures the image, so the next delta snapshot carries only
// pages written since.
func (m *Memory) clearDirty() {
	for _, p := range m.pages {
		p.dirty = false
	}
}
