package emu_test

// Differential tests for the direct-threaded fast path: every workload,
// every checked-in repro bundle and a fuzzed population of generated
// programs must produce DynInst streams bit-identical to the legacy
// switch-dispatch interpreter's.

import (
	"os"
	"path/filepath"
	"testing"

	"pok/internal/asm"
	"pok/internal/emu"
	"pok/internal/gen"
	"pok/internal/isa"
	"pok/internal/workload"
)

// diffEmulators steps the fast-path and legacy interpreters in lockstep
// for up to budget instructions, failing on the first divergence in the
// dynamic record, the error, or the final architectural state.
func diffEmulators(t *testing.T, prog *emu.Program, budget uint64) {
	t.Helper()
	fast := emu.New(prog)
	ref := emu.New(prog)
	ref.SetLegacy(true)
	for i := uint64(0); i < budget; i++ {
		df, errF := fast.Step()
		dr, errR := ref.Step()
		if (errF == nil) != (errR == nil) {
			t.Fatalf("step %d: error mismatch: fast=%v legacy=%v", i, errF, errR)
		}
		if errF != nil {
			if errF.Error() != errR.Error() {
				t.Fatalf("step %d: error text mismatch:\nfast:   %v\nlegacy: %v", i, errF, errR)
			}
			break
		}
		if df != dr {
			t.Fatalf("step %d: DynInst divergence:\nfast:   %+v\nlegacy: %+v", i, df, dr)
		}
		if fast.Halted() {
			break
		}
	}
	if fast.Halted() != ref.Halted() || fast.ExitCode() != ref.ExitCode() ||
		fast.InstCount() != ref.InstCount() || fast.Output() != ref.Output() {
		t.Fatalf("final state mismatch: halted %v/%v exit %d/%d icount %d/%d",
			fast.Halted(), ref.Halted(), fast.ExitCode(), ref.ExitCode(),
			fast.InstCount(), ref.InstCount())
	}
	for r := 0; r < isa.NumRegs; r++ {
		if fast.Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
			t.Fatalf("final reg %v mismatch: fast=%#x legacy=%#x",
				isa.Reg(r), fast.Reg(isa.Reg(r)), ref.Reg(isa.Reg(r)))
		}
	}
}

func TestEmuDiffWorkloads(t *testing.T) {
	budget := uint64(100_000)
	if testing.Short() {
		budget = 20_000
	}
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := workload.MustGet(name)
			prog, err := w.Program(w.DefaultScale)
			if err != nil {
				t.Fatal(err)
			}
			diffEmulators(t, prog, budget)
		})
	}
}

// TestEmuDiffRepros replays the checked-in soak repro bundles (minimized
// generated programs) through both interpreters.
func TestEmuDiffRepros(t *testing.T) {
	root := filepath.Join("..", "gen", "testdata", "repros")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(root, e.Name(), "prog.s"))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(string(src))
			if err != nil {
				t.Fatal(err)
			}
			diffEmulators(t, prog, 200_000)
		})
	}
}

// TestEmuDiffForks checks that speculative forks of the fast-path
// emulator (which decode through the wrong-path overlay, off the dense
// window) match legacy forks instruction for instruction.
func TestEmuDiffForks(t *testing.T) {
	prog, err := workload.MustGet("li").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	fast := emu.New(prog)
	ref := emu.New(prog)
	ref.SetLegacy(true)
	if _, err := fast.Run(500, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(500, nil); err != nil {
		t.Fatal(err)
	}
	// Fork down a deliberately wrong path: an offset into the data
	// segment and a misaligned PC both leave the dense window.
	for _, pc := range []uint32{fast.PC() + 8, emu.DefaultDataBase, fast.PC() + 2} {
		ff := fast.Fork(pc)
		fr := ref.Fork(pc)
		for i := 0; i < 64; i++ {
			df, errF := ff.Step()
			dr, errR := fr.Step()
			if (errF == nil) != (errR == nil) {
				t.Fatalf("fork pc=%#x step %d: error mismatch: fast=%v legacy=%v", pc, i, errF, errR)
			}
			if errF != nil {
				if errF.Error() != errR.Error() {
					t.Fatalf("fork pc=%#x step %d: error text mismatch:\nfast:   %v\nlegacy: %v",
						pc, i, errF, errR)
				}
				break
			}
			if df != dr {
				t.Fatalf("fork pc=%#x step %d: DynInst divergence:\nfast:   %+v\nlegacy: %+v",
					pc, i, df, dr)
			}
		}
	}
}

// FuzzEmuDiff runs arbitrary generated programs through both
// interpreters and fails on the first DynInst divergence.
func FuzzEmuDiff(f *testing.F) {
	f.Add(uint64(1), uint8(24))
	f.Add(uint64(0xfeed), uint8(8))
	f.Add(uint64(0xdecade), uint8(48))
	f.Fuzz(func(t *testing.T, seed uint64, frags uint8) {
		p := gen.New(gen.Options{
			Seed:      seed,
			Fragments: int(frags%64) + 1,
			MaxInsts:  20_000,
		})
		prog, err := asm.Assemble(p.Source())
		if err != nil {
			t.Skip() // generator emits assemblable programs by construction
		}
		diffEmulators(t, prog, 30_000)
	})
}

// TestStepZeroAlloc is the allocation regression gate for the fast
// path: a steady-state Step (ALU, memory and branch traffic) must not
// allocate.
func TestStepZeroAlloc(t *testing.T) {
	words := make([]byte, 0, 8*4)
	enc := func(in isa.Inst) {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	// A tight infinite loop touching ALU, load, store and branch paths.
	enc(isa.Inst{Op: isa.OpADDIU, Rt: isa.RegT0, Rs: isa.RegT0, Imm: 1})
	enc(isa.Inst{Op: isa.OpSW, Rt: isa.RegT0, Rs: isa.RegGP, Imm: 0x40})
	enc(isa.Inst{Op: isa.OpLW, Rt: isa.RegT0 + 1, Rs: isa.RegGP, Imm: 0x40})
	enc(isa.Inst{Op: isa.OpADDU, Rd: isa.RegT0 + 2, Rs: isa.RegT0, Rt: isa.RegT0 + 1})
	enc(isa.Inst{Op: isa.OpBEQ, Rs: isa.RegZero, Rt: isa.RegZero, Imm: -5})
	prog := &emu.Program{
		Entry:    emu.DefaultTextBase,
		Segments: []emu.Segment{{Addr: emu.DefaultTextBase, Data: words}},
	}
	e := emu.New(prog)
	if _, err := e.Run(64, nil); err != nil { // warm the predecode window
		t.Fatal(err)
	}
	var d emu.DynInst
	allocs := testing.AllocsPerRun(1000, func() {
		if err := e.StepInto(&d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Emulator.Step allocates %.1f allocs/op, want 0", allocs)
	}
}
