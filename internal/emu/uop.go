// Direct-threaded fast path for the functional emulator.
//
// Instead of decoding through a per-PC map and dispatching through a
// 60-case switch with per-step closures (kept as stepLegacy for
// differential testing), the fast path predecodes each static
// instruction once into a dense micro-op (uop) array indexed by
// (pc-base)>>2 and dispatches through an indexed handler table of
// func(*Emulator, *uop, *DynInst). Decode still happens lazily at first
// execution — exactly the old map semantics, so programs that modify
// instruction words before first execution behave identically — but a
// decoded uop carries the instruction fields, the source-register list
// and the sign-extended immediate / branch target precomputed, and a
// steady-state Step performs zero allocations.
package emu

import (
	"fmt"

	"pok/internal/isa"
)

// uop is one predecoded static instruction. target holds the
// precomputed taken-path target for direct branches and jumps (uops are
// per-PC, so the target is a constant).
type uop struct {
	inst   isa.Inst
	state  uint8 // uopEmpty, uopOK or uopBad
	nsrc   uint8
	src    [2]isa.Reg
	immU   uint32 // uint32(inst.Imm): sign-extended immediate as a word
	target uint32
}

const (
	uopEmpty = iota
	uopOK
	uopBad
)

// Predecode-table sizing. The dense window is anchored at the text
// segment holding the entry point and extended over every segment that
// fits; denseSlack pads the end so straight-line overruns past the last
// text byte (which decode as NOPs from zeroed memory) stay on the fast
// path; denseMax caps the window so a program with far-apart segments
// (text at 0x00400000, data at 0x10000000) does not allocate the span
// between them.
const (
	denseSlack = 64 << 10
	denseMax   = 4 << 20
	// fallCacheMax bounds the out-of-window decode cache. The legacy
	// interpreter's map[uint32]isa.Inst grew without bound on wrong-path
	// or generated programs; beyond this many distinct PCs the fallback
	// decodes into a scratch uop without caching.
	fallCacheMax = 1 << 16
)

// FetchError is the structured error returned when instruction fetch or
// decode fails: the PC is recoverable from the error value rather than
// only from its message. It unwraps to the underlying isa decode error.
type FetchError struct {
	PC  uint32
	Err error
}

func (f *FetchError) Error() string { return fmt.Sprintf("at pc 0x%08x: %v", f.PC, f.Err) }
func (f *FetchError) Unwrap() error { return f.Err }

// initFast sizes the dense uop window for the loaded program. Forks skip
// this (utab nil): they execute a handful of wrong-path instructions
// through the fallback cache, mirroring the fresh per-fork decode map of
// the legacy interpreter.
func (e *Emulator) initFast(prog *Program) {
	lo := e.pc &^ 3
	for _, s := range prog.Segments {
		if s.Addr <= lo && uint64(lo)-uint64(s.Addr) < denseMax {
			lo = s.Addr &^ 3
		}
	}
	hi := uint64(lo)
	for _, s := range prog.Segments {
		end := uint64(s.Addr) + uint64(len(s.Data))
		if s.Addr >= lo && end-uint64(lo) <= denseMax && end > hi {
			hi = end
		}
	}
	hi += denseSlack
	if hi-uint64(lo) > denseMax {
		hi = uint64(lo) + denseMax
	}
	e.ubase = lo
	e.utab = make([]uop, (hi-uint64(lo)+3)>>2)
}

// lookupUop returns the (decoded) uop for the current PC, filling it on
// first execution. Out-of-window or misaligned PCs go through the
// bounded fallback cache.
func (e *Emulator) lookupUop() (*uop, error) {
	pc := e.pc
	if off := pc - e.ubase; off>>2 < uint32(len(e.utab)) && off&3 == 0 {
		u := &e.utab[off>>2]
		if u.state == uopOK {
			return u, nil
		}
		return e.fillUop(u, pc)
	}
	if u, ok := e.ufall[pc]; ok {
		if u.state == uopOK {
			return u, nil
		}
		return u, e.uerr[pc]
	}
	u := &e.uscratch
	*u = uop{}
	if _, err := e.fillUop(u, pc); err != nil {
		if e.cacheFallback(pc) {
			e.uerr[pc] = err
			cached := *u
			e.ufall[pc] = &cached
		}
		return u, err
	}
	if e.cacheFallback(pc) {
		cached := *u
		e.ufall[pc] = &cached
		return e.ufall[pc], nil
	}
	return u, nil
}

func (e *Emulator) cacheFallback(pc uint32) bool {
	if len(e.ufall) >= fallCacheMax {
		return false
	}
	if e.ufall == nil {
		e.ufall = make(map[uint32]*uop)
		e.uerr = make(map[uint32]error)
	}
	return true
}

// fillUop decodes the word at pc into u. The uop caches everything the
// handlers need: instruction fields, the source-register list (the
// Sources() slice allocation moves here, off the per-step path) and the
// constant taken-path target of direct control flow.
func (e *Emulator) fillUop(u *uop, pc uint32) (*uop, error) {
	in, err := isa.Decode(e.Mem.Read32(pc))
	if err != nil {
		u.state = uopBad
		return u, &FetchError{PC: pc, Err: err}
	}
	u.inst = in
	u.nsrc = 0
	for _, s := range in.Sources() {
		if u.nsrc < 2 {
			u.src[u.nsrc] = s
			u.nsrc++
		}
	}
	u.immU = uint32(in.Imm)
	switch in.Op {
	case isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ,
		isa.OpBLTZ, isa.OpBGEZ, isa.OpBC1T, isa.OpBC1F:
		u.target = branchTarget(pc, in.Imm)
	case isa.OpJ, isa.OpJAL:
		u.target = (pc+4)&0xf000_0000 | in.Target<<2
	}
	u.state = uopOK
	return u, nil
}

// badUopError rebuilds the decode error for a dense-window uop that
// failed decode earlier (bad uops are rare enough that re-decoding to
// reconstruct the error costs nothing on the hot path).
func (e *Emulator) badUopError(pc uint32) error {
	_, err := isa.Decode(e.Mem.Read32(pc))
	if err == nil {
		// The word was rewritten into something decodable after the bad
		// decode was cached; preserve cache-forever semantics.
		err = fmt.Errorf("isa: stale bad decode")
	}
	return &FetchError{PC: pc, Err: err}
}

// StepInto executes one instruction, writing its dynamic record into
// *d. It is the allocation-free core of Step: handlers write their
// effects directly into d and the emulator state.
func (e *Emulator) StepInto(d *DynInst) error {
	if e.legacy {
		var err error
		*d, err = e.stepLegacy()
		return err
	}
	if e.halted {
		*d = DynInst{}
		return ErrHalted
	}
	pc := e.pc
	var u *uop
	if off := pc - e.ubase; off>>2 < uint32(len(e.utab)) && off&3 == 0 {
		u = &e.utab[off>>2]
		if u.state != uopOK {
			if u.state == uopBad {
				*d = DynInst{}
				return e.badUopError(pc)
			}
			var err error
			if u, err = e.fillUop(u, pc); err != nil {
				*d = DynInst{}
				return err
			}
		}
	} else {
		var err error
		if u, err = e.lookupUop(); err != nil {
			*d = DynInst{}
			return err
		}
	}

	*d = DynInst{
		Seq:  e.icount,
		PC:   pc,
		Inst: u.inst,
		NSrc: int(u.nsrc),
		Src:  u.src,
		Dst:  isa.RegZero,
		Dst2: isa.RegZero,
	}
	// Unused source slots hold RegZero, whose register value is pinned
	// at 0, so reading both unconditionally matches the legacy loop.
	d.SrcVal[0] = e.regs[u.src[0]]
	d.SrcVal[1] = e.regs[u.src[1]]

	e.npc = pc + 4
	h := handlers[u.inst.Op]
	if h == nil {
		return fmt.Errorf("emu: unimplemented op %v at 0x%08x", u.inst.Op, pc)
	}
	h(e, u, d)
	if e.trap != nil {
		err := e.trap
		e.trap = nil
		return err
	}
	d.NextPC = e.npc
	e.pc = e.npc
	e.icount++
	return nil
}

// Handler helpers: the hoisted equivalents of stepLegacy's setDst /
// setHILO / takeBranch closures.

func uSetDst(e *Emulator, d *DynInst, r isa.Reg, v uint32) {
	d.Dst = r
	if r != isa.RegZero {
		d.DstVal = v
		e.regs[r] = v
	}
}

func uSetHILO(e *Emulator, d *DynInst, hi, lo uint32) {
	e.regs[isa.RegHI] = hi
	e.regs[isa.RegLO] = lo
	d.Dst, d.DstVal = isa.RegLO, lo
	d.Dst2, d.Dst2Val = isa.RegHI, hi
}

func uTakeBranch(e *Emulator, d *DynInst, taken bool, target uint32) {
	d.Taken = taken
	d.Target = target
	if taken {
		e.npc = target
	}
}
