package emu

import (
	"testing"
	"testing/quick"

	"pok/internal/isa"
)

func TestMemoryByteHalfWord(t *testing.T) {
	m := NewMemory()
	m.Write32(0x1000, 0xdeadbeef)
	if got := m.Read32(0x1000); got != 0xdeadbeef {
		t.Fatalf("Read32 = 0x%x", got)
	}
	// Little-endian byte order.
	if m.Read8(0x1000) != 0xef || m.Read8(0x1003) != 0xde {
		t.Fatal("byte order not little-endian")
	}
	if m.Read16(0x1000) != 0xbeef || m.Read16(0x1002) != 0xdead {
		t.Fatal("half order not little-endian")
	}
	m.Write16(0x1002, 0x1234)
	if m.Read32(0x1000) != 0x1234beef {
		t.Fatal("Write16 did not merge")
	}
	// Untouched memory reads as zero.
	if m.Read32(0x9999_0000) != 0 {
		t.Fatal("cold memory not zero")
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // straddles the first page boundary
	m.Write32(addr, 0x11223344)
	if got := m.Read32(addr); got != 0x11223344 {
		t.Fatalf("cross-page word = 0x%x", got)
	}
	if m.PageCount() != 2 {
		t.Fatalf("PageCount = %d, want 2", m.PageCount())
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint32) bool {
		addr &= 0x0fff_ffff
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBytesAndCString(t *testing.T) {
	m := NewMemory()
	m.WriteBlock(0x2000, []byte("hello\x00world"))
	s, err := m.ReadCString(0x2000)
	if err != nil || s != "hello" {
		t.Fatalf("ReadCString = %q, %v", s, err)
	}
	if got := string(m.ReadBlock(0x2006, 5)); got != "world" {
		t.Fatalf("ReadBlock = %q", got)
	}
}

// buildProg encodes a list of instructions at the default text base and
// returns a runnable program.
func buildProg(t *testing.T, insts ...isa.Inst) *Program {
	t.Helper()
	var data []byte
	for _, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		data = append(data, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return &Program{
		Entry:    DefaultTextBase,
		Segments: []Segment{{Addr: DefaultTextBase, Data: data}},
	}
}

func exitSeq() []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: SysExit},
		{Op: isa.OpSYSCALL},
	}
}

func TestArithmeticAndHalt(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 40},
		{Op: isa.OpADDIU, Rt: 9, Rs: isa.RegZero, Imm: 2},
		{Op: isa.OpADDU, Rd: 10, Rs: 8, Rt: 9},
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	n, err := e.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Halted() || n != 5 {
		t.Fatalf("halted=%v n=%d", e.Halted(), n)
	}
	if e.Reg(10) != 42 {
		t.Fatalf("$t2 = %d, want 42", e.Reg(10))
	}
}

func TestLoadsStoresSignExtension(t *testing.T) {
	base := uint32(0x1000_0000)
	insts := []isa.Inst{
		{Op: isa.OpLUI, Rt: 8, Imm: int32(base >> 16)},     // $t0 = base
		{Op: isa.OpADDIU, Rt: 9, Rs: isa.RegZero, Imm: -2}, // $t1 = 0xfffffffe
		{Op: isa.OpSW, Rs: 8, Rt: 9, Imm: 0},
		{Op: isa.OpLB, Rs: 8, Rt: 10, Imm: 0},  // 0xfe sign extended
		{Op: isa.OpLBU, Rs: 8, Rt: 11, Imm: 0}, // 0xfe zero extended
		{Op: isa.OpLH, Rs: 8, Rt: 12, Imm: 0},  // 0xfffe sign extended
		{Op: isa.OpLHU, Rs: 8, Rt: 13, Imm: 0},
		{Op: isa.OpLW, Rs: 8, Rt: 14, Imm: 0},
		{Op: isa.OpSB, Rs: 8, Rt: 9, Imm: 5},
		{Op: isa.OpLBU, Rs: 8, Rt: 15, Imm: 5},
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	checks := map[isa.Reg]uint32{
		10: 0xffff_fffe, 11: 0xfe, 12: 0xffff_fffe, 13: 0xfffe,
		14: 0xffff_fffe, 15: 0xfe,
	}
	for r, want := range checks {
		if got := e.Reg(r); got != want {
			t.Errorf("reg %v = 0x%x, want 0x%x", r, got, want)
		}
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 with a bne loop.
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 10}, // counter
		{Op: isa.OpADDIU, Rt: 9, Rs: isa.RegZero, Imm: 0},  // sum
		// loop:
		{Op: isa.OpADDU, Rd: 9, Rs: 9, Rt: 8},
		{Op: isa.OpADDIU, Rt: 8, Rs: 8, Imm: -1},
		{Op: isa.OpBNE, Rs: 8, Rt: isa.RegZero, Imm: -3},
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.Reg(9) != 55 {
		t.Fatalf("sum = %d, want 55", e.Reg(9))
	}
}

func TestJalAndJr(t *testing.T) {
	// main: jal f; exit. f: $t0=7; jr $ra
	fAddr := uint32(DefaultTextBase + 5*4)
	insts := []isa.Inst{
		{Op: isa.OpJAL, Target: fAddr >> 2},
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: SysExit},
		{Op: isa.OpSYSCALL},
		{Op: isa.OpNOP},
		{Op: isa.OpNOP},
		// f:
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 7},
		{Op: isa.OpJR, Rs: isa.RegRA},
	}
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.Reg(8) != 7 {
		t.Fatalf("$t0 = %d, want 7", e.Reg(8))
	}
	if !e.Halted() {
		t.Fatal("did not return from call")
	}
}

func TestMultDivHiLo(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: -7},
		{Op: isa.OpADDIU, Rt: 9, Rs: isa.RegZero, Imm: 3},
		{Op: isa.OpMULT, Rs: 8, Rt: 9},
		{Op: isa.OpMFLO, Rd: 10}, // -21
		{Op: isa.OpMFHI, Rd: 11}, // sign extension: 0xffffffff
		{Op: isa.OpDIV, Rs: 8, Rt: 9},
		{Op: isa.OpMFLO, Rd: 12}, // -2 (trunc toward zero)
		{Op: isa.OpMFHI, Rd: 13}, // -1 remainder
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if int32(e.Reg(10)) != -21 || e.Reg(11) != 0xffff_ffff {
		t.Fatalf("mult: lo=%d hi=0x%x", int32(e.Reg(10)), e.Reg(11))
	}
	if int32(e.Reg(12)) != -2 || int32(e.Reg(13)) != -1 {
		t.Fatalf("div: q=%d r=%d", int32(e.Reg(12)), int32(e.Reg(13)))
	}
}

func TestShifts(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: -8}, // 0xfffffff8
		{Op: isa.OpSLL, Rd: 9, Rt: 8, Shamt: 4},
		{Op: isa.OpSRL, Rd: 10, Rt: 8, Shamt: 4},
		{Op: isa.OpSRA, Rd: 11, Rt: 8, Shamt: 4},
		{Op: isa.OpADDIU, Rt: 12, Rs: isa.RegZero, Imm: 8},
		{Op: isa.OpSLLV, Rd: 13, Rt: 8, Rs: 12},
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.Reg(9) != 0xffff_ff80 || e.Reg(10) != 0x0fff_ffff ||
		e.Reg(11) != 0xffff_ffff || e.Reg(13) != 0xff_fff800&0xffff_ffff {
		t.Fatalf("shifts: %x %x %x %x", e.Reg(9), e.Reg(10), e.Reg(11), e.Reg(13))
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: isa.RegZero, Rs: isa.RegZero, Imm: 99},
		{Op: isa.OpADDU, Rd: 8, Rs: isa.RegZero, Rt: isa.RegZero},
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.Reg(isa.RegZero) != 0 || e.Reg(8) != 0 {
		t.Fatal("$zero was written")
	}
}

func TestSyscallsPrintAndInput(t *testing.T) {
	msg := uint32(0x1000_0000)
	insts := []isa.Inst{
		// print_int(-5)
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: SysPrintInt},
		{Op: isa.OpADDIU, Rt: isa.RegA0, Rs: isa.RegZero, Imm: -5},
		{Op: isa.OpSYSCALL},
		// print_char('!')
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: SysPrintChar},
		{Op: isa.OpADDIU, Rt: isa.RegA0, Rs: isa.RegZero, Imm: '!'},
		{Op: isa.OpSYSCALL},
		// print_string(msg)
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: SysPrintString},
		{Op: isa.OpLUI, Rt: isa.RegA0, Imm: int32(msg >> 16)},
		{Op: isa.OpSYSCALL},
		// read_int -> $t0
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: SysReadInt},
		{Op: isa.OpSYSCALL},
		{Op: isa.OpADDU, Rd: 8, Rs: isa.RegV0, Rt: isa.RegZero},
		// sbrk(16) -> $t1
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: SysSbrk},
		{Op: isa.OpADDIU, Rt: isa.RegA0, Rs: isa.RegZero, Imm: 16},
		{Op: isa.OpSYSCALL},
		{Op: isa.OpADDU, Rd: 9, Rs: isa.RegV0, Rt: isa.RegZero},
	}
	insts = append(insts, exitSeq()...)
	prog := buildProg(t, insts...)
	prog.Segments = append(prog.Segments,
		Segment{Addr: msg, Data: []byte("ok\x00")})
	e := New(prog)
	e.SetInput(1234)
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.Output() != "-5!ok" {
		t.Fatalf("output = %q", e.Output())
	}
	if e.Reg(8) != 1234 {
		t.Fatalf("read_int = %d", e.Reg(8))
	}
	if e.Reg(9) != DefaultBreakBase {
		t.Fatalf("sbrk = 0x%x", e.Reg(9))
	}
}

func TestDynInstRecords(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 0x100},
		{Op: isa.OpSW, Rs: 8, Rt: 8, Imm: 4},
		{Op: isa.OpLW, Rs: 8, Rt: 9, Imm: 4},
		{Op: isa.OpBEQ, Rs: 8, Rt: 9, Imm: 1}, // taken
		{Op: isa.OpNOP},                       // skipped
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	var recs []DynInst
	if _, err := e.Run(0, func(d *DynInst) { recs = append(recs, *d) }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 { // nop is skipped by the taken branch
		t.Fatalf("executed %d insts", len(recs))
	}
	sw := recs[1]
	if sw.EffAddr != 0x104 || sw.MemSize != 0 {
		// MemSize is only set via Inst.Op; check via op instead.
		if sw.Inst.Op.MemSize() != 4 {
			t.Fatalf("sw record wrong: %+v", sw)
		}
	}
	lw := recs[2]
	if lw.EffAddr != 0x104 || lw.DstVal != 0x100 || lw.Dst != 9 {
		t.Fatalf("lw record wrong: %+v", lw)
	}
	br := recs[3]
	if !br.Taken || br.Target != br.PC+8 || br.NextPC != br.Target {
		t.Fatalf("branch record wrong: %+v", br)
	}
	if br.NSrc != 2 || br.SrcVal[0] != 0x100 || br.SrcVal[1] != 0x100 {
		t.Fatalf("branch sources wrong: %+v", br)
	}
	// Sequence numbers are dense.
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("seq %d at index %d", r.Seq, i)
		}
	}
}

func TestStepAfterHalt(t *testing.T) {
	e := New(buildProg(t, exitSeq()...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != ErrHalted {
		t.Fatalf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestRunMaxInsts(t *testing.T) {
	// Infinite loop; Run must stop at the cap.
	insts := []isa.Inst{{Op: isa.OpBEQ, Imm: -1}}
	e := New(buildProg(t, insts...))
	n, err := e.Run(100, nil)
	if err != nil || n != 100 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if e.Halted() {
		t.Fatal("should not be halted")
	}
}

func TestFloatingPoint(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 3},
		{Op: isa.OpMTC1, Rt: 8, Rd: isa.RegF0},
		{Op: isa.OpCVTSW, Rs: isa.RegF0, Rd: isa.RegF0 + 1},                       // f1 = 3.0
		{Op: isa.OpADDS, Rs: isa.RegF0 + 1, Rt: isa.RegF0 + 1, Rd: isa.RegF0 + 2}, // 6.0
		{Op: isa.OpMULS, Rs: isa.RegF0 + 2, Rt: isa.RegF0 + 1, Rd: isa.RegF0 + 3}, // 18.0
		{Op: isa.OpCVTWS, Rs: isa.RegF0 + 3, Rd: isa.RegF0 + 4},
		{Op: isa.OpMFC1, Rt: 9, Rs: isa.RegF0 + 4},
		{Op: isa.OpCLTS, Rs: isa.RegF0 + 1, Rt: isa.RegF0 + 2}, // 3 < 6 -> fcc=1
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.Reg(9) != 18 {
		t.Fatalf("fp chain = %d, want 18", e.Reg(9))
	}
	if e.Reg(isa.RegFCC) != 1 {
		t.Fatal("fcc not set")
	}
}

func TestUndecodableFaults(t *testing.T) {
	prog := &Program{
		Entry: DefaultTextBase,
		Segments: []Segment{{Addr: DefaultTextBase,
			Data: []byte{0xff, 0xff, 0xff, 0xff}}},
	}
	e := New(prog)
	if _, err := e.Step(); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestForkIsolation(t *testing.T) {
	// Parent computes a value; fork overwrites memory and registers and
	// must not leak back.
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 0x1000},
		{Op: isa.OpADDIU, Rt: 9, Rs: isa.RegZero, Imm: 77},
		{Op: isa.OpSW, Rs: 8, Rt: 9, Imm: 0},
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	for i := 0; i < 3; i++ { // run the three setup instructions
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Mem.Read32(0x1000) != 77 {
		t.Fatal("setup failed")
	}

	// Fork re-pointed at the sw so it overwrites the word speculatively.
	f2 := e.Fork(swPC())
	f2.SetReg(9, 999)
	if _, err := f2.Step(); err != nil {
		t.Fatal(err)
	}
	if f2.Mem.Read32(0x1000) != 999 {
		t.Fatal("fork store not visible in fork")
	}
	if e.Mem.Read32(0x1000) != 77 {
		t.Fatal("fork store leaked into parent")
	}
	if e.Reg(9) != 77 {
		t.Fatal("fork register write leaked")
	}
	// Fork reads through to parent memory it never wrote.
	if f2.Mem.Read32(0x1000+4) != 0 {
		t.Fatal("read-through wrong")
	}
}

// swPC returns the address of the sw instruction in TestForkIsolation.
func swPC() uint32 { return DefaultTextBase + 2*4 }

func TestOverlayBasics(t *testing.T) {
	base := NewMemory()
	base.Write32(0x100, 0xaabbccdd)
	o := NewOverlay(base)
	if o.Read32(0x100) != 0xaabbccdd {
		t.Fatal("read-through failed")
	}
	o.Write8(0x101, 0xff)
	if o.Read32(0x100) != 0xaabbffdd {
		t.Fatalf("merged read = %x", o.Read32(0x100))
	}
	if base.Read32(0x100) != 0xaabbccdd {
		t.Fatal("overlay leaked")
	}
	o.Write16(0x200, 0x1234)
	o.Write32(0x204, 0xdeadbeef)
	if o.Read16(0x200) != 0x1234 || o.Read32(0x204) != 0xdeadbeef {
		t.Fatal("private reads")
	}
	if o.WriteCount() != 7 {
		t.Fatalf("write count %d", o.WriteCount())
	}
	base.WriteBlock(0x300, []byte("hi\x00"))
	s, err := o.ReadCString(0x300)
	if err != nil || s != "hi" {
		t.Fatal("cstring through overlay")
	}
	// Nested overlays compose.
	o2 := NewOverlay(o)
	o2.Write8(0x101, 0x11)
	if o.Read8(0x101) != 0xff || o2.Read8(0x101) != 0x11 {
		t.Fatal("nesting broken")
	}
}

// TestRemainingOpsAndAccessors sweeps the ops and accessors not covered
// by the focused tests: HI/LO moves, unsigned compares, remaining shifts
// and FP transfers, plus the small introspection methods.
func TestRemainingOpsAndAccessors(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 5},
		{Op: isa.OpMTHI, Rs: 8}, // hi = 5
		{Op: isa.OpMTLO, Rs: 8}, // lo = 5
		{Op: isa.OpMFHI, Rd: 9}, // 5
		{Op: isa.OpADDIU, Rt: 10, Rs: isa.RegZero, Imm: -1},
		{Op: isa.OpSLTU, Rd: 11, Rs: 8, Rt: 10},    // 5 <u 0xffffffff = 1
		{Op: isa.OpSLTIU, Rt: 12, Rs: 8, Imm: 4},   // 5 <u 4 = 0
		{Op: isa.OpSLT, Rd: 13, Rs: 10, Rt: 8},     // -1 < 5 = 1
		{Op: isa.OpSLTI, Rt: 14, Rs: 10, Imm: 0},   // -1 < 0 = 1
		{Op: isa.OpSRAV, Rd: 15, Rt: 10, Rs: 8},    // -1 >> 5 = -1
		{Op: isa.OpSRLV, Rd: 24, Rt: 10, Rs: 8},    // logical
		{Op: isa.OpXORI, Rt: 25, Rs: 8, Imm: 0xff}, // 0xfa
		{Op: isa.OpNOR, Rd: 16, Rs: 8, Rt: isa.RegZero},
		{Op: isa.OpDIVU, Rs: 10, Rt: 8}, // 0xffffffff / 5
		{Op: isa.OpMFLO, Rd: 17},
		{Op: isa.OpMULTU, Rs: 10, Rt: 10},
		{Op: isa.OpMFHI, Rd: 18},
		{Op: isa.OpBLTZ, Rs: 10, Imm: 1},          // taken
		{Op: isa.OpNOP},                           // skipped
		{Op: isa.OpBGEZ, Rs: 8, Imm: 1},           // taken
		{Op: isa.OpNOP},                           // skipped
		{Op: isa.OpBLEZ, Rs: isa.RegZero, Imm: 1}, // taken
		{Op: isa.OpNOP},                           // skipped
		{Op: isa.OpBGTZ, Rs: 8, Imm: 1},           // taken
		{Op: isa.OpNOP},                           // skipped
		{Op: isa.OpBREAK},
		// FP corners.
		{Op: isa.OpMTC1, Rt: 8, Rd: isa.RegF0},
		{Op: isa.OpCVTSW, Rs: isa.RegF0, Rd: isa.RegF0 + 1}, // 5.0
		{Op: isa.OpSQRTS, Rs: isa.RegF0 + 1, Rd: isa.RegF0 + 2},
		{Op: isa.OpNEGS, Rs: isa.RegF0 + 1, Rd: isa.RegF0 + 3},
		{Op: isa.OpABSS, Rs: isa.RegF0 + 3, Rd: isa.RegF0 + 4},
		{Op: isa.OpMOVS, Rs: isa.RegF0 + 4, Rd: isa.RegF0 + 5},
		{Op: isa.OpSUBS, Rs: isa.RegF0 + 1, Rt: isa.RegF0 + 1, Rd: isa.RegF0 + 6},
		{Op: isa.OpDIVS, Rs: isa.RegF0 + 1, Rt: isa.RegF0 + 1, Rd: isa.RegF0 + 7},
		{Op: isa.OpCEQS, Rs: isa.RegF0 + 1, Rt: isa.RegF0 + 1}, // fcc=1
		{Op: isa.OpBC1T, Imm: 1},                               // taken
		{Op: isa.OpNOP},
		{Op: isa.OpCLES, Rs: isa.RegF0 + 1, Rt: isa.RegF0 + 6}, // 5<=0? no
		{Op: isa.OpBC1F, Imm: 1},                               // taken
		{Op: isa.OpNOP},
		{Op: isa.OpLWC1, Rs: isa.RegGP, Rt: isa.RegF0 + 8, Imm: 0},
		{Op: isa.OpSWC1, Rs: isa.RegGP, Rt: isa.RegF0 + 5, Imm: 4},
		{Op: isa.OpSH, Rs: isa.RegGP, Rt: 8, Imm: 8},
		{Op: isa.OpLH, Rs: isa.RegGP, Rt: 19, Imm: 8},
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	if e.PC() != DefaultTextBase {
		t.Fatal("PC accessor")
	}
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.InstCount() == 0 || e.ExitCode() != 0 {
		t.Fatal("accessors")
	}
	checks := map[isa.Reg]uint32{
		9: 5, 11: 1, 12: 0, 13: 1, 14: 1,
		15: 0xffff_ffff, 24: 0x07ff_ffff, 25: 0xfa,
		16: ^uint32(5), 17: 0xffff_ffff / 5, 19: 5,
	}
	for r, want := range checks {
		if got := e.Reg(r); got != want {
			t.Errorf("reg %v = 0x%x, want 0x%x", r, got, want)
		}
	}
	if e.Reg(isa.RegF0+5) != e.Reg(isa.RegF0+1) {
		t.Error("FP move chain broken")
	}
	// sw via swc1 landed at gp+4.
	if e.Mem.Read32(DefaultDataBase+4) != e.Reg(isa.RegF0+5) {
		t.Error("swc1 value wrong")
	}
}

func TestDivCorners(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 7},
		{Op: isa.OpDIV, Rs: 8, Rt: isa.RegZero}, // div by zero: fixed values
		{Op: isa.OpMFLO, Rd: 9},
		{Op: isa.OpMFHI, Rd: 10},
		{Op: isa.OpLUI, Rt: 11, Imm: 0x8000}, // INT_MIN
		{Op: isa.OpADDIU, Rt: 12, Rs: isa.RegZero, Imm: -1},
		{Op: isa.OpDIV, Rs: 11, Rt: 12}, // overflow case
		{Op: isa.OpMFLO, Rd: 13},
		{Op: isa.OpDIVU, Rs: 8, Rt: isa.RegZero},
		{Op: isa.OpMFLO, Rd: 14},
	}
	insts = append(insts, exitSeq()...)
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if e.Reg(9) != ^uint32(0) || e.Reg(10) != 7 {
		t.Fatalf("div-by-zero convention: lo=%x hi=%x", e.Reg(9), e.Reg(10))
	}
	if e.Reg(13) != 0x8000_0000 {
		t.Fatalf("INT_MIN/-1 = %x", e.Reg(13))
	}
	if e.Reg(14) != ^uint32(0) {
		t.Fatalf("divu-by-zero = %x", e.Reg(14))
	}
}

func TestUnknownSyscallAndUnterminatedString(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: 99},
		{Op: isa.OpSYSCALL},
	}
	e := New(buildProg(t, insts...))
	if _, err := e.Run(0, nil); err == nil {
		t.Fatal("unknown syscall accepted")
	}
	// print_string on a string with no NUL within 1MB.
	m := NewMemory()
	for a := uint32(0); a < 1<<20+8; a++ {
		m.Write8(0x1000+a, 'x')
	}
	if _, err := m.ReadCString(0x1000); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestOutputCap(t *testing.T) {
	// Printing beyond MaxOutput truncates rather than grows.
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: isa.RegV0, Rs: isa.RegZero, Imm: SysPrintChar},
		{Op: isa.OpADDIU, Rt: isa.RegA0, Rs: isa.RegZero, Imm: 'x'},
		{Op: isa.OpSYSCALL},
		{Op: isa.OpBEQ, Imm: -4}, // loop forever
	}
	e := New(buildProg(t, insts...))
	e.MaxOutput = 10
	if _, err := e.Run(1000, nil); err != nil {
		t.Fatal(err)
	}
	if len(e.Output()) > 10 {
		t.Fatalf("output grew to %d bytes", len(e.Output()))
	}
}
