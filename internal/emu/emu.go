package emu

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"pok/internal/isa"
)

// Program is a loadable memory image plus an entry point. The assembler in
// internal/asm produces Programs; the emulator and the timing model load
// them.
type Program struct {
	Entry    uint32
	Segments []Segment
	Symbols  map[string]uint32
}

// Segment is a contiguous chunk of initialized memory.
type Segment struct {
	Addr uint32
	Data []byte
}

// DynInst records one dynamically executed instruction: the decoded
// instruction plus the architectural values it consumed and produced. The
// timing model and the bit-level characterization experiments both consume
// this record — partial-operand analysis needs actual operand values, not
// just register names.
type DynInst struct {
	Seq  uint64
	PC   uint32
	Inst isa.Inst

	NSrc   int
	Src    [2]isa.Reg
	SrcVal [2]uint32

	Dst     isa.Reg
	DstVal  uint32
	Dst2    isa.Reg // second destination (HI for mult/div), RegZero if none
	Dst2Val uint32

	EffAddr uint32 // memory ops: effective address
	MemSize uint8  // memory ops: access width in bytes

	Taken  bool   // control ops: direction actually taken
	Target uint32 // control ops: taken-path target
	NextPC uint32 // architectural next PC
}

// ErrHalted is returned by Step once the program has exited.
var ErrHalted = errors.New("emu: program halted")

// Default memory layout constants for programs assembled without explicit
// origins.
const (
	DefaultTextBase  = 0x0040_0000
	DefaultDataBase  = 0x1000_0000
	DefaultStackTop  = 0x7fff_f000
	DefaultBreakBase = 0x2000_0000
)

// Emulator executes a Program functionally, one instruction at a time.
type Emulator struct {
	Mem Backend

	regs [isa.NumRegs]uint32
	pc   uint32

	halted   bool
	exitCode int32
	icount   uint64
	brk      uint32

	out    strings.Builder
	inputs []int32 // queue consumed by the read_int syscall

	// decodeCache backs the legacy interpreter only; the fast path uses
	// the dense uop window below.
	decodeCache map[uint32]isa.Inst

	// Direct-threaded fast-path state (see uop.go). utab is the dense
	// predecode window starting at ubase; ufall/uerr the bounded
	// fallback cache for out-of-window PCs; npc and trap carry the next
	// PC and any fault out of a handler; uscratch is the no-cache decode
	// buffer once ufall is full.
	ubase    uint32
	utab     []uop
	ufall    map[uint32]*uop
	uerr     map[uint32]error
	npc      uint32
	trap     error
	uscratch uop

	// legacy selects the original switch-dispatch interpreter (kept for
	// differential testing of the direct-threaded fast path).
	legacy bool

	// MaxOutput bounds the captured program output (default 1MB).
	MaxOutput int
}

// New creates an emulator with prog loaded, the stack pointer initialized
// and the PC at the entry point.
func New(prog *Program) *Emulator {
	mem := NewMemory()
	for _, s := range prog.Segments {
		mem.WriteBlock(s.Addr, s.Data)
	}
	e := &Emulator{
		Mem:         mem,
		pc:          prog.Entry,
		brk:         DefaultBreakBase,
		decodeCache: make(map[uint32]isa.Inst),
		MaxOutput:   1 << 20,
	}
	e.regs[isa.RegSP] = DefaultStackTop
	e.regs[isa.RegGP] = DefaultDataBase
	e.initFast(prog)
	return e
}

// SetLegacy switches between the direct-threaded fast path (default)
// and the original switch-dispatch interpreter. Both produce identical
// DynInst streams; the legacy path exists as the differential-testing
// reference. Call before execution starts.
func (e *Emulator) SetLegacy(on bool) { e.legacy = on }

// Legacy reports whether the original switch-dispatch interpreter is
// selected.
func (e *Emulator) Legacy() bool { return e.legacy }

// Fork returns a speculative copy of the emulator starting at pc: the
// registers are duplicated and memory writes go to a private
// copy-on-write overlay, so the fork can run down a mispredicted path
// without disturbing this emulator's architectural state. The fork shares
// this emulator's instruction counter baseline but advances its own.
func (e *Emulator) Fork(pc uint32) *Emulator {
	f := &Emulator{
		Mem:         NewOverlay(e.Mem),
		regs:        e.regs,
		pc:          pc,
		brk:         e.brk,
		icount:      e.icount,
		decodeCache: make(map[uint32]isa.Inst),
		legacy:      e.legacy,
		MaxOutput:   1 << 16,
	}
	// No dense predecode window: like the legacy per-fork decode map,
	// the fork decodes lazily (through its overlay) via the fallback
	// cache, so speculative stores to instruction words are honoured.
	return f
}

// SetInput queues values for the read_int syscall.
func (e *Emulator) SetInput(vals ...int32) { e.inputs = append(e.inputs, vals...) }

// Reg returns the current value of architectural register r.
func (e *Emulator) Reg(r isa.Reg) uint32 { return e.regs[r] }

// SetReg sets architectural register r (writes to $zero are ignored).
func (e *Emulator) SetReg(r isa.Reg, v uint32) {
	if r != isa.RegZero {
		e.regs[r] = v
	}
}

// PC returns the current program counter.
func (e *Emulator) PC() uint32 { return e.pc }

// Halted reports whether the program has exited.
func (e *Emulator) Halted() bool { return e.halted }

// ExitCode returns the value passed to the exit syscall.
func (e *Emulator) ExitCode() int32 { return e.exitCode }

// InstCount returns the number of instructions executed so far.
func (e *Emulator) InstCount() uint64 { return e.icount }

// Output returns everything the program printed.
func (e *Emulator) Output() string { return e.out.String() }

func (e *Emulator) decode(pc uint32) (isa.Inst, error) {
	if in, ok := e.decodeCache[pc]; ok {
		return in, nil
	}
	in, err := isa.Decode(e.Mem.Read32(pc))
	if err != nil {
		return in, fmt.Errorf("at pc 0x%08x: %w", pc, err)
	}
	e.decodeCache[pc] = in
	return in, nil
}

func fbits(f float32) uint32 { return math.Float32bits(f) }
func bitsf(b uint32) float32 { return math.Float32frombits(b) }
func branchTarget(pc uint32, imm int32) uint32 {
	return uint32(int64(pc) + 4 + int64(imm)*4)
}

// Step executes one instruction and returns its dynamic record.
func (e *Emulator) Step() (DynInst, error) {
	var d DynInst
	err := e.StepInto(&d)
	return d, err
}

// stepLegacy is the original switch-dispatch interpreter, kept as the
// differential-testing reference for the direct-threaded fast path in
// uop.go (see Config.LegacyEmulator / SetLegacy).
func (e *Emulator) stepLegacy() (DynInst, error) {
	if e.halted {
		return DynInst{}, ErrHalted
	}
	in, err := e.decode(e.pc)
	if err != nil {
		return DynInst{}, err
	}

	d := DynInst{Seq: e.icount, PC: e.pc, Inst: in, Dst: isa.RegZero, Dst2: isa.RegZero}
	for _, s := range in.Sources() {
		if d.NSrc < 2 {
			d.Src[d.NSrc] = s
			d.SrcVal[d.NSrc] = e.regs[s]
			d.NSrc++
		}
	}

	rs := e.regs[in.Rs]
	rt := e.regs[in.Rt]
	nextPC := e.pc + 4

	setDst := func(r isa.Reg, v uint32) {
		d.Dst = r
		d.DstVal = v
		e.SetReg(r, v)
		if r == isa.RegZero {
			d.DstVal = 0
		}
	}
	setHILO := func(hi, lo uint32) {
		e.regs[isa.RegHI] = hi
		e.regs[isa.RegLO] = lo
		d.Dst, d.DstVal = isa.RegLO, lo
		d.Dst2, d.Dst2Val = isa.RegHI, hi
	}
	takeBranch := func(taken bool, target uint32) {
		d.Taken = taken
		d.Target = target
		if taken {
			nextPC = target
		}
	}

	switch in.Op {
	case isa.OpNOP, isa.OpBREAK:
	case isa.OpADD, isa.OpADDU:
		setDst(in.Rd, rs+rt)
	case isa.OpSUB, isa.OpSUBU:
		setDst(in.Rd, rs-rt)
	case isa.OpADDI, isa.OpADDIU:
		setDst(in.Rt, rs+uint32(in.Imm))
	case isa.OpSLT:
		v := uint32(0)
		if int32(rs) < int32(rt) {
			v = 1
		}
		setDst(in.Rd, v)
	case isa.OpSLTU:
		v := uint32(0)
		if rs < rt {
			v = 1
		}
		setDst(in.Rd, v)
	case isa.OpSLTI:
		v := uint32(0)
		if int32(rs) < in.Imm {
			v = 1
		}
		setDst(in.Rt, v)
	case isa.OpSLTIU:
		v := uint32(0)
		if rs < uint32(in.Imm) {
			v = 1
		}
		setDst(in.Rt, v)
	case isa.OpAND:
		setDst(in.Rd, rs&rt)
	case isa.OpOR:
		setDst(in.Rd, rs|rt)
	case isa.OpXOR:
		setDst(in.Rd, rs^rt)
	case isa.OpNOR:
		setDst(in.Rd, ^(rs | rt))
	case isa.OpANDI:
		setDst(in.Rt, rs&uint32(in.Imm))
	case isa.OpORI:
		setDst(in.Rt, rs|uint32(in.Imm))
	case isa.OpXORI:
		setDst(in.Rt, rs^uint32(in.Imm))
	case isa.OpLUI:
		setDst(in.Rt, uint32(in.Imm)<<16)
	case isa.OpSLL:
		setDst(in.Rd, rt<<in.Shamt)
	case isa.OpSRL:
		setDst(in.Rd, rt>>in.Shamt)
	case isa.OpSRA:
		setDst(in.Rd, uint32(int32(rt)>>in.Shamt))
	case isa.OpSLLV:
		setDst(in.Rd, rt<<(rs&31))
	case isa.OpSRLV:
		setDst(in.Rd, rt>>(rs&31))
	case isa.OpSRAV:
		setDst(in.Rd, uint32(int32(rt)>>(rs&31)))
	case isa.OpMULT:
		p := int64(int32(rs)) * int64(int32(rt))
		setHILO(uint32(uint64(p)>>32), uint32(uint64(p)))
	case isa.OpMULTU:
		p := uint64(rs) * uint64(rt)
		setHILO(uint32(p>>32), uint32(p))
	case isa.OpDIV:
		if rt == 0 {
			setHILO(rs, ^uint32(0)) // MIPS leaves this undefined; pick a fixed value
		} else if int32(rs) == math.MinInt32 && int32(rt) == -1 {
			setHILO(0, rs) // overflow case: quotient wraps
		} else {
			setHILO(uint32(int32(rs)%int32(rt)), uint32(int32(rs)/int32(rt)))
		}
	case isa.OpDIVU:
		if rt == 0 {
			setHILO(rs, ^uint32(0))
		} else {
			setHILO(rs%rt, rs/rt)
		}
	case isa.OpMFHI:
		setDst(in.Rd, e.regs[isa.RegHI])
	case isa.OpMFLO:
		setDst(in.Rd, e.regs[isa.RegLO])
	case isa.OpMTHI:
		setDst(isa.RegHI, rs)
	case isa.OpMTLO:
		setDst(isa.RegLO, rs)

	case isa.OpLB:
		d.EffAddr = rs + uint32(in.Imm)
		setDst(in.Rt, uint32(int32(int8(e.Mem.Read8(d.EffAddr)))))
	case isa.OpLBU:
		d.EffAddr = rs + uint32(in.Imm)
		setDst(in.Rt, uint32(e.Mem.Read8(d.EffAddr)))
	case isa.OpLH:
		d.EffAddr = rs + uint32(in.Imm)
		setDst(in.Rt, uint32(int32(int16(e.Mem.Read16(d.EffAddr)))))
	case isa.OpLHU:
		d.EffAddr = rs + uint32(in.Imm)
		setDst(in.Rt, uint32(e.Mem.Read16(d.EffAddr)))
	case isa.OpLW, isa.OpLWC1:
		d.EffAddr = rs + uint32(in.Imm)
		setDst(in.Rt, e.Mem.Read32(d.EffAddr))
	case isa.OpSB:
		d.EffAddr = rs + uint32(in.Imm)
		e.Mem.Write8(d.EffAddr, byte(rt))
	case isa.OpSH:
		d.EffAddr = rs + uint32(in.Imm)
		e.Mem.Write16(d.EffAddr, uint16(rt))
	case isa.OpSW:
		d.EffAddr = rs + uint32(in.Imm)
		e.Mem.Write32(d.EffAddr, rt)
	case isa.OpSWC1:
		d.EffAddr = rs + uint32(in.Imm)
		e.Mem.Write32(d.EffAddr, e.regs[in.Rt])

	case isa.OpBEQ:
		takeBranch(rs == rt, branchTarget(e.pc, in.Imm))
	case isa.OpBNE:
		takeBranch(rs != rt, branchTarget(e.pc, in.Imm))
	case isa.OpBLEZ:
		takeBranch(int32(rs) <= 0, branchTarget(e.pc, in.Imm))
	case isa.OpBGTZ:
		takeBranch(int32(rs) > 0, branchTarget(e.pc, in.Imm))
	case isa.OpBLTZ:
		takeBranch(int32(rs) < 0, branchTarget(e.pc, in.Imm))
	case isa.OpBGEZ:
		takeBranch(int32(rs) >= 0, branchTarget(e.pc, in.Imm))
	case isa.OpBC1T:
		takeBranch(e.regs[isa.RegFCC] != 0, branchTarget(e.pc, in.Imm))
	case isa.OpBC1F:
		takeBranch(e.regs[isa.RegFCC] == 0, branchTarget(e.pc, in.Imm))
	case isa.OpJ:
		takeBranch(true, (e.pc+4)&0xf000_0000|in.Target<<2)
	case isa.OpJAL:
		setDst(isa.RegRA, e.pc+4)
		takeBranch(true, (e.pc+4)&0xf000_0000|in.Target<<2)
	case isa.OpJR:
		takeBranch(true, rs)
	case isa.OpJALR:
		setDst(in.Rd, e.pc+4)
		takeBranch(true, rs)

	case isa.OpADDS:
		setDst(in.Rd, fbits(bitsf(e.regs[in.Rs])+bitsf(e.regs[in.Rt])))
	case isa.OpSUBS:
		setDst(in.Rd, fbits(bitsf(e.regs[in.Rs])-bitsf(e.regs[in.Rt])))
	case isa.OpMULS:
		setDst(in.Rd, fbits(bitsf(e.regs[in.Rs])*bitsf(e.regs[in.Rt])))
	case isa.OpDIVS:
		setDst(in.Rd, fbits(bitsf(e.regs[in.Rs])/bitsf(e.regs[in.Rt])))
	case isa.OpSQRTS:
		setDst(in.Rd, fbits(float32(math.Sqrt(float64(bitsf(e.regs[in.Rs]))))))
	case isa.OpABSS:
		setDst(in.Rd, e.regs[in.Rs]&0x7fff_ffff)
	case isa.OpNEGS:
		setDst(in.Rd, e.regs[in.Rs]^0x8000_0000)
	case isa.OpMOVS:
		setDst(in.Rd, e.regs[in.Rs])
	case isa.OpCVTSW:
		setDst(in.Rd, fbits(float32(int32(e.regs[in.Rs]))))
	case isa.OpCVTWS:
		setDst(in.Rd, uint32(int32(bitsf(e.regs[in.Rs]))))
	case isa.OpCEQS:
		v := uint32(0)
		if bitsf(e.regs[in.Rs]) == bitsf(e.regs[in.Rt]) {
			v = 1
		}
		setDst(isa.RegFCC, v)
	case isa.OpCLTS:
		v := uint32(0)
		if bitsf(e.regs[in.Rs]) < bitsf(e.regs[in.Rt]) {
			v = 1
		}
		setDst(isa.RegFCC, v)
	case isa.OpCLES:
		v := uint32(0)
		if bitsf(e.regs[in.Rs]) <= bitsf(e.regs[in.Rt]) {
			v = 1
		}
		setDst(isa.RegFCC, v)
	case isa.OpMFC1:
		setDst(in.Rt, e.regs[in.Rs])
	case isa.OpMTC1:
		setDst(in.Rd, e.regs[in.Rt])

	case isa.OpSYSCALL:
		if err := e.syscall(&d); err != nil {
			return d, err
		}

	default:
		return d, fmt.Errorf("emu: unimplemented op %v at 0x%08x", in.Op, e.pc)
	}

	d.NextPC = nextPC
	e.pc = nextPC
	e.icount++
	return d, nil
}

// Syscall numbers (SPIM-compatible subset).
const (
	SysPrintInt    = 1
	SysPrintString = 4
	SysReadInt     = 5
	SysSbrk        = 9
	SysExit        = 10
	SysPrintChar   = 11
)

func (e *Emulator) syscall(d *DynInst) error {
	code := e.regs[isa.RegV0]
	a0 := e.regs[isa.RegA0]
	switch code {
	case SysPrintInt:
		e.print(fmt.Sprintf("%d", int32(a0)))
	case SysPrintString:
		s, err := e.Mem.ReadCString(a0)
		if err != nil {
			return err
		}
		e.print(s)
	case SysReadInt:
		var v int32
		if len(e.inputs) > 0 {
			v, e.inputs = e.inputs[0], e.inputs[1:]
		}
		e.regs[isa.RegV0] = uint32(v)
		d.Dst, d.DstVal = isa.RegV0, uint32(v)
	case SysSbrk:
		old := e.brk
		e.brk += a0
		e.regs[isa.RegV0] = old
		d.Dst, d.DstVal = isa.RegV0, old
	case SysExit:
		e.halted = true
		e.exitCode = int32(a0)
	case SysPrintChar:
		e.print(string(rune(a0)))
	default:
		return fmt.Errorf("emu: unknown syscall %d at 0x%08x", code, e.pc)
	}
	return nil
}

func (e *Emulator) print(s string) {
	if e.out.Len()+len(s) <= e.MaxOutput {
		e.out.WriteString(s)
	}
}

// Run executes until the program halts or maxInsts instructions have
// executed (0 means no limit), invoking visit for each instruction if
// visit is non-nil. It returns the number of instructions executed.
func (e *Emulator) Run(maxInsts uint64, visit func(*DynInst)) (uint64, error) {
	start := e.icount
	if visit == nil {
		// Fast-forward path: reuse one record so the loop stays
		// allocation-free (no caller can observe the discarded records).
		var d DynInst
		for !e.halted {
			if maxInsts > 0 && e.icount-start >= maxInsts {
				break
			}
			if err := e.StepInto(&d); err != nil {
				if errors.Is(err, ErrHalted) {
					break
				}
				return e.icount - start, err
			}
		}
		return e.icount - start, nil
	}
	for !e.halted {
		if maxInsts > 0 && e.icount-start >= maxInsts {
			break
		}
		d, err := e.Step()
		if err != nil {
			if errors.Is(err, ErrHalted) {
				break
			}
			return e.icount - start, err
		}
		visit(&d)
	}
	return e.icount - start, nil
}
