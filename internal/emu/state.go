package emu

import (
	"fmt"
	"sort"

	"pok/internal/isa"
)

// MemPage is one serialized memory page: page number (addr >> 12) and
// its full 4KB contents.
type MemPage struct {
	Num  uint32
	Data []byte // len == PageSize
}

// State is the emulator's complete architectural state, captured at an
// instruction boundary: register file (including HI/LO/FCC by index),
// PC, halt status, instruction count, break pointer, program output,
// pending inputs, and the memory image as a sorted page list. A State
// restored with NewFromState executes bit-identically to the emulator
// it was captured from.
//
// Partial marks a delta capture: Pages holds only pages dirtied since
// the previous snapshot, and the checkpoint layer merges the chain back
// into a full image before restore.
type State struct {
	Regs     [isa.NumRegs]uint32
	PC       uint32
	Halted   bool
	ExitCode int32
	ICount   uint64
	Brk      uint32
	Output   string
	Inputs   []int32
	Legacy   bool

	// UBase/ULen record the dense predecode window geometry so restore
	// rebuilds an empty window of identical shape (decode is lazy and
	// deterministic from memory, so the table contents need not travel).
	UBase uint32
	ULen  int

	Partial bool
	Pages   []MemPage // sorted by Num
}

// Snapshot captures the emulator's architectural state. With deltaOnly
// set, only pages dirtied since the previous Snapshot are included
// (State.Partial = true); either way, the dirty bits are cleared so the
// next delta starts from this point. Only an emulator backed by a plain
// *Memory (not a wrong-path overlay fork) can be snapshotted.
func (e *Emulator) Snapshot(deltaOnly bool) (*State, error) {
	mem, ok := e.Mem.(*Memory)
	if !ok {
		return nil, fmt.Errorf("emu: cannot snapshot an overlay-backed (forked) emulator")
	}
	st := &State{
		Regs:     e.regs,
		PC:       e.pc,
		Halted:   e.halted,
		ExitCode: e.exitCode,
		ICount:   e.icount,
		Brk:      e.brk,
		Output:   e.out.String(),
		Inputs:   append([]int32(nil), e.inputs...),
		Legacy:   e.legacy,
		UBase:    e.ubase,
		ULen:     len(e.utab),
		Partial:  deltaOnly,
	}
	nums := make([]uint32, 0, len(mem.pages))
	for pn, p := range mem.pages {
		if deltaOnly && !p.dirty {
			continue
		}
		nums = append(nums, pn)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	st.Pages = make([]MemPage, len(nums))
	for i, pn := range nums {
		data := make([]byte, pageSize)
		copy(data, mem.pages[pn].data[:])
		st.Pages[i] = MemPage{Num: pn, Data: data}
	}
	mem.clearDirty()
	return st, nil
}

// NewFromState reconstructs an emulator from a full (non-partial)
// snapshot. The dense predecode window is recreated empty with the
// captured geometry; decode refills lazily from the restored memory, so
// execution from here is bit-identical to the original run. (Programs
// that rewrite instruction words they already executed would re-decode
// the new bytes; the lockstep oracle catches any such divergence.)
func NewFromState(st *State) (*Emulator, error) {
	if st.Partial {
		return nil, fmt.Errorf("emu: cannot restore from a partial (delta) snapshot; merge the chain first")
	}
	mem := NewMemory()
	for _, pg := range st.Pages {
		if len(pg.Data) != pageSize {
			return nil, fmt.Errorf("emu: page %#x has %d bytes, want %d", pg.Num, len(pg.Data), pageSize)
		}
		p := new(memPage)
		copy(p.data[:], pg.Data)
		mem.pages[pg.Num] = p
	}
	e := &Emulator{
		Mem:         mem,
		regs:        st.Regs,
		pc:          st.PC,
		halted:      st.Halted,
		exitCode:    st.ExitCode,
		icount:      st.ICount,
		brk:         st.Brk,
		inputs:      append([]int32(nil), st.Inputs...),
		legacy:      st.Legacy,
		decodeCache: make(map[uint32]isa.Inst),
		MaxOutput:   1 << 20,
		ubase:       st.UBase,
		utab:        make([]uop, st.ULen),
	}
	e.out.WriteString(st.Output)
	return e, nil
}

// Merge folds a delta snapshot's pages over this (full) snapshot's and
// adopts the delta's architectural fields, producing the full image at
// the delta's capture point. Pages stay sorted and deduplicated.
func (st *State) Merge(delta *State) *State {
	out := &State{
		Regs:     delta.Regs,
		PC:       delta.PC,
		Halted:   delta.Halted,
		ExitCode: delta.ExitCode,
		ICount:   delta.ICount,
		Brk:      delta.Brk,
		Output:   delta.Output,
		Inputs:   delta.Inputs,
		Legacy:   delta.Legacy,
		UBase:    delta.UBase,
		ULen:     delta.ULen,
	}
	merged := make(map[uint32]MemPage, len(st.Pages)+len(delta.Pages))
	for _, pg := range st.Pages {
		merged[pg.Num] = pg
	}
	for _, pg := range delta.Pages {
		merged[pg.Num] = pg
	}
	nums := make([]uint32, 0, len(merged))
	for pn := range merged {
		nums = append(nums, pn)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	out.Pages = make([]MemPage, len(nums))
	for i, pn := range nums {
		out.Pages[i] = merged[pn]
	}
	return out
}
