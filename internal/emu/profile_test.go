package emu

import (
	"strings"
	"testing"

	"pok/internal/isa"
)

func TestProfileObserve(t *testing.T) {
	p := NewProfile()
	p.Observe(&DynInst{Inst: isa.Inst{Op: isa.OpLW}, EffAddr: 0x100})
	p.Observe(&DynInst{Inst: isa.Inst{Op: isa.OpLW}, EffAddr: 0x104}) // same line
	p.Observe(&DynInst{Inst: isa.Inst{Op: isa.OpSW}, EffAddr: 0x2000})
	p.Observe(&DynInst{Inst: isa.Inst{Op: isa.OpBEQ}, Taken: true})
	p.Observe(&DynInst{Inst: isa.Inst{Op: isa.OpBLEZ}})
	p.Observe(&DynInst{Inst: isa.Inst{Op: isa.OpJ}, Taken: true})
	p.Observe(&DynInst{Inst: isa.Inst{Op: isa.OpADDU}})

	if p.Total != 7 || p.Loads != 2 || p.Stores != 1 || p.Branches != 2 {
		t.Fatalf("counts: %+v", p)
	}
	if p.TakenBranches != 1 || p.EqBranches != 1 || p.SignBranches != 1 || p.Jumps != 1 {
		t.Fatalf("branch mix: %+v", p)
	}
	if p.MemBytes != 12 {
		t.Fatalf("mem bytes %d", p.MemBytes)
	}
	if len(p.UniqueLoadLines) != 1 { // both loads hit line 0x100>>6
		t.Fatalf("unique lines %d", len(p.UniqueLoadLines))
	}
	if got := p.Frac(p.Loads); got != 2.0/7 {
		t.Fatalf("frac %f", got)
	}
	top := p.TopOps(2)
	if len(top) != 2 || top[0].Op != isa.OpLW || top[0].Count != 2 {
		t.Fatalf("top ops %+v", top)
	}
	s := p.String()
	if !strings.Contains(s, "instructions: 7") || !strings.Contains(s, "lw") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestProfileProgram(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpADDIU, Rt: 8, Rs: isa.RegZero, Imm: 3},
		{Op: isa.OpSW, Rs: 8, Rt: 8, Imm: 0x100},
		{Op: isa.OpLW, Rs: 8, Rt: 9, Imm: 0x100},
	}
	insts = append(insts, exitSeq()...)
	prog := buildProg(t, insts...)
	p, err := ProfileProgram(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Loads != 1 || p.Stores != 1 || p.Total != 5 {
		t.Fatalf("profile %+v", p)
	}
	// Empty profile renders without dividing by zero.
	if NewProfile().String() == "" {
		t.Fatal("empty render")
	}
}
