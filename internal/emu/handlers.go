package emu

import (
	"math"

	"pok/internal/isa"
)

// handlerFn executes one predecoded instruction: read operands from the
// register file, write effects into the emulator state and the dynamic
// record. Control flow goes through e.npc; faults through e.trap.
type handlerFn func(e *Emulator, u *uop, d *DynInst)

// handlers is the direct-threaded dispatch table, indexed by opcode. A
// nil entry reproduces the legacy interpreter's "unimplemented op"
// error (only OpInvalid today).
var handlers = [isa.NumOps]handlerFn{
	isa.OpNOP:   hNop,
	isa.OpBREAK: hNop,

	isa.OpADD:   hADD,
	isa.OpADDU:  hADD,
	isa.OpSUB:   hSUB,
	isa.OpSUBU:  hSUB,
	isa.OpADDI:  hADDI,
	isa.OpADDIU: hADDI,
	isa.OpSLT:   hSLT,
	isa.OpSLTU:  hSLTU,
	isa.OpSLTI:  hSLTI,
	isa.OpSLTIU: hSLTIU,
	isa.OpAND:   hAND,
	isa.OpOR:    hOR,
	isa.OpXOR:   hXOR,
	isa.OpNOR:   hNOR,
	isa.OpANDI:  hANDI,
	isa.OpORI:   hORI,
	isa.OpXORI:  hXORI,
	isa.OpLUI:   hLUI,
	isa.OpSLL:   hSLL,
	isa.OpSRL:   hSRL,
	isa.OpSRA:   hSRA,
	isa.OpSLLV:  hSLLV,
	isa.OpSRLV:  hSRLV,
	isa.OpSRAV:  hSRAV,
	isa.OpMULT:  hMULT,
	isa.OpMULTU: hMULTU,
	isa.OpDIV:   hDIV,
	isa.OpDIVU:  hDIVU,
	isa.OpMFHI:  hMFHI,
	isa.OpMFLO:  hMFLO,
	isa.OpMTHI:  hMTHI,
	isa.OpMTLO:  hMTLO,

	isa.OpLB:   hLB,
	isa.OpLBU:  hLBU,
	isa.OpLH:   hLH,
	isa.OpLHU:  hLHU,
	isa.OpLW:   hLW,
	isa.OpLWC1: hLW,
	isa.OpSB:   hSB,
	isa.OpSH:   hSH,
	isa.OpSW:   hSW,
	isa.OpSWC1: hSW,

	isa.OpBEQ:  hBEQ,
	isa.OpBNE:  hBNE,
	isa.OpBLEZ: hBLEZ,
	isa.OpBGTZ: hBGTZ,
	isa.OpBLTZ: hBLTZ,
	isa.OpBGEZ: hBGEZ,
	isa.OpBC1T: hBC1T,
	isa.OpBC1F: hBC1F,
	isa.OpJ:    hJ,
	isa.OpJAL:  hJAL,
	isa.OpJR:   hJR,
	isa.OpJALR: hJALR,

	isa.OpADDS:  hADDS,
	isa.OpSUBS:  hSUBS,
	isa.OpMULS:  hMULS,
	isa.OpDIVS:  hDIVS,
	isa.OpSQRTS: hSQRTS,
	isa.OpABSS:  hABSS,
	isa.OpNEGS:  hNEGS,
	isa.OpMOVS:  hMOVS,
	isa.OpCVTSW: hCVTSW,
	isa.OpCVTWS: hCVTWS,
	isa.OpCEQS:  hCEQS,
	isa.OpCLTS:  hCLTS,
	isa.OpCLES:  hCLES,
	isa.OpMFC1:  hMFC1,
	isa.OpMTC1:  hMTC1,

	isa.OpSYSCALL: hSYSCALL,
}

func hNop(e *Emulator, u *uop, d *DynInst) {}

func hADD(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rs]+e.regs[u.inst.Rt])
}

func hSUB(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rs]-e.regs[u.inst.Rt])
}

func hADDI(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rt, e.regs[u.inst.Rs]+u.immU)
}

func hSLT(e *Emulator, u *uop, d *DynInst) {
	v := uint32(0)
	if int32(e.regs[u.inst.Rs]) < int32(e.regs[u.inst.Rt]) {
		v = 1
	}
	uSetDst(e, d, u.inst.Rd, v)
}

func hSLTU(e *Emulator, u *uop, d *DynInst) {
	v := uint32(0)
	if e.regs[u.inst.Rs] < e.regs[u.inst.Rt] {
		v = 1
	}
	uSetDst(e, d, u.inst.Rd, v)
}

func hSLTI(e *Emulator, u *uop, d *DynInst) {
	v := uint32(0)
	if int32(e.regs[u.inst.Rs]) < u.inst.Imm {
		v = 1
	}
	uSetDst(e, d, u.inst.Rt, v)
}

func hSLTIU(e *Emulator, u *uop, d *DynInst) {
	v := uint32(0)
	if e.regs[u.inst.Rs] < u.immU {
		v = 1
	}
	uSetDst(e, d, u.inst.Rt, v)
}

func hAND(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rs]&e.regs[u.inst.Rt])
}

func hOR(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rs]|e.regs[u.inst.Rt])
}

func hXOR(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rs]^e.regs[u.inst.Rt])
}

func hNOR(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, ^(e.regs[u.inst.Rs] | e.regs[u.inst.Rt]))
}

func hANDI(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rt, e.regs[u.inst.Rs]&u.immU)
}

func hORI(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rt, e.regs[u.inst.Rs]|u.immU)
}

func hXORI(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rt, e.regs[u.inst.Rs]^u.immU)
}

func hLUI(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rt, u.immU<<16)
}

func hSLL(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rt]<<u.inst.Shamt)
}

func hSRL(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rt]>>u.inst.Shamt)
}

func hSRA(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, uint32(int32(e.regs[u.inst.Rt])>>u.inst.Shamt))
}

func hSLLV(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rt]<<(e.regs[u.inst.Rs]&31))
}

func hSRLV(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rt]>>(e.regs[u.inst.Rs]&31))
}

func hSRAV(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, uint32(int32(e.regs[u.inst.Rt])>>(e.regs[u.inst.Rs]&31)))
}

func hMULT(e *Emulator, u *uop, d *DynInst) {
	p := int64(int32(e.regs[u.inst.Rs])) * int64(int32(e.regs[u.inst.Rt]))
	uSetHILO(e, d, uint32(uint64(p)>>32), uint32(uint64(p)))
}

func hMULTU(e *Emulator, u *uop, d *DynInst) {
	p := uint64(e.regs[u.inst.Rs]) * uint64(e.regs[u.inst.Rt])
	uSetHILO(e, d, uint32(p>>32), uint32(p))
}

func hDIV(e *Emulator, u *uop, d *DynInst) {
	rs, rt := e.regs[u.inst.Rs], e.regs[u.inst.Rt]
	if rt == 0 {
		uSetHILO(e, d, rs, ^uint32(0)) // MIPS leaves this undefined; pick a fixed value
	} else if int32(rs) == math.MinInt32 && int32(rt) == -1 {
		uSetHILO(e, d, 0, rs) // overflow case: quotient wraps
	} else {
		uSetHILO(e, d, uint32(int32(rs)%int32(rt)), uint32(int32(rs)/int32(rt)))
	}
}

func hDIVU(e *Emulator, u *uop, d *DynInst) {
	rs, rt := e.regs[u.inst.Rs], e.regs[u.inst.Rt]
	if rt == 0 {
		uSetHILO(e, d, rs, ^uint32(0))
	} else {
		uSetHILO(e, d, rs%rt, rs/rt)
	}
}

func hMFHI(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[isa.RegHI])
}

func hMFLO(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[isa.RegLO])
}

func hMTHI(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, isa.RegHI, e.regs[u.inst.Rs])
}

func hMTLO(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, isa.RegLO, e.regs[u.inst.Rs])
}

func hLB(e *Emulator, u *uop, d *DynInst) {
	d.EffAddr = e.regs[u.inst.Rs] + u.immU
	uSetDst(e, d, u.inst.Rt, uint32(int32(int8(e.Mem.Read8(d.EffAddr)))))
}

func hLBU(e *Emulator, u *uop, d *DynInst) {
	d.EffAddr = e.regs[u.inst.Rs] + u.immU
	uSetDst(e, d, u.inst.Rt, uint32(e.Mem.Read8(d.EffAddr)))
}

func hLH(e *Emulator, u *uop, d *DynInst) {
	d.EffAddr = e.regs[u.inst.Rs] + u.immU
	uSetDst(e, d, u.inst.Rt, uint32(int32(int16(e.Mem.Read16(d.EffAddr)))))
}

func hLHU(e *Emulator, u *uop, d *DynInst) {
	d.EffAddr = e.regs[u.inst.Rs] + u.immU
	uSetDst(e, d, u.inst.Rt, uint32(e.Mem.Read16(d.EffAddr)))
}

func hLW(e *Emulator, u *uop, d *DynInst) {
	d.EffAddr = e.regs[u.inst.Rs] + u.immU
	uSetDst(e, d, u.inst.Rt, e.Mem.Read32(d.EffAddr))
}

func hSB(e *Emulator, u *uop, d *DynInst) {
	d.EffAddr = e.regs[u.inst.Rs] + u.immU
	e.Mem.Write8(d.EffAddr, byte(e.regs[u.inst.Rt]))
}

func hSH(e *Emulator, u *uop, d *DynInst) {
	d.EffAddr = e.regs[u.inst.Rs] + u.immU
	e.Mem.Write16(d.EffAddr, uint16(e.regs[u.inst.Rt]))
}

func hSW(e *Emulator, u *uop, d *DynInst) {
	d.EffAddr = e.regs[u.inst.Rs] + u.immU
	e.Mem.Write32(d.EffAddr, e.regs[u.inst.Rt])
}

func hBEQ(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, e.regs[u.inst.Rs] == e.regs[u.inst.Rt], u.target)
}

func hBNE(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, e.regs[u.inst.Rs] != e.regs[u.inst.Rt], u.target)
}

func hBLEZ(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, int32(e.regs[u.inst.Rs]) <= 0, u.target)
}

func hBGTZ(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, int32(e.regs[u.inst.Rs]) > 0, u.target)
}

func hBLTZ(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, int32(e.regs[u.inst.Rs]) < 0, u.target)
}

func hBGEZ(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, int32(e.regs[u.inst.Rs]) >= 0, u.target)
}

func hBC1T(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, e.regs[isa.RegFCC] != 0, u.target)
}

func hBC1F(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, e.regs[isa.RegFCC] == 0, u.target)
}

func hJ(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, true, u.target)
}

func hJAL(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, isa.RegRA, d.PC+4)
	uTakeBranch(e, d, true, u.target)
}

func hJR(e *Emulator, u *uop, d *DynInst) {
	uTakeBranch(e, d, true, e.regs[u.inst.Rs])
}

func hJALR(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, d.PC+4)
	uTakeBranch(e, d, true, e.regs[u.inst.Rs])
}

func hADDS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, fbits(bitsf(e.regs[u.inst.Rs])+bitsf(e.regs[u.inst.Rt])))
}

func hSUBS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, fbits(bitsf(e.regs[u.inst.Rs])-bitsf(e.regs[u.inst.Rt])))
}

func hMULS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, fbits(bitsf(e.regs[u.inst.Rs])*bitsf(e.regs[u.inst.Rt])))
}

func hDIVS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, fbits(bitsf(e.regs[u.inst.Rs])/bitsf(e.regs[u.inst.Rt])))
}

func hSQRTS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, fbits(float32(math.Sqrt(float64(bitsf(e.regs[u.inst.Rs]))))))
}

func hABSS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rs]&0x7fff_ffff)
}

func hNEGS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rs]^0x8000_0000)
}

func hMOVS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rs])
}

func hCVTSW(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, fbits(float32(int32(e.regs[u.inst.Rs]))))
}

func hCVTWS(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, uint32(int32(bitsf(e.regs[u.inst.Rs]))))
}

func hCEQS(e *Emulator, u *uop, d *DynInst) {
	v := uint32(0)
	if bitsf(e.regs[u.inst.Rs]) == bitsf(e.regs[u.inst.Rt]) {
		v = 1
	}
	uSetDst(e, d, isa.RegFCC, v)
}

func hCLTS(e *Emulator, u *uop, d *DynInst) {
	v := uint32(0)
	if bitsf(e.regs[u.inst.Rs]) < bitsf(e.regs[u.inst.Rt]) {
		v = 1
	}
	uSetDst(e, d, isa.RegFCC, v)
}

func hCLES(e *Emulator, u *uop, d *DynInst) {
	v := uint32(0)
	if bitsf(e.regs[u.inst.Rs]) <= bitsf(e.regs[u.inst.Rt]) {
		v = 1
	}
	uSetDst(e, d, isa.RegFCC, v)
}

func hMFC1(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rt, e.regs[u.inst.Rs])
}

func hMTC1(e *Emulator, u *uop, d *DynInst) {
	uSetDst(e, d, u.inst.Rd, e.regs[u.inst.Rt])
}

func hSYSCALL(e *Emulator, u *uop, d *DynInst) {
	if err := e.syscall(d); err != nil {
		e.trap = err
	}
}
