package emu

import (
	"fmt"
	"sort"
	"strings"

	"pok/internal/isa"
)

// Profile accumulates the dynamic instruction mix of a run — the
// workload-characterization companion to the timing statistics (the paper
// reports %loads and branch composition; this generalizes both).
type Profile struct {
	Total   uint64
	ByOp    [isa.NumOps]uint64
	ByClass map[isa.Class]uint64

	Loads, Stores   uint64
	Branches        uint64 // conditional
	TakenBranches   uint64
	EqBranches      uint64 // beq/bne
	SignBranches    uint64 // blez/bgtz/bltz/bgez
	Jumps           uint64
	MemBytes        uint64 // bytes transferred by loads+stores
	UniqueLoadLines map[uint32]struct{}
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		ByClass:         make(map[isa.Class]uint64),
		UniqueLoadLines: make(map[uint32]struct{}),
	}
}

// Observe records one executed instruction.
func (p *Profile) Observe(d *DynInst) {
	op := d.Inst.Op
	p.Total++
	p.ByOp[op]++
	p.ByClass[op.Class()]++
	switch {
	case op.IsLoad():
		p.Loads++
		p.MemBytes += uint64(op.MemSize())
		p.UniqueLoadLines[d.EffAddr>>6] = struct{}{}
	case op.IsStore():
		p.Stores++
		p.MemBytes += uint64(op.MemSize())
	case op.IsBranch():
		p.Branches++
		if d.Taken {
			p.TakenBranches++
		}
		if op.EqualityBranch() {
			p.EqBranches++
		}
		if op.NeedsSignBit() {
			p.SignBranches++
		}
	case op.Class() == isa.ClassJump:
		p.Jumps++
	}
}

// Frac returns count/Total (0 when empty).
func (p *Profile) Frac(count uint64) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(count) / float64(p.Total)
}

// TopOps returns the n most frequent opcodes with their counts.
func (p *Profile) TopOps(n int) []struct {
	Op    isa.Op
	Count uint64
} {
	type oc struct {
		Op    isa.Op
		Count uint64
	}
	var all []oc
	for op, c := range p.ByOp {
		if c > 0 {
			all = append(all, oc{isa.Op(op), c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Op < all[j].Op
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Op    isa.Op
		Count uint64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Op    isa.Op
			Count uint64
		}{all[i].Op, all[i].Count}
	}
	return out
}

// String renders a human-readable summary.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions: %d\n", p.Total)
	fmt.Fprintf(&b, "loads: %.1f%%  stores: %.1f%%  cond branches: %.1f%% (%.1f%% taken)  jumps: %.1f%%\n",
		100*p.Frac(p.Loads), 100*p.Frac(p.Stores), 100*p.Frac(p.Branches),
		100*safeDiv(p.TakenBranches, p.Branches), 100*p.Frac(p.Jumps))
	fmt.Fprintf(&b, "branch mix: %.1f%% beq/bne, %.1f%% sign-test\n",
		100*safeDiv(p.EqBranches, p.Branches), 100*safeDiv(p.SignBranches, p.Branches))
	fmt.Fprintf(&b, "memory: %d bytes moved, %d distinct load lines\n",
		p.MemBytes, len(p.UniqueLoadLines))
	b.WriteString("top ops:")
	for _, oc := range p.TopOps(8) {
		fmt.Fprintf(&b, " %s=%.1f%%", oc.Op, 100*p.Frac(oc.Count))
	}
	b.WriteByte('\n')
	return b.String()
}

func safeDiv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ProfileProgram executes prog for up to maxInsts instructions and
// returns its dynamic profile.
func ProfileProgram(prog *Program, maxInsts uint64) (*Profile, error) {
	p := NewProfile()
	e := New(prog)
	if _, err := e.Run(maxInsts, p.Observe); err != nil {
		return nil, err
	}
	return p, nil
}
