package emu

import (
	"encoding/binary"
	"errors"
	"testing"

	"pok/internal/gen"
	"pok/internal/isa"
)

// fuzzProgram builds a one-instruction program: the fuzzed word followed
// by a clean exit sequence (ori $v0,$zero,10; syscall), so a benign
// fuzzed instruction falls through to a halt.
func fuzzProgram(word uint32) *Program {
	exitSel, err := isa.Encode(isa.Inst{Op: isa.OpORI, Rt: isa.RegV0, Rs: isa.RegZero, Imm: 10})
	if err != nil {
		panic(err)
	}
	sys, err := isa.Encode(isa.Inst{Op: isa.OpSYSCALL})
	if err != nil {
		panic(err)
	}
	data := make([]byte, 12)
	binary.LittleEndian.PutUint32(data[0:], word)
	binary.LittleEndian.PutUint32(data[4:], exitSel)
	binary.LittleEndian.PutUint32(data[8:], sys)
	return &Program{
		Entry:    DefaultTextBase,
		Segments: []Segment{{Addr: DefaultTextBase, Data: data}},
	}
}

// FuzzEmuStep executes one arbitrary instruction word against seeded
// register state. The emulator must never panic; when the step succeeds
// the DynInst record must agree with the architectural state it claims
// to have produced (the property the lockstep oracle relies on).
func FuzzEmuStep(f *testing.F) {
	seed := func(in isa.Inst) uint32 {
		w, err := isa.Encode(in)
		if err != nil {
			return 0
		}
		return w
	}
	f.Add(uint32(0), uint32(1), uint32(2)) // sll $zero (nop encoding)
	f.Add(seed(isa.Inst{Op: isa.OpADDU, Rd: isa.RegT0, Rs: isa.RegT0, Rt: isa.RegT0 + 1}), uint32(7), ^uint32(0))
	f.Add(seed(isa.Inst{Op: isa.OpLW, Rt: isa.RegT0, Rs: isa.RegSP, Imm: -4}), uint32(3), uint32(4))         // stack load
	f.Add(seed(isa.Inst{Op: isa.OpLW, Rt: isa.RegT0, Rs: isa.RegT0 + 1, Imm: 1}), uint32(0), uint32(0x1000)) // unaligned
	f.Add(seed(isa.Inst{Op: isa.OpSW, Rt: isa.RegT0, Rs: isa.RegGP, Imm: 8}), uint32(0xdeadbeef), uint32(0))
	f.Add(seed(isa.Inst{Op: isa.OpMULT, Rs: isa.RegT0, Rt: isa.RegT0 + 1}), uint32(0x7fffffff), uint32(2))
	f.Add(seed(isa.Inst{Op: isa.OpDIV, Rs: isa.RegT0, Rt: isa.RegT0 + 1}), uint32(100), uint32(0))                      // divide by zero
	f.Add(seed(isa.Inst{Op: isa.OpBEQ, Rs: isa.RegT0, Rt: isa.RegT0 + 1, Imm: -2}), uint32(5), uint32(5))               // taken back-branch
	f.Add(seed(isa.Inst{Op: isa.OpJR, Rs: isa.RegT0}), uint32(0x12345679), uint32(0))                                   // wild jump
	f.Add(seed(isa.Inst{Op: isa.OpLB, Rt: isa.RegT0, Rs: isa.RegT0 + 1, Imm: 0x7fff}), ^uint32(0), uint32(0xffff_fffc)) // address wrap
	// Generator corpora: encoded words from the mechanism-biased
	// distribution (slice-straddling immediates, partial-address
	// offsets, boundary compares), paired with operand values that sit
	// on the 16-bit slice cut.
	edges := []uint32{0, 1, 0xffff, 0x10000, 0x7fffffff, 0x80000000, ^uint32(0)}
	for i, w := range gen.SeedWords(0xfeed, 24) {
		f.Add(w, edges[i%len(edges)], edges[(i/len(edges)+1)%len(edges)])
	}
	f.Fuzz(func(t *testing.T, word, r1, r2 uint32) {
		e := New(fuzzProgram(word))
		e.SetReg(isa.RegT0, r1)
		e.SetReg(isa.RegT0+1, r2)
		e.SetReg(isa.RegA0, r2)
		e.SetReg(isa.RegA0+1, r1^r2)
		e.SetInput(int32(r1)) // feed a potential read_int syscall
		for i := 0; i < 16; i++ {
			d, err := e.Step()
			if err != nil {
				if errors.Is(err, ErrHalted) && !e.Halted() {
					t.Fatal("ErrHalted from a running emulator")
				}
				return // decode/fetch/memory errors are legitimate outcomes
			}
			// The architectural record must match the state it claims.
			if d.Dst != isa.RegZero && e.Reg(d.Dst) != d.DstVal {
				t.Fatalf("inst 0x%08x %v: DynInst.DstVal=0x%x but %v=0x%x",
					word, d.Inst, d.DstVal, d.Dst, e.Reg(d.Dst))
			}
			if d.Dst2 != isa.RegZero && e.Reg(d.Dst2) != d.Dst2Val {
				t.Fatalf("inst 0x%08x %v: DynInst.Dst2Val=0x%x but %v=0x%x",
					word, d.Inst, d.Dst2Val, d.Dst2, e.Reg(d.Dst2))
			}
			if e.Halted() {
				return
			}
			if d.NextPC != e.PC() {
				t.Fatalf("inst 0x%08x %v: NextPC=0x%x but PC=0x%x",
					word, d.Inst, d.NextPC, e.PC())
			}
		}
	})
}
