// Package ckpt is the architectural checkpoint layer: a versioned,
// checksummed snapshot format for the simulator's complete state —
// emulator memory pages (with dirty-page deltas between periodic full
// rebase snapshots), register file, instruction/cycle counters, and the
// warm microarchitectural state (branch predictor, BTB, cache tags and
// MRU way pointers, TLB) — so a run resumed from a checkpoint is
// bit-identical to one that was never interrupted.
//
// Files are written atomically (temp + fsync + rename), every section
// carries an FNV-64a content hash, and the decoder classifies damage
// with structured errors: a truncated tail (the crash-mid-write case,
// like the PR 8 fleet journal) is *TruncatedError and tolerated by
// falling back to an older snapshot; mid-file corruption or a version
// mismatch is refused with *CorruptError / *VersionError.
package ckpt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pok/internal/bpred"
	"pok/internal/cache"
	"pok/internal/emu"
)

// Version is the current checkpoint format version. The decoder refuses
// any other version with *VersionError — checkpoint files are exact
// machine state, so cross-version compatibility shims would silently
// break the bit-identical-resume guarantee.
const Version = 1

// Meta identifies a snapshot: which run it belongs to (benchmark,
// config, scheduler, emulator flavor), where in the run it was taken,
// and its position in a delta chain.
type Meta struct {
	Benchmark string
	Config    string
	Scheduler string // "event" | "legacy"
	Emulator  string // "fast" | "legacy"

	// Insts/Cycles locate the capture point: committed instructions and
	// the cycle counter at the quiescent drain boundary.
	Insts  uint64
	Cycles int64

	// ID sequences snapshots within one run (1-based). BaseID/BaseFile
	// link a delta snapshot to its parent: BaseID 0 marks a full
	// snapshot; otherwise BaseFile names the parent file (relative to
	// this file's directory) whose Meta.ID must equal BaseID.
	ID       uint64
	BaseID   uint64
	BaseFile string
}

// Snapshot is one complete architectural checkpoint. Emu carries the
// memory image (delta pages only when Meta.BaseID != 0); Bpred, Hier
// and DTLB the warm microarchitectural state; Core the timing core's
// opaque section (cycle counter, partial Result, fetch bookkeeping);
// Extra named opaque sections contributed by higher layers (injection
// stream positions, telemetry summary) without import cycles.
type Snapshot struct {
	Meta  Meta
	Emu   *emu.State
	Bpred *bpred.State
	Hier  *cache.HierarchyState
	DTLB  *cache.TLBState
	Core  []byte
	Extra map[string][]byte
}

// IsDelta reports whether the snapshot's memory image is a delta over a
// parent snapshot.
func (s *Snapshot) IsDelta() bool { return s.Meta.BaseID != 0 }

// VersionError reports a checkpoint written by a different format
// version. Refused: resuming across format versions cannot preserve
// bit-identical state.
type VersionError struct {
	Got  uint32
	Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("ckpt: format version %d, want %d", e.Got, e.Want)
}

// CorruptError reports mid-file damage: a section whose content hash
// does not match, a bad magic number, an unparseable payload, or a
// broken delta chain. Refused — the state cannot be trusted.
type CorruptError struct {
	Section string
	Reason  string
}

func (e *CorruptError) Error() string {
	if e.Section == "" {
		return "ckpt: corrupt checkpoint: " + e.Reason
	}
	return fmt.Sprintf("ckpt: corrupt checkpoint: section %s: %s", e.Section, e.Reason)
}

// TruncatedError reports a checkpoint that ends mid-structure — the
// expected shape of a crash during an (unlikely non-atomic) write or a
// partially copied file. Everything before the cut hashed clean, so the
// caller may fall back to an older snapshot; resuming from a truncated
// file is refused.
type TruncatedError struct {
	Section string
	Offset  int
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("ckpt: truncated checkpoint at byte %d (section %s)", e.Offset, e.Section)
}

// IsTruncated reports whether err is a tolerable truncated-tail error
// (as opposed to mid-file corruption, which must be refused).
func IsTruncated(err error) bool {
	var te *TruncatedError
	return errors.As(err, &te)
}

// Sink receives snapshots from a checkpointing run. WantFull is asked
// immediately before each capture: true means the snapshot must carry
// the full memory image (first snapshot, or a periodic rebase point);
// false permits a dirty-page delta against the previous snapshot.
type Sink interface {
	WantFull() bool
	Write(*Snapshot) error
}

// MemSink is an in-memory Sink that keeps only the latest snapshot —
// always full, so the held snapshot is self-contained. The soak harness
// and the fleet worker use it to carry a resumable cursor without
// touching disk.
type MemSink struct {
	mu   sync.Mutex
	last *Snapshot
	n    int
}

// WantFull always reports true: an in-memory snapshot has no parent
// file for a delta to reference.
func (m *MemSink) WantFull() bool { return true }

// Write retains the snapshot.
func (m *MemSink) Write(s *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.last = s
	m.n++
	return nil
}

// Last returns the most recent snapshot (nil if none) and how many have
// been written.
func (m *MemSink) Last() (*Snapshot, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last, m.n
}

// Watchdog triggers a graceful stop when the process heap exceeds a
// budget or a wall-clock deadline passes — the long-run safety net that
// turns an impending OOM or a batch-queue timeout into a final
// checkpoint and a partial result instead of a dead process.
type Watchdog struct {
	// MaxHeapBytes triggers at this live-heap size (0 = no heap budget).
	MaxHeapBytes uint64
	// Deadline triggers at this wall-clock time (zero = no deadline).
	Deadline time.Time
	// Poll is the check interval (0 = 1s).
	Poll time.Duration
	// Stop is invoked exactly once, off the simulation goroutine, with
	// a human-readable reason.
	Stop func(reason string)
}

// Start launches the watchdog goroutine and returns its cancel
// function. With no budget and no deadline it is a no-op.
func (w *Watchdog) Start() (cancel func()) {
	if w.MaxHeapBytes == 0 && w.Deadline.IsZero() {
		return func() {}
	}
	poll := w.Poll
	if poll <= 0 {
		poll = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(poll)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if !w.Deadline.IsZero() && time.Now().After(w.Deadline) {
					once.Do(func() { w.Stop("wall-clock deadline reached") })
					return
				}
				if w.MaxHeapBytes > 0 {
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > w.MaxHeapBytes {
						once.Do(func() {
							w.Stop(fmt.Sprintf("heap %d bytes over budget %d", ms.HeapAlloc, w.MaxHeapBytes))
						})
						return
					}
				}
			}
		}
	}()
	return func() { close(done) }
}
