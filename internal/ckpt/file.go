package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile writes an encoded snapshot atomically: temp file in the
// same directory, fsync, rename. A crash at any point leaves either the
// previous file or the complete new one — never a torn write at the
// final path.
func WriteFile(path string, s *Snapshot) error {
	data := Encode(s)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// ReadFile decodes one snapshot file (which may be a delta; see
// LoadChain for resolving a full image).
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	return s, nil
}

// maxChainDepth bounds delta-chain resolution; a deeper chain means a
// corrupt or cyclic BaseFile graph.
const maxChainDepth = 256

// LoadChain loads the snapshot at path, resolving its delta chain: a
// delta snapshot's BaseFile (relative to its own directory) is loaded
// recursively down to a full snapshot, parent identity is verified
// against BaseID, and the memory pages merge youngest-over-oldest. The
// returned snapshot is always full (Emu.Partial false) and ready for
// restore.
func LoadChain(path string) (*Snapshot, error) {
	return loadChain(path, 0)
}

func loadChain(path string, depth int) (*Snapshot, error) {
	if depth > maxChainDepth {
		return nil, &CorruptError{Reason: fmt.Sprintf("delta chain deeper than %d (cycle?) at %s", maxChainDepth, path)}
	}
	s, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !s.IsDelta() {
		return s, nil
	}
	if s.Meta.BaseFile == "" {
		return nil, &CorruptError{Reason: fmt.Sprintf("%s: delta snapshot without a base file", path)}
	}
	basePath := filepath.Join(filepath.Dir(path), s.Meta.BaseFile)
	base, err := loadChain(basePath, depth+1)
	if err != nil {
		return nil, err
	}
	if base.Meta.ID != s.Meta.BaseID {
		return nil, &CorruptError{Reason: fmt.Sprintf("%s: base %s has snapshot ID %d, want %d",
			path, basePath, base.Meta.ID, s.Meta.BaseID)}
	}
	if base.Meta.Benchmark != s.Meta.Benchmark || base.Meta.Config != s.Meta.Config ||
		base.Meta.Scheduler != s.Meta.Scheduler || base.Meta.Emulator != s.Meta.Emulator {
		return nil, &CorruptError{Reason: fmt.Sprintf("%s: base %s belongs to a different run", path, basePath)}
	}
	merged := *s
	merged.Emu = base.Emu.Merge(s.Emu)
	merged.Meta.BaseID = 0
	merged.Meta.BaseFile = ""
	return &merged, nil
}

// Writer is the on-disk Sink for periodic checkpoints: snapshots land
// in Dir as ckpt-<insts>.pok, written as dirty-page deltas against the
// previous snapshot with a full rebase snapshot every RebaseEvery
// writes (so chains stay short and old files can be pruned by hand).
type Writer struct {
	// Dir receives the snapshot files (created if missing).
	Dir string
	// RebaseEvery forces a full snapshot every N writes (0 = 8). The
	// first write is always full.
	RebaseEvery int

	n        int    // snapshots written
	lastName string // file name (not path) of the previous snapshot
	lastID   uint64
	lastPath string
}

// WantFull reports whether the next snapshot must carry the full memory
// image: the first write, and every RebaseEvery-th after that.
func (w *Writer) WantFull() bool {
	re := w.RebaseEvery
	if re <= 0 {
		re = 8
	}
	return w.n%re == 0
}

// Write assigns chain metadata and persists the snapshot atomically.
func (w *Writer) Write(s *Snapshot) error {
	if err := os.MkdirAll(w.Dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	s.Meta.ID = uint64(w.n + 1)
	if s.Emu != nil && s.Emu.Partial {
		if w.lastName == "" {
			return fmt.Errorf("ckpt: delta snapshot with no prior snapshot in %s", w.Dir)
		}
		s.Meta.BaseID = w.lastID
		s.Meta.BaseFile = w.lastName
	} else {
		s.Meta.BaseID = 0
		s.Meta.BaseFile = ""
	}
	name := fmt.Sprintf("ckpt-%012d.pok", s.Meta.Insts)
	path := filepath.Join(w.Dir, name)
	if err := WriteFile(path, s); err != nil {
		return err
	}
	w.n++
	w.lastName = name
	w.lastID = s.Meta.ID
	w.lastPath = path
	return nil
}

// Count reports how many snapshots have been written.
func (w *Writer) Count() int { return w.n }

// LastPath returns the most recently written snapshot file ("" if
// none).
func (w *Writer) LastPath() string { return w.lastPath }

var _ Sink = (*Writer)(nil)
