package ckpt

import (
	"encoding/binary"
	"sort"

	"pok/internal/bpred"
	"pok/internal/cache"
	"pok/internal/emu"
)

// File layout:
//
//	magic "POKC" | u32 version
//	section*:  tag[4] | u32 len | payload[len] | u64 fnv64a(payload)
//	end:       "END\x00" | u32 8 | u64 fnv64a(all section hashes) | u64 hash
//
// All integers little-endian. Section payloads are parsed only after
// their hash verifies, so a parse failure inside a hash-clean section is
// still classified as corruption (a flipped bit that collided, or a
// buggy writer) — never a panic. Running out of bytes before the END
// section completes is the truncated-tail case.

var fileMagic = [4]byte{'P', 'O', 'K', 'C'}

const endTag = "END\x00"

// Section tags.
const (
	tagMeta  = "META"
	tagEmu   = "EMUS"
	tagBpred = "BPRD"
	tagHier  = "HIER"
	tagDTLB  = "DTLB"
	tagCore  = "CORE"
	tagExtra = "XTRA"
)

const fnvOffset = 14695981039346656037
const fnvPrime = 1099511628211

func fnv64a(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// writer is a little-endian append buffer.
type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *writer) str(s string) { w.bytes([]byte(s)) }

// reader is a bounds-checked little-endian cursor over one section
// payload. The first out-of-bounds read latches bad=true and every
// subsequent read returns zero, so decoding malformed payloads is safe
// without per-read error plumbing; the caller checks bad once.
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) take(n int) []byte {
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *reader) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

func (r *reader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (r *reader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	// A length prefix can never exceed the payload that holds it; this
	// bound also caps allocation at input size for fuzzed garbage.
	if r.bad || n > len(r.b)-r.off {
		r.bad = true
		return nil
	}
	return append([]byte(nil), r.take(n)...)
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) done() bool { return !r.bad && r.off == len(r.b) }

// count reads a u32 element count for elements of elemSize bytes,
// rejecting counts that could not fit in the remaining payload.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.bad || n < 0 || elemSize <= 0 || n > (len(r.b)-r.off)/elemSize+1 {
		r.bad = true
		return 0
	}
	return n
}

// Encode serializes a snapshot. The encoding is deterministic: section
// order is fixed, extras sort by name, and every slice is
// length-prefixed — the same state always yields the same bytes.
func Encode(s *Snapshot) []byte {
	var out writer
	out.b = append(out.b, fileMagic[:]...)
	out.u32(Version)

	var hashes writer
	section := func(tag string, payload []byte) {
		out.b = append(out.b, tag...)
		out.bytes(payload)
		h := fnv64a(payload)
		out.u64(h)
		hashes.u64(h)
	}

	section(tagMeta, encodeMeta(&s.Meta))
	if s.Emu != nil {
		section(tagEmu, encodeEmu(s.Emu))
	}
	if s.Bpred != nil {
		section(tagBpred, encodeBpred(s.Bpred))
	}
	if s.Hier != nil {
		var w writer
		encodeCache(&w, s.Hier.L1I)
		encodeCache(&w, s.Hier.L1D)
		encodeCache(&w, s.Hier.L2)
		section(tagHier, w.b)
	}
	if s.DTLB != nil {
		var w writer
		encodeTLB(&w, s.DTLB)
		section(tagDTLB, w.b)
	}
	if s.Core != nil {
		section(tagCore, s.Core)
	}
	names := make([]string, 0, len(s.Extra))
	for name := range s.Extra {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var w writer
		w.str(name)
		w.bytes(s.Extra[name])
		section(tagExtra, w.b)
	}

	// END: its payload is the hash of all section hashes, so any
	// reordering or replacement of a whole section (with a forged
	// per-section hash) is still caught.
	var end writer
	end.u64(fnv64a(hashes.b))
	out.b = append(out.b, endTag...)
	out.bytes(end.b)
	out.u64(fnv64a(end.b))
	return out.b
}

// Decode parses and verifies a snapshot, classifying damage as
// *VersionError, *TruncatedError or *CorruptError. It never panics on
// arbitrary input (FuzzCheckpointDecode).
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < 8 {
		return nil, &TruncatedError{Section: "header", Offset: len(data)}
	}
	if [4]byte(data[:4]) != fileMagic {
		return nil, &CorruptError{Section: "header", Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}

	s := &Snapshot{}
	var hashes writer
	seen := map[string]bool{}
	off := 8
	for {
		if off == len(data) {
			return nil, &TruncatedError{Section: endTag, Offset: off}
		}
		if len(data)-off < 8 {
			return nil, &TruncatedError{Section: "header", Offset: off}
		}
		tag := string(data[off : off+4])
		plen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		off += 8
		if plen < 0 || plen > len(data)-off {
			return nil, &TruncatedError{Section: tag, Offset: off}
		}
		payload := data[off : off+plen]
		off += plen
		if len(data)-off < 8 {
			return nil, &TruncatedError{Section: tag, Offset: off}
		}
		h := binary.LittleEndian.Uint64(data[off : off+8])
		off += 8
		if fnv64a(payload) != h {
			return nil, &CorruptError{Section: tag, Reason: "content hash mismatch"}
		}

		if tag == endTag {
			r := &reader{b: payload}
			want := r.u64()
			if !r.done() {
				return nil, &CorruptError{Section: endTag, Reason: "malformed payload"}
			}
			if fnv64a(hashes.b) != want {
				return nil, &CorruptError{Section: endTag, Reason: "section-hash summary mismatch"}
			}
			break
		}
		hashes.u64(h)
		if seen[tag] && tag != tagExtra {
			return nil, &CorruptError{Section: tag, Reason: "duplicate section"}
		}
		seen[tag] = true

		var err error
		switch tag {
		case tagMeta:
			err = decodeMeta(payload, &s.Meta)
		case tagEmu:
			s.Emu, err = decodeEmu(payload)
		case tagBpred:
			s.Bpred, err = decodeBpred(payload)
		case tagHier:
			r := &reader{b: payload}
			hs := &cache.HierarchyState{}
			hs.L1I = decodeCache(r)
			hs.L1D = decodeCache(r)
			hs.L2 = decodeCache(r)
			if !r.done() {
				err = &CorruptError{Section: tag, Reason: "malformed payload"}
			} else {
				s.Hier = hs
			}
		case tagDTLB:
			r := &reader{b: payload}
			ts := decodeTLB(r)
			if !r.done() {
				err = &CorruptError{Section: tag, Reason: "malformed payload"}
			} else {
				s.DTLB = ts
			}
		case tagCore:
			s.Core = append([]byte(nil), payload...)
		case tagExtra:
			r := &reader{b: payload}
			name := r.str()
			val := r.bytes()
			if !r.done() || name == "" {
				err = &CorruptError{Section: tag, Reason: "malformed payload"}
			} else {
				if s.Extra == nil {
					s.Extra = make(map[string][]byte)
				}
				s.Extra[name] = val
			}
		default:
			// Unknown sections are refused rather than skipped: within
			// one format version the section set is closed, so an
			// unknown tag means damage.
			err = &CorruptError{Section: tag, Reason: "unknown section"}
		}
		if err != nil {
			return nil, err
		}
	}

	if !seen[tagMeta] {
		return nil, &CorruptError{Section: tagMeta, Reason: "missing required section"}
	}
	if !seen[tagEmu] {
		return nil, &CorruptError{Section: tagEmu, Reason: "missing required section"}
	}
	if (s.Emu.Partial) != (s.Meta.BaseID != 0) {
		return nil, &CorruptError{Section: tagMeta, Reason: "delta flag disagrees with memory image"}
	}
	return s, nil
}

func encodeMeta(m *Meta) []byte {
	var w writer
	w.str(m.Benchmark)
	w.str(m.Config)
	w.str(m.Scheduler)
	w.str(m.Emulator)
	w.u64(m.Insts)
	w.u64(uint64(m.Cycles))
	w.u64(m.ID)
	w.u64(m.BaseID)
	w.str(m.BaseFile)
	return w.b
}

func decodeMeta(b []byte, m *Meta) error {
	r := &reader{b: b}
	m.Benchmark = r.str()
	m.Config = r.str()
	m.Scheduler = r.str()
	m.Emulator = r.str()
	m.Insts = r.u64()
	m.Cycles = int64(r.u64())
	m.ID = r.u64()
	m.BaseID = r.u64()
	m.BaseFile = r.str()
	if !r.done() {
		return &CorruptError{Section: tagMeta, Reason: "malformed payload"}
	}
	return nil
}

func encodeEmu(st *emu.State) []byte {
	var w writer
	w.u32(uint32(len(st.Regs)))
	for _, v := range st.Regs {
		w.u32(v)
	}
	w.u32(st.PC)
	w.u8(b2u(st.Halted))
	w.u32(uint32(st.ExitCode))
	w.u64(st.ICount)
	w.u32(st.Brk)
	w.str(st.Output)
	w.u32(uint32(len(st.Inputs)))
	for _, v := range st.Inputs {
		w.u32(uint32(v))
	}
	w.u8(b2u(st.Legacy))
	w.u32(st.UBase)
	w.u32(uint32(st.ULen))
	w.u8(b2u(st.Partial))
	w.u32(uint32(len(st.Pages)))
	for _, pg := range st.Pages {
		w.u32(pg.Num)
		w.b = append(w.b, pg.Data...)
	}
	return w.b
}

func decodeEmu(b []byte) (*emu.State, error) {
	r := &reader{b: b}
	st := &emu.State{}
	if n := r.count(4); n != len(st.Regs) {
		if !r.bad {
			return nil, &CorruptError{Section: tagEmu, Reason: "register-file size mismatch"}
		}
		return nil, &CorruptError{Section: tagEmu, Reason: "malformed payload"}
	}
	for i := range st.Regs {
		st.Regs[i] = r.u32()
	}
	st.PC = r.u32()
	st.Halted = r.u8() != 0
	st.ExitCode = int32(r.u32())
	st.ICount = r.u64()
	st.Brk = r.u32()
	st.Output = r.str()
	n := r.count(4)
	st.Inputs = make([]int32, n)
	for i := range st.Inputs {
		st.Inputs[i] = int32(r.u32())
	}
	st.Legacy = r.u8() != 0
	st.UBase = r.u32()
	st.ULen = int(r.u32())
	st.Partial = r.u8() != 0
	np := r.count(4 + emu.PageSize)
	st.Pages = make([]emu.MemPage, 0, np)
	var prev uint32
	for i := 0; i < np; i++ {
		num := r.u32()
		data := append([]byte(nil), r.take(emu.PageSize)...)
		if r.bad {
			break
		}
		if i > 0 && num <= prev {
			return nil, &CorruptError{Section: tagEmu, Reason: "pages out of order"}
		}
		prev = num
		st.Pages = append(st.Pages, emu.MemPage{Num: num, Data: data})
	}
	if !r.done() {
		return nil, &CorruptError{Section: tagEmu, Reason: "malformed payload"}
	}
	return st, nil
}

func encodeBpred(st *bpred.State) []byte {
	var w writer
	w.str(st.DirKind)
	w.bytes(st.DirTable)
	w.u32(uint32(len(st.DirHist)))
	for _, v := range st.DirHist {
		w.u16(v)
	}
	w.u32(st.GHR)
	w.u32(uint32(st.BTBSets))
	w.u32(uint32(st.BTBAssoc))
	w.bytes(st.BTBValid)
	for _, v := range st.BTBTag {
		w.u32(v)
	}
	for _, v := range st.BTBTarget {
		w.u32(v)
	}
	for _, v := range st.BTBLRU {
		w.u64(v)
	}
	w.u64(st.BTBClock)
	w.u32(uint32(len(st.RASStack)))
	for _, v := range st.RASStack {
		w.u32(v)
	}
	w.u32(uint32(st.RASTop))
	w.u32(uint32(st.RASCount))
	w.u64(st.CondBranches)
	w.u64(st.CondMispred)
	return w.b
}

func decodeBpred(b []byte) (*bpred.State, error) {
	r := &reader{b: b}
	st := &bpred.State{}
	st.DirKind = r.str()
	st.DirTable = r.bytes()
	nh := r.count(2)
	st.DirHist = make([]uint16, nh)
	for i := range st.DirHist {
		st.DirHist[i] = r.u16()
	}
	st.GHR = r.u32()
	st.BTBSets = int(r.u32())
	st.BTBAssoc = int(r.u32())
	st.BTBValid = r.bytes()
	n := len(st.BTBValid)
	if r.bad || st.BTBSets < 0 || st.BTBAssoc < 0 || st.BTBSets*st.BTBAssoc != n ||
		n > len(b) {
		return nil, &CorruptError{Section: tagBpred, Reason: "malformed payload"}
	}
	st.BTBTag = make([]uint32, n)
	for i := range st.BTBTag {
		st.BTBTag[i] = r.u32()
	}
	st.BTBTarget = make([]uint32, n)
	for i := range st.BTBTarget {
		st.BTBTarget[i] = r.u32()
	}
	st.BTBLRU = make([]uint64, n)
	for i := range st.BTBLRU {
		st.BTBLRU[i] = r.u64()
	}
	st.BTBClock = r.u64()
	nr := r.count(4)
	st.RASStack = make([]uint32, nr)
	for i := range st.RASStack {
		st.RASStack[i] = r.u32()
	}
	st.RASTop = int(r.u32())
	st.RASCount = int(r.u32())
	st.CondBranches = r.u64()
	st.CondMispred = r.u64()
	if !r.done() {
		return nil, &CorruptError{Section: tagBpred, Reason: "malformed payload"}
	}
	return st, nil
}

func encodeCache(w *writer, st *cache.CacheState) {
	w.u32(uint32(st.Sets))
	w.u32(uint32(st.Assoc))
	w.bytes(st.Valid)
	w.bytes(st.Dirty)
	for _, v := range st.Tag {
		w.u32(v)
	}
	for _, v := range st.LRU {
		w.u64(v)
	}
	for _, v := range st.MRU {
		w.u32(uint32(v))
	}
	w.u64(st.Clock)
	w.u64(st.Accesses)
	w.u64(st.Misses)
	w.u64(st.Writes)
	w.u64(st.Writebacks)
}

func decodeCache(r *reader) *cache.CacheState {
	st := &cache.CacheState{}
	st.Sets = int(r.u32())
	st.Assoc = int(r.u32())
	st.Valid = r.bytes()
	st.Dirty = r.bytes()
	n := len(st.Valid)
	if r.bad || st.Sets < 0 || st.Assoc < 0 || st.Sets*st.Assoc != n || len(st.Dirty) != n {
		r.bad = true
		return nil
	}
	st.Tag = make([]uint32, n)
	for i := range st.Tag {
		st.Tag[i] = r.u32()
	}
	st.LRU = make([]uint64, n)
	for i := range st.LRU {
		st.LRU[i] = r.u64()
	}
	st.MRU = make([]int32, st.Sets)
	for i := range st.MRU {
		st.MRU[i] = int32(r.u32())
	}
	st.Clock = r.u64()
	st.Accesses = r.u64()
	st.Misses = r.u64()
	st.Writes = r.u64()
	st.Writebacks = r.u64()
	if r.bad {
		return nil
	}
	return st
}

func encodeTLB(w *writer, st *cache.TLBState) {
	w.u32(uint32(st.Sets))
	w.u32(uint32(st.Assoc))
	w.bytes(st.Valid)
	for _, v := range st.Tag {
		w.u32(v)
	}
	for _, v := range st.LRU {
		w.u64(v)
	}
	w.u64(st.Clock)
	w.u64(st.Accesses)
	w.u64(st.Misses)
}

func decodeTLB(r *reader) *cache.TLBState {
	st := &cache.TLBState{}
	st.Sets = int(r.u32())
	st.Assoc = int(r.u32())
	st.Valid = r.bytes()
	n := len(st.Valid)
	if r.bad || st.Sets < 0 || st.Assoc < 0 || st.Sets*st.Assoc != n {
		r.bad = true
		return nil
	}
	st.Tag = make([]uint32, n)
	for i := range st.Tag {
		st.Tag[i] = r.u32()
	}
	st.LRU = make([]uint64, n)
	for i := range st.LRU {
		st.LRU[i] = r.u64()
	}
	st.Clock = r.u64()
	st.Accesses = r.u64()
	st.Misses = r.u64()
	if r.bad {
		return nil
	}
	return st
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
