package ckpt_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pok/internal/bpred"
	"pok/internal/cache"
	"pok/internal/ckpt"
	"pok/internal/emu"
)

// sampleSnapshot builds a small synthetic snapshot exercising every
// section, including extras. With delta set, the memory image is marked
// partial and chained to base ID 3.
func sampleSnapshot(delta bool) *ckpt.Snapshot {
	page := func(fill byte) []byte {
		b := make([]byte, emu.PageSize)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	es := &emu.State{
		PC: 0x400120, ICount: 123456, Brk: 0x10008000,
		Output: "hello\n", Inputs: []int32{7, -1},
		UBase: 0x400000, ULen: 2048,
		Partial: delta,
		Pages: []emu.MemPage{
			{Num: 0x400, Data: page(0xAB)},
			{Num: 0x7FF, Data: page(0x11)},
		},
	}
	es.Regs[4] = 0xdeadbeef
	es.Regs[31] = 0x400200

	bs := &bpred.State{
		DirKind: "gshare", DirTable: []uint8{0, 1, 2, 3},
		DirHist: []uint16{1, 2}, GHR: 0x5a5a,
		BTBSets: 2, BTBAssoc: 2,
		BTBValid: []byte{1, 0, 1, 1}, BTBTag: []uint32{10, 0, 30, 40},
		BTBTarget: []uint32{100, 0, 300, 400}, BTBLRU: []uint64{1, 0, 3, 4},
		BTBClock: 9, RASStack: []uint32{0x400100, 0x400200},
		RASTop: 1, RASCount: 2, CondBranches: 500, CondMispred: 25,
	}
	mkCache := func(sets, assoc int) *cache.CacheState {
		n := sets * assoc
		cs := &cache.CacheState{
			Sets: sets, Assoc: assoc,
			Valid: make([]byte, n), Dirty: make([]byte, n),
			Tag: make([]uint32, n), LRU: make([]uint64, n),
			MRU: make([]int32, sets), Clock: 77,
			Accesses: 1000, Misses: 50, Writes: 200, Writebacks: 10,
		}
		for i := 0; i < n; i++ {
			cs.Valid[i] = byte(i % 2)
			cs.Tag[i] = uint32(i * 3)
			cs.LRU[i] = uint64(i)
		}
		return cs
	}
	meta := ckpt.Meta{
		Benchmark: "li", Config: "bit-slice-x4",
		Scheduler: "event", Emulator: "fast",
		Insts: 50_000, Cycles: 61_234, ID: 4,
	}
	if delta {
		meta.BaseID = 3
		meta.BaseFile = "ckpt-000000040000.pok"
	}
	return &ckpt.Snapshot{
		Meta:  meta,
		Emu:   es,
		Bpred: bs,
		Hier:  &cache.HierarchyState{L1I: mkCache(4, 1), L1D: mkCache(4, 4), L2: mkCache(8, 4)},
		DTLB: &cache.TLBState{
			Sets: 2, Assoc: 2, Valid: []byte{1, 1, 0, 0},
			Tag: []uint32{5, 6, 0, 0}, LRU: []uint64{2, 1, 0, 0},
			Clock: 3, Accesses: 80, Misses: 4,
		},
		Core: []byte(`{"now":61234}`),
		Extra: map[string][]byte{
			"inject":    []byte(`{"total":3}`),
			"telemetry": []byte(`{"cycles_sampled":61234}`),
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, delta := range []bool{false, true} {
		s := sampleSnapshot(delta)
		got, err := ckpt.Decode(ckpt.Encode(s))
		if err != nil {
			t.Fatalf("delta=%v: %v", delta, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("delta=%v: round trip lost state", delta)
		}
		if got.IsDelta() != delta {
			t.Errorf("delta=%v: IsDelta() = %v", delta, got.IsDelta())
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := string(ckpt.Encode(sampleSnapshot(false)))
	b := string(ckpt.Encode(sampleSnapshot(false)))
	if a != b {
		t.Fatal("two encodes of the same state differ")
	}
}

// TestDecodeTruncatedAtEveryPrefix cuts the file at every byte offset:
// each prefix must decode to a *TruncatedError — the tolerated
// crash-mid-write shape — never a panic, success, or misclassification
// as corruption.
func TestDecodeTruncatedAtEveryPrefix(t *testing.T) {
	data := ckpt.Encode(sampleSnapshot(false))
	for i := 0; i < len(data); i++ {
		_, err := ckpt.Decode(data[:i])
		if err == nil {
			t.Fatalf("prefix %d/%d decoded successfully", i, len(data))
		}
		if !ckpt.IsTruncated(err) {
			t.Fatalf("prefix %d/%d: got %T (%v), want *TruncatedError", i, len(data), err, err)
		}
	}
}

// TestDecodeBitFlips flips one bit at every byte offset: every mutation
// must be refused with a structured error (hash mismatch, bad magic,
// version mismatch, or a malformed-payload classification) — a flipped
// checkpoint must never restore.
func TestDecodeBitFlips(t *testing.T) {
	data := ckpt.Encode(sampleSnapshot(false))
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			copy(mut, data)
			mut[i] ^= bit
			_, err := ckpt.Decode(mut)
			if err == nil {
				t.Fatalf("flip at byte %d (bit %#x) decoded successfully", i, bit)
			}
			var ve *ckpt.VersionError
			var ce *ckpt.CorruptError
			var te *ckpt.TruncatedError
			if !errors.As(err, &ve) && !errors.As(err, &ce) && !errors.As(err, &te) {
				t.Fatalf("flip at byte %d: unstructured error %T: %v", i, err, err)
			}
		}
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	data := ckpt.Encode(sampleSnapshot(false))
	data[4] ^= 0xFF // little-endian version field
	_, err := ckpt.Decode(data)
	var ve *ckpt.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %T (%v), want *VersionError", err, err)
	}
	if ve.Want != ckpt.Version {
		t.Errorf("VersionError.Want = %d", ve.Want)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.pok")
	s := sampleSnapshot(false)
	if err := ckpt.WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Error("file round trip lost state")
	}
	// Overwrite must replace atomically, leaving no temp litter.
	s2 := sampleSnapshot(false)
	s2.Meta.Insts = 99_999
	if err := ckpt.WriteFile(path, s2); err != nil {
		t.Fatal(err)
	}
	got2, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Meta.Insts != 99_999 {
		t.Error("overwrite did not land")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp file litter: %d entries", len(ents))
	}
}

// TestWriterDeltaChain drives the disk Writer through full + delta
// snapshots and resolves the chain back with LoadChain.
func TestWriterDeltaChain(t *testing.T) {
	dir := t.TempDir()
	w := &ckpt.Writer{Dir: dir, RebaseEvery: 3}

	mk := func(insts uint64, partial bool, pages ...emu.MemPage) *ckpt.Snapshot {
		s := sampleSnapshot(false)
		s.Meta.Insts = insts
		s.Meta.BaseID, s.Meta.BaseFile = 0, ""
		s.Emu.Partial = partial
		s.Emu.ICount = insts
		s.Emu.Pages = pages
		return s
	}
	page := func(fill byte) []byte {
		b := make([]byte, emu.PageSize)
		for i := range b {
			b[i] = fill
		}
		return b
	}

	if !w.WantFull() {
		t.Fatal("first write must be full")
	}
	full := mk(1000, false,
		emu.MemPage{Num: 1, Data: page(0xA)},
		emu.MemPage{Num: 2, Data: page(0xB)})
	if err := w.Write(full); err != nil {
		t.Fatal(err)
	}
	if w.WantFull() {
		t.Fatal("second write should be a delta")
	}
	d1 := mk(2000, true, emu.MemPage{Num: 2, Data: page(0xC)})
	if err := w.Write(d1); err != nil {
		t.Fatal(err)
	}
	d2 := mk(3000, true, emu.MemPage{Num: 3, Data: page(0xD)})
	if err := w.Write(d2); err != nil {
		t.Fatal(err)
	}
	if !w.WantFull() {
		t.Fatal("fourth write must rebase")
	}

	got, err := ckpt.LoadChain(w.LastPath())
	if err != nil {
		t.Fatal(err)
	}
	if got.IsDelta() || got.Emu.Partial {
		t.Fatal("LoadChain returned a delta")
	}
	if got.Meta.Insts != 3000 {
		t.Errorf("merged Insts = %d", got.Meta.Insts)
	}
	wantPages := map[uint32]byte{1: 0xA, 2: 0xC, 3: 0xD}
	if len(got.Emu.Pages) != len(wantPages) {
		t.Fatalf("merged %d pages, want %d", len(got.Emu.Pages), len(wantPages))
	}
	for _, pg := range got.Emu.Pages {
		if pg.Data[0] != wantPages[pg.Num] {
			t.Errorf("page %d merged wrong generation (%#x)", pg.Num, pg.Data[0])
		}
	}
}

func TestWriterDeltaWithoutPriorRefused(t *testing.T) {
	w := &ckpt.Writer{Dir: t.TempDir()}
	s := sampleSnapshot(false)
	s.Emu.Partial = true
	if err := w.Write(s); err == nil {
		t.Fatal("delta with no prior snapshot accepted")
	}
}

// TestLoadChainBrokenLinks: a missing base, a base-ID mismatch, and a
// self-referencing cycle must all be refused with structured errors.
func TestLoadChainBrokenLinks(t *testing.T) {
	dir := t.TempDir()

	// Delta whose BaseFile does not exist.
	orphan := sampleSnapshot(true)
	orphan.Meta.BaseFile = "missing.pok"
	orphanPath := filepath.Join(dir, "orphan.pok")
	if err := ckpt.WriteFile(orphanPath, orphan); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.LoadChain(orphanPath); err == nil {
		t.Error("orphan delta resolved")
	}

	// Base present but with the wrong snapshot ID.
	base := sampleSnapshot(false)
	base.Meta.ID = 99
	basePath := filepath.Join(dir, "base.pok")
	if err := ckpt.WriteFile(basePath, base); err != nil {
		t.Fatal(err)
	}
	mism := sampleSnapshot(true)
	mism.Meta.BaseID = 3
	mism.Meta.BaseFile = "base.pok"
	mismPath := filepath.Join(dir, "mism.pok")
	if err := ckpt.WriteFile(mismPath, mism); err != nil {
		t.Fatal(err)
	}
	var ce *ckpt.CorruptError
	if _, err := ckpt.LoadChain(mismPath); !errors.As(err, &ce) {
		t.Errorf("base-ID mismatch: got %v, want *CorruptError", err)
	}

	// Self-referencing cycle must hit the depth cap, not recurse forever.
	cyc := sampleSnapshot(true)
	cyc.Meta.ID = 3 // matches its own BaseID
	cyc.Meta.BaseFile = "cycle.pok"
	cycPath := filepath.Join(dir, "cycle.pok")
	if err := ckpt.WriteFile(cycPath, cyc); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.LoadChain(cycPath); !errors.As(err, &ce) {
		t.Errorf("cycle: got %v, want *CorruptError", err)
	}
}

func TestMemSinkKeepsLatest(t *testing.T) {
	m := &ckpt.MemSink{}
	if !m.WantFull() {
		t.Fatal("MemSink must always want full snapshots")
	}
	a := sampleSnapshot(false)
	b := sampleSnapshot(false)
	b.Meta.Insts = 2
	if err := m.Write(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(b); err != nil {
		t.Fatal(err)
	}
	last, n := m.Last()
	if n != 2 || last != b {
		t.Errorf("Last() = (%p, %d), want (%p, 2)", last, n, b)
	}
}

func TestWatchdogDeadline(t *testing.T) {
	fired := make(chan string, 1)
	w := &ckpt.Watchdog{
		Deadline: time.Now().Add(-time.Second),
		Poll:     time.Millisecond,
		Stop:     func(reason string) { fired <- reason },
	}
	cancel := w.Start()
	defer cancel()
	select {
	case reason := <-fired:
		if reason == "" {
			t.Error("empty stop reason")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire")
	}
}

func TestWatchdogHeapBudget(t *testing.T) {
	fired := make(chan string, 1)
	w := &ckpt.Watchdog{
		MaxHeapBytes: 1, // any live heap exceeds this
		Poll:         time.Millisecond,
		Stop:         func(reason string) { fired <- reason },
	}
	cancel := w.Start()
	defer cancel()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire")
	}
}

func TestWatchdogDisabledIsNoop(t *testing.T) {
	w := &ckpt.Watchdog{Stop: func(string) { t.Error("fired with no budget") }}
	cancel := w.Start()
	cancel()
}
