package ckpt_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"pok/internal/ckpt"
	"pok/internal/core"
	"pok/internal/workload"
)

// FuzzCheckpointDecode is the crash-safety contract for snapshot
// loading: whatever bytes a dying writer, a bad disk or an adversarial
// peer hands us, Decode must either succeed or return one of the three
// structured errors — never panic, never allocate unboundedly, never
// return an unclassified error. Successful decodes must additionally
// survive the Encode→Decode closure (a loaded snapshot can always be
// re-persisted).
//
// The seed corpus under testdata/fuzz/FuzzCheckpointDecode holds real
// snapshots from a core run plus damaged variants; regenerate it with
// POK_REGEN_FUZZ_CORPUS=1 go test ./internal/ckpt -run RegenerateFuzzCorpus
func FuzzCheckpointDecode(f *testing.F) {
	// Programmatic seeds covering the synthetic shape too.
	full := ckpt.Encode(sampleSnapshot(false))
	delta := ckpt.Encode(sampleSnapshot(true))
	f.Add(full)
	f.Add(delta)
	f.Add(full[:len(full)/3])
	f.Add([]byte{})
	f.Add([]byte("POKC"))
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ckpt.Decode(data)
		if err != nil {
			var ve *ckpt.VersionError
			var ce *ckpt.CorruptError
			var te *ckpt.TruncatedError
			if !errors.As(err, &ve) && !errors.As(err, &ce) && !errors.As(err, &te) {
				t.Fatalf("unstructured decode error %T: %v", err, err)
			}
			return
		}
		if s == nil {
			t.Fatal("nil snapshot with nil error")
		}
		if _, err := ckpt.Decode(ckpt.Encode(s)); err != nil {
			t.Fatalf("re-encode of accepted snapshot does not decode: %v", err)
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus from a
// real simulation run. Skipped unless POK_REGEN_FUZZ_CORPUS is set;
// run it after any snapshot format change and commit the result.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("POK_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set POK_REGEN_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	// Real snapshots: a short checked-in-cadence run of li through the
	// default bit-sliced machine, checkpointing to disk so the second
	// file is a genuine dirty-page delta.
	w := workload.MustGet("li")
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	wr := &ckpt.Writer{Dir: t.TempDir(), RebaseEvery: 8}
	sim, err := core.NewSim(prog, core.BitSliced(4), 6_000)
	if err != nil {
		t.Fatal(err)
	}
	if w.FastForward > 0 {
		if err := sim.FastForward(w.FastForward); err != nil {
			t.Fatal(err)
		}
	}
	sim.SetCheckpoint(2_000, wr, "li")
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(wr.Dir, "ckpt-*.pok"))
	if err != nil || len(files) < 2 {
		t.Fatalf("want >= 2 snapshot files, got %d (err %v)", len(files), err)
	}
	sort.Strings(files)
	fullRaw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	deltaRaw, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}

	writeSeed := func(name string, data []byte) {
		t.Helper()
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSeed("real-full", fullRaw)
	writeSeed("real-delta", deltaRaw)
	writeSeed("real-truncated", fullRaw[:len(fullRaw)*3/5])
	damaged := append([]byte(nil), fullRaw...)
	damaged[len(damaged)/2] ^= 0x10
	writeSeed("real-bitflip", damaged)
	writeSeed("garbage-header", []byte("POKC\x01\x00\x00\x00META garbage"))
	t.Logf("wrote %d seeds to %s (full %d bytes, delta %d bytes)",
		5, dir, len(fullRaw), len(deltaRaw))
}
