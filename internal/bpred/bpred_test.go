package bpred

import (
	"testing"

	"pok/internal/isa"
)

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(10)
	pc := uint32(0x400100)
	for i := 0; i < 16; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Fatal("always-taken branch predicted not-taken")
	}
	for i := 0; i < 16; i++ {
		g.Update(pc, false)
	}
	if g.Predict(pc) {
		t.Fatal("retrained branch still predicted taken")
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	// With history, gshare learns strict alternation; bimodal cannot.
	g := NewGshare(12)
	b := NewBimodal(12)
	pc := uint32(0x400200)
	gHits, bHits := 0, 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if g.Predict(pc) == taken {
			gHits++
		}
		if b.Predict(pc) == taken {
			bHits++
		}
		g.Update(pc, taken)
		b.Update(pc, taken)
	}
	if gHits < 1900 {
		t.Fatalf("gshare only %d/2000 on alternating pattern", gHits)
	}
	if bHits > 1200 {
		t.Fatalf("bimodal suspiciously good (%d/2000) on alternating pattern", bHits)
	}
}

func TestGshareHistoryShifts(t *testing.T) {
	g := NewGshare(8)
	g.Update(0, true)
	g.Update(0, false)
	g.Update(0, true)
	if g.History()&7 != 0b101 {
		t.Fatalf("history = %b", g.History())
	}
}

func TestBimodalSaturation(t *testing.T) {
	b := NewBimodal(8)
	pc := uint32(64)
	for i := 0; i < 100; i++ {
		b.Update(pc, true)
	}
	// One not-taken must not flip a saturated counter.
	b.Update(pc, false)
	if !b.Predict(pc) {
		t.Fatal("saturated counter flipped after one opposite outcome")
	}
}

func TestBTBHitMissAndLRU(t *testing.T) {
	btb := NewBTB(2, 2) // tiny: 2 sets, 2 ways
	if _, hit := btb.Lookup(0x100); hit {
		t.Fatal("cold BTB hit")
	}
	// Three PCs mapping to the same set (pc>>2 & 1): choose pcs with bit2=0.
	a, b, c := uint32(0x100), uint32(0x110), uint32(0x120)
	btb.Update(a, 0xaaaa)
	btb.Update(b, 0xbbbb)
	if tgt, hit := btb.Lookup(a); !hit || tgt != 0xaaaa {
		t.Fatal("a missing")
	}
	// Insert c: evicts b (a was just touched).
	btb.Update(c, 0xcccc)
	if _, hit := btb.Lookup(b); hit {
		t.Fatal("b should have been evicted")
	}
	if tgt, hit := btb.Lookup(c); !hit || tgt != 0xcccc {
		t.Fatal("c missing")
	}
	// Updating an existing entry replaces its target in place.
	btb.Update(c, 0xdddd)
	if tgt, _ := btb.Lookup(c); tgt != 0xdddd {
		t.Fatal("in-place update failed")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint32(3); want >= 1; want-- {
		v, ok := r.Pop()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v want %d", v, ok, want)
		}
	}
	// Overflow wraps, keeping the newest entries.
	for i := uint32(1); i <= 6; i++ {
		r.Push(i)
	}
	for want := uint32(6); want >= 3; want-- {
		v, ok := r.Pop()
		if !ok || v != want {
			t.Fatalf("after wrap pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("RAS should be empty after draining")
	}
}

func TestPredictorJumpKinds(t *testing.T) {
	p := NewDefault()
	// Direct jump: always taken, exact target.
	j := &isa.Inst{Op: isa.OpJ, Target: 0x500000 >> 2}
	pr := p.Predict(0x400000, j)
	if !pr.Taken || pr.Target != 0x500000 {
		t.Fatalf("j prediction %+v", pr)
	}
	if p.Resolve(0x400000, j, pr, true, 0x500000) {
		t.Fatal("direct jump flagged as mispredict")
	}

	// jal pushes the RAS; jr $ra pops it.
	jal := &isa.Inst{Op: isa.OpJAL, Target: 0x500000 >> 2}
	p.Predict(0x400010, jal)
	jr := &isa.Inst{Op: isa.OpJR, Rs: isa.RegRA}
	pr = p.Predict(0x500020, jr)
	if !pr.Taken || pr.Target != 0x400014 {
		t.Fatalf("jr prediction %+v, want return to 0x400014", pr)
	}

	// Indirect jr through a non-RA register trains the BTB.
	jr2 := &isa.Inst{Op: isa.OpJR, Rs: 8}
	pr = p.Predict(0x400100, jr2)
	p.Resolve(0x400100, jr2, pr, true, 0x600000)
	pr = p.Predict(0x400100, jr2)
	if pr.Target != 0x600000 {
		t.Fatalf("BTB-trained jr target = %x", pr.Target)
	}
}

func TestPredictorCondBranchAccuracyStats(t *testing.T) {
	p := NewDefault()
	br := &isa.Inst{Op: isa.OpBNE, Rs: 8, Rt: 0, Imm: 16}
	pc := uint32(0x400000)
	for i := 0; i < 100; i++ {
		pr := p.Predict(pc, br)
		p.Resolve(pc, br, pr, true, pr.Target)
	}
	if p.CondBranches != 100 {
		t.Fatalf("counted %d branches", p.CondBranches)
	}
	if p.Accuracy() < 0.9 {
		t.Fatalf("accuracy %.2f on monotone branch", p.Accuracy())
	}
}

func TestPredictorMispredictDetection(t *testing.T) {
	p := NewDefault()
	br := &isa.Inst{Op: isa.OpBEQ, Rs: 8, Rt: 9, Imm: 4}
	pc := uint32(0x400040)
	// Train not-taken.
	for i := 0; i < 8; i++ {
		pr := p.Predict(pc, br)
		p.Resolve(pc, br, pr, false, 0)
	}
	pr := p.Predict(pc, br)
	if pr.Taken {
		t.Fatal("should predict not-taken")
	}
	// Actual taken -> mispredict.
	if !p.Resolve(pc, br, pr, true, pr.Target) {
		t.Fatal("mispredict not detected")
	}
}

func TestLocalPredictorLearnsPeriodicPattern(t *testing.T) {
	// A branch taken every 3rd time: local history nails it, bimodal
	// cannot.
	l := NewLocal(10, 12)
	b := NewBimodal(12)
	pc := uint32(0x400300)
	lHits, bHits := 0, 0
	for i := 0; i < 3000; i++ {
		taken := i%3 == 0
		if l.Predict(pc) == taken {
			lHits++
		}
		if b.Predict(pc) == taken {
			bHits++
		}
		l.Update(pc, taken)
		b.Update(pc, taken)
	}
	if lHits < 2900 {
		t.Fatalf("local predictor %d/3000 on periodic pattern", lHits)
	}
	if bHits > 2400 {
		t.Fatalf("bimodal suspiciously good: %d/3000", bHits)
	}
	// Two branches with different patterns do not destroy each other's
	// history registers (they may share pattern entries).
	pc2 := uint32(0x400400)
	for i := 0; i < 2000; i++ {
		l.Update(pc, i%3 == 0)
		l.Update(pc2, true)
	}
	if !l.Predict(pc2) {
		t.Fatal("always-taken branch lost to interference")
	}
}

func TestLocalImplementsDirPredictor(t *testing.T) {
	var _ DirPredictor = NewLocal(8, 8)
}
