package bpred

import "fmt"

// State is a predictor's complete warm state in a flat, deterministic
// layout: direction-predictor tables, global/local histories, every BTB
// way (valid/tag/target/LRU stamps plus the LRU clock), the RAS ring,
// and the accuracy counters. Capturing and restoring it around a
// checkpoint keeps a resumed run's fetch redirects — and therefore its
// cycle-exact timing — bit-identical to an uninterrupted run.
type State struct {
	// DirKind names the direction predictor: "gshare", "bimodal" or
	// "local". Restore refuses a mismatched kind.
	DirKind  string
	DirTable []uint8  // gshare/bimodal counters, or local pattern table
	DirHist  []uint16 // local per-branch history registers
	GHR      uint32   // gshare global history

	BTBSets   int
	BTBAssoc  int
	BTBValid  []byte // one per way, row-major by set
	BTBTag    []uint32
	BTBTarget []uint32
	BTBLRU    []uint64
	BTBClock  uint64

	RASStack []uint32
	RASTop   int
	RASCount int

	CondBranches uint64
	CondMispred  uint64
}

// State captures the predictor's warm state.
func (p *Predictor) State() (*State, error) {
	st := &State{
		CondBranches: p.CondBranches,
		CondMispred:  p.CondMispred,
	}
	switch d := p.Dir.(type) {
	case *Gshare:
		st.DirKind = "gshare"
		st.DirTable = append([]uint8(nil), d.table...)
		st.GHR = d.ghr
	case *Bimodal:
		st.DirKind = "bimodal"
		st.DirTable = append([]uint8(nil), d.table...)
	case *Local:
		st.DirKind = "local"
		st.DirTable = append([]uint8(nil), d.pattern...)
		st.DirHist = append([]uint16(nil), d.hist...)
	default:
		return nil, fmt.Errorf("bpred: cannot snapshot direction predictor %T", p.Dir)
	}
	b := p.BTB
	st.BTBSets = len(b.sets)
	if st.BTBSets > 0 {
		st.BTBAssoc = len(b.sets[0])
	}
	n := st.BTBSets * st.BTBAssoc
	st.BTBValid = make([]byte, n)
	st.BTBTag = make([]uint32, n)
	st.BTBTarget = make([]uint32, n)
	st.BTBLRU = make([]uint64, n)
	for si, set := range b.sets {
		for wi := range set {
			i := si*st.BTBAssoc + wi
			if set[wi].valid {
				st.BTBValid[i] = 1
			}
			st.BTBTag[i] = set[wi].tag
			st.BTBTarget[i] = set[wi].target
			st.BTBLRU[i] = set[wi].lru
		}
	}
	st.BTBClock = b.clock
	st.RASStack = append([]uint32(nil), p.RAS.stack...)
	st.RASTop = p.RAS.top
	st.RASCount = p.RAS.count
	return st, nil
}

// Restore loads a captured state into a predictor of the same
// configuration, refusing geometry or kind mismatches.
func (p *Predictor) Restore(st *State) error {
	switch d := p.Dir.(type) {
	case *Gshare:
		if st.DirKind != "gshare" || len(st.DirTable) != len(d.table) {
			return fmt.Errorf("bpred: restore: have gshare/%d, snapshot %s/%d",
				len(d.table), st.DirKind, len(st.DirTable))
		}
		copy(d.table, st.DirTable)
		d.ghr = st.GHR
	case *Bimodal:
		if st.DirKind != "bimodal" || len(st.DirTable) != len(d.table) {
			return fmt.Errorf("bpred: restore: have bimodal/%d, snapshot %s/%d",
				len(d.table), st.DirKind, len(st.DirTable))
		}
		copy(d.table, st.DirTable)
	case *Local:
		if st.DirKind != "local" || len(st.DirTable) != len(d.pattern) || len(st.DirHist) != len(d.hist) {
			return fmt.Errorf("bpred: restore: have local/%d/%d, snapshot %s/%d/%d",
				len(d.pattern), len(d.hist), st.DirKind, len(st.DirTable), len(st.DirHist))
		}
		copy(d.pattern, st.DirTable)
		copy(d.hist, st.DirHist)
	default:
		return fmt.Errorf("bpred: cannot restore direction predictor %T", p.Dir)
	}
	b := p.BTB
	assoc := 0
	if len(b.sets) > 0 {
		assoc = len(b.sets[0])
	}
	if st.BTBSets != len(b.sets) || st.BTBAssoc != assoc {
		return fmt.Errorf("bpred: restore: BTB geometry %dx%d, snapshot %dx%d",
			len(b.sets), assoc, st.BTBSets, st.BTBAssoc)
	}
	if n := st.BTBSets * st.BTBAssoc; len(st.BTBValid) != n || len(st.BTBTag) != n ||
		len(st.BTBTarget) != n || len(st.BTBLRU) != n {
		return fmt.Errorf("bpred: restore: inconsistent BTB arrays")
	}
	for si, set := range b.sets {
		for wi := range set {
			i := si*st.BTBAssoc + wi
			set[wi] = btbEntry{
				valid:  st.BTBValid[i] != 0,
				tag:    st.BTBTag[i],
				target: st.BTBTarget[i],
				lru:    st.BTBLRU[i],
			}
		}
	}
	b.clock = st.BTBClock
	if len(st.RASStack) != len(p.RAS.stack) {
		return fmt.Errorf("bpred: restore: RAS depth %d, snapshot %d",
			len(p.RAS.stack), len(st.RASStack))
	}
	copy(p.RAS.stack, st.RASStack)
	p.RAS.top = st.RASTop
	p.RAS.count = st.RASCount
	p.CondBranches = st.CondBranches
	p.CondMispred = st.CondMispred
	return nil
}
