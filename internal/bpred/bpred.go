// Package bpred implements the branch prediction substrate the paper's
// machine configuration specifies (Table 2): a 64k-entry gshare direction
// predictor, a 4-way 512-set branch target buffer, and an 8-entry return
// address stack. A bimodal predictor is included for ablation studies.
package bpred

import "pok/internal/isa"

// saturating 2-bit counter helpers.
func ctrUp(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return 3
}

func ctrDown(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return 0
}

// Gshare is a global-history XOR-indexed table of 2-bit counters.
type Gshare struct {
	table    []uint8
	ghr      uint32
	histBits uint
	mask     uint32
}

// NewGshare builds a gshare predictor with 2^log2Entries counters and a
// matching history length.
func NewGshare(log2Entries uint) *Gshare {
	n := uint32(1) << log2Entries
	t := make([]uint8, n)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Gshare{table: t, histBits: log2Entries, mask: n - 1}
}

func (g *Gshare) index(pc uint32) uint32 {
	return (pc>>2 ^ g.ghr) & g.mask
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint32) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the predictor with the resolved outcome and shifts it into
// the global history register.
func (g *Gshare) Update(pc uint32, taken bool) {
	i := g.index(pc)
	if taken {
		g.table[i] = ctrUp(g.table[i])
	} else {
		g.table[i] = ctrDown(g.table[i])
	}
	g.ghr = g.ghr << 1 & g.mask
	if taken {
		g.ghr |= 1
	}
}

// History exposes the current global history (for tests and checkpointing).
func (g *Gshare) History() uint32 { return g.ghr }

// Bimodal is a PC-indexed table of 2-bit counters (used as an ablation
// baseline against gshare).
type Bimodal struct {
	table []uint8
	mask  uint32
}

// NewBimodal builds a bimodal predictor with 2^log2Entries counters.
func NewBimodal(log2Entries uint) *Bimodal {
	n := uint32(1) << log2Entries
	t := make([]uint8, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: n - 1}
}

// Predict returns the predicted direction for the branch at pc.
func (b *Bimodal) Predict(pc uint32) bool { return b.table[pc>>2&b.mask] >= 2 }

// Update trains the counter for pc.
func (b *Bimodal) Update(pc uint32, taken bool) {
	i := pc >> 2 & b.mask
	if taken {
		b.table[i] = ctrUp(b.table[i])
	} else {
		b.table[i] = ctrDown(b.table[i])
	}
}

// DirPredictor is the direction-prediction interface shared by gshare and
// bimodal.
type DirPredictor interface {
	Predict(pc uint32) bool
	Update(pc uint32, taken bool)
}

// btbEntry is one BTB way.
type btbEntry struct {
	valid  bool
	tag    uint32
	target uint32
	lru    uint64
}

// BTB is a set-associative branch target buffer.
type BTB struct {
	sets  [][]btbEntry
	mask  uint32
	clock uint64
}

// NewBTB builds a BTB with the given set count and associativity.
func NewBTB(nSets, assoc int) *BTB {
	// One flat backing array for every set (a per-set make() costs one
	// GC-tracked object per set on every predictor construction).
	backing := make([]btbEntry, nSets*assoc)
	sets := make([][]btbEntry, nSets)
	for i := range sets {
		sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return &BTB{sets: sets, mask: uint32(nSets - 1)}
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint32) (target uint32, hit bool) {
	set := b.sets[pc>>2&b.mask]
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			b.clock++
			set[i].lru = b.clock
			return set[i].target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc, evicting the LRU way.
func (b *BTB) Update(pc uint32, target uint32) {
	set := b.sets[pc>>2&b.mask]
	b.clock++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].target = target
			set[i].lru = b.clock
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{valid: true, tag: pc, target: target, lru: b.clock}
}

// RAS is a fixed-depth circular return address stack. Overflow overwrites
// the oldest entry; underflow returns garbage (0), as in real hardware.
type RAS struct {
	stack []uint32
	top   int
	count int
}

// NewRAS builds a return address stack of the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint32, depth)}
}

// Push records a return address (on call instructions).
func (r *RAS) Push(addr uint32) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.count < len(r.stack) {
		r.count++
	}
}

// Pop predicts the return target (on return instructions).
func (r *RAS) Pop() (uint32, bool) {
	if r.count == 0 {
		return 0, false
	}
	v := r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.count--
	return v, true
}

// Predictor bundles the full front-end prediction machinery per Table 2.
type Predictor struct {
	Dir DirPredictor
	BTB *BTB
	RAS *RAS

	// Stats.
	CondBranches uint64
	CondMispred  uint64
}

// NewDefault builds the paper's configuration: 64k-entry gshare, 4-way
// 512-set BTB, 8-entry RAS.
func NewDefault() *Predictor {
	return &Predictor{
		Dir: NewGshare(16),
		BTB: NewBTB(512, 4),
		RAS: NewRAS(8),
	}
}

// Prediction is the front end's guess for one control instruction.
type Prediction struct {
	Taken  bool
	Target uint32 // valid when Taken
}

// Predict produces the fetch-redirect prediction for the control
// instruction in at pc. Unconditional direct jumps are always taken with a
// computed target; jr-class instructions use the RAS (for returns) or the
// BTB; conditional branches combine the direction predictor with the
// branch's encoded target.
func (p *Predictor) Predict(pc uint32, in *isa.Inst) Prediction {
	switch in.Op {
	case isa.OpJ:
		return Prediction{Taken: true, Target: (pc+4)&0xf000_0000 | in.Target<<2}
	case isa.OpJAL:
		p.RAS.Push(pc + 4)
		return Prediction{Taken: true, Target: (pc+4)&0xf000_0000 | in.Target<<2}
	case isa.OpJALR:
		p.RAS.Push(pc + 4)
		if t, ok := p.BTB.Lookup(pc); ok {
			return Prediction{Taken: true, Target: t}
		}
		return Prediction{Taken: true, Target: pc + 4} // unknown target
	case isa.OpJR:
		if in.Rs == isa.RegRA {
			if t, ok := p.RAS.Pop(); ok {
				return Prediction{Taken: true, Target: t}
			}
		}
		if t, ok := p.BTB.Lookup(pc); ok {
			return Prediction{Taken: true, Target: t}
		}
		return Prediction{Taken: true, Target: pc + 4}
	default: // conditional branches
		taken := p.Dir.Predict(pc)
		target := uint32(int64(pc) + 4 + int64(in.Imm)*4)
		return Prediction{Taken: taken, Target: target}
	}
}

// Resolve trains the predictor with the actual outcome of a control
// instruction and reports whether the earlier prediction was wrong.
func (p *Predictor) Resolve(pc uint32, in *isa.Inst, pred Prediction, taken bool, target uint32) bool {
	misp := pred.Taken != taken || (taken && pred.Target != target)
	switch in.Op {
	case isa.OpJ, isa.OpJAL:
		// Direct jumps never mispredict.
	case isa.OpJR, isa.OpJALR:
		p.BTB.Update(pc, target)
	default:
		p.CondBranches++
		if pred.Taken != taken {
			p.CondMispred++
		}
		p.Dir.Update(pc, taken)
		if taken {
			p.BTB.Update(pc, target)
		}
	}
	return misp
}

// Accuracy returns the conditional branch direction accuracy so far.
func (p *Predictor) Accuracy() float64 {
	if p.CondBranches == 0 {
		return 1
	}
	return 1 - float64(p.CondMispred)/float64(p.CondBranches)
}

// Local is a two-level local-history predictor (PAg): a table of
// per-branch history registers indexing a shared pattern table of 2-bit
// counters. It captures per-branch periodic patterns that gshare's global
// history can miss, at the cost of interference in the shared tables.
type Local struct {
	hist     []uint16
	pattern  []uint8
	histMask uint16
	pcMask   uint32
}

// NewLocal builds a local predictor with 2^log2Hist history registers of
// log2Pattern bits each and a 2^log2Pattern-entry pattern table.
func NewLocal(log2Hist, log2Pattern uint) *Local {
	p := make([]uint8, 1<<log2Pattern)
	for i := range p {
		p[i] = 2
	}
	return &Local{
		hist:     make([]uint16, 1<<log2Hist),
		pattern:  p,
		histMask: uint16(1<<log2Pattern - 1),
		pcMask:   uint32(1<<log2Hist - 1),
	}
}

// Predict returns the predicted direction for the branch at pc.
func (l *Local) Predict(pc uint32) bool {
	h := l.hist[pc>>2&l.pcMask] & l.histMask
	return l.pattern[h] >= 2
}

// Update trains the pattern counter and shifts the branch's history.
func (l *Local) Update(pc uint32, taken bool) {
	i := pc >> 2 & l.pcMask
	h := l.hist[i] & l.histMask
	if taken {
		l.pattern[h] = ctrUp(l.pattern[h])
	} else {
		l.pattern[h] = ctrDown(l.pattern[h])
	}
	l.hist[i] = l.hist[i] << 1 & l.histMask
	if taken {
		l.hist[i] |= 1
	}
}
