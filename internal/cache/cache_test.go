package cache

import (
	"math/rand"
	"testing"
)

func small() *Cache {
	// 8 sets x 2 ways x 16B lines = 256B.
	return MustNew(Config{Name: "t", SizeBytes: 256, LineBytes: 16, Assoc: 2, HitLatency: 1})
}

func TestGeometry(t *testing.T) {
	c := MustNew(Config{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4})
	if c.OffsetBits() != 6 {
		t.Fatalf("offset bits %d", c.OffsetBits())
	}
	if c.IndexBits() != 8 { // 64KB/64B/4 = 256 sets
		t.Fatalf("index bits %d", c.IndexBits())
	}
	if c.TagLowBit() != 14 || c.TagBits() != 18 {
		t.Fatalf("tag low %d bits %d", c.TagLowBit(), c.TagBits())
	}
	// The paper's observation: with 16 address bits known, this cache has
	// exactly 2 usable partial tag bits.
	if c.KnownTagBits(16) != 2 {
		t.Fatalf("KnownTagBits(16) = %d, want 2", c.KnownTagBits(16))
	}
	if c.KnownTagBits(8) != 0 || c.KnownTagBits(32) != 18 {
		t.Fatal("KnownTagBits clamping wrong")
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 100, LineBytes: 16, Assoc: 2}, // non power of two
		{SizeBytes: 0, LineBytes: 16, Assoc: 2},
		{SizeBytes: 64, LineBytes: 64, Assoc: 4}, // < 1 set
		{SizeBytes: 256, LineBytes: 16, Assoc: 3},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted bad geometry", cfg)
		}
	}
}

func TestHitMissAndLRU(t *testing.T) {
	c := small()
	a := uint32(0x0000) // set 0
	b := uint32(0x0100) // set 0, different tag (bit 8 is first tag bit)
	d := uint32(0x0200) // set 0, third tag
	if c.Access(a) {
		t.Fatal("cold hit")
	}
	if !c.Access(a) {
		t.Fatal("warm miss")
	}
	c.Access(b) // fills way 2
	c.Access(a) // touch a so b is LRU
	c.Access(d) // evicts b
	if c.Lookup(b) {
		t.Fatal("b should be evicted")
	}
	if !c.Lookup(a) || !c.Lookup(d) {
		t.Fatal("a and d should be resident")
	}
	if c.Accesses != 5 || c.Misses != 3 {
		t.Fatalf("stats %d/%d", c.Misses, c.Accesses)
	}
}

func TestLookupDoesNotModify(t *testing.T) {
	c := small()
	c.Access(0)
	before := c.Accesses
	c.Lookup(0)
	c.Lookup(0x1000)
	if c.Accesses != before {
		t.Fatal("Lookup counted as access")
	}
}

func TestClassifyPartial(t *testing.T) {
	c := small() // tag low bit = 4+3 = 7
	// Two lines in set 0 whose tags differ only at tag bit 2.
	a := uint32(0x0000) // tag 0b000
	b := uint32(0x0200) // tag 0b100
	c.Access(a)
	c.Access(b)

	// Probe with a's address, 0 tag bits known: both match -> multi.
	if k := c.ClassifyPartial(a, 0); k != MultiMatch {
		t.Fatalf("0 bits: %v", k)
	}
	// 2 bits known: tags 000 vs 100 still agree in low 2 bits -> multi.
	if k := c.ClassifyPartial(a, 2); k != MultiMatch {
		t.Fatalf("2 bits: %v", k)
	}
	// 3 bits: unique and full-correct -> single hit.
	if k := c.ClassifyPartial(a, 3); k != SingleHit {
		t.Fatalf("3 bits: %v", k)
	}
	// Probe an address matching b's low tag bits but differing above:
	// tag 0b...1100: low 3 bits match b's 100 only if bits agree.
	probe := uint32(0x0a00) // tag 0b10100 -> low3 = 100 matches b, full differs
	if k := c.ClassifyPartial(probe, 3); k != SingleMiss {
		t.Fatalf("single-miss probe: %v", k)
	}
	// Unrelated set/tag: zero match.
	if k := c.ClassifyPartial(0x0480, 3); k != ZeroMatch { // set 0, tag 0b01001? ensure no match
		// 0x480>>7 = 0b1001 -> low 3 = 001, not 000 or 100
		t.Fatalf("zero probe: %v", k)
	}
	// Full-width classification matches a real lookup.
	if k := c.ClassifyPartial(a, 32); k != SingleHit {
		t.Fatalf("full bits: %v", k)
	}
}

func TestClassifyPartialConvergence(t *testing.T) {
	// Property: with all tag bits known, classification is SingleHit iff
	// Lookup hits, and ZeroMatch/SingleMiss otherwise.
	c := MustNew(Config{Name: "t", SizeBytes: 8 << 10, LineBytes: 32, Assoc: 4})
	r := rand.New(rand.NewSource(7))
	addrs := make([]uint32, 2000)
	for i := range addrs {
		addrs[i] = r.Uint32() % (1 << 20)
	}
	for _, a := range addrs {
		k := c.ClassifyPartial(a, c.TagBits())
		hit := c.Lookup(a)
		if hit != (k == SingleHit) {
			t.Fatalf("full classification %v vs hit %v", k, hit)
		}
		if !hit && k == MultiMatch {
			t.Fatal("full-width multi match is impossible")
		}
		c.Access(a)
	}
}

func TestPredictWayMRU(t *testing.T) {
	c := small()
	a := uint32(0x0000) // tag 000
	b := uint32(0x0200) // tag 100
	c.Access(a)
	c.Access(b) // b is now MRU
	// 2 known tag bits: both ways match; MRU policy must pick b's way.
	way, any, correct := c.PredictWay(b, 2)
	if !any || !correct {
		t.Fatalf("PredictWay(b): way=%d any=%v correct=%v", way, any, correct)
	}
	// Predicting for a with 2 bits picks b's way (MRU) -> incorrect.
	_, any, correct = c.PredictWay(a, 2)
	if !any || correct {
		t.Fatalf("PredictWay(a) should mispredict, correct=%v", correct)
	}
	// Touch a; now MRU favors a.
	c.Access(a)
	_, _, correct = c.PredictWay(a, 2)
	if !correct {
		t.Fatal("MRU did not follow most recent access")
	}
	// No match at all.
	_, any, _ = c.PredictWay(0x0480, 3)
	if any {
		t.Fatal("phantom match")
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	for i := 0; i < 10; i++ {
		c.Access(0)
	}
	if got := c.MissRate(); got != 0.1 {
		t.Fatalf("miss rate %.2f", got)
	}
	var empty Cache
	if empty.MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := DefaultConfig()
	// Cold access: L1 miss, L2 miss, memory.
	lat, hit := h.AccessData(0x1000)
	if hit || lat != 1+6+100 {
		t.Fatalf("cold: lat=%d hit=%v", lat, hit)
	}
	// Now resident everywhere.
	lat, hit = h.AccessData(0x1000)
	if !hit || lat != 1 {
		t.Fatalf("warm: lat=%d hit=%v", lat, hit)
	}
	// Same line, different word: still a hit.
	lat, hit = h.AccessData(0x1004)
	if !hit || lat != 1 {
		t.Fatalf("same-line: lat=%d hit=%v", lat, hit)
	}
	// Instruction side is independent of data side.
	lat, hit = h.AccessInst(0x1000)
	if hit {
		t.Fatal("L1I warm from L1D access")
	}
	if lat != 1+6 { // L2 already holds the line from the data access
		t.Fatalf("L1I miss lat=%d", lat)
	}
}

func TestEvictionStress(t *testing.T) {
	// Walk far more lines than the cache holds; every revisit of a long
	// stride must miss, and stats must account exactly.
	c := small()
	n := 0
	for pass := 0; pass < 2; pass++ {
		for a := uint32(0); a < 64*16; a += 16 { // 64 lines, cache holds 16
			c.Access(a)
			n++
		}
	}
	if c.Accesses != uint64(n) {
		t.Fatal("access count")
	}
	if c.Misses != uint64(n) { // LRU thrashing: all references miss
		t.Fatalf("expected universal misses, got %d/%d", c.Misses, c.Accesses)
	}
}

func TestWriteBackAccounting(t *testing.T) {
	c := small() // 8 sets x 2 ways x 16B
	// Dirty a line, then evict it with two other tags in the same set.
	c.AccessWrite(0x0000)
	c.Access(0x0100)
	c.Access(0x0200) // evicts 0x0000 (dirty) -> writeback
	if c.Writebacks != 1 || c.Writes != 1 {
		t.Fatalf("writebacks=%d writes=%d", c.Writebacks, c.Writes)
	}
	// Clean eviction does not count.
	c.Access(0x0300)
	if c.Writebacks != 1 {
		t.Fatal("clean eviction counted as writeback")
	}
	// Re-dirtying a resident line is a hit and sets dirty.
	c2 := small()
	c2.Access(0x40)
	c2.AccessWrite(0x40)
	c2.Access(0x140)
	c2.Access(0x240) // evict dirty 0x40
	if c2.Writebacks != 1 {
		t.Fatal("dirty-on-hit lost")
	}
}

func TestHierarchyWriteData(t *testing.T) {
	h := DefaultConfig()
	if h.WriteData(0x4000) {
		t.Fatal("cold store hit")
	}
	if !h.WriteData(0x4000) {
		t.Fatal("warm store missed")
	}
	if h.L1D.Writes != 2 {
		t.Fatalf("writes = %d", h.L1D.Writes)
	}
}
