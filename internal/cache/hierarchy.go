package cache

// Hierarchy composes the two-level memory system of the paper's machine
// configuration (Table 2): split L1 instruction and data caches backed by
// a unified L2 and a fixed-latency main memory.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache

	MemLatency int
}

// DefaultConfig returns the paper's Table 2 memory system: 64KB 2-way L1I,
// 64KB 4-way L1D (1-cycle), 1MB 4-way unified L2 (6-cycle), 100-cycle
// memory, all with 64B lines.
func DefaultConfig() *Hierarchy {
	return &Hierarchy{
		L1I: MustNew(Config{Name: "L1I", SizeBytes: 64 << 10, LineBytes: 64,
			Assoc: 2, HitLatency: 1}),
		L1D: MustNew(Config{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64,
			Assoc: 4, HitLatency: 1}),
		L2: MustNew(Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64,
			Assoc: 4, HitLatency: 6}),
		MemLatency: 100,
	}
}

// AccessData references addr through L1D (and on a miss, L2 and memory),
// returning the total access latency in cycles and whether L1D hit.
func (h *Hierarchy) AccessData(addr uint32) (latency int, l1Hit bool) {
	lat := h.L1D.Config().HitLatency
	if h.L1D.Access(addr) {
		return lat, true
	}
	lat += h.L2.Config().HitLatency
	if h.L2.Access(addr) {
		return lat, false
	}
	return lat + h.MemLatency, false
}

// WriteData performs a store reference through L1D (write-back,
// write-allocate), returning whether L1D hit. Stores drain through the
// store buffer, so no latency is returned.
func (h *Hierarchy) WriteData(addr uint32) bool {
	if h.L1D.AccessWrite(addr) {
		return true
	}
	if !h.L2.AccessWrite(addr) {
		_ = h.MemLatency // refill from memory; latency absorbed by the buffer
	}
	return false
}

// AccessInst references addr through L1I, returning latency and L1I hit.
func (h *Hierarchy) AccessInst(addr uint32) (latency int, l1Hit bool) {
	lat := h.L1I.Config().HitLatency
	if h.L1I.Access(addr) {
		return lat, true
	}
	lat += h.L2.Config().HitLatency
	if h.L2.Access(addr) {
		return lat, false
	}
	return lat + h.MemLatency, false
}
