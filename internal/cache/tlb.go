package cache

import (
	"fmt"
	"math/bits"
)

// TLBConfig describes a translation lookaside buffer. The paper's §7
// evaluation assumes a virtually-indexed, virtually-tagged L1 (or page
// coloring) so the TLB sits off the partial-tag critical path; modeling
// it lets the simulator also evaluate a physically-tagged design where
// the translation joins the full-tag verification.
type TLBConfig struct {
	Name        string
	Entries     int
	Assoc       int // 0 means fully associative
	PageBits    int // log2 page size (default 12 = 4KB)
	MissLatency int // cycles to walk/refill on a miss
}

type tlbEntry struct {
	valid bool
	tag   uint32
	lru   uint64
}

// TLB is a set-associative (or fully associative) translation buffer with
// true-LRU replacement.
type TLB struct {
	cfg      TLBConfig
	sets     [][]tlbEntry
	setMask  uint32
	pageBits uint
	clock    uint64

	Accesses uint64
	Misses   uint64
}

// normalize applies the TLBConfig defaults (4KB pages, fully associative
// when Assoc is zero or exceeds the entry count).
func (cfg TLBConfig) normalize() TLBConfig {
	if cfg.PageBits == 0 {
		cfg.PageBits = 12
	}
	if cfg.Assoc == 0 || cfg.Assoc > cfg.Entries {
		cfg.Assoc = cfg.Entries // fully associative
	}
	return cfg
}

// Validate checks the (normalized) geometry is realizable: a positive
// entry count split into a power-of-two number of equal sets.
func (cfg TLBConfig) Validate() error {
	cfg = cfg.normalize()
	if cfg.Entries <= 0 || cfg.Entries%cfg.Assoc != 0 {
		return fmt.Errorf("cache: bad TLB geometry %+v", cfg)
	}
	if nSets := cfg.Entries / cfg.Assoc; bits.OnesCount(uint(nSets)) != 1 {
		return fmt.Errorf("cache: TLB set count %d not a power of two", nSets)
	}
	return nil
}

// NewTLB builds a TLB, rejecting invalid geometry with the Validate
// error.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	cfg = cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.Entries / cfg.Assoc
	sets := make([][]tlbEntry, nSets)
	for i := range sets {
		sets[i] = make([]tlbEntry, cfg.Assoc)
	}
	return &TLB{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint32(nSets - 1),
		pageBits: uint(cfg.PageBits),
	}, nil
}

// MustNewTLB builds a TLB from a geometry the caller vouches for; it
// panics on a Validate error.
func MustNewTLB(cfg TLBConfig) *TLB {
	t, err := NewTLB(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB geometry.
func (t *TLB) Config() TLBConfig { return t.cfg }

func (t *TLB) split(vaddr uint32) (set, tag uint32) {
	vpn := vaddr >> t.pageBits
	return vpn & t.setMask, vpn
}

// Lookup reports whether vaddr's page is resident, without updating state.
func (t *TLB) Lookup(vaddr uint32) bool {
	set, tag := t.split(vaddr)
	for _, e := range t.sets[set] {
		if e.valid && e.tag == tag {
			return true
		}
	}
	return false
}

// Access translates vaddr, refilling on a miss, and returns the added
// latency (0 on a hit, MissLatency on a miss) and whether it hit.
func (t *TLB) Access(vaddr uint32) (latency int, hit bool) {
	t.Accesses++
	t.clock++
	set, tag := t.split(vaddr)
	ways := t.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = t.clock
			return 0, true
		}
	}
	t.Misses++
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = tlbEntry{valid: true, tag: tag, lru: t.clock}
	return t.cfg.MissLatency, false
}

// MissRate returns the observed miss rate.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// DefaultDTLB returns a 64-entry fully-associative 4KB-page data TLB with
// a 30-cycle walk, a typical configuration for the paper's era.
func DefaultDTLB() *TLB {
	return MustNewTLB(TLBConfig{Name: "DTLB", Entries: 64, PageBits: 12, MissLatency: 30})
}
