// Package cache models the set-associative caches of the simulated memory
// hierarchy, including the partial tag matching mechanism of paper §5.2:
// once the low 16 bits of an effective address are known, the cache index
// and a few low tag bits are available, which is enough to speculatively
// select a way (with MRU way prediction) or to signal a miss early and
// non-speculatively.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitLatency int // cycles
}

// Validate checks the geometry is a realizable power-of-two design.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case bits.OnesCount(uint(c.SizeBytes)) != 1,
		bits.OnesCount(uint(c.LineBytes)) != 1,
		bits.OnesCount(uint(c.Assoc)) != 1:
		return fmt.Errorf("cache %s: geometry must be powers of two", c.Name)
	case c.SizeBytes < c.LineBytes*c.Assoc:
		return fmt.Errorf("cache %s: fewer than one set", c.Name)
	}
	return nil
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	lru   uint64
}

// Cache is one level of set-associative cache with true-LRU replacement
// and an MRU way pointer per set for way prediction.
type Cache struct {
	cfg        Config
	nSets      int
	offsetBits int
	indexBits  int
	sets       [][]line
	mru        []int
	clock      uint64

	// Stats.
	Accesses   uint64
	Misses     uint64
	Writes     uint64
	Writebacks uint64 // dirty victims evicted
}

// New builds a cache, rejecting invalid geometry with the Validate error
// so tools that accept user-supplied machine descriptions can surface it
// instead of crashing.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	// One flat backing array for every set: a per-set make() cost
	// thousands of tiny GC-tracked objects per simulator construction
	// (visible in pok-bench's all-in wall time), and the contiguous
	// layout keeps neighbouring sets on shared cache lines.
	backing := make([]line, nSets*cfg.Assoc)
	sets := make([][]line, nSets)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{
		cfg:        cfg,
		nSets:      nSets,
		offsetBits: bits.TrailingZeros(uint(cfg.LineBytes)),
		indexBits:  bits.TrailingZeros(uint(nSets)),
		sets:       sets,
		mru:        make([]int, nSets),
	}, nil
}

// MustNew builds a cache from a geometry the caller vouches for (the
// baked-in Table-2 machine descriptions); it panics on a Validate error,
// which for those configurations is provably unreachable.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// OffsetBits returns the number of line-offset address bits.
func (c *Cache) OffsetBits() int { return c.offsetBits }

// IndexBits returns the number of set-index address bits.
func (c *Cache) IndexBits() int { return c.indexBits }

// TagLowBit returns the position of the lowest tag bit: tag bits occupy
// address bits [TagLowBit, 32).
func (c *Cache) TagLowBit() int { return c.offsetBits + c.indexBits }

// TagBits returns how many tag bits each line stores.
func (c *Cache) TagBits() int { return 32 - c.TagLowBit() }

func (c *Cache) split(addr uint32) (set uint32, tag uint32) {
	set = addr >> c.offsetBits & (uint32(c.nSets) - 1)
	tag = addr >> c.TagLowBit()
	return set, tag
}

// Lookup reports whether addr hits without updating any state.
func (c *Cache) Lookup(addr uint32) bool {
	set, tag := c.split(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a read reference to addr, updating LRU/MRU state and
// filling on a miss. It returns whether the reference hit.
func (c *Cache) Access(addr uint32) bool { return c.reference(addr, false) }

// AccessWrite performs a write reference (write-back, write-allocate):
// the line is marked dirty and a dirty victim eviction counts as a
// write-back.
func (c *Cache) AccessWrite(addr uint32) bool { return c.reference(addr, true) }

func (c *Cache) reference(addr uint32, write bool) bool {
	c.Accesses++
	if write {
		c.Writes++
	}
	c.clock++
	set, tag := c.split(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			ways[i].dirty = ways[i].dirty || write
			c.mru[set] = i
			return true
		}
	}
	c.Misses++
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		c.Writebacks++
	}
	ways[victim] = line{valid: true, dirty: write, tag: tag, lru: c.clock}
	c.mru[set] = victim
	return false
}

// MissRate returns the observed miss rate.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// PartialKind classifies a partial tag match (paper §5.2, Figure 4).
type PartialKind uint8

// Partial tag match outcomes. SingleHit and ZeroMatch are the cases that
// converge as more tag bits are compared: they equal the hit and miss
// rates of the cache respectively.
const (
	// ZeroMatch: no way matches the partial tag — the access is a miss,
	// known early and non-speculatively.
	ZeroMatch PartialKind = iota
	// SingleHit: exactly one way matches the partial tag and that way also
	// matches the full tag (a correct early selection).
	SingleHit
	// SingleMiss: exactly one way matches the partial tag but the full tag
	// comparison will reveal a mismatch (the access is a miss).
	SingleMiss
	// MultiMatch: more than one way matches the partial tag bits so far; a
	// unique member cannot yet be determined.
	MultiMatch
)

// String returns the Figure 4 legend label for the kind.
func (k PartialKind) String() string {
	switch k {
	case ZeroMatch:
		return "zero match"
	case SingleHit:
		return "single entry - hit"
	case SingleMiss:
		return "single entry - miss"
	case MultiMatch:
		return "mult match"
	}
	return "?"
}

// ClassifyPartial classifies the reference to addr when only the low
// tagBitsKnown bits of the tag are available for comparison, against the
// current contents of the indexed set. It does not modify cache state.
func (c *Cache) ClassifyPartial(addr uint32, tagBitsKnown int) PartialKind {
	set, tag := c.split(addr)
	if tagBitsKnown > c.TagBits() {
		tagBitsKnown = c.TagBits()
	}
	var mask uint32
	if tagBitsKnown >= 32 {
		mask = ^uint32(0)
	} else {
		mask = 1<<uint(tagBitsKnown) - 1
	}
	matches := 0
	fullMatch := false
	for _, w := range c.sets[set] {
		if w.valid && w.tag&mask == tag&mask {
			matches++
			if w.tag == tag {
				fullMatch = true
			}
		}
	}
	switch {
	case matches == 0:
		return ZeroMatch
	case matches > 1:
		return MultiMatch
	case fullMatch:
		return SingleHit
	default:
		return SingleMiss
	}
}

// PredictWay performs the paper's speculative way selection: among the
// ways whose low tagBitsKnown tag bits match addr, choose the most
// recently used one. It returns the chosen way and whether any way
// matched; correct reports whether the chosen way's full tag matches
// (i.e. whether the speculation will verify).
func (c *Cache) PredictWay(addr uint32, tagBitsKnown int) (way int, anyMatch, correct bool) {
	set, tag := c.split(addr)
	if tagBitsKnown > c.TagBits() {
		tagBitsKnown = c.TagBits()
	}
	var mask uint32
	if tagBitsKnown >= 32 {
		mask = ^uint32(0)
	} else {
		mask = 1<<uint(tagBitsKnown) - 1
	}
	best := -1
	var bestLRU uint64
	for i, w := range c.sets[set] {
		if w.valid && w.tag&mask == tag&mask {
			if best < 0 || w.lru > bestLRU {
				best, bestLRU = i, w.lru
			}
		}
	}
	if best < 0 {
		return -1, false, false
	}
	return best, true, c.sets[set][best].tag == tag
}

// KnownTagBits returns how many low tag bits are known when the low
// addrBitsKnown bits of the address have been generated (e.g. 16 after the
// first slice of a slice-by-2 address add).
func (c *Cache) KnownTagBits(addrBitsKnown int) int {
	k := addrBitsKnown - c.TagLowBit()
	if k < 0 {
		return 0
	}
	if k > c.TagBits() {
		return c.TagBits()
	}
	return k
}
