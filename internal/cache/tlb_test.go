package cache

import "testing"

func TestTLBHitMissLRU(t *testing.T) {
	tlb := MustNewTLB(TLBConfig{Entries: 2, PageBits: 12, MissLatency: 30})
	lat, hit := tlb.Access(0x0000_1000)
	if hit || lat != 30 {
		t.Fatalf("cold access: lat=%d hit=%v", lat, hit)
	}
	// Same page, different offset: hit, zero latency.
	lat, hit = tlb.Access(0x0000_1ffc)
	if !hit || lat != 0 {
		t.Fatalf("same page: lat=%d hit=%v", lat, hit)
	}
	tlb.Access(0x0000_2000) // second page fills the other way
	tlb.Access(0x0000_1000) // touch page 1 so page 2 is LRU
	tlb.Access(0x0000_3000) // evicts page 2
	if tlb.Lookup(0x0000_2000) {
		t.Fatal("LRU eviction failed")
	}
	if !tlb.Lookup(0x0000_1000) || !tlb.Lookup(0x0000_3000) {
		t.Fatal("resident pages missing")
	}
	if tlb.MissRate() <= 0 || tlb.MissRate() >= 1 {
		t.Fatalf("miss rate %f", tlb.MissRate())
	}
}

func TestTLBSetAssociative(t *testing.T) {
	// 4 entries, 2-way: 2 sets; pages alternate sets by VPN low bit.
	tlb := MustNewTLB(TLBConfig{Entries: 4, Assoc: 2, PageBits: 12, MissLatency: 10})
	// Three pages mapping to set 0 (even VPNs) thrash a 2-way set.
	tlb.Access(0 << 12)
	tlb.Access(2 << 12)
	tlb.Access(4 << 12)
	if tlb.Lookup(0 << 12) {
		t.Fatal("oldest even page should be evicted")
	}
	// Odd VPN page is unaffected.
	tlb.Access(1 << 12)
	if !tlb.Lookup(1 << 12) {
		t.Fatal("odd set disturbed")
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	for _, cfg := range []TLBConfig{
		{Entries: 0},
		{Entries: 6, Assoc: 4},  // entries % assoc != 0
		{Entries: 24, Assoc: 2}, // 12 sets: not a power of two
	} {
		if tlb, err := NewTLB(cfg); err == nil {
			t.Errorf("NewTLB(%+v) accepted bad geometry: %+v", cfg, tlb.Config())
		} else if cfg.Validate() == nil {
			t.Errorf("Validate(%+v) disagrees with NewTLB", cfg)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustNewTLB(%+v) did not panic", cfg)
				}
			}()
			MustNewTLB(cfg)
		}()
	}
	// Defaults fill in.
	d := DefaultDTLB()
	if d.Config().PageBits != 12 || d.Config().Assoc != 64 {
		t.Fatalf("defaults %+v", d.Config())
	}
	var empty TLB
	if empty.MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
}
