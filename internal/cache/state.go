package cache

import "fmt"

// CacheState is one cache level's complete warm state in a flat,
// deterministic layout: every way's valid/dirty/tag/LRU stamp (row-major
// by set), the per-set MRU way pointers behind way prediction, the LRU
// clock, and the statistics counters. Restoring it around a checkpoint
// keeps hit/miss timing and way-prediction outcomes bit-identical.
type CacheState struct {
	Sets  int
	Assoc int

	Valid []byte
	Dirty []byte
	Tag   []uint32
	LRU   []uint64
	MRU   []int32
	Clock uint64

	Accesses   uint64
	Misses     uint64
	Writes     uint64
	Writebacks uint64
}

// State captures the cache's warm state.
func (c *Cache) State() *CacheState {
	assoc := c.cfg.Assoc
	n := c.nSets * assoc
	st := &CacheState{
		Sets: c.nSets, Assoc: assoc,
		Valid: make([]byte, n), Dirty: make([]byte, n),
		Tag: make([]uint32, n), LRU: make([]uint64, n),
		MRU: make([]int32, c.nSets), Clock: c.clock,
		Accesses: c.Accesses, Misses: c.Misses,
		Writes: c.Writes, Writebacks: c.Writebacks,
	}
	for si, set := range c.sets {
		for wi := range set {
			i := si*assoc + wi
			if set[wi].valid {
				st.Valid[i] = 1
			}
			if set[wi].dirty {
				st.Dirty[i] = 1
			}
			st.Tag[i] = set[wi].tag
			st.LRU[i] = set[wi].lru
		}
	}
	for i, w := range c.mru {
		st.MRU[i] = int32(w)
	}
	return st
}

// Restore loads a captured state into a cache of the same geometry.
func (c *Cache) Restore(st *CacheState) error {
	assoc := c.cfg.Assoc
	if st.Sets != c.nSets || st.Assoc != assoc {
		return fmt.Errorf("cache %s: restore: geometry %dx%d, snapshot %dx%d",
			c.cfg.Name, c.nSets, assoc, st.Sets, st.Assoc)
	}
	n := c.nSets * assoc
	if len(st.Valid) != n || len(st.Dirty) != n || len(st.Tag) != n ||
		len(st.LRU) != n || len(st.MRU) != c.nSets {
		return fmt.Errorf("cache %s: restore: inconsistent arrays", c.cfg.Name)
	}
	for si, set := range c.sets {
		for wi := range set {
			i := si*assoc + wi
			set[wi] = line{
				valid: st.Valid[i] != 0,
				dirty: st.Dirty[i] != 0,
				tag:   st.Tag[i],
				lru:   st.LRU[i],
			}
		}
	}
	for i := range c.mru {
		w := int(st.MRU[i])
		if w < 0 || w >= assoc {
			return fmt.Errorf("cache %s: restore: MRU way %d out of range", c.cfg.Name, w)
		}
		c.mru[i] = w
	}
	c.clock = st.Clock
	c.Accesses, c.Misses = st.Accesses, st.Misses
	c.Writes, c.Writebacks = st.Writes, st.Writebacks
	return nil
}

// TLBState is a TLB's complete warm state, laid out like CacheState.
type TLBState struct {
	Sets  int
	Assoc int

	Valid []byte
	Tag   []uint32
	LRU   []uint64
	Clock uint64

	Accesses uint64
	Misses   uint64
}

// State captures the TLB's warm state.
func (t *TLB) State() *TLBState {
	nSets := len(t.sets)
	assoc := 0
	if nSets > 0 {
		assoc = len(t.sets[0])
	}
	n := nSets * assoc
	st := &TLBState{
		Sets: nSets, Assoc: assoc,
		Valid: make([]byte, n), Tag: make([]uint32, n), LRU: make([]uint64, n),
		Clock: t.clock, Accesses: t.Accesses, Misses: t.Misses,
	}
	for si, set := range t.sets {
		for wi := range set {
			i := si*assoc + wi
			if set[wi].valid {
				st.Valid[i] = 1
			}
			st.Tag[i] = set[wi].tag
			st.LRU[i] = set[wi].lru
		}
	}
	return st
}

// Restore loads a captured state into a TLB of the same geometry.
func (t *TLB) Restore(st *TLBState) error {
	nSets := len(t.sets)
	assoc := 0
	if nSets > 0 {
		assoc = len(t.sets[0])
	}
	if st.Sets != nSets || st.Assoc != assoc {
		return fmt.Errorf("cache: TLB restore: geometry %dx%d, snapshot %dx%d",
			nSets, assoc, st.Sets, st.Assoc)
	}
	n := nSets * assoc
	if len(st.Valid) != n || len(st.Tag) != n || len(st.LRU) != n {
		return fmt.Errorf("cache: TLB restore: inconsistent arrays")
	}
	for si, set := range t.sets {
		for wi := range set {
			i := si*assoc + wi
			set[wi] = tlbEntry{valid: st.Valid[i] != 0, tag: st.Tag[i], lru: st.LRU[i]}
		}
	}
	t.clock = st.Clock
	t.Accesses, t.Misses = st.Accesses, st.Misses
	return nil
}

// HierarchyState bundles the three cache levels' warm state.
type HierarchyState struct {
	L1I *CacheState
	L1D *CacheState
	L2  *CacheState
}

// State captures the hierarchy's warm state.
func (h *Hierarchy) State() *HierarchyState {
	return &HierarchyState{L1I: h.L1I.State(), L1D: h.L1D.State(), L2: h.L2.State()}
}

// Restore loads a captured state into a hierarchy of the same geometry.
func (h *Hierarchy) Restore(st *HierarchyState) error {
	if st == nil || st.L1I == nil || st.L1D == nil || st.L2 == nil {
		return fmt.Errorf("cache: hierarchy restore: missing level state")
	}
	if err := h.L1I.Restore(st.L1I); err != nil {
		return err
	}
	if err := h.L1D.Restore(st.L1D); err != nil {
		return err
	}
	return h.L2.Restore(st.L2)
}
