package exp

import (
	"fmt"

	"pok/internal/cache"
	"pok/internal/emu"
	"pok/internal/stats"
)

// Figure4Geometry is one cache geometry of the Figure 4 sweep.
type Figure4Geometry struct {
	SizeBytes int
	LineBytes int
	Assoc     int
}

func (g Figure4Geometry) String() string {
	return fmt.Sprintf("%dKB/%dB/%d-way", g.SizeBytes>>10, g.LineBytes, g.Assoc)
}

// Figure4Geometries returns the paper's sweep: 64KB/64B and 8KB/32B caches
// at 2-, 4- and 8-way associativity.
func Figure4Geometries() []Figure4Geometry {
	var out []Figure4Geometry
	for _, base := range []struct{ size, line int }{
		{64 << 10, 64}, {8 << 10, 32},
	} {
		for _, assoc := range []int{2, 4, 8} {
			out = append(out, Figure4Geometry{base.size, base.line, assoc})
		}
	}
	return out
}

// Figure4Result is the partial tag matching characterization of one
// benchmark on one geometry: for each partial tag width, the fraction of
// loads in each match category.
type Figure4Result struct {
	Benchmark string
	Geometry  Figure4Geometry
	TagBits   int
	// Frac[t-1][kind] is the fraction of accesses classified as kind when
	// t low tag bits are compared.
	Frac     [][4]float64
	Accesses uint64
	// MissRate is the cache's true miss rate over the run (the value the
	// zero-match + single-miss categories converge to).
	MissRate float64
}

// Figure4 reproduces the paper's Figure 4: serial partial tag comparison
// of each load against the indexed set, classifying the match state as
// tag bits are added.
func Figure4(opt Options, geoms []Figure4Geometry) ([]Figure4Result, error) {
	if len(geoms) == 0 {
		geoms = Figure4Geometries()
	}
	var out []Figure4Result
	for _, name := range opt.benchmarks() {
		for _, g := range geoms {
			c, err := cache.New(cache.Config{
				Name: g.String(), SizeBytes: g.SizeBytes,
				LineBytes: g.LineBytes, Assoc: g.Assoc, HitLatency: 1,
			})
			if err != nil {
				return nil, err
			}
			res := Figure4Result{Benchmark: name, Geometry: g, TagBits: c.TagBits()}
			counts := make([][4]uint64, res.TagBits)
			err = opt.forEachInst(name, func(d *emu.DynInst) {
				if !d.Inst.Op.IsLoad() {
					return
				}
				for t := 1; t <= res.TagBits; t++ {
					counts[t-1][c.ClassifyPartial(d.EffAddr, t)]++
				}
				res.Accesses++
				c.Access(d.EffAddr)
			})
			if err != nil {
				return nil, err
			}
			res.Frac = make([][4]float64, res.TagBits)
			for i := range counts {
				for k := 0; k < 4; k++ {
					if res.Accesses > 0 {
						res.Frac[i][k] = float64(counts[i][k]) / float64(res.Accesses)
					}
				}
			}
			res.MissRate = c.MissRate()
			out = append(out, res)
		}
	}
	return out, nil
}

// UniqueFrac returns the fraction of accesses resolved to a unique answer
// (single hit or provable miss) with t tag bits compared.
func (r *Figure4Result) UniqueFrac(t int) float64 {
	if t < 1 || t > r.TagBits {
		return 0
	}
	f := r.Frac[t-1]
	return f[cache.ZeroMatch] + f[cache.SingleHit] + f[cache.SingleMiss]
}

// RenderFigure4 prints the characterization tables.
func RenderFigure4(results []Figure4Result) string {
	var out string
	for _, r := range results {
		t := stats.NewTable(
			fmt.Sprintf("Figure 4: Partial Tag Matching — %s, %s (%d accesses, %.1f%% miss rate)",
				r.Benchmark, r.Geometry, r.Accesses, 100*r.MissRate),
			"tag bits", "zero match", "single-hit", "single-miss", "mult match", "unique")
		for tb := 1; tb <= r.TagBits; tb++ {
			f := r.Frac[tb-1]
			t.AddRow(fmt.Sprintf("%d", tb),
				pct(f[cache.ZeroMatch]), pct(f[cache.SingleHit]),
				pct(f[cache.SingleMiss]), pct(f[cache.MultiMatch]),
				pct(r.UniqueFrac(tb)))
		}
		out += t.Render() + "\n"
	}
	return out
}
