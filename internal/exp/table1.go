package exp

import (
	"fmt"

	"pok/internal/core"
	"pok/internal/stats"
)

// Table1Row is one line of the paper's Table 1: baseline characteristics
// of a benchmark on the base (single-cycle EX) machine.
type Table1Row struct {
	Benchmark      string
	Insts          uint64
	IPC            float64
	PctLoads       float64
	BranchAccuracy float64
}

// Table1 reproduces the paper's Table 1 on the base machine. Benchmarks
// run concurrently when opt.Parallel > 1.
func Table1(opt Options) ([]Table1Row, error) {
	rows := make([]Table1Row, len(opt.benchmarks()))
	err := opt.forEachBenchmark(func(idx int, name string) error {
		prog, ff, err := opt.program(name)
		if err != nil {
			return err
		}
		r, err := core.RunWarm(prog, core.BaseConfig(), ff, opt.budget())
		if err != nil {
			return fmt.Errorf("exp: table1 %s: %w", name, err)
		}
		rows[idx] = Table1Row{
			Benchmark:      name,
			Insts:          r.Insts,
			IPC:            r.IPC,
			PctLoads:       float64(r.Loads) / float64(r.Insts),
			BranchAccuracy: r.BranchAccuracy,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable1 prints the rows in the paper's Table 1 format.
func RenderTable1(rows []Table1Row) string {
	t := stats.NewTable("Table 1: Benchmark Programs Simulated",
		"Benchmark", "Simulated Instr", "IPC", "% Loads", "Branch Accuracy")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%d", r.Insts),
			stats.F2(r.IPC),
			fmt.Sprintf("%.1f%%", 100*r.PctLoads),
			fmt.Sprintf("%.0f%%", 100*r.BranchAccuracy))
	}
	return t.Render()
}
