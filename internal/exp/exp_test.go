package exp

import (
	"math"
	"strings"
	"testing"

	"pok/internal/cache"
	"pok/internal/lsq"
)

// Small budgets keep the test suite fast; shape assertions are loose
// enough to hold at this scale.
var testOpt = Options{
	Benchmarks: []string{"bzip", "li"},
	MaxInsts:   40_000,
}

func TestTable1(t *testing.T) {
	rows, err := Table1(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IPC <= 0 || r.IPC > 4 {
			t.Errorf("%s: IPC %.2f out of range", r.Benchmark, r.IPC)
		}
		if r.PctLoads <= 0 || r.PctLoads > 0.6 {
			t.Errorf("%s: %%loads %.2f out of range", r.Benchmark, r.PctLoads)
		}
		if r.BranchAccuracy < 0.5 || r.BranchAccuracy > 1 {
			t.Errorf("%s: accuracy %.2f out of range", r.Benchmark, r.BranchAccuracy)
		}
		if r.Insts == 0 {
			t.Errorf("%s: no instructions", r.Benchmark)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "bzip") || !strings.Contains(out, "Branch Accuracy") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	results, err := Figure2(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Loads == 0 {
			t.Fatalf("%s: no loads", r.Benchmark)
		}
		// Fractions at each prefix sum to 1.
		for i := range r.Bits {
			var sum float64
			for k := 0; k < lsq.NumAliasKinds; k++ {
				sum += r.Frac[i][k]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: fractions at bit %d sum to %f", r.Benchmark, r.Bits[i], sum)
			}
		}
		// The paper's observation: resolution improves monotonically and
		// is (near-)total by the full comparison.
		if r.ResolvedFrac(9) > r.ResolvedFrac(32)+1e-9 {
			t.Fatalf("%s: resolution regressed: %.3f@9 vs %.3f@32",
				r.Benchmark, r.ResolvedFrac(9), r.ResolvedFrac(32))
		}
		if r.ResolvedFrac(32) < 0.99 {
			t.Fatalf("%s: full comparison resolves only %.3f",
				r.Benchmark, r.ResolvedFrac(32))
		}
		// Early disambiguation must already resolve most loads by bit 9
		// (the paper: all of them; synthetic kernels with tight address
		// reuse stay a little lower).
		if r.ResolvedFrac(9) < 0.5 {
			t.Errorf("%s: only %.2f resolved by bit 9", r.Benchmark, r.ResolvedFrac(9))
		}
	}
	if out := RenderFigure2(results); !strings.Contains(out, "Figure 2") {
		t.Fatal("render missing title")
	}
}

func TestFigure4(t *testing.T) {
	geoms := []Figure4Geometry{{64 << 10, 64, 4}, {8 << 10, 32, 2}}
	results, err := Figure4(Options{Benchmarks: []string{"mcf"}, MaxInsts: 60_000}, geoms)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Accesses == 0 {
			t.Fatal("no accesses")
		}
		// Fractions sum to 1 at every width.
		for tb := 1; tb <= r.TagBits; tb++ {
			var sum float64
			for k := 0; k < 4; k++ {
				sum += r.Frac[tb-1][k]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: fractions at %d bits sum to %f", r.Geometry, tb, sum)
			}
		}
		// With all tag bits, multi-match is impossible and uniqueness is
		// total.
		if r.Frac[r.TagBits-1][cache.MultiMatch] != 0 {
			t.Fatal("full-width multi match")
		}
		if r.UniqueFrac(r.TagBits) < 0.999 {
			t.Fatalf("full-width unique frac %.3f", r.UniqueFrac(r.TagBits))
		}
		// Uniqueness grows with tag bits (monotone convergence).
		for tb := 2; tb <= r.TagBits; tb++ {
			if r.UniqueFrac(tb) < r.UniqueFrac(tb-1)-1e-9 {
				t.Fatalf("%s: uniqueness regressed at %d bits", r.Geometry, tb)
			}
		}
	}
	if out := RenderFigure4(results); !strings.Contains(out, "Figure 4") {
		t.Fatal("render missing title")
	}
}

func TestFigure4DefaultGeometries(t *testing.T) {
	gs := Figure4Geometries()
	if len(gs) != 6 {
		t.Fatalf("geometries = %d", len(gs))
	}
	if gs[0].String() != "64KB/64B/2-way" {
		t.Fatalf("label %q", gs[0].String())
	}
}

func TestFigure6(t *testing.T) {
	// li's mark-bit loop is the paper's Figure 5 example: its bne
	// mispredictions must be detectable from the low bit.
	results, err := Figure6(Options{Benchmarks: []string{"li", "parser"}, MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Branches == 0 || r.Mispredicts == 0 {
			t.Fatalf("%s: no branches/mispredicts (%d/%d)",
				r.Benchmark, r.Mispredicts, r.Branches)
		}
		if r.CumFrac[31] < 0.999 {
			t.Fatalf("%s: cum frac at bit 31 = %.3f", r.Benchmark, r.CumFrac[31])
		}
		for b := 1; b < 32; b++ {
			if r.CumFrac[b] < r.CumFrac[b-1]-1e-9 {
				t.Fatalf("%s: cum frac not monotone at bit %d", r.Benchmark, b)
			}
		}
		if r.EqBranchFrac <= 0 || r.EqBranchFrac > 1 {
			t.Fatalf("%s: eq branch frac %.2f", r.Benchmark, r.EqBranchFrac)
		}
	}
	// li: flag-test branches expose mispredictions at bit 0.
	var li Figure6Result
	for _, r := range results {
		if r.Benchmark == "li" {
			li = r
		}
	}
	if li.CumFrac[0] < 0.2 {
		t.Errorf("li: only %.2f of mispredicts detected at bit 0", li.CumFrac[0])
	}
	if out := RenderFigure6(results); !strings.Contains(out, "Figure 6") {
		t.Fatal("render missing title")
	}
	if avg := AverageCumFrac(results, 7); avg <= 0 || avg > 1 {
		t.Fatalf("average at bit 7 = %f", avg)
	}
}

func TestConfigLadder(t *testing.T) {
	for _, sliceBy := range []int{2, 4} {
		ladder := ConfigLadder(sliceBy)
		if len(ladder) != len(TechniqueNames) {
			t.Fatalf("ladder size %d", len(ladder))
		}
		// First step: plain pipelining; last: everything on.
		first, last := ladder[0], ladder[len(ladder)-1]
		if first.PartialBypass || first.PartialTag {
			t.Fatal("first step has techniques enabled")
		}
		if !last.PartialBypass || !last.OoOSlices || !last.EarlyBranch ||
			!last.EarlyLSDisambig || !last.PartialTag {
			t.Fatal("last step incomplete")
		}
		// Monotone accumulation.
		count := func(c interface{ flags() int }) {}
		_ = count
		prev := 0
		for _, c := range ladder {
			n := 0
			for _, f := range []bool{c.PartialBypass, c.OoOSlices, c.EarlyBranch,
				c.EarlyLSDisambig, c.PartialTag} {
				if f {
					n++
				}
			}
			if n != prev {
				t.Fatalf("ladder step %q enables %d techniques, want %d", c.Name, n, prev)
			}
			prev++
			if c.Slices != sliceBy {
				t.Fatalf("ladder step %q has %d slices", c.Name, c.Slices)
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestFigure11And12(t *testing.T) {
	opt := Options{Benchmarks: []string{"gzip"}, MaxInsts: 25_000}
	rows, err := Figure11(opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if len(r.StackIPC) != len(TechniqueNames) {
		t.Fatalf("stack size %d", len(r.StackIPC))
	}
	// Shape: simple pipelining loses IPC vs ideal; the full bit-sliced
	// machine recovers (most of) it.
	if r.StackIPC[0] >= r.BaseIPC {
		t.Fatalf("simple pipelining (%.3f) not slower than ideal (%.3f)",
			r.StackIPC[0], r.BaseIPC)
	}
	if r.FinalIPC() <= r.StackIPC[0] {
		t.Fatalf("bit-sliced (%.3f) not faster than simple (%.3f)",
			r.FinalIPC(), r.StackIPC[0])
	}
	if r.SpeedupOverSimple() < 1.02 {
		t.Fatalf("speedup over simple only %.3f", r.SpeedupOverSimple())
	}
	if r.VsBase() < 0.7 || r.VsBase() > 1.2 {
		t.Fatalf("vs base ratio %.3f out of plausible range", r.VsBase())
	}

	f12 := Figure12(rows)
	if len(f12) != 1 || len(f12[0].Contribution) != len(TechniqueNames)-1 {
		t.Fatalf("figure 12 shape wrong: %+v", f12)
	}
	var sum float64
	for _, c := range f12[0].Contribution {
		sum += c
	}
	if math.Abs(sum-f12[0].Total) > 1e-9 {
		t.Fatalf("contributions (%.4f) do not sum to total (%.4f)", sum, f12[0].Total)
	}
	if out := RenderFigure11(rows); !strings.Contains(out, "Figure 11") {
		t.Fatal("render 11 missing title")
	}
	if out := RenderFigure12(f12); !strings.Contains(out, "Figure 12") {
		t.Fatal("render 12 missing title")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if len(o.benchmarks()) != 11 {
		t.Fatalf("default benchmarks = %d", len(o.benchmarks()))
	}
	if o.budget() != DefaultMaxInsts {
		t.Fatal("default budget")
	}
	if _, _, err := o.program("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNarrowWidthAblation(t *testing.T) {
	rows, err := NarrowWidthAblation(Options{Benchmarks: []string{"li"}, MaxInsts: 20_000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].BaseIPC <= 0 || rows[0].ExtIPC <= 0 {
		t.Fatalf("rows %+v", rows)
	}
	// The extension must not hurt (it only relaxes dependences).
	if rows[0].Gain() < -0.02 {
		t.Fatalf("narrow-width hurt: %+.2f%%", 100*rows[0].Gain())
	}
	out := RenderAblation("t", "base", "ext", rows)
	if !strings.Contains(out, "li") {
		t.Fatal("render")
	}
}

func TestPredictorAblation(t *testing.T) {
	rows, err := PredictorAblation(Options{Benchmarks: []string{"parser"}, MaxInsts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].BaseIPC <= 0 {
		t.Fatalf("rows %+v", rows)
	}
}

func TestWindowSweep(t *testing.T) {
	rows, err := WindowSweep(Options{Benchmarks: []string{"gzip"}, MaxInsts: 20_000},
		[]int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.IPC) != 2 {
		t.Fatalf("ipc %v", r.IPC)
	}
	// A 64-entry window must beat a tiny 8-entry one.
	if r.IPC[1] <= r.IPC[0] {
		t.Fatalf("window size had no effect: %v", r.IPC)
	}
	if !strings.Contains(RenderWindowSweep(rows), "RUU 64") {
		t.Fatal("render")
	}
}

// TestParallelMatchesSequential: the worker pool must not change results.
func TestParallelMatchesSequential(t *testing.T) {
	seq := Options{Benchmarks: []string{"li", "gzip", "bzip"}, MaxInsts: 15_000}
	par := seq
	par.Parallel = 3
	a, err := Table1(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestParallelErrorPropagates: a failing benchmark must surface its error
// through the pool.
func TestParallelErrorPropagates(t *testing.T) {
	opt := Options{Benchmarks: []string{"li", "nope"}, MaxInsts: 1000, Parallel: 2}
	if _, err := Table1(opt); err == nil {
		t.Fatal("error swallowed by worker pool")
	}
}

func TestPlots(t *testing.T) {
	f6, err := Figure6(Options{Benchmarks: []string{"li"}, MaxInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if out := PlotFigure6(f6); !strings.Contains(out, "li") ||
		!strings.Contains(out, "*") {
		t.Fatalf("figure 6 plot:\n%s", out)
	}
	f11, err := Figure11(Options{Benchmarks: []string{"li"}, MaxInsts: 10_000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out := PlotFigure11(f11); !strings.Contains(out, "li/bitslice") {
		t.Fatalf("figure 11 plot:\n%s", out)
	}
	if out := PlotFigure12(Figure12(f11)); !strings.Contains(out, "legend") {
		t.Fatalf("figure 12 plot:\n%s", out)
	}
}

func TestWrongPathAblation(t *testing.T) {
	rows, err := WrongPathAblation(Options{Benchmarks: []string{"parser"}, MaxInsts: 20_000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].BaseIPC <= 0 || rows[0].ExtIPC <= 0 {
		t.Fatalf("rows %+v", rows)
	}
	// Wrong-path pollution should not speed the machine up materially.
	if rows[0].Gain() > 0.05 {
		t.Fatalf("wrong path helped suspiciously: %+.1f%%", 100*rows[0].Gain())
	}
}

func TestCompiledSuite(t *testing.T) {
	rows, err := CompiledSuite(Options{MaxInsts: 20_000, Parallel: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var speedup float64
	for _, r := range rows {
		if r.IdealIPC <= 0 || r.SimpleIPC <= 0 || r.SlicedIPC <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		speedup += r.SlicedIPC / r.SimpleIPC
	}
	// The paper shape must hold on compiled code too, on average.
	if speedup/float64(len(rows)) <= 1.0 {
		t.Fatalf("bit slicing did not help compiled code: mean ratio %.3f",
			speedup/float64(len(rows)))
	}
	if out := RenderCompiledSuite(rows, 2); !strings.Contains(out, "cc-queens") {
		t.Fatal("render")
	}
}

// TestRenderHeadersStable locks the table headers downstream tooling
// (and EXPERIMENTS.md) depends on.
func TestRenderHeadersStable(t *testing.T) {
	t1 := RenderTable1([]Table1Row{{Benchmark: "x", Insts: 1, IPC: 1,
		PctLoads: 0.1, BranchAccuracy: 0.9}})
	if !strings.Contains(t1, "Benchmark  Simulated Instr  IPC   % Loads  Branch Accuracy") {
		t.Fatalf("table1 header changed:\n%s", t1)
	}
	f2 := RenderFigure2([]Figure2Result{{Benchmark: "x", Bits: []int{3},
		Frac: make([][7]float64, 1)}})
	for _, col := range []string{"no stores", "zero match", "1:non-match",
		"n:same addr", "resolved"} {
		if !strings.Contains(f2, col) {
			t.Fatalf("figure2 column %q missing:\n%s", col, f2)
		}
	}
	f4 := RenderFigure4([]Figure4Result{{Benchmark: "x",
		Geometry: Figure4Geometry{8 << 10, 32, 2}, TagBits: 1,
		Frac: make([][4]float64, 1)}})
	for _, col := range []string{"zero match", "single-hit", "single-miss",
		"mult match", "unique"} {
		if !strings.Contains(f4, col) {
			t.Fatalf("figure4 column %q missing:\n%s", col, f4)
		}
	}
}

func TestLSQSweep(t *testing.T) {
	rows, err := LSQSweep(Options{Benchmarks: []string{"twolf"}, MaxInsts: 20_000},
		[]int{2, 32})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.IPC) != 2 || r.IPC[1] <= r.IPC[0] {
		t.Fatalf("LSQ size had no effect: %v", r.IPC)
	}
	if !strings.Contains(RenderLSQSweep(rows), "LSQ 32") {
		t.Fatal("render")
	}
}
