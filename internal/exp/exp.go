// Package exp contains one driver per table and figure of the paper's
// evaluation, mapping each onto the simulator substrates:
//
//	Table 1  — baseline benchmark characteristics   (core, bpred)
//	Figure 2 — early load-store disambiguation      (lsq, trace-driven)
//	Figure 4 — partial tag matching                 (cache, trace-driven)
//	Figure 6 — early branch misprediction detection (bpred, trace-driven)
//	Figure 11 — IPC of the bit-sliced microarchitecture (core)
//	Figure 12 — speedup breakdown per technique     (derived from Fig. 11)
//
// Each driver returns structured results plus a Render helper that prints
// the same rows/series the paper reports. Absolute values differ from the
// paper (synthetic kernels instead of SPEC, see DESIGN.md); the shapes are
// the reproduction target, recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"sync"

	"pok/internal/emu"
	"pok/internal/workload"
)

// Options controls experiment scope and cost.
type Options struct {
	// Benchmarks to run; nil means the full Table 1 suite.
	Benchmarks []string
	// MaxInsts is the dynamic instruction budget per benchmark per run
	// (the paper simulates 500M after 1B fast-forward; the default here is
	// laptop-scale). 0 selects the default.
	MaxInsts uint64
	// Scale overrides the workload outer-iteration count (0 = default,
	// which is large enough to outlast any budget).
	Scale int
	// NoFastForward disables each workload's initialization skip.
	NoFastForward bool
	// Parallel bounds how many benchmarks run concurrently in the
	// heavyweight experiments (Table 1, Figures 11/12 and the ablations).
	// 0 or 1 means sequential; simulations are independent, so the
	// results are identical regardless of the setting.
	Parallel int
}

// DefaultMaxInsts is the per-run instruction budget when none is given.
const DefaultMaxInsts = 300_000

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

// parallelism returns the worker count for concurrent experiment runs.
func (o Options) parallelism() int {
	if o.Parallel < 1 {
		return 1
	}
	return o.Parallel
}

// forEachBenchmark runs fn once per selected benchmark, fanning out over
// a bounded worker pool when Parallel > 1. Results are delivered through
// fn in any order; callers index by benchmark position to keep the
// paper's table ordering deterministic.
func (o Options) forEachBenchmark(fn func(idx int, name string) error) error {
	names := o.benchmarks()
	workers := o.parallelism()
	if workers > len(names) {
		workers = len(names)
	}
	if workers <= 1 {
		for i, n := range names {
			if err := fn(i, n); err != nil {
				return err
			}
		}
		return nil
	}
	type job struct {
		idx  int
		name string
	}
	jobs := make(chan job)
	errs := make(chan error, len(names))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				errs <- fn(j.idx, j.name)
			}
		}()
	}
	for i, n := range names {
		jobs <- job{i, n}
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (o Options) budget() uint64 {
	if o.MaxInsts > 0 {
		return o.MaxInsts
	}
	return DefaultMaxInsts
}

func (o Options) program(name string) (*emu.Program, uint64, error) {
	w, err := workload.Get(name)
	if err != nil {
		return nil, 0, err
	}
	scale := o.Scale
	if scale <= 0 {
		scale = w.DefaultScale
	}
	ff := w.FastForward
	if o.NoFastForward {
		ff = 0
	}
	prog, err := w.Program(scale)
	return prog, ff, err
}

// forEachInst streams up to the budget of dynamic instructions of the
// named benchmark through visit.
func (o Options) forEachInst(name string, visit func(*emu.DynInst)) error {
	prog, ff, err := o.program(name)
	if err != nil {
		return err
	}
	e := emu.New(prog)
	if ff > 0 {
		if _, err := e.Run(ff, nil); err != nil {
			return fmt.Errorf("exp: %s fast-forward: %w", name, err)
		}
	}
	if _, err := e.Run(o.budget(), visit); err != nil {
		return fmt.Errorf("exp: %s: %w", name, err)
	}
	return nil
}
