package exp

import (
	"fmt"
	"time"

	"pok/internal/emu"
	"pok/internal/stats"
)

// EmuBenchRow is one mode of the pok-bench `emu` experiment: the
// standalone functional-emulator throughput, measured independently of
// the timing core so a regression in the direct-threaded fast path is
// visible even when timing-core noise would hide it.
type EmuBenchRow struct {
	Mode        string
	Insts       uint64
	WallMS      int64
	InstsPerSec float64
}

// emuBenchModes are the three ways the rest of the stack drives the
// emulator: bare (fast-forward), with a DynInst stream visitor attached
// (telemetry, trace export, the timing front end), and in lockstep with
// the legacy interpreter comparing streams (the differential oracle and
// the soak harness).
const (
	EmuModeBare     = "bare"
	EmuModeVisitor  = "visitor"
	EmuModeLockstep = "lockstep"
)

// EmuBench measures functional-emulator throughput on the first selected
// benchmark in each attachment mode. The instruction budget is the
// experiment budget, floored at DefaultMaxInsts so the measurement is
// long enough to be meaningful even under a small -insts.
func EmuBench(opt Options) ([]EmuBenchRow, error) {
	name := opt.benchmarks()[0]
	budget := opt.budget()
	if budget < DefaultMaxInsts {
		budget = DefaultMaxInsts
	}
	rows := make([]EmuBenchRow, 0, 3)

	run := func(mode string, f func(prog *emu.Program) (uint64, error)) error {
		prog, _, err := opt.program(name)
		if err != nil {
			return err
		}
		start := time.Now()
		n, err := f(prog)
		if err != nil {
			return fmt.Errorf("exp: emu %s/%s: %w", name, mode, err)
		}
		wall := time.Since(start)
		row := EmuBenchRow{Mode: mode, Insts: n, WallMS: wall.Milliseconds()}
		if wall > 0 {
			row.InstsPerSec = float64(n) / wall.Seconds()
		}
		rows = append(rows, row)
		return nil
	}

	if err := run(EmuModeBare, func(prog *emu.Program) (uint64, error) {
		return emu.New(prog).Run(budget, nil)
	}); err != nil {
		return nil, err
	}
	if err := run(EmuModeVisitor, func(prog *emu.Program) (uint64, error) {
		var sink uint64
		n, err := emu.New(prog).Run(budget, func(d *emu.DynInst) {
			sink += uint64(d.DstVal)
		})
		_ = sink
		return n, err
	}); err != nil {
		return nil, err
	}
	if err := run(EmuModeLockstep, func(prog *emu.Program) (uint64, error) {
		fast := emu.New(prog)
		slow := emu.New(prog)
		slow.SetLegacy(true)
		var n uint64
		for n < budget && !fast.Halted() {
			df, err := fast.Step()
			if err != nil {
				return n, err
			}
			ds, err := slow.Step()
			if err != nil {
				return n, err
			}
			if df != ds {
				return n, fmt.Errorf("interpreter divergence at inst %d: fast %+v legacy %+v", n, df, ds)
			}
			n++
		}
		return n, nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderEmuBench prints the emulator-throughput rows.
func RenderEmuBench(rows []EmuBenchRow) string {
	t := stats.NewTable("Functional emulator throughput",
		"mode", "insts", "wall ms", "Minst/s")
	for _, r := range rows {
		t.AddRow(r.Mode,
			fmt.Sprintf("%d", r.Insts),
			fmt.Sprintf("%d", r.WallMS),
			fmt.Sprintf("%.2f", r.InstsPerSec/1e6))
	}
	return t.Render()
}
