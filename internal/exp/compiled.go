package exp

import (
	"fmt"

	"pok/internal/core"
	"pok/internal/stats"
	"pok/internal/workload"
)

// CompiledSuiteRow is the timing of one compiled (MiniC) workload across
// the three headline machines.
type CompiledSuiteRow struct {
	Benchmark string
	IdealIPC  float64
	SimpleIPC float64
	SlicedIPC float64
}

// CompiledSuite times the MiniC-compiled workload suite on the ideal,
// simple-pipelined and bit-sliced machines, checking that the paper's
// shape generalizes from hand-written assembly to compiler output.
func CompiledSuite(opt Options, sliceBy int) ([]CompiledSuiteRow, error) {
	names := workload.CompiledNames()
	rows := make([]CompiledSuiteRow, len(names))
	cfgs := []core.Config{
		core.BaseConfig(), core.SimplePipelined(sliceBy), core.BitSliced(sliceBy),
	}
	run := func(idx int, name string) error {
		w, err := workload.GetCompiled(name)
		if err != nil {
			return err
		}
		row := CompiledSuiteRow{Benchmark: name}
		for i, cfg := range cfgs {
			prog, err := w.Program(w.DefaultScale)
			if err != nil {
				return err
			}
			r, err := core.Run(prog, cfg, opt.budget())
			if err != nil {
				return fmt.Errorf("exp: compiled %s %s: %w", name, cfg.Name, err)
			}
			switch i {
			case 0:
				row.IdealIPC = r.IPC
			case 1:
				row.SimpleIPC = r.IPC
			case 2:
				row.SlicedIPC = r.IPC
			}
		}
		rows[idx] = row
		return nil
	}
	// Reuse the bounded pool shape from forEachBenchmark, but over the
	// compiled names.
	saved := opt.Benchmarks
	opt.Benchmarks = names
	err := opt.forEachBenchmark(run)
	opt.Benchmarks = saved
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderCompiledSuite prints the compiled-suite comparison.
func RenderCompiledSuite(rows []CompiledSuiteRow, sliceBy int) string {
	t := stats.NewTable(
		fmt.Sprintf("Compiled (MiniC) suite: IPC, slice-by-%d", sliceBy),
		"benchmark", "ideal", "simple", "bit-sliced", "sliced/simple")
	var sum float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, stats.F2(r.IdealIPC), stats.F2(r.SimpleIPC),
			stats.F2(r.SlicedIPC),
			fmt.Sprintf("%.3f", r.SlicedIPC/r.SimpleIPC))
		sum += r.SlicedIPC / r.SimpleIPC
	}
	return t.Render() + fmt.Sprintf("mean speedup over simple pipelining: %+.1f%%\n",
		100*(sum/float64(len(rows))-1))
}
