package exp

import (
	"fmt"
	"time"

	"pok/internal/ckpt"
	"pok/internal/core"
	"pok/internal/stats"
)

// CkptBenchRow is one mode of the pok-bench `ckpt` experiment: the
// cost of architectural checkpointing on the headline machine, with
// the feature off (the hot loop must not pay for a disarmed sink) and
// at a fixed snapshot cadence (drain + capture + encode cost).
type CkptBenchRow struct {
	Mode         string
	Insts        uint64
	Cycles       int64
	WallMS       int64
	CyclesPerSec float64
	// Snapshots and SnapBytes cover the armed mode: how many captures
	// the cadence produced and their total encoded size (delta chain
	// with a full rebase every 8th capture, like the on-disk Writer).
	Snapshots int
	SnapBytes int64
	// Overhead is this mode's wall time over the off mode's (1.00 for
	// off itself). The off mode's throughput also lands in the BENCH
	// record, so CI's -compare gate catches a disarmed-path slowdown
	// against the committed baseline.
	Overhead float64
}

// countSink mimics the on-disk Writer's delta chain (full rebase every
// 8th capture) but only counts encoded bytes, so the measurement is
// capture + serialization + hashing without disk noise.
type countSink struct {
	n     int
	bytes int64
}

func (c *countSink) WantFull() bool { return c.n%8 == 0 }

func (c *countSink) Write(s *ckpt.Snapshot) error {
	c.bytes += int64(len(ckpt.Encode(s)))
	c.n++
	return nil
}

// CkptBench measures checkpointing cost on the first selected benchmark
// under the bit-slice-x4 machine. The instruction budget is floored at
// DefaultMaxInsts (like EmuBench) so the cadence produces a meaningful
// snapshot count even under a small -insts.
func CkptBench(opt Options) ([]CkptBenchRow, error) {
	name := opt.benchmarks()[0]
	budget := opt.budget()
	if budget < DefaultMaxInsts {
		budget = DefaultMaxInsts
	}
	every := budget / 8

	run := func(mode string, sink *countSink, every uint64) (CkptBenchRow, time.Duration, error) {
		prog, ff, err := opt.program(name)
		if err != nil {
			return CkptBenchRow{}, 0, err
		}
		sim, err := core.NewSim(prog, core.BitSliced(4), budget)
		if err != nil {
			return CkptBenchRow{}, 0, err
		}
		if ff > 0 {
			if err := sim.FastForward(ff); err != nil {
				return CkptBenchRow{}, 0, fmt.Errorf("exp: ckpt %s/%s: %w", name, mode, err)
			}
		}
		if sink != nil {
			sim.SetCheckpoint(every, sink, name)
		}
		start := time.Now()
		r, err := sim.Run()
		if err != nil {
			return CkptBenchRow{}, 0, fmt.Errorf("exp: ckpt %s/%s: %w", name, mode, err)
		}
		wall := time.Since(start)
		row := CkptBenchRow{Mode: mode, Insts: r.Insts, Cycles: r.Cycles,
			WallMS: wall.Milliseconds()}
		if wall > 0 {
			row.CyclesPerSec = float64(r.Cycles) / wall.Seconds()
		}
		if sink != nil {
			row.Snapshots = sink.n
			row.SnapBytes = sink.bytes
		}
		return row, wall, nil
	}

	off, offWall, err := run("off", nil, 0)
	if err != nil {
		return nil, err
	}
	off.Overhead = 1
	armed, armedWall, err := run(fmt.Sprintf("every %d", every), &countSink{}, every)
	if err != nil {
		return nil, err
	}
	if offWall > 0 {
		armed.Overhead = armedWall.Seconds() / offWall.Seconds()
	}
	return []CkptBenchRow{off, armed}, nil
}

// RenderCkptBench prints the checkpointing-cost rows.
func RenderCkptBench(rows []CkptBenchRow) string {
	t := stats.NewTable("Architectural checkpointing cost (bit-slice-x4)",
		"mode", "insts", "cycles", "wall ms", "Mcyc/s", "snapshots", "snap KB", "overhead")
	for _, r := range rows {
		t.AddRow(r.Mode,
			fmt.Sprintf("%d", r.Insts),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", r.WallMS),
			fmt.Sprintf("%.2f", r.CyclesPerSec/1e6),
			fmt.Sprintf("%d", r.Snapshots),
			fmt.Sprintf("%d", r.SnapBytes/1024),
			fmt.Sprintf("%.2fx", r.Overhead))
	}
	return t.Render()
}
