package exp

import (
	"fmt"
	"strings"

	"pok/internal/plot"
)

// PlotFigure6 sketches each benchmark's cumulative misprediction
// detection curve (the visual shape of the paper's Figure 6: an early
// rise followed by the spike at bit 31).
func PlotFigure6(results []Figure6Result) string {
	var b strings.Builder
	for _, r := range results {
		ys := make([]float64, 32)
		for i := range ys {
			ys[i] = r.CumFrac[i]
		}
		b.WriteString(plot.Curve(
			fmt.Sprintf("%s: cumulative fraction of mispredictions detected vs bits examined",
				r.Benchmark),
			ys, 8))
		b.WriteByte('\n')
	}
	return b.String()
}

// PlotFigure11 sketches the Figure 11 comparison as horizontal IPC bars:
// for each benchmark, the simple-pipelining IPC, the full bit-sliced IPC
// and the ideal machine's IPC.
func PlotFigure11(rows []Figure11Row) string {
	var labels []string
	var values []float64
	for _, r := range rows {
		labels = append(labels,
			r.Benchmark+"/simple", r.Benchmark+"/bitslice", r.Benchmark+"/ideal")
		values = append(values, r.StackIPC[0], r.FinalIPC(), r.BaseIPC)
	}
	title := ""
	if len(rows) > 0 {
		title = fmt.Sprintf("Figure 11 sketch: IPC, slice-by-%d", rows[0].SliceBy)
	}
	return plot.HBar(title, labels, values, 50)
}

// PlotFigure12 sketches the per-technique speedup stacks.
func PlotFigure12(rows []Figure12Row) string {
	var groups []string
	var values [][]float64
	for _, r := range rows {
		groups = append(groups, r.Benchmark)
		values = append(values, r.Contribution)
	}
	title := ""
	if len(rows) > 0 {
		title = fmt.Sprintf(
			"Figure 12 sketch: speedup contributions over simple pipelining, slice-by-%d",
			rows[0].SliceBy)
	}
	return plot.Stack(title, groups, TechniqueNames[1:], values, 50)
}
