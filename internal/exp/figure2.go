package exp

import (
	"fmt"

	"pok/internal/emu"
	"pok/internal/lsq"
	"pok/internal/stats"
)

// Figure2Result holds the early load-store disambiguation characterization
// for one benchmark: for each cumulative comparison prefix (address bits
// [2, k)), the fraction of loads in each aliasing category at the moment
// the load enters the LSQ.
type Figure2Result struct {
	Benchmark string
	// Bits lists the upper end of each comparison prefix (k = 3..32;
	// k=32 is the conventional full comparison).
	Bits []int
	// Frac[i][kind] is the fraction of loads classified as kind after
	// comparing bits [2, Bits[i]).
	Frac [][lsq.NumAliasKinds]float64
	// Loads is the number of loads characterized.
	Loads uint64
}

// figure2Window approximates the paper's measurement window: the LSQ holds
// the memory operations of the 64 in-flight instructions, capped at the
// 32-entry queue size.
const (
	fig2WindowInsts = 64
	fig2LSQSize     = 32
)

// Figure2 reproduces the paper's Figure 2: bit-serial comparison of each
// load's address against the prior stores resident in the LSQ, assuming
// perfect knowledge of store addresses (as the paper does).
func Figure2(opt Options) ([]Figure2Result, error) {
	var out []Figure2Result
	for _, name := range opt.benchmarks() {
		type memop struct {
			seq     uint64
			isStore bool
			addr    uint32
		}
		var queue []memop // youngest last, capped at fig2LSQSize

		res := Figure2Result{Benchmark: name}
		for k := 3; k <= 32; k++ {
			res.Bits = append(res.Bits, k)
		}
		counts := make([][lsq.NumAliasKinds]uint64, len(res.Bits))

		err := opt.forEachInst(name, func(d *emu.DynInst) {
			op := d.Inst.Op
			if !op.IsLoad() && !op.IsStore() {
				return
			}
			// Age out ops beyond the instruction window.
			for len(queue) > 0 && d.Seq-queue[0].seq > fig2WindowInsts {
				queue = queue[1:]
			}
			if op.IsLoad() {
				var storeAddrs []uint32
				for _, m := range queue {
					if m.isStore {
						storeAddrs = append(storeAddrs, m.addr)
					}
				}
				for i, k := range res.Bits {
					kind := lsq.ClassifyAlias(d.EffAddr, storeAddrs, k)
					counts[i][kind]++
				}
				res.Loads++
			}
			queue = append(queue, memop{d.Seq, op.IsStore(), d.EffAddr})
			if len(queue) > fig2LSQSize {
				queue = queue[1:]
			}
		})
		if err != nil {
			return nil, err
		}
		res.Frac = make([][lsq.NumAliasKinds]float64, len(res.Bits))
		for i := range counts {
			for kind := 0; kind < lsq.NumAliasKinds; kind++ {
				if res.Loads > 0 {
					res.Frac[i][kind] = float64(counts[i][kind]) / float64(res.Loads)
				}
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// ResolvedFrac returns the fraction of loads fully disambiguated (either
// no possible alias, or a unique forwarding match) after comparing bits
// [2, k) — the paper's headline: by k=9 every load is either released or
// uniquely matched.
func (r *Figure2Result) ResolvedFrac(k int) float64 {
	for i, b := range r.Bits {
		if b == k {
			f := r.Frac[i]
			return f[lsq.NoStores] + f[lsq.ZeroMatch] +
				f[lsq.SingleMatchOneStore] + f[lsq.SingleMatchMultStores] +
				f[lsq.MultiSameAddr]
		}
	}
	return 0
}

// RenderFigure2 prints one benchmark's characterization as the stacked
// percentages of the paper's Figure 2.
func RenderFigure2(results []Figure2Result) string {
	var out string
	for _, r := range results {
		t := stats.NewTable(
			fmt.Sprintf("Figure 2: Early Load-Store Disambiguation — %s (%d loads)",
				r.Benchmark, r.Loads),
			"bits[2,k)", "no stores", "zero match", "1:non-match",
			"1:match(1 st)", "1:match(n st)", "n:diff addr", "n:same addr", "resolved")
		for i, k := range r.Bits {
			f := r.Frac[i]
			t.AddRow(fmt.Sprintf("%d", k),
				pct(f[lsq.NoStores]), pct(f[lsq.ZeroMatch]),
				pct(f[lsq.SingleNonMatch]), pct(f[lsq.SingleMatchOneStore]),
				pct(f[lsq.SingleMatchMultStores]), pct(f[lsq.MultiDiffAddr]),
				pct(f[lsq.MultiSameAddr]), pct(r.ResolvedFrac(k)))
		}
		out += t.Render() + "\n"
	}
	return out
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
