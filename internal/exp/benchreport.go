package exp

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchExperiment is one entry of the pok-bench -json regression
// record: the wall-clock cost of an experiment plus, where the
// experiment exposes them, simulation-throughput and quality metrics.
// Committing these files from successive runs (BENCH_<date>.json)
// gives the repo a perf history that catches slowdowns the unit tests
// cannot; CI diffs a fresh record against the committed baseline with
// CompareBenchReports.
type BenchExperiment struct {
	Experiment string `json:"experiment"`
	WallMillis int64  `json:"wall_ms"`
	// SimCycles is the total number of simulated machine cycles the
	// experiment executed (0 when the experiment is trace-driven and
	// has no timing component).
	SimCycles int64 `json:"sim_cycles,omitempty"`
	// SimCyclesPerSec is the simulator's cycle throughput for this
	// experiment: SimCycles over the wall-clock time.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
	// MeanIPC averages the headline IPC over the experiment's rows.
	MeanIPC float64 `json:"mean_ipc,omitempty"`
	// EmuInstsPerSec is the standalone functional-emulator throughput
	// (the `emu` experiment's bare-mode rate); 0 elsewhere.
	EmuInstsPerSec float64 `json:"emu_insts_per_sec,omitempty"`
}

// BenchReport is the whole -json record for one pok-bench run. The
// provenance fields (GOMAXPROCS, CPU model, git SHA) identify the
// machine and source state a committed baseline was measured on, so a
// -compare mismatch can be traced to hardware instead of code.
type BenchReport struct {
	Date        string            `json:"date"`
	GoVersion   string            `json:"go_version"`
	NumCPU      int               `json:"num_cpu"`
	Gomaxprocs  int               `json:"gomaxprocs,omitempty"`
	CPUModel    string            `json:"cpu_model,omitempty"`
	GitSHA      string            `json:"git_sha,omitempty"`
	InstsBudget uint64            `json:"insts_budget"`
	Parallel    int               `json:"parallel"`
	TotalWallMS int64             `json:"total_wall_ms"`
	Experiments []BenchExperiment `json:"experiments"`
}

// LoadBenchReport parses a BENCH_<date>.json file.
func LoadBenchReport(path string) (*BenchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBenchReport(blob)
}

// ParseBenchReport decodes a -json record.
func ParseBenchReport(blob []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("exp: bad bench report: %w", err)
	}
	return &r, nil
}
