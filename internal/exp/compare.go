package exp

import (
	"fmt"
	"strings"

	"pok/internal/stats"
)

// DefaultRegressionTolerance is the fractional slowdown CI tolerates
// before pok-bench -compare exits non-zero: a quarter more wall time
// (or a quarter less simulation throughput) on any experiment fails
// the gate. Generous on purpose — shared CI runners are noisy — while
// still catching the order-of-magnitude regressions that matter.
const DefaultRegressionTolerance = 0.25

// BenchDelta is the comparison of one experiment across two reports.
type BenchDelta struct {
	Experiment string
	OldWallMS  int64
	NewWallMS  int64
	// WallRatio is new/old wall time (>1 = slower).
	WallRatio float64
	// CPSRatio is new/old simulated cycles per second (<1 = slower);
	// 0 when either side lacks throughput data.
	CPSRatio float64
	// EmuRatio is new/old emulated instructions per second (<1 =
	// slower); 0 when either side lacks emulator-throughput data.
	EmuRatio float64
	// Regressed marks deltas beyond the tolerance.
	Regressed bool
	// Note explains missing counterparts or skipped checks.
	Note string
}

// BenchComparison is the full diff of two -json regression records.
type BenchComparison struct {
	Tolerance float64
	Deltas    []BenchDelta
	// Warnings flag provenance mismatches (different CPU count, CPU
	// model) that make wall-clock ratios unreliable. They never trip
	// the gate: a baseline recorded on different hardware should be
	// re-baselined, not block CI.
	Warnings []string
}

// Regressed reports whether any experiment tripped the gate.
func (c *BenchComparison) Regressed() bool {
	for _, d := range c.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// CompareBenchReports diffs two pok-bench -json records experiment by
// experiment. tolerance <= 0 selects DefaultRegressionTolerance.
// Experiments present on only one side are reported but never fail
// the gate (the suite is allowed to grow); very short experiments
// (< 50ms on both sides) are skipped as pure timer noise.
func CompareBenchReports(old, new *BenchReport, tolerance float64) *BenchComparison {
	if tolerance <= 0 {
		tolerance = DefaultRegressionTolerance
	}
	cmp := &BenchComparison{Tolerance: tolerance}
	if old.NumCPU != 0 && new.NumCPU != 0 && old.NumCPU != new.NumCPU {
		cmp.Warnings = append(cmp.Warnings, fmt.Sprintf(
			"num_cpu differs (old %d, new %d): timings are not comparable, consider re-baselining",
			old.NumCPU, new.NumCPU))
	}
	if old.CPUModel != "" && new.CPUModel != "" && old.CPUModel != new.CPUModel {
		cmp.Warnings = append(cmp.Warnings, fmt.Sprintf(
			"cpu_model differs (old %q, new %q): timings are not comparable, consider re-baselining",
			old.CPUModel, new.CPUModel))
	}
	newByName := map[string]BenchExperiment{}
	for _, e := range new.Experiments {
		newByName[e.Experiment] = e
	}
	seen := map[string]bool{}
	for _, o := range old.Experiments {
		seen[o.Experiment] = true
		n, ok := newByName[o.Experiment]
		if !ok {
			cmp.Deltas = append(cmp.Deltas, BenchDelta{
				Experiment: o.Experiment, OldWallMS: o.WallMillis,
				Note: "missing from new report",
			})
			continue
		}
		d := BenchDelta{
			Experiment: o.Experiment,
			OldWallMS:  o.WallMillis,
			NewWallMS:  n.WallMillis,
		}
		const noiseFloorMS = 50
		switch {
		case o.WallMillis < noiseFloorMS && n.WallMillis < noiseFloorMS:
			d.Note = "below noise floor"
		case o.WallMillis > 0:
			d.WallRatio = float64(n.WallMillis) / float64(o.WallMillis)
			if d.WallRatio > 1+tolerance {
				d.Regressed = true
			}
		}
		if o.SimCyclesPerSec > 0 && n.SimCyclesPerSec > 0 {
			d.CPSRatio = n.SimCyclesPerSec / o.SimCyclesPerSec
			if d.CPSRatio < 1-tolerance {
				d.Regressed = true
			}
		}
		if o.EmuInstsPerSec > 0 && n.EmuInstsPerSec > 0 {
			d.EmuRatio = n.EmuInstsPerSec / o.EmuInstsPerSec
			if d.EmuRatio < 1-tolerance {
				d.Regressed = true
			}
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for _, n := range new.Experiments {
		if !seen[n.Experiment] {
			cmp.Deltas = append(cmp.Deltas, BenchDelta{
				Experiment: n.Experiment, NewWallMS: n.WallMillis,
				Note: "new experiment",
			})
		}
	}
	return cmp
}

// Render formats the comparison as the table pok-bench -compare
// prints, flagging regressions in the status column.
func (c *BenchComparison) Render() string {
	t := stats.NewTable(
		fmt.Sprintf("Benchmark regression gate (tolerance %.0f%%)", 100*c.Tolerance),
		"experiment", "old ms", "new ms", "wall ratio", "cps ratio", "emu ratio", "status")
	for _, d := range c.Deltas {
		wall, cps, emu := "-", "-", "-"
		if d.WallRatio > 0 {
			wall = fmt.Sprintf("%.2fx", d.WallRatio)
		}
		if d.CPSRatio > 0 {
			cps = fmt.Sprintf("%.2fx", d.CPSRatio)
		}
		if d.EmuRatio > 0 {
			emu = fmt.Sprintf("%.2fx", d.EmuRatio)
		}
		status := "ok"
		switch {
		case d.Regressed:
			status = "REGRESSED"
		case d.Note != "":
			status = d.Note
		}
		t.AddRow(d.Experiment,
			fmt.Sprintf("%d", d.OldWallMS), fmt.Sprintf("%d", d.NewWallMS),
			wall, cps, emu, status)
	}
	var b strings.Builder
	b.WriteString(t.Render())
	for _, w := range c.Warnings {
		fmt.Fprintf(&b, "WARNING: %s\n", w)
	}
	if c.Regressed() {
		b.WriteString("RESULT: regression detected\n")
	} else {
		b.WriteString("RESULT: no regression beyond tolerance\n")
	}
	return b.String()
}
