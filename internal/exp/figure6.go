package exp

import (
	"fmt"

	"pok/internal/bitslice"
	"pok/internal/bpred"
	"pok/internal/emu"
	"pok/internal/isa"
	"pok/internal/stats"
)

// Figure6Result is the early branch misprediction detection
// characterization of one benchmark: the cumulative fraction of all
// conditional branch mispredictions exposed after examining operand bits
// [0, b] (a 64k-entry gshare supplies the predictions, as in the paper).
type Figure6Result struct {
	Benchmark string
	// CumFrac[b] is the fraction of mispredictions detectable after
	// examining bits 0..b of the branch comparison. CumFrac[31] == 1.
	CumFrac [32]float64
	// Mispredicts and Branches are the raw counts.
	Mispredicts uint64
	Branches    uint64
	// EqBranchFrac is the fraction of dynamic conditional branches that
	// are beq/bne (the paper reports 61% on average).
	EqBranchFrac float64
	// EqMispredFrac is the fraction of mispredictions from beq/bne (48%
	// in the paper).
	EqMispredFrac float64
}

// branchAssertsEquality reports whether the predicted direction of the
// branch asserts that its comparison operands are equal — the case a
// single differing slice can refute.
func branchAssertsEquality(op isa.Op, predictedTaken bool) bool {
	switch op {
	case isa.OpBEQ:
		return predictedTaken
	case isa.OpBNE:
		return !predictedTaken
	}
	return false
}

// Figure6 reproduces the paper's Figure 6.
func Figure6(opt Options) ([]Figure6Result, error) {
	var out []Figure6Result
	for _, name := range opt.benchmarks() {
		g := bpred.NewGshare(16) // 64k entries
		res := Figure6Result{Benchmark: name}
		dist := stats.NewDist(32)
		var eqBranches, eqMispred uint64

		err := opt.forEachInst(name, func(d *emu.DynInst) {
			op := d.Inst.Op
			if !op.IsBranch() || op == isa.OpBC1T || op == isa.OpBC1F {
				return
			}
			predTaken := g.Predict(d.PC)
			g.Update(d.PC, d.Taken)
			res.Branches++
			if op.EqualityBranch() {
				eqBranches++
			}
			if predTaken == d.Taken {
				return
			}
			res.Mispredicts++
			if op.EqualityBranch() {
				eqMispred++
			}
			// How many low bits expose the misprediction?
			bin := 31 // default: the sign bit / full comparison
			if branchAssertsEquality(op, predTaken) {
				a, b := branchCompareOperands(d)
				if diff := bitslice.FirstDiffBit(a, b); diff < 32 {
					bin = diff
				}
			}
			dist.Add(bin)
		})
		if err != nil {
			return nil, err
		}
		for b := 0; b < 32; b++ {
			res.CumFrac[b] = dist.CumFrac(b)
		}
		if res.Branches > 0 {
			res.EqBranchFrac = float64(eqBranches) / float64(res.Branches)
		}
		if res.Mispredicts > 0 {
			res.EqMispredFrac = float64(eqMispred) / float64(res.Mispredicts)
		}
		out = append(out, res)
	}
	return out, nil
}

// branchCompareOperands returns the two values a conditional branch
// compares ($zero substituted for absent sources).
func branchCompareOperands(d *emu.DynInst) (a, b uint32) {
	switch d.NSrc {
	case 2:
		return d.SrcVal[0], d.SrcVal[1]
	case 1:
		return d.SrcVal[0], 0
	default:
		return 0, 0
	}
}

// RenderFigure6 prints the cumulative detection series; the sampled bit
// positions match reading the paper's plot left to right.
func RenderFigure6(results []Figure6Result) string {
	samples := []int{0, 1, 3, 7, 8, 15, 23, 30, 31}
	headers := []string{"benchmark", "mispred", "beq/bne br", "beq/bne misp"}
	for _, b := range samples {
		headers = append(headers, fmt.Sprintf("<=bit %d", b))
	}
	t := stats.NewTable(
		"Figure 6: % of Mispredictions Detected vs Operand Bits Examined (64k gshare)",
		headers...)
	for _, r := range results {
		row := []string{
			r.Benchmark,
			fmt.Sprintf("%d", r.Mispredicts),
			pct(r.EqBranchFrac),
			pct(r.EqMispredFrac),
		}
		for _, b := range samples {
			row = append(row, pct(r.CumFrac[b]))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// AverageCumFrac averages the cumulative detection fraction at bit b over
// all results (the paper quotes the suite average at bits 0 and 7).
func AverageCumFrac(results []Figure6Result, b int) float64 {
	if len(results) == 0 || b < 0 || b > 31 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.CumFrac[b]
	}
	return sum / float64(len(results))
}
