package exp

import (
	"fmt"

	"pok/internal/stats"
)

// Figure12Row is the per-technique speedup breakdown of one benchmark:
// the contribution of each ladder step to the total speedup of bit-slice
// pipelining over simple pipelining (the paper's stacked Figure 12).
type Figure12Row struct {
	Benchmark string
	SliceBy   int
	// Contribution[i] is the incremental speedup (as a fraction of the
	// simple-pipelining cycle count) added by TechniqueNames[i+1].
	Contribution []float64
	// Total is the overall speedup minus one (e.g. 0.16 = 16%).
	Total float64
	// NewTechniques is the part of Total contributed by the three new
	// §5 applications plus out-of-order slices (everything beyond partial
	// operand bypassing) — the paper reports +8% (x2) and +13% (x4).
	NewTechniques float64
}

// Figure12 derives the paper's Figure 12 from Figure 11 data.
func Figure12(rows []Figure11Row) []Figure12Row {
	var out []Figure12Row
	for _, r := range rows {
		simple := r.StackIPC[0]
		row := Figure12Row{Benchmark: r.Benchmark, SliceBy: r.SliceBy}
		prev := simple
		for _, ipc := range r.StackIPC[1:] {
			row.Contribution = append(row.Contribution, (ipc-prev)/simple)
			prev = ipc
		}
		row.Total = r.FinalIPC()/simple - 1
		// Everything beyond the (existing) partial operand bypassing
		// technique counts as the paper's "new" contribution.
		bypassOnly := r.StackIPC[1]
		row.NewTechniques = (r.FinalIPC() - bypassOnly) / simple
		out = append(out, row)
	}
	return out
}

// RenderFigure12 prints the speedup breakdown.
func RenderFigure12(rows []Figure12Row) string {
	if len(rows) == 0 {
		return ""
	}
	headers := []string{"benchmark"}
	headers = append(headers, TechniqueNames[1:]...)
	headers = append(headers, "total speedup", "new techniques")
	t := stats.NewTable(
		fmt.Sprintf("Figure 12: Speed-Up of Bit-Slice Pipelining over Simple Pipelining, slice-by-%d",
			rows[0].SliceBy),
		headers...)
	var sumTotal, sumNew float64
	for _, r := range rows {
		row := []string{r.Benchmark}
		for _, c := range r.Contribution {
			row = append(row, fmt.Sprintf("%+.1f%%", 100*c))
		}
		row = append(row,
			fmt.Sprintf("%+.1f%%", 100*r.Total),
			fmt.Sprintf("%+.1f%%", 100*r.NewTechniques))
		t.AddRow(row...)
		sumTotal += r.Total
		sumNew += r.NewTechniques
	}
	n := float64(len(rows))
	return t.Render() + fmt.Sprintf(
		"mean: total %+.1f%%, from new partial-operand techniques %+.1f%%\n",
		100*sumTotal/n, 100*sumNew/n)
}
