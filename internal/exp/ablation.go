package exp

import (
	"fmt"

	"pok/internal/core"
	"pok/internal/stats"
)

// AblationRow compares one benchmark under two configurations.
type AblationRow struct {
	Benchmark string
	BaseIPC   float64 // reference configuration
	ExtIPC    float64 // configuration under study
}

// Gain returns the relative IPC change of the studied configuration.
func (r AblationRow) Gain() float64 { return r.ExtIPC/r.BaseIPC - 1 }

func runPair(opt Options, name string, a, b core.Config) (AblationRow, error) {
	row := AblationRow{Benchmark: name}
	for i, cfg := range []core.Config{a, b} {
		prog, ff, err := opt.program(name)
		if err != nil {
			return row, err
		}
		r, err := core.RunWarm(prog, cfg, ff, opt.budget())
		if err != nil {
			return row, fmt.Errorf("exp: ablation %s %s: %w", name, cfg.Name, err)
		}
		if i == 0 {
			row.BaseIPC = r.IPC
		} else {
			row.ExtIPC = r.IPC
		}
	}
	return row, nil
}

// NarrowWidthAblation measures the paper's §6 future-work extension: on
// top of the full bit-sliced machine, treat narrow results (upper slices
// all zeros/ones) as fully available once their low slice is produced.
func NarrowWidthAblation(opt Options, sliceBy int) ([]AblationRow, error) {
	rows := make([]AblationRow, len(opt.benchmarks()))
	err := opt.forEachBenchmark(func(idx int, name string) error {
		base := core.BitSliced(sliceBy)
		ext := core.BitSliced(sliceBy)
		ext.NarrowWidth = true
		ext.Name = base.Name + "+narrow"
		row, err := runPair(opt, name, base, ext)
		if err != nil {
			return err
		}
		rows[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PredictorAblation swaps the 64k gshare for an equal-size bimodal table
// on the base machine (Table 2 justification: the paper's gshare choice).
func PredictorAblation(opt Options) ([]AblationRow, error) {
	rows := make([]AblationRow, len(opt.benchmarks()))
	err := opt.forEachBenchmark(func(idx int, name string) error {
		g := core.BaseConfig()
		b := core.BaseConfig()
		b.UseBimodal = true
		b.Name = "base+bimodal"
		row, err := runPair(opt, name, g, b)
		if err != nil {
			return err
		}
		rows[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WrongPathAblation measures the second-order effect of simulating
// wrong-path instructions (cache pollution and front-end contention) on
// the full bit-sliced machine — the effect the paper's Figure 11
// discussion attributes part of li's above-ideal IPC to.
func WrongPathAblation(opt Options, sliceBy int) ([]AblationRow, error) {
	rows := make([]AblationRow, len(opt.benchmarks()))
	err := opt.forEachBenchmark(func(idx int, name string) error {
		base := core.BitSliced(sliceBy)
		ext := core.BitSliced(sliceBy)
		ext.WrongPath = true
		ext.Name = base.Name + "+wrongpath"
		row, err := runPair(opt, name, base, ext)
		if err != nil {
			return err
		}
		rows[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderAblation prints an ablation comparison.
func RenderAblation(title, baseLabel, extLabel string, rows []AblationRow) string {
	t := stats.NewTable(title, "benchmark", baseLabel, extLabel, "change")
	var sum float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, stats.F2(r.BaseIPC), stats.F2(r.ExtIPC),
			fmt.Sprintf("%+.1f%%", 100*r.Gain()))
		sum += r.Gain()
	}
	return t.Render() +
		fmt.Sprintf("mean change: %+.1f%%\n", 100*sum/float64(len(rows)))
}

// WindowSweepRow holds IPC at each window size for one benchmark.
type WindowSweepRow struct {
	Benchmark string
	Sizes     []int
	IPC       []float64
}

// WindowSweep varies the RUU size on the full bit-sliced slice-by-2
// machine — the design-space check that 64 entries (Table 2) sit on the
// knee of the curve.
func WindowSweep(opt Options, sizes []int) ([]WindowSweepRow, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32, 64, 128}
	}
	rows := make([]WindowSweepRow, len(opt.benchmarks()))
	err := opt.forEachBenchmark(func(idx int, name string) error {
		row := WindowSweepRow{Benchmark: name, Sizes: sizes}
		for _, size := range sizes {
			cfg := core.BitSliced(2)
			cfg.WindowSize = size
			cfg.Name = fmt.Sprintf("bit-slice-x2/ruu%d", size)
			prog, ff, err := opt.program(name)
			if err != nil {
				return err
			}
			r, err := core.RunWarm(prog, cfg, ff, opt.budget())
			if err != nil {
				return fmt.Errorf("exp: window sweep %s: %w", name, err)
			}
			row.IPC = append(row.IPC, r.IPC)
		}
		rows[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// LSQSweep varies the load/store queue size on the full bit-sliced
// slice-by-2 machine (the paper's Table 2 uses 32 entries).
func LSQSweep(opt Options, sizes []int) ([]WindowSweepRow, error) {
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64}
	}
	rows := make([]WindowSweepRow, len(opt.benchmarks()))
	err := opt.forEachBenchmark(func(idx int, name string) error {
		row := WindowSweepRow{Benchmark: name, Sizes: sizes}
		for _, size := range sizes {
			cfg := core.BitSliced(2)
			cfg.LSQSize = size
			cfg.Name = fmt.Sprintf("bit-slice-x2/lsq%d", size)
			prog, ff, err := opt.program(name)
			if err != nil {
				return err
			}
			r, err := core.RunWarm(prog, cfg, ff, opt.budget())
			if err != nil {
				return fmt.Errorf("exp: lsq sweep %s: %w", name, err)
			}
			row.IPC = append(row.IPC, r.IPC)
		}
		rows[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderLSQSweep prints the LSQ sensitivity table.
func RenderLSQSweep(rows []WindowSweepRow) string {
	if len(rows) == 0 {
		return ""
	}
	headers := []string{"benchmark"}
	for _, s := range rows[0].Sizes {
		headers = append(headers, fmt.Sprintf("LSQ %d", s))
	}
	t := stats.NewTable("Ablation: LSQ size (bit-slice-x2)", headers...)
	for _, r := range rows {
		row := []string{r.Benchmark}
		for _, ipc := range r.IPC {
			row = append(row, stats.F2(ipc))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// RenderWindowSweep prints the window sensitivity table.
func RenderWindowSweep(rows []WindowSweepRow) string {
	if len(rows) == 0 {
		return ""
	}
	headers := []string{"benchmark"}
	for _, s := range rows[0].Sizes {
		headers = append(headers, fmt.Sprintf("RUU %d", s))
	}
	t := stats.NewTable("Ablation: RUU window size (bit-slice-x2)", headers...)
	for _, r := range rows {
		row := []string{r.Benchmark}
		for _, ipc := range r.IPC {
			row = append(row, stats.F2(ipc))
		}
		t.AddRow(row...)
	}
	return t.Render()
}
