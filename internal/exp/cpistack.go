package exp

import (
	"fmt"
	"strings"

	"pok/internal/core"
	"pok/internal/profile"
)

// CPIStackRow is one benchmark's cycle-accounting breakdown across the
// Figure 11/12 technique ladder: one CPI stack per ladder step, so the
// per-technique IPC deltas of Figure 12 come with an explanation of
// *which* component each technique shrank (branch-resolution for early
// branch resolution, lsq-disambig for early disambiguation, dcache/way
// for partial tag matching, ...).
type CPIStackRow struct {
	Benchmark string
	SliceBy   int
	// Configs holds the ladder step names (same order as Stacks).
	Configs []string
	// Stacks[i] is the CPI stack under Configs[i].
	Stacks []*profile.CPIStack
}

// CPIStackReport runs the selected benchmarks through the cumulative
// technique ladder with the profiling collector attached and builds
// each run's CPI stack. The profiler only copies events, so the
// underlying Results are identical to Figure 11's.
//
// Without an explicit benchmark selection it defaults to a small
// representative subset (the full suite x full ladder is Figure 11's
// job; this report is the attribution companion).
func CPIStackReport(opt Options, sliceBy int) ([]CPIStackRow, error) {
	if len(opt.Benchmarks) == 0 {
		opt.Benchmarks = []string{"gzip", "gcc", "mcf"}
	}
	ladder := ConfigLadder(sliceBy)
	rows := make([]CPIStackRow, len(opt.benchmarks()))
	err := opt.forEachBenchmark(func(idx int, name string) error {
		row := CPIStackRow{Benchmark: name, SliceBy: sliceBy}
		for _, cfg := range ladder {
			prog, ff, err := opt.program(name)
			if err != nil {
				return err
			}
			lc := profile.NewLive(nil)
			lc.Benchmark, lc.Config = name, cfg.Name
			cfg.Collector = lc
			r, err := core.RunWarm(prog, cfg, ff, opt.budget())
			if err != nil {
				return fmt.Errorf("exp: cpistack %s %s: %w", name, cfg.Name, err)
			}
			st, err := lc.Stack()
			if err != nil {
				return fmt.Errorf("exp: cpistack %s %s: %w", name, cfg.Name, err)
			}
			if st.Sum() != r.Cycles {
				return fmt.Errorf("exp: cpistack %s %s: attributed %d cycles, run has %d",
					name, cfg.Name, st.Sum(), r.Cycles)
			}
			row.Configs = append(row.Configs, cfg.Name)
			row.Stacks = append(row.Stacks, st)
		}
		rows[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderCPIStackReport prints one attribution table per benchmark:
// components as rows, ladder steps as columns, cycles (and % of the
// run) as cells — the per-technique companion to Figure 12.
func RenderCPIStackReport(rows []CPIStackRow) string {
	var b strings.Builder
	for ri, row := range rows {
		if ri > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "CPI-stack attribution: %s, slice-by-%d (cycles, %% of run)\n",
			row.Benchmark, row.SliceBy)
		fmt.Fprintf(&b, "  %-18s", "component")
		for i := range row.Configs {
			fmt.Fprintf(&b, " %15s", fmt.Sprintf("step%d", i))
		}
		b.WriteByte('\n')
		for c := 0; c < profile.NumComponents; c++ {
			fmt.Fprintf(&b, "  %-18s", profile.Component(c).Label())
			for _, st := range row.Stacks {
				pct := 0.0
				if st.Cycles > 0 {
					pct = 100 * float64(st.Comp[c]) / float64(st.Cycles)
				}
				fmt.Fprintf(&b, " %15s", fmt.Sprintf("%d (%4.1f%%)", st.Comp[c], pct))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  %-18s", "total cycles")
		for _, st := range row.Stacks {
			fmt.Fprintf(&b, " %15d", st.Cycles)
		}
		b.WriteByte('\n')
		for i, name := range row.Configs {
			fmt.Fprintf(&b, "  step%d = %s\n", i, name)
		}
	}
	return b.String()
}
