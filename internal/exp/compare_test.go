package exp

import (
	"strings"
	"testing"
)

func report(exps ...BenchExperiment) *BenchReport {
	return &BenchReport{Date: "2026-01-01", Experiments: exps}
}

func TestCompareBenchReportsPasses(t *testing.T) {
	old := report(
		BenchExperiment{Experiment: "table1", WallMillis: 1000, SimCyclesPerSec: 2e6},
		BenchExperiment{Experiment: "figure6", WallMillis: 400},
	)
	neu := report(
		BenchExperiment{Experiment: "table1", WallMillis: 1200, SimCyclesPerSec: 1.8e6}, // +20%: within 25%
		BenchExperiment{Experiment: "figure6", WallMillis: 410},
	)
	cmp := CompareBenchReports(old, neu, 0)
	if cmp.Regressed() {
		t.Fatalf("within-tolerance diff flagged:\n%s", cmp.Render())
	}
	if cmp.Tolerance != DefaultRegressionTolerance {
		t.Fatalf("tolerance = %v", cmp.Tolerance)
	}
}

func TestCompareBenchReportsWallRegression(t *testing.T) {
	old := report(BenchExperiment{Experiment: "table1", WallMillis: 1000})
	neu := report(BenchExperiment{Experiment: "table1", WallMillis: 1300}) // +30%
	cmp := CompareBenchReports(old, neu, 0.25)
	if !cmp.Regressed() {
		t.Fatalf("+30%% wall time not flagged:\n%s", cmp.Render())
	}
	if !strings.Contains(cmp.Render(), "REGRESSED") {
		t.Fatalf("render does not flag the row:\n%s", cmp.Render())
	}
}

func TestCompareBenchReportsThroughputRegression(t *testing.T) {
	// Wall time identical but throughput collapsed (e.g. the budget
	// shrank): the cycles/sec gate must still catch it.
	old := report(BenchExperiment{Experiment: "table1", WallMillis: 1000, SimCyclesPerSec: 2e6})
	neu := report(BenchExperiment{Experiment: "table1", WallMillis: 1000, SimCyclesPerSec: 1e6})
	cmp := CompareBenchReports(old, neu, 0)
	if !cmp.Regressed() {
		t.Fatalf("-50%% throughput not flagged:\n%s", cmp.Render())
	}
}

func TestCompareBenchReportsNoiseFloorAndMissing(t *testing.T) {
	old := report(
		BenchExperiment{Experiment: "tiny", WallMillis: 3},
		BenchExperiment{Experiment: "gone", WallMillis: 500},
	)
	neu := report(
		BenchExperiment{Experiment: "tiny", WallMillis: 40}, // 13x but < 50ms: noise
		BenchExperiment{Experiment: "fresh", WallMillis: 800},
	)
	cmp := CompareBenchReports(old, neu, 0)
	if cmp.Regressed() {
		t.Fatalf("noise / suite growth flagged as regression:\n%s", cmp.Render())
	}
	out := cmp.Render()
	for _, want := range []string{"below noise floor", "missing from new report", "new experiment"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestParseBenchReportRejectsGarbage(t *testing.T) {
	if _, err := ParseBenchReport([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	r, err := ParseBenchReport([]byte(`{"date":"2026-01-01","experiments":[{"experiment":"t","wall_ms":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Experiments) != 1 || r.Experiments[0].WallMillis != 5 {
		t.Fatalf("parsed report: %+v", r)
	}
}
