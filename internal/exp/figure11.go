package exp

import (
	"fmt"

	"pok/internal/core"
	"pok/internal/stats"
)

// TechniqueNames lists the Figure 11/12 optimization ladder in the order
// the paper applies it (each step includes all earlier ones).
var TechniqueNames = []string{
	"simple pipelining",
	"+partial operand bypassing",
	"+out-of-order slices",
	"+early branch resolution",
	"+early l/s disambiguation",
	"+partial tag matching",
}

// ConfigLadder builds the cumulative configuration ladder for a slice
// count: simple pipelining first, then each partial-operand technique
// stacked in the paper's order.
func ConfigLadder(sliceBy int) []core.Config {
	var out []core.Config
	c := core.SimplePipelined(sliceBy)
	c.Name = fmt.Sprintf("x%d %s", sliceBy, TechniqueNames[0])
	out = append(out, c)
	steps := []func(*core.Config){
		func(c *core.Config) { c.PartialBypass = true },
		func(c *core.Config) { c.OoOSlices = true },
		func(c *core.Config) { c.EarlyBranch = true },
		func(c *core.Config) { c.EarlyLSDisambig = true },
		func(c *core.Config) { c.PartialTag = true },
	}
	for i, step := range steps {
		c := out[len(out)-1]
		step(&c)
		c.Name = fmt.Sprintf("x%d %s", sliceBy, TechniqueNames[i+1])
		out = append(out, c)
	}
	return out
}

// Figure11Row is one benchmark's IPC stack for one slice count.
type Figure11Row struct {
	Benchmark string
	SliceBy   int
	// BaseIPC is the ideal machine (single-cycle EX) IPC — the thin bar
	// at the top of each Figure 11 stack.
	BaseIPC float64
	// StackIPC[i] is the IPC with TechniqueNames[:i+1] applied.
	StackIPC []float64
	// Results holds the full statistics of each ladder step (same
	// indexing as StackIPC); Results[len-1] is the complete bit-sliced
	// machine.
	Results []*core.Result
	// BaseResult is the ideal machine's statistics.
	BaseResult *core.Result
}

// FinalIPC returns the fully bit-sliced IPC.
func (r *Figure11Row) FinalIPC() float64 { return r.StackIPC[len(r.StackIPC)-1] }

// SpeedupOverSimple returns FinalIPC / simple-pipelining IPC (the paper's
// 16% and 44% headline numbers for slice-by-2 and slice-by-4).
func (r *Figure11Row) SpeedupOverSimple() float64 {
	return r.FinalIPC() / r.StackIPC[0]
}

// VsBase returns FinalIPC / BaseIPC (the paper: ~1.00 for slice-by-2,
// ~0.82 for slice-by-4).
func (r *Figure11Row) VsBase() float64 { return r.FinalIPC() / r.BaseIPC }

// Figure11 reproduces the paper's Figure 11 for one slice count: the IPC
// of the ideal machine, simple pipelining, and each partial-operand
// technique added cumulatively. Benchmarks run concurrently when
// opt.Parallel > 1 (each ladder stays sequential within its worker).
func Figure11(opt Options, sliceBy int) ([]Figure11Row, error) {
	ladder := ConfigLadder(sliceBy)
	rows := make([]Figure11Row, len(opt.benchmarks()))
	err := opt.forEachBenchmark(func(idx int, name string) error {
		row := Figure11Row{Benchmark: name, SliceBy: sliceBy}
		prog, ff, err := opt.program(name)
		if err != nil {
			return err
		}
		base, err := core.RunWarm(prog, core.BaseConfig(), ff, opt.budget())
		if err != nil {
			return fmt.Errorf("exp: fig11 %s base: %w", name, err)
		}
		base.Benchmark = name
		row.BaseIPC = base.IPC
		row.BaseResult = base
		for _, cfg := range ladder {
			prog, ff, err := opt.program(name)
			if err != nil {
				return err
			}
			r, err := core.RunWarm(prog, cfg, ff, opt.budget())
			if err != nil {
				return fmt.Errorf("exp: fig11 %s %s: %w", name, cfg.Name, err)
			}
			r.Benchmark = name
			row.StackIPC = append(row.StackIPC, r.IPC)
			row.Results = append(row.Results, r)
		}
		rows[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure11 prints the IPC stacks plus the suite averages the paper
// quotes in §7.1.
func RenderFigure11(rows []Figure11Row) string {
	if len(rows) == 0 {
		return ""
	}
	headers := []string{"benchmark", "ideal"}
	headers = append(headers, TechniqueNames...)
	headers = append(headers, "vs ideal", "vs simple")
	t := stats.NewTable(
		fmt.Sprintf("Figure 11: IPC, slice-by-%d", rows[0].SliceBy), headers...)
	var sumVsBase, sumSpeedup float64
	for _, r := range rows {
		row := []string{r.Benchmark, stats.F2(r.BaseIPC)}
		for _, ipc := range r.StackIPC {
			row = append(row, stats.F2(ipc))
		}
		row = append(row,
			fmt.Sprintf("%.3f", r.VsBase()),
			fmt.Sprintf("%.3f", r.SpeedupOverSimple()))
		t.AddRow(row...)
		sumVsBase += r.VsBase()
		sumSpeedup += r.SpeedupOverSimple()
	}
	n := float64(len(rows))
	out := t.Render()
	out += fmt.Sprintf(
		"mean: bit-slice/ideal IPC ratio %.3f, speedup over simple pipelining %.1f%%\n",
		sumVsBase/n, 100*(sumSpeedup/n-1))

	// §7.1 partial-tag accuracy: way mispredict rate of the full machine.
	var wm, acc uint64
	for _, r := range rows {
		final := r.Results[len(r.Results)-1]
		wm += final.WayMispredicts
		acc += final.PartialTagAccess
	}
	if acc > 0 {
		out += fmt.Sprintf("partial tag way-mispredict rate: %s (%d of %d partial-tag accesses)\n",
			stats.Pct(wm, acc), wm, acc)
	}
	return out
}
