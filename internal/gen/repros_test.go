package gen_test

// Checked-in repro bundles (testdata/repros/*) are minimized programs
// the soak harness produced from deliberately seeded faults. Replaying
// them here turns every past finding into a permanent regression test:
// each bundle must still reproduce its recorded failure signature
// (kind + field) when run through the lockstep checker today.
//
// To add a bundle: run pok-soak, copy OutDir/repros/<name> into
// testdata/repros/ under a descriptive directory name.

import (
	"os"
	"path/filepath"
	"testing"

	"pok/internal/soak"
)

func TestReproBundlesStillReproduce(t *testing.T) {
	root := filepath.Join("testdata", "repros")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no repro bundles checked in")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			dir := filepath.Join(root, e.Name())
			b, res, err := soak.ReplayBundle(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Reproduces(res) {
				t.Fatalf("bundle %s classified %+v, want kind=%q field=%q",
					e.Name(), res.Outcome, b.Kind, b.Field)
			}
		})
	}
}
