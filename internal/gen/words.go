package gen

import "pok/internal/isa"

// SeedWords returns n encoded instruction words drawn from the same
// mechanism-biased distribution the program generator uses — carry
// boundary constants, partial-address offsets, equal-low-slice operand
// setups — for seeding instruction-level fuzzers (emu.FuzzEmuStep).
// The stream is a pure function of seed.
func SeedWords(seed uint64, n int) []uint32 {
	r := rng{s: mix64(seed)}
	reg := func() isa.Reg { return isa.Reg(8 + r.intn(18)) } // $t0..$t9, $s0..$s7
	imm16 := func() int32 { return int32(int16(r.next())) }
	out := make([]uint32, 0, n)
	for len(out) < n {
		var in isa.Inst
		switch r.intn(12) {
		case 0: // slice-boundary arithmetic (§3/§4 carry chains)
			in = isa.Inst{Op: isa.OpADDU, Rd: reg(), Rs: reg(), Rt: reg()}
		case 1:
			in = isa.Inst{Op: isa.OpSLTU, Rd: reg(), Rs: reg(), Rt: reg()}
		case 2: // boundary immediates straddling the 16-bit slice cut
			ops := []isa.Op{isa.OpADDIU, isa.OpSLTIU, isa.OpORI, isa.OpXORI, isa.OpANDI}
			imms := []int32{-1, 0x7fff, -0x8000, 1, -2}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rt: reg(), Rs: reg(),
				Imm: imms[r.intn(len(imms))]}
		case 3: // partial-address loads (§5.1: low-16 window offsets)
			ops := []isa.Op{isa.OpLW, isa.OpLBU, isa.OpLHU, isa.OpLB, isa.OpLH}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rt: reg(), Rs: reg(), Imm: imm16()}
		case 4: // stores
			ops := []isa.Op{isa.OpSW, isa.OpSB, isa.OpSH}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rt: reg(), Rs: reg(), Imm: imm16()}
		case 5: // branches (§5.3: early resolution on partial compares)
			ops := []isa.Op{isa.OpBEQ, isa.OpBNE}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rs: reg(), Rt: reg(),
				Imm: int32(r.intn(8)) - 2}
		case 6:
			ops := []isa.Op{isa.OpBGTZ, isa.OpBLEZ, isa.OpBGEZ, isa.OpBLTZ}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rs: reg(), Imm: int32(r.intn(8)) - 2}
		case 7: // hi/lo traffic
			ops := []isa.Op{isa.OpMULT, isa.OpMULTU, isa.OpDIV, isa.OpDIVU}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rs: reg(), Rt: reg()}
		case 8:
			ops := []isa.Op{isa.OpMFLO, isa.OpMFHI}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rd: reg()}
		case 9: // shifts across the slice boundary
			ops := []isa.Op{isa.OpSLL, isa.OpSRL, isa.OpSRA}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rd: reg(), Rt: reg(),
				Shamt: uint8(r.intn(32))}
		case 10:
			ops := []isa.Op{isa.OpSLLV, isa.OpSRLV, isa.OpSRAV}
			in = isa.Inst{Op: ops[r.intn(len(ops))], Rd: reg(), Rt: reg(), Rs: reg()}
		default: // upper-slice immediates
			in = isa.Inst{Op: isa.OpLUI, Rt: reg(), Imm: int32(r.u16())}
		}
		w, err := isa.Encode(in)
		if err != nil {
			continue
		}
		out = append(out, w)
	}
	return out
}
