package gen_test

import (
	"errors"
	"reflect"
	"testing"

	"pok/internal/asm"
	"pok/internal/emu"
	"pok/internal/gen"
	"pok/internal/isa"
)

// TestGeneratedProgramsValid is the generator's validity property test:
// across 1000 programs spanning many seeds and several feature mixes,
// every program must (a) assemble cleanly, (b) terminate under the
// generator's own dynamic-instruction estimate (which must itself stay
// under the configured budget), and (c) regenerate byte-identically
// from the same seed.
func TestGeneratedProgramsValid(t *testing.T) {
	mixes := []struct {
		name string
		mix  gen.Mix
	}{
		{"default", gen.Mix{}},
		{"carry-heavy", gen.Mix{CarryChain: 10, ALU: 1}},
		{"alias-heavy", gen.Mix{AliasPair: 10, Mem: 3}},
		{"branch-heavy", gen.Mix{BranchSlice: 10, ALU: 1}},
		{"way-heavy", gen.Mix{WayConflict: 10, Mem: 1}},
		{"muldiv-shift", gen.Mix{MulDiv: 5, Shift: 5, ALU: 1}},
	}
	const perMix = 1000 / 6

	total := 0
	for _, m := range mixes {
		for i := 0; i < perMix+1 && total < 1000; i++ {
			total++
			opts := gen.Options{
				Seed:      gen.ProgramSeed(uint64(1000+i), i),
				Fragments: 8 + i%24,
				LoopIters: 1 + i%4,
				MaxInsts:  6000,
				Mix:       m.mix,
			}
			p := gen.New(opts)

			// (c) deterministic regeneration, byte for byte.
			if again := gen.New(opts).Source(); again != p.Source() {
				t.Fatalf("%s seed %#x: regeneration differs", m.name, opts.Seed)
			}

			// (a) assembles cleanly.
			prog, err := asm.Assemble(p.Source())
			if err != nil {
				t.Fatalf("%s seed %#x: does not assemble: %v\n%s",
					m.name, opts.Seed, err, p.Source())
			}

			// (b) terminates within the estimate, which respects the
			// budget.
			est := p.DynamicEstimate()
			if est > opts.MaxInsts {
				t.Fatalf("%s seed %#x: estimate %d exceeds budget %d",
					m.name, opts.Seed, est, opts.MaxInsts)
			}
			e := emu.New(prog)
			if _, err := e.Run(est+16, nil); err != nil {
				if errors.Is(err, emu.ErrHalted) {
					continue
				}
				t.Fatalf("%s seed %#x: execution error: %v", m.name, opts.Seed, err)
			}
			if !e.Halted() {
				t.Fatalf("%s seed %#x: did not terminate within %d insts",
					m.name, opts.Seed, est+16)
			}
		}
	}
	if total < 1000 {
		t.Fatalf("only exercised %d programs, want 1000", total)
	}
}

// TestDynamicEstimateIsUpperBound executes a sample of programs and
// checks the actual committed instruction count never exceeds the
// generator's estimate (the property the soak's budget clamping and the
// emulator run bound above rely on).
func TestDynamicEstimateIsUpperBound(t *testing.T) {
	for i := 0; i < 50; i++ {
		opts := gen.Options{Seed: uint64(i), MaxInsts: 8000}
		p := gen.New(opts)
		prog, err := asm.Assemble(p.Source())
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		e := emu.New(prog)
		n, err := e.Run(0, nil)
		if err != nil && !errors.Is(err, emu.ErrHalted) {
			t.Fatalf("seed %d: %v", i, err)
		}
		if est := p.DynamicEstimate(); n > est {
			t.Fatalf("seed %d: executed %d insts, estimate was %d", i, n, est)
		}
	}
}

// TestProgramSeedStability pins the seed-derivation function: a
// checkpointed soak resumes by cursor alone, which is only sound if
// ProgramSeed never changes across releases.
func TestProgramSeedStability(t *testing.T) {
	got := gen.ProgramSeed(1, 0)
	if got != gen.ProgramSeed(1, 0) {
		t.Fatal("ProgramSeed is not a pure function")
	}
	if gen.ProgramSeed(1, 0) == gen.ProgramSeed(1, 1) ||
		gen.ProgramSeed(1, 0) == gen.ProgramSeed(2, 0) {
		t.Fatal("ProgramSeed collides on adjacent inputs")
	}
}

// TestSeedWords: the fuzzer corpus stream must be deterministic and
// every emitted word must decode to a real instruction (a corpus of
// undecodable words would only exercise the fuzzers' error paths).
func TestSeedWords(t *testing.T) {
	a := gen.SeedWords(9, 200)
	b := gen.SeedWords(9, 200)
	if len(a) != 200 || !reflect.DeepEqual(a, b) {
		t.Fatal("SeedWords is not a pure function of its seed")
	}
	for _, w := range a {
		if _, err := isa.Decode(w); err != nil {
			t.Fatalf("seed word 0x%08x does not decode: %v", w, err)
		}
	}
}

// TestFeatureMixBias checks the weights actually steer the fragment
// distribution: a carry-heavy mix must emit more carry-chain fragments
// than anything else.
func TestFeatureMixBias(t *testing.T) {
	p := gen.New(gen.Options{
		Seed:      7,
		Fragments: 64,
		Mix:       gen.Mix{CarryChain: 20, ALU: 1},
	})
	if p.Counts["carry_chain"] <= p.Counts["alu"] {
		t.Fatalf("carry-heavy mix produced %v", p.Counts)
	}
	sum := 0
	for _, n := range p.Counts {
		sum += n
	}
	if sum != 64 {
		t.Fatalf("fragment counts sum to %d, want 64", sum)
	}
}
