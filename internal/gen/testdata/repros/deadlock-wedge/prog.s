.data
arena: .space 65536
.text
main:
	la $s1, arena
	li $s6, 0
	li $a1, 1414140603
	li $s5, -1671696550
	li $a2, 2120778089
	li $a3, -1656435010
	li $a1, 1224093023
	li $t7, 938807298
	li $s0, 8
loop:
	li $t9, 16777215
	li $t9, 169
	addiu $s0, $s0, -1
	bgtz $s0, loop
	li $v0, 1
	move $a0, $s6
	syscall
	li $v0, 10
	syscall
