.data
arena: .space 65536
.text
main:
	la $s1, arena
	li $s6, 0
	li $t7, -952327490
	li $a2, -440244083
	li $t0, -873363439
	li $a3, -1517943703
	li $s3, -1473756561
	li $t5, -523826522
	li $s0, 8
loop:
	slt $t0, $t8, $s5
	ori $t9, $a1, 17509
	addiu $s0, $s0, -1
	bgtz $s0, loop
	li $v0, 1
	move $a0, $s6
	syscall
	li $v0, 10
	syscall
