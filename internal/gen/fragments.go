package gen

// The fragment generators. Each emits a short, self-contained group of
// body lines that (a) uses only scratch registers and the arena, (b)
// contains only forward branches, (c) keeps every memory access aligned
// and inside the arena, and (d) folds a result into the checksum so the
// work is architecturally observable (the lockstep oracle diffs every
// commit anyway, but a live checksum also catches value bugs through
// the final print).

// fragCarryChain builds slice-boundary-straddling arithmetic: operands
// whose low slice is all-ones (or nearly), so an addition's carry ripples
// across the 16- or 8-bit slice boundary — the dependence pattern §3's
// partial operand bypassing must sequence correctly.
func fragCarryChain(s *g) {
	boundary := []uint32{
		0x0000ffff, // carry out of slice 0 (16-bit slices)
		0x00ffffff, // carry out of slice 1 (8-bit slices) and slice 0
		0x0fffffff,
		0x7fffffff, // sign-boundary straddle
		0xfffffffe, // wraps the whole word
		0x0000fffe,
		0x00010000 - 2,
	}
	a, b := s.reg(), s.reg()
	c := s.reg2(a)
	d := s.reg2(c)
	s.emit("li %s, %d", a, int32(boundary[s.r.intn(len(boundary))]))
	s.emit("li %s, %d", b, 1+s.r.intn(255))
	s.emit("addu %s, %s, %s", c, a, b)
	s.emit("sltu %s, %s, %s", d, c, a) // carry-out witness
	n := 1 + s.r.intn(3)
	for i := 0; i < n; i++ {
		s.emit("addu %s, %s, %s", c, c, c) // keep the chain rippling
	}
	s.fold(c)
	s.fold(d)
}

// fragAliasPair builds a near-aliasing store/load pair inside the 64KB
// arena: with delta 0 the load must forward from the store; with a small
// non-zero delta the partial (low-16-bit) addresses nearly match and the
// §5.1 early disambiguator has to rule the pair in or out correctly.
func fragAliasPair(s *g) {
	addr := s.reg()
	val := s.reg2(addr)
	dst := s.reg2(addr)
	off := 16 + 4*s.r.intn((ArenaSize-64)/4) // word-aligned, margin for deltas
	deltas := []int{0, 0, 4, -4, 8, -8, 12}  // bias toward exact alias
	d := deltas[s.r.intn(len(deltas))]
	s.emit("li %s, %d", addr, off)
	s.emit("addu %s, $s1, %s", addr, addr)
	if s.r.intn(4) == 0 {
		// Byte-granular variant: sb/lbu never fault on alignment.
		s.emit("sb %s, %d(%s)", val, s.r.intn(4), addr)
		s.emit("lbu %s, %d(%s)", dst, d+s.r.intn(4), addr)
	} else {
		s.emit("sw %s, 0(%s)", val, addr)
		s.emit("lw %s, %d(%s)", dst, d, addr)
	}
	s.fold(dst)
}

// fragBranchSlice builds the §5.3 early-branch-resolution corner case:
// beq/bne operands whose low 16 bits are equal but whose high slices
// differ — the machine may only declare the branch outcome once the
// differing (high) slice has compared, never after just the equal low
// slice.
func fragBranchSlice(s *g) {
	a := s.reg()
	b := s.reg2(a)
	low := s.r.u16()
	hi1 := s.r.u16()
	hi2 := s.r.u16()
	equal := s.r.intn(4) == 0 // sometimes fully equal: the taken beq path
	if !equal && hi1 == hi2 {
		hi2 ^= 1 + uint32(s.r.intn(0x7fff))
	}
	if equal {
		hi2 = hi1
	}
	s.emit("li %s, %d", a, int32(hi1<<16|low))
	s.emit("li %s, %d", b, int32(hi2<<16|low))
	l := s.label()
	if s.r.intn(2) == 0 {
		s.emit("beq %s, %s, %s", a, b, l)
	} else {
		s.emit("bne %s, %s, %s", a, b, l)
	}
	s.fold(a)
	s.emitLabel(l)
	s.fold(b)
}

// fragWayConflict builds the §5.2 partial-tag stress: a burst of loads
// whose addresses share the low (index) bits but differ above them, so
// they contend for the same cache set across ways and the MRU way
// prediction + partial tag match must sort them out.
func fragWayConflict(s *g) {
	const stride = 0x2000 // 8KB apart: same index bits, different tags
	base := 4 * s.r.intn(0x2000/4)
	a := s.reg()
	b := s.reg2(a)
	n := 2 + s.r.intn(3) // 2..4 conflicting ways
	for i := 0; i < n; i++ {
		s.emit("lw %s, %d($s1)", a, base+i*stride)
		if i == 0 {
			s.emit("move %s, %s", b, a)
		} else {
			s.emit("xor %s, %s, %s", b, b, a)
		}
	}
	if s.r.intn(2) == 0 {
		// Dirty one of the conflicting lines so a later burst sees a
		// modified MRU way.
		s.emit("sw %s, %d($s1)", b, base+stride*s.r.intn(n))
	}
	s.fold(b)
}

// fragALU emits a short chain of generic integer ops with tight
// register reuse (dependence chains the slice schedulers pipeline).
func fragALU(s *g) {
	ops3 := []string{"addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"}
	opsI := []string{"addiu", "andi", "ori", "xori", "slti"}
	n := 2 + s.r.intn(4)
	for i := 0; i < n; i++ {
		d := s.reg()
		if s.r.intn(3) == 0 {
			op := opsI[s.r.intn(len(opsI))]
			imm := int32(int16(s.r.u16()))
			if op != "addiu" && op != "slti" {
				imm = int32(s.r.u16()) // logical immediates are zero-extended
			}
			s.emit("%s %s, %s, %d", op, d, s.reg(), imm)
		} else {
			op := ops3[s.r.intn(len(ops3))]
			s.emit("%s %s, %s, %s", op, d, s.reg(), s.reg())
		}
		if i == n-1 {
			s.fold(d)
		}
	}
}

// fragMulDiv emits multiply/divide traffic with HI/LO reads — the
// bit-serial multiplier path (SerialMul) and the long-latency divide
// unit, plus the implicit second destination the oracle must track.
func fragMulDiv(s *g) {
	a := s.reg()
	b := s.reg2(a)
	lo := s.reg()
	hi := s.reg2(lo)
	if s.r.intn(2) == 0 {
		if s.r.intn(2) == 0 {
			s.emit("mult %s, %s", a, b)
		} else {
			s.emit("multu %s, %s", a, b)
		}
	} else {
		// Divide: the emulator's divide-by-zero result is fixed and
		// deterministic, so no guard is needed for correctness — but
		// odd divisors make the quotient more interesting.
		s.emit("ori %s, %s, 1", b, b)
		s.emit("divu %s, %s", a, b)
	}
	s.emit("mflo %s", lo)
	s.emit("mfhi %s", hi)
	s.fold(lo)
	s.fold(hi)
}

// fragShift emits immediate and variable shifts (variable amounts use
// the hardware's low-5-bit semantics; no masking needed).
func fragShift(s *g) {
	opsImm := []string{"sll", "srl", "sra"}
	opsVar := []string{"sllv", "srlv", "srav"}
	d := s.reg()
	if s.r.intn(2) == 0 {
		s.emit("%s %s, %s, %d", opsImm[s.r.intn(len(opsImm))], d, s.reg(), s.r.intn(32))
	} else {
		s.emit("%s %s, %s, %s", opsVar[s.r.intn(len(opsVar))], d, s.reg(), s.reg())
	}
	s.fold(d)
}

// fragMem emits a computed-address access: a scratch register masked
// into the arena (word-aligned by the mask), exercising address
// generation feeding the §5.1/§5.2 paths with values no static offset
// reaches.
func fragMem(s *g) {
	addr := s.reg()
	v := s.reg2(addr)
	s.emit("andi %s, %s, %d", addr, s.reg(), ArenaSize-4) // 0xfffc: aligned, in-bounds
	s.emit("addu %s, $s1, %s", addr, addr)
	if s.r.intn(2) == 0 {
		s.emit("lw %s, 0(%s)", v, addr)
	} else {
		s.emit("sw %s, 0(%s)", v, addr)
		s.emit("lw %s, 0(%s)", v, addr)
	}
	s.fold(v)
}
