// Package gen is a seeded, deterministic random-program generator for
// the simulator's PISA-like ISA. It exists to feed the differential
// soak harness (internal/soak, cmd/pok-soak): every program it emits
//
//   - always assembles (the emitted text uses only mnemonics, pseudo-ops
//     and directives the assembler supports, with immediates in range);
//   - always terminates (control flow is a single counted outer loop
//     whose body contains only forward branches), within a computable
//     dynamic instruction budget;
//   - is byte-identical when regenerated from the same Options (the
//     generator uses its own splitmix64 stream and no map iteration).
//
// The instruction mix is *biased at the paper's mechanisms* rather than
// uniform: carry chains that straddle slice boundaries (§3/§4 partial
// operand bypassing), near-aliasing load/store pairs inside the same
// 64KB partial-address window (§5.1 early disambiguation), branch
// operand pairs whose low slices are equal but whose high slices differ
// (§5.3 early branch resolution), and way-conflicting access streams
// (§5.2 partial tag matching + MRU way prediction). Those are exactly
// the corner cases no hand-written kernel in internal/workload covers.
package gen

import (
	"fmt"
	"strings"
)

// ArenaSize is the byte size of the data arena every generated program
// addresses. It is exactly one 64KB partial-address window (§5.1: the
// low 16 address bits), so every generated load/store pair is a
// partial-address near-alias candidate by construction.
const ArenaSize = 65536

// Options seeds and shapes one generated program.
type Options struct {
	// Seed selects the program deterministically.
	Seed uint64 `json:"seed"`
	// Fragments is the number of body fragments (default 24).
	Fragments int `json:"fragments,omitempty"`
	// LoopIters is the requested outer-loop trip count (default 8); it
	// is clamped so the dynamic instruction count stays under MaxInsts.
	LoopIters int `json:"loop_iters,omitempty"`
	// MaxInsts is the dynamic instruction budget (default 20000).
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// Mix weights the fragment kinds (zero value = DefaultMix).
	Mix Mix `json:"mix,omitempty"`
}

// Mix holds the relative weights of the fragment kinds. The zero value
// is replaced by DefaultMix.
type Mix struct {
	CarryChain  float64 `json:"carry_chain,omitempty"`  // slice-boundary-straddling arithmetic
	AliasPair   float64 `json:"alias_pair,omitempty"`   // near-aliasing load/store pairs (§5.1)
	BranchSlice float64 `json:"branch_slice,omitempty"` // equal-low / differing-high branch operands (§5.3)
	WayConflict float64 `json:"way_conflict,omitempty"` // same-set different-tag access streams (§5.2)
	ALU         float64 `json:"alu,omitempty"`          // generic integer ALU chains
	MulDiv      float64 `json:"mul_div,omitempty"`      // mult/div + hi/lo traffic
	Shift       float64 `json:"shift,omitempty"`        // immediate and variable shifts
	Mem         float64 `json:"mem,omitempty"`          // computed-address loads/stores
}

// DefaultMix biases generation at the paper's three mechanisms while
// keeping enough generic traffic to exercise the whole pipeline.
func DefaultMix() Mix {
	return Mix{
		CarryChain:  3,
		AliasPair:   3,
		BranchSlice: 3,
		WayConflict: 2,
		ALU:         3,
		MulDiv:      1,
		Shift:       1,
		Mem:         2,
	}
}

func (m Mix) zero() bool {
	return m == Mix{}
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Fragments <= 0 {
		o.Fragments = 24
	}
	if o.LoopIters <= 0 {
		o.LoopIters = 8
	}
	if o.MaxInsts == 0 {
		o.MaxInsts = 20000
	}
	if o.Mix.zero() {
		o.Mix = DefaultMix()
	}
	return o
}

// Program is one generated program, split so the delta-debugging
// reducer (internal/check/reduce) can operate on the Body lines alone:
// the Prologue and Epilogue carry the loop skeleton and the exit
// sequence, which every reduction must keep.
type Program struct {
	Seed     uint64
	Opts     Options
	Prologue []string
	Body     []string
	Epilogue []string
	// Counts tallies emitted fragments by kind (deterministic JSON:
	// encoding/json sorts map keys).
	Counts map[string]int
	// Iters is the clamped outer-loop trip count actually emitted.
	Iters int
}

// Source renders the full assembly program.
func (p *Program) Source() string {
	return Render(p.Prologue, p.Body, p.Epilogue)
}

// Render joins a (prologue, body, epilogue) triple into assembly
// source. The reducer re-renders candidate bodies through this.
func Render(prologue, body, epilogue []string) string {
	var b strings.Builder
	for _, lines := range [][]string{prologue, body, epilogue} {
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// InstCount upper-bounds the machine instructions of a line slice —
// the "size" the reducer minimizes and the budget clamp consumes.
// Labels and directives count zero; the only multi-word pseudo-ops the
// generator emits, li and la, count their worst-case expansion (2).
func InstCount(lines []string) int {
	n := 0
	for _, l := range lines {
		t := strings.TrimSpace(l)
		switch {
		case t == "" || strings.HasSuffix(t, ":") || strings.HasPrefix(t, "."):
		case strings.HasPrefix(t, "li ") || strings.HasPrefix(t, "la "):
			n += 2
		default:
			n++
		}
	}
	return n
}

// DynamicEstimate upper-bounds the committed instruction count of the
// program (body branches are forward-only, so per-iteration dynamic
// length never exceeds the static body length).
func (p *Program) DynamicEstimate() uint64 {
	perIter := uint64(InstCount(p.Body)) + 2 // + loop decrement/branch
	return uint64(InstCount(p.Prologue)) + uint64(p.Iters)*perIter +
		uint64(InstCount(p.Epilogue))
}

// rng is a splitmix64 stream: tiny, fast and stable across Go releases
// (math/rand's stream is not guaranteed), which the byte-identical
// regeneration property depends on.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) u32() uint32 { return uint32(r.next()) }

func (r *rng) u16() uint32 { return uint32(r.next() & 0xffff) }

// pick selects an index from weights proportionally.
func (r *rng) pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := float64(r.next()>>11) / float64(1<<53) * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// scratch is the register pool fragments draw from. $s0 (loop counter),
// $s1 (arena base), $s6 (checksum), $v0/$a0 (syscall), $at (assembler
// temporary), $sp/$gp/$fp/$ra/$k0/$k1 and $zero are reserved.
var scratch = []string{
	"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$t8", "$t9",
	"$s2", "$s3", "$s4", "$s5", "$s7", "$v1", "$a1", "$a2", "$a3",
}

// g is the in-progress generation state.
type g struct {
	r      rng
	labels int
	body   []string
	counts map[string]int
}

func (s *g) reg() string { return scratch[s.r.intn(len(scratch))] }

// reg2 returns a scratch register different from a.
func (s *g) reg2(a string) string {
	for {
		b := s.reg()
		if b != a {
			return b
		}
	}
}

func (s *g) label() string {
	s.labels++
	return fmt.Sprintf("g%d", s.labels)
}

func (s *g) emit(format string, args ...any) {
	s.body = append(s.body, fmt.Sprintf("\t"+format, args...))
}

func (s *g) emitLabel(l string) {
	s.body = append(s.body, l+":")
}

// fold accumulates a result register into the checksum so no fragment
// is dead code (alternating add/xor keeps the checksum sensitive to
// both value and carry behaviour).
func (s *g) fold(r string) {
	if s.r.intn(2) == 0 {
		s.emit("addu $s6, $s6, %s", r)
	} else {
		s.emit("xor $s6, $s6, %s", r)
	}
}

// New generates the program selected by opts. The same opts always
// produce a byte-identical Source.
func New(opts Options) *Program {
	opts = opts.withDefaults()
	s := &g{r: rng{s: mix64(opts.Seed)}, counts: map[string]int{}}

	kinds := []struct {
		name   string
		weight float64
		fn     func(*g)
	}{
		{"carry_chain", opts.Mix.CarryChain, fragCarryChain},
		{"alias_pair", opts.Mix.AliasPair, fragAliasPair},
		{"branch_slice", opts.Mix.BranchSlice, fragBranchSlice},
		{"way_conflict", opts.Mix.WayConflict, fragWayConflict},
		{"alu", opts.Mix.ALU, fragALU},
		{"mul_div", opts.Mix.MulDiv, fragMulDiv},
		{"shift", opts.Mix.Shift, fragShift},
		{"mem", opts.Mix.Mem, fragMem},
	}
	weights := make([]float64, len(kinds))
	for i, k := range kinds {
		weights[i] = k.weight
	}
	for i := 0; i < opts.Fragments; i++ {
		k := kinds[s.r.pick(weights)]
		k.fn(s)
		s.counts[k.name]++
	}

	prologue := []string{
		".data",
		fmt.Sprintf("arena: .space %d", ArenaSize),
		".text",
		"main:",
		"\tla $s1, arena",
		"\tli $s6, 0",
	}
	// Seed a few scratch registers with random constants so early
	// fragments see varied operand values (registers reset to zero
	// otherwise). A fixed subset keeps the prologue small.
	for i := 0; i < 6; i++ {
		prologue = append(prologue,
			fmt.Sprintf("\tli %s, %d", scratch[s.r.intn(len(scratch))], int32(s.r.u32())))
	}

	// Clamp the trip count to the dynamic budget.
	perIter := uint64(InstCount(s.body)) + 2
	fixed := uint64(InstCount(prologue)) + 1 /* li $s0 */ + 4 /* epilogue */
	iters := opts.LoopIters
	if budget := opts.MaxInsts; budget > fixed && perIter > 0 {
		if max := int((budget - fixed) / perIter); iters > max {
			iters = max
		}
	}
	if iters < 1 {
		iters = 1
	}
	prologue = append(prologue,
		fmt.Sprintf("\tli $s0, %d", iters),
		"loop:")

	epilogue := []string{
		"\taddiu $s0, $s0, -1",
		"\tbgtz $s0, loop",
		"\tli $v0, 1",
		"\tmove $a0, $s6",
		"\tsyscall",
		"\tli $v0, 10",
		"\tsyscall",
	}

	return &Program{
		Seed:     opts.Seed,
		Opts:     opts,
		Prologue: prologue,
		Body:     s.body,
		Epilogue: epilogue,
		Counts:   s.counts,
		Iters:    iters,
	}
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ProgramSeed derives the seed of the idx-th program of a soak keyed by
// base — a pure function, so checkpoint/resume only needs the cursor.
func ProgramSeed(base uint64, idx int) uint64 {
	return mix64(mix64(base) ^ uint64(idx)*0xbf58476d1ce4e5b9)
}
