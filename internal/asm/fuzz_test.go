package asm

import (
	"strings"
	"testing"

	"pok/internal/emu"
	"pok/internal/gen"
	"pok/internal/isa"
)

// FuzzAssemble feeds arbitrary source text through the assembler and,
// when it assembles, checks the machine-code invariants end to end:
// every encodable text word must round-trip through Decode/Encode
// bit-exactly, disassemble to something, and the program must execute
// (bounded) without panicking. The assembler itself must never panic on
// any input, valid or not.
func FuzzAssemble(f *testing.F) {
	f.Add("")
	f.Add("nop\n")
	f.Add("li $v0, 10\nsyscall\n")
	f.Add("main:\n\tli $t0, 5\nloop:\n\taddiu $t0, $t0, -1\n\tbne $t0, $zero, loop\n\tli $v0, 10\n\tsyscall\n")
	f.Add(".data\nx: .word 1, 2, 3\n.text\n\tla $t0, x\n\tlw $t1, 0($t0)\n\tli $v0, 10\n\tsyscall\n")
	f.Add(".text\n\tlui $t0, 0x1000\n\tori $t0, $t0, 0x8000\n\tsw $zero, -4($t0)\n\tli $v0, 10\n\tsyscall\n")
	f.Add("b: .word\n")
	f.Add("\tjal f\n\tli $v0, 10\n\tsyscall\nf:\n\tjr $ra\n")
	// Generator corpora: whole programs biased at the paper's mechanisms
	// (carry chains, partial-address aliases, low-slice-equal branches,
	// way conflicts) give the mutator realistic multi-fragment inputs.
	for i := uint64(0); i < 4; i++ {
		f.Add(gen.New(gen.Options{Seed: gen.ProgramSeed(0xf0, int(i)),
			Fragments: 6, LoopIters: 1}).Source())
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			// Rejected input: the error must be a real diagnostic.
			if err.Error() == "" {
				t.Fatal("empty assembler diagnostic")
			}
			return
		}
		for _, seg := range prog.Segments {
			// Only the segment holding the entry point is guaranteed to
			// be machine code; data segments hold arbitrary words.
			if prog.Entry < seg.Addr || prog.Entry >= seg.Addr+uint32(len(seg.Data)) {
				continue
			}
			for i := 0; i+4 <= len(seg.Data); i += 4 {
				w := uint32(seg.Data[i]) | uint32(seg.Data[i+1])<<8 |
					uint32(seg.Data[i+2])<<16 | uint32(seg.Data[i+3])<<24
				in, err := isa.Decode(w)
				if err != nil {
					// A .word directive may legally place arbitrary data
					// in the text segment (jump tables); the emulator
					// reports a decode error if control reaches it.
					continue
				}
				if s := in.String(); strings.TrimSpace(s) == "" {
					t.Fatalf("empty disassembly for 0x%08x", w)
				}
				back, err := isa.Encode(in)
				if err != nil {
					t.Fatalf("decode(0x%08x) = %v does not re-encode: %v", w, in, err)
				}
				if back != w {
					t.Fatalf("encode/decode round trip: 0x%08x -> %v -> 0x%08x",
						w, in, back)
				}
			}
		}
		// Bounded execution: errors (bad memory, no exit) are fine,
		// panics are not.
		em := emu.New(prog)
		_, _ = em.Run(4096, nil)
	})
}
