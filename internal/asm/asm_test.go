package asm

import (
	"strings"
	"testing"

	"pok/internal/emu"
	"pok/internal/isa"
)

// run assembles source, executes it to completion and returns the emulator.
func run(t *testing.T, source string) *emu.Emulator {
	t.Helper()
	prog, err := Assemble(source)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	e := emu.New(prog)
	if _, err := e.Run(5_000_000, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !e.Halted() {
		t.Fatal("program did not halt")
	}
	return e
}

const exitAsm = `
	li $v0, 10
	syscall
`

func TestHelloWorld(t *testing.T) {
	e := run(t, `
.data
msg: .asciiz "hello, world\n"
.text
main:
	li $v0, 4
	la $a0, msg
	syscall
`+exitAsm)
	if e.Output() != "hello, world\n" {
		t.Fatalf("output = %q", e.Output())
	}
}

func TestArithmeticPseudos(t *testing.T) {
	e := run(t, `
main:
	li $t0, 6
	li $t1, 7
	mul $t2, $t0, $t1     # 42
	li $t3, 100
	div $t4, $t3, $t1     # 14
	rem $t5, $t3, $t1     # 2
	move $t6, $t2
	not $t7, $zero        # 0xffffffff
	neg $t8, $t0          # -6
	li $s0, 0x12345678    # 32-bit li
	li $s1, 40000         # fits unsigned 16 only
	li $s2, -5
`+exitAsm)
	checks := map[isa.Reg]uint32{
		10: 42, 12: 14, 13: 2, 14: 42,
		15: 0xffff_ffff, 24: 0xffff_fffa,
		16: 0x1234_5678, 17: 40000, 18: 0xffff_fffb,
	}
	for r, want := range checks {
		if got := e.Reg(r); got != want {
			t.Errorf("%v = 0x%x, want 0x%x", r, got, want)
		}
	}
}

func TestBranchPseudosAndLoops(t *testing.T) {
	// Count down with blt/bge family; compute fib(10) iteratively.
	e := run(t, `
main:
	li $t0, 0     # a
	li $t1, 1     # b
	li $t2, 10    # n
	li $t3, 0     # i
fib:
	bge $t3, $t2, done
	addu $t4, $t0, $t1
	move $t0, $t1
	move $t1, $t4
	addiu $t3, $t3, 1
	b fib
done:
	# $t0 = fib(10) = 55
	li $t5, 3
	li $t6, 5
	blt $t5, $t6, less
	li $t7, 0
	b out
less:
	li $t7, 1
out:
	bgt $t6, $t5, gtr
	li $s0, 0
	b out2
gtr:
	li $s0, 1
out2:
	ble $t5, $t5, leq
	li $s1, 0
	b out3
leq:
	li $s1, 1
out3:
	beqz $zero, z1
	li $s2, 0
	b out4
z1:
	li $s2, 1
out4:
	bnez $t5, nz1
	li $s3, 0
	b out5
nz1:
	li $s3, 1
out5:
`+exitAsm)
	if e.Reg(8) != 55 {
		t.Fatalf("fib(10) = %d, want 55", e.Reg(8))
	}
	for _, r := range []isa.Reg{15, 16, 17, 18, 19} {
		if e.Reg(r) != 1 {
			t.Errorf("branch pseudo result %v = %d, want 1", r, e.Reg(r))
		}
	}
}

func TestUnsignedBranchPseudos(t *testing.T) {
	e := run(t, `
main:
	li $t0, -1        # 0xffffffff: huge unsigned
	li $t1, 1
	bltu $t1, $t0, a  # 1 <u 0xffffffff -> taken
	li $s0, 0
	b next
a:	li $s0, 1
next:
	bgtu $t0, $t1, c
	li $s1, 0
	b next2
c:	li $s1, 1
next2:
`+exitAsm)
	if e.Reg(16) != 1 || e.Reg(17) != 1 {
		t.Fatalf("unsigned branches: %d %d", e.Reg(16), e.Reg(17))
	}
}

func TestDataDirectives(t *testing.T) {
	e := run(t, `
.data
words:  .word 1, -2, 0x30, sym
bytes:  .byte 'a', 'b', 0
halves: .half 0x1234, 0x5678
        .align 3
sym:    .space 8
str:    .ascii "ab"
str2:   .asciiz "cd"
.text
main:
	la $t0, words
	lw $t1, 0($t0)
	lw $t2, 4($t0)
	lw $t3, 8($t0)
	lw $t4, 12($t0)   # address of sym
	la $t5, bytes
	lbu $t6, 1($t5)   # 'b'
	la $t7, halves
	lhu $s0, 2($t7)   # 0x5678
	la $s1, sym
`+exitAsm)
	if e.Reg(9) != 1 || int32(e.Reg(10)) != -2 || e.Reg(11) != 0x30 {
		t.Fatalf("words: %d %d %d", e.Reg(9), int32(e.Reg(10)), e.Reg(11))
	}
	if e.Reg(12) != e.Reg(17) {
		t.Fatalf("sym pointer %x != la %x", e.Reg(12), e.Reg(17))
	}
	if e.Reg(17)%8 != 0 {
		t.Fatalf("sym not 8-aligned: %x", e.Reg(17))
	}
	if e.Reg(14) != 'b' || e.Reg(16) != 0x5678 {
		t.Fatalf("bytes/halves: %x %x", e.Reg(14), e.Reg(16))
	}
}

func TestCallAndStack(t *testing.T) {
	e := run(t, `
# Recursive factorial via the stack.
main:
	li $a0, 6
	jal fact
	move $s0, $v0
	li $v0, 10
	syscall
fact:
	addiu $sp, $sp, -8
	sw $ra, 4($sp)
	sw $a0, 0($sp)
	li $v0, 1
	blez $a0, fbase
	addiu $a0, $a0, -1
	jal fact
	lw $a0, 0($sp)
	mul $v0, $v0, $a0
fbase:
	lw $ra, 4($sp)
	addiu $sp, $sp, 8
	jr $ra
`)
	if e.Reg(16) != 720 {
		t.Fatalf("6! = %d, want 720", e.Reg(16))
	}
}

func TestMemOperandForms(t *testing.T) {
	e := run(t, `
.data
v: .word 11, 22
.text
main:
	la $t0, v
	lw $t1, ($t0)      # empty offset
	lw $t2, 4($t0)
	la $t3, v+4        # symbol arithmetic via la
	lw $t4, 0($t3)
`+exitAsm)
	if e.Reg(9) != 11 || e.Reg(10) != 22 || e.Reg(12) != 22 {
		t.Fatalf("mem operands: %d %d %d", e.Reg(9), e.Reg(10), e.Reg(12))
	}
	// Offsets larger than 16 bits must be rejected.
	if _, err := Assemble("main:\n\tlw $t0, 0x10000004($zero)\n"); err == nil {
		t.Fatal("expected out-of-range offset error")
	}
}

func TestFloatingPointAsm(t *testing.T) {
	e := run(t, `
main:
	li.s $f1, 2.5
	li.s $f2, 4.0
	add.s $f3, $f1, $f2
	mul.s $f4, $f3, $f2    # 26.0
	cvt.w.s $f5, $f4
	mfc1 $t0, $f5
	c.lt.s $f1, $f2
	bc1t yes
	li $t1, 0
	b end
yes:
	li $t1, 1
end:
`+exitAsm)
	if e.Reg(8) != 26 {
		t.Fatalf("fp = %d, want 26", e.Reg(8))
	}
	if e.Reg(9) != 1 {
		t.Fatal("bc1t not taken")
	}
}

func TestJalr(t *testing.T) {
	e := run(t, `
main:
	la $t0, target
	jalr $t1, $t0
after:
	li $v0, 10
	syscall
target:
	li $s0, 9
	jr $t1
`)
	if e.Reg(16) != 9 {
		t.Fatalf("jalr result = %d", e.Reg(16))
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"dup label":      "x:\nx:\n" + exitAsm,
		"bad mnemonic":   "main:\n\tfrobnicate $t0\n",
		"bad register":   "main:\n\tadd $t0, $qq, $t1\n",
		"undef symbol":   "main:\n\tla $t0, nosuch\n",
		"operand count":  "main:\n\tadd $t0, $t1\n",
		"bad directive":  ".frob 3\n",
		"bad shamt":      "main:\n\tsll $t0, $t1, 99\n",
		"data inst":      ".data\n\tadd $t0, $t1, $t2\n",
		"mem no parens":  "main:\n\tlw $t0, faraway\nfaraway: .word 0\n",
		"bad string":     `.data` + "\ns: .asciiz unquoted\n",
		"branch too far": "main:\n\tbeq $t0, $t1, far\n.text 0x500000\nfar:\n" + exitAsm,
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s: error %q lacks line info", name, err)
		}
	}
}

func TestCommentsAndLabelsOnSameLine(t *testing.T) {
	e := run(t, `
# full line comment
main: li $t0, 1  # trailing comment
      li $t1, '#'   ; alt comment
`+exitAsm)
	if e.Reg(8) != 1 || e.Reg(9) != '#' {
		t.Fatalf("got %d %d", e.Reg(8), e.Reg(9))
	}
}

func TestSymbolsExported(t *testing.T) {
	prog, err := Assemble(`
.data
d1: .word 5
.text
main:
	nop
f:
	nop
` + exitAsm)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Symbols["main"] != emu.DefaultTextBase {
		t.Fatalf("main at 0x%x", prog.Symbols["main"])
	}
	if prog.Symbols["f"] != emu.DefaultTextBase+4 {
		t.Fatalf("f at 0x%x", prog.Symbols["f"])
	}
	if prog.Symbols["d1"] != emu.DefaultDataBase {
		t.Fatalf("d1 at 0x%x", prog.Symbols["d1"])
	}
	if prog.Entry != prog.Symbols["main"] {
		t.Fatal("entry != main")
	}
}

func TestEntryDefaultsToTextStart(t *testing.T) {
	prog, err := Assemble("start:\n\tnop\n" + exitAsm)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != emu.DefaultTextBase {
		t.Fatalf("entry = 0x%x", prog.Entry)
	}
}

func TestExplicitSectionAddresses(t *testing.T) {
	prog, err := Assemble(`
.text 0x00500000
main:
	nop
` + exitAsm + `
.data 0x11000000
x: .word 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Symbols["main"] != 0x0050_0000 || prog.Symbols["x"] != 0x1100_0000 {
		t.Fatalf("symbols: %x %x", prog.Symbols["main"], prog.Symbols["x"])
	}
}

func TestFloatDirective(t *testing.T) {
	e := run(t, `
.data
vals: .float 1.5, -2.25
.text
main:
	la $t0, vals
	l.s $f1, 0($t0)
	l.s $f2, 4($t0)
	add.s $f3, $f1, $f2    # -0.75
	li.s $f4, -0.75
	c.eq.s $f3, $f4
	bc1t ok
	li $s0, 0
	b end
ok:
	li $s0, 1
end:
`+exitAsm)
	if e.Reg(16) != 1 {
		t.Fatal(".float values wrong")
	}
	if _, err := Assemble(".data\nx: .float nope\n"); err == nil {
		t.Fatal("bad float accepted")
	}
}

// TestMoreErrors drives the remaining operand-shape error paths.
func TestMoreErrors(t *testing.T) {
	cases := map[string]string{
		"rrr bad count":   "main:\n\taddu $t0, $t1\n",
		"rvv bad reg":     "main:\n\tsllv $t0, $t1, $zz\n",
		"rri bad reg":     "main:\n\taddiu $q, $t1, 1\n",
		"ri bad":          "main:\n\tlui $qq, 1\n",
		"mem bad reg":     "main:\n\tlw $qq, 0($t0)\n",
		"mem bad base":    "main:\n\tlw $t0, 0($qq)\n",
		"branch bad reg":  "main:\n\tbeq $qq, $t0, main\n",
		"rb bad reg":      "main:\n\tblez $qq, main\n",
		"jmp undef":       "main:\n\tj nowhere\n",
		"jalr 3 args":     "main:\n\tjalr $t0, $t1, $t2\n",
		"fff bad":         "main:\n\tadd.s $f1, $t0, $f2\n",
		"ff bad":          "main:\n\tsqrt.s $t0, $f1\n",
		"ffc bad":         "main:\n\tc.eq.s $t0, $f1\n",
		"rf bad":          "main:\n\tmfc1 $f0, $f1\n",
		"li bad reg":      "main:\n\tli $qq, 5\n",
		"li bad imm":      "main:\n\tli $t0, banana\n",
		"la bad reg":      "main:\n\tla $qq, main\n",
		"la undef":        "main:\n\tla $t0, nosuchsym\n",
		"li.s bad":        "main:\n\tli.s $f1, pie\n",
		"move bad":        "main:\n\tmove $t0, $qq\n",
		"blt bad":         "main:\n\tblt $t0, $qq, main\n",
		"mul bad":         "main:\n\tmul $t0, $qq, $t1\n",
		"beqz bad":        "main:\n\tbeqz $qq, main\n",
		"b undef":         "main:\n\tb nowhere\n",
		"mult count":      "main:\n\tmult $t0\n",
		"mfhi count":      "main:\n\tmfhi\n",
		"word undef sym":  ".data\nw: .word nosuch\n",
		"align bad":       ".data\n.align x\n",
		"space bad":       ".data\n.space x\n",
		"text bad addr":   ".text banana\nmain:\n\tnop\n",
		"data bad addr":   ".data banana\n",
		"ascii bad count": ".data\ns: .ascii \"a\", \"b\"\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestPseudoDivForms covers 2- and 3-operand div plus remu.
func TestPseudoDivForms(t *testing.T) {
	e := run(t, `
main:
	li $t0, 100
	li $t1, 9
	div $t0, $t1        # real divide: lo/hi
	mflo $t2            # 11
	mfhi $t3            # 1
	remu $t4, $t0, $t1  # 1
`+exitAsm)
	if e.Reg(10) != 11 || e.Reg(11) != 1 || e.Reg(12) != 1 {
		t.Fatalf("div forms: %d %d %d", e.Reg(10), e.Reg(11), e.Reg(12))
	}
}
