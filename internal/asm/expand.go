package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pok/internal/isa"
)

// Operand-shape tables for real (non-pseudo) instructions. The shape name
// determines how arguments map onto Inst fields.
var realShapes = map[string]string{
	"add": "rrr", "addu": "rrr", "sub": "rrr", "subu": "rrr",
	"and": "rrr", "or": "rrr", "xor": "rrr", "nor": "rrr",
	"slt": "rrr", "sltu": "rrr",
	"sllv": "rvv", "srlv": "rvv", "srav": "rvv",
	"addi": "rri", "addiu": "rri", "slti": "rri", "sltiu": "rri",
	"andi": "rri", "ori": "rri", "xori": "rri",
	"lui": "ri",
	"sll": "rrs", "srl": "rrs", "sra": "rrs",
	"mult": "rr2", "multu": "rr2", "div2": "rr2", "divu": "rr2",
	"mfhi": "rd1", "mflo": "rd1", "mthi": "rs1", "mtlo": "rs1",
	"lb": "mem", "lbu": "mem", "lh": "mem", "lhu": "mem", "lw": "mem",
	"sb": "mem", "sh": "mem", "sw": "mem",
	"lwc1": "fmem", "swc1": "fmem",
	"beq": "rrb", "bne": "rrb",
	"blez": "rb", "bgtz": "rb", "bltz": "rb", "bgez": "rb",
	"j": "jmp", "jal": "jmp", "jr": "rs1", "jalr": "jalr",
	"bc1t": "b0", "bc1f": "b0",
	"add.s": "fff", "sub.s": "fff", "mul.s": "fff", "div.s": "fff",
	"sqrt.s": "ff", "abs.s": "ff", "neg.s": "ff", "mov.s": "ff",
	"cvt.s.w": "ff", "cvt.w.s": "ff",
	"c.eq.s": "ffc", "c.lt.s": "ffc", "c.le.s": "ffc",
	"mfc1": "rf", "mtc1": "rf",
	"syscall": "none", "break": "none", "nop": "none",
}

// instSize returns how many machine words the (possibly pseudo)
// instruction occupies. It must agree exactly with expand.
func instSize(mnem string, args []string) (int, error) {
	switch mnem {
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li needs 2 operands")
		}
		v, err := parseInt(args[1])
		if err != nil {
			return 0, fmt.Errorf("li immediate: %v", err)
		}
		if v >= -32768 && v <= 65535 {
			return 1, nil
		}
		return 2, nil
	case "la":
		return 2, nil
	case "li.s":
		return 3, nil
	case "move", "not", "neg", "b", "beqz", "bnez":
		return 1, nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		return 2, nil
	case "mul", "rem", "remu":
		return 2, nil
	case "div":
		if len(args) == 3 {
			return 2, nil
		}
		return 1, nil
	case "l.s", "s.s":
		return 1, nil
	}
	if _, ok := realShapes[mnem]; ok {
		return 1, nil
	}
	return 0, fmt.Errorf("unknown instruction %q", mnem)
}

func parseGPR(s string) (isa.Reg, error) {
	if r, ok := isa.GPRByName(strings.TrimSpace(s)); ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseFPR(s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "$")
	if strings.HasPrefix(s, "f") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < 32 {
			return isa.RegF0 + isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad FP register %q", s)
}

// parseMem parses "off($reg)" or "symbol" / "symbol+off" operands,
// returning the base register, the literal offset and whether a $at-based
// expansion is required (no parens form).
func (a *assembler) parseMem(s string, line int) (base isa.Reg, off int32, direct bool, err error) {
	s = strings.TrimSpace(s)
	if i := strings.Index(s, "("); i >= 0 && strings.HasSuffix(s, ")") {
		base, err = parseGPR(s[i+1 : len(s)-1])
		if err != nil {
			return 0, 0, false, errf(line, "%v", err)
		}
		offStr := strings.TrimSpace(s[:i])
		var v int64
		if offStr != "" {
			v, err = a.resolveValue(offStr, line)
			if err != nil {
				return 0, 0, false, err
			}
		}
		return base, int32(v), true, nil
	}
	v, err := a.resolveValue(s, line)
	if err != nil {
		return 0, 0, false, err
	}
	return 0, int32(v), false, nil
}

func (a *assembler) branchImm(target string, instAddr uint32, line int) (int32, error) {
	v, err := a.resolveValue(target, line)
	if err != nil {
		return 0, err
	}
	disp := int64(v) - int64(instAddr) - 4
	if disp%4 != 0 {
		return 0, errf(line, "branch target 0x%x not word aligned", v)
	}
	w := disp / 4
	if w < math.MinInt16 || w > math.MaxInt16 {
		return 0, errf(line, "branch to %q out of range (%d words)", target, w)
	}
	return int32(w), nil
}

// expand converts one statement into its machine instructions.
func (a *assembler) expand(st stmt) ([]isa.Inst, error) {
	args := st.args
	line := st.line
	need := func(n int) error {
		if len(args) != n {
			return errf(line, "%s needs %d operands, got %d", st.mnem, n, len(args))
		}
		return nil
	}

	// Pseudo-instructions first.
	switch st.mnem {
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseGPR(args[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		v, err := parseInt(args[1])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		return liSeq(rd, uint32(v), v), nil
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseGPR(args[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		v, err := a.resolveValue(args[1], line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{
			{Op: isa.OpLUI, Rt: rd, Imm: int32(uint32(v) >> 16)},
			{Op: isa.OpORI, Rs: rd, Rt: rd, Imm: int32(uint32(v) & 0xffff)},
		}, nil
	case "li.s":
		if err := need(2); err != nil {
			return nil, err
		}
		fd, err := parseFPR(args[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(args[1]), 32)
		if err != nil {
			return nil, errf(line, "bad float %q", args[1])
		}
		bits := math.Float32bits(float32(f))
		return []isa.Inst{
			{Op: isa.OpLUI, Rt: isa.RegAT, Imm: int32(bits >> 16)},
			{Op: isa.OpORI, Rs: isa.RegAT, Rt: isa.RegAT, Imm: int32(bits & 0xffff)},
			{Op: isa.OpMTC1, Rt: isa.RegAT, Rd: fd},
		}, nil
	case "move":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := parseGPR(args[0])
		rs, err2 := parseGPR(args[1])
		if err1 != nil || err2 != nil {
			return nil, errf(line, "bad register in move")
		}
		return []isa.Inst{{Op: isa.OpADDU, Rd: rd, Rs: rs, Rt: isa.RegZero}}, nil
	case "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, _ := parseGPR(args[0])
		rs, err := parseGPR(args[1])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		return []isa.Inst{{Op: isa.OpNOR, Rd: rd, Rs: rs, Rt: isa.RegZero}}, nil
	case "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, _ := parseGPR(args[0])
		rs, err := parseGPR(args[1])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		return []isa.Inst{{Op: isa.OpSUBU, Rd: rd, Rs: isa.RegZero, Rt: rs}}, nil
	case "b":
		if err := need(1); err != nil {
			return nil, err
		}
		imm, err := a.branchImm(args[0], st.addr, line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpBEQ, Imm: imm}}, nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := parseGPR(args[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		imm, err := a.branchImm(args[1], st.addr, line)
		if err != nil {
			return nil, err
		}
		op := isa.OpBEQ
		if st.mnem == "bnez" {
			op = isa.OpBNE
		}
		return []isa.Inst{{Op: op, Rs: rs, Imm: imm}}, nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs, err1 := parseGPR(args[0])
		rt, err2 := parseGPR(args[1])
		if err1 != nil || err2 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		imm, err := a.branchImm(args[2], st.addr+4, line)
		if err != nil {
			return nil, err
		}
		sltOp := isa.OpSLT
		if strings.HasSuffix(st.mnem, "u") {
			sltOp = isa.OpSLTU
		}
		var cmp isa.Inst
		brOp := isa.OpBNE
		switch strings.TrimSuffix(st.mnem, "u") {
		case "blt":
			cmp = isa.Inst{Op: sltOp, Rd: isa.RegAT, Rs: rs, Rt: rt}
		case "bgt":
			cmp = isa.Inst{Op: sltOp, Rd: isa.RegAT, Rs: rt, Rt: rs}
		case "ble":
			cmp = isa.Inst{Op: sltOp, Rd: isa.RegAT, Rs: rt, Rt: rs}
			brOp = isa.OpBEQ
		case "bge":
			cmp = isa.Inst{Op: sltOp, Rd: isa.RegAT, Rs: rs, Rt: rt}
			brOp = isa.OpBEQ
		}
		return []isa.Inst{cmp, {Op: brOp, Rs: isa.RegAT, Rt: isa.RegZero, Imm: imm}}, nil
	case "mul", "rem", "remu":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, _ := parseGPR(args[0])
		rs, err1 := parseGPR(args[1])
		rt, err2 := parseGPR(args[2])
		if err1 != nil || err2 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		switch st.mnem {
		case "mul":
			return []isa.Inst{
				{Op: isa.OpMULT, Rs: rs, Rt: rt},
				{Op: isa.OpMFLO, Rd: rd},
			}, nil
		case "rem":
			return []isa.Inst{
				{Op: isa.OpDIV, Rs: rs, Rt: rt},
				{Op: isa.OpMFHI, Rd: rd},
			}, nil
		default:
			return []isa.Inst{
				{Op: isa.OpDIVU, Rs: rs, Rt: rt},
				{Op: isa.OpMFHI, Rd: rd},
			}, nil
		}
	case "div":
		if len(args) == 3 {
			rd, _ := parseGPR(args[0])
			rs, err1 := parseGPR(args[1])
			rt, err2 := parseGPR(args[2])
			if err1 != nil || err2 != nil {
				return nil, errf(line, "bad register in div")
			}
			return []isa.Inst{
				{Op: isa.OpDIV, Rs: rs, Rt: rt},
				{Op: isa.OpMFLO, Rd: rd},
			}, nil
		}
		st.mnem = "div2" // real 2-operand divide
	case "l.s":
		st.mnem = "lwc1"
	case "s.s":
		st.mnem = "swc1"
	}

	shape, ok := realShapes[st.mnem]
	if !ok {
		return nil, errf(line, "unknown instruction %q", st.mnem)
	}
	opName := st.mnem
	if opName == "div2" {
		opName = "div"
	}
	op, _ := isa.OpByName(opName)

	switch shape {
	case "none":
		if err := need(0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op}}, nil
	case "rrr": // op rd, rs, rt
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := parseGPR(args[0])
		rs, e2 := parseGPR(args[1])
		rt, e3 := parseGPR(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs: rs, Rt: rt}}, nil
	case "rvv": // op rd, rt, rs (variable shifts)
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := parseGPR(args[0])
		rt, e2 := parseGPR(args[1])
		rs, e3 := parseGPR(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		return []isa.Inst{{Op: op, Rd: rd, Rt: rt, Rs: rs}}, nil
	case "rri": // op rt, rs, imm
		if err := need(3); err != nil {
			return nil, err
		}
		rt, e1 := parseGPR(args[0])
		rs, e2 := parseGPR(args[1])
		if e1 != nil || e2 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		v, err := a.resolveValue(args[2], line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rt: rt, Rs: rs, Imm: int32(v)}}, nil
	case "ri": // lui rt, imm
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := parseGPR(args[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		v, err := a.resolveValue(args[1], line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rt: rt, Imm: int32(uint32(v) & 0xffff)}}, nil
	case "rrs": // op rd, rt, shamt
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := parseGPR(args[0])
		rt, e2 := parseGPR(args[1])
		if e1 != nil || e2 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		v, err := parseInt(args[2])
		if err != nil || v < 0 || v > 31 {
			return nil, errf(line, "bad shift amount %q", args[2])
		}
		return []isa.Inst{{Op: op, Rd: rd, Rt: rt, Shamt: uint8(v)}}, nil
	case "rr2": // op rs, rt
		if err := need(2); err != nil {
			return nil, err
		}
		rs, e1 := parseGPR(args[0])
		rt, e2 := parseGPR(args[1])
		if e1 != nil || e2 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		return []isa.Inst{{Op: op, Rs: rs, Rt: rt}}, nil
	case "rd1": // op rd
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := parseGPR(args[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		return []isa.Inst{{Op: op, Rd: rd}}, nil
	case "rs1": // op rs
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := parseGPR(args[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		return []isa.Inst{{Op: op, Rs: rs}}, nil
	case "mem", "fmem": // op rt, off(rs)
		if err := need(2); err != nil {
			return nil, err
		}
		var rt isa.Reg
		var err error
		if shape == "fmem" {
			rt, err = parseFPR(args[0])
		} else {
			rt, err = parseGPR(args[0])
		}
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		base, off, direct, err := a.parseMem(args[1], line)
		if err != nil {
			return nil, err
		}
		if !direct {
			return nil, errf(line, "%s: absolute address operands need la first", st.mnem)
		}
		if off < math.MinInt16 || off > math.MaxInt16 {
			return nil, errf(line, "%s: offset %d out of range", st.mnem, off)
		}
		return []isa.Inst{{Op: op, Rt: rt, Rs: base, Imm: off}}, nil
	case "rrb": // beq rs, rt, label
		if err := need(3); err != nil {
			return nil, err
		}
		rs, e1 := parseGPR(args[0])
		rt, e2 := parseGPR(args[1])
		if e1 != nil || e2 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		imm, err := a.branchImm(args[2], st.addr, line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rs: rs, Rt: rt, Imm: imm}}, nil
	case "rb": // blez rs, label
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := parseGPR(args[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		imm, err := a.branchImm(args[1], st.addr, line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rs: rs, Imm: imm}}, nil
	case "b0": // bc1t label
		if err := need(1); err != nil {
			return nil, err
		}
		imm, err := a.branchImm(args[0], st.addr, line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Imm: imm}}, nil
	case "jmp": // j label
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := a.resolveValue(args[0], line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Target: (uint32(v) >> 2) & 0x03ff_ffff}}, nil
	case "jalr":
		switch len(args) {
		case 1:
			rs, err := parseGPR(args[0])
			if err != nil {
				return nil, errf(line, "%v", err)
			}
			return []isa.Inst{{Op: op, Rd: isa.RegRA, Rs: rs}}, nil
		case 2:
			rd, e1 := parseGPR(args[0])
			rs, e2 := parseGPR(args[1])
			if e1 != nil || e2 != nil {
				return nil, errf(line, "bad register in jalr")
			}
			return []isa.Inst{{Op: op, Rd: rd, Rs: rs}}, nil
		}
		return nil, errf(line, "jalr needs 1 or 2 operands")
	case "fff": // op fd, fs, ft
		if err := need(3); err != nil {
			return nil, err
		}
		fd, e1 := parseFPR(args[0])
		fs, e2 := parseFPR(args[1])
		ft, e3 := parseFPR(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, errf(line, "bad FP register in %s", st.mnem)
		}
		return []isa.Inst{{Op: op, Rd: fd, Rs: fs, Rt: ft}}, nil
	case "ff": // op fd, fs
		if err := need(2); err != nil {
			return nil, err
		}
		fd, e1 := parseFPR(args[0])
		fs, e2 := parseFPR(args[1])
		if e1 != nil || e2 != nil {
			return nil, errf(line, "bad FP register in %s", st.mnem)
		}
		return []isa.Inst{{Op: op, Rd: fd, Rs: fs}}, nil
	case "ffc": // c.eq.s fs, ft
		if err := need(2); err != nil {
			return nil, err
		}
		fs, e1 := parseFPR(args[0])
		ft, e2 := parseFPR(args[1])
		if e1 != nil || e2 != nil {
			return nil, errf(line, "bad FP register in %s", st.mnem)
		}
		return []isa.Inst{{Op: op, Rs: fs, Rt: ft}}, nil
	case "rf": // mfc1 rt, fs / mtc1 rt, fs
		if err := need(2); err != nil {
			return nil, err
		}
		rt, e1 := parseGPR(args[0])
		f, e2 := parseFPR(args[1])
		if e1 != nil || e2 != nil {
			return nil, errf(line, "bad register in %s", st.mnem)
		}
		if op == isa.OpMFC1 {
			return []isa.Inst{{Op: op, Rt: rt, Rs: f}}, nil
		}
		return []isa.Inst{{Op: op, Rt: rt, Rd: f}}, nil
	}
	return nil, errf(line, "internal: unhandled shape %q", shape)
}

// liSeq builds the shortest load-immediate sequence for v.
func liSeq(rd isa.Reg, u uint32, v int64) []isa.Inst {
	if v >= -32768 && v <= 32767 {
		return []isa.Inst{{Op: isa.OpADDIU, Rt: rd, Rs: isa.RegZero, Imm: int32(v)}}
	}
	if v >= 0 && v <= 65535 {
		return []isa.Inst{{Op: isa.OpORI, Rt: rd, Rs: isa.RegZero, Imm: int32(v)}}
	}
	return []isa.Inst{
		{Op: isa.OpLUI, Rt: rd, Imm: int32(u >> 16)},
		{Op: isa.OpORI, Rs: rd, Rt: rd, Imm: int32(u & 0xffff)},
	}
}
