// Package asm implements a two-pass assembler for the simulator's
// PISA-like ISA. It accepts classic MIPS assembler syntax — labels,
// .text/.data directives, register names, pseudo-instructions — and
// produces an emu.Program image of real encoded machine words, so the
// front end of the timing model fetches and decodes genuine binaries.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pok/internal/emu"
	"pok/internal/isa"
)

// Error describes an assembly failure with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type section int

const (
	secText section = iota
	secData
)

// item is one assembly statement after parsing: either an instruction
// (possibly pseudo, expanded later) or a data directive.
type stmt struct {
	line int
	mnem string
	args []string
	sec  section
	addr uint32
	size uint32 // bytes this statement occupies
}

// Assembler holds state across the two passes.
type assembler struct {
	symbols  map[string]uint32
	stmts    []stmt
	textAddr uint32
	dataAddr uint32
	entry    string
}

// Assemble translates source into a loadable program. The entry point is
// the label "main" if present, else the start of the text section.
func Assemble(source string) (*emu.Program, error) {
	a := &assembler{
		symbols:  make(map[string]uint32),
		textAddr: emu.DefaultTextBase,
		dataAddr: emu.DefaultDataBase,
		entry:    "main",
	}
	if err := a.pass1(source); err != nil {
		return nil, err
	}
	return a.pass2()
}

// splitArgs splits an operand list on commas that are outside quotes.
func splitArgs(s string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inStr = !inStr
			cur.WriteByte(c)
		case c == '\\' && inStr && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == ',' && !inStr:
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" || len(out) > 0 {
		out = append(out, t)
	}
	return out
}

// stripComment removes # or ; comments outside string and char literals.
func stripComment(s string) string {
	inStr, inChar := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inChar {
				inStr = !inStr
			}
		case '\'':
			if !inStr {
				inChar = !inChar
			}
		case '\\':
			if inStr || inChar {
				i++
			}
		case '#', ';':
			if !inStr && !inChar {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) pass1(source string) error {
	sec := secText
	text := a.textAddr
	data := a.dataAddr
	cur := func() *uint32 {
		if sec == secText {
			return &text
		}
		return &data
	}

	for lineNo, raw := range strings.Split(source, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		ln := lineNo + 1
		// Peel off any labels ("name:") at the start of the line.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			lbl := strings.TrimSpace(line[:idx])
			if !isIdent(lbl) {
				break
			}
			if _, dup := a.symbols[lbl]; dup {
				return errf(ln, "duplicate label %q", lbl)
			}
			a.symbols[lbl] = *cur()
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToLower(strings.TrimSpace(fields[0]))
		var args []string
		if len(fields) > 1 {
			args = splitArgs(strings.TrimSpace(fields[1]))
		}
		st := stmt{line: ln, mnem: mnem, args: args, sec: sec, addr: *cur()}

		switch mnem {
		case ".text":
			sec = secText
			if len(args) == 1 {
				v, err := parseInt(args[0])
				if err != nil {
					return errf(ln, ".text address: %v", err)
				}
				text = uint32(v)
			}
			continue
		case ".data":
			sec = secData
			if len(args) == 1 {
				v, err := parseInt(args[0])
				if err != nil {
					return errf(ln, ".data address: %v", err)
				}
				data = uint32(v)
			}
			continue
		case ".globl", ".global", ".ent", ".end", ".set":
			continue
		case ".align":
			if len(args) != 1 {
				return errf(ln, ".align needs one argument")
			}
			v, err := parseInt(args[0])
			if err != nil {
				return errf(ln, ".align: %v", err)
			}
			al := uint32(1) << uint(v)
			p := cur()
			*p = (*p + al - 1) &^ (al - 1)
			// Labels on the same line were bound pre-alignment; rebind.
			for lbl, addr := range a.symbols {
				if addr == st.addr && addr != *p {
					a.symbols[lbl] = *p
				}
			}
			continue
		case ".word", ".float":
			st.size = uint32(4 * len(args))
		case ".half":
			st.size = uint32(2 * len(args))
		case ".byte":
			st.size = uint32(len(args))
		case ".space":
			if len(args) != 1 {
				return errf(ln, ".space needs one argument")
			}
			v, err := parseInt(args[0])
			if err != nil {
				return errf(ln, ".space: %v", err)
			}
			st.size = uint32(v)
		case ".ascii", ".asciiz":
			if len(args) != 1 {
				return errf(ln, "%s needs one string argument", mnem)
			}
			s, err := parseString(args[0])
			if err != nil {
				return errf(ln, "%v", err)
			}
			st.size = uint32(len(s))
			if mnem == ".asciiz" {
				st.size++
			}
		default:
			if strings.HasPrefix(mnem, ".") {
				return errf(ln, "unknown directive %q", mnem)
			}
			if sec != secText {
				return errf(ln, "instruction %q outside .text", mnem)
			}
			n, err := instSize(mnem, args)
			if err != nil {
				return errf(ln, "%v", err)
			}
			st.size = uint32(4 * n)
		}
		st.addr = *cur()
		a.stmts = append(a.stmts, st)
		*cur() += st.size
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		v := int64(body[0])
		if neg {
			v = -v
		}
		return v, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string literal %s", s)
	}
	out, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("bad string literal %s: %v", s, err)
	}
	return out, nil
}

func (a *assembler) pass2() (*emu.Program, error) {
	var textSeg, dataSeg []byte
	textBase, dataBase := uint32(0), uint32(0)
	haveText, haveData := false, false

	put := func(sec section, addr uint32, b []byte) {
		var seg *[]byte
		var base *uint32
		var have *bool
		if sec == secText {
			seg, base, have = &textSeg, &textBase, &haveText
		} else {
			seg, base, have = &dataSeg, &dataBase, &haveData
		}
		if !*have {
			*base = addr
			*have = true
		}
		off := int(addr - *base)
		for off+len(b) > len(*seg) {
			*seg = append(*seg, 0)
		}
		copy((*seg)[off:], b)
	}

	for _, st := range a.stmts {
		switch st.mnem {
		case ".float":
			for i, arg := range st.args {
				f, err := strconv.ParseFloat(strings.TrimSpace(arg), 32)
				if err != nil {
					return nil, errf(st.line, "bad float %q", arg)
				}
				bits := math.Float32bits(float32(f))
				var b [4]byte
				for j := 0; j < 4; j++ {
					b[j] = byte(bits >> (8 * j))
				}
				put(st.sec, st.addr+uint32(i*4), b[:])
			}
		case ".word", ".half", ".byte":
			width := map[string]int{".word": 4, ".half": 2, ".byte": 1}[st.mnem]
			for i, arg := range st.args {
				v, err := a.resolveValue(arg, st.line)
				if err != nil {
					return nil, err
				}
				var b [4]byte
				for j := 0; j < width; j++ {
					b[j] = byte(v >> (8 * j))
				}
				put(st.sec, st.addr+uint32(i*width), b[:width])
			}
		case ".space":
			put(st.sec, st.addr, make([]byte, st.size))
		case ".ascii", ".asciiz":
			s, _ := parseString(st.args[0])
			b := []byte(s)
			if st.mnem == ".asciiz" {
				b = append(b, 0)
			}
			put(st.sec, st.addr, b)
		default:
			insts, err := a.expand(st)
			if err != nil {
				return nil, err
			}
			if uint32(4*len(insts)) != st.size {
				return nil, errf(st.line, "internal: %q expanded to %d words, reserved %d",
					st.mnem, len(insts), st.size/4)
			}
			for i, in := range insts {
				w, err := isa.Encode(in)
				if err != nil {
					return nil, errf(st.line, "%v", err)
				}
				var b [4]byte
				b[0], b[1], b[2], b[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
				put(st.sec, st.addr+uint32(4*i), b[:])
			}
		}
	}

	entry := textBase
	if addr, ok := a.symbols[a.entry]; ok {
		entry = addr
	}
	prog := &emu.Program{Entry: entry, Symbols: a.symbols}
	if haveText {
		prog.Segments = append(prog.Segments, emu.Segment{Addr: textBase, Data: textSeg})
	}
	if haveData {
		prog.Segments = append(prog.Segments, emu.Segment{Addr: dataBase, Data: dataSeg})
	}
	return prog, nil
}

// resolveValue evaluates an integer or symbol (with optional +/- offset).
func (a *assembler) resolveValue(s string, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if v, err := parseInt(s); err == nil {
		return v, nil
	}
	// label, label+n, label-n
	for _, sep := range []string{"+", "-"} {
		if i := strings.LastIndex(s, sep); i > 0 {
			base := strings.TrimSpace(s[:i])
			if addr, ok := a.symbols[base]; ok {
				off, err := parseInt(s[i+1:])
				if err != nil {
					return 0, errf(line, "bad offset in %q", s)
				}
				if sep == "-" {
					off = -off
				}
				return int64(addr) + off, nil
			}
		}
	}
	if addr, ok := a.symbols[s]; ok {
		return int64(addr), nil
	}
	return 0, errf(line, "undefined symbol %q", s)
}
