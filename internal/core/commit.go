package core

import (
	"fmt"
	"strings"

	"pok/internal/isa"
	"pok/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

func (s *Sim) commit() (int, error) {
	n := 0
	for n < s.cfg.CommitWidth && s.window.Len() > 0 {
		e := s.window.Front()
		if !s.entryDone(e) {
			break
		}
		e.committed = true
		s.window.PopFront()
		if s.tracing {
			s.trace("commit   #%d", e.seq)
		}
		if s.collecting {
			doneC, dep := s.commitDone(e)
			s.emit(telemetry.EvCommit, e.seq, -1, doneC, dep)
		}
		if s.oracleOn {
			// Lockstep oracle: diff the committed architectural record
			// against the functional reference before any bookkeeping, so
			// a divergence report reflects the machine exactly as it
			// committed the bad instruction.
			var rec CommitRecord
			s.makeCommitRecord(e, &rec)
			if s.injOn {
				s.inj.MutateCommit(&rec) // deliberate-corruption test hook
			}
			if err := s.cfg.Oracle.CheckCommit(&rec); err != nil {
				return n, fmt.Errorf("core: commit oracle (seq %d, cycle %d): %w",
					e.seq, s.now, err)
			}
		}
		if e.lsqInserted {
			if e.isStore {
				// Stores update the cache at commit (write-back,
				// write-allocate); the latency is absorbed by the store
				// buffer.
				s.hier.WriteData(e.d.EffAddr)
				s.res.Stores++
			}
			s.lsq.Remove(e.seq)
		}
		// Only the entry's own destinations can map to it in the rename
		// table (dispatch and squash-restore preserve that invariant), so
		// clearing them directly replaces the old full-table sweep.
		if d := e.d.Dst; d != isa.RegZero && s.regProd[d] == e {
			s.regProd[d] = nil
		}
		if d2 := e.d.Dst2; d2 != isa.RegZero && s.regProd[d2] == e {
			s.regProd[d2] = nil
		}
		// The entry stays out of the pool until every older in-flight
		// entry that may reference it has drained (see recycleRetired).
		e.retireTag = s.seqCtr
		s.retireQ.PushBack(e)
		s.res.Insts++
		n++
	}
	return n, nil
}

// entryDone reports whether e has completed every pipeline obligation.
func (s *Sim) entryDone(e *entry) bool {
	if !e.dispatched || e.wp {
		return false
	}
	// SoA fast path: startedMask fills as slices issue and execEnd tracks
	// the latest per-slice completion, so the old per-slice walk reduces
	// to one mask compare and one time compare.
	if e.startedMask != e.fullMask || e.execEnd > s.now {
		return false
	}
	if e.isLoad && e.memActualDone > s.now {
		return false
	}
	if e.isStore {
		if q := e.lsqEnt; q == nil || !q.DataReady || !q.AddrKnown() {
			return false
		}
	}
	if e.isCtrl && (!e.resolved || e.resolveC > s.now) {
		return false
	}
	return true
}

// commitDone classifies the committing instruction's oldest-unresolved
// pipeline obligation for EvCommit: doneC is the cycle the last
// obligation completed (the instruction was commit-ready from doneC
// onward), dep the telemetry.CommitDep* class of that obligation. The
// function is a pure read of entry state shared by both schedulers
// (every field it touches is written by the shared memory/schedule
// helpers or at scheduler sites whose cycles provably coincide), so the
// cross-scheduler golden event-stream test covers it.
//
// Tie-breaking is deliberate: when a load's memory completion or a
// branch's resolution lands on the same cycle as the final slice
// execution, the memory/branch obligation wins — those are the
// components partial operand knowledge targets (§5, §7), and the
// CPI-stack consumer wants their shrinkage visible, not masked by the
// coincident execute.
func (s *Sim) commitDone(e *entry) (doneC int64, dep int64) {
	// Execution end: last slice result, or the full-width latency
	// (execEnd, maintained at the issue sites).
	end := e.execEnd
	dep = telemetry.CommitDepSlice
	if e.replayedSelf {
		dep = telemetry.CommitDepReplay
	}
	if end <= e.dispC+int64(s.cfg.RFStages)+1 && dep == telemetry.CommitDepSlice {
		// The op issued at the earliest architecturally possible cycle:
		// nothing in the backend gated it.
		dep = telemetry.CommitDepNone
	}
	if e.isStore && e.dataReadyC > end {
		// A store's last obligation can be its data operand becoming
		// forwardable; that is still a slice-dependence cost upstream.
		end = e.dataReadyC
		dep = telemetry.CommitDepSlice
	}
	if e.isLoad && e.memActualDone >= end && e.memActualDone < inf {
		end = e.memActualDone
		switch {
		case e.wayMispred:
			dep = telemetry.CommitDepWayMispredict
		case e.disambigWait || e.forwarded:
			dep = telemetry.CommitDepLSQ
		case !e.l1Hit:
			dep = telemetry.CommitDepDRAM
		default:
			dep = telemetry.CommitDepDCache
		}
	}
	if e.isCtrl && e.resolved && e.resolveC >= end {
		end = e.resolveC
		dep = telemetry.CommitDepBranch
	}
	return end, dep
}

// Summary renders the result as the multi-line human-readable report the
// pok-sim tool prints.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "config            %s\n", r.Config)
	if r.Benchmark != "" {
		fmt.Fprintf(&b, "benchmark         %s\n", r.Benchmark)
	}
	fmt.Fprintf(&b, "instructions      %d\n", r.Insts)
	fmt.Fprintf(&b, "cycles            %d\n", r.Cycles)
	fmt.Fprintf(&b, "IPC               %.4f\n", r.IPC)
	fmt.Fprintf(&b, "loads / stores    %d / %d\n", r.Loads, r.Stores)
	fmt.Fprintf(&b, "cond branches     %d (accuracy %.2f%%, %d mispredicted)\n",
		r.Branches, 100*r.BranchAccuracy, r.Mispredicts)
	fmt.Fprintf(&b, "L1D / L1I miss    %.2f%% / %.2f%%\n",
		100*r.L1DMissRate, 100*r.L1IMissRate)
	if r.DTLBMissRate > 0 {
		fmt.Fprintf(&b, "DTLB miss         %.2f%%\n", 100*r.DTLBMissRate)
	}
	fmt.Fprintf(&b, "store forwards    %d\n", r.StoreForwards)
	fmt.Fprintf(&b, "replays           %d\n", r.Replays)
	fmt.Fprintf(&b, "stall cycles      mispredict=%d icache=%d window=%d lsq=%d iq=%d\n",
		r.StallMispredict, r.StallICache, r.StallWindowFull, r.StallLSQFull,
		r.StallIQFull)
	if r.PartialTagAccess > 0 {
		fmt.Fprintf(&b, "partial-tag use   %d accesses, %d way mispredicts, %d early miss signals\n",
			r.PartialTagAccess, r.WayMispredicts, r.EarlyMissSignals)
	}
	if r.EarlyResolved > 0 {
		fmt.Fprintf(&b, "early branch res  %d of %d mispredicts\n",
			r.EarlyResolved, r.Mispredicts)
	}
	if r.LoadsEarlyRelease > 0 {
		fmt.Fprintf(&b, "early l/s release %d loads\n", r.LoadsEarlyRelease)
	}
	if r.WrongPathInsts > 0 {
		fmt.Fprintf(&b, "wrong-path insts  %d\n", r.WrongPathInsts)
	}
	return b.String()
}
