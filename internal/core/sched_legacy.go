package core

import (
	"pok/internal/isa"
	"pok/internal/telemetry"
)

// This file preserves the original scan-based scheduling and memory
// loops behind Config.LegacyScheduler. Every cycle they rescan the whole
// window and recompute depsAvail from scratch (twice per issued slice-op:
// once for the speculative wakeup, once for the actualReady verify), so
// their cost grows with window size x slice count x cycles even when
// nothing wakes up. The event-driven scheduler in sched_event.go is the
// cycle-exact replacement; TestEventSchedulerMatchesLegacy holds the two
// to identical Result structs. This path exists for one release as an
// escape hatch and as the reference half of the differential test.

func (s *Sim) scheduleLegacy() {
	for i := 0; i < s.window.Len(); i++ {
		e := s.window.At(i)
		if e.committed || e.execDone {
			continue
		}
		if e.nSlices == 1 {
			s.scheduleFullLegacy(e)
			continue
		}
		all := true
		for sl := 0; sl < e.nSlices; sl++ {
			st := &e.slices[sl]
			if st.started {
				continue
			}
			if s.issueUsed[sl] >= s.cfg.IssueWidth || s.aluUsed[sl] >= s.cfg.IntALUs {
				all = false
				continue
			}
			if s.depsAvail(e, sl, true) > s.now {
				all = false
				continue
			}
			s.issueUsed[sl]++
			s.aluUsed[sl]++
			if act := s.depsAvail(e, sl, false); act > s.now {
				// Load-hit misspeculation: the slot is wasted and the
				// slice-op replays once its operand truly arrives.
				st.retryC = retryAt(act)
				e.replayedSelf = true
				s.res.Replays++
				if s.collecting {
					s.emit(telemetry.EvReplay, e.seq, int8(sl), st.retryC, replayCause(act))
				}
				all = false
				continue
			}
			if s.injOn && s.inj.FlipSlice(e.seq, sl) {
				// Injected slice corruption (mirrors tryIssueSlice).
				st.retryC = s.now + 1
				e.replayedSelf = true
				s.res.Replays++
				if s.collecting {
					s.emit(telemetry.EvReplay, e.seq, int8(sl), st.retryC, telemetry.ReplayInjected)
				}
				all = false
				continue
			}
			markSliceIssued(e, sl, s.now)
			if s.tracing {
				s.trace("exec     #%d slice %d", e.seq, sl)
			}
			if s.collecting {
				s.emit(telemetry.EvSliceIssue, e.seq, int8(sl), s.criticalProducer(e, sl), 0)
			}
			s.onSliceExecuted(e, sl)
		}
		if all {
			e.execDone = true
		}
	}
}

func (s *Sim) scheduleFullLegacy(e *entry) {
	st := &e.slices[0]
	if st.started {
		return
	}
	// Resource selection by class.
	op := e.d.Inst.Op
	switch op.Class() {
	case isa.ClassIntMul:
		if s.mulUsed >= s.cfg.IntMul {
			return
		}
	case isa.ClassIntDiv:
		if s.divFree > s.now {
			return
		}
	case isa.ClassFP:
		if s.fpUsed >= s.cfg.FPALUs {
			return
		}
	case isa.ClassFPMulDiv:
		if s.fpmdFree > s.now {
			return
		}
	default:
		if s.issueUsed[0] >= s.cfg.IssueWidth || s.aluUsed[0] >= s.cfg.IntALUs {
			return
		}
	}
	if s.depsAvail(e, 0, true) > s.now {
		return
	}
	switch op.Class() {
	case isa.ClassIntMul:
		s.mulUsed++
	case isa.ClassIntDiv:
		s.divFree = s.now + int64(e.fullLat)
	case isa.ClassFP:
		s.fpUsed++
	case isa.ClassFPMulDiv:
		s.fpmdFree = s.now + int64(e.fullLat)
	default:
		s.issueUsed[0]++
		s.aluUsed[0]++
	}
	if act := s.depsAvail(e, 0, false); act > s.now {
		st.retryC = retryAt(act)
		e.replayedSelf = true
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, 0, st.retryC, replayCause(act))
		}
		return
	}
	if s.injOn && s.inj.FlipSlice(e.seq, 0) {
		// Injected corruption of a full-width result (mirrors tryIssueFull).
		st.retryC = s.now + 1
		e.replayedSelf = true
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, 0, st.retryC, telemetry.ReplayInjected)
		}
		return
	}
	markSliceIssued(e, 0, s.now)
	e.execDone = true
	if s.tracing {
		s.trace("exec     #%d full (lat %d)", e.seq, e.fullLat)
	}
	if s.collecting {
		s.emit(telemetry.EvSliceIssue, e.seq, 0, s.criticalProducer(e, 0), 1)
	}
	s.onSliceExecuted(e, 0)
}

// memoryStageLegacy is the original full-window memory loop.
func (s *Sim) memoryStageLegacy() {
	for i := 0; i < s.window.Len(); i++ {
		e := s.window.At(i)
		if e.committed {
			continue
		}
		if e.isStore && e.lsqInserted {
			s.checkStoreData(e)
		}
		if e.isLoad && !e.memIssued && e.lsqInserted {
			s.tryIssueLoad(e)
		}
		if e.isLoad && e.memIssued && e.memPendFull != pendNone {
			s.finalizePendingLoad(e)
		}
	}
}

// iqOccupancyScan counts the window entries still holding an issue-queue
// slot by scanning the window (legacy path; the event-driven scheduler
// maintains the same quantity incrementally in iqCount).
func (s *Sim) iqOccupancyScan() int {
	n := 0
	for i := 0; i < s.window.Len(); i++ {
		if !s.window.At(i).execDone {
			n++
		}
	}
	return n
}
