package core

import (
	"bytes"
	"fmt"
	"testing"

	"pok/internal/telemetry"
	"pok/internal/workload"
)

// The telemetry layer's correctness contract has two halves:
//
//  1. The structured event stream is part of the machine's observable
//     behavior, so the event-driven and legacy schedulers — already held
//     to identical Result structs — must also emit byte-identical JSONL
//     event dumps (TestTelemetryGoldenAcrossSchedulers).
//  2. Telemetry is pure observation: attaching a Recorder must not
//     perturb timing, and running without one must leave Result
//     bit-identical (TestTelemetryNilCollectorIdentity).

// runRecorded runs one benchmark under cfg with a fresh Recorder
// attached and returns the result plus the recorder.
func runRecorded(t *testing.T, bench string, cfg Config, insts uint64) (*Result, *telemetry.Recorder) {
	t.Helper()
	w := workload.MustGet(bench)
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	rec := cfg.NewRecorder(0)
	cfg.Collector = rec
	r, err := RunWarm(prog, cfg, w.FastForward, insts)
	if err != nil {
		t.Fatal(err)
	}
	return r, rec
}

// dumpJSONL renders a recorder's event stream as its JSONL wire form.
func dumpJSONL(t *testing.T, rec *telemetry.Recorder) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := telemetry.WriteJSONL(&b, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTelemetryGoldenAcrossSchedulers runs tiny workloads under both
// schedulers and requires the full event streams to be byte-identical —
// the strongest cycle-exactness statement the repo makes, covering not
// just end-of-run counters but the order of every issue, replay,
// memory access, resolution, commit and squash.
func TestTelemetryGoldenAcrossSchedulers(t *testing.T) {
	const insts = 20_000
	cases := []struct {
		bench string
		cfg   Config
	}{
		{"gzip", BitSliced(2)},
		{"mcf", BitSliced(4)},
		{"gcc", func() Config {
			c := BitSliced(4)
			c.WrongPath = true // squash + wrong-path fetch events
			c.UseDTLB = true
			return c
		}()},
		{"twolf", BaseConfig()},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/%s", tc.bench, tc.cfg.Name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			legacy := tc.cfg
			legacy.LegacyScheduler = true
			_, lrec := runRecorded(t, tc.bench, legacy, insts)
			event := tc.cfg
			event.LegacyScheduler = false
			_, erec := runRecorded(t, tc.bench, event, insts)

			ld, ed := dumpJSONL(t, lrec), dumpJSONL(t, erec)
			if bytes.Equal(ld, ed) {
				return
			}
			// Locate the first diverging event for the failure message.
			le, ee := lrec.Events(), erec.Events()
			n := len(le)
			if len(ee) < n {
				n = len(ee)
			}
			for i := 0; i < n; i++ {
				if le[i] != ee[i] {
					t.Fatalf("%s: event %d diverges\nlegacy: %+v\nevent:  %+v",
						name, i, le[i], ee[i])
				}
			}
			t.Fatalf("%s: stream lengths diverge: legacy=%d event=%d",
				name, len(le), len(ee))
		})
	}
}

// TestTelemetryNilCollectorIdentity proves telemetry is observation
// only: the Result of an instrumented run equals the uninstrumented
// Result bit-for-bit once the Telemetry summary pointer is cleared.
func TestTelemetryNilCollectorIdentity(t *testing.T) {
	const insts = 20_000
	for _, slices := range []int{2, 4} {
		cfg := BitSliced(slices)
		w := workload.MustGet("gzip")
		prog, err := w.Program(w.DefaultScale)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := RunWarm(prog, cfg, w.FastForward, insts)
		if err != nil {
			t.Fatal(err)
		}
		recorded, rec := runRecorded(t, "gzip", cfg, insts)
		if recorded.Telemetry == nil {
			t.Fatalf("x%d: instrumented run did not fold a Summary into Result", slices)
		}
		clone := *recorded
		clone.Telemetry = nil
		if clone != *plain {
			t.Errorf("x%d: telemetry perturbed the run\nwith:\n%s\nwithout:\n%s",
				slices, recorded.Summary(), plain.Summary())
		}
		// Cross-check the summary against the run's own counters.
		sum := rec.Summary()
		if sum.CyclesSampled != uint64(plain.Cycles) {
			t.Errorf("x%d: sampled %d cycles, simulated %d", slices, sum.CyclesSampled, plain.Cycles)
		}
		if got := sum.Events[telemetry.EvCommit.String()]; got != plain.Insts {
			t.Errorf("x%d: %d commit events, %d committed insts", slices, got, plain.Insts)
		}
		if got := sum.Events[telemetry.EvReplay.String()]; got != plain.Replays {
			t.Errorf("x%d: %d replay events, %d replays", slices, got, plain.Replays)
		}
		if got := sum.ResolvesEarly; got != plain.EarlyResolved {
			t.Errorf("x%d: %d early-resolve events, %d early resolved", slices, got, plain.EarlyResolved)
		}
	}
}

// TestTelemetryJSONLRoundTrip pushes a real event stream through the
// JSONL encoder and decoder and requires an exact structural round
// trip.
func TestTelemetryJSONLRoundTrip(t *testing.T) {
	_, rec := runRecorded(t, "gzip", BitSliced(2), 5_000)
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var b bytes.Buffer
	if err := telemetry.WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip: %d events in, %d out", len(events), len(back))
	}
	for i := range events {
		if events[i] != back[i] {
			t.Fatalf("round trip: event %d: %+v != %+v", i, events[i], back[i])
		}
	}
}
