package core

import "testing"

// A quiet timing-core cycle — one in which no stage does any work — must
// not allocate: the event-driven scheduler's whole point is that such
// cycles cost a handful of empty checks, and an allocation on that path
// would put GC pressure proportional to simulated time, not to work.
// The regression guard steers a machine into a provably quiet stretch
// (a 20-cycle divide in flight with everything already fetched) and
// measures cycle() there.
func TestQuietCycleZeroAllocs(t *testing.T) {
	prog := mustProg(t, `main:
	li $t0, 7
	li $t1, 3
	div2 $t0, $t1
	mflo $t2
	li $v0, 10
	syscall
`)
	s, err := NewSim(prog, BaseConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Advance until the skip logic proves a long quiet stretch ahead —
	// the same condition under which Run would jump s.now.
	var quietLen int64
	for i := 0; i < 200; i++ {
		if _, err := s.cycle(); err != nil {
			t.Fatal(err)
		}
		if s.drained() {
			t.Fatal("program drained before a quiet stretch was found")
		}
		if nxt := s.nextCycle(0, 10_000); nxt > s.now+5 {
			quietLen = nxt - s.now - 1
			break
		}
		s.now++
	}
	if quietLen == 0 {
		t.Fatal("no quiet stretch found")
	}

	runs := int(quietLen) - 1
	if runs > 10 {
		runs = 10
	}
	if runs < 3 {
		t.Fatalf("quiet stretch too short to measure (%d cycles)", quietLen)
	}
	allocs := testing.AllocsPerRun(runs-1, func() {
		s.now++
		if _, err := s.cycle(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("quiet cycle allocates %.1f objects/cycle, want 0", allocs)
	}
}
