package core

import (
	"fmt"

	"pok/internal/emu"
)

// RunSampled performs SMARTS-style sampled simulation: alternating
// detailed timing windows of sampleLen committed instructions with
// functionally-warmed fast-forward gaps of skipLen instructions. During a
// gap the caches and the branch predictor continue to observe the
// instruction stream (functional warming), so each measurement window
// starts with warm microarchitectural state; only the pipeline itself is
// cold at window entry.
//
// The returned Result aggregates the measured windows: Insts counts only
// sampled instructions and Cycles only sampled cycles, so IPC estimates
// the whole-program IPC at a fraction of the simulation cost.
func RunSampled(prog *emu.Program, cfg Config, warmup, sampleLen, skipLen uint64,
	nSamples int) (*Result, error) {
	if sampleLen == 0 || nSamples < 1 {
		return nil, fmt.Errorf("core: sampled run needs sampleLen > 0 and nSamples >= 1")
	}
	s, err := NewSim(prog, cfg, 0)
	if err != nil {
		return nil, err
	}
	if warmup > 0 {
		if err := s.warmSkip(warmup); err != nil {
			return nil, err
		}
	}
	total := &Result{Config: cfg.Name + "/sampled"}
	for i := 0; i < nSamples; i++ {
		done, err := s.runWindow(sampleLen)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if skipLen > 0 {
			if err := s.warmSkip(skipLen); err != nil {
				return nil, err
			}
			if s.em.Halted() {
				break
			}
		}
	}
	*total = s.res
	total.Config = cfg.Name + "/sampled"
	if total.Cycles > 0 {
		total.IPC = float64(total.Insts) / float64(total.Cycles)
	}
	if total.Branches > 0 {
		total.BranchAccuracy = 1 - float64(total.Mispredicts)/float64(total.Branches)
	} else {
		total.BranchAccuracy = 1
	}
	total.L1DMissRate = s.hier.L1D.MissRate()
	total.L1IMissRate = s.hier.L1I.MissRate()
	if s.dtlb != nil {
		total.DTLBMissRate = s.dtlb.MissRate()
	}
	return total, nil
}

// warmSkip advances the program functionally while keeping the caches and
// the branch predictor trained on the skipped instructions.
func (s *Sim) warmSkip(n uint64) error {
	var lastLine uint32
	haveLine := false
	_, err := s.em.Run(n, func(d *emu.DynInst) {
		line := d.PC &^ uint32(s.hier.L1I.Config().LineBytes-1)
		if !haveLine || line != lastLine {
			s.hier.AccessInst(line)
			lastLine, haveLine = line, true
		}
		op := d.Inst.Op
		if op.IsLoad() || op.IsStore() {
			s.hier.AccessData(d.EffAddr)
		}
		if op.IsControl() {
			p := s.pred.Predict(d.PC, &d.Inst)
			s.pred.Resolve(d.PC, &d.Inst, p, d.Taken, d.NextPC)
		}
	})
	return err
}

// runWindow simulates until sampleLen more instructions commit and the
// pipeline drains, leaving the simulator ready for the next phase. It
// reports whether the program finished inside the window.
func (s *Sim) runWindow(sampleLen uint64) (programDone bool, err error) {
	// Re-arm the fetch budget relative to what has already been fetched.
	s.maxInsts = s.fetchedCnt + sampleLen
	s.traceDone = false

	const safety = 40_000
	lastCommit := s.now
	for {
		committed, err := s.cycle()
		if err != nil {
			return false, err
		}
		if committed > 0 {
			lastCommit = s.now
		}
		if s.drained() {
			break
		}
		if s.now-lastCommit > safety {
			return false, fmt.Errorf("core: sampled window stalled at cycle %d", s.now)
		}
		s.now = s.nextCycle(lastCommit, safety)
	}
	s.now++ // account the drain cycle, as Run does
	s.res.Cycles = s.now
	// Prepare for a functional skip: drop any peeked instruction so the
	// emulator's position is exact, and clear the fetch-line state.
	s.pendingOK = false
	s.haveLine = false
	return s.em.Halted(), nil
}
