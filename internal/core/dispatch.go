package core

import (
	"pok/internal/isa"
	"pok/internal/lsq"
	"pok/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Dispatch / rename
// ---------------------------------------------------------------------------

// iqOccupancy returns the number of window entries still holding an
// issue-queue slot. The event-driven path maintains the count
// incrementally; the legacy path recomputes it by scanning the window.
func (s *Sim) iqOccupancy() int {
	if s.legacy {
		return s.iqOccupancyScan()
	}
	return s.iqCount
}

func (s *Sim) dispatch() {
	for n := 0; n < s.cfg.FetchWidth && s.fetchBuf.Len() > 0; n++ {
		e := s.fetchBuf.Front()
		if s.now < e.fetchC+int64(s.cfg.FrontEndDepth) {
			return // still in the front-end pipe
		}
		if s.window.Len() >= s.cfg.WindowSize {
			if n == 0 {
				s.res.StallWindowFull++
			}
			return
		}
		if s.cfg.IssueQueueSize > 0 && s.iqOccupancy() >= s.cfg.IssueQueueSize {
			if n == 0 {
				s.res.StallIQFull++
			}
			return // per-slice issue queues full (Figure 7)
		}
		if e.d.Inst.Op.Class() == isa.ClassSyscall && s.window.Len() > 0 && !e.wp {
			return // serialize syscalls (wrong-path ones never commit anyway)
		}
		if (e.isLoad || e.isStore) && s.lsq.Full() {
			if n == 0 {
				s.res.StallLSQFull++
			}
			return
		}
		s.fetchBuf.PopFront()
		e.dispatched = true
		e.dispC = s.now
		if s.tracing {
			s.trace("dispatch #%d", e.seq)
		}
		if s.collecting {
			s.emit(telemetry.EvDispatch, e.seq, -1, 0, 0)
		}

		// Rename: bind source registers to their in-flight producers.
		for i := 0; i < e.d.NSrc; i++ {
			if p := s.regProd[e.d.Src[i]]; p != nil && !p.committed {
				e.srcProd[i] = p
			}
		}
		if !s.legacy {
			// Register this entry on its producers' consumer lists so
			// their completion events wake it through the wheel.
			for i := 0; i < e.d.NSrc; i++ {
				p := e.srcProd[i]
				if p == nil || (i > 0 && p == e.srcProd[0]) {
					continue // absent or duplicate producer
				}
				p.consumers = append(p.consumers, consRef{e: e, gen: e.gen})
			}
		}
		if d := e.d.Dst; d != isa.RegZero {
			if p := s.regProd[d]; p != nil {
				e.prevDstProd, e.prevDstGen = p, p.gen
			} else {
				e.prevDstProd = nil
			}
			s.regProd[d] = e
		}
		if d2 := e.d.Dst2; d2 != isa.RegZero {
			if p := s.regProd[d2]; p != nil {
				e.prevDst2Prod, e.prevDst2Gen = p, p.gen
			} else {
				e.prevDst2Prod = nil
			}
			s.regProd[d2] = e
		}

		if e.isLoad || e.isStore {
			// The LSQ entry lives inside the (pooled) window entry: it is
			// always removed from the queue at commit or squash, before the
			// entry can recycle, so embedding saves a heap allocation per
			// memory op.
			e.lsqData = lsq.Entry{
				Seq:     e.seq,
				IsStore: e.isStore,
				Addr:    e.d.EffAddr,
				Size:    e.d.Inst.Op.MemSize(),
			}
			q := &e.lsqData
			_ = s.lsq.Insert(q)
			e.lsqEnt = q
			e.lsqInserted = true
			if !s.legacy {
				s.memWatch = append(s.memWatch, e)
			}
		}

		// Direct jumps resolve at dispatch; they can never mispredict.
		if e.d.Inst.Op == isa.OpJ || e.d.Inst.Op == isa.OpJAL {
			e.resolved = true
			e.resolveC = s.now
		}
		s.window.PushBack(e)
		if !s.legacy {
			s.iqCount++
			// Seed the wakeup wheel with every slice whose dependence
			// set is already determined; the rest are enqueued by the
			// producer events that complete them.
			for sl := 0; sl < e.nSlices; sl++ {
				s.enqueueCand(e, sl)
			}
		}
	}
}
