package core

import (
	"pok/internal/isa"
	"pok/internal/lsq"
)

// ---------------------------------------------------------------------------
// Dispatch / rename
// ---------------------------------------------------------------------------

func (s *Sim) dispatch() {
	for n := 0; n < s.cfg.FetchWidth && len(s.fetchBuf) > 0; n++ {
		e := s.fetchBuf[0]
		if s.now < e.fetchC+int64(s.cfg.FrontEndDepth) {
			return // still in the front-end pipe
		}
		if len(s.window) >= s.cfg.WindowSize {
			if n == 0 {
				s.res.StallWindowFull++
			}
			return
		}
		if s.cfg.IssueQueueSize > 0 && s.iqOccupancy() >= s.cfg.IssueQueueSize {
			if n == 0 {
				s.res.StallIQFull++
			}
			return // per-slice issue queues full (Figure 7)
		}
		if e.d.Inst.Op.Class() == isa.ClassSyscall && len(s.window) > 0 && !e.wp {
			return // serialize syscalls (wrong-path ones never commit anyway)
		}
		if (e.isLoad || e.isStore) && s.lsq.Full() {
			if n == 0 {
				s.res.StallLSQFull++
			}
			return
		}
		s.fetchBuf = s.fetchBuf[1:]
		e.dispatched = true
		e.dispC = s.now
		s.trace("dispatch #%d", e.seq)

		// Rename: bind source registers to their in-flight producers.
		for i := 0; i < e.d.NSrc; i++ {
			if p := s.regProd[e.d.Src[i]]; p != nil && !p.committed {
				e.srcProd[i] = p
			}
		}
		if d := e.d.Dst; d != isa.RegZero {
			e.prevDstProd = s.regProd[d]
			s.regProd[d] = e
		}
		if d2 := e.d.Dst2; d2 != isa.RegZero {
			e.prevDst2Prod = s.regProd[d2]
			s.regProd[d2] = e
		}

		if e.isLoad || e.isStore {
			_ = s.lsq.Insert(&lsq.Entry{
				Seq:     e.seq,
				IsStore: e.isStore,
				Addr:    e.d.EffAddr,
				Size:    e.d.Inst.Op.MemSize(),
			})
			e.lsqInserted = true
		}

		// Direct jumps resolve at dispatch; they can never mispredict.
		if e.d.Inst.Op == isa.OpJ || e.d.Inst.Op == isa.OpJAL {
			e.resolved = true
			e.resolveC = s.now
		}
		s.window = append(s.window, e)
	}
}
