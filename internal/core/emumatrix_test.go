package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pok/internal/asm"
	"pok/internal/emu"
	"pok/internal/workload"
)

// The emulator half of the differential matrix: the direct-threaded
// fast-path interpreter and the original switch-dispatch interpreter
// must be interchangeable underneath either timing scheduler. Every cell
// of {legacy, fast} emulator × {legacy, event} scheduler runs the same
// program and the four Results are compared wholesale — any divergence
// in the DynInst stream the emulator feeds the timing model would show
// up as a differing counter.

// matrixCell identifies one emulator/scheduler combination.
type matrixCell struct {
	legacyEmu   bool
	legacySched bool
}

func (c matrixCell) String() string {
	e, s := "fast-emu", "event-sched"
	if c.legacyEmu {
		e = "legacy-emu"
	}
	if c.legacySched {
		s = "legacy-sched"
	}
	return e + "/" + s
}

var matrixCells = []matrixCell{
	{false, false}, {false, true}, {true, false}, {true, true},
}

// runMatrix executes every cell on a freshly built program and fails
// unless all four agree — on the Result when the runs succeed, or on
// the error text when the program wedges the machine (a deliberately
// pathological repro bundle must wedge it identically in every cell).
func runMatrix(t *testing.T, name string, mk func() (*emu.Program, error),
	ff uint64, cfg Config, maxInsts uint64) {
	t.Helper()
	var refRes *Result
	var refErr error
	for i, cell := range matrixCells {
		prog, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.LegacyEmulator = cell.legacyEmu
		c.LegacyScheduler = cell.legacySched
		r, err := RunWarm(prog, c, ff, maxInsts)
		if i == 0 {
			refRes, refErr = r, err
			continue
		}
		switch {
		case (err == nil) != (refErr == nil):
			t.Fatalf("%s: %v errored (%v) but %v did not (%v)",
				name, cell, err, matrixCells[0], refErr)
		case err != nil:
			if err.Error() != refErr.Error() {
				t.Fatalf("%s: error mismatch\n%v: %v\n%v: %v",
					name, matrixCells[0], refErr, cell, err)
			}
		case *r != *refRes:
			t.Errorf("%s: %v diverges from %v\nref:\n%s\ngot:\n%s",
				name, cell, matrixCells[0], refRes.Summary(), r.Summary())
		}
	}
}

// TestEmulatorMatrixMatches sweeps every registered workload through the
// full emulator × scheduler matrix on the base and slice-by-2 machines,
// then replays both checked-in repro bundles through the same matrix.
// Short mode trims the budget so the race-detector smoke job stays fast.
func TestEmulatorMatrixMatches(t *testing.T) {
	insts := uint64(40_000)
	if testing.Short() {
		insts = 10_000
	}
	for _, bench := range workload.Names() {
		w := workload.MustGet(bench)
		for _, cfg := range []Config{BaseConfig(), BitSliced(2)} {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/%s", bench, cfg.Name), func(t *testing.T) {
				t.Parallel()
				runMatrix(t, bench, func() (*emu.Program, error) {
					return w.Program(w.DefaultScale)
				}, w.FastForward, cfg, insts)
			})
		}
	}

	root := filepath.Join("..", "gen", "testdata", "repros")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		t.Run("repro/"+e.Name(), func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(filepath.Join(dir, "prog.s"))
			if err != nil {
				t.Fatal(err)
			}
			runMatrix(t, e.Name(), func() (*emu.Program, error) {
				return asm.Assemble(string(src))
			}, 0, BitSliced(2), insts)
		})
	}
}
