package core

import (
	"pok/internal/isa"
	"pok/internal/telemetry"
)

// Event-driven scheduler.
//
// Instead of rescanning the whole window every cycle, slice-op candidates
// are pushed into a time-indexed wakeup wheel (a binary min-heap on their
// computed depsAvail) when the event that completes their dependence set
// occurs:
//
//   - dispatch seeds every slice whose inputs are already determined;
//   - a producer's slice execution (or a load establishing its completion
//     time) walks the producer's consumer list and enqueues dependents;
//   - a slice execution enqueues the entry's own next slice (carry chains
//     and in-order slice issue);
//   - a replay re-enqueues the slice-op at its retryC.
//
// Candidates whose speculative depsAvail is still unknown (inf — some
// producer has not executed) are not enqueued at all; a later producer
// event recomputes and enqueues them. Because every dependence input
// transitions exactly once from "unknown" to a fixed time, a candidate's
// wake time is exact when it becomes finite, so schedule() touches only
// slice-ops that are genuinely ready this cycle (plus any left over from
// resource contention). Ready candidates are issued in (seq, slice)
// order, reproducing the select priority of the legacy window scan
// cycle for cycle.

// cand is one wakeup-wheel candidate: slice sl of entry e becomes
// schedulable at cycle wake. gen snapshots e.gen so candidates that
// outlive a squashed-and-recycled entry are dropped on pop.
type cand struct {
	e    *entry
	wake int64
	seq  uint64
	gen  uint32
	sl   int32
}

// pushWheel inserts a candidate into the wakeup wheel.
func (s *Sim) pushWheel(c cand) {
	w := append(s.wheel, c)
	i := len(w) - 1
	for i > 0 {
		p := (i - 1) / 2
		if w[p].wake <= w[i].wake {
			break
		}
		w[p], w[i] = w[i], w[p]
		i = p
	}
	s.wheel = w
}

// popWheel removes and returns the earliest-waking candidate.
func (s *Sim) popWheel() cand {
	w := s.wheel
	top := w[0]
	n := len(w) - 1
	w[0] = w[n]
	w[n] = cand{}
	w = w[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && w[l].wake < w[m].wake {
			m = l
		}
		if r < n && w[r].wake < w[m].wake {
			m = r
		}
		if m == i {
			break
		}
		w[i], w[m] = w[m], w[i]
		i = m
	}
	s.wheel = w
	return top
}

// enqueueCand computes the speculative wakeup time of slice sl of e and
// inserts it into the wheel. Candidates whose dependence set is not yet
// determined (wake == inf) are parked: the producer event that completes
// the set re-enqueues them.
func (s *Sim) enqueueCand(e *entry, sl int) {
	st := &e.slices[sl]
	if st.started || st.inReady || e.committed || e.squashed {
		return
	}
	w := s.depsAvailC(e, sl, true)
	if w >= inf {
		return
	}
	s.pushWheel(cand{e: e, wake: w, seq: e.seq, gen: e.gen, sl: int32(sl)})
}

// wakeConsumers handles a producer event on p: every dependent entry's
// memoized depsAvail is invalidated and its unstarted slice-ops are
// (re-)enqueued now that one more input is determined.
func (s *Sim) wakeConsumers(p *entry) {
	for _, cr := range p.consumers {
		c := cr.e
		if c.gen != cr.gen || c.committed || c.squashed {
			continue
		}
		c.invalidateDeps()
		for sl := 0; sl < c.nSlices; sl++ {
			if !c.slices[sl].started {
				s.enqueueCand(c, sl)
			}
		}
	}
}

// schedule pops due candidates off the wheel into the ready set, then
// issues them in program order under the same per-slice issue/FU limits
// as the legacy scan. Resource-starved candidates stay ready for the
// next cycle; replayed ones are re-enqueued at their retryC.
func (s *Sim) schedule() {
	for len(s.wheel) > 0 && s.wheel[0].wake <= s.now {
		c := s.popWheel()
		e := c.e
		if c.gen != e.gen || e.committed || e.squashed {
			continue
		}
		st := &e.slices[c.sl]
		if st.started || st.inReady {
			continue // issued meanwhile, or a duplicate wakeup
		}
		st.inReady = true
		s.ready = append(s.ready, c)
		s.readyDirty = true
	}
	if s.readyDirty {
		sortReady(s.ready)
		s.readyDirty = false
	}
	r := s.ready
	n := 0
	for i, c := range r {
		e := c.e
		if c.gen != e.gen || e.committed || e.squashed || e.slices[c.sl].started {
			continue // squashed or satisfied since entering the ready set
		}
		var consumed bool
		if e.nSlices == 1 {
			consumed = s.tryIssueFull(e)
		} else {
			consumed = s.tryIssueSlice(e, int(c.sl))
		}
		if !consumed {
			// No issue slot this cycle; stay ready. Write only on actual
			// compaction to spare the pointer write barrier.
			if n != i {
				r[n] = c
			}
			n++
		}
	}
	for i := n; i < len(r); i++ {
		r[i] = cand{}
	}
	s.ready = r[:n]
}

// sortReady orders the ready set by (seq, slice) — the select priority of
// the legacy window scan. An insertion sort beats sort.Slice here: the
// set is small, largely sorted already (survivors from last cycle stay in
// order), and a typed sort avoids reflection in the swap path.
func sortReady(r []cand) {
	for i := 1; i < len(r); i++ {
		c := r[i]
		j := i - 1
		for j >= 0 && (r[j].seq > c.seq || (r[j].seq == c.seq && r[j].sl > c.sl)) {
			r[j+1] = r[j]
			j--
		}
		r[j+1] = c
	}
}

// tryIssueSlice attempts to issue one slice-op of a sliced entry,
// reporting whether the candidate was consumed (issued or replayed).
func (s *Sim) tryIssueSlice(e *entry, sl int) bool {
	if s.issueUsed[sl] >= s.cfg.IssueWidth || s.aluUsed[sl] >= s.cfg.IntALUs {
		return false
	}
	s.issueUsed[sl]++
	s.aluUsed[sl]++
	st := &e.slices[sl]
	st.inReady = false // the candidate is consumed either way below
	if act := s.depsAvailC(e, sl, false); act > s.now {
		// Load-hit misspeculation: the slot is wasted and the slice-op
		// replays once its operand truly arrives.
		st.retryC = retryAt(act)
		e.replayedSelf = true
		e.invalidateDeps()
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, int8(sl), st.retryC, replayCause(act))
		}
		s.enqueueCand(e, sl)
		return true
	}
	if s.injOn && s.inj.FlipSlice(e.seq, sl) {
		// Injected slice corruption: the verify stage catches it, the
		// slot is wasted and the slice-op replays next cycle.
		st.retryC = s.now + 1
		e.replayedSelf = true
		e.invalidateDeps()
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, int8(sl), st.retryC, telemetry.ReplayInjected)
		}
		s.enqueueCand(e, sl)
		return true
	}
	st.started = true
	st.startC = s.now
	e.invalidateDeps()
	if s.tracing {
		s.trace("exec     #%d slice %d", e.seq, sl)
	}
	if s.collecting {
		s.emit(telemetry.EvSliceIssue, e.seq, int8(sl), s.criticalProducer(e, sl), 0)
	}
	s.onSliceExecuted(e, sl)
	if allSlicesStarted(e) {
		e.execDone = true
		s.iqCount--
	}
	s.wakeConsumers(e)
	// Carry chains and in-order slice issue make the next slice of this
	// entry dependent on the one that just executed.
	if sl+1 < e.nSlices && !e.slices[sl+1].started {
		s.enqueueCand(e, sl+1)
	}
	return true
}

// tryIssueFull attempts to issue a full-width operation, reporting
// whether the candidate was consumed (issued or replayed). Resource
// selection and consumption mirror scheduleFullLegacy exactly; a ready
// candidate consumes its unit before the actual-readiness verify, so a
// replay wastes the unit just as the hardware (and the legacy scan)
// would.
func (s *Sim) tryIssueFull(e *entry) bool {
	op := e.d.Inst.Op
	cls := op.Class()
	switch cls {
	case isa.ClassIntMul:
		if s.mulUsed >= s.cfg.IntMul {
			return false
		}
	case isa.ClassIntDiv:
		if s.divFree > s.now {
			return false
		}
	case isa.ClassFP:
		if s.fpUsed >= s.cfg.FPALUs {
			return false
		}
	case isa.ClassFPMulDiv:
		if s.fpmdFree > s.now {
			return false
		}
	default:
		if s.issueUsed[0] >= s.cfg.IssueWidth || s.aluUsed[0] >= s.cfg.IntALUs {
			return false
		}
	}
	switch cls {
	case isa.ClassIntMul:
		s.mulUsed++
	case isa.ClassIntDiv:
		s.divFree = s.now + int64(e.fullLat)
	case isa.ClassFP:
		s.fpUsed++
	case isa.ClassFPMulDiv:
		s.fpmdFree = s.now + int64(e.fullLat)
	default:
		s.issueUsed[0]++
		s.aluUsed[0]++
	}
	st := &e.slices[0]
	st.inReady = false // the candidate is consumed either way below
	if act := s.depsAvailC(e, 0, false); act > s.now {
		st.retryC = retryAt(act)
		e.replayedSelf = true
		e.invalidateDeps()
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, 0, st.retryC, replayCause(act))
		}
		s.enqueueCand(e, 0)
		return true
	}
	if s.injOn && s.inj.FlipSlice(e.seq, 0) {
		st.retryC = s.now + 1
		e.replayedSelf = true
		e.invalidateDeps()
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, 0, st.retryC, telemetry.ReplayInjected)
		}
		s.enqueueCand(e, 0)
		return true
	}
	st.started = true
	st.startC = s.now
	e.execDone = true
	s.iqCount--
	e.invalidateDeps()
	if s.tracing {
		s.trace("exec     #%d full (lat %d)", e.seq, e.fullLat)
	}
	if s.collecting {
		s.emit(telemetry.EvSliceIssue, e.seq, 0, s.criticalProducer(e, 0), 1)
	}
	s.onSliceExecuted(e, 0)
	s.wakeConsumers(e)
	return true
}
