package core

import (
	"math/bits"

	"pok/internal/isa"
	"pok/internal/telemetry"
)

// Event-driven scheduler.
//
// Instead of rescanning the whole window every cycle, slice-op candidates
// are pushed into a time-indexed wakeup wheel (a bucketed timing wheel
// keyed on their computed depsAvail) when the event that completes their
// dependence set occurs:
//
//   - dispatch seeds every slice whose inputs are already determined;
//   - a producer's slice execution (or a load establishing its completion
//     time) walks the producer's consumer list and enqueues dependents;
//   - a slice execution enqueues the entry's own next slice (carry chains
//     and in-order slice issue);
//   - a replay re-enqueues the slice-op at its retryC.
//
// Candidates whose speculative depsAvail is still unknown (inf — some
// producer has not executed) are not enqueued at all; a later producer
// event recomputes and enqueues them. Because every dependence input
// transitions exactly once from "unknown" to a fixed time, a candidate's
// wake time is exact when it becomes finite, so schedule() touches only
// slice-ops that are genuinely ready this cycle (plus any left over from
// resource contention). Ready candidates are issued in (seq, slice)
// order, reproducing the select priority of the legacy window scan
// cycle for cycle.

// cand is one wakeup-wheel candidate: slice sl of entry e becomes
// schedulable at cycle wake. gen snapshots e.gen so candidates that
// outlive a squashed-and-recycled entry are dropped on pop.
type cand struct {
	e    *entry
	wake int64
	seq  uint64
	gen  uint32
	sl   int32
}

// The wheel is a power-of-two ring of per-cycle buckets plus an
// occupancy bitmap. A binary min-heap held the candidates in earlier
// revisions, but each sift swap of the pointer-carrying cand struct paid
// a GC write barrier, and the heap's O(log n) reshuffling dominated the
// scheduler profile; bucket appends are straight-line stores and the
// per-cycle drain touches only the bucket for the current cycle.
const (
	// wheelHorizon bounds how far ahead a bucketed wakeup may lie. It
	// comfortably exceeds the longest single-event latency the machine
	// can schedule (an L1+L2 miss to memory plus a TLB walk); rarer,
	// farther wakes spill to the overflow list.
	wheelHorizon = 512
	wheelMask    = wheelHorizon - 1
	wheelWords   = wheelHorizon / 64
)

// wakeWheel is the bucketed timing wheel. Buckets cover the cycles
// [base, base+wheelHorizon); all candidates in one live bucket share the
// same wake cycle (the window is exactly one horizon wide, so bucket
// indices cannot alias). base is the earliest cycle whose bucket has not
// been consumed: the cycle being simulated while its stages run, and the
// next cycle once schedule() has drained.
type wakeWheel struct {
	bucket   [wheelHorizon][]cand
	occ      [wheelWords]uint64 // bitmap of non-empty buckets
	base     int64
	count    int    // candidates across all buckets (excluding overflow)
	overflow []cand // wakes at or beyond base+wheelHorizon
	ovMin    int64  // earliest overflow wake, inf when overflow is empty
}

// min returns the earliest pending wake cycle, or inf when the wheel is
// empty. The quiet-cycle skipper uses it to bound its jump.
func (w *wakeWheel) min() int64 {
	t := w.bucketMin()
	if w.ovMin < t {
		t = w.ovMin
	}
	return t
}

// bucketMin scans the occupancy bitmap circularly from base and returns
// the earliest bucketed wake cycle, or inf.
func (w *wakeWheel) bucketMin() int64 {
	if w.count == 0 {
		return inf
	}
	start := int(w.base) & wheelMask
	wi := start >> 6
	m := w.occ[wi] &^ (1<<uint(start&63) - 1) // ignore bits before base
	for k := 0; k <= wheelWords; k++ {
		if m != 0 {
			b := wi<<6 + bits.TrailingZeros64(m)
			return w.base + int64((b-start)&wheelMask)
		}
		wi = (wi + 1) % wheelWords
		m = w.occ[wi]
	}
	return inf // unreachable while count > 0
}

// pushWheel inserts a candidate into the wakeup wheel. Wakes in the past
// (a replay whose operand arrived while the candidate was parked) are
// clamped to base so they surface at the next drain, exactly when the
// min-heap predecessor would have re-delivered them.
func (s *Sim) pushWheel(c cand) {
	w := &s.wh
	t := c.wake
	if t < w.base {
		t = w.base
	}
	if t >= w.base+wheelHorizon {
		w.overflow = append(w.overflow, c)
		if c.wake < w.ovMin {
			w.ovMin = c.wake
		}
		return
	}
	b := int(t) & wheelMask
	w.bucket[b] = append(w.bucket[b], c)
	w.occ[b>>6] |= 1 << uint(b&63)
	w.count++
}

// admit moves a drained candidate into the ready set unless it became
// stale (squash recycling, a duplicate wakeup, or issue in the meantime).
func (s *Sim) admit(c cand) {
	e := c.e
	if c.gen != e.gen || e.committed || e.squashed {
		return
	}
	st := &e.slices[c.sl]
	if st.started || st.inReady {
		return
	}
	st.inReady = true
	s.ready = append(s.ready, c)
	s.readyDirty = true
}

// drainWheel moves every candidate due at or before s.now into the ready
// set and advances base past the consumed cycles.
func (s *Sim) drainWheel() {
	w := &s.wh
	for w.count > 0 {
		t := w.bucketMin()
		if t > s.now {
			break
		}
		b := int(t) & wheelMask
		bk := w.bucket[b]
		w.count -= len(bk)
		for _, c := range bk {
			s.admit(c)
		}
		w.bucket[b] = bk[:0]
		w.occ[b>>6] &^= 1 << uint(b&63)
	}
	if w.ovMin <= s.now {
		ov := w.overflow
		n := 0
		newMin := int64(inf)
		for _, c := range ov {
			if c.wake <= s.now {
				s.admit(c)
				continue
			}
			if c.wake < newMin {
				newMin = c.wake
			}
			ov[n] = c
			n++
		}
		for i := n; i < len(ov); i++ {
			ov[i] = cand{}
		}
		w.overflow = ov[:n]
		w.ovMin = newMin
	}
	w.base = s.now + 1
}

// enqueueCand computes the speculative wakeup time of slice sl of e and
// inserts it into the wheel. Candidates whose dependence set is not yet
// determined (wake == inf) are parked: the producer event that completes
// the set re-enqueues them.
func (s *Sim) enqueueCand(e *entry, sl int) {
	st := &e.slices[sl]
	if st.started || st.inReady || e.committed || e.squashed {
		return
	}
	w := s.depsAvailC(e, sl, true)
	if w >= inf {
		return
	}
	s.pushWheel(cand{e: e, wake: w, seq: e.seq, gen: e.gen, sl: int32(sl)})
}

// wakeConsumers handles a producer event on p: every dependent entry's
// memoized depsAvail is invalidated and its unstarted slice-ops are
// (re-)enqueued now that one more input is determined.
func (s *Sim) wakeConsumers(p *entry) {
	for _, cr := range p.consumers {
		c := cr.e
		if c.gen != cr.gen || c.committed || c.squashed {
			continue
		}
		c.invalidateDeps()
		for sl := 0; sl < c.nSlices; sl++ {
			if !c.slices[sl].started {
				s.enqueueCand(c, sl)
			}
		}
	}
}

// schedule pops due candidates off the wheel into the ready set, then
// issues them in program order under the same per-slice issue/FU limits
// as the legacy scan. Resource-starved candidates stay ready for the
// next cycle; replayed ones are re-enqueued at their retryC.
func (s *Sim) schedule() {
	s.drainWheel()
	if s.readyDirty {
		sortReady(s.ready)
		s.readyDirty = false
	}
	r := s.ready
	n := 0
	for i, c := range r {
		e := c.e
		if c.gen != e.gen || e.committed || e.squashed || e.slices[c.sl].started {
			continue // squashed or satisfied since entering the ready set
		}
		var consumed bool
		if e.nSlices == 1 {
			consumed = s.tryIssueFull(e)
		} else {
			consumed = s.tryIssueSlice(e, int(c.sl))
		}
		if !consumed {
			// No issue slot this cycle; stay ready. Write only on actual
			// compaction to spare the pointer write barrier.
			if n != i {
				r[n] = c
			}
			n++
		}
	}
	for i := n; i < len(r); i++ {
		r[i] = cand{}
	}
	s.ready = r[:n]
}

// sortReady orders the ready set by (seq, slice) — the select priority of
// the legacy window scan. An insertion sort beats sort.Slice here: the
// set is small, largely sorted already (survivors from last cycle stay in
// order), and a typed sort avoids reflection in the swap path.
func sortReady(r []cand) {
	for i := 1; i < len(r); i++ {
		c := r[i]
		j := i - 1
		for j >= 0 && (r[j].seq > c.seq || (r[j].seq == c.seq && r[j].sl > c.sl)) {
			r[j+1] = r[j]
			j--
		}
		r[j+1] = c
	}
}

// tryIssueSlice attempts to issue one slice-op of a sliced entry,
// reporting whether the candidate was consumed (issued or replayed).
func (s *Sim) tryIssueSlice(e *entry, sl int) bool {
	if s.issueUsed[sl] >= s.cfg.IssueWidth || s.aluUsed[sl] >= s.cfg.IntALUs {
		return false
	}
	s.issueUsed[sl]++
	s.aluUsed[sl]++
	st := &e.slices[sl]
	st.inReady = false // the candidate is consumed either way below
	if act := s.depsAvailC(e, sl, false); act > s.now {
		// Load-hit misspeculation: the slot is wasted and the slice-op
		// replays once its operand truly arrives.
		st.retryC = retryAt(act)
		e.replayedSelf = true
		e.invalidateDeps()
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, int8(sl), st.retryC, replayCause(act))
		}
		s.enqueueCand(e, sl)
		return true
	}
	if s.injOn && s.inj.FlipSlice(e.seq, sl) {
		// Injected slice corruption: the verify stage catches it, the
		// slot is wasted and the slice-op replays next cycle.
		st.retryC = s.now + 1
		e.replayedSelf = true
		e.invalidateDeps()
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, int8(sl), st.retryC, telemetry.ReplayInjected)
		}
		s.enqueueCand(e, sl)
		return true
	}
	markSliceIssued(e, sl, s.now)
	e.invalidateDeps()
	if s.tracing {
		s.trace("exec     #%d slice %d", e.seq, sl)
	}
	if s.collecting {
		s.emit(telemetry.EvSliceIssue, e.seq, int8(sl), s.criticalProducer(e, sl), 0)
	}
	s.onSliceExecuted(e, sl)
	if allSlicesStarted(e) {
		e.execDone = true
		s.iqCount--
	}
	s.wakeConsumers(e)
	// Carry chains and in-order slice issue make the next slice of this
	// entry dependent on the one that just executed.
	if sl+1 < e.nSlices && !e.slices[sl+1].started {
		s.enqueueCand(e, sl+1)
	}
	return true
}

// tryIssueFull attempts to issue a full-width operation, reporting
// whether the candidate was consumed (issued or replayed). Resource
// selection and consumption mirror scheduleFullLegacy exactly; a ready
// candidate consumes its unit before the actual-readiness verify, so a
// replay wastes the unit just as the hardware (and the legacy scan)
// would.
func (s *Sim) tryIssueFull(e *entry) bool {
	op := e.d.Inst.Op
	cls := op.Class()
	switch cls {
	case isa.ClassIntMul:
		if s.mulUsed >= s.cfg.IntMul {
			return false
		}
	case isa.ClassIntDiv:
		if s.divFree > s.now {
			return false
		}
	case isa.ClassFP:
		if s.fpUsed >= s.cfg.FPALUs {
			return false
		}
	case isa.ClassFPMulDiv:
		if s.fpmdFree > s.now {
			return false
		}
	default:
		if s.issueUsed[0] >= s.cfg.IssueWidth || s.aluUsed[0] >= s.cfg.IntALUs {
			return false
		}
	}
	switch cls {
	case isa.ClassIntMul:
		s.mulUsed++
	case isa.ClassIntDiv:
		s.divFree = s.now + int64(e.fullLat)
	case isa.ClassFP:
		s.fpUsed++
	case isa.ClassFPMulDiv:
		s.fpmdFree = s.now + int64(e.fullLat)
	default:
		s.issueUsed[0]++
		s.aluUsed[0]++
	}
	st := &e.slices[0]
	st.inReady = false // the candidate is consumed either way below
	if act := s.depsAvailC(e, 0, false); act > s.now {
		st.retryC = retryAt(act)
		e.replayedSelf = true
		e.invalidateDeps()
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, 0, st.retryC, replayCause(act))
		}
		s.enqueueCand(e, 0)
		return true
	}
	if s.injOn && s.inj.FlipSlice(e.seq, 0) {
		st.retryC = s.now + 1
		e.replayedSelf = true
		e.invalidateDeps()
		s.res.Replays++
		if s.collecting {
			s.emit(telemetry.EvReplay, e.seq, 0, st.retryC, telemetry.ReplayInjected)
		}
		s.enqueueCand(e, 0)
		return true
	}
	markSliceIssued(e, 0, s.now)
	e.execDone = true
	s.iqCount--
	e.invalidateDeps()
	if s.tracing {
		s.trace("exec     #%d full (lat %d)", e.seq, e.fullLat)
	}
	if s.collecting {
		s.emit(telemetry.EvSliceIssue, e.seq, 0, s.criticalProducer(e, 0), 1)
	}
	s.onSliceExecuted(e, 0)
	s.wakeConsumers(e)
	return true
}
