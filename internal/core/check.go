package core

import (
	"errors"
	"fmt"
	"strings"

	"pok/internal/isa"
)

// This file declares the robustness hooks the timing core consumes: the
// lockstep commit oracle, the per-cycle invariant checker configuration,
// the fault-injection interface, and the structured deadlock error. The
// implementations live in internal/check (oracle, reports) and
// internal/check/inject (the seeded fault injector); keeping only the
// interfaces here preserves the dependency direction core <- check.
//
// All three hooks are nil-cheap: with Oracle, Invariants and Inject left
// nil the instrumentation reduces to one cached-boolean branch per site
// (the same discipline as telemetry.Collector), and Result is
// bit-identical to an unchecked run.

// CommitRecord is the architectural effect of one committed instruction,
// handed to the commit oracle in program order. It carries everything the
// functional reference needs to diff: the PC, the consumed source values,
// the produced destination values, the memory effect and the control
// outcome.
type CommitRecord struct {
	Cycle int64  // cycle the instruction committed
	Seq   uint64 // machine sequence number (wrong-path fetches leave gaps)
	Index uint64 // dense commit-order index (0-based)

	PC   uint32
	Inst isa.Inst

	NSrc   int
	SrcVal [2]uint32

	Dst     isa.Reg
	DstVal  uint32
	Dst2    isa.Reg
	Dst2Val uint32

	EffAddr uint32 // memory ops: effective address
	Taken   bool   // control ops: direction taken
	NextPC  uint32 // architectural next PC
}

// CommitChecker is the lockstep oracle interface: the core calls
// CheckCommit once per committed instruction, in commit order. A non-nil
// error aborts the run immediately — the first divergence is the one
// worth reporting; everything after it is noise.
type CommitChecker interface {
	CheckCommit(r *CommitRecord) error
}

// Injector perturbs the core's speculative-timing decisions for fault
// injection (internal/check/inject implements it deterministically from a
// seed). Every hook corrupts *speculation only* — operand slice verify,
// MRU way prediction, partial disambiguation — never architectural
// values, so a correct machine must always recover through its own
// verify/squash/replay paths to an oracle-identical commit stream.
// MutateCommit is the deliberate exception: a test hook that corrupts the
// committed record itself so the oracle's detection path can be
// exercised end to end.
type Injector interface {
	// FlipSlice reports whether the result of slice sl of instruction seq
	// should be treated as corrupted at issue verify. The core discards
	// the issue slot and replays the slice-op, as a hardware residue/ECC
	// check would.
	FlipSlice(seq uint64, sl int) bool
	// ForceWayMiss reports whether a correct MRU way prediction for load
	// seq should be treated as a mispredict, forcing the full-address
	// replay path of §5.2.
	ForceWayMiss(seq uint64) bool
	// ForceAliasConflict reports whether load seq's disambiguation should
	// be treated as an unresolved store conflict this cycle (the load
	// stalls and retries, as under a partial-address match of §5.1).
	ForceAliasConflict(seq uint64) bool
	// MutateCommit may corrupt the commit record before the oracle sees
	// it — a test hook to prove divergence detection works.
	MutateCommit(r *CommitRecord)
}

// InvariantConfig enables the per-cycle structural invariant checker.
// The zero value selects the default budgets.
type InvariantConfig struct {
	// DeadlockBudget is the number of cycles the machine may go without
	// committing before the run aborts with ErrDeadlock and a pipeline
	// dump (0 = the default, 40 000 — the historic livelock guard).
	DeadlockBudget int64
	// ReplayBudget bounds how long a replayed slice-op may sit past its
	// established retry time without re-issuing (0 = default 5 000).
	ReplayBudget int64
	// Every runs the structural checks once per N cycles (0 or 1 =
	// every cycle). The deadlock watchdog always runs every cycle.
	Every int64
}

const (
	defaultDeadlockBudget = 40_000
	defaultReplayBudget   = 5_000
)

func (ic *InvariantConfig) deadlockBudget() int64 {
	if ic != nil && ic.DeadlockBudget > 0 {
		return ic.DeadlockBudget
	}
	return defaultDeadlockBudget
}

func (ic *InvariantConfig) replayBudget() int64 {
	if ic != nil && ic.ReplayBudget > 0 {
		return ic.ReplayBudget
	}
	return defaultReplayBudget
}

func (ic *InvariantConfig) every() int64 {
	if ic == nil || ic.Every <= 1 {
		return 1
	}
	return ic.Every
}

// ErrDeadlock reports that the machine stopped making forward progress:
// no instruction committed within the configured cycle budget. It is
// always wrapped in a *DeadlockError carrying the pipeline dump.
var ErrDeadlock = errors.New("core: no forward progress (deadlock)")

// DeadlockError is the structured form of a tripped deadlock watchdog.
type DeadlockError struct {
	Cycle     int64  // cycle the watchdog fired
	Committed uint64 // instructions committed before the wedge
	Budget    int64  // the no-commit budget that was exceeded
	Dump      string // window/pipeline state dump
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("core: no commit for %d cycles at cycle %d (%d committed)\n%s",
		e.Budget, e.Cycle, e.Committed, e.Dump)
}

// Unwrap lets errors.Is(err, ErrDeadlock) identify the failure class.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// InvariantError is one violated structural invariant, reported by the
// per-cycle checker the first time it fails.
type InvariantError struct {
	Rule   string // stable rule identifier (e.g. "rob-order")
	Cycle  int64
	Seq    uint64 // offending instruction, when one is identifiable
	Detail string
	Dump   string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("core: invariant %s violated at cycle %d (seq %d): %s\n%s",
		e.Rule, e.Cycle, e.Seq, e.Detail, e.Dump)
}

// dumpWindow renders up to max in-flight window entries for failure
// reports: enough pipeline state to reconstruct what wedged without
// replaying the run.
func (s *Sim) dumpWindow(max int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: window=%d/%d lsq=%d/%d iq=%d fetchBuf=%d\n",
		s.now, s.window.Len(), s.cfg.WindowSize, s.lsq.Len(), s.cfg.LSQSize,
		s.iqOccupancy(), s.fetchBuf.Len())
	n := s.window.Len()
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		e := s.window.At(i)
		var sl strings.Builder
		for k := 0; k < e.nSlices; k++ {
			st := &e.slices[k]
			switch {
			case st.started:
				fmt.Fprintf(&sl, " s%d@%d", k, st.startC)
			case st.retryC > 0:
				fmt.Fprintf(&sl, " s%d:retry@%d", k, st.retryC)
			default:
				fmt.Fprintf(&sl, " s%d:-", k)
			}
		}
		mem := ""
		if e.isLoad || e.isStore {
			mem = fmt.Sprintf(" mem[issued=%v pend=%d done=%d]",
				e.memIssued, e.memPendFull, e.memActualDone)
		}
		ctrl := ""
		if e.isCtrl {
			ctrl = fmt.Sprintf(" ctrl[resolved=%v@%d mispred=%v]",
				e.resolved, e.resolveC, e.mispred)
		}
		fmt.Fprintf(&b, "  #%d pc=0x%x %s disp=%v wp=%v%s%s%s\n",
			e.seq, e.d.PC, e.d.Inst.Op, e.dispatched, e.wp, sl.String(), mem, ctrl)
	}
	if s.window.Len() > n {
		fmt.Fprintf(&b, "  ... %d more entries\n", s.window.Len()-n)
	}
	return b.String()
}

// makeCommitRecord fills a CommitRecord from a committing entry.
func (s *Sim) makeCommitRecord(e *entry, rec *CommitRecord) {
	d := &e.d
	*rec = CommitRecord{
		Cycle:   s.now,
		Seq:     e.seq,
		Index:   s.res.Insts,
		PC:      d.PC,
		Inst:    d.Inst,
		NSrc:    d.NSrc,
		SrcVal:  d.SrcVal,
		Dst:     d.Dst,
		DstVal:  d.DstVal,
		Dst2:    d.Dst2,
		Dst2Val: d.Dst2Val,
		EffAddr: d.EffAddr,
		Taken:   d.Taken,
		NextPC:  d.NextPC,
	}
}
