package core

import (
	"pok/internal/bitslice"
	"pok/internal/emu"
	"pok/internal/isa"
	"pok/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Operand availability
// ---------------------------------------------------------------------------

// srcAvail returns when slice `sl` of source operand i of e becomes
// available. announce selects the speculative (load-hit assumed) view used
// for wakeup; the non-announce view is ground truth used at execute.
func (s *Sim) srcAvail(e *entry, i, sl int, announce bool) int64 {
	p := e.srcProd[i]
	if p == nil {
		return 0 // architecturally ready before dispatch
	}
	if p.isLoad {
		if announce {
			return p.memPredDone
		}
		return p.memActualDone
	}
	if p.nSlices == 1 {
		st := &p.slices[0]
		if !st.started {
			return inf
		}
		done := st.startC + int64(p.fullLat)
		if s.cfg.SerialMul && p.d.Inst.Op.SliceProfile() == isa.SliceSerialMul {
			// Bit-serial product: slice sl emerges (nSlices-1-sl) cycles
			// before the final slice, never earlier than one cycle in.
			early := done - int64(s.cfg.Slices-1-min(sl, s.cfg.Slices-1))
			if early < st.startC+1 {
				early = st.startC + 1
			}
			return early
		}
		return done
	}
	if !s.cfg.PartialBypass {
		// Atomic operands: wait for the producer's last slice.
		last := &p.slices[p.nSlices-1]
		if !last.started {
			return inf
		}
		return last.startC + 1
	}
	if sl >= p.nSlices {
		sl = p.nSlices - 1
	}
	if sl > 0 && p.narrow {
		// Narrow result: the upper slices are a known extension of the
		// low slice and become available with it.
		return p.slices[0].avail()
	}
	return p.slices[sl].avail()
}

// depsAvail computes when slice sl of e can begin executing, considering
// the slice-dependence profile, the carry chain, and in-order slice
// issue when out-of-order slices are disabled.
func (s *Sim) depsAvail(e *entry, sl int, announce bool) int64 {
	t := e.dispC + int64(s.cfg.RFStages) + 1 // earliest possible execute
	if st := &e.slices[sl]; st.retryC > t {
		t = st.retryC
	}
	op := e.d.Inst.Op
	if e.nSlices == 1 {
		// Full-width: all slices of all sources.
		for i := 0; i < e.d.NSrc; i++ {
			for k := 0; k < s.cfg.Slices; k++ {
				if a := s.srcAvail(e, i, k, announce); a > t {
					t = a
				}
			}
		}
		return t
	}
	lo, hi, carry := op.InputSliceRange(sl, e.nSlices)
	for i := 0; i < e.d.NSrc; i++ {
		// A store's data operand is not consumed by the address-generation
		// slices; it is handled by the LSQ.
		if i == e.dataSrc {
			continue
		}
		// Variable shifts additionally need slice 0 of the amount operand.
		if i == e.amountSrc {
			if a := s.srcAvail(e, i, 0, announce); a > t {
				t = a
			}
			continue
		}
		for k := lo; k < hi; k++ {
			if a := s.srcAvail(e, i, k, announce); a > t {
				t = a
			}
		}
	}
	if carry || !s.cfg.OoOSlices {
		if sl > 0 {
			prev := &e.slices[sl-1]
			if !prev.started {
				return inf
			}
			if a := prev.startC + 1; a > t {
				t = a
			}
		}
	}
	return t
}

// retryAt returns the cycle a replayed slice-op may try again, given the
// ground-truth availability observed at the failed issue. When that time
// is still unknown — the producer is a partial-tag load whose completion
// awaits its full address — the op must not latch the unreachable time
// (doing so parked the slice forever and livelocked the machine); it
// retries as soon as it wins an issue slot again, replaying until the
// operand's true arrival is established.
func retryAt(act int64) int64 {
	if act >= inf {
		return 0
	}
	return act
}

// replayCause classifies a failed speculative issue for the telemetry
// stream: an unknown (inf) ground-truth availability means the producer
// is a partial-tag load still awaiting its full address; anything else
// is an over-optimistic load-hit announcement.
func replayCause(act int64) int64 {
	if act >= inf {
		return telemetry.ReplayPendingAddr
	}
	return telemetry.ReplayLoadLatency
}

// needsAmount reports whether the op's first source is a shift amount
// (variable shifts encode the amount in rs, which maps to source 0).
func needsAmount(op isa.Op) bool {
	return op == isa.OpSLLV || op == isa.OpSRLV || op == isa.OpSRAV
}

// criticalProducer identifies the dataflow edge that gated slice sl of e
// at its (successful) issue: the input whose ground-truth availability
// was latest. The encoding lands in EvSliceIssue.Arg so the offline
// critical-path extractor (internal/profile) can rebuild the per-slice
// dependence DAG without register state:
//
//	> 0  seq+1 of the latest-arriving register producer
//	  -1  the entry's own previous slice (carry chain / in-order issue)
//	   0  no in-flight producer (operands ready at dispatch)
//
// Ties between a register producer and the carry chain go to the carry
// chain (the structural hazard is the binding constraint). The function
// is a pure read of producer state shared by both schedulers, so the
// cross-scheduler golden event-stream test covers it.
func (s *Sim) criticalProducer(e *entry, sl int) int64 {
	bestT := int64(0)
	bestSeq := int64(0)
	track := func(i int, t int64) {
		if p := e.srcProd[i]; p != nil && t > bestT {
			bestT = t
			bestSeq = int64(p.seq) + 1
		}
	}
	op := e.d.Inst.Op
	if e.nSlices == 1 {
		for i := 0; i < e.d.NSrc; i++ {
			mx := int64(-1)
			for k := 0; k < s.cfg.Slices; k++ {
				if a := s.srcAvail(e, i, k, false); a > mx {
					mx = a
				}
			}
			track(i, mx)
		}
		return bestSeq
	}
	lo, hi, carry := op.InputSliceRange(sl, e.nSlices)
	for i := 0; i < e.d.NSrc; i++ {
		if i == e.dataSrc {
			continue // a store's data operand is not consumed by agen
		}
		if i == e.amountSrc {
			track(i, s.srcAvail(e, i, 0, false))
			continue
		}
		mx := int64(-1)
		for k := lo; k < hi; k++ {
			if a := s.srcAvail(e, i, k, false); a > mx {
				mx = a
			}
		}
		track(i, mx)
	}
	if (carry || !s.cfg.OoOSlices) && sl > 0 {
		if prev := &e.slices[sl-1]; prev.started {
			if t := prev.startC + 1; t >= bestT && t > 0 {
				return -1
			}
		}
	}
	return bestSeq
}

// depsAvailC is the memoizing wrapper around depsAvail used by the
// event-driven scheduler: the result is cached per (slice, announce) and
// invalidated only when a producer event (or the entry's own replay or
// slice execution) could change it, so quiet cycles recompute nothing.
func (s *Sim) depsAvailC(e *entry, sl int, announce bool) int64 {
	a := 0
	if announce {
		a = 1
	}
	if e.depsOK[sl][a] {
		return e.depsVal[sl][a]
	}
	v := s.depsAvail(e, sl, announce)
	e.depsVal[sl][a], e.depsOK[sl][a] = v, true
	return v
}

// onSliceExecuted handles per-slice side effects: branch resolution and
// LSQ address updates.
func (s *Sim) onSliceExecuted(e *entry, sl int) {
	availC := e.slices[sl].startC + 1
	if e.nSlices == 1 {
		availC = e.slices[sl].startC + int64(e.fullLat)
	}
	if s.collecting {
		s.emit(telemetry.EvSliceComplete, e.seq, int8(sl), availC, 0)
	}

	if e.isCtrl && !e.resolved {
		s.maybeResolveBranch(e, sl, availC)
	}

	if (e.isLoad || e.isStore) && e.lsqInserted {
		// Address-generation progress: after slice sl completes, bits
		// [0, (sl+1)*W) of the effective address are known.
		if q := e.lsqEnt; q != nil {
			known := (sl + 1) * s.cfg.SliceWidth()
			if e.nSlices == 1 {
				known = 32
			}
			if known > q.KnownBits {
				q.KnownBits = known
			}
		}
	}
}

// branchOperands returns the two compared values of a conditional branch.
func branchOperands(d *emu.DynInst) (a, b uint32) {
	switch d.NSrc {
	case 2:
		return d.SrcVal[0], d.SrcVal[1]
	case 1:
		return d.SrcVal[0], 0
	default:
		return 0, 0
	}
}

// maybeResolveBranch updates resolution state after slice sl of a control
// instruction has executed (its comparison result available at availC).
func (s *Sim) maybeResolveBranch(e *entry, sl int, availC int64) {
	op := e.d.Inst.Op
	// Jumps and full-width control resolve when their single op executes.
	if e.nSlices == 1 {
		s.resolveBranchAt(e, availC, false)
		return
	}
	a, b := branchOperands(&e.d)
	if s.cfg.EarlyBranch && op.EqualityBranch() && e.mispred {
		// A mispredicted equality branch asserted the wrong relation. If
		// the operands differ in this very slice, the comparison just
		// performed refutes the prediction immediately.
		w := s.cfg.SliceWidth()
		if !bitslice.MatchField(a, b, sl*w, w) {
			s.resolveBranchAt(e, availC, true)
			return
		}
	}
	// Otherwise resolution requires the complete comparison.
	if allSlicesStarted(e) {
		s.resolveBranchAt(e, lastSliceAvail(e), false)
	}
}

// markSliceIssued records the execution start of slice sl in both the
// per-slice struct and the entry's SoA mirrors (startedMask, execEnd), so
// the per-cycle consumers below stay one-compare operations.
func markSliceIssued(e *entry, sl int, now int64) {
	st := &e.slices[sl]
	st.started = true
	st.startC = now
	e.startedMask |= uint8(1) << uint(sl)
	end := now + 1
	if e.nSlices == 1 {
		end = now + int64(e.fullLat)
	}
	if end > e.execEnd {
		e.execEnd = end
	}
}

func allSlicesStarted(e *entry) bool {
	return e.startedMask == e.fullMask
}

// lastSliceAvail is valid once allSlicesStarted: execEnd accumulated the
// maximum per-slice availability as the slices issued.
func lastSliceAvail(e *entry) int64 {
	return e.execEnd
}

func (s *Sim) resolveBranchAt(e *entry, c int64, early bool) {
	if e.resolved && e.resolveC <= c {
		return
	}
	e.resolved = true
	e.resolveC = c
	if s.tracing {
		s.trace("resolve  #%d at %d early=%v mispred=%v", e.seq, c, early, e.mispred)
	}
	if s.collecting {
		flags := int64(0)
		if e.mispred {
			flags |= telemetry.ResolveMispredict
		}
		if early {
			flags |= telemetry.ResolveEarly
		}
		s.emit(telemetry.EvBranchResolve, e.seq, -1, c, flags)
	}
	if early {
		e.earlyResolved = true
		s.res.EarlyResolved++
	}
}
