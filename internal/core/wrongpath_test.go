package core

import "testing"

// mispredictHeavy is an LCG-driven unpredictable branch kernel with work
// on both paths and a store on the (often wrong) taken path.
const mispredictHeavy = `
.data
buf: .space 256
.text
main:
	li $s0, 2000
	li $s7, 424243
	la $s1, buf
loop:
	li $t8, 1103515245
	mult $s7, $t8
	mflo $s7
	addiu $s7, $s7, 12345
	srl $t0, $s7, 13
	andi $t0, $t0, 1
	beq $t0, $zero, skip
	andi $t1, $s7, 252
	addu $t2, $s1, $t1
	sw $s0, 0($t2)
	lw $t3, 0($t2)
	addu $s2, $s2, $t3
skip:
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`

// TestWrongPathRunsAndSquashes: enabling wrong-path simulation fetches
// and squashes speculative instructions without changing the committed
// instruction stream.
func TestWrongPathRunsAndSquashes(t *testing.T) {
	off := BaseConfig()
	on := BaseConfig()
	on.WrongPath = true
	on.Name = "base+wp"

	roff := run(t, mustProg(t, mispredictHeavy), off)
	ron := run(t, mustProg(t, mispredictHeavy), on)

	if ron.Insts != roff.Insts {
		t.Fatalf("committed counts diverge: %d vs %d", ron.Insts, roff.Insts)
	}
	if ron.WrongPathInsts == 0 {
		t.Fatal("no wrong-path instructions simulated")
	}
	if roff.WrongPathInsts != 0 {
		t.Fatal("wrong-path counter active while disabled")
	}
	if ron.Mispredicts == 0 || ron.Mispredicts != roff.Mispredicts {
		t.Fatalf("mispredict counts diverge: %d vs %d", ron.Mispredicts, roff.Mispredicts)
	}
	// Wrong-path loads pollute the D-cache: same committed loads, more
	// cache accesses => (weakly) different miss behaviour is allowed, but
	// correct-path load counts must match exactly.
	if ron.Loads != roff.Loads {
		t.Fatalf("correct-path load counts diverge: %d vs %d", ron.Loads, roff.Loads)
	}
}

// TestWrongPathDeterministic: back-to-back wrong-path runs are identical.
func TestWrongPathDeterministic(t *testing.T) {
	cfg := BitSliced(2)
	cfg.WrongPath = true
	r1 := run(t, mustProg(t, mispredictHeavy), cfg)
	r2 := run(t, mustProg(t, mispredictHeavy), cfg)
	if *r1 != *r2 {
		t.Fatalf("nondeterministic:\n%+v\n%+v", r1, r2)
	}
}

// TestWrongPathWithBitSlicing: the full machine with every technique plus
// wrong-path simulation completes and stays architecturally clean.
func TestWrongPathWithBitSlicing(t *testing.T) {
	for _, sliceBy := range []int{2, 4} {
		cfg := BitSliced(sliceBy)
		cfg.WrongPath = true
		r := run(t, mustProg(t, mispredictHeavy), cfg)
		if r.Insts == 0 || r.WrongPathInsts == 0 {
			t.Fatalf("x%d: %+v", sliceBy, r)
		}
	}
}

// TestWrongPathBudget: instruction budgets count only correct-path
// instructions.
func TestWrongPathBudget(t *testing.T) {
	cfg := BaseConfig()
	cfg.WrongPath = true
	r, err := Run(mustProg(t, mispredictHeavy), cfg, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 5000 {
		t.Fatalf("committed %d, want 5000", r.Insts)
	}
}

// TestAllConfigsCommitSameInstructions: timing configuration must never
// change the architectural instruction stream — every machine commits
// exactly the same count for the same program and budget.
func TestAllConfigsCommitSameInstructions(t *testing.T) {
	configs := []Config{
		BaseConfig(), SimplePipelined(2), SimplePipelined(4),
		BitSliced(2), BitSliced(4),
	}
	wp := BitSliced(2)
	wp.WrongPath = true
	wp.Name = "bit-slice-x2+wp"
	nw := BitSliced(4)
	nw.NarrowWidth = true
	nw.SerialMul = true
	nw.SumAddressed = true
	nw.Name = "bit-slice-x4+ext"
	configs = append(configs, wp, nw)

	var want uint64
	for i, cfg := range configs {
		r, err := Run(mustProg(t, mispredictHeavy), cfg, 8000)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if i == 0 {
			want = r.Insts
			continue
		}
		if r.Insts != want {
			t.Fatalf("%s committed %d, want %d", cfg.Name, r.Insts, want)
		}
		if r.IPC > float64(cfg.CommitWidth) {
			t.Fatalf("%s: IPC %.2f exceeds commit width", cfg.Name, r.IPC)
		}
	}
}
