// Drain-based architectural checkpointing. A checkpoint is taken only at
// a quiescent pipeline boundary: when the committed-instruction count
// reaches the next mark (or an asynchronous stop is requested), correct-
// path fetch pauses and the machine keeps cycling until every in-flight
// instruction has committed or been squashed. At that boundary the
// emulator sits exactly at the commit frontier — fetch runs it ahead of
// commit, but with the fetch buffer and window empty and no peeked
// instruction pending, everything it executed has committed — so the
// snapshot needs no speculative state at all: memory pages + registers,
// the warm predictor/cache/TLB arrays, a small fixed set of timing-core
// scalars, and opaque sections for the injector and telemetry.
//
// The drain inserts pipeline bubbles, so a checkpointing run's timing
// differs from a non-checkpointing run's — deterministically. The
// guarantee is therefore cadence-relative: a run resumed from any
// checkpoint is bit-identical (Result, commit stream, telemetry events)
// to an uninterrupted run with the same -ckpt-every cadence, and a run
// with checkpointing off is bit-identical to one built before this layer
// existed.
package core

import (
	"encoding/json"
	"fmt"

	"pok/internal/bpred"
	"pok/internal/cache"
	"pok/internal/ckpt"
	"pok/internal/emu"
	"pok/internal/lsq"
	"pok/internal/telemetry"
)

// StateSnapshotter is implemented by pluggable observers — the fault
// injector — whose dynamic state must travel with a checkpoint for the
// resumed run to make identical decisions. SnapshotState is called only
// at quiescent boundaries, so implementations may omit per-instruction
// in-flight state (nothing is in flight) and serialize just the
// monotonic counters and caps that outlive instructions.
type StateSnapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

// Extra-section names contributed by the core and its observers.
const (
	extraInject    = "inject"
	extraTelemetry = "telemetry"
)

// SetCheckpoint arms periodic checkpointing: a snapshot is handed to
// sink every `every` committed instructions (at the first quiescent
// boundary past each multiple). benchmark labels Meta for run-identity
// checks at resume. With every == 0 the sink still receives the final
// snapshot of a RequestStop, and nothing else. Call before Run.
//
// On a Sim built by NewSimFromSnapshot the restored next-mark is kept,
// so resuming with the same cadence hits the same future marks as the
// uninterrupted run.
func (s *Sim) SetCheckpoint(every uint64, sink ckpt.Sink, benchmark string) {
	s.ckptEvery = every
	s.ckptSink = sink
	s.ckptBench = benchmark
	if every > 0 && s.nextCkpt <= s.res.Insts {
		next := every
		for next <= s.res.Insts {
			next += every
		}
		s.nextCkpt = next
	}
}

// RequestStop asks the run to end early: fetch pauses, the pipeline
// drains, a final snapshot goes to the checkpoint sink (if any), and Run
// returns a partial Result with Stopped set. Safe to call from another
// goroutine (signal handlers, watchdogs); the first reason wins.
func (s *Sim) RequestStop(reason string) {
	r := reason
	s.stopFlag.CompareAndSwap(nil, &r)
}

func (s *Sim) stopReason() string {
	if r := s.stopFlag.Load(); r != nil {
		return *r
	}
	return ""
}

// quiescent reports whether the pipeline holds no speculative state at
// all: nothing in flight, no peeked instruction, no wrong-path fork, no
// pending memory-stage or scheduler work. Only then is the emulator
// exactly at the commit frontier and a snapshot self-contained.
func (s *Sim) quiescent() bool {
	return s.window.Len() == 0 && s.fetchBuf.Len() == 0 && !s.pendingOK &&
		s.wpFork == nil && s.wpBranch == nil && s.fetchBlockedBy == nil &&
		len(s.memWatch) == 0 && s.lsq.Len() == 0 && len(s.ready) == 0
}

// schedulerKind/emulatorKind name the run flavor for Meta.
func (s *Sim) schedulerKind() string {
	if s.legacy {
		return "legacy"
	}
	return "event"
}

func (s *Sim) emulatorKind() string {
	if s.cfg.LegacyEmulator {
		return "legacy"
	}
	return "fast"
}

// coreCkpt is the timing core's own snapshot section: the scalars that
// survive a quiescent boundary. Everything else (window, fetch buffer,
// rename map, wheel, LSQ, entry pool) is provably empty or reconstructed
// deterministically.
type coreCkpt struct {
	Now           int64  `json:"now"`
	LastCommit    int64  `json:"last_commit"`
	FetchedCnt    uint64 `json:"fetched"`
	SeqCtr        uint64 `json:"seq_ctr"`
	FetchStallTo  int64  `json:"fetch_stall_to"`
	LastFetchLine uint32 `json:"last_fetch_line"`
	HaveLine      bool   `json:"have_line"`
	TraceDone     bool   `json:"trace_done"`
	DivFree       int64  `json:"div_free"`
	FpmdFree      int64  `json:"fpmd_free"`
	NextCkpt      uint64 `json:"next_ckpt"`
	Res           Result `json:"result"`
}

// checkpointNow captures a snapshot at the current (quiescent) boundary
// and hands it to the sink. A nil sink is a no-op, so a plain
// RequestStop without checkpointing still drains cleanly.
func (s *Sim) checkpointNow() error {
	if s.ckptSink == nil {
		return nil
	}
	snap, err := s.captureSnapshot(s.ckptSink.WantFull())
	if err != nil {
		return fmt.Errorf("core: checkpoint at %d insts: %w", s.res.Insts, err)
	}
	if err := s.ckptSink.Write(snap); err != nil {
		return fmt.Errorf("core: checkpoint at %d insts: %w", s.res.Insts, err)
	}
	return nil
}

// captureSnapshot builds a complete snapshot of the quiescent machine.
// With full == false the emulator contributes only pages dirtied since
// the previous capture (a delta the ckpt layer chains to its base).
func (s *Sim) captureSnapshot(full bool) (*ckpt.Snapshot, error) {
	if !s.quiescent() {
		return nil, fmt.Errorf("core: snapshot of a non-quiescent pipeline")
	}
	emuSt, err := s.em.Snapshot(!full)
	if err != nil {
		return nil, err
	}
	predSt, err := s.pred.State()
	if err != nil {
		return nil, err
	}
	cc := coreCkpt{
		Now:           s.now,
		LastCommit:    s.lastCommitC,
		FetchedCnt:    s.fetchedCnt,
		SeqCtr:        s.seqCtr,
		FetchStallTo:  s.fetchStallTo,
		LastFetchLine: s.lastFetchLine,
		HaveLine:      s.haveLine,
		TraceDone:     s.traceDone,
		DivFree:       s.divFree,
		FpmdFree:      s.fpmdFree,
		NextCkpt:      s.nextCkpt,
		Res:           s.res,
	}
	cc.Res.Telemetry = nil // travels as its own section; see below
	coreBytes, err := json.Marshal(&cc)
	if err != nil {
		return nil, err
	}
	snap := &ckpt.Snapshot{
		Meta: ckpt.Meta{
			Benchmark: s.ckptBench,
			Config:    s.cfg.Name,
			Scheduler: s.schedulerKind(),
			Emulator:  s.emulatorKind(),
			Insts:     s.res.Insts,
			Cycles:    s.now,
		},
		Emu:   emuSt,
		Bpred: predSt,
		Hier:  s.hier.State(),
		Core:  coreBytes,
	}
	if s.dtlb != nil {
		snap.DTLB = s.dtlb.State()
	}
	extra := make(map[string][]byte)
	if s.injOn {
		if ss, ok := s.inj.(StateSnapshotter); ok {
			b, err := ss.SnapshotState()
			if err != nil {
				return nil, fmt.Errorf("core: injector snapshot: %w", err)
			}
			extra[extraInject] = b
		}
	}
	if s.collecting {
		sum := s.tel.Summary()
		if s.baseTel != nil {
			m := s.baseTel.Clone()
			m.Merge(sum)
			sum = m
		}
		b, err := json.Marshal(sum)
		if err != nil {
			return nil, fmt.Errorf("core: telemetry snapshot: %w", err)
		}
		extra[extraTelemetry] = b
	}
	if len(extra) > 0 {
		snap.Extra = extra
	}
	return snap, nil
}

// NewSimFromSnapshot rebuilds a simulation mid-run from a full (chain-
// resolved) snapshot. cfg must describe the same machine the snapshot
// was taken under — same config name, scheduler and emulator flavor, and
// the same observer set (oracle, invariants, injector, collector); the
// run-identity fields are verified here, the rest is the caller's
// contract. maxInsts is the absolute committed-instruction budget, as in
// NewSim (0 = run to program exit).
//
// The resumed run is bit-identical to the uninterrupted run with the
// same checkpoint cadence: every Result field, every commit record and
// every telemetry event from the resume point on. Telemetry accumulated
// before the snapshot is folded back into the final Result's summary;
// the event ring restarts empty (failure traces after a resume cover
// only post-resume events).
func NewSimFromSnapshot(snap *ckpt.Snapshot, cfg Config, maxInsts uint64) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if snap.Emu == nil {
		return nil, fmt.Errorf("core: snapshot has no emulator state")
	}
	if snap.Emu.Partial {
		return nil, fmt.Errorf("core: refusing a delta snapshot; resolve the chain with ckpt.LoadChain first")
	}
	if snap.Meta.Config != cfg.Name {
		return nil, fmt.Errorf("core: snapshot taken under config %q, resuming with %q",
			snap.Meta.Config, cfg.Name)
	}
	sched := "event"
	if cfg.LegacyScheduler {
		sched = "legacy"
	}
	if snap.Meta.Scheduler != sched {
		return nil, fmt.Errorf("core: snapshot taken under %s scheduler, resuming with %s",
			snap.Meta.Scheduler, sched)
	}
	emuKind := "fast"
	if cfg.LegacyEmulator {
		emuKind = "legacy"
	}
	if snap.Meta.Emulator != emuKind {
		return nil, fmt.Errorf("core: snapshot taken under %s emulator, resuming with %s",
			snap.Meta.Emulator, emuKind)
	}
	if len(snap.Core) == 0 {
		return nil, fmt.Errorf("core: snapshot has no timing-core section")
	}
	var cc coreCkpt
	if err := json.Unmarshal(snap.Core, &cc); err != nil {
		return nil, fmt.Errorf("core: timing-core section: %w", err)
	}

	em, err := emu.NewFromState(snap.Emu)
	if err != nil {
		return nil, err
	}
	if em.Legacy() != cfg.LegacyEmulator {
		return nil, fmt.Errorf("core: emulator state flavor disagrees with config")
	}
	pred := bpred.NewDefault()
	if cfg.UseBimodal {
		pred.Dir = bpred.NewBimodal(16)
	}
	if cfg.UseLocal {
		pred.Dir = bpred.NewLocal(12, 14)
	}
	if snap.Bpred == nil {
		return nil, fmt.Errorf("core: snapshot has no branch-predictor state")
	}
	if err := pred.Restore(snap.Bpred); err != nil {
		return nil, err
	}
	var dtlb *cache.TLB
	if cfg.UseDTLB {
		if snap.DTLB == nil {
			return nil, fmt.Errorf("core: config uses a DTLB but the snapshot has no DTLB state")
		}
		dtlb = cache.DefaultDTLB()
		if err := dtlb.Restore(snap.DTLB); err != nil {
			return nil, err
		}
	} else if snap.DTLB != nil {
		return nil, fmt.Errorf("core: snapshot has DTLB state but the config uses none")
	}
	hier := cfg.Hierarchy()
	if snap.Hier == nil {
		return nil, fmt.Errorf("core: snapshot has no cache-hierarchy state")
	}
	if err := hier.Restore(snap.Hier); err != nil {
		return nil, err
	}

	s := &Sim{
		cfg:        cfg,
		em:         em,
		pred:       pred,
		dtlb:       dtlb,
		hier:       hier,
		lsq:        lsq.New(cfg.LSQSize),
		legacy:     cfg.LegacyScheduler,
		tracing:    cfg.Trace != nil,
		collecting: cfg.Collector != nil,
		oracleOn:   cfg.Oracle != nil,
		invOn:      cfg.Invariants != nil,
		injOn:      cfg.Inject != nil,
		inj:        cfg.Inject,
		tel:        cfg.Collector,
		maxInsts:   maxInsts,
		resumed:    true,
	}
	s.now = cc.Now
	s.lastCommitC = cc.LastCommit
	s.res = cc.Res
	s.res.Telemetry = nil
	s.fetchedCnt = cc.FetchedCnt
	s.seqCtr = cc.SeqCtr
	s.fetchStallTo = cc.FetchStallTo
	s.lastFetchLine = cc.LastFetchLine
	s.haveLine = cc.HaveLine
	s.traceDone = cc.TraceDone
	s.divFree = cc.DivFree
	s.fpmdFree = cc.FpmdFree
	s.nextCkpt = cc.NextCkpt

	if b, ok := snap.Extra[extraInject]; ok {
		ss, can := cfg.Inject.(StateSnapshotter)
		if !can {
			return nil, fmt.Errorf("core: snapshot carries injector state but cfg.Inject cannot restore it")
		}
		if err := ss.RestoreState(b); err != nil {
			return nil, fmt.Errorf("core: injector restore: %w", err)
		}
	} else if _, can := cfg.Inject.(StateSnapshotter); can {
		return nil, fmt.Errorf("core: cfg.Inject expects injector state but the snapshot has none")
	}
	if b, ok := snap.Extra[extraTelemetry]; ok && s.collecting {
		var sum telemetry.Summary
		if err := json.Unmarshal(b, &sum); err != nil {
			return nil, fmt.Errorf("core: telemetry section: %w", err)
		}
		s.baseTel = &sum
	}

	s.wh.ovMin = inf
	if !s.legacy {
		backing := make([]cand, wheelHorizon*4)
		for i := range s.wh.bucket {
			s.wh.bucket[i] = backing[i*4 : i*4 : (i+1)*4]
		}
	}
	s.skipOK = !s.legacy && !s.tracing && !s.collecting && !s.invOn && !s.injOn
	return s, nil
}
