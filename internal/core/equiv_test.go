package core

import (
	"fmt"
	"testing"

	"pok/internal/workload"
)

// The differential half of the scheduler rewrite: the event-driven
// ready-queue scheduler (sched_event.go, memory.go) must be cycle-exact
// against the original full-window scan (sched_legacy.go) — not just
// IPC-close, but identical on every counter in Result. Each subtest runs
// the same program twice, once per scheduler, and compares the structs
// wholesale.

// runBoth runs cfg with both schedulers and fails the test unless the
// Result structs are identical.
func runBoth(t *testing.T, name string, w *workload.Workload, cfg Config, maxInsts uint64) {
	t.Helper()
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	legacy := cfg
	legacy.LegacyScheduler = true
	rl, err := RunWarm(prog, legacy, w.FastForward, maxInsts)
	if err != nil {
		t.Fatalf("%s legacy: %v", name, err)
	}
	prog2, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	event := cfg
	event.LegacyScheduler = false
	re, err := RunWarm(prog2, event, w.FastForward, maxInsts)
	if err != nil {
		t.Fatalf("%s event: %v", name, err)
	}
	if *rl != *re {
		t.Errorf("%s: schedulers diverge\nlegacy:\n%s\nevent:\n%s",
			name, rl.Summary(), re.Summary())
	}
}

// TestEventSchedulerMatchesLegacy sweeps every Table 1 workload under the
// slice-by-2 and slice-by-4 bit-sliced machines at 100k instructions.
// Short mode trims the budget so the race-detector smoke job stays fast;
// the full sweep still runs on every plain `go test`.
func TestEventSchedulerMatchesLegacy(t *testing.T) {
	insts := uint64(100_000)
	if testing.Short() {
		insts = 20_000
	}
	for _, bench := range workload.Names() {
		w := workload.MustGet(bench)
		for _, slices := range []int{2, 4} {
			cfg := BitSliced(slices)
			name := fmt.Sprintf("%s/x%d", bench, slices)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				runBoth(t, name, w, cfg, insts)
			})
		}
	}
}

// TestEventSchedulerMatchesLegacyConfigs stresses the corners the
// benchmark sweep does not reach: full-width baseline, simple pipelining,
// and a kitchen-sink machine with every second-order feature enabled
// (wrong-path execution, narrow-width, serial multiplier, sum-addressed
// decoder, DTLB, bounded issue queues).
func TestEventSchedulerMatchesLegacyConfigs(t *testing.T) {
	const insts = 100_000
	kitchen := BitSliced(4)
	kitchen.Name = "kitchen-sink"
	kitchen.WrongPath = true
	kitchen.NarrowWidth = true
	kitchen.SerialMul = true
	kitchen.SumAddressed = true
	kitchen.UseDTLB = true
	kitchen.IssueQueueSize = 16

	wp2 := BitSliced(2)
	wp2.Name = "bit-slice-x2+wp"
	wp2.WrongPath = true

	configs := []Config{BaseConfig(), SimplePipelined(2), SimplePipelined(4), wp2, kitchen}
	for _, bench := range []string{"li", "mcf", "gcc"} {
		w := workload.MustGet(bench)
		for _, cfg := range configs {
			cfg := cfg
			name := fmt.Sprintf("%s/%s", bench, cfg.Name)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				runBoth(t, name, w, cfg, insts)
			})
		}
	}
}
