package core

// deque is a growable ring buffer of window entries. PopFront/PushBack
// are O(1) and allocation-free once the backing array has warmed up,
// unlike the slide-forward slice idiom ("w = w[1:]" + append) it
// replaces, which reallocates the whole backing array every WindowSize
// commits. The backing array length is always a power of two so index
// arithmetic is a mask.
type deque struct {
	buf  []*entry
	head int
	n    int
}

// Len returns the number of entries currently queued.
func (d *deque) Len() int { return d.n }

// At returns the i-th entry from the front (0 = oldest).
func (d *deque) At(i int) *entry { return d.buf[(d.head+i)&(len(d.buf)-1)] }

// Front returns the oldest entry. The deque must be non-empty.
func (d *deque) Front() *entry { return d.At(0) }

// PushBack appends an entry at the tail.
func (d *deque) PushBack(e *entry) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = e
	d.n++
}

// PopFront removes and returns the oldest entry.
func (d *deque) PopFront() *entry {
	e := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return e
}

// Truncate keeps the first keep entries and drops the rest (used by
// wrong-path squash, which discards the youngest suffix of the window).
func (d *deque) Truncate(keep int) {
	for i := keep; i < d.n; i++ {
		d.buf[(d.head+i)&(len(d.buf)-1)] = nil
	}
	d.n = keep
}

// Clear empties the deque, releasing entry references for the pool.
func (d *deque) Clear() { d.Truncate(0) }

func (d *deque) grow() {
	size := 2 * len(d.buf)
	if size == 0 {
		size = 16
	}
	nb := make([]*entry, size)
	for i := 0; i < d.n; i++ {
		nb[i] = d.At(i)
	}
	d.buf, d.head = nb, 0
}
