package core

import (
	"errors"
	"strings"
	"testing"
)

// wedgeInjector is a minimal core.Injector that corrupts slice 0 of one
// chosen instruction on *every* issue attempt. The slice-op can then
// never pass verify, its dependents can never commit, and the machine is
// wedged by construction — exactly the condition the deadlock watchdog
// must convert into a structured error instead of an infinite loop.
type wedgeInjector struct {
	seq uint64
}

func (w *wedgeInjector) FlipSlice(seq uint64, sl int) bool { return seq == w.seq && sl == 0 }
func (w *wedgeInjector) ForceWayMiss(uint64) bool          { return false }
func (w *wedgeInjector) ForceAliasConflict(uint64) bool    { return false }
func (w *wedgeInjector) MutateCommit(*CommitRecord)        {}

// TestDeadlockWatchdog wedges one instruction forever and checks that
// both schedulers abort with a structured *DeadlockError — identifiable
// via errors.Is(err, ErrDeadlock) — whose dump names the wedged pipeline
// state, well before the instruction budget would have been reached.
func TestDeadlockWatchdog(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		name := "event"
		if legacy {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			cfg := BitSliced(2)
			cfg.LegacyScheduler = legacy
			cfg.Inject = &wedgeInjector{seq: 200}
			cfg.Invariants = &InvariantConfig{DeadlockBudget: 1_500}
			_, err := Run(mustProg(t, mispredictHeavy), cfg, 100_000)
			if err == nil {
				t.Fatal("wedged machine completed its run")
			}
			if !errors.Is(err, ErrDeadlock) {
				t.Fatalf("want ErrDeadlock, got %v", err)
			}
			var de *DeadlockError
			if !errors.As(err, &de) {
				t.Fatalf("error is not a *DeadlockError: %v", err)
			}
			if de.Budget != 1_500 {
				t.Errorf("budget %d, configured 1500", de.Budget)
			}
			if de.Committed == 0 {
				t.Error("no instructions committed before the wedge")
			}
			if de.Cycle <= de.Budget {
				t.Errorf("watchdog fired at cycle %d, before the budget elapsed", de.Cycle)
			}
			if de.Dump == "" || !strings.Contains(de.Dump, "window=") {
				t.Errorf("dump missing pipeline state:\n%s", de.Dump)
			}
		})
	}
}

// TestDeadlockWatchdogDefaultBudget: the zero-value InvariantConfig must
// select the historic 40k-cycle livelock guard, not a zero budget that
// would trip instantly on a healthy machine.
func TestDeadlockWatchdogDefaultBudget(t *testing.T) {
	cfg := BitSliced(2)
	cfg.Invariants = &InvariantConfig{}
	r, err := Run(mustProg(t, mispredictHeavy), cfg, 8_000)
	if err != nil {
		t.Fatalf("healthy machine tripped the watchdog: %v", err)
	}
	if r.Insts != 8_000 {
		t.Fatalf("committed %d, want 8000", r.Insts)
	}
}
