package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"pok/internal/ckpt"
	"pok/internal/telemetry"
	"pok/internal/workload"
)

// The differential half of the checkpoint layer: a run resumed from any
// snapshot must be bit-identical — every Result counter, every snapshot
// it writes afterwards, every telemetry event — to an uninterrupted run
// with the same checkpoint cadence, on both schedulers and both
// emulator flavors.

// captureSink keeps every snapshot (always full, so each is
// self-contained and resumable) and can request a stop after the Nth
// write, modelling a SIGINT that lands exactly at a checkpoint boundary.
type captureSink struct {
	snaps  []*ckpt.Snapshot
	stopAt int // 1-based write index to stop after; 0 = never
	sim    *Sim
}

func (c *captureSink) WantFull() bool { return true }

func (c *captureSink) Write(s *ckpt.Snapshot) error {
	c.snaps = append(c.snaps, s)
	if c.stopAt > 0 && len(c.snaps) == c.stopAt && c.sim != nil {
		c.sim.RequestStop("test stop")
	}
	return nil
}

// runCkpt builds a sim, arms checkpointing with sink, and runs it.
func runCkpt(t *testing.T, w *workload.Workload, cfg Config, maxInsts, every uint64, sink *captureSink) *Result {
	t.Helper()
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(prog, cfg, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if w.FastForward > 0 {
		if err := s.FastForward(w.FastForward); err != nil {
			t.Fatal(err)
		}
	}
	if sink != nil {
		sink.sim = s
	}
	s.SetCheckpoint(every, sink, w.Name)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resumeCkpt restores from snap, re-arms the same cadence, and runs to
// completion.
func resumeCkpt(t *testing.T, snap *ckpt.Snapshot, cfg Config, maxInsts, every uint64, sink *captureSink) *Result {
	t.Helper()
	s, err := NewSimFromSnapshot(snap, cfg, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if sink != nil {
		sink.sim = s
	}
	s.SetCheckpoint(every, sink, snap.Meta.Benchmark)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResumeBitIdentical kills a checkpointing run at every snapshot and
// resumes it, across the scheduler × emulator matrix. The resumed run's
// Result and every snapshot it writes afterwards must be byte-identical
// to the uninterrupted reference with the same cadence.
func TestResumeBitIdentical(t *testing.T) {
	const maxInsts = 10_000
	const every = 2_500
	w := workload.MustGet("li")
	for _, sched := range []bool{false, true} {
		for _, legacyEmu := range []bool{false, true} {
			sched, legacyEmu := sched, legacyEmu
			name := fmt.Sprintf("sched=%v/emu=%v", schedName(sched), emuName(legacyEmu))
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := BitSliced(4)
				cfg.LegacyScheduler = sched
				cfg.LegacyEmulator = legacyEmu
				ref := &captureSink{}
				refRes := runCkpt(t, w, cfg, maxInsts, every, ref)
				if len(ref.snaps) == 0 {
					t.Fatal("reference run wrote no snapshots")
				}
				for i, snap := range ref.snaps {
					got := &captureSink{}
					res := resumeCkpt(t, snap, cfg, maxInsts, every, got)
					if *res != *refRes {
						t.Errorf("resume from snapshot %d (insts=%d): Result diverges\nref:\n%s\ngot:\n%s",
							i, snap.Meta.Insts, refRes.Summary(), res.Summary())
					}
					// Every snapshot the resumed run writes must be
					// byte-identical to the reference's corresponding one.
					want := ref.snaps[i+1:]
					if len(got.snaps) != len(want) {
						t.Errorf("resume from snapshot %d: wrote %d snapshots, reference wrote %d",
							i, len(got.snaps), len(want))
						continue
					}
					for j := range want {
						if string(ckpt.Encode(got.snaps[j])) != string(ckpt.Encode(want[j])) {
							t.Errorf("resume from snapshot %d: snapshot %d differs from reference", i, j)
						}
					}
				}
			})
		}
	}
}

func schedName(legacy bool) string {
	if legacy {
		return "legacy"
	}
	return "event"
}

func emuName(legacy bool) string {
	if legacy {
		return "legacy"
	}
	return "fast"
}

// TestResumeAfterStop models a SIGINT landing at a checkpoint boundary:
// the run stops with a partial Result, and resuming its last snapshot
// completes to the uninterrupted reference bit-for-bit.
func TestResumeAfterStop(t *testing.T) {
	const maxInsts = 10_000
	const every = 2_000
	w := workload.MustGet("gzip")
	cfg := BitSliced(2)

	ref := &captureSink{}
	refRes := runCkpt(t, w, cfg, maxInsts, every, ref)
	if len(ref.snaps) < 3 {
		t.Fatalf("need >= 3 snapshots, got %d", len(ref.snaps))
	}

	stop := &captureSink{stopAt: 2}
	partial := runCkpt(t, w, cfg, maxInsts, every, stop)
	if !partial.Stopped || partial.StopReason != "test stop" {
		t.Fatalf("stopped run not marked: %+v", partial.Stopped)
	}
	if partial.Insts != stop.snaps[1].Meta.Insts {
		t.Fatalf("partial result at %d insts, last snapshot at %d",
			partial.Insts, stop.snaps[1].Meta.Insts)
	}
	if string(ckpt.Encode(stop.snaps[1])) != string(ckpt.Encode(ref.snaps[1])) {
		t.Fatal("stop-boundary snapshot differs from the uninterrupted run's")
	}

	res := resumeCkpt(t, stop.snaps[1], cfg, maxInsts, every, &captureSink{})
	if *res != *refRes {
		t.Errorf("resume after stop diverges\nref:\n%s\ngot:\n%s", refRes.Summary(), res.Summary())
	}
}

// TestResumeFromDiskDeltaChain drives the on-disk path end to end:
// ckpt.Writer persists dirty-page deltas with periodic rebases, and
// LoadChain + NewSimFromSnapshot must reproduce the reference Result
// from the newest file — resolving a multi-link delta chain on the way.
func TestResumeFromDiskDeltaChain(t *testing.T) {
	const maxInsts = 12_000
	const every = 1_500
	w := workload.MustGet("go")
	cfg := BitSliced(4)

	ref := &captureSink{}
	refRes := runCkpt(t, w, cfg, maxInsts, every, ref)

	dir := t.TempDir()
	wr := &ckpt.Writer{Dir: dir, RebaseEvery: 4}
	prog, err := w.Program(w.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(prog, cfg, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if w.FastForward > 0 {
		if err := s.FastForward(w.FastForward); err != nil {
			t.Fatal(err)
		}
	}
	s.SetCheckpoint(every, wr, w.Name)
	diskRes, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if *diskRes != *refRes {
		t.Fatal("disk-sink run diverges from memory-sink run")
	}
	if wr.Count() < 6 {
		t.Fatalf("want >= 6 snapshots for a delta chain, got %d", wr.Count())
	}

	// Resume from every file in the directory, not just the newest: each
	// chain link must resolve to a resumable full image.
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.pok"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != wr.Count() {
		t.Fatalf("found %d files, wrote %d", len(files), wr.Count())
	}
	for _, f := range files {
		snap, err := ckpt.LoadChain(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if snap.IsDelta() || snap.Emu.Partial {
			t.Fatalf("%s: LoadChain returned a delta", f)
		}
		res := resumeCkpt(t, snap, cfg, maxInsts, every, &captureSink{})
		if *res != *refRes {
			t.Errorf("%s: resume diverges\nref:\n%s\ngot:\n%s",
				f, refRes.Summary(), res.Summary())
		}
	}
}

// TestResumeTelemetryContinuity attaches a recorder on both sides of a
// kill: the resumed run's merged summary and the concatenation of the
// two event streams must equal the uninterrupted reference's.
func TestResumeTelemetryContinuity(t *testing.T) {
	const maxInsts = 6_000
	const every = 2_000
	const ringCap = 1 << 20
	w := workload.MustGet("li")
	cfg := BitSliced(4)

	run := func(sink *captureSink, snap *ckpt.Snapshot) (*Result, *telemetry.Recorder) {
		c := cfg
		rec := c.NewRecorder(ringCap)
		c.Collector = rec
		var s *Sim
		var err error
		if snap == nil {
			prog, perr := w.Program(w.DefaultScale)
			if perr != nil {
				t.Fatal(perr)
			}
			s, err = NewSim(prog, c, maxInsts)
			if err == nil && w.FastForward > 0 {
				err = s.FastForward(w.FastForward)
			}
		} else {
			s, err = NewSimFromSnapshot(snap, c, maxInsts)
		}
		if err != nil {
			t.Fatal(err)
		}
		sink.sim = s
		s.SetCheckpoint(every, sink, w.Name)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, rec
	}

	refSink := &captureSink{}
	refRes, refRec := run(refSink, nil)
	if refRes.Telemetry == nil {
		t.Fatal("reference run has no telemetry")
	}

	stop := &captureSink{stopAt: 1}
	partial, partRec := run(stop, nil)
	if !partial.Stopped {
		t.Fatal("run did not stop")
	}
	res, resRec := run(&captureSink{}, stop.snaps[0])

	if !reflect.DeepEqual(res.Telemetry, refRes.Telemetry) {
		t.Errorf("merged telemetry summary diverges from reference")
	}
	noTel, refNoTel := *res, *refRes
	noTel.Telemetry, refNoTel.Telemetry = nil, nil
	if noTel != refNoTel {
		t.Errorf("Result (telemetry attached) diverges\nref:\n%s\ngot:\n%s",
			refRes.Summary(), res.Summary())
	}

	joined := append(append([]telemetry.Event(nil), partRec.Events()...), resRec.Events()...)
	refEvents := refRec.Events()
	if !reflect.DeepEqual(joined, refEvents) {
		t.Errorf("event streams diverge: ref %d events, joined %d (%d + %d)",
			len(refEvents), len(joined), len(partRec.Events()), len(resRec.Events()))
	}
}

// TestSnapshotConfigMismatchRefused: resuming under a different config,
// scheduler or emulator flavor must be refused, not silently produce a
// different machine.
func TestSnapshotConfigMismatchRefused(t *testing.T) {
	const maxInsts = 4_000
	w := workload.MustGet("li")
	cfg := BitSliced(4)
	sink := &captureSink{}
	runCkpt(t, w, cfg, maxInsts, 1_000, sink)
	if len(sink.snaps) == 0 {
		t.Fatal("no snapshots")
	}
	snap := sink.snaps[0]

	other := BitSliced(2)
	if _, err := NewSimFromSnapshot(snap, other, maxInsts); err == nil {
		t.Error("resume under a different config accepted")
	}
	badSched := cfg
	badSched.LegacyScheduler = true
	if _, err := NewSimFromSnapshot(snap, badSched, maxInsts); err == nil {
		t.Error("resume under a different scheduler accepted")
	}
	badEmu := cfg
	badEmu.LegacyEmulator = true
	if _, err := NewSimFromSnapshot(snap, badEmu, maxInsts); err == nil {
		t.Error("resume under a different emulator flavor accepted")
	}
}
