package core

import "fmt"

// Per-cycle structural invariant checker (Config.Invariants). It runs
// after every stage of a cycle has finished and asserts the machine's
// structural sanity — the properties every stage rewrite (the scheduler
// swap of PR 1, the telemetry threading of PR 2) implicitly relied on
// but nothing enforced:
//
//   - ROB age ordering: window sequence numbers strictly increase and no
//     committed/squashed entry lingers in the window;
//   - occupancy bounds: window, LSQ and issue-queue occupancies never
//     exceed their Table-2 capacities, and the event scheduler's
//     incremental iqCount agrees with a full recount;
//   - serialized slice issue: no slice executes before its predecessor
//     when a carry chain (or in-order slice issue) serializes them;
//   - rename-map sanity: every producer pointer maps a register it
//     actually writes and refers to a live in-flight entry;
//   - LSQ linkage: a window memory op's cached LSQ entry is the one the
//     queue indexes under its sequence number, with sane KnownBits;
//   - replay watchdog: a replayed slice-op whose ground-truth operand
//     arrival is known must re-issue within ReplayBudget cycles of it.
//
// The checker returns an *InvariantError naming the violated rule, the
// offending instruction and a pipeline dump; the run aborts at the first
// violation, the cycle it happens, instead of surfacing thousands of
// cycles later as a wrong Table-1 number or a panic in a leaf package.

// violation builds the error for one failed rule.
func (s *Sim) violation(rule string, seq uint64, format string, args ...any) error {
	return &InvariantError{
		Rule:   rule,
		Cycle:  s.now,
		Seq:    seq,
		Detail: fmt.Sprintf(format, args...),
		Dump:   s.dumpWindow(16),
	}
}

// checkInvariants asserts the structural invariants; called once per
// cycle (or every Invariants.Every cycles) when Config.Invariants is set.
func (s *Sim) checkInvariants() error {
	inv := s.cfg.Invariants
	if every := inv.every(); every > 1 && s.now%every != 0 {
		return nil
	}

	// Occupancy bounds (Table 2 capacities).
	if n := s.window.Len(); n > s.cfg.WindowSize {
		return s.violation("window-capacity", 0, "window holds %d entries, capacity %d",
			n, s.cfg.WindowSize)
	}
	if n := s.lsq.Len(); n > s.cfg.LSQSize {
		return s.violation("lsq-capacity", 0, "LSQ holds %d entries, capacity %d",
			n, s.cfg.LSQSize)
	}
	if !s.legacy {
		if scan := s.iqOccupancyScan(); scan != s.iqCount {
			return s.violation("iq-count", 0, "incremental iqCount %d != recount %d",
				s.iqCount, scan)
		}
	}

	budget := inv.replayBudget()
	var prevSeq uint64
	for i := 0; i < s.window.Len(); i++ {
		e := s.window.At(i)

		// ROB age ordering and liveness.
		if i > 0 && e.seq <= prevSeq {
			return s.violation("rob-order", e.seq, "window entry %d seq %d after seq %d",
				i, e.seq, prevSeq)
		}
		prevSeq = e.seq
		if e.committed {
			return s.violation("rob-live", e.seq, "committed entry still in window")
		}
		if e.squashed {
			return s.violation("rob-live", e.seq, "squashed entry still in window")
		}
		if !e.dispatched {
			return s.violation("rob-dispatched", e.seq, "window entry never dispatched")
		}

		// Serialized slice issue: a slice with a carry-in (or any slice
		// when out-of-order slices are disabled) must not start before
		// its predecessor, and never before the machine's current cycle
		// allows.
		for sl := 0; sl < e.nSlices; sl++ {
			st := &e.slices[sl]
			if st.started && st.startC > s.now {
				return s.violation("slice-time", e.seq, "slice %d started in the future (%d > %d)",
					sl, st.startC, s.now)
			}
			if !st.started || sl == 0 {
				continue
			}
			_, _, carry := e.d.Inst.Op.InputSliceRange(sl, e.nSlices)
			if carry || !s.cfg.OoOSlices {
				prev := &e.slices[sl-1]
				if !prev.started {
					return s.violation("slice-order", e.seq,
						"slice %d executed before slice %d (serialized op %v)",
						sl, sl-1, e.d.Inst.Op)
				}
				if prev.startC > st.startC {
					return s.violation("slice-order", e.seq,
						"slice %d started at %d before predecessor's %d (serialized op %v)",
						sl, st.startC, prev.startC, e.d.Inst.Op)
				}
			}
		}

		// Replay watchdog: once a replayed slice-op's true operand
		// arrival (retryC) is known and has passed, select priority
		// (oldest first) guarantees it re-issues promptly; a budget-sized
		// overshoot means the wakeup path lost it.
		for sl := 0; sl < e.nSlices; sl++ {
			st := &e.slices[sl]
			if !st.started && st.retryC > 0 && s.now-st.retryC > budget {
				return s.violation("replay-reissue", e.seq,
					"slice %d replayed, retry-ready at cycle %d, still not re-issued %d cycles later",
					sl, st.retryC, s.now-st.retryC)
			}
		}

		// LSQ linkage.
		if e.lsqInserted {
			q := s.lsq.Find(e.seq)
			if q == nil {
				return s.violation("lsq-linkage", e.seq, "lsqInserted but queue has no entry")
			}
			if q != e.lsqEnt {
				return s.violation("lsq-linkage", e.seq, "cached LSQ entry differs from queue's")
			}
			if q.KnownBits < 0 || q.KnownBits > 32 {
				return s.violation("lsq-knownbits", e.seq, "KnownBits %d out of range", q.KnownBits)
			}
			if q.IsStore != e.isStore {
				return s.violation("lsq-linkage", e.seq, "LSQ store flag %v != entry %v",
					q.IsStore, e.isStore)
			}
		}
		if e.memPendFull != pendNone && !e.memIssued {
			return s.violation("mem-pending", e.seq, "deferred completion without memory issue")
		}
	}

	// Rename-map sanity: every producer pointer refers to a live entry
	// that writes the register it is indexed under.
	for r := range s.regProd {
		p := s.regProd[r]
		if p == nil {
			continue
		}
		if p.committed || p.squashed {
			return s.violation("rename-live", p.seq,
				"rename map for r%d points at a retired entry", r)
		}
		if int(p.d.Dst) != r && int(p.d.Dst2) != r {
			return s.violation("rename-dest", p.seq,
				"rename map for r%d points at producer of r%d/r%d", r, p.d.Dst, p.d.Dst2)
		}
	}
	return nil
}
