package core

import (
	"pok/internal/cache"
	"pok/internal/lsq"
	"pok/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

// memoryStage is the event-driven memory loop: instead of rescanning the
// whole window, it walks only the entries still needing attention — a
// store whose data is not yet forwardable, a load not yet issued, or a
// partial-tag load whose completion awaits the full address. Entries are
// appended at dispatch (so the list stays in program order, preserving
// cache-port arbitration order) and dropped as soon as their memory
// obligations are met. Loads that establish a completion time fire a
// producer event so dependent slice-ops enter the wakeup wheel.
func (s *Sim) memoryStage() {
	// Compact in place, writing a pointer only when an entry has actually
	// been dropped ahead of it: in the common cycle nothing retires from
	// the watch list and the loop performs no slice writes at all (each
	// *entry store would otherwise pay a GC write barrier).
	w := s.memWatch
	n := 0
	for i, e := range w {
		if e.committed || e.squashed {
			continue // left the machine (squash also scrubs eagerly)
		}
		done := true
		if e.isStore && e.lsqInserted {
			done = s.checkStoreData(e)
		}
		if e.isLoad {
			if !e.memIssued && e.lsqInserted {
				s.tryIssueLoad(e)
				if e.memIssued {
					// The load's (speculative and actual) completion
					// times are now known: wake register dependents.
					s.wakeConsumers(e)
				}
			}
			if e.memIssued && e.memPendFull != pendNone {
				if s.finalizePendingLoad(e) {
					s.wakeConsumers(e)
				}
			}
			if !e.memIssued || e.memPendFull != pendNone {
				done = false
			}
		}
		if !done {
			if n != i {
				w[n] = e
			}
			n++
		}
	}
	for i := n; i < len(w); i++ {
		w[i] = nil
	}
	s.memWatch = w[:n]
}

// scrubMemWatch removes squashed entries eagerly so a recycled entry can
// never be misread through a stale memWatch reference.
func (s *Sim) scrubMemWatch() {
	w := s.memWatch
	n := 0
	for i, e := range w {
		if !e.squashed {
			if n != i {
				w[n] = e
			}
			n++
		}
	}
	for i := n; i < len(w); i++ {
		w[i] = nil
	}
	s.memWatch = w[:n]
}

// checkStoreData marks the store's LSQ entry data-ready once the data
// operand's full value is available, reporting whether the store needs no
// further memory-stage attention.
func (s *Sim) checkStoreData(e *entry) bool {
	q := e.lsqEnt
	if q == nil || q.DataReady {
		return true
	}
	ready := true
	if e.dataSrc >= 0 {
		for k := 0; k < s.cfg.Slices; k++ {
			if s.srcAvail(e, e.dataSrc, k, false) > s.now {
				ready = false
				break
			}
		}
	}
	if ready {
		q.DataReady = true
		e.dataReadyC = s.now // commit attribution: when the data arrived
	}
	return ready
}

// finalizePendingLoad resolves a partial-tag access whose outcome needed
// the full address, once address generation completes. It reports
// whether the completion time was established this cycle.
func (s *Sim) finalizePendingLoad(e *entry) bool {
	_, fullC := s.agenTimes(e)
	if fullC >= inf {
		return false
	}
	switch e.memPendFull {
	case pendWayMispred:
		e.memActualDone = fullC + 1 + int64(s.cfg.L1DLat)
	case pendMiss:
		e.memActualDone = fullC + e.memPendLat
	}
	e.memPendFull = pendNone
	return true
}

// tryIssueLoad attempts to send a load to the memory system this cycle.
func (s *Sim) tryIssueLoad(e *entry) {
	if s.portsUsed >= s.cfg.CachePorts {
		// Port starvation is cycle-local: the retry next cycle may win
		// arbitration, so the next cycle must actually be simulated.
		s.memStarved = true
		return
	}
	q := e.lsqEnt
	if q == nil {
		return
	}
	// How much of the address do we have, and when did we get it?
	partialC, fullC := s.agenTimes(e)
	if s.cfg.PartialTag {
		if partialC > s.now {
			return // not even the low 16 bits yet
		}
	} else if fullC > s.now {
		return
	}

	if s.injOn && s.inj.ForceAliasConflict(e.seq) {
		// Injected disambiguation conflict: treat the load as if a prior
		// store's partial address matched (§5.1 LoadWait); it retries
		// next cycle.
		e.disambigWait = true
		return
	}
	status, fwdSeq := s.lsq.Disambiguate(e.seq, s.cfg.EarlyLSDisambig)
	if status == lsq.LoadWait {
		e.disambigWait = true // commit attribution: LSQ held this load back
		return
	}
	// "Early release": the load issued while its own or some prior store's
	// address was still incomplete — impossible without partial operands.
	early := q.KnownBits < 32
	s.storeScratch = s.lsq.AppendPriorStores(s.storeScratch[:0], e.seq)
	for _, st := range s.storeScratch {
		if !st.AddrKnown() {
			early = true
			break
		}
	}
	if early && !e.wp {
		e.earlyRelease = true
		s.res.LoadsEarlyRelease++
	}
	if status == lsq.LoadForward {
		_ = fwdSeq
		e.memIssued = true
		e.forwarded = true
		e.memPredDone = s.now + 1
		e.memActualDone = s.now + 1
		if !e.wp {
			s.res.StoreForwards++
			s.res.Loads++
		}
		if s.collecting {
			s.emit(telemetry.EvMemIssue, e.seq, -1, e.memActualDone, 1)
		}
		s.portsUsed++
		return
	}

	s.portsUsed++
	e.memIssued = true
	if !e.wp {
		s.res.Loads++
	}
	addr := e.d.EffAddr
	// Data TLB: a miss adds the walk latency to the load's completion
	// (the translation joins the full-tag verification).
	tlbLat := int64(0)
	if s.dtlb != nil {
		walk, _ := s.dtlb.Access(addr)
		tlbLat = int64(walk)
	}
	l1 := s.hier.L1D
	hit := l1.Lookup(addr)
	e.l1Hit = hit

	if s.cfg.PartialTag && fullC > s.now {
		// Partial-tag access: we have the index and a few tag bits only.
		if !e.wp {
			s.res.PartialTagAccess++
		}
		tagBits := l1.KnownTagBits(16)
		kind := l1.ClassifyPartial(addr, tagBits)
		_, _, correct := l1.PredictWay(addr, tagBits)
		if correct && s.injOn && s.inj.ForceWayMiss(e.seq) {
			// Injected MRU way mispredict: the speculative way selection
			// is declared wrong; the access replays at full-address time
			// through the §5.2 verification path.
			correct = false
		}
		lat, _ := s.hier.AccessData(addr)
		switch {
		case kind == cache.ZeroMatch:
			// Miss known early and non-speculatively: the L2 access
			// overlaps the remaining address generation.
			e.earlyMissSignal = true
			if !e.wp {
				s.res.EarlyMissSignals++
			}
			e.memActualDone = s.now + int64(lat)
		case hit && correct:
			// Way prediction verified: data returned before the full
			// address was even generated.
			e.memActualDone = s.now + int64(lat)
		case hit && !correct:
			// Way mispredict: replay the access once the full address
			// arrives (the selective-recovery extension of §7).
			e.wayMispred = true
			if !e.wp {
				s.res.WayMispredicts++
			}
			if fullC < inf {
				e.memActualDone = fullC + 1 + int64(s.cfg.L1DLat)
			} else {
				e.memPendFull = pendWayMispred
				e.memActualDone = inf
			}
		default:
			// Partial match existed but the access misses: the miss is
			// confirmed at full-address time; the refill already started.
			if fullC < inf {
				e.memActualDone = fullC + int64(lat)
			} else {
				e.memPendFull = pendMiss
				e.memPendLat = int64(lat)
				e.memActualDone = inf
			}
		}
		e.memPredDone = s.now + int64(s.cfg.L1DLat)
		e.memActualDone += tlbLat
		if s.tracing {
			s.trace("mem      #%d partial-tag addr=0x%x kind=%v done=%d", e.seq, addr, kind, e.memActualDone)
		}
		if s.collecting {
			s.emit(telemetry.EvPartialVerify, e.seq, -1, int64(kind), b2i(e.wayMispred))
			s.emit(telemetry.EvMemIssue, e.seq, -1, e.memActualDone, 0)
		}
		return
	}

	// Conventional access with the full address.
	lat, _ := s.hier.AccessData(addr)
	e.memActualDone = s.now + int64(lat) + tlbLat
	e.memPredDone = s.now + int64(s.cfg.L1DLat)
	if s.tracing {
		s.trace("mem      #%d conventional addr=0x%x done=%d", e.seq, addr, e.memActualDone)
	}
	if s.collecting {
		s.emit(telemetry.EvMemIssue, e.seq, -1, e.memActualDone, 0)
	}
}

// agenTimes returns the cycles at which (a) the low 16 address bits and
// (b) the complete address become available, or inf if not yet computed.
func (s *Sim) agenTimes(e *entry) (partial, full int64) {
	if e.nSlices == 1 {
		st := &e.slices[0]
		if !st.started {
			return inf, inf
		}
		t := st.startC + int64(e.fullLat)
		return t, t
	}
	p := &e.slices[s.cfg.AddrSliceFor16Bits()]
	partial = inf
	if p.started {
		partial = p.avail()
	}
	full = inf
	if allSlicesStarted(e) {
		full = lastSliceAvail(e)
	}
	if s.cfg.SumAddressed {
		// The cache decoder computes base+offset itself: the speculative
		// index is ready when the base register's low slices are, without
		// waiting for the agen slice-op to execute.
		if t := s.sumAddrReady(e); t < partial {
			partial = t
		}
	}
	return partial, full
}

// sumAddrReady returns when a sum-addressed decoder could start the
// speculative access: all base-operand slices covering the low 16 bits.
func (s *Sim) sumAddrReady(e *entry) int64 {
	t := e.dispC + int64(s.cfg.RFStages) + 1
	k := s.cfg.AddrSliceFor16Bits()
	for i := 0; i < e.d.NSrc; i++ {
		if i == e.dataSrc {
			continue
		}
		for sl := 0; sl <= k; sl++ {
			if a := s.srcAvail(e, i, sl, false); a > t {
				t = a
			}
		}
	}
	return t
}
