// Package core implements the cycle-level out-of-order timing model: a
// 15-stage, 4-wide pipeline patterned on the paper's machine (Table 2,
// Figure 10) with a bit-sliced execution back end. Register operands are
// decomposed into 16- or 8-bit slices; wakeup, select and bypass operate
// at slice granularity, and the five partial-operand techniques the paper
// studies (partial operand bypassing, out-of-order slices, early branch
// resolution, early load-store disambiguation, partial tag matching) are
// independent configuration toggles so the Figure 11/12 stacks can be
// regenerated one optimization at a time.
//
// The model is execution-driven: the functional emulator in internal/emu
// supplies the committed instruction stream with operand values, and the
// timing model imposes fetch, dispatch, per-slice scheduling, memory and
// commit timing on it. Wrong-path instructions are not simulated; a
// misprediction blocks fetch until the branch resolves (see DESIGN.md).
package core

import (
	"fmt"
	"io"

	"pok/internal/bitslice"
	"pok/internal/cache"
	"pok/internal/telemetry"
)

// Config describes one machine configuration.
type Config struct {
	// Name labels the configuration in results.
	Name string

	// Slices is the number of datapath slices: 1 models a full-width
	// (non-pipelined, "ideal") execution stage, 2 and 4 model the
	// slice-by-2 and slice-by-4 pipelined execution stages of Figure 10.
	// 8 (4-bit slices) is supported as an extrapolation beyond the paper.
	Slices int

	// Partial-operand techniques (paper §§3, 5, 6). All false with
	// Slices>1 models "simple pipelining": register operands remain
	// atomic and dependents observe the full execution latency.
	PartialBypass   bool // slice-granular wakeup/bypass (TIDBITS/P4 style)
	OoOSlices       bool // slices without carry chains may execute out of order
	EarlyBranch     bool // beq/bne mispredicts resolve on the first differing slice
	EarlyLSDisambig bool // partial-address load/store disambiguation
	PartialTag      bool // partial tag match + MRU way prediction in the D$

	// UseDTLB adds a data TLB to the load path (64-entry fully
	// associative, 30-cycle walk). The paper's default assumes a
	// virtually-tagged L1 (or page coloring), so translation is off the
	// critical path; with a physically-tagged design the walk latency
	// joins the full-tag verification on a TLB miss.
	UseDTLB bool

	// WrongPath simulates instructions down mispredicted paths: on a
	// misprediction, fetch continues from a copy-on-write fork of the
	// emulator at the wrongly predicted PC. Wrong-path instructions
	// consume fetch/issue/FU bandwidth and pollute the caches, then are
	// squashed when the branch resolves — the second-order effect the
	// paper observes in Figure 11. Wrong-path branches follow the fork's
	// own outcomes (no nested misprediction) and do not train the
	// predictor.
	WrongPath bool

	// SumAddressed folds the base+offset addition into the D-cache array
	// decoder (Lynch et al., "Sum-Addressed Memory", cited by the paper as
	// orthogonal to partial tag matching): the speculative cache access
	// begins as soon as the base register's low slice is available,
	// skipping the explicit address-generation cycle for the index.
	SumAddressed bool

	// SerialMul models the bit-serial multiplier the paper cites (Ienne &
	// Viredaz): the product's low slices emerge before the full latency
	// elapses, so consumers chained on the low bits start earlier.
	SerialMul bool

	// NarrowWidth enables the paper's §6 extension (after Brooks &
	// Martonosi / Canal et al.): when a sliced result is narrow — its
	// upper slices are all zeros or all ones — consumers' upper-slice
	// dependences are satisfied as soon as the low slice is produced,
	// since the upper portion is a known constant.
	NarrowWidth bool

	// Machine widths (Table 2).
	FetchWidth  int
	IssueWidth  int // per slice scheduler
	CommitWidth int
	WindowSize  int // RUU entries
	LSQSize     int
	// IssueQueueSize bounds each slice scheduler's queue (Figure 7 draws
	// one issue queue per slice). Dispatch stalls when the target queues
	// are full; 0 means unbounded (limited only by the window).
	IssueQueueSize int

	// Function units (Table 2).
	IntALUs  int // per slice
	IntMul   int
	FPALUs   int
	FPMulDiv int

	// Latencies.
	FrontEndDepth int // cycles from fetch to earliest issue (Fig 10: 10 stages)
	RFStages      int // register-read stages between issue and execute
	IntMulLat     int
	IntDivLat     int
	FPALULat      int
	FPMulLat      int
	FPDivLat      int
	FPSqrtLat     int
	L1DLat        int // overrides the hierarchy's L1D hit latency
	CachePorts    int // D$ ports (loads issued per cycle)

	// LegacyScheduler selects the original O(window x slices) scan-based
	// scheduling/memory loops instead of the event-driven ready-queue
	// scheduler. The two are cycle-exact equivalents (enforced by
	// TestEventSchedulerMatchesLegacy); the flag exists as a one-release
	// escape hatch and to keep the differential test honest, and will be
	// removed once the event-driven path has baked. It also disables
	// quiet-cycle skipping, so the legacy run iterates every cycle the
	// event-driven run may jump over.
	LegacyScheduler bool

	// LegacyEmulator feeds the timing model from the original
	// switch-dispatch interpreter instead of the direct-threaded fast
	// path. Both produce bit-identical DynInst streams (enforced by the
	// internal/emu differential tests and TestEmulatorMatrixMatches), so
	// the flag exists purely as the reference half of that matrix.
	LegacyEmulator bool

	// UseBimodal replaces the gshare direction predictor with a bimodal
	// table of equal size (a predictor ablation; the paper uses gshare).
	UseBimodal bool
	// UseLocal replaces gshare with a two-level local-history predictor.
	UseLocal bool

	// Trace, when non-nil, receives a one-line record of every pipeline
	// event (fetch, dispatch, slice execute, memory issue, resolve,
	// commit) — the moral equivalent of sim-outorder's ptrace output.
	Trace io.Writer

	// Collector, when non-nil, receives the structured telemetry stream:
	// one fixed-size event per pipeline occurrence plus a per-cycle
	// occupancy sample (see internal/telemetry). Unlike Trace it is
	// machine-readable, allocation-free on the standard Recorder, and its
	// Summary is folded into Result.Telemetry when the run finishes. A
	// nil Collector costs one cached-boolean branch per emission site, so
	// the disabled path stays off the scheduler's hot path.
	Collector telemetry.Collector

	// Oracle, when non-nil, receives every committed instruction's
	// architectural record in commit order — the lockstep functional
	// oracle of internal/check diffs it against an independent emulator
	// and aborts the run at the first divergence. Nil costs one cached
	// boolean at commit.
	Oracle CommitChecker

	// Invariants, when non-nil, enables the per-cycle structural
	// invariant checker (ROB age ordering, occupancy bounds, serialized
	// slice issue, rename-map sanity, replay watchdog) and turns the
	// livelock guard into a configurable deadlock watchdog returning
	// ErrDeadlock with a pipeline dump.
	Invariants *InvariantConfig

	// Inject, when non-nil, perturbs speculative-timing decisions for
	// fault injection (see internal/check/inject). Injection never
	// corrupts architectural values, so a correct machine recovers to an
	// oracle-identical commit stream.
	Inject Injector
}

// NewRecorder builds a telemetry Recorder sized for this machine
// configuration (ring capacity ringCap, 0 = default); assign it to
// Collector before NewSim.
func (c *Config) NewRecorder(ringCap int) *telemetry.Recorder {
	return telemetry.NewRecorder(telemetry.RecorderConfig{
		RingCap:    ringCap,
		WindowSize: c.WindowSize,
		LSQSize:    c.LSQSize,
		IssueSlots: c.IssueWidth * c.Slices,
		CachePorts: c.CachePorts,
	})
}

// BaseConfig returns the paper's Table 2 machine with a single-cycle
// (non-pipelined) execution stage — the "ideal"/best-case column of
// Figure 11.
func BaseConfig() Config {
	return Config{
		Name:          "base",
		Slices:        1,
		FetchWidth:    4,
		IssueWidth:    4,
		CommitWidth:   4,
		WindowSize:    64,
		LSQSize:       32,
		IntALUs:       4,
		IntMul:        1,
		FPALUs:        4,
		FPMulDiv:      1,
		FrontEndDepth: 10, // Fetch1..Iss of Figure 10
		RFStages:      2,
		IntMulLat:     3,
		IntDivLat:     20,
		FPALULat:      2,
		FPMulLat:      4,
		FPDivLat:      12,
		FPSqrtLat:     24,
		L1DLat:        1,
		CachePorts:    2,
	}
}

// SimplePipelined returns the naive pipelined-execution baseline: the
// execution stage is cut into nSlices stages but operands stay atomic, so
// dependent instructions observe the full end-to-end latency (the
// bottom bar of each Figure 11 stack).
func SimplePipelined(nSlices int) Config {
	c := BaseConfig()
	c.Name = fmt.Sprintf("simple-pipe-x%d", nSlices)
	c.Slices = nSlices
	if nSlices >= 4 {
		c.L1DLat = 2 // the paper grows the L1 latency in the slice-by-4 study
	}
	return c
}

// BitSliced returns the full bit-sliced microarchitecture with every
// partial-operand technique enabled (the top of each Figure 11 stack).
func BitSliced(nSlices int) Config {
	c := SimplePipelined(nSlices)
	c.Name = fmt.Sprintf("bit-slice-x%d", nSlices)
	c.PartialBypass = true
	c.OoOSlices = true
	c.EarlyBranch = true
	c.EarlyLSDisambig = true
	c.PartialTag = true
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch c.Slices {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("core: unsupported slice count %d", c.Slices)
	}
	if err := bitslice.ValidateSliceCount(c.Slices); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.FetchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1 {
		return fmt.Errorf("core: widths must be positive")
	}
	if c.WindowSize < 1 || c.LSQSize < 1 {
		return fmt.Errorf("core: window/LSQ must be positive")
	}
	if c.IssueQueueSize < 0 {
		return fmt.Errorf("core: negative issue queue size %d", c.IssueQueueSize)
	}
	if c.IntALUs < 1 || c.CachePorts < 1 {
		return fmt.Errorf("core: need at least one ALU per slice and one cache port")
	}
	if c.FrontEndDepth < 1 || c.RFStages < 0 {
		return fmt.Errorf("core: front-end depth must be >= 1 and RF stages >= 0")
	}
	if c.L1DLat < 1 {
		return fmt.Errorf("core: L1D latency must be >= 1 cycle")
	}
	if inv := c.Invariants; inv != nil {
		if inv.DeadlockBudget < 0 || inv.ReplayBudget < 0 || inv.Every < 0 {
			return fmt.Errorf("core: negative invariant budget")
		}
	}
	if c.Slices == 1 && (c.PartialBypass || c.OoOSlices || c.EarlyBranch ||
		c.EarlyLSDisambig || c.PartialTag || c.NarrowWidth || c.SerialMul) {
		return fmt.Errorf("core: partial-operand techniques need Slices > 1")
	}
	if c.SerialMul && !c.PartialBypass {
		return fmt.Errorf("core: SerialMul requires PartialBypass")
	}
	if c.SumAddressed && !c.PartialTag {
		return fmt.Errorf("core: SumAddressed requires PartialTag")
	}
	if c.UseBimodal && c.UseLocal {
		return fmt.Errorf("core: choose at most one predictor ablation")
	}
	if c.NarrowWidth && !c.PartialBypass {
		return fmt.Errorf("core: NarrowWidth requires PartialBypass")
	}
	return nil
}

// SliceWidth returns the width in bits of one slice.
func (c *Config) SliceWidth() int { return 32 / c.Slices }

// AddrSliceFor16Bits returns the index of the address-generation slice
// whose completion makes the low 16 address bits available (the point at
// which partial tag matching and early disambiguation can engage).
func (c *Config) AddrSliceFor16Bits() int {
	switch c.Slices {
	case 8:
		return 3 // slices 0..3 cover bits 0..15
	case 4:
		return 1 // slices 0 and 1 cover bits 0..15
	default:
		return 0
	}
}

// Hierarchy builds the Table 2 memory system with this config's L1D
// latency override applied.
func (c *Config) Hierarchy() *cache.Hierarchy {
	h := cache.DefaultConfig()
	if c.L1DLat != 1 {
		cfg := h.L1D.Config()
		cfg.HitLatency = c.L1DLat
		h.L1D = cache.MustNew(cfg)
	}
	return h
}
