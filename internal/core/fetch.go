package core

import (
	"errors"
	"pok/internal/emu"
	"pok/internal/isa"
	"pok/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

// nextTraceInst peeks the next correct-path instruction. The record is
// stepped into a reused value field: fetch copies it into the entry
// before the next step can overwrite it.
func (s *Sim) nextTraceInst() (*emu.DynInst, error) {
	if s.pendingOK {
		return &s.pendingD, nil
	}
	if s.fetchPaused {
		// Draining toward a checkpoint boundary: hold the correct-path
		// stream without ending it. An already-peeked instruction
		// (pendingOK, above) still drains through — the emulator has
		// executed it, so the snapshot must wait for it to commit.
		return nil, nil
	}
	if s.traceDone {
		return nil, nil
	}
	if s.maxInsts > 0 && s.fetchedCnt >= s.maxInsts {
		s.traceDone = true
		return nil, nil
	}
	if err := s.em.StepInto(&s.pendingD); err != nil {
		if errors.Is(err, emu.ErrHalted) {
			s.traceDone = true
			return nil, nil
		}
		return nil, err
	}
	s.pendingOK = true
	return &s.pendingD, nil
}

func (s *Sim) fetch() error {
	if s.fetchBlockedBy != nil {
		if !s.fetchBlockedBy.resolved || s.fetchBlockedBy.resolveC > s.now {
			s.res.StallMispredict++
			return nil
		}
		s.fetchBlockedBy = nil
		s.haveLine = false // refetch redirects the instruction stream
	}
	if s.wpBranch != nil && s.wpBranch.resolved && s.wpBranch.resolveC <= s.now {
		s.squashWrongPath()
	}
	if s.wpBranch != nil && s.wpStopped {
		s.res.StallMispredict++ // wrong-path supply ran dry; waiting on resolve
		return nil
	}
	if s.now < s.fetchStallTo {
		s.res.StallICache++
		return nil
	}
	// The fetch buffer models the front-end pipeline stages plus a small
	// fetch queue: it must hold FrontEndDepth x FetchWidth instructions to
	// sustain full-width dispatch, since each instruction spends
	// FrontEndDepth cycles in the front end.
	bufCap := (s.cfg.FrontEndDepth + 2) * s.cfg.FetchWidth
	for fetched := 0; fetched < s.cfg.FetchWidth && s.fetchBuf.Len() < bufCap; fetched++ {
		var d *emu.DynInst
		var err error
		onWrongPath := s.wpFork != nil
		if onWrongPath {
			d = s.nextWrongPathInst()
		} else {
			d, err = s.nextTraceInst()
			if err != nil {
				return err
			}
		}
		if d == nil {
			return nil
		}
		// Instruction cache: one access per new line.
		line := d.PC &^ uint32(s.hier.L1I.Config().LineBytes-1)
		if !s.haveLine || line != s.lastFetchLine {
			lat, _ := s.hier.AccessInst(line)
			s.lastFetchLine = line
			s.haveLine = true
			if lat > 1 {
				// Miss: this line arrives after the stall; retry next time.
				s.fetchStallTo = s.now + int64(lat)
				return nil
			}
		}
		e := s.allocEntry()
		e.d, e.seq, e.fetchC, e.wp = *d, s.seqCtr, s.now, onWrongPath
		s.seqCtr++
		if !onWrongPath {
			s.pendingOK = false
			s.fetchedCnt++
		} else {
			s.res.WrongPathInsts++
		}
		s.initEntry(e)
		s.fetchBuf.PushBack(e)
		if s.tracing {
			// The disassembly is formatted only under tracing; an eager
			// d.Inst.String() here once cost a quarter of the whole run.
			s.trace("fetch    #%d pc=0x%x wp=%v %v", e.seq, d.PC, e.wp, d.Inst.String())
		}
		if s.collecting {
			s.emit(telemetry.EvFetch, e.seq, -1, int64(d.PC), b2i(e.wp))
		}

		if e.isCtrl && onWrongPath {
			// Wrong-path control follows the fork's own outcome: no
			// predictor training, no RAS activity, no nested wrong paths.
			if d.Taken {
				s.haveLine = false
				return nil
			}
			continue
		}
		if e.isCtrl {
			e.pred = s.pred.Predict(d.PC, &e.d.Inst)
			actualTarget := d.NextPC
			e.mispred = s.pred.Resolve(d.PC, &e.d.Inst, e.pred, d.Taken, actualTarget)
			if d.Inst.Op.IsBranch() {
				s.res.Branches++
				if d.Inst.Op.EqualityBranch() {
					s.res.EqBranches++
				}
				if e.mispred {
					s.res.Mispredicts++
				}
			}
			if e.mispred {
				if s.cfg.WrongPath {
					s.startWrongPath(e)
				} else {
					s.fetchBlockedBy = e
				}
				return nil
			}
			if d.Taken {
				s.haveLine = false // redirect: next group starts at target
				return nil         // taken branch ends the fetch group
			}
		}
	}
	return nil
}

// startWrongPath forks the emulator at the wrongly predicted PC and
// switches fetch onto the speculative path.
func (s *Sim) startWrongPath(branch *entry) {
	wrongPC := branch.d.PC + 4
	if branch.pred.Taken {
		wrongPC = branch.pred.Target
	}
	s.wpBranch = branch
	s.wpFork = s.em.Fork(wrongPC)
	s.wpStopped = false
	s.haveLine = false
	if s.tracing {
		s.trace("wrongpath#%d begins at pc=0x%x", branch.seq, wrongPC)
	}
}

// nextWrongPathInst steps the speculative fork. A decode fault, halt or
// runaway stops wrong-path supply (fetch then idles until resolution,
// like a front end chewing on garbage).
func (s *Sim) nextWrongPathInst() *emu.DynInst {
	if s.wpStopped {
		return nil
	}
	if err := s.wpFork.StepInto(&s.wpD); err != nil {
		s.wpStopped = true
		return nil
	}
	return &s.wpD
}

// squashWrongPath removes every wrong-path instruction from the machine
// and restores the rename map, then resumes correct-path fetch.
func (s *Sim) squashWrongPath() {
	idx := -1
	for i := 0; i < s.window.Len(); i++ {
		if s.window.At(i) == s.wpBranch {
			idx = i
			break
		}
	}
	// Undo dispatched wrong-path entries in reverse dispatch order.
	if idx >= 0 {
		for i := s.window.Len() - 1; i > idx; i-- {
			s.undoEntry(s.window.At(i))
		}
		s.window.Truncate(idx + 1)
	} else {
		// The branch already committed; everything younger is wrong-path.
		for i := s.window.Len() - 1; i >= 0; i-- {
			if !s.window.At(i).wp {
				idx = i
				break
			}
			s.undoEntry(s.window.At(i))
		}
		s.window.Truncate(idx + 1)
	}
	// Fetch-buffer entries were never dispatched: nothing in the machine can
	// reference them (srcProd/consumer links are created only at dispatch),
	// so they return to the pool immediately.
	for s.fetchBuf.Len() > 0 {
		e := s.fetchBuf.PopFront()
		if s.collecting {
			s.emit(telemetry.EvSquash, e.seq, -1, 0, 0)
		}
		s.freeEntry(e)
	}
	if !s.legacy {
		s.scrubMemWatch()
	}
	s.wpFork = nil
	s.wpBranch = nil
	s.wpStopped = false
	s.haveLine = false
	if s.tracing {
		s.trace("wrongpath squashed at cycle %d", s.now)
	}
}

// undoEntry reverses the dispatch-time side effects of a squashed entry.
func (s *Sim) undoEntry(e *entry) {
	if s.collecting {
		s.emit(telemetry.EvSquash, e.seq, -1, 0, 0)
	}
	if d := e.d.Dst; d != isa.RegZero && s.regProd[d] == e {
		s.regProd[d] = liveProd(e.prevDstProd, e.prevDstGen)
	}
	if d2 := e.d.Dst2; d2 != isa.RegZero && s.regProd[d2] == e {
		s.regProd[d2] = liveProd(e.prevDst2Prod, e.prevDst2Gen)
	}
	if e.lsqInserted {
		s.lsq.Remove(e.seq)
	}
	e.squashed = true
	if !s.legacy && !e.execDone {
		s.iqCount--
	}
	// Older in-flight entries may still hold srcProd/consumer references to
	// this entry, so it drains through the retire queue like a committed one
	// (gen tags orphan any wheel candidates that still point at it).
	e.retireTag = s.seqCtr
	s.retireQ.PushBack(e)
}

// liveProd validates a saved rename-map pointer against its generation
// snapshot before it is restored: a producer that has committed — and may
// since have been recycled into an unrelated entry — restores as nil,
// exactly as the dispatch-time rename filter would treat it.
func liveProd(p *entry, gen uint32) *entry {
	if p == nil || p.gen != gen || p.committed {
		return nil
	}
	return p
}

// initEntry decodes the structural properties of an instruction.
func (s *Sim) initEntry(e *entry) {
	op := e.d.Inst.Op
	e.isLoad = op.IsLoad()
	e.isStore = op.IsStore()
	e.isCtrl = op.IsControl()
	e.memPredDone, e.memActualDone = inf, inf
	e.resolveC = inf

	// Identify operand roles. Sources() appends Rs before Rt, dropping
	// $zero, so the data operand of a store (Rt) is the last source when
	// present, and the amount operand of a variable shift (Rs) the first.
	e.dataSrc, e.amountSrc = -1, -1
	if e.isStore && e.d.Inst.Rt != isa.RegZero {
		e.dataSrc = e.d.NSrc - 1
	}
	if needsAmount(op) && e.d.Inst.Rs != isa.RegZero {
		e.amountSrc = 0
	}

	// Narrow-width detection: the destination value's upper bits are all
	// zeros or all ones beyond the low slice.
	if s.cfg.NarrowWidth && s.cfg.Slices > 1 {
		w := uint(s.cfg.SliceWidth())
		v := e.d.DstVal
		upper := v >> w
		mask := uint32(1)<<(32-w) - 1
		e.narrow = upper == 0 || upper == mask
	}

	switch op.Class() {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassLoad, isa.ClassStore:
		if s.cfg.Slices > 1 && sliceable(op) {
			e.nSlices = s.cfg.Slices
		} else {
			e.nSlices = 1
			e.fullLat = 1
		}
	case isa.ClassIntMul:
		e.nSlices = 1
		e.fullLat = s.cfg.IntMulLat
	case isa.ClassIntDiv:
		e.nSlices = 1
		e.fullLat = s.cfg.IntDivLat
	case isa.ClassFP:
		e.nSlices = 1
		e.fullLat = s.cfg.FPALULat
	case isa.ClassFPMulDiv:
		e.nSlices = 1
		switch op {
		case isa.OpMULS:
			e.fullLat = s.cfg.FPMulLat
		case isa.OpSQRTS:
			e.fullLat = s.cfg.FPSqrtLat
		default:
			e.fullLat = s.cfg.FPDivLat
		}
	case isa.ClassJump, isa.ClassSyscall:
		e.nSlices = 1
		e.fullLat = 1
	default:
		e.nSlices = 1
		e.fullLat = 1
	}
	e.fullMask = uint8(1)<<e.nSlices - 1
}

// sliceable reports whether the op's execution decomposes into slice-ops
// in the bit-sliced datapath.
func sliceable(op isa.Op) bool {
	switch op.SliceProfile() {
	case isa.SliceFullWidth, isa.SliceSerialMul:
		return false
	}
	return !op.IsControl() || op.IsBranch() // branches compare per slice; jumps are full-width
}
