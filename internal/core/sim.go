package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"pok/internal/bpred"
	"pok/internal/cache"
	"pok/internal/ckpt"
	"pok/internal/emu"
	"pok/internal/isa"
	"pok/internal/lsq"
	"pok/internal/telemetry"
)

const inf = int64(math.MaxInt64 / 4)

// Deferred partial-tag completion kinds: a load issued with only its low
// address bits cannot finalize a miss (or way-mispredict replay) time
// until the rest of the address exists.
const (
	pendNone uint8 = iota
	pendWayMispred
	pendMiss
)

// sliceState tracks one slice-op of an in-flight instruction.
type sliceState struct {
	started bool
	inReady bool  // event scheduler: a candidate sits in the ready set
	startC  int64 // cycle execution of this slice began
	retryC  int64 // earliest re-execution after a replay
}

// avail returns when this slice's result is bypassable (1-cycle slice FU).
func (s *sliceState) avail() int64 {
	if !s.started {
		return inf
	}
	return s.startC + 1
}

// entry is one in-flight instruction in the window (RUU).
type entry struct {
	d   emu.DynInst
	seq uint64

	fetchC     int64
	dispC      int64
	dispatched bool
	committed  bool

	nSlices  int
	slices   [8]sliceState
	execDone bool // all slice-ops started (scheduling fast path)

	// SoA-style hot mirrors of the slices array, maintained at the issue
	// sites so the per-cycle consumers (entryDone, agenTimes, branch
	// resolution) test a mask and compare one integer instead of walking
	// the slice structs: startedMask has bit sl set once slice sl issued,
	// fullMask is (1<<nSlices)-1, and execEnd is the running maximum of
	// the per-slice result-available times (startC+1, or startC+fullLat
	// for full-width ops) — equal to lastSliceAvail once the mask fills.
	startedMask uint8
	fullMask    uint8
	execEnd     int64

	// fullOp state for full-width operations (nSlices == 1 and class not
	// a simple ALU op): started/start tracked in slices[0], latency here.
	fullLat int

	srcProd [2]*entry

	// Memory state.
	isLoad, isStore bool
	lsqInserted     bool
	memIssued       bool
	memPredDone     int64
	memActualDone   int64
	forwarded       bool
	wayMispred      bool
	memPendFull     uint8 // deferred completion kind (pendNone/WayMispred/Miss)
	memPendLat      int64 // latency parameter for the deferred completion
	earlyRelease    bool  // disambiguated with partial bits
	l1Hit           bool
	earlyMissSignal bool // partial tag ruled out all ways: miss known early

	// Commit-attribution bookkeeping (EvCommit.Arg/.Arg2): these fields
	// are written by the shared memory/schedule helpers and read only at
	// commit to classify the instruction's oldest-unresolved dependence.
	// They never feed back into timing decisions.
	disambigWait bool  // a load issue attempt was blocked by disambiguation
	replayedSelf bool  // one of this entry's own slice-ops replayed
	dataReadyC   int64 // cycle a store's data operand became forwardable

	// Source-operand roles (index into srcProd/d.Src, -1 if absent).
	dataSrc   int // stores: the data operand, not consumed by agen
	amountSrc int // variable shifts: the shift-amount operand

	// narrow marks results whose upper slices are a sign/zero extension
	// of the low slice (the NarrowWidth optimization applies).
	narrow bool

	// Wrong-path state: wp entries never commit and are squashed when
	// their shadowing branch resolves; prevDstProd/prevDst2Prod record the
	// rename-map entries to restore at squash. The gen snapshots detect
	// producers that committed and were recycled (possibly reused) before
	// the squash: restoring such a pointer would rename later dispatches
	// onto an unrelated — even younger — entry, which can deadlock the
	// window.
	wp           bool
	prevDstProd  *entry
	prevDst2Prod *entry
	prevDstGen   uint32
	prevDst2Gen  uint32

	// Control state.
	isCtrl        bool
	pred          bpred.Prediction
	mispred       bool
	resolved      bool
	resolveC      int64
	earlyResolved bool // mispredict exposed by a partial comparison

	// Event-driven scheduler bookkeeping (idle under LegacyScheduler).
	//
	// gen is bumped every time the entry returns to the free pool, so
	// stale wakeup-wheel candidates and consumer references carrying an
	// old generation are recognized and dropped instead of acting on a
	// recycled entry. squashed marks wrong-path entries removed by a
	// squash (they may still be referenced by the wheel). consumers lists
	// the dispatched entries renamed onto this producer; a producer event
	// (slice executed, load completion time established) walks it to wake
	// dependents. retireTag snapshots seqCtr at commit/squash: the entry
	// can be recycled only once every older in-flight entry — any of
	// which may hold srcProd/prevDstProd pointers to it — has drained.
	gen       uint32
	squashed  bool
	retireTag uint64
	consumers []consRef

	// lsqEnt points at lsqData while the op is in the LSQ, so the
	// per-cycle store/load bookkeeping pays neither a lookup nor (since
	// the storage is embedded in the pooled entry) a heap allocation.
	// The queue drops its reference at commit or squash, before the
	// entry can recycle, so the embedding never aliases a stale op.
	lsqEnt  *lsq.Entry
	lsqData lsq.Entry

	// Memoized depsAvail per (slice, announce), invalidated only on
	// producer events — this removes the duplicated speculative/actual
	// recomputation the scan-based scheduler performed every cycle.
	depsVal [8][2]int64
	depsOK  [8][2]bool
}

// consRef is one consumer registration on a producer entry. The gen
// snapshot detects consumers that were squashed and recycled while the
// producer was still in flight.
type consRef struct {
	e   *entry
	gen uint32
}

// invalidateDeps drops every memoized depsAvail value of the entry.
func (e *entry) invalidateDeps() {
	e.depsOK = [8][2]bool{}
}

// Result aggregates the statistics of one timing run.
type Result struct {
	Benchmark string
	Config    string

	Cycles int64
	Insts  uint64
	IPC    float64

	Loads, Stores     uint64
	Branches          uint64 // conditional
	Mispredicts       uint64
	BranchAccuracy    float64
	EqBranches        uint64
	EarlyResolved     uint64 // mispredicts redirected before full compare
	LoadsEarlyRelease uint64 // loads issued on partial disambiguation
	StoreForwards     uint64
	WayMispredicts    uint64 // partial-tag way mispredictions
	PartialTagAccess  uint64 // loads that used a partial-tag access
	EarlyMissSignals  uint64 // partial tag proved a miss early
	Replays           uint64 // slice-ops squashed by load-hit misspeculation
	WrongPathInsts    uint64 // wrong-path instructions fetched and squashed
	DTLBMissRate      float64

	// Stall attribution: cycles the front end spent blocked, by cause.
	StallMispredict uint64 // waiting for a branch to resolve
	StallICache     uint64 // instruction cache miss in progress
	StallWindowFull uint64 // dispatch blocked on a full RUU
	StallLSQFull    uint64 // dispatch blocked on a full load/store queue
	StallIQFull     uint64 // dispatch blocked on full issue queues
	L1DMissRate     float64
	L1IMissRate     float64

	// Telemetry is the aggregated observability summary (per-stage
	// occupancy and stall-cause histograms, event counts). It is non-nil
	// only when a telemetry Collector was attached to the run, so Result
	// stays bit-identical with telemetry off.
	Telemetry *telemetry.Summary

	// Stopped marks a run ended early by RequestStop (a signal or a
	// watchdog): the statistics cover the committed prefix, and a final
	// snapshot went to the checkpoint sink if one was attached.
	// StopReason says why. Both stay zero on a completed run, so Result
	// equality tests are unaffected.
	Stopped    bool
	StopReason string
}

// Sim is one timing simulation in progress.
type Sim struct {
	cfg  Config
	em   *emu.Emulator
	pred *bpred.Predictor
	hier *cache.Hierarchy
	dtlb *cache.TLB
	lsq  *lsq.Queue

	now      int64
	window   deque
	fetchBuf deque

	regProd [isa.NumRegs]*entry

	// Event-driven scheduler state (see sched_event.go). legacy mirrors
	// cfg.LegacyScheduler.
	legacy     bool
	tracing    bool // cfg.Trace != nil; gates trace formatting at call sites
	collecting bool // cfg.Collector != nil; gates telemetry emission
	oracleOn   bool // cfg.Oracle != nil; gates commit-record construction
	invOn      bool // cfg.Invariants != nil; gates the per-cycle checker
	injOn      bool // cfg.Inject != nil; gates fault-injection hooks
	inj        Injector
	tel        telemetry.Collector
	wh         wakeWheel // bucketed timing wheel of slice-op wakeups
	ready      []cand    // due candidates, kept sorted by (seq, slice)
	readyDirty bool      // ready gained unsorted arrivals this cycle
	memWatch   []*entry  // loads/stores still needing memory-stage attention
	iqCount    int       // window entries with !execDone (issue-queue slots)

	// Entry pool: freeList holds recycled entries; retireQ holds
	// committed/squashed entries whose recycling is deferred until no
	// older in-flight entry can still reference them (see retireTag).
	freeList []*entry
	retireQ  deque

	// storeScratch is reused by tryIssueLoad's early-release check.
	storeScratch []*lsq.Entry

	fetchBlockedBy *entry
	fetchStallTo   int64
	lastFetchLine  uint32
	haveLine       bool

	// pendingD/pendingOK hold the peeked correct-path instruction by
	// value: the old *DynInst field heap-allocated one record per fetched
	// instruction. wpD is the same for wrong-path supply.
	pendingD   emu.DynInst
	pendingOK  bool
	wpD        emu.DynInst
	traceDone  bool
	fetchedCnt uint64
	maxInsts   uint64
	seqCtr     uint64

	// Wrong-path fetch state.
	wpFork    *emu.Emulator
	wpBranch  *entry
	wpStopped bool

	// Per-cycle resource accounting.
	aluUsed   [8]int
	issueUsed [8]int
	mulUsed   int
	fpUsed    int
	divFree   int64
	fpmdFree  int64
	portsUsed int

	// Quiet-cycle skipping (see skip.go). skipOK caches the gate: the
	// event-driven scheduler without tracing/telemetry/invariant/injection
	// observers may jump over provably-quiet cycles. memStarved records
	// that a load lost cache-port arbitration this cycle and will retry
	// next cycle, which makes the next cycle non-quiet.
	skipOK     bool
	memStarved bool

	// Architectural checkpointing (see ckpt.go). ckptEvery is the commit
	// cadence (0 = off); nextCkpt the next commit mark; fetchPaused holds
	// correct-path fetch while the pipeline drains to a quiescent
	// snapshot boundary; stopFlag carries an asynchronous RequestStop
	// reason; baseTel the telemetry accumulated before the snapshot this
	// run resumed from; lastCommitC the deadlock watchdog's last-commit
	// cycle (a field rather than a Run local so a resumed run restores
	// the watchdog's phase exactly); resumed defers the first nextCycle
	// so the resume point re-enters Run's loop mid-iteration.
	ckptEvery   uint64
	ckptSink    ckpt.Sink
	ckptBench   string
	nextCkpt    uint64
	fetchPaused bool
	lastCommitC int64
	baseTel     *telemetry.Summary
	resumed     bool
	stopFlag    atomic.Pointer[string]

	res Result
}

// NewSim builds a simulation of prog under cfg, limited to maxInsts
// committed instructions (0 = run to program exit).
func NewSim(prog *emu.Program, cfg Config, maxInsts uint64) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred := bpred.NewDefault()
	if cfg.UseBimodal {
		pred.Dir = bpred.NewBimodal(16)
	}
	if cfg.UseLocal {
		pred.Dir = bpred.NewLocal(12, 14)
	}
	var dtlb *cache.TLB
	if cfg.UseDTLB {
		dtlb = cache.DefaultDTLB()
	}
	s := &Sim{
		cfg:        cfg,
		em:         emu.New(prog),
		pred:       pred,
		dtlb:       dtlb,
		hier:       cfg.Hierarchy(),
		lsq:        lsq.New(cfg.LSQSize),
		legacy:     cfg.LegacyScheduler,
		tracing:    cfg.Trace != nil,
		collecting: cfg.Collector != nil,
		oracleOn:   cfg.Oracle != nil,
		invOn:      cfg.Invariants != nil,
		injOn:      cfg.Inject != nil,
		inj:        cfg.Inject,
		tel:        cfg.Collector,
		maxInsts:   maxInsts,
		divFree:    -1,
		fpmdFree:   -1,
		res:        Result{Config: cfg.Name},
	}
	s.em.SetLegacy(cfg.LegacyEmulator)
	s.wh.ovMin = inf
	if !s.legacy {
		// Pre-back every wheel bucket with a small slice of one shared
		// array: as simulated time wraps the ring, each bucket would
		// otherwise pay its own first-append allocations.
		backing := make([]cand, wheelHorizon*4)
		for i := range s.wh.bucket {
			s.wh.bucket[i] = backing[i*4 : i*4 : (i+1)*4]
		}
	}
	// Quiet-cycle skipping requires the event-driven scheduler (the legacy
	// scan is the per-cycle reference) and no per-cycle observers: tracing,
	// telemetry sampling and the invariant checker all want to see every
	// cycle, and fault injection may retime decisions cycle by cycle.
	s.skipOK = !s.legacy && !s.tracing && !s.collecting && !s.invOn && !s.injOn
	return s, nil
}

// ---------------------------------------------------------------------------
// Entry pool
// ---------------------------------------------------------------------------

// allocEntry returns a zeroed entry, reusing a pooled one when possible.
// The recycle generation survives the reset so any stale wheel candidate
// still pointing at the entry is recognized as dead.
func (s *Sim) allocEntry() *entry {
	if n := len(s.freeList); n > 0 {
		e := s.freeList[n-1]
		s.freeList[n-1] = nil
		s.freeList = s.freeList[:n-1]
		gen, cons := e.gen, e.consumers[:0]
		*e = entry{gen: gen, consumers: cons}
		return e
	}
	return new(entry)
}

// freeEntry returns an entry to the pool. Bumping gen orphans every
// outstanding wheel candidate and consumer reference immediately.
func (s *Sim) freeEntry(e *entry) {
	e.gen++
	s.freeList = append(s.freeList, e)
}

// recycleRetired drains the head of the retire queue: an entry becomes
// poolable once every entry dispatched before it left the machine (those
// are the only ones that can hold srcProd/prevDstProd pointers to it)
// and it is no longer pinned by the fetch unit's branch bookkeeping.
func (s *Sim) recycleRetired() {
	for s.retireQ.Len() > 0 {
		e := s.retireQ.Front()
		if s.window.Len() > 0 && s.window.Front().seq < e.retireTag {
			return
		}
		if e == s.wpBranch || e == s.fetchBlockedBy {
			return
		}
		s.retireQ.PopFront()
		s.freeEntry(e)
	}
}

// FastForward functionally executes n instructions before timing begins,
// skipping initialization phases the way the paper's 1B-instruction
// fast-forward does. It must be called before Run.
func (s *Sim) FastForward(n uint64) error {
	if s.now != 0 || s.fetchedCnt != 0 {
		return fmt.Errorf("core: FastForward after simulation started")
	}
	_, err := s.em.Run(n, nil)
	return err
}

// Run executes the simulation to completion and returns the statistics.
func Run(prog *emu.Program, cfg Config, maxInsts uint64) (*Result, error) {
	return RunWarm(prog, cfg, 0, maxInsts)
}

// RunWarm fast-forwards warmup instructions functionally, then simulates
// up to maxInsts committed instructions.
func RunWarm(prog *emu.Program, cfg Config, warmup, maxInsts uint64) (*Result, error) {
	s, err := NewSim(prog, cfg, maxInsts)
	if err != nil {
		return nil, err
	}
	if warmup > 0 {
		if err := s.FastForward(warmup); err != nil {
			return nil, err
		}
	}
	return s.Run()
}

// Run drives cycles until the instruction budget commits or the program
// ends, then finalizes statistics.
func (s *Sim) Run() (*Result, error) {
	// The deadlock watchdog: with Invariants enabled the budget is
	// configurable; without, it keeps the historic 40k-cycle livelock
	// guard. Either way it returns a structured ErrDeadlock with a
	// pipeline dump, never hangs.
	budget := s.cfg.Invariants.deadlockBudget()
	if s.resumed {
		// The snapshot was captured mid-iteration, just before the
		// uninterrupted run's nextCycle call; replaying that call from
		// the restored (quiescent) state re-enters the loop at exactly
		// the cycle the uninterrupted run simulated next — including the
		// stall-counter bulk-add a quiet-cycle skip would have charged.
		s.resumed = false
		s.now = s.nextCycle(s.lastCommitC, budget)
	}
	for {
		committed, err := s.cycle()
		if err != nil {
			return nil, err
		}
		if committed > 0 {
			s.lastCommitC = s.now
		}
		if s.drained() {
			break
		}
		if s.fetchPaused || s.stopFlag.Load() != nil ||
			(s.ckptEvery > 0 && s.res.Insts >= s.nextCkpt) {
			s.fetchPaused = true
			if s.quiescent() {
				// Advance the mark before capturing so the snapshot
				// carries the *next* mark and a resumed run does not
				// immediately re-checkpoint at the same boundary.
				for s.ckptEvery > 0 && s.nextCkpt <= s.res.Insts {
					s.nextCkpt += s.ckptEvery
				}
				if err := s.checkpointNow(); err != nil {
					return nil, err
				}
				s.fetchPaused = false
				if r := s.stopReason(); r != "" {
					return s.finalize(r), nil
				}
			}
		}
		if s.now-s.lastCommitC > budget {
			return nil, &DeadlockError{
				Cycle:     s.now,
				Committed: s.res.Insts,
				Budget:    budget,
				Dump:      s.dumpWindow(16),
			}
		}
		s.now = s.nextCycle(s.lastCommitC, budget)
	}
	return s.finalize(""), nil
}

// finalize computes the derived statistics and returns the Result. A
// non-empty stopReason marks the run as ended early by RequestStop.
func (s *Sim) finalize(stopReason string) *Result {
	s.res.Cycles = s.now + 1
	if s.res.Cycles > 0 {
		s.res.IPC = float64(s.res.Insts) / float64(s.res.Cycles)
	}
	if s.res.Branches > 0 {
		s.res.BranchAccuracy = 1 - float64(s.res.Mispredicts)/float64(s.res.Branches)
	} else {
		s.res.BranchAccuracy = 1
	}
	s.res.L1DMissRate = s.hier.L1D.MissRate()
	s.res.L1IMissRate = s.hier.L1I.MissRate()
	if s.dtlb != nil {
		s.res.DTLBMissRate = s.dtlb.MissRate()
	}
	if s.tel != nil {
		sum := s.tel.Summary()
		if s.baseTel != nil {
			m := s.baseTel.Clone()
			m.Merge(sum)
			sum = m
		}
		s.res.Telemetry = sum
	}
	if stopReason != "" {
		s.res.Stopped = true
		s.res.StopReason = stopReason
	}
	return &s.res
}

// emit forwards one structured telemetry event. Callers must guard
// with s.collecting so the disabled path pays only the branch.
func (s *Sim) emit(k telemetry.Kind, seq uint64, slice int8, arg, arg2 int64) {
	s.tel.Event(telemetry.Event{
		Cycle: s.now, Seq: seq, Kind: k, Slice: slice, Arg: arg, Arg2: arg2,
	})
}

// b2i is the branch-free bool->int64 telemetry payload helper.
func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// trace emits one pipeline-event line when tracing is enabled.
func (s *Sim) trace(format string, args ...any) {
	if s.cfg.Trace != nil {
		fmt.Fprintf(s.cfg.Trace, "%8d  "+format+"\n",
			append([]any{s.now}, args...)...)
	}
}

func (s *Sim) drained() bool {
	return s.traceDone && s.window.Len() == 0 && s.fetchBuf.Len() == 0
}

// cycle advances the machine one clock and returns how many instructions
// committed.
func (s *Sim) cycle() (int, error) {
	s.aluUsed = [8]int{}
	s.issueUsed = [8]int{}
	s.mulUsed, s.fpUsed, s.portsUsed = 0, 0, 0
	s.memStarved = false
	if !s.legacy {
		// Re-anchor the wheel at the cycle being simulated: wakeups pushed
		// by this cycle's earlier stages (the memory stage completing a
		// load) with wake <= now must land in the bucket schedule() is
		// about to drain. After a quiet-cycle skip, every bucket between
		// the old base and now is provably empty (the skip never jumps
		// past the wheel's earliest wake).
		s.wh.base = s.now
	}

	n, err := s.commit()
	if err != nil {
		return n, err
	}
	if s.legacy {
		s.memoryStageLegacy()
		s.scheduleLegacy()
	} else {
		s.memoryStage()
		s.schedule()
	}
	s.dispatch()
	if err := s.fetch(); err != nil {
		return n, err
	}
	s.recycleRetired()
	if s.collecting {
		s.sampleCycle()
	}
	if s.invOn {
		if err := s.checkInvariants(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// sampleCycle publishes the end-of-cycle occupancy snapshot to the
// telemetry collector (the per-stage histograms of the Summary).
func (s *Sim) sampleCycle() {
	issued := 0
	for _, u := range s.issueUsed {
		issued += u
	}
	s.tel.CycleSample(telemetry.CycleSample{
		Cycle:  s.now,
		Window: s.window.Len(),
		IQ:     s.iqOccupancy(),
		LSQ:    s.lsq.Len(),
		Issued: issued,
		Ports:  s.portsUsed,
	})
}
