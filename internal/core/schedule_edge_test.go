package core

import (
	"testing"
)

// Edge-case coverage for the operand-availability rules in schedule.go.
// Every test runs its program under BOTH schedulers and insists on
// identical Result structs, so each scheduling corner (serial-multiply
// early emergence, narrow-width forwarding, variable-shift amount
// operands, load-hit replay) is exercised through the legacy scan and the
// event-driven wakeup wheel alike.

// runBothSrc assembles src twice and runs it under the legacy and
// event-driven schedulers, failing unless the Results are identical.
// It returns the (shared) result for behavioral assertions.
func runBothSrc(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	legacy := cfg
	legacy.LegacyScheduler = true
	rl := run(t, mustProg(t, src), legacy)
	event := cfg
	event.LegacyScheduler = false
	re := run(t, mustProg(t, src), event)
	if *rl != *re {
		t.Errorf("schedulers diverge on %s\nlegacy:\n%s\nevent:\n%s",
			cfg.Name, rl.Summary(), re.Summary())
	}
	return re
}

// serialMulSrc carries the loop dependence through the LOW bits of each
// iteration's product: the multiply feeds a load address, and the loaded
// value feeds the next multiply. Only an early-emerging low product slice
// shortens that recurrence — the full product is never on the path.
const serialMulSrc = `
.data
buf: .space 4096
.text
main:
	li $s0, 300
	li $t0, 3
	la $s1, buf
loop:
	mult $t0, $t0
	mflo $t1
	andi $t2, $t1, 1020
	addu $t3, $s1, $t2
	lw   $t4, 0($t3)
	addu $t0, $t4, $s0
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`

// TestSerialMulEarlySliceEmergence: with SerialMul, low result slices of
// a multiply emerge before the full product (srcAvail's SliceSerialMul
// arm), so the dependent address-generation slices — and the partial-tag
// load behind them — start earlier and the loop runs in strictly fewer
// cycles than with an atomic multiplier. Both schedulers must agree
// cycle for cycle in both modes.
func TestSerialMulEarlySliceEmergence(t *testing.T) {
	atomic := BitSliced(4)
	atomic.Name = "mul-atomic"
	serial := BitSliced(4)
	serial.Name = "mul-serial"
	serial.SerialMul = true

	ra := runBothSrc(t, serialMulSrc, atomic)
	rs := runBothSrc(t, serialMulSrc, serial)
	if rs.Cycles >= ra.Cycles {
		t.Fatalf("serial multiplier did not shorten the chain: %d vs %d cycles",
			rs.Cycles, ra.Cycles)
	}
}

// narrowSrc keeps every loop-carried value small, so all sliced results
// are zero-extensions of their low slice, and routes one through a logic
// op whose upper input slices gate the loop branch comparison.
const narrowSrc = `
main:
	li $s0, 400
	li $t0, 9
	li $t1, 5
loop:
	addu $t2, $t0, $t1
	xor  $t3, $t2, $t1
	and  $t4, $t3, $t2
	addu $t0, $t4, $t1
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`

// TestNarrowWidthUpperSliceForwarding: when a producer's value is narrow,
// srcAvail hands consumers the upper slices as soon as the low slice is
// done (p.narrow arm). The machine with NarrowWidth must never be slower
// on an all-narrow loop, and both schedulers must agree in both modes.
func TestNarrowWidthUpperSliceForwarding(t *testing.T) {
	base := BitSliced(4)
	base.Name = "wide"
	nw := BitSliced(4)
	nw.Name = "narrow"
	nw.NarrowWidth = true

	rb := runBothSrc(t, narrowSrc, base)
	rn := runBothSrc(t, narrowSrc, nw)
	if rn.Cycles > rb.Cycles {
		t.Fatalf("narrow-width slowed an all-narrow loop: %d vs %d cycles",
			rn.Cycles, rb.Cycles)
	}
}

// shiftSrc routes a computed, changing shift amount into sllv/srlv, so
// the amountSrc arm of depsAvail (only slice 0 of the amount operand is
// consumed) is on the critical path every iteration.
const shiftSrc = `
main:
	li $s0, 300
	li $t0, 1
	li $t1, 0x1234
loop:
	andi $t2, $s0, 7
	sllv $t3, $t1, $t2
	srlv $t4, $t3, $t2
	addu $t1, $t4, $t0
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`

// TestVariableShiftAmountOperand pins the variable-shift rule: the whole
// shift needs only slice 0 of its amount operand, under both schedulers,
// with and without out-of-order slices (the carry/in-order arm right
// after the amountSrc arm).
func TestVariableShiftAmountOperand(t *testing.T) {
	ooo := BitSliced(4)
	ooo.Name = "shift-ooo"
	ino := BitSliced(4)
	ino.Name = "shift-inorder"
	ino.OoOSlices = false

	ro := runBothSrc(t, shiftSrc, ooo)
	runBothSrc(t, shiftSrc, ino)
	if ro.Insts == 0 || ro.IPC <= 0 {
		t.Fatalf("shift loop did not execute: %+v", ro)
	}
}

// missSrc walks a 128 KiB buffer with a dependent consumer on every
// load: twice the L1D capacity, so steady state misses on every line and
// each consumer first wakes on the predicted L1-hit latency.
const missSrc = `
.data
buf: .space 131072
.text
main:
	li $s0, 4096
	la $s1, buf
	li $s2, 0
	li $t3, 0
loop:
	lw $t0, 0($s1)
	addu $t3, $t3, $t0
	addiu $s1, $s1, 64
	addiu $s2, $s2, 64
	li $t4, 131072
	bne $s2, $t4, skip
	la $s1, buf
	li $s2, 0
skip:
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`

// TestReplayRetryRewakeup: consumers of missing loads speculatively wake
// at the predicted hit latency, lose their issue slot, and must be
// re-enqueued at retryC (the replay arm of both schedulers). The run
// must observe replays, and both schedulers must count them identically
// (the Result comparison inside runBothSrc covers Replays).
func TestReplayRetryRewakeup(t *testing.T) {
	cfg := BitSliced(2)
	cfg.Name = "replay"
	r := runBothSrc(t, missSrc, cfg)
	if r.Replays == 0 {
		t.Fatal("expected load-hit misspeculation replays, saw none")
	}
	if r.L1DMissRate < 0.5 {
		t.Fatalf("miss loop not missing: L1D miss rate %.2f", r.L1DMissRate)
	}
}
