package core

import (
	"fmt"
	"strings"
	"testing"

	"pok/internal/asm"
	"pok/internal/emu"
)

func mustProg(t *testing.T, src string) *emu.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// chainProg builds a loop whose body is a serial dependence chain of
// body single-cycle ALU ops (looping keeps the I-cache warm).
func chainProg(t *testing.T, iters, body int) *emu.Program {
	var b strings.Builder
	b.WriteString("main:\n\tli $t0, 1\n\tli $t1, 1\n")
	fmt.Fprintf(&b, "\tli $s0, %d\nloop:\n", iters)
	for i := 0; i < body; i++ {
		b.WriteString("\taddu $t0, $t0, $t1\n")
	}
	b.WriteString("\taddiu $s0, $s0, -1\n\tbne $s0, $zero, loop\n")
	b.WriteString("\tli $v0, 10\n\tsyscall\n")
	return mustProg(t, b.String())
}

// independentProg builds a loop whose body is 8 independent chains —
// enough instruction-level parallelism to hide a 2-cycle ALU latency on a
// 4-wide machine.
func independentProg(t *testing.T, iters, body int) *emu.Program {
	var b strings.Builder
	b.WriteString("main:\n\tli $s1, 1\n")
	fmt.Fprintf(&b, "\tli $s0, %d\nloop:\n", iters)
	regs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7"}
	for i := 0; i < body; i++ {
		r := regs[i%len(regs)]
		b.WriteString("\taddu " + r + ", " + r + ", $s1\n")
	}
	b.WriteString("\taddiu $s0, $s0, -1\n\tbne $s0, $zero, loop\n")
	b.WriteString("\tli $v0, 10\n\tsyscall\n")
	return mustProg(t, b.String())
}

func run(t *testing.T, prog *emu.Program, cfg Config) *Result {
	t.Helper()
	r, err := Run(prog, cfg, 0)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	return r
}

// TestDependentChainLatencies verifies the paper's core premise: naive
// pipelining of the execution stage stretches dependence chains by the
// slice count, and partial operand bypassing recovers them.
func TestDependentChainLatencies(t *testing.T) {
	prog := func() *emu.Program { return chainProg(t, 400, 16) }

	base := run(t, prog(), BaseConfig())
	if base.IPC < 0.95 || base.IPC > 1.35 {
		t.Fatalf("base chain IPC = %.3f, want ~1.1", base.IPC)
	}

	simple2 := run(t, prog(), SimplePipelined(2))
	if r := base.IPC / simple2.IPC; r < 1.7 || r > 2.2 {
		t.Fatalf("simple-pipe-x2 chain IPC = %.3f (base %.3f), want ~half",
			simple2.IPC, base.IPC)
	}

	simple4 := run(t, prog(), SimplePipelined(4))
	if r := base.IPC / simple4.IPC; r < 3.0 || r > 4.5 {
		t.Fatalf("simple-pipe-x4 chain IPC = %.3f (base %.3f), want ~quarter",
			simple4.IPC, base.IPC)
	}

	cfg2 := SimplePipelined(2)
	cfg2.Name = "bypass-x2"
	cfg2.PartialBypass = true
	bypass2 := run(t, prog(), cfg2)
	if bypass2.IPC < 0.9*base.IPC {
		t.Fatalf("partial bypassing x2 chain IPC = %.3f, want ~%.3f",
			bypass2.IPC, base.IPC)
	}

	cfg4 := SimplePipelined(4)
	cfg4.Name = "bypass-x4"
	cfg4.PartialBypass = true
	bypass4 := run(t, prog(), cfg4)
	if bypass4.IPC < 0.85*base.IPC {
		t.Fatalf("partial bypassing x4 chain IPC = %.3f, want ~%.3f",
			bypass4.IPC, base.IPC)
	}
}

// TestIndependentInstructionsHideLatency: with 4 independent chains the
// pipelined execution stage costs (almost) nothing even without partial
// operand knowledge — throughput, not latency, is the limit.
func TestIndependentInstructionsHideLatency(t *testing.T) {
	base := run(t, independentProg(t, 300, 16), BaseConfig())
	simple2 := run(t, independentProg(t, 300, 16), SimplePipelined(2))
	if base.IPC < 2.5 {
		t.Fatalf("base independent IPC = %.3f, want ~3-4", base.IPC)
	}
	if simple2.IPC < 0.9*base.IPC {
		t.Fatalf("independent code slowed by pipelining: %.3f vs %.3f",
			simple2.IPC, base.IPC)
	}
}

// TestLogicChainOutOfOrderSlices: a chain of xors has no carry chain, so
// with partial bypassing each link still costs one cycle per slice wave;
// out-of-order slices cannot make it worse.
func TestLogicChainConfigsRun(t *testing.T) {
	var b strings.Builder
	b.WriteString("main:\n\tli $t0, 0x1234\n\tli $t1, 0x00ff\n\tli $s0, 300\nloop:\n")
	for i := 0; i < 16; i++ {
		b.WriteString("\txor $t0, $t0, $t1\n")
	}
	b.WriteString("\taddiu $s0, $s0, -1\n\tbne $s0, $zero, loop\n")
	b.WriteString("\tli $v0, 10\n\tsyscall\n")
	prog := b.String()

	cfg := BitSliced(2)
	r := run(t, mustProg(t, prog), cfg)
	if r.IPC < 0.9 {
		t.Fatalf("bit-sliced logic chain IPC = %.3f", r.IPC)
	}
}

func TestBudgetLimitsInstructions(t *testing.T) {
	// Endless loop; the budget must stop the run.
	prog := mustProg(t, "main:\n\tb main\n")
	r, err := Run(prog, BaseConfig(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 500 {
		t.Fatalf("committed %d, want 500", r.Insts)
	}
}

func TestCountersAndAccuracy(t *testing.T) {
	src := `
.data
v: .word 0
.text
main:
	li $t0, 200
	la $t1, v
loop:
	lw $t2, 0($t1)
	addiu $t2, $t2, 1
	sw $t2, 0($t1)
	addiu $t0, $t0, -1
	bne $t0, $zero, loop
	li $v0, 10
	syscall
`
	r := run(t, mustProg(t, src), BaseConfig())
	if r.Loads < 200 || r.Stores < 200 {
		t.Fatalf("loads=%d stores=%d", r.Loads, r.Stores)
	}
	if r.Branches < 200 || r.BranchAccuracy < 0.9 {
		t.Fatalf("branches=%d acc=%.2f", r.Branches, r.BranchAccuracy)
	}
	if r.Insts == 0 || r.Cycles == 0 || r.IPC <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
}

func TestStoreForwarding(t *testing.T) {
	// A tight store->load same-address pattern must forward, not stall.
	// The store data comes off a multiply (slow), so the same-address load
	// must wait in the LSQ and then forward from the store.
	src := `
.data
v: .space 64
.text
main:
	li $t0, 500
	la $t1, v
	li $t3, 3
loop:
	mult $t0, $t3
	mflo $t4
	sw $t4, 0($t1)
	lw $t2, 0($t1)
	addiu $t0, $t0, -1
	bne $t0, $zero, loop
	li $v0, 10
	syscall
`
	cfg := BitSliced(2)
	r := run(t, mustProg(t, src), cfg)
	if r.StoreForwards < 400 {
		t.Fatalf("forwards = %d, want ~500", r.StoreForwards)
	}
}

// TestEarlyBranchResolutionHelps: a branch-mispredict-heavy kernel whose
// comparisons differ in the low bits should resolve faster with early
// branch resolution, reducing total cycles.
func TestEarlyBranchResolutionHelps(t *testing.T) {
	// Data-dependent unpredictable branch: tests the low bit of an LCG.
	src := `
main:
	li $s0, 3000
	li $s7, 12345
loop:
	li $t8, 1103515245
	mult $s7, $t8
	mflo $s7
	addiu $s7, $s7, 12345
	srl $t0, $s7, 16
	andi $t0, $t0, 1
	bne $t0, $zero, odd
	addiu $s1, $s1, 1
odd:
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	with := SimplePipelined(4)
	with.PartialBypass = true
	with.EarlyBranch = true
	with.Name = "early-branch"
	without := SimplePipelined(4)
	without.PartialBypass = true
	without.Name = "no-early-branch"

	rw := run(t, mustProg(t, src), with)
	ro := run(t, mustProg(t, src), without)
	if rw.EarlyResolved == 0 {
		t.Fatal("no branches resolved early")
	}
	if ro.EarlyResolved != 0 {
		t.Fatal("early resolution counted while disabled")
	}
	if rw.Cycles >= ro.Cycles {
		t.Fatalf("early branch resolution did not help: %d vs %d cycles",
			rw.Cycles, ro.Cycles)
	}
}

// TestPartialTagSavesLoadLatency: a load-to-use chain is one cycle shorter
// with partial tag matching.
func TestPartialTagSavesLoadLatency(t *testing.T) {
	// Pointer-chase through L1-resident memory: load latency dominates.
	src := `
.data
p: .space 64
.text
main:
	la $t0, p
	sw $t0, 0($t0)       # self loop
	li $s0, 1000
loop:
	lw $t0, 0($t0)
	lw $t0, 0($t0)
	lw $t0, 0($t0)
	lw $t0, 0($t0)
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	with := SimplePipelined(2)
	with.PartialBypass = true
	with.PartialTag = true
	with.Name = "ptag"
	without := SimplePipelined(2)
	without.PartialBypass = true
	without.Name = "no-ptag"

	rw := run(t, mustProg(t, src), with)
	ro := run(t, mustProg(t, src), without)
	if rw.PartialTagAccess == 0 {
		t.Fatal("no partial tag accesses recorded")
	}
	if rw.Cycles >= ro.Cycles {
		t.Fatalf("partial tag matching did not help: %d vs %d cycles",
			rw.Cycles, ro.Cycles)
	}
}

// TestEarlyLSDisambiguationHelps: a load following stores to clearly
// different low addresses can issue before the stores' full addresses
// resolve.
func TestEarlyLSDisambiguationHelps(t *testing.T) {
	// The store address depends on a long dependence chain (slow agen);
	// the load's address is ready early and differs in the low bits.
	src := `
.data
a: .space 256
b: .space 256
.text
main:
	li $s0, 1000
	la $s1, a
	la $s2, b
loop:
	addu $t0, $s1, $zero  # slow chain feeding the store address
	addu $t0, $t0, $zero
	addu $t0, $t0, $zero
	addu $t0, $t0, $zero
	sw $s0, 4($t0)
	lw $t1, 8($s2)        # provably different low bits
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	with := SimplePipelined(4)
	with.PartialBypass = true
	with.EarlyLSDisambig = true
	with.Name = "early-ls"
	without := SimplePipelined(4)
	without.PartialBypass = true
	without.Name = "no-early-ls"

	rw := run(t, mustProg(t, src), with)
	ro := run(t, mustProg(t, src), without)
	if rw.LoadsEarlyRelease == 0 {
		t.Fatal("no early releases recorded")
	}
	if rw.Cycles > ro.Cycles {
		t.Fatalf("early disambiguation hurt: %d vs %d cycles", rw.Cycles, ro.Cycles)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := BaseConfig()
	bad.Slices = 3
	if _, err := Run(chainProg(t, 5, 4), bad, 0); err == nil {
		t.Fatal("slice count 3 accepted")
	}
	bad = BaseConfig()
	bad.PartialBypass = true // techniques need Slices > 1
	if err := bad.Validate(); err == nil {
		t.Fatal("techniques with Slices=1 accepted")
	}
	good := BitSliced(2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := BitSliced(4)
	r1 := run(t, chainProg(t, 50, 8), cfg)
	r2 := run(t, chainProg(t, 50, 8), cfg)
	if *r1 != *r2 {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", r1, r2)
	}
}

func TestSliceBy4LoadsUse2CycleL1(t *testing.T) {
	cfg := SimplePipelined(4)
	if cfg.L1DLat != 2 {
		t.Fatalf("slice-by-4 L1D latency = %d, want 2", cfg.L1DLat)
	}
	if SimplePipelined(2).L1DLat != 1 {
		t.Fatal("slice-by-2 L1D latency changed")
	}
}

func TestMispredictionPenaltyVisible(t *testing.T) {
	// Alternating branch is learnable by gshare; a random one is not.
	// The random version must burn more cycles per instruction.
	rnd := `
main:
	li $s0, 2000
	li $s7, 987
loop:
	li $t8, 1103515245
	mult $s7, $t8
	mflo $s7
	addiu $s7, $s7, 12345
	srl $t0, $s7, 13
	andi $t0, $t0, 1
	beq $t0, $zero, skip
	nop
skip:
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	steady := strings.Replace(rnd, "andi $t0, $t0, 1", "andi $t0, $t0, 0", 1)
	r1 := run(t, mustProg(t, rnd), BaseConfig())
	r2 := run(t, mustProg(t, steady), BaseConfig())
	if r1.BranchAccuracy > 0.95 {
		t.Fatalf("random branch predicted too well: %.3f", r1.BranchAccuracy)
	}
	if r2.BranchAccuracy < 0.95 {
		t.Fatalf("steady branch predicted too poorly: %.3f", r2.BranchAccuracy)
	}
	if r1.IPC >= r2.IPC {
		t.Fatalf("mispredictions free: rnd %.3f vs steady %.3f IPC", r1.IPC, r2.IPC)
	}
}

// TestPartialTagMissHeavyCompletes is a regression test: a load that
// misses the cache after issuing a partial-tag access (before its full
// address exists) must still complete — its miss confirmation is deferred
// to full-address time, not dropped.
func TestPartialTagMissHeavyCompletes(t *testing.T) {
	// Stride larger than the L1 so almost every load misses.
	src := `
.data
base: .space 16
.text
main:
	li $s0, 400
	li $t0, 0x10000000
	li $t1, 0x20000       # 128KB stride
loop:
	lw $t2, 0($t0)
	addu $t0, $t0, $t1
	lw $t3, 64($t0)
	addu $t0, $t0, $t2    # data-dependent address: agen waits on the load
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	r := run(t, mustProg(t, src), BitSliced(2))
	if r.Loads < 800 {
		t.Fatalf("loads = %d", r.Loads)
	}
	if r.L1DMissRate < 0.5 {
		t.Fatalf("expected miss-heavy run, miss rate %.2f", r.L1DMissRate)
	}
	r4 := run(t, mustProg(t, src), BitSliced(4))
	if r4.Insts != r.Insts {
		t.Fatalf("slice-by-4 committed %d vs %d", r4.Insts, r.Insts)
	}
}

// TestNarrowWidthRelaxesInterSliceDeps: a chain alternating small-valued
// adds with slt (whose result needs every input slice) collapses when the
// machine knows the add results are narrow.
func TestNarrowWidthRelaxesInterSliceDeps(t *testing.T) {
	var b strings.Builder
	b.WriteString("main:\n\tli $t0, 1\n\tli $t2, 100\n\tli $s0, 300\nloop:\n")
	for i := 0; i < 8; i++ {
		b.WriteString("\taddiu $t0, $t0, 1\n")
		b.WriteString("\tandi $t0, $t0, 127\n") // keep the value narrow
		b.WriteString("\tslt $t1, $t0, $t2\n")  // needs all slices of $t0
		b.WriteString("\taddu $t0, $t0, $t1\n") // chain through the compare
	}
	b.WriteString("\taddiu $s0, $s0, -1\n\tbne $s0, $zero, loop\n")
	b.WriteString("\tli $v0, 10\n\tsyscall\n")
	src := b.String()

	with := SimplePipelined(4)
	with.PartialBypass = true
	with.NarrowWidth = true
	with.Name = "narrow"
	without := SimplePipelined(4)
	without.PartialBypass = true
	without.Name = "no-narrow"

	rw := run(t, mustProg(t, src), with)
	ro := run(t, mustProg(t, src), without)
	if float64(rw.Cycles) > 0.8*float64(ro.Cycles) {
		t.Fatalf("narrow-width did not help: %d vs %d cycles", rw.Cycles, ro.Cycles)
	}
}

// TestNarrowWidthValidation: the extension needs slice-granular bypass.
func TestNarrowWidthValidation(t *testing.T) {
	cfg := SimplePipelined(2)
	cfg.NarrowWidth = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("NarrowWidth without PartialBypass accepted")
	}
}

// TestBimodalAblation: swapping gshare for bimodal must run and (on an
// alternating-pattern branch) lose accuracy.
func TestBimodalAblation(t *testing.T) {
	src := `
main:
	li $s0, 2000
loop:
	andi $t0, $s0, 1
	beq $t0, $zero, even
	nop
even:
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	g := BaseConfig()
	bi := BaseConfig()
	bi.UseBimodal = true
	bi.Name = "bimodal"
	rg := run(t, mustProg(t, src), g)
	rb := run(t, mustProg(t, src), bi)
	if rb.BranchAccuracy >= rg.BranchAccuracy {
		t.Fatalf("bimodal (%.3f) not worse than gshare (%.3f) on alternating branch",
			rb.BranchAccuracy, rg.BranchAccuracy)
	}
}

// TestSerialMulReleasesLowSliceEarly: a chain through the low bits of a
// multiply shortens when the multiplier is bit-serial.
func TestSerialMulReleasesLowSliceEarly(t *testing.T) {
	src := `
main:
	li $s0, 800
	li $t0, 3
	li $t1, 5
loop:
	mult $t0, $t1
	mflo $t2
	andi $t0, $t2, 15     # consume only the low slice
	ori $t0, $t0, 3
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	with := SimplePipelined(4)
	with.PartialBypass = true
	with.SerialMul = true
	with.Name = "serial-mul"
	without := SimplePipelined(4)
	without.PartialBypass = true
	without.Name = "parallel-mul"

	rw := run(t, mustProg(t, src), with)
	ro := run(t, mustProg(t, src), without)
	if rw.Cycles >= ro.Cycles {
		t.Fatalf("serial multiplier did not help: %d vs %d cycles",
			rw.Cycles, ro.Cycles)
	}
	// Sanity: validation requires bypass.
	bad := SimplePipelined(2)
	bad.SerialMul = true
	if err := bad.Validate(); err == nil {
		t.Fatal("SerialMul without PartialBypass accepted")
	}
}

// TestSumAddressedBeatsPlainPartialTag: folding address generation into
// the cache decoder removes one more cycle from the load-to-use chain.
func TestSumAddressedBeatsPlainPartialTag(t *testing.T) {
	src := `
.data
p: .space 64
.text
main:
	la $t0, p
	sw $t0, 0($t0)
	li $s0, 1200
loop:
	lw $t0, 0($t0)
	lw $t0, 0($t0)
	lw $t0, 0($t0)
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	ptag := SimplePipelined(2)
	ptag.PartialBypass = true
	ptag.PartialTag = true
	ptag.Name = "ptag"
	sum := ptag
	sum.SumAddressed = true
	sum.Name = "ptag+sum"

	rp := run(t, mustProg(t, src), ptag)
	rs := run(t, mustProg(t, src), sum)
	if rs.Cycles >= rp.Cycles {
		t.Fatalf("sum-addressed did not help: %d vs %d cycles", rs.Cycles, rp.Cycles)
	}
	bad := SimplePipelined(2)
	bad.SumAddressed = true
	if err := bad.Validate(); err == nil {
		t.Fatal("SumAddressed without PartialTag accepted")
	}
}

// TestRunSampledApproximatesFullRun: SMARTS-style sampling with
// functional warming must estimate the full-run IPC closely on a
// steady-state workload, while simulating far fewer instructions in
// detail.
func TestRunSampledApproximatesFullRun(t *testing.T) {
	// A steady loop mixing ALU, loads, stores and branches.
	src := `
.data
buf: .space 4096
.text
main:
	li $s0, 60000
	la $s1, buf
loop:
	andi $t0, $s0, 1023
	addu $t1, $s1, $t0
	lbu $t2, 0($t1)
	addiu $t2, $t2, 1
	sb $t2, 0($t1)
	addu $t3, $t3, $t2
	xor $t3, $t3, $t0
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	cfg := BitSliced(2)
	full, err := Run(mustProg(t, src), cfg, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunSampled(mustProg(t, src), cfg, 10_000, 2_000, 8_000, 15)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Insts >= full.Insts/2 {
		t.Fatalf("sampling simulated too much: %d vs %d", sampled.Insts, full.Insts)
	}
	relErr := (sampled.IPC - full.IPC) / full.IPC
	if relErr < -0.12 || relErr > 0.12 {
		t.Fatalf("sampled IPC %.3f vs full %.3f (err %+.1f%%)",
			sampled.IPC, full.IPC, 100*relErr)
	}
}

// TestRunSampledValidation: bad parameters are rejected.
func TestRunSampledValidation(t *testing.T) {
	if _, err := RunSampled(chainProg(t, 5, 4), BaseConfig(), 0, 0, 10, 1); err == nil {
		t.Fatal("sampleLen 0 accepted")
	}
	if _, err := RunSampled(chainProg(t, 5, 4), BaseConfig(), 0, 10, 10, 0); err == nil {
		t.Fatal("nSamples 0 accepted")
	}
}

// TestRunSampledShortProgram: a program that ends mid-window terminates
// cleanly.
func TestRunSampledShortProgram(t *testing.T) {
	r, err := RunSampled(chainProg(t, 10, 4), BitSliced(4), 0, 1_000_000, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts == 0 || r.IPC <= 0 {
		t.Fatalf("result %+v", r)
	}
}

// TestSliceBy8Extrapolation: the 4-bit-slice machine (beyond the paper's
// study) follows the same trend — simple pipelining costs ~8x on chains,
// bit slicing recovers most of it.
func TestSliceBy8Extrapolation(t *testing.T) {
	prog := func() *emu.Program { return chainProg(t, 200, 16) }
	base := run(t, prog(), BaseConfig())
	simple8 := run(t, prog(), SimplePipelined(8))
	if r := base.IPC / simple8.IPC; r < 5.5 || r > 9.0 {
		t.Fatalf("simple-pipe-x8 chain ratio %.2f, want ~8", r)
	}
	full := BitSliced(8)
	sliced8 := run(t, prog(), full)
	if sliced8.IPC < 0.8*base.IPC {
		t.Fatalf("bit-slice-x8 chain IPC %.3f vs base %.3f", sliced8.IPC, base.IPC)
	}
	// Architectural invariance holds at 8 slices too.
	if sliced8.Insts != base.Insts {
		t.Fatalf("committed counts diverge: %d vs %d", sliced8.Insts, base.Insts)
	}
}

// TestRunSampledWithWrongPath: sampling and wrong-path simulation
// compose — windows drain even when a misprediction shadow spans the
// window boundary.
func TestRunSampledWithWrongPath(t *testing.T) {
	cfg := BitSliced(2)
	cfg.WrongPath = true
	r, err := RunSampled(mustProg(t, mispredictHeavy), cfg, 1000, 1500, 3000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts == 0 || r.IPC <= 0 {
		t.Fatalf("result %+v", r)
	}
}

// TestResultSummary locks the report format's key lines.
func TestResultSummary(t *testing.T) {
	r := run(t, mustProg(t, mispredictHeavy), BitSliced(2))
	r.Benchmark = "probe"
	s := r.Summary()
	for _, want := range []string{"config", "benchmark         probe", "IPC",
		"stall cycles", "store forwards"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestRunWarmSkipsInitialization: fast-forward executes functionally and
// the timed region starts afterwards.
func TestRunWarmSkipsInitialization(t *testing.T) {
	r, err := RunWarm(chainProg(t, 100, 8), BaseConfig(), 300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 200 {
		t.Fatalf("timed %d insts, want 200", r.Insts)
	}
	// FastForward after the simulation started is rejected.
	s, err := NewSim(chainProg(t, 10, 2), BaseConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.FastForward(10); err == nil {
		t.Fatal("FastForward after Run accepted")
	}
	// Warmup failures propagate (undecodable program).
	bad := &emu.Program{Entry: 0x400000, Segments: []emu.Segment{
		{Addr: 0x400000, Data: []byte{0xff, 0xff, 0xff, 0xff}}}}
	if _, err := RunWarm(bad, BaseConfig(), 5, 5); err == nil {
		t.Fatal("warmup decode fault swallowed")
	}
}
