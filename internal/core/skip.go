package core

import "pok/internal/isa"

// Quiet-cycle skipping: the wakeup-wheel idea extended to fetch, dispatch,
// commit and the memory stage. After a cycle in which the front end is
// stalled and no candidate is ready, every future state change is pinned
// to a computable event time — the earliest wheel wakeup, a branch's
// resolveC, the I-cache refill, the front entry's commit-ready time, a
// store's data arrival, a load's address-generation gate, the front-end
// latency of the next dispatch — so the simulator can jump s.now straight
// to the earliest such event instead of iterating cycles that provably do
// nothing. Stall counters that the per-cycle loop would have incremented
// during the jumped-over cycles are bulk-added, replicating the
// first-matching-condition priority of fetch() and dispatch().
//
// The skip is gated (s.skipOK) on the event-driven scheduler with no
// per-cycle observers, and the legacy scheduler never skips — so the
// cross-scheduler equivalence tests compare a skipping run against a
// cycle-by-cycle reference and require bit-identical Results.

// nextCycle returns the cycle Run should simulate next: s.now+1, or a
// later cycle when everything between is provably quiet. The jump is
// capped at the deadlock watchdog's firing cycle so a wedged machine
// reports the same DeadlockError as the per-cycle loop.
func (s *Sim) nextCycle(lastCommit, budget int64) int64 {
	noSkip := s.now + 1
	if !s.skipOK {
		return noSkip
	}
	// A ready candidate retries arbitration every cycle; a port-starved
	// load retries next cycle. Either makes the next cycle non-quiet.
	if len(s.ready) > 0 || s.memStarved {
		return noSkip
	}

	// Fetch ladder, in fetch()'s gate order. Each arm either proves fetch
	// quiet until a known event (recording the per-cycle stall counter the
	// reference loop would charge) or shows fetch active next cycle.
	var fetchCtr *uint64
	target := lastCommit + budget + 1 // watchdog cap
	switch {
	case s.fetchBlockedBy != nil:
		fetchCtr = &s.res.StallMispredict
		if b := s.fetchBlockedBy; b.resolved && b.resolveC < target {
			target = b.resolveC
		}
	case s.wpBranch != nil:
		if !s.wpStopped {
			return noSkip // wrong-path supply fetches every cycle
		}
		fetchCtr = &s.res.StallMispredict
		if b := s.wpBranch; b.resolved && b.resolveC < target {
			target = b.resolveC
		}
	case s.fetchStallTo > s.now+1:
		fetchCtr = &s.res.StallICache
		if s.fetchStallTo < target {
			target = s.fetchStallTo
		}
	case !s.traceDone || s.pendingOK:
		if s.fetchBuf.Len() < (s.cfg.FrontEndDepth+2)*s.cfg.FetchWidth {
			return noSkip // room in the buffer: fetch progresses next cycle
		}
		// Buffer full: fetch idles (uncounted) until dispatch drains it,
		// and dispatch's own events below bound the jump.
	}

	// Dispatch ladder, in dispatch()'s gate order. The occupancies it
	// tests (window, issue queues, LSQ) change only at events that bound
	// the jump, so the blocking cause is constant across skipped cycles.
	var dispCtr *uint64
	if s.fetchBuf.Len() > 0 {
		front := s.fetchBuf.Front()
		if rdy := front.fetchC + int64(s.cfg.FrontEndDepth); rdy > s.now+1 {
			if rdy < target {
				target = rdy // still in the front-end pipe, silently
			}
		} else {
			switch {
			case s.window.Len() >= s.cfg.WindowSize:
				dispCtr = &s.res.StallWindowFull
			case s.cfg.IssueQueueSize > 0 && s.iqCount >= s.cfg.IssueQueueSize:
				dispCtr = &s.res.StallIQFull
			case front.d.Inst.Op.Class() == isa.ClassSyscall && s.window.Len() > 0 && !front.wp:
				// Serialized syscall: drains via commit events, uncounted.
			case (front.isLoad || front.isStore) && s.lsq.Full():
				dispCtr = &s.res.StallLSQFull
			default:
				return noSkip // dispatch proceeds next cycle
			}
		}
	}

	// Scheduler events: the earliest wheel wakeup. Candidates parked at
	// inf are re-enqueued by producer events, which are themselves wheel
	// or memory events already bounding the jump.
	if t := s.wh.min(); t < target {
		target = t
	}

	// Commit event: the cycle the window front completes its last known
	// obligation. Obligations still unknown (inf) resolve only at events
	// that bound the jump, so no commit can occur before target.
	if s.window.Len() > 0 {
		if t := s.frontDoneC(s.window.Front()); t < target {
			target = t
		}
	}

	// Memory-stage events: stores waiting on data, loads waiting on
	// address generation, and partial-tag loads whose completion time
	// becomes computable next cycle.
	for _, e := range s.memWatch {
		if e.committed || e.squashed {
			continue
		}
		if e.isStore && e.lsqInserted {
			if q := e.lsqEnt; q != nil && !q.DataReady {
				if t := s.storeDataReadyC(e); t < target {
					target = t
				}
			}
		}
		if !e.isLoad {
			continue
		}
		if !e.memIssued && e.lsqInserted {
			partialC, fullC := s.agenTimes(e)
			gate := fullC
			if s.cfg.PartialTag {
				gate = partialC
			}
			if gate <= s.now {
				// The load is issueable now but did not issue: either it
				// lost disambiguation this cycle, or its address became
				// known during schedule() after the memory stage had
				// already run. Both retry next cycle and may succeed —
				// the blocking store's state can have changed this very
				// cycle, so no future event bounds the retry.
				return noSkip
			}
			if gate < target {
				target = gate
			}
		}
		if e.memIssued && e.memPendFull != pendNone {
			if _, fullC := s.agenTimes(e); fullC < inf {
				return noSkip // completion finalizes next memory stage
			}
		}
	}

	if target <= noSkip {
		return noSkip
	}
	skipped := uint64(target - noSkip)
	if fetchCtr != nil {
		*fetchCtr += skipped
	}
	if dispCtr != nil {
		*dispCtr += skipped
	}
	return target
}

// frontDoneC returns the cycle the window front will satisfy entryDone,
// considering only obligations whose completion times are already known;
// any unknown obligation returns inf (its resolution is an event that
// bounds the jump on its own).
func (s *Sim) frontDoneC(e *entry) int64 {
	if !e.dispatched || e.wp || e.startedMask != e.fullMask {
		return inf
	}
	t := e.execEnd
	if e.isLoad {
		if e.memActualDone >= inf {
			return inf
		}
		if e.memActualDone > t {
			t = e.memActualDone
		}
	}
	if e.isStore {
		if q := e.lsqEnt; q == nil || !q.DataReady || !q.AddrKnown() {
			return inf
		}
	}
	if e.isCtrl {
		if !e.resolved {
			return inf
		}
		if e.resolveC > t {
			t = e.resolveC
		}
	}
	return t
}

// storeDataReadyC returns the cycle checkStoreData will mark the store's
// data forwardable: the ground-truth availability of every slice of the
// data operand, or inf while a producer's completion is unknown.
func (s *Sim) storeDataReadyC(e *entry) int64 {
	if e.dataSrc < 0 {
		return s.now // degenerate ($zero data): already marked this cycle
	}
	var t int64
	for k := 0; k < s.cfg.Slices; k++ {
		if a := s.srcAvail(e, e.dataSrc, k, false); a > t {
			t = a
			if t >= inf {
				return inf
			}
		}
	}
	return t
}
