package core

import (
	"bytes"
	"strings"
	"testing"
)

// TestWindowFullBackpressure: with a tiny RUU, a long-latency instruction
// at the window head throttles the whole machine.
func TestWindowFullBackpressure(t *testing.T) {
	src := `
main:
	li $s0, 300
	li $t0, 7
	li $t1, 3
loop:
	div $t0, $t1
	mflo $t2
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	big := BaseConfig()
	small := BaseConfig()
	small.WindowSize = 4
	small.Name = "tiny-window"
	rb := run(t, mustProg(t, src), big)
	rs := run(t, mustProg(t, src), small)
	if rs.IPC >= rb.IPC {
		t.Fatalf("tiny window not slower: %.3f vs %.3f", rs.IPC, rb.IPC)
	}
}

// TestLSQFullBackpressure: a 2-entry LSQ throttles a memory-dense loop.
func TestLSQFullBackpressure(t *testing.T) {
	src := `
.data
buf: .space 256
.text
main:
	li $s0, 300
	la $s1, buf
loop:
	lw $t0, 0($s1)
	lw $t1, 4($s1)
	lw $t2, 8($s1)
	sw $t0, 12($s1)
	sw $t1, 16($s1)
	sw $t2, 20($s1)
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	big := BaseConfig()
	small := BaseConfig()
	small.LSQSize = 2
	small.Name = "tiny-lsq"
	rb := run(t, mustProg(t, src), big)
	rs := run(t, mustProg(t, src), small)
	if rs.IPC >= rb.IPC {
		t.Fatalf("tiny LSQ not slower: %.3f vs %.3f", rs.IPC, rb.IPC)
	}
}

// TestDivStructuralHazard: back-to-back independent divides serialize on
// the single non-pipelined divider.
func TestDivStructuralHazard(t *testing.T) {
	src := `
main:
	li $s0, 100
	li $t0, 1000
	li $t1, 7
loop:
	divu $t0, $t1
	divu $t0, $t1
	divu $t0, $t1
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	r := run(t, mustProg(t, src), BaseConfig())
	// 3 divides x 20 cycles each, serialized: at least 60 cycles/iter.
	cyclesPerIter := float64(r.Cycles) / 100
	if cyclesPerIter < 55 {
		t.Fatalf("divides overlapped: %.1f cycles/iter", cyclesPerIter)
	}
}

// TestMulPipelined: independent multiplies pipeline through the single
// multiplier at one per cycle, unlike divides.
func TestMulPipelined(t *testing.T) {
	src := `
main:
	li $s0, 200
	li $t0, 9
	li $t1, 7
loop:
	mult $t0, $t1
	mult $t0, $t1
	mult $t0, $t1
	mult $t0, $t1
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	r := run(t, mustProg(t, src), BaseConfig())
	cyclesPerIter := float64(r.Cycles) / 200
	if cyclesPerIter > 10 {
		t.Fatalf("multiplies serialized: %.1f cycles/iter", cyclesPerIter)
	}
}

// TestSyscallSerializes: a syscall waits for the window to drain, so a
// syscall-dense loop runs far below the machine width.
func TestSyscallSerializes(t *testing.T) {
	src := `
main:
	li $s0, 200
loop:
	li $v0, 9        # sbrk(0): a benign syscall
	li $a0, 0
	syscall
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	r := run(t, mustProg(t, src), BaseConfig())
	if r.IPC > 1.0 {
		t.Fatalf("syscalls did not serialize: IPC %.3f", r.IPC)
	}
}

// TestFPLatencies: an FP add chain runs at the 2-cycle FP latency and an
// FP divide chain at the 12-cycle one.
func TestFPLatencies(t *testing.T) {
	mk := func(op string) string {
		return `
main:
	li $s0, 200
	li.s $f1, 1.5
	li.s $f2, 1.125
loop:
	` + op + ` $f1, $f1, $f2
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	}
	radd := run(t, mustProg(t, mk("add.s")), BaseConfig())
	rdiv := run(t, mustProg(t, mk("div.s")), BaseConfig())
	addPer := float64(radd.Cycles) / 200
	divPer := float64(rdiv.Cycles) / 200
	if addPer < 1.8 || addPer > 3.5 {
		t.Fatalf("fp add chain %.2f cycles/iter, want ~2", addPer)
	}
	if divPer < 11 || divPer > 14 {
		t.Fatalf("fp div chain %.2f cycles/iter, want ~12", divPer)
	}
}

// TestICacheMissStalls: code spread over many lines (poor locality) costs
// fetch stalls compared to a compact loop doing the same work.
func TestICacheMissStalls(t *testing.T) {
	// A program whose working set exceeds the 64KB L1I: 20k instructions
	// of straight-line code executed once.
	var b strings.Builder
	b.WriteString("main:\n")
	for i := 0; i < 20_000; i++ {
		b.WriteString("\taddu $t0, $t0, $t1\n")
	}
	b.WriteString("\tli $v0, 10\n\tsyscall\n")
	r := run(t, mustProg(t, b.String()), BaseConfig())
	if r.L1IMissRate < 0.5 {
		t.Fatalf("straight-line run should miss L1I heavily: %.2f", r.L1IMissRate)
	}
	// The same instruction count in a tight loop stays resident.
	src := `
main:
	li $s0, 2500
	li $t1, 1
loop:
	addu $t0, $t0, $t1
	addu $t0, $t0, $t1
	addu $t0, $t0, $t1
	addu $t0, $t0, $t1
	addu $t0, $t0, $t1
	addu $t0, $t0, $t1
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	rl := run(t, mustProg(t, src), BaseConfig())
	if rl.L1IMissRate > 0.05 {
		t.Fatalf("loop should stay I-cache resident: %.3f", rl.L1IMissRate)
	}
	if rl.IPC <= r.IPC {
		t.Fatalf("I-cache misses free: loop %.3f vs straight %.3f", rl.IPC, r.IPC)
	}
}

// TestTraceOutput: the pipeline trace names every stage for a simple run.
func TestTraceOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := BitSliced(2)
	cfg.Trace = &buf
	if _, err := Run(chainProg(t, 3, 2), cfg, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fetch", "dispatch", "exec", "commit", "slice 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out[:min(len(out), 600)])
		}
	}
}

// TestJalrMispredictRecovers: an indirect jump through a cold BTB blocks
// fetch until it resolves, and the machine still completes.
func TestJalrMispredictRecovers(t *testing.T) {
	src := `
main:
	li $s0, 100
	la $t9, f1
	la $t8, f2
loop:
	andi $t0, $s0, 1
	beqz $t0, pick2
	move $t7, $t9
	b call
pick2:
	move $t7, $t8
call:
	jalr $t7
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
f1:
	addiu $s1, $s1, 1
	jr $ra
f2:
	addiu $s2, $s2, 1
	jr $ra
`
	r := run(t, mustProg(t, src), BaseConfig())
	if r.Insts == 0 {
		t.Fatal("did not complete")
	}
}

// TestIssueQueueBackpressure: a tiny per-slice issue queue throttles
// dispatch behind a long-latency producer even when the window is large.
func TestIssueQueueBackpressure(t *testing.T) {
	// Every instruction depends on a divide, so unissued ops pile up in
	// the issue queue.
	src := `
main:
	li $s0, 200
	li $t0, 10000
	li $t1, 7
loop:
	divu $t0, $t1
	mflo $t2
	addu $t3, $t2, $t2
	addu $t4, $t3, $t3
	addu $t5, $t4, $t4
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	free := BaseConfig()
	tight := BaseConfig()
	tight.IssueQueueSize = 4
	tight.Name = "tiny-iq"
	rf := run(t, mustProg(t, src), free)
	rt := run(t, mustProg(t, src), tight)
	if rt.Insts != rf.Insts {
		t.Fatalf("committed counts diverge: %d vs %d", rt.Insts, rf.Insts)
	}
	if rt.IPC >= rf.IPC {
		t.Fatalf("tiny issue queue not slower: %.3f vs %.3f", rt.IPC, rf.IPC)
	}
}

// TestDTLBMissesCost: loads striding across many pages pay translation
// walks when the data TLB is enabled.
func TestDTLBMissesCost(t *testing.T) {
	src := `
main:
	li $s0, 400
	li $t0, 0x10000000
	li $t1, 0x2000       # 8KB stride: a new page every other load
loop:
	lw $t2, 0($t0)
	addu $t0, $t0, $t1
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	off := BaseConfig()
	on := BaseConfig()
	on.UseDTLB = true
	on.Name = "base+dtlb"
	roff := run(t, mustProg(t, src), off)
	ron := run(t, mustProg(t, src), on)
	if ron.DTLBMissRate <= 0.5 {
		t.Fatalf("DTLB miss rate %.2f, expected page-stride thrashing", ron.DTLBMissRate)
	}
	if roff.DTLBMissRate != 0 {
		t.Fatal("DTLB stats active while disabled")
	}
	if ron.Cycles <= roff.Cycles {
		t.Fatalf("TLB walks free: %d vs %d cycles", ron.Cycles, roff.Cycles)
	}
	// A page-resident loop barely notices the TLB.
	resident := `
.data
buf: .space 64
.text
main:
	li $s0, 400
	la $t0, buf
loop:
	lw $t2, 0($t0)
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	rres := run(t, mustProg(t, resident), on)
	if rres.DTLBMissRate > 0.05 {
		t.Fatalf("resident loop thrashes TLB: %.3f", rres.DTLBMissRate)
	}
}

// TestStallAttribution: each stall counter fires under the condition that
// causes it and stays silent otherwise.
func TestStallAttribution(t *testing.T) {
	// Mispredict stalls on the unpredictable kernel.
	r := run(t, mustProg(t, mispredictHeavy), BaseConfig())
	if r.StallMispredict == 0 {
		t.Fatal("no mispredict stall cycles on unpredictable kernel")
	}
	// Window-full stalls behind a divide with a tiny RUU.
	cfg := BaseConfig()
	cfg.WindowSize = 4
	rw := run(t, mustProg(t, `
main:
	li $s0, 50
	li $t0, 99
	li $t1, 7
loop:
	div $t0, $t1
	mflo $t2
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`), cfg)
	if rw.StallWindowFull == 0 {
		t.Fatal("no window-full stalls with 4-entry RUU behind divides")
	}
	// LSQ-full stalls with a 2-entry queue.
	cfg2 := BaseConfig()
	cfg2.LSQSize = 2
	rl := run(t, mustProg(t, `
.data
b: .space 64
.text
main:
	li $s0, 100
	la $s1, b
loop:
	lw $t0, 0($s1)
	lw $t1, 4($s1)
	lw $t2, 8($s1)
	lw $t3, 12($s1)
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`), cfg2)
	if rl.StallLSQFull == 0 {
		t.Fatal("no LSQ-full stalls with 2-entry queue")
	}
	// A clean straight loop reports none of the structural stalls.
	rc := run(t, chainProg(t, 50, 4), BaseConfig())
	if rc.StallWindowFull != 0 || rc.StallLSQFull != 0 || rc.StallIQFull != 0 {
		t.Fatalf("phantom structural stalls: %+v", rc)
	}
}

// TestLocalPredictorOption: the local-history ablation runs and nails a
// short periodic branch that gshare also learns; config conflicts are
// rejected.
func TestLocalPredictorOption(t *testing.T) {
	src := `
main:
	li $s0, 3000
loop:
	li $t1, 3
	remu $t0, $s0, $t1
	beqz $t0, hit
	nop
hit:
	addiu $s0, $s0, -1
	bne $s0, $zero, loop
	li $v0, 10
	syscall
`
	cfg := BaseConfig()
	cfg.UseLocal = true
	cfg.Name = "base+local"
	r := run(t, mustProg(t, src), cfg)
	if r.BranchAccuracy < 0.9 {
		t.Fatalf("local predictor accuracy %.3f on periodic branch", r.BranchAccuracy)
	}
	bad := BaseConfig()
	bad.UseLocal = true
	bad.UseBimodal = true
	if err := bad.Validate(); err == nil {
		t.Fatal("both predictor ablations accepted")
	}
}
