package isa

import "fmt"

// Binary encoding follows the classic MIPS-I layout:
//
//	R-type: op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)
//	I-type: op(6) rs(5) rt(5) imm(16)
//	J-type: op(6) target(26)
//
// Branch displacements are encoded in words relative to the next
// instruction; Decode leaves Imm as that word displacement (the emulator
// computes targets). J/JAL targets are absolute word addresses within the
// current 256MB segment.

// Primary opcode values.
const (
	popSpecial = 0
	popRegimm  = 1
	popJ       = 2
	popJAL     = 3
	popBEQ     = 4
	popBNE     = 5
	popBLEZ    = 6
	popBGTZ    = 7
	popADDI    = 8
	popADDIU   = 9
	popSLTI    = 10
	popSLTIU   = 11
	popANDI    = 12
	popORI     = 13
	popXORI    = 14
	popLUI     = 15
	popCOP1    = 17
	popLB      = 32
	popLH      = 33
	popLW      = 35
	popLBU     = 36
	popLHU     = 37
	popSB      = 40
	popSH      = 41
	popSW      = 43
	popLWC1    = 49
	popSWC1    = 57
)

// SPECIAL funct values.
const (
	fnSLL     = 0
	fnSRL     = 2
	fnSRA     = 3
	fnSLLV    = 4
	fnSRLV    = 6
	fnSRAV    = 7
	fnJR      = 8
	fnJALR    = 9
	fnSYSCALL = 12
	fnBREAK   = 13
	fnMFHI    = 16
	fnMTHI    = 17
	fnMFLO    = 18
	fnMTLO    = 19
	fnMULT    = 24
	fnMULTU   = 25
	fnDIV     = 26
	fnDIVU    = 27
	fnADD     = 32
	fnADDU    = 33
	fnSUB     = 34
	fnSUBU    = 35
	fnAND     = 36
	fnOR      = 37
	fnXOR     = 38
	fnNOR     = 39
	fnSLT     = 42
	fnSLTU    = 43
)

// COP1 rs-field selectors and FP funct values.
const (
	copMF  = 0
	copMT  = 4
	copBC  = 8
	fmtS   = 16
	fmtW   = 20
	ffADD  = 0
	ffSUB  = 1
	ffMUL  = 2
	ffDIV  = 3
	ffSQRT = 4
	ffABS  = 5
	ffMOV  = 6
	ffNEG  = 7
	ffCVTS = 32
	ffCVTW = 36
	ffCEQ  = 50
	ffCLT  = 60
	ffCLE  = 62
)

func rtype(funct uint32, rs, rt, rd Reg, shamt uint8) uint32 {
	return uint32(rs)&31<<21 | uint32(rt)&31<<16 | uint32(rd)&31<<11 |
		uint32(shamt)&31<<6 | funct&63
}

func itype(pop uint32, rs, rt Reg, imm int32) uint32 {
	return pop<<26 | uint32(rs)&31<<21 | uint32(rt)&31<<16 | uint32(uint16(imm))
}

func fpr(r Reg) uint32 {
	if r >= RegF0 && r < RegF0+32 {
		return uint32(r - RegF0)
	}
	return uint32(r) & 31
}

// Encode converts a decoded instruction into its 32-bit machine word.
func Encode(in Inst) (uint32, error) {
	switch in.Op {
	case OpNOP:
		return 0, nil
	case OpSLL:
		return rtype(fnSLL, 0, in.Rt, in.Rd, in.Shamt), nil
	case OpSRL:
		return rtype(fnSRL, 0, in.Rt, in.Rd, in.Shamt), nil
	case OpSRA:
		return rtype(fnSRA, 0, in.Rt, in.Rd, in.Shamt), nil
	case OpSLLV:
		return rtype(fnSLLV, in.Rs, in.Rt, in.Rd, 0), nil
	case OpSRLV:
		return rtype(fnSRLV, in.Rs, in.Rt, in.Rd, 0), nil
	case OpSRAV:
		return rtype(fnSRAV, in.Rs, in.Rt, in.Rd, 0), nil
	case OpJR:
		return rtype(fnJR, in.Rs, 0, 0, 0), nil
	case OpJALR:
		return rtype(fnJALR, in.Rs, 0, in.Rd, 0), nil
	case OpSYSCALL:
		return rtype(fnSYSCALL, 0, 0, 0, 0), nil
	case OpBREAK:
		return rtype(fnBREAK, 0, 0, 0, 0), nil
	case OpMFHI:
		return rtype(fnMFHI, 0, 0, in.Rd, 0), nil
	case OpMTHI:
		return rtype(fnMTHI, in.Rs, 0, 0, 0), nil
	case OpMFLO:
		return rtype(fnMFLO, 0, 0, in.Rd, 0), nil
	case OpMTLO:
		return rtype(fnMTLO, in.Rs, 0, 0, 0), nil
	case OpMULT:
		return rtype(fnMULT, in.Rs, in.Rt, 0, 0), nil
	case OpMULTU:
		return rtype(fnMULTU, in.Rs, in.Rt, 0, 0), nil
	case OpDIV:
		return rtype(fnDIV, in.Rs, in.Rt, 0, 0), nil
	case OpDIVU:
		return rtype(fnDIVU, in.Rs, in.Rt, 0, 0), nil
	case OpADD:
		return rtype(fnADD, in.Rs, in.Rt, in.Rd, 0), nil
	case OpADDU:
		return rtype(fnADDU, in.Rs, in.Rt, in.Rd, 0), nil
	case OpSUB:
		return rtype(fnSUB, in.Rs, in.Rt, in.Rd, 0), nil
	case OpSUBU:
		return rtype(fnSUBU, in.Rs, in.Rt, in.Rd, 0), nil
	case OpAND:
		return rtype(fnAND, in.Rs, in.Rt, in.Rd, 0), nil
	case OpOR:
		return rtype(fnOR, in.Rs, in.Rt, in.Rd, 0), nil
	case OpXOR:
		return rtype(fnXOR, in.Rs, in.Rt, in.Rd, 0), nil
	case OpNOR:
		return rtype(fnNOR, in.Rs, in.Rt, in.Rd, 0), nil
	case OpSLT:
		return rtype(fnSLT, in.Rs, in.Rt, in.Rd, 0), nil
	case OpSLTU:
		return rtype(fnSLTU, in.Rs, in.Rt, in.Rd, 0), nil

	case OpBLTZ:
		return itype(popRegimm, in.Rs, 0, in.Imm), nil
	case OpBGEZ:
		return itype(popRegimm, in.Rs, 1, in.Imm), nil
	case OpJ:
		return popJ<<26 | in.Target&0x03ffffff, nil
	case OpJAL:
		return popJAL<<26 | in.Target&0x03ffffff, nil
	case OpBEQ:
		return itype(popBEQ, in.Rs, in.Rt, in.Imm), nil
	case OpBNE:
		return itype(popBNE, in.Rs, in.Rt, in.Imm), nil
	case OpBLEZ:
		return itype(popBLEZ, in.Rs, 0, in.Imm), nil
	case OpBGTZ:
		return itype(popBGTZ, in.Rs, 0, in.Imm), nil
	case OpADDI:
		return itype(popADDI, in.Rs, in.Rt, in.Imm), nil
	case OpADDIU:
		return itype(popADDIU, in.Rs, in.Rt, in.Imm), nil
	case OpSLTI:
		return itype(popSLTI, in.Rs, in.Rt, in.Imm), nil
	case OpSLTIU:
		return itype(popSLTIU, in.Rs, in.Rt, in.Imm), nil
	case OpANDI:
		return itype(popANDI, in.Rs, in.Rt, in.Imm), nil
	case OpORI:
		return itype(popORI, in.Rs, in.Rt, in.Imm), nil
	case OpXORI:
		return itype(popXORI, in.Rs, in.Rt, in.Imm), nil
	case OpLUI:
		return itype(popLUI, 0, in.Rt, in.Imm), nil
	case OpLB:
		return itype(popLB, in.Rs, in.Rt, in.Imm), nil
	case OpLH:
		return itype(popLH, in.Rs, in.Rt, in.Imm), nil
	case OpLW:
		return itype(popLW, in.Rs, in.Rt, in.Imm), nil
	case OpLBU:
		return itype(popLBU, in.Rs, in.Rt, in.Imm), nil
	case OpLHU:
		return itype(popLHU, in.Rs, in.Rt, in.Imm), nil
	case OpSB:
		return itype(popSB, in.Rs, in.Rt, in.Imm), nil
	case OpSH:
		return itype(popSH, in.Rs, in.Rt, in.Imm), nil
	case OpSW:
		return itype(popSW, in.Rs, in.Rt, in.Imm), nil
	case OpLWC1:
		return popLWC1<<26 | uint32(in.Rs)&31<<21 | fpr(in.Rt)<<16 |
			uint32(uint16(in.Imm)), nil
	case OpSWC1:
		return popSWC1<<26 | uint32(in.Rs)&31<<21 | fpr(in.Rt)<<16 |
			uint32(uint16(in.Imm)), nil

	case OpMFC1:
		return popCOP1<<26 | copMF<<21 | uint32(in.Rt)&31<<16 | fpr(in.Rs)<<11, nil
	case OpMTC1:
		return popCOP1<<26 | copMT<<21 | uint32(in.Rt)&31<<16 | fpr(in.Rd)<<11, nil
	case OpBC1F:
		return popCOP1<<26 | copBC<<21 | 0<<16 | uint32(uint16(in.Imm)), nil
	case OpBC1T:
		return popCOP1<<26 | copBC<<21 | 1<<16 | uint32(uint16(in.Imm)), nil
	case OpADDS, OpSUBS, OpMULS, OpDIVS, OpSQRTS, OpABSS, OpMOVS, OpNEGS, OpCVTWS:
		var ff uint32
		switch in.Op {
		case OpADDS:
			ff = ffADD
		case OpSUBS:
			ff = ffSUB
		case OpMULS:
			ff = ffMUL
		case OpDIVS:
			ff = ffDIV
		case OpSQRTS:
			ff = ffSQRT
		case OpABSS:
			ff = ffABS
		case OpMOVS:
			ff = ffMOV
		case OpNEGS:
			ff = ffNEG
		case OpCVTWS:
			ff = ffCVTW
		}
		return popCOP1<<26 | fmtS<<21 | fpr(in.Rt)<<16 | fpr(in.Rs)<<11 |
			fpr(in.Rd)<<6 | ff, nil
	case OpCVTSW:
		return popCOP1<<26 | fmtW<<21 | 0<<16 | fpr(in.Rs)<<11 |
			fpr(in.Rd)<<6 | ffCVTS, nil
	case OpCEQS, OpCLTS, OpCLES:
		var ff uint32
		switch in.Op {
		case OpCEQS:
			ff = ffCEQ
		case OpCLTS:
			ff = ffCLT
		case OpCLES:
			ff = ffCLE
		}
		return popCOP1<<26 | fmtS<<21 | fpr(in.Rt)<<16 | fpr(in.Rs)<<11 | ff, nil
	}
	return 0, fmt.Errorf("isa: cannot encode op %v", in.Op)
}

// Decode converts a 32-bit machine word back into a decoded instruction.
func Decode(word uint32) (Inst, error) {
	pop := word >> 26
	rs := Reg(word >> 21 & 31)
	rt := Reg(word >> 16 & 31)
	rd := Reg(word >> 11 & 31)
	shamt := uint8(word >> 6 & 31)
	imm := int32(int16(word & 0xffff))
	switch pop {
	case popSpecial:
		funct := word & 63
		if word == 0 {
			return Inst{Op: OpNOP}, nil
		}
		switch funct {
		case fnSLL:
			return Inst{Op: OpSLL, Rt: rt, Rd: rd, Shamt: shamt}, nil
		case fnSRL:
			return Inst{Op: OpSRL, Rt: rt, Rd: rd, Shamt: shamt}, nil
		case fnSRA:
			return Inst{Op: OpSRA, Rt: rt, Rd: rd, Shamt: shamt}, nil
		case fnSLLV:
			return Inst{Op: OpSLLV, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnSRLV:
			return Inst{Op: OpSRLV, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnSRAV:
			return Inst{Op: OpSRAV, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnJR:
			return Inst{Op: OpJR, Rs: rs}, nil
		case fnJALR:
			return Inst{Op: OpJALR, Rs: rs, Rd: rd}, nil
		case fnSYSCALL:
			return Inst{Op: OpSYSCALL}, nil
		case fnBREAK:
			return Inst{Op: OpBREAK}, nil
		case fnMFHI:
			return Inst{Op: OpMFHI, Rd: rd}, nil
		case fnMTHI:
			return Inst{Op: OpMTHI, Rs: rs}, nil
		case fnMFLO:
			return Inst{Op: OpMFLO, Rd: rd}, nil
		case fnMTLO:
			return Inst{Op: OpMTLO, Rs: rs}, nil
		case fnMULT:
			return Inst{Op: OpMULT, Rs: rs, Rt: rt}, nil
		case fnMULTU:
			return Inst{Op: OpMULTU, Rs: rs, Rt: rt}, nil
		case fnDIV:
			return Inst{Op: OpDIV, Rs: rs, Rt: rt}, nil
		case fnDIVU:
			return Inst{Op: OpDIVU, Rs: rs, Rt: rt}, nil
		case fnADD:
			return Inst{Op: OpADD, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnADDU:
			return Inst{Op: OpADDU, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnSUB:
			return Inst{Op: OpSUB, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnSUBU:
			return Inst{Op: OpSUBU, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnAND:
			return Inst{Op: OpAND, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnOR:
			return Inst{Op: OpOR, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnXOR:
			return Inst{Op: OpXOR, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnNOR:
			return Inst{Op: OpNOR, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnSLT:
			return Inst{Op: OpSLT, Rs: rs, Rt: rt, Rd: rd}, nil
		case fnSLTU:
			return Inst{Op: OpSLTU, Rs: rs, Rt: rt, Rd: rd}, nil
		}
	case popRegimm:
		switch rt {
		case 0:
			return Inst{Op: OpBLTZ, Rs: rs, Imm: imm}, nil
		case 1:
			return Inst{Op: OpBGEZ, Rs: rs, Imm: imm}, nil
		}
	case popJ:
		return Inst{Op: OpJ, Target: word & 0x03ffffff}, nil
	case popJAL:
		return Inst{Op: OpJAL, Target: word & 0x03ffffff}, nil
	case popBEQ:
		return Inst{Op: OpBEQ, Rs: rs, Rt: rt, Imm: imm}, nil
	case popBNE:
		return Inst{Op: OpBNE, Rs: rs, Rt: rt, Imm: imm}, nil
	case popBLEZ:
		return Inst{Op: OpBLEZ, Rs: rs, Imm: imm}, nil
	case popBGTZ:
		return Inst{Op: OpBGTZ, Rs: rs, Imm: imm}, nil
	case popADDI:
		return Inst{Op: OpADDI, Rs: rs, Rt: rt, Imm: imm}, nil
	case popADDIU:
		return Inst{Op: OpADDIU, Rs: rs, Rt: rt, Imm: imm}, nil
	case popSLTI:
		return Inst{Op: OpSLTI, Rs: rs, Rt: rt, Imm: imm}, nil
	case popSLTIU:
		return Inst{Op: OpSLTIU, Rs: rs, Rt: rt, Imm: imm}, nil
	case popANDI:
		return Inst{Op: OpANDI, Rs: rs, Rt: rt, Imm: int32(word & 0xffff)}, nil
	case popORI:
		return Inst{Op: OpORI, Rs: rs, Rt: rt, Imm: int32(word & 0xffff)}, nil
	case popXORI:
		return Inst{Op: OpXORI, Rs: rs, Rt: rt, Imm: int32(word & 0xffff)}, nil
	case popLUI:
		return Inst{Op: OpLUI, Rt: rt, Imm: int32(word & 0xffff)}, nil
	case popLB:
		return Inst{Op: OpLB, Rs: rs, Rt: rt, Imm: imm}, nil
	case popLH:
		return Inst{Op: OpLH, Rs: rs, Rt: rt, Imm: imm}, nil
	case popLW:
		return Inst{Op: OpLW, Rs: rs, Rt: rt, Imm: imm}, nil
	case popLBU:
		return Inst{Op: OpLBU, Rs: rs, Rt: rt, Imm: imm}, nil
	case popLHU:
		return Inst{Op: OpLHU, Rs: rs, Rt: rt, Imm: imm}, nil
	case popSB:
		return Inst{Op: OpSB, Rs: rs, Rt: rt, Imm: imm}, nil
	case popSH:
		return Inst{Op: OpSH, Rs: rs, Rt: rt, Imm: imm}, nil
	case popSW:
		return Inst{Op: OpSW, Rs: rs, Rt: rt, Imm: imm}, nil
	case popLWC1:
		return Inst{Op: OpLWC1, Rs: rs, Rt: RegF0 + rt, Imm: imm}, nil
	case popSWC1:
		return Inst{Op: OpSWC1, Rs: rs, Rt: RegF0 + rt, Imm: imm}, nil
	case popCOP1:
		sel := word >> 21 & 31
		switch sel {
		case copMF:
			return Inst{Op: OpMFC1, Rt: rt, Rs: RegF0 + rd}, nil
		case copMT:
			return Inst{Op: OpMTC1, Rt: rt, Rd: RegF0 + rd}, nil
		case copBC:
			if rt&1 == 1 {
				return Inst{Op: OpBC1T, Imm: imm}, nil
			}
			return Inst{Op: OpBC1F, Imm: imm}, nil
		case fmtS:
			ft, fs, fd := RegF0+rt, RegF0+rd, RegF0+Reg(shamt)
			switch word & 63 {
			case ffADD:
				return Inst{Op: OpADDS, Rs: fs, Rt: ft, Rd: fd}, nil
			case ffSUB:
				return Inst{Op: OpSUBS, Rs: fs, Rt: ft, Rd: fd}, nil
			case ffMUL:
				return Inst{Op: OpMULS, Rs: fs, Rt: ft, Rd: fd}, nil
			case ffDIV:
				return Inst{Op: OpDIVS, Rs: fs, Rt: ft, Rd: fd}, nil
			case ffSQRT:
				return Inst{Op: OpSQRTS, Rs: fs, Rd: fd}, nil
			case ffABS:
				return Inst{Op: OpABSS, Rs: fs, Rd: fd}, nil
			case ffMOV:
				return Inst{Op: OpMOVS, Rs: fs, Rd: fd}, nil
			case ffNEG:
				return Inst{Op: OpNEGS, Rs: fs, Rd: fd}, nil
			case ffCVTW:
				return Inst{Op: OpCVTWS, Rs: fs, Rd: fd}, nil
			case ffCEQ:
				return Inst{Op: OpCEQS, Rs: fs, Rt: ft}, nil
			case ffCLT:
				return Inst{Op: OpCLTS, Rs: fs, Rt: ft}, nil
			case ffCLE:
				return Inst{Op: OpCLES, Rs: fs, Rt: ft}, nil
			}
		case fmtW:
			fs, fd := RegF0+rd, RegF0+Reg(shamt)
			if word&63 == ffCVTS {
				return Inst{Op: OpCVTSW, Rs: fs, Rd: fd}, nil
			}
		}
	}
	return Inst{}, fmt.Errorf("isa: cannot decode word 0x%08x", word)
}
