// Package isa defines the 32-bit PISA-like instruction set used throughout
// the simulator. The ISA follows the SimpleScalar PISA conventions the paper
// evaluates on: a MIPS-derived register ISA with no branch delay slots,
// 32 general-purpose registers, HI/LO multiply registers and a small
// single-precision floating-point extension.
//
// Instructions have a fixed 32-bit binary encoding (R/I/J formats) so
// programs can be assembled to, stored as, and decoded from real machine
// words; the timing model additionally consults per-opcode slice-dependency
// metadata (see deps.go) to schedule bit-sliced execution.
package isa

import "fmt"

// Reg names an architectural register. 0..31 are the general-purpose
// registers, RegHI/RegLO the multiply-divide pair, 34..65 the FP registers
// and RegFCC the floating-point condition flag.
type Reg uint8

// Special register indices beyond the 32 GPRs.
const (
	RegZero Reg = 0 // hardwired zero
	RegAT   Reg = 1 // assembler temporary
	RegV0   Reg = 2 // syscall selector / return value
	RegV1   Reg = 3
	RegA0   Reg = 4 // first argument
	RegA1   Reg = 5
	RegA2   Reg = 6
	RegA3   Reg = 7
	RegT0   Reg = 8
	RegS0   Reg = 16
	RegGP   Reg = 28
	RegSP   Reg = 29
	RegFP   Reg = 30
	RegRA   Reg = 31

	RegHI  Reg = 32
	RegLO  Reg = 33
	RegF0  Reg = 34 // FP register file base: $f0 == RegF0+0 ... $f31 == RegF0+31
	RegFCC Reg = 66 // FP condition code

	// NumRegs is the size of the flat architectural register file used by
	// the emulator and renamer (GPRs + HI/LO + 32 FP + FCC).
	NumRegs = 67
)

var gprNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional MIPS name for the register ("$v0", "$f2").
func (r Reg) String() string {
	switch {
	case r < 32:
		return "$" + gprNames[r]
	case r == RegHI:
		return "$hi"
	case r == RegLO:
		return "$lo"
	case r >= RegF0 && r < RegF0+32:
		return fmt.Sprintf("$f%d", r-RegF0)
	case r == RegFCC:
		return "$fcc"
	}
	return fmt.Sprintf("$r%d", uint8(r))
}

// GPRByName maps "$t0"/"t0"/"$8"/"8" style names to a GPR index.
func GPRByName(name string) (Reg, bool) {
	if len(name) > 0 && name[0] == '$' {
		name = name[1:]
	}
	for i, n := range gprNames {
		if n == name {
			return Reg(i), true
		}
	}
	// numeric form
	v := 0
	if len(name) == 0 {
		return 0, false
	}
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	if v < 32 {
		return Reg(v), true
	}
	return 0, false
}

// Op enumerates the decoded operations of the ISA.
type Op uint8

// Operation codes. The groupings (arithmetic, logic, shift, memory,
// control, FP) drive both functional execution and slice scheduling.
const (
	OpInvalid Op = iota

	// Integer arithmetic.
	OpADD
	OpADDU
	OpSUB
	OpSUBU
	OpADDI
	OpADDIU
	OpSLT
	OpSLTU
	OpSLTI
	OpSLTIU
	OpMULT
	OpMULTU
	OpDIV
	OpDIVU
	OpMFHI
	OpMFLO
	OpMTHI
	OpMTLO

	// Logic.
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpANDI
	OpORI
	OpXORI
	OpLUI

	// Shifts.
	OpSLL
	OpSRL
	OpSRA
	OpSLLV
	OpSRLV
	OpSRAV

	// Memory.
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW
	OpSB
	OpSH
	OpSW
	OpLWC1
	OpSWC1

	// Control.
	OpBEQ
	OpBNE
	OpBLEZ
	OpBGTZ
	OpBLTZ
	OpBGEZ
	OpJ
	OpJAL
	OpJR
	OpJALR
	OpBC1T
	OpBC1F

	// Floating point (single precision).
	OpADDS
	OpSUBS
	OpMULS
	OpDIVS
	OpSQRTS
	OpABSS
	OpNEGS
	OpMOVS
	OpCVTSW
	OpCVTWS
	OpCEQS
	OpCLTS
	OpCLES
	OpMFC1
	OpMTC1

	// System.
	OpSYSCALL
	OpBREAK
	OpNOP

	NumOps = int(OpNOP) + 1
)

var opNames = map[Op]string{
	OpADD: "add", OpADDU: "addu", OpSUB: "sub", OpSUBU: "subu",
	OpADDI: "addi", OpADDIU: "addiu", OpSLT: "slt", OpSLTU: "sltu",
	OpSLTI: "slti", OpSLTIU: "sltiu", OpMULT: "mult", OpMULTU: "multu",
	OpDIV: "div", OpDIVU: "divu", OpMFHI: "mfhi", OpMFLO: "mflo",
	OpMTHI: "mthi", OpMTLO: "mtlo",
	OpAND: "and", OpOR: "or", OpXOR: "xor", OpNOR: "nor",
	OpANDI: "andi", OpORI: "ori", OpXORI: "xori", OpLUI: "lui",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra",
	OpSLLV: "sllv", OpSRLV: "srlv", OpSRAV: "srav",
	OpLB: "lb", OpLBU: "lbu", OpLH: "lh", OpLHU: "lhu", OpLW: "lw",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpLWC1: "lwc1", OpSWC1: "swc1",
	OpBEQ: "beq", OpBNE: "bne", OpBLEZ: "blez", OpBGTZ: "bgtz",
	OpBLTZ: "bltz", OpBGEZ: "bgez", OpJ: "j", OpJAL: "jal",
	OpJR: "jr", OpJALR: "jalr", OpBC1T: "bc1t", OpBC1F: "bc1f",
	OpADDS: "add.s", OpSUBS: "sub.s", OpMULS: "mul.s", OpDIVS: "div.s",
	OpSQRTS: "sqrt.s", OpABSS: "abs.s", OpNEGS: "neg.s", OpMOVS: "mov.s",
	OpCVTSW: "cvt.s.w", OpCVTWS: "cvt.w.s",
	OpCEQS: "c.eq.s", OpCLTS: "c.lt.s", OpCLES: "c.le.s",
	OpMFC1: "mfc1", OpMTC1: "mtc1",
	OpSYSCALL: "syscall", OpBREAK: "break", OpNOP: "nop",
}

// String returns the assembler mnemonic for the op.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName maps an assembler mnemonic back to its Op.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// Class partitions ops by how the pipeline treats them.
type Class uint8

// Instruction classes.
const (
	ClassIntALU   Class = iota // single-cycle integer (full-width) / sliceable
	ClassIntMul                // multiply (bit-serial capable)
	ClassIntDiv                // divide (full-width unit)
	ClassLoad                  // memory read
	ClassStore                 // memory write
	ClassBranch                // conditional branch
	ClassJump                  // unconditional control
	ClassFP                    // floating-point ALU (full-width unit)
	ClassFPMulDiv              // FP multiply/divide/sqrt
	ClassSyscall               // system / serializing
)

// Class returns the pipeline class of the op.
func (o Op) Class() Class {
	switch o {
	case OpMULT, OpMULTU:
		return ClassIntMul
	case OpDIV, OpDIVU:
		return ClassIntDiv
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWC1:
		return ClassLoad
	case OpSB, OpSH, OpSW, OpSWC1:
		return ClassStore
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ, OpBC1T, OpBC1F:
		return ClassBranch
	case OpJ, OpJAL, OpJR, OpJALR:
		return ClassJump
	case OpADDS, OpSUBS, OpABSS, OpNEGS, OpMOVS, OpCVTSW, OpCVTWS,
		OpCEQS, OpCLTS, OpCLES, OpMFC1, OpMTC1:
		return ClassFP
	case OpMULS, OpDIVS, OpSQRTS:
		return ClassFPMulDiv
	case OpSYSCALL, OpBREAK:
		return ClassSyscall
	}
	return ClassIntALU
}

// IsLoad reports whether the op reads memory.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsBranch reports whether the op is a conditional branch.
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsControl reports whether the op can redirect the PC.
func (o Op) IsControl() bool {
	c := o.Class()
	return c == ClassBranch || c == ClassJump
}

// MemSize returns the access width in bytes for memory ops (0 otherwise).
func (o Op) MemSize() uint8 {
	switch o {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpSW, OpLWC1, OpSWC1:
		return 4
	}
	return 0
}

// Inst is a decoded instruction. Rs/Rt/Rd follow MIPS conventions; ops that
// do not use a field leave it as RegZero. Imm holds the sign- or
// zero-extended immediate as appropriate for the op; Target holds the
// absolute word target for J/JAL; Shamt the shift amount for immediate
// shifts.
type Inst struct {
	Op     Op
	Rs     Reg
	Rt     Reg
	Rd     Reg
	Shamt  uint8
	Imm    int32
	Target uint32
}

// Sources returns the architectural registers the instruction reads.
// The zero register is omitted (it is never a real dependence).
func (in *Inst) Sources() []Reg {
	var out []Reg
	add := func(r Reg) {
		if r != RegZero {
			out = append(out, r)
		}
	}
	switch in.Op {
	case OpADD, OpADDU, OpSUB, OpSUBU, OpSLT, OpSLTU,
		OpAND, OpOR, OpXOR, OpNOR, OpSLLV, OpSRLV, OpSRAV:
		add(in.Rs)
		add(in.Rt)
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI:
		add(in.Rs)
	case OpLUI:
	case OpSLL, OpSRL, OpSRA:
		add(in.Rt)
	case OpMULT, OpMULTU, OpDIV, OpDIVU:
		add(in.Rs)
		add(in.Rt)
	case OpMFHI:
		add(RegHI)
	case OpMFLO:
		add(RegLO)
	case OpMTHI, OpMTLO:
		add(in.Rs)
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWC1:
		add(in.Rs)
	case OpSB, OpSH, OpSW:
		add(in.Rs)
		add(in.Rt)
	case OpSWC1:
		add(in.Rs)
		add(in.Rt) // FP source
	case OpBEQ, OpBNE:
		add(in.Rs)
		add(in.Rt)
	case OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		add(in.Rs)
	case OpJR, OpJALR:
		add(in.Rs)
	case OpBC1T, OpBC1F:
		add(RegFCC)
	case OpADDS, OpSUBS, OpMULS, OpDIVS, OpCEQS, OpCLTS, OpCLES:
		add(in.Rs)
		add(in.Rt)
	case OpSQRTS, OpABSS, OpNEGS, OpMOVS, OpCVTSW, OpCVTWS:
		add(in.Rs)
	case OpMFC1:
		add(in.Rs) // FP source
	case OpMTC1:
		add(in.Rt) // GPR source
	case OpSYSCALL:
		add(RegV0)
		add(RegA0)
	}
	return out
}

// Dest returns the architectural register the instruction writes, or
// RegZero if it writes none.
func (in *Inst) Dest() Reg {
	switch in.Op {
	case OpADD, OpADDU, OpSUB, OpSUBU, OpSLT, OpSLTU,
		OpAND, OpOR, OpXOR, OpNOR,
		OpSLL, OpSRL, OpSRA, OpSLLV, OpSRLV, OpSRAV:
		return in.Rd
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI, OpLUI:
		return in.Rt
	case OpMULT, OpMULTU, OpDIV, OpDIVU:
		return RegLO // HI handled as implicit second dest by emulator
	case OpMFHI, OpMFLO:
		return in.Rd
	case OpMTHI:
		return RegHI
	case OpMTLO:
		return RegLO
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWC1, OpMTC1:
		return in.Rt
	case OpJAL:
		return RegRA
	case OpJALR:
		return in.Rd
	case OpADDS, OpSUBS, OpMULS, OpDIVS, OpSQRTS, OpABSS, OpNEGS,
		OpMOVS, OpCVTSW, OpCVTWS:
		return in.Rd
	case OpCEQS, OpCLTS, OpCLES:
		return RegFCC
	case OpMFC1:
		return in.Rt
	}
	return RegZero
}

// String disassembles the instruction.
func (in *Inst) String() string {
	switch in.Op {
	case OpNOP, OpSYSCALL, OpBREAK:
		return in.Op.String()
	case OpADD, OpADDU, OpSUB, OpSUBU, OpSLT, OpSLTU,
		OpAND, OpOR, OpXOR, OpNOR:
		return fmt.Sprintf("%s %s,%s,%s", in.Op, in.Rd, in.Rs, in.Rt)
	case OpSLLV, OpSRLV, OpSRAV:
		return fmt.Sprintf("%s %s,%s,%s", in.Op, in.Rd, in.Rt, in.Rs)
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI:
		return fmt.Sprintf("%s %s,%s,%d", in.Op, in.Rt, in.Rs, in.Imm)
	case OpLUI:
		return fmt.Sprintf("lui %s,0x%x", in.Rt, uint16(in.Imm))
	case OpSLL, OpSRL, OpSRA:
		return fmt.Sprintf("%s %s,%s,%d", in.Op, in.Rd, in.Rt, in.Shamt)
	case OpMULT, OpMULTU, OpDIV, OpDIVU:
		return fmt.Sprintf("%s %s,%s", in.Op, in.Rs, in.Rt)
	case OpMFHI, OpMFLO:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	case OpMTHI, OpMTLO, OpJR:
		return fmt.Sprintf("%s %s", in.Op, in.Rs)
	case OpJALR:
		return fmt.Sprintf("jalr %s,%s", in.Rd, in.Rs)
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpSB, OpSH, OpSW, OpLWC1, OpSWC1:
		return fmt.Sprintf("%s %s,%d(%s)", in.Op, in.Rt, in.Imm, in.Rs)
	case OpBEQ, OpBNE:
		return fmt.Sprintf("%s %s,%s,%d", in.Op, in.Rs, in.Rt, in.Imm)
	case OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return fmt.Sprintf("%s %s,%d", in.Op, in.Rs, in.Imm)
	case OpJ, OpJAL:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Target)
	case OpBC1T, OpBC1F:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case OpMFC1:
		return fmt.Sprintf("mfc1 %s,%s", in.Rt, in.Rs)
	case OpMTC1:
		return fmt.Sprintf("mtc1 %s,%s", in.Rt, in.Rd)
	default:
		return fmt.Sprintf("%s %s,%s,%s", in.Op, in.Rd, in.Rs, in.Rt)
	}
}
