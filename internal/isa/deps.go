package isa

// SliceProfile classifies how an operation's output slices depend on its
// input slices in a bit-sliced datapath (paper §6, Figure 8). The timing
// model uses the profile to build per-slice dependence edges; the
// functional substrate in internal/bitslice implements the matching
// slice-at-a-time arithmetic.
type SliceProfile uint8

// Slice profiles.
const (
	// SliceLogic: output slice s depends only on input slices s. Slices may
	// execute out of order (Figure 8c).
	SliceLogic SliceProfile = iota
	// SliceCarry: output slice s depends on input slices s and the carry
	// out of slice s-1, forcing serial low-to-high evaluation (Figure 8b).
	SliceCarry
	// SliceCompareLow: the boolean result lands in bit 0 but requires the
	// full-width comparison; the upper (all-zero) slices are known at
	// decode while slice 0 becomes available only after the top slice of
	// the inputs has been examined (slt and friends).
	SliceCompareLow
	// SliceShiftLeft: output slice s depends on input slices <= s (data
	// moves toward higher bits), enabling low-first pipelined evaluation.
	SliceShiftLeft
	// SliceShiftRight: output slice s depends on input slices >= s, so the
	// high slice of the result is available first.
	SliceShiftRight
	// SliceSerialMul: bit-serial multiplication; output slices emerge
	// low-first, one per cycle after all input slices arrive serially.
	SliceSerialMul
	// SliceFullWidth: the unit collects every input slice before starting
	// and produces all output slices together (divide, floating point).
	SliceFullWidth
)

// SliceProfile returns the slice-dependency profile for the op. For memory
// ops the profile describes the address-generation add; the memory data
// itself is full-width. For branches it describes the comparison.
func (o Op) SliceProfile() SliceProfile {
	switch o {
	case OpAND, OpOR, OpXOR, OpNOR, OpANDI, OpORI, OpXORI, OpLUI,
		OpMFHI, OpMFLO, OpMTHI, OpMTLO, OpNOP:
		return SliceLogic
	case OpADD, OpADDU, OpSUB, OpSUBU, OpADDI, OpADDIU:
		return SliceCarry
	case OpSLT, OpSLTU, OpSLTI, OpSLTIU:
		return SliceCompareLow
	case OpSLL, OpSLLV:
		return SliceShiftLeft
	case OpSRL, OpSRA, OpSRLV, OpSRAV:
		return SliceShiftRight
	case OpMULT, OpMULTU:
		return SliceSerialMul
	case OpDIV, OpDIVU,
		OpADDS, OpSUBS, OpMULS, OpDIVS, OpSQRTS, OpABSS, OpNEGS, OpMOVS,
		OpCVTSW, OpCVTWS, OpCEQS, OpCLTS, OpCLES, OpMFC1, OpMTC1:
		return SliceFullWidth
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWC1,
		OpSB, OpSH, OpSW, OpSWC1:
		return SliceCarry // effective address generation
	case OpBEQ, OpBNE:
		return SliceLogic // per-slice equality comparison
	case OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return SliceCompareLow // sign test needs the top slice
	case OpJ, OpJAL:
		return SliceLogic
	case OpJR, OpJALR:
		return SliceFullWidth // full target address required to redirect
	case OpBC1T, OpBC1F:
		return SliceFullWidth
	}
	return SliceFullWidth
}

// EqualityBranch reports whether the op is one of the two conditional
// branch types (beq, bne) that can detect a misprediction from a partial
// comparison: a single differing operand slice refutes asserted equality
// without knowledge of the remaining bits (paper §5.3).
func (o Op) EqualityBranch() bool { return o == OpBEQ || o == OpBNE }

// NeedsSignBit reports whether the branch type tests the operand sign and
// therefore cannot resolve before the top slice is available.
func (o Op) NeedsSignBit() bool {
	switch o {
	case OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return true
	}
	return false
}

// InputSliceRange returns which input slices (of the op's register
// sources) are required to produce output slice out, for a datapath split
// into nSlices slices. Every slice profile needs a contiguous range, so
// the requirement is returned as the half-open interval [lo, hi) — an
// empty requirement has lo == hi. The boolean serialCarry result indicates
// an additional dependence on the op's own previous output slice (the
// carry chain). This is the allocation-free form the timing model's
// per-issue dependence checks use.
func (o Op) InputSliceRange(out, nSlices int) (lo, hi int, serialCarry bool) {
	switch o.SliceProfile() {
	case SliceLogic:
		return out, out + 1, false
	case SliceCarry:
		return out, out + 1, out > 0
	case SliceCompareLow:
		if out == 0 {
			return 0, nSlices, false
		}
		return 0, 0, false // upper slices are constant zero
	case SliceShiftLeft:
		return 0, out + 1, false
	case SliceShiftRight:
		return out, nSlices, false
	default: // SliceSerialMul, SliceFullWidth
		return 0, nSlices, false
	}
}

// InputSlicesFor returns InputSliceRange materialized as a slice of
// indices (convenient in tests and offline tools; the timing model's hot
// paths use the range form directly).
func (o Op) InputSlicesFor(out, nSlices int) (in []int, serialCarry bool) {
	lo, hi, carry := o.InputSliceRange(out, nSlices)
	if lo == hi {
		return nil, carry
	}
	in = make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		in = append(in, i)
	}
	return in, carry
}
