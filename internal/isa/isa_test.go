package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst generates a random but well-formed instruction for op.
func randInst(op Op, r *rand.Rand) Inst {
	gpr := func() Reg { return Reg(r.Intn(32)) }
	fpr := func() Reg { return RegF0 + Reg(r.Intn(32)) }
	imm := func() int32 { return int32(int16(r.Uint32())) }
	uimm := func() int32 { return int32(r.Uint32() & 0xffff) }
	in := Inst{Op: op}
	switch op {
	case OpADD, OpADDU, OpSUB, OpSUBU, OpSLT, OpSLTU,
		OpAND, OpOR, OpXOR, OpNOR, OpSLLV, OpSRLV, OpSRAV:
		in.Rs, in.Rt, in.Rd = gpr(), gpr(), gpr()
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU:
		in.Rs, in.Rt, in.Imm = gpr(), gpr(), imm()
	case OpANDI, OpORI, OpXORI, OpLUI:
		in.Rs, in.Rt, in.Imm = gpr(), gpr(), uimm()
		if op == OpLUI {
			in.Rs = 0
		}
	case OpSLL, OpSRL, OpSRA:
		in.Rt, in.Rd, in.Shamt = gpr(), gpr(), uint8(r.Intn(32))
	case OpMULT, OpMULTU, OpDIV, OpDIVU:
		in.Rs, in.Rt = gpr(), gpr()
	case OpMFHI, OpMFLO:
		in.Rd = gpr()
	case OpMTHI, OpMTLO, OpJR:
		in.Rs = gpr()
	case OpJALR:
		in.Rs, in.Rd = gpr(), gpr()
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpSB, OpSH, OpSW:
		in.Rs, in.Rt, in.Imm = gpr(), gpr(), imm()
	case OpLWC1, OpSWC1:
		in.Rs, in.Rt, in.Imm = gpr(), fpr(), imm()
	case OpBEQ, OpBNE:
		in.Rs, in.Rt, in.Imm = gpr(), gpr(), imm()
	case OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		in.Rs, in.Imm = gpr(), imm()
	case OpJ, OpJAL:
		in.Target = r.Uint32() & 0x03ffffff
	case OpBC1T, OpBC1F:
		in.Imm = imm()
	case OpADDS, OpSUBS, OpMULS, OpDIVS:
		in.Rs, in.Rt, in.Rd = fpr(), fpr(), fpr()
	case OpSQRTS, OpABSS, OpNEGS, OpMOVS, OpCVTSW, OpCVTWS:
		in.Rs, in.Rd = fpr(), fpr()
	case OpCEQS, OpCLTS, OpCLES:
		in.Rs, in.Rt = fpr(), fpr()
	case OpMFC1:
		in.Rs, in.Rt = fpr(), gpr()
	case OpMTC1:
		in.Rt, in.Rd = gpr(), fpr()
	}
	return in
}

var allEncodableOps = []Op{
	OpADD, OpADDU, OpSUB, OpSUBU, OpADDI, OpADDIU, OpSLT, OpSLTU, OpSLTI,
	OpSLTIU, OpMULT, OpMULTU, OpDIV, OpDIVU, OpMFHI, OpMFLO, OpMTHI, OpMTLO,
	OpAND, OpOR, OpXOR, OpNOR, OpANDI, OpORI, OpXORI, OpLUI,
	OpSLL, OpSRL, OpSRA, OpSLLV, OpSRLV, OpSRAV,
	OpLB, OpLBU, OpLH, OpLHU, OpLW, OpSB, OpSH, OpSW, OpLWC1, OpSWC1,
	OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ, OpJ, OpJAL, OpJR, OpJALR,
	OpBC1T, OpBC1F,
	OpADDS, OpSUBS, OpMULS, OpDIVS, OpSQRTS, OpABSS, OpNEGS, OpMOVS,
	OpCVTSW, OpCVTWS, OpCEQS, OpCLTS, OpCLES, OpMFC1, OpMTC1,
	OpSYSCALL, OpBREAK, OpNOP,
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, op := range allEncodableOps {
		for trial := 0; trial < 64; trial++ {
			want := randInst(op, r)
			word, err := Encode(want)
			if err != nil {
				t.Fatalf("%v: encode: %v", op, err)
			}
			got, err := Decode(word)
			if err != nil {
				t.Fatalf("%v: decode 0x%08x: %v", op, word, err)
			}
			// SLL r0,r0,0 is the canonical NOP encoding.
			if want.Op == OpSLL && want.Rt == 0 && want.Rd == 0 && want.Shamt == 0 {
				if got.Op != OpNOP {
					t.Fatalf("sll $0,$0,0 should decode to nop, got %v", got)
				}
				continue
			}
			if got != want {
				t.Fatalf("%v roundtrip mismatch:\n want %+v\n got  %+v (word 0x%08x)",
					op, want, got, word)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []uint32{
		0xfc000000,            // unused primary opcode 63
		popSpecial<<26 | 63,   // unused funct
		popRegimm<<26 | 5<<16, // unused regimm selector
	}
	for _, w := range bad {
		if in, err := Decode(w); err == nil {
			t.Errorf("Decode(0x%08x) = %v, want error", w, in)
		}
	}
}

func TestNopEncodesToZero(t *testing.T) {
	w, err := Encode(Inst{Op: OpNOP})
	if err != nil || w != 0 {
		t.Fatalf("Encode(nop) = 0x%08x, %v; want 0", w, err)
	}
}

func TestSourcesAndDest(t *testing.T) {
	cases := []struct {
		in   Inst
		srcs []Reg
		dst  Reg
	}{
		{Inst{Op: OpADDU, Rs: 2, Rt: 3, Rd: 4}, []Reg{2, 3}, 4},
		{Inst{Op: OpADDIU, Rs: 2, Rt: 3, Imm: 5}, []Reg{2}, 3},
		{Inst{Op: OpADDU, Rs: 0, Rt: 3, Rd: 4}, []Reg{3}, 4}, // $zero dropped
		{Inst{Op: OpLUI, Rt: 7, Imm: 0x1002}, nil, 7},
		{Inst{Op: OpLW, Rs: 29, Rt: 8, Imm: 4}, []Reg{29}, 8},
		{Inst{Op: OpSW, Rs: 29, Rt: 8, Imm: 4}, []Reg{29, 8}, RegZero},
		{Inst{Op: OpBEQ, Rs: 5, Rt: 6}, []Reg{5, 6}, RegZero},
		{Inst{Op: OpJAL, Target: 64}, nil, RegRA},
		{Inst{Op: OpJR, Rs: 31}, []Reg{31}, RegZero},
		{Inst{Op: OpMULT, Rs: 4, Rt: 5}, []Reg{4, 5}, RegLO},
		{Inst{Op: OpMFLO, Rd: 9}, []Reg{RegLO}, 9},
		{Inst{Op: OpSLL, Rt: 3, Rd: 4, Shamt: 2}, []Reg{3}, 4},
		{Inst{Op: OpCEQS, Rs: RegF0, Rt: RegF0 + 1}, []Reg{RegF0, RegF0 + 1}, RegFCC},
		{Inst{Op: OpBC1T}, []Reg{RegFCC}, RegZero},
	}
	for _, c := range cases {
		got := c.in.Sources()
		if len(got) != len(c.srcs) {
			t.Errorf("%v Sources() = %v, want %v", c.in.Op, got, c.srcs)
			continue
		}
		for i := range got {
			if got[i] != c.srcs[i] {
				t.Errorf("%v Sources() = %v, want %v", c.in.Op, got, c.srcs)
			}
		}
		if d := c.in.Dest(); d != c.dst {
			t.Errorf("%v Dest() = %v, want %v", c.in.Op, d, c.dst)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !OpLW.IsLoad() || OpLW.IsStore() || !OpSW.IsStore() {
		t.Fatal("load/store predicates wrong")
	}
	if !OpBEQ.IsBranch() || !OpBEQ.IsControl() || OpJ.IsBranch() || !OpJ.IsControl() {
		t.Fatal("branch/control predicates wrong")
	}
	if OpLW.MemSize() != 4 || OpLH.MemSize() != 2 || OpSB.MemSize() != 1 ||
		OpADD.MemSize() != 0 {
		t.Fatal("MemSize wrong")
	}
	if OpMULT.Class() != ClassIntMul || OpDIVU.Class() != ClassIntDiv ||
		OpSQRTS.Class() != ClassFPMulDiv || OpSYSCALL.Class() != ClassSyscall {
		t.Fatal("Class wrong")
	}
}

func TestSliceProfiles(t *testing.T) {
	cases := map[Op]SliceProfile{
		OpAND: SliceLogic, OpORI: SliceLogic, OpLUI: SliceLogic,
		OpADDU: SliceCarry, OpSUB: SliceCarry, OpLW: SliceCarry, OpSW: SliceCarry,
		OpSLT: SliceCompareLow, OpBLEZ: SliceCompareLow,
		OpSLL: SliceShiftLeft, OpSRAV: SliceShiftRight,
		OpMULT: SliceSerialMul, OpDIV: SliceFullWidth, OpADDS: SliceFullWidth,
		OpBEQ: SliceLogic, OpJR: SliceFullWidth,
	}
	for op, want := range cases {
		if got := op.SliceProfile(); got != want {
			t.Errorf("%v.SliceProfile() = %v, want %v", op, got, want)
		}
	}
	if !OpBEQ.EqualityBranch() || !OpBNE.EqualityBranch() || OpBLEZ.EqualityBranch() {
		t.Fatal("EqualityBranch wrong")
	}
	if !OpBGEZ.NeedsSignBit() || OpBEQ.NeedsSignBit() {
		t.Fatal("NeedsSignBit wrong")
	}
}

func TestInputSlicesFor(t *testing.T) {
	// Carry chain: slice 2 of an add needs input slice 2 plus the carry.
	in, carry := OpADDU.InputSlicesFor(2, 4)
	if len(in) != 1 || in[0] != 2 || !carry {
		t.Fatalf("add slice 2: got %v carry=%v", in, carry)
	}
	in, carry = OpADDU.InputSlicesFor(0, 4)
	if len(in) != 1 || in[0] != 0 || carry {
		t.Fatalf("add slice 0: got %v carry=%v", in, carry)
	}
	// Logic: only the matching slice.
	in, carry = OpXOR.InputSlicesFor(3, 4)
	if len(in) != 1 || in[0] != 3 || carry {
		t.Fatalf("xor slice 3: got %v carry=%v", in, carry)
	}
	// slt: slice 0 needs everything, upper slices nothing.
	in, _ = OpSLT.InputSlicesFor(0, 4)
	if len(in) != 4 {
		t.Fatalf("slt slice 0: got %v", in)
	}
	in, _ = OpSLT.InputSlicesFor(1, 4)
	if len(in) != 0 {
		t.Fatalf("slt slice 1: got %v", in)
	}
	// Left shift: slice s needs slices 0..s; right shift s..N-1.
	in, _ = OpSLL.InputSlicesFor(2, 4)
	if len(in) != 3 {
		t.Fatalf("sll slice 2: got %v", in)
	}
	in, _ = OpSRL.InputSlicesFor(2, 4)
	if len(in) != 2 || in[0] != 2 || in[1] != 3 {
		t.Fatalf("srl slice 2: got %v", in)
	}
	// Full width ops need all slices for every output slice.
	in, _ = OpDIV.InputSlicesFor(1, 2)
	if len(in) != 2 {
		t.Fatalf("div slice 1: got %v", in)
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		0: "$zero", 2: "$v0", 29: "$sp", 31: "$ra",
		RegHI: "$hi", RegLO: "$lo", RegF0 + 2: "$f2", RegFCC: "$fcc",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestGPRByName(t *testing.T) {
	for _, c := range []struct {
		name string
		reg  Reg
		ok   bool
	}{
		{"$t0", 8, true}, {"t0", 8, true}, {"$31", 31, true}, {"5", 5, true},
		{"$zero", 0, true}, {"$f2", 0, false}, {"$xx", 0, false}, {"32", 0, false},
		{"", 0, false},
	} {
		r, ok := GPRByName(c.name)
		if ok != c.ok || (ok && r != c.reg) {
			t.Errorf("GPRByName(%q) = %v,%v; want %v,%v", c.name, r, ok, c.reg, c.ok)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for _, op := range allEncodableOps {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v", op.String(), got, ok)
		}
	}
}

// Property: decoding any encodable word never panics and re-encoding a
// successfully decoded instruction reproduces the word (for canonical
// encodings produced by Encode).
func TestQuickEncodeStability(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(opIdx uint8, seed int64) bool {
		op := allEncodableOps[int(opIdx)%len(allEncodableOps)]
		in := randInst(op, r)
		w1, err := Encode(in)
		if err != nil {
			return false
		}
		dec, err := Decode(w1)
		if err != nil {
			return false
		}
		w2, err := Encode(dec)
		return err == nil && w1 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDisassembly checks the printable form of every instruction format.
func TestDisassembly(t *testing.T) {
	cases := map[string]Inst{
		"addu $t2,$t0,$t1":  {Op: OpADDU, Rd: 10, Rs: 8, Rt: 9},
		"sllv $t2,$t1,$t0":  {Op: OpSLLV, Rd: 10, Rt: 9, Rs: 8},
		"addiu $t1,$t0,-4":  {Op: OpADDIU, Rt: 9, Rs: 8, Imm: -4},
		"lui $t0,0x1002":    {Op: OpLUI, Rt: 8, Imm: 0x1002},
		"sll $t1,$t0,3":     {Op: OpSLL, Rd: 9, Rt: 8, Shamt: 3},
		"mult $t0,$t1":      {Op: OpMULT, Rs: 8, Rt: 9},
		"mflo $t0":          {Op: OpMFLO, Rd: 8},
		"mthi $t0":          {Op: OpMTHI, Rs: 8},
		"jr $ra":            {Op: OpJR, Rs: RegRA},
		"jalr $t0,$t1":      {Op: OpJALR, Rd: 8, Rs: 9},
		"lw $t0,8($sp)":     {Op: OpLW, Rt: 8, Rs: RegSP, Imm: 8},
		"sb $t0,-1($sp)":    {Op: OpSB, Rt: 8, Rs: RegSP, Imm: -1},
		"beq $t0,$t1,-3":    {Op: OpBEQ, Rs: 8, Rt: 9, Imm: -3},
		"blez $t0,5":        {Op: OpBLEZ, Rs: 8, Imm: 5},
		"j 0x100":           {Op: OpJ, Target: 0x100},
		"bc1t 2":            {Op: OpBC1T, Imm: 2},
		"mfc1 $t0,$f2":      {Op: OpMFC1, Rt: 8, Rs: RegF0 + 2},
		"mtc1 $t0,$f2":      {Op: OpMTC1, Rt: 8, Rd: RegF0 + 2},
		"add.s $f3,$f1,$f2": {Op: OpADDS, Rd: RegF0 + 3, Rs: RegF0 + 1, Rt: RegF0 + 2},
		"nop":               {Op: OpNOP},
		"syscall":           {Op: OpSYSCALL},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	// Every encodable op has a printable, non-panicking form.
	for _, op := range allEncodableOps {
		in := Inst{Op: op, Rs: 1, Rt: 2, Rd: 3, Imm: 4, Target: 5}
		if in.String() == "" {
			t.Errorf("%v prints empty", op)
		}
	}
	if Op(250).String() == "" || Reg(200).String() == "" {
		t.Error("unknown op/reg must still print")
	}
}

// TestSourcesDestSweep drives Sources/Dest across every encodable op to
// guarantee no panics and basic sanity ($zero never appears, at most one
// explicit destination plus HI for multiply/divide).
func TestSourcesDestSweep(t *testing.T) {
	for _, op := range allEncodableOps {
		in := Inst{Op: op, Rs: 4, Rt: 5, Rd: 6}
		if op == OpMFC1 || op == OpSQRTS || op == OpADDS {
			in.Rs = RegF0 + 4
		}
		for _, s := range in.Sources() {
			if s == RegZero {
				t.Errorf("%v: Sources contains $zero", op)
			}
		}
		_ = in.Dest()
	}
}

// TestGoldenMIPSEncodings pins our binary format against real MIPS-I
// machine words (cross-checked with standard assembler output).
func TestGoldenMIPSEncodings(t *testing.T) {
	golden := map[uint32]Inst{
		0x01095021: {Op: OpADDU, Rd: 10, Rs: 8, Rt: 9},   // addu $t2,$t0,$t1
		0x8fa80004: {Op: OpLW, Rt: 8, Rs: RegSP, Imm: 4}, // lw $t0,4($sp)
		0xafa80004: {Op: OpSW, Rt: 8, Rs: RegSP, Imm: 4}, // sw $t0,4($sp)
		0x11090001: {Op: OpBEQ, Rs: 8, Rt: 9, Imm: 1},    // beq $t0,$t1,+1
		0x0c100000: {Op: OpJAL, Target: 0x100000},        // jal 0x400000
		0x00094080: {Op: OpSLL, Rd: 8, Rt: 9, Shamt: 2},  // sll $t0,$t1,2
		0x3c011001: {Op: OpLUI, Rt: 1, Imm: 0x1001},      // lui $at,0x1001
		0x25080001: {Op: OpADDIU, Rt: 8, Rs: 8, Imm: 1},  // addiu $t0,$t0,1
		0x03e00008: {Op: OpJR, Rs: RegRA},                // jr $ra
		0x0000000c: {Op: OpSYSCALL},                      // syscall
		0x01094824: {Op: OpAND, Rd: 9, Rs: 8, Rt: 9},     // and $t1,$t0,$t1
		0x0109001a: {Op: OpDIV, Rs: 8, Rt: 9},            // div $t0,$t1
	}
	for word, in := range golden {
		got, err := Encode(in)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if got != word {
			t.Errorf("%v encodes to 0x%08x, real MIPS is 0x%08x", in, got, word)
		}
		dec, err := Decode(word)
		if err != nil || dec != in {
			t.Errorf("0x%08x decodes to %+v (%v), want %+v", word, dec, err, in)
		}
	}
}
