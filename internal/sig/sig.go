// Package sig defines the failure signature shared by the ddmin
// reducer (internal/check/reduce), the soak harness (internal/soak) and
// the fleet coordinator (internal/serve). A signature is the
// (kind, field) pair that identifies a *class* of failure — "divergence
// on dstval", "invariant rob-age-order", "deadlock", "panic",
// "timeout" — independent of which seed, config or scheduler produced
// it. The reducer uses it to guarantee a minimization never swaps one
// bug for another; the soak and the fleet use the identical matcher to
// dedupe findings, so a signature deduped locally and a signature
// deduped by the coordinator can never disagree.
package sig

import (
	"fmt"

	"pok/internal/check"
)

// Signature classifies one run. Kind "" means the run was clean;
// otherwise it matches check.Report.FailKind plus the harness-level
// kinds "panic", "timeout" and "error". Field refines the class: the
// diverging commit field, or the violated invariant rule.
type Signature struct {
	Kind  string `json:"kind"`
	Field string `json:"field,omitempty"`
}

// Failing reports whether the signature is a failure of any kind.
func (s Signature) Failing() bool { return s.Kind != "" }

// Matches reports whether s reproduces ref: kinds must agree, and when
// ref has a field (divergence field / invariant rule) it must agree
// too — a reduction or dedupe that conflates a dstval divergence with
// a pc divergence would be mixing two different bugs.
func (s Signature) Matches(ref Signature) bool {
	if s.Kind != ref.Kind {
		return false
	}
	return ref.Field == "" || s.Field == ref.Field
}

// Key is the canonical dedupe key. Signatures dedupe equal iff their
// keys are equal.
func (s Signature) Key() string {
	if s.Field == "" {
		return s.Kind
	}
	return s.Kind + "/" + s.Field
}

// String renders the signature for logs ("divergence/dstval").
func (s Signature) String() string {
	if !s.Failing() {
		return "clean"
	}
	return s.Key()
}

// Classify maps a check.Report to its failure signature.
func Classify(rep *check.Report) Signature {
	if rep == nil || rep.OK {
		return Signature{}
	}
	out := Signature{Kind: rep.FailKind}
	switch {
	case rep.Divergence != nil:
		out.Field = rep.Divergence.Field
	case rep.Invariant != nil:
		out.Field = rep.Invariant.Rule
	}
	return out
}

// Class is one deduped signature class: the signature, how many
// findings mapped to it, and the index (into the caller's finding
// order) of the first exemplar.
type Class struct {
	Sig   Signature `json:"sig"`
	Count int       `json:"count"`
	First int       `json:"first"`
}

// Deduper groups signatures by Key in first-seen order. The zero value
// is ready to use.
type Deduper struct {
	order []string
	byKey map[string]*Class
	n     int
}

// Add records one signature and reports whether it opened a new class.
func (d *Deduper) Add(s Signature) bool {
	if d.byKey == nil {
		d.byKey = make(map[string]*Class)
	}
	idx := d.n
	d.n++
	k := s.Key()
	if c, ok := d.byKey[k]; ok {
		c.Count++
		return false
	}
	d.byKey[k] = &Class{Sig: s, Count: 1, First: idx}
	d.order = append(d.order, k)
	return true
}

// Classes returns the deduped classes in first-seen order.
func (d *Deduper) Classes() []Class {
	out := make([]Class, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, *d.byKey[k])
	}
	return out
}

// Len is the number of distinct classes.
func (d *Deduper) Len() int { return len(d.order) }

// Summary renders "N findings in M distinct signatures" with the class
// list, for CLI footers.
func (d *Deduper) Summary() string {
	s := fmt.Sprintf("%d findings in %d distinct signatures", d.n, d.Len())
	for _, c := range d.Classes() {
		s += fmt.Sprintf("\n  %-24s x%d", c.Sig.Key(), c.Count)
	}
	return s
}
