package sig

import (
	"reflect"
	"testing"

	"pok/internal/check"
)

func TestMatches(t *testing.T) {
	dstval := Signature{Kind: "divergence", Field: "dstval"}
	pc := Signature{Kind: "divergence", Field: "pc"}
	anyDiv := Signature{Kind: "divergence"}
	panicSig := Signature{Kind: "panic"}

	if !dstval.Matches(dstval) {
		t.Fatal("signature must match itself")
	}
	if dstval.Matches(pc) {
		t.Fatal("dstval divergence must not match pc divergence")
	}
	// A ref without a field accepts any field of the same kind.
	if !pc.Matches(anyDiv) {
		t.Fatal("field-less ref must accept any field")
	}
	// ...but a ref with a field rejects a field-less observation.
	if anyDiv.Matches(dstval) {
		t.Fatal("field-less observation must not satisfy a field ref")
	}
	if dstval.Matches(panicSig) {
		t.Fatal("kinds must agree")
	}
	if (Signature{}).Failing() || !panicSig.Failing() {
		t.Fatal("Failing misclassifies")
	}
}

func TestClassify(t *testing.T) {
	if got := Classify(nil); got.Failing() {
		t.Fatalf("Classify(nil) = %v, want clean", got)
	}
	if got := Classify(&check.Report{OK: true}); got.Failing() {
		t.Fatalf("Classify(ok) = %v, want clean", got)
	}
	rep := &check.Report{
		FailKind:   "divergence",
		Divergence: &check.Divergence{Field: "dstval"},
	}
	want := Signature{Kind: "divergence", Field: "dstval"}
	if got := Classify(rep); got != want {
		t.Fatalf("Classify = %v, want %v", got, want)
	}
	iv := &check.Report{
		FailKind:  "invariant",
		Invariant: &check.InvariantReport{Rule: "rob-age-order"},
	}
	want = Signature{Kind: "invariant", Field: "rob-age-order"}
	if got := Classify(iv); got != want {
		t.Fatalf("Classify(invariant) = %v, want %v", got, want)
	}
}

func TestDeduper(t *testing.T) {
	var d Deduper
	sigs := []Signature{
		{Kind: "divergence", Field: "dstval"},
		{Kind: "deadlock"},
		{Kind: "divergence", Field: "dstval"},
		{Kind: "divergence", Field: "pc"},
		{Kind: "divergence", Field: "dstval"},
	}
	news := 0
	for _, s := range sigs {
		if d.Add(s) {
			news++
		}
	}
	if news != 3 || d.Len() != 3 {
		t.Fatalf("got %d new / %d classes, want 3 / 3", news, d.Len())
	}
	want := []Class{
		{Sig: Signature{Kind: "divergence", Field: "dstval"}, Count: 3, First: 0},
		{Sig: Signature{Kind: "deadlock"}, Count: 1, First: 1},
		{Sig: Signature{Kind: "divergence", Field: "pc"}, Count: 1, First: 3},
	}
	if got := d.Classes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Classes = %+v, want %+v", got, want)
	}
}
