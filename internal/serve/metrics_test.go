package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pok/internal/metrics"
	"pok/internal/profile"
	"pok/internal/soak"
)

// testSnap builds a lease snapshot whose slice2 CPI stack keeps the
// component-sum-equals-cycles invariant.
func testSnap(programs, runs int, insts uint64, comps [profile.NumComponents]int64) *metrics.Snapshot {
	st := &profile.CPIStack{Config: "slice2", Insts: insts}
	for _, c := range comps {
		st.Cycles += c
	}
	st.Comp = comps
	return &metrics.Snapshot{
		Programs: programs, Runs: runs,
		Insts: insts, Cycles: st.Cycles, WallNanos: int64(time.Second),
		Replays: 2, RPCRetries: 1,
		Stacks: map[string]*profile.CPIStack{"slice2": st.Clone()},
	}
}

// promSeries parses an exposition payload into series -> value,
// skipping comments.
func promSeries(t *testing.T, text []byte) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestFleetMetricsAggregation scripts two workers over a two-cell job
// and asserts the whole observability pipeline: per-job merged
// snapshots, the sample ring, per-worker throughput rows, and the
// /metrics scrape whose CPI-stack component series sum exactly to the
// job's attributed-cycle total.
func TestFleetMetricsAggregation(t *testing.T) {
	c, _ := testCoordinator(time.Minute)
	id := soakJob(t, c, 4, 2)

	a1 := c.Lease("w1", "")
	a2 := c.Lease("w2", "")
	if a1 == nil || a2 == nil {
		t.Fatal("expected two leases")
	}

	s1 := testSnap(1, 1, 1000, [profile.NumComponents]int64{500, 100, 50, 25, 0, 0, 25, 0, 0})
	c.Heartbeat(Heartbeat{Lease: a1.Lease, Worker: "w1", Cursor: a1.Start + 1,
		Runs: 1, Snapshot: s1})
	// A keepalive heartbeat (no progress) must not grow the sample ring.
	c.Heartbeat(Heartbeat{Lease: a1.Lease, Worker: "w1", Cursor: a1.Start + 1,
		Runs: 1, Snapshot: s1})

	f1 := testSnap(2, 2, 2500, [profile.NumComponents]int64{1200, 200, 100, 50, 10, 0, 40, 0, 0})
	f2 := testSnap(2, 2, 3000, [profile.NumComponents]int64{1500, 300, 0, 0, 0, 0, 0, 100, 0})
	f2.Findings = 1 // mirrors the soak loop's snap.Findings = len(rep.Findings)
	if err := c.Complete(CellResult{Lease: a1.Lease, Worker: "w1", Cursor: a1.End,
		Runs: 2, Snapshot: f1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(CellResult{Lease: a2.Lease, Worker: "w2", Cursor: a2.End,
		Runs: 2, Findings: []soak.Finding{finding(a2.Start)}, Snapshot: f2}); err != nil {
		t.Fatal(err)
	}

	m := c.Metrics()
	if len(m.Jobs) != 1 || m.Jobs[0].ID != id {
		t.Fatalf("jobs = %+v, want just %s", m.Jobs, id)
	}
	job := m.Jobs[0]
	snap := job.Snapshot
	if snap == nil {
		t.Fatal("job has no merged snapshot")
	}
	wantCycles := f1.Cycles + f2.Cycles
	if snap.Cycles != wantCycles || snap.Insts != 5500 || snap.Runs != 4 {
		t.Fatalf("job snapshot cycles=%d insts=%d runs=%d, want %d/5500/4",
			snap.Cycles, snap.Insts, snap.Runs, wantCycles)
	}
	st := snap.Stacks["slice2"]
	if st == nil || st.Sum() != st.Cycles || st.Cycles != wantCycles {
		t.Fatalf("merged stack %+v, want component sum == cycles == %d", st, wantCycles)
	}
	// One sample per progress event: heartbeat (dup suppressed) + the
	// two completes.
	if len(m.Samples) != 3 {
		t.Fatalf("sample ring has %d entries, want 3: %+v", len(m.Samples), m.Samples)
	}
	if m.Samples[0].Worker != "w1" || m.Samples[0].Insts != 1000 {
		t.Fatalf("first sample %+v, want w1 heartbeat insts=1000", m.Samples[0])
	}
	if len(m.Workers) != 2 {
		t.Fatalf("workers = %+v, want w1 and w2", m.Workers)
	}
	for _, w := range m.Workers {
		want := map[string]uint64{"w1": 2500, "w2": 3000}[w.Name]
		if w.Insts != want {
			t.Fatalf("worker %s insts=%d, want %d", w.Name, w.Insts, want)
		}
		if w.MinstPerSec <= 0 {
			t.Fatalf("worker %s has no throughput: %+v", w.Name, w)
		}
	}

	// The scrape: per-component series must sum to the cycles total.
	text := c.PromText()
	series := promSeries(t, text)
	var compSum float64
	for comp := 0; comp < profile.NumComponents; comp++ {
		key := fmt.Sprintf(`pok_job_cpistack_cycles_total{job="%s",config="slice2",component="%s"}`,
			id, profile.Component(comp).String())
		v, ok := series[key]
		if !ok {
			t.Fatalf("scrape is missing %s", key)
		}
		compSum += v
	}
	cyc := series[fmt.Sprintf(`pok_job_cycles_total{job="%s",config="slice2"}`, id)]
	if compSum != cyc || cyc != float64(wantCycles) {
		t.Fatalf("component sum %v != cycles total %v (want %d)", compSum, cyc, wantCycles)
	}
	for _, key := range []string{
		`pok_worker_insts_total{worker="w1"}`,
		`pok_worker_rpc_retries_total{worker="w1"}`,
		fmt.Sprintf(`pok_job_findings_total{job="%s"}`, id),
		"pok_queue_depth",
	} {
		if _, ok := series[key]; !ok {
			t.Fatalf("scrape is missing %s", key)
		}
	}
	if series[fmt.Sprintf(`pok_job_findings_total{job="%s"}`, id)] != 1 {
		t.Fatal("findings series != 1")
	}
	// Byte-stable for a fixed fleet state.
	if again := c.PromText(); !bytes.Equal(text, again) {
		t.Fatal("second scrape differs from first")
	}
}

// TestMetricsJournalReplay: a journaled coordinator replayed from disk
// rebuilds the job snapshots AND the sample ring byte-identically (the
// worker table is ephemeral by design and excluded, as in dumpState).
func TestMetricsJournalReplay(t *testing.T) {
	dir := t.TempDir()
	c, _ := testCoordinator(time.Minute)
	journaled(t, c, dir)
	soakJob(t, c, 4, 2)

	a1 := c.Lease("w1", "")
	a2 := c.Lease("w2", "")
	s1 := testSnap(1, 1, 1000, [profile.NumComponents]int64{700, 100, 0, 0, 0, 0, 0, 0, 0})
	c.Heartbeat(Heartbeat{Lease: a1.Lease, Worker: "w1", Cursor: a1.Start + 1,
		Runs: 1, Snapshot: s1})
	f1 := testSnap(2, 2, 2000, [profile.NumComponents]int64{1400, 200, 0, 0, 0, 0, 0, 0, 0})
	if err := c.Complete(CellResult{Lease: a1.Lease, Worker: "w1", Cursor: a1.End,
		Runs: 2, Snapshot: f1}); err != nil {
		t.Fatal(err)
	}
	// Leave the second lease live mid-flight: its heartbeat snapshot
	// must survive the crash too.
	s2 := testSnap(1, 1, 500, [profile.NumComponents]int64{400, 0, 0, 0, 0, 0, 100, 0, 0})
	c.Heartbeat(Heartbeat{Lease: a2.Lease, Worker: "w2", Cursor: a2.Start + 1,
		Runs: 1, Snapshot: s2})

	dump := func(c *Coordinator) string {
		m := c.Metrics()
		blob, err := json.MarshalIndent(struct {
			Jobs    []JobMetrics
			Samples []MetricsSample
		}{m.Jobs, m.Samples}, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	want := dump(c)

	rc, _ := testCoordinator(time.Minute)
	rj, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.AttachJournal(rj); err != nil {
		t.Fatal(err)
	}
	if got := dump(rc); got != want {
		t.Fatalf("replayed metrics differ:\n--- live ---\n%s\n--- replayed ---\n%s", want, got)
	}
}

// TestStatusAndMetricsETags: /api/status, /api/metrics and /metrics
// answer 304 to a matching If-None-Match and invalidate the ETag when
// fleet state changes.
func TestStatusAndMetricsETags(t *testing.T) {
	c, _ := testCoordinator(time.Minute)
	soakJob(t, c, 4, 2)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func(path, inm string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, resp.Header.Get("ETag")
	}

	for _, path := range []string{"/api/status", "/api/metrics", "/metrics"} {
		resp, etag := get(path, "")
		if resp.StatusCode != 200 || etag == "" {
			t.Fatalf("GET %s: status %d etag %q, want 200 + etag", path, resp.StatusCode, etag)
		}
		if resp, _ := get(path, etag); resp.StatusCode != http.StatusNotModified {
			t.Fatalf("GET %s with matching If-None-Match: %d, want 304", path, resp.StatusCode)
		}
		// State change invalidates the tag.
		a := c.Lease("w", "")
		if a == nil {
			t.Fatal("no lease")
		}
		resp2, etag2 := get(path, etag)
		if resp2.StatusCode != 200 || etag2 == etag {
			t.Fatalf("GET %s after state change: %d etag %q, want 200 + fresh etag",
				path, resp2.StatusCode, etag2)
		}
		c.Release(ReleaseRequest{Lease: a.Lease, Worker: "w", Cursor: a.Start})
	}
}
