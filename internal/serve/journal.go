package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pok/internal/metrics"
	"pok/internal/soak"
)

// Journal is the coordinator's write-ahead log: an append-only JSONL
// file recording every state transition — job submissions, lease
// grants, heartbeat cursor advances, steals, completions, failures,
// releases and expiries — so a restarted coordinator can rebuild the
// exact wavefront it died with. State transitions are fsync'd;
// heartbeat cursor records are appended without fsync (they only cost
// re-running a few programs if the very last ones are lost to a
// kernel crash — process crashes lose nothing, the page cache
// survives them).
//
// The log is replayed by Coordinator.AttachJournal. A torn final line
// (the record being appended when the process died) is tolerated and
// ignored; any other malformed record is corruption and fails the
// replay loudly.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int

	// FailAfter, when > 0, makes every append past that many records
	// return an error — a test fault-point simulating a coordinator
	// that dies between a state transition and its journal append.
	FailAfter int

	// afterAppend, when non-nil, runs after each durable append with
	// the record count so far (test hook for replay-equivalence).
	afterAppend func(n int)
}

// journalPath is the log file inside a journal directory.
const journalFile = "journal.jsonl"

// OpenJournal opens (creating if needed) the journal in dir. The
// returned journal appends to any existing log, so the caller should
// replay it first via Coordinator.AttachJournal.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Path reports the journal file's location.
func (j *Journal) Path() string { return j.path }

// Records reports how many records this process has appended.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Close syncs and closes the log file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// errJournalFault is returned by appends past FailAfter.
var errJournalFault = fmt.Errorf("serve: journal fault point reached")

// append writes one record; sync forces an fsync (state transitions
// do, heartbeat cursor records don't).
func (j *Journal) append(rec journalRecord, sync bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal is closed")
	}
	if j.FailAfter > 0 && j.records >= j.FailAfter {
		return errJournalFault
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(blob, '\n')); err != nil {
		return err
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	j.records++
	if j.afterAppend != nil {
		j.afterAppend(j.records)
	}
	return nil
}

// journalRecord is one JSONL line. T selects the transition; the other
// fields are that transition's payload (unused ones stay empty).
type journalRecord struct {
	T        string         `json:"t"`
	Job      string         `json:"job,omitempty"`
	Spec     *JobSpec       `json:"spec,omitempty"`
	Lease    string         `json:"lease,omitempty"`
	Cell     int            `json:"cell,omitempty"`
	Victim   int            `json:"victim,omitempty"`
	Worker   string         `json:"worker,omitempty"`
	Nonce    string         `json:"nonce,omitempty"`
	Cursor   int            `json:"cursor,omitempty"`
	Mid      int            `json:"mid,omitempty"`
	End      int            `json:"end,omitempty"`
	Runs     int            `json:"runs,omitempty"`
	Findings []soak.Finding `json:"findings,omitempty"`
	Rows     []BenchRow     `json:"rows,omitempty"`
	Msg      string         `json:"msg,omitempty"`
	// Snap / Ms carry a lease's metrics accumulator and its wall-clock
	// timestamp on hb/complete/release records, so replay restores the
	// per-cell snapshots and the coordinator's time-series ring exactly.
	Snap *metrics.Snapshot `json:"snap,omitempty"`
	Ms   int64             `json:"ms,omitempty"`
}

// Record type tags.
const (
	recSubmit   = "submit"
	recLease    = "lease"
	recHB       = "hb"
	recSteal    = "steal"
	recComplete = "complete"
	recFail     = "fail"
	recRelease  = "release"
	recExpire   = "expire"
	recShutdown = "shutdown"
)

// ReplayStats summarizes a journal replay.
type ReplayStats struct {
	// Records is how many journal records were applied.
	Records int
	// Jobs is the number of jobs recovered.
	Jobs int
	// PendingCells / LiveLeases describe the recovered wavefront.
	PendingCells int
	LiveLeases   int
	// CleanShutdown reports whether the log ends with a drain marker
	// (false means the previous coordinator crashed mid-campaign).
	CleanShutdown bool
}

// AttachJournal replays the journal's existing records into the
// coordinator — which must be freshly constructed — then makes every
// future state transition append to it. Recovered leases get a fresh
// TTL from now, so workers that survived the coordinator reconnect
// through their existing lease IDs on their next heartbeat, and
// workers that died expire and requeue as usual.
func (c *Coordinator) AttachJournal(j *Journal) (ReplayStats, error) {
	var st ReplayStats
	rf, err := os.Open(j.path)
	if err != nil {
		return st, fmt.Errorf("serve: journal replay: %w", err)
	}
	defer rf.Close()

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.jobs) != 0 || c.journal != nil {
		return st, fmt.Errorf("serve: AttachJournal needs a fresh coordinator")
	}
	c.replaying = true
	defer func() { c.replaying = false }()

	sc := bufio.NewScanner(rf)
	sc.Buffer(make([]byte, 0, 1<<20), 256<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A torn final line is the expected signature of a crash
			// mid-append; anything followed by more records is real
			// corruption.
			if tornTail(sc) {
				break
			}
			return st, fmt.Errorf("serve: journal record %d: %w", line, err)
		}
		st.CleanShutdown = rec.T == recShutdown
		if err := c.applyLocked(rec); err != nil {
			return st, fmt.Errorf("serve: journal record %d (%s): %w", line, rec.T, err)
		}
		st.Records++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("serve: journal replay: %w", err)
	}
	c.journal = j
	j.mu.Lock()
	j.records = st.Records
	j.mu.Unlock()

	st.Jobs = len(c.jobs)
	st.LiveLeases = len(c.leases)
	for _, cl := range c.queue {
		if cl.state == cellPending && cl.job.failed == "" {
			st.PendingCells++
		}
	}
	return st, nil
}

// tornTail reports whether the scanner is at the journal's end — the
// undecodable record is the torn last line of a crash, not corruption
// in the middle of the log.
func tornTail(sc *bufio.Scanner) bool {
	return !sc.Scan()
}

// applyLocked replays one journal record against the coordinator
// state. It mirrors exactly what the live mutation paths do, minus
// worker bookkeeping (worker stats are ephemeral and not journaled).
func (c *Coordinator) applyLocked(rec journalRecord) error {
	switch rec.T {
	case recSubmit:
		if rec.Spec == nil {
			return fmt.Errorf("submit without spec")
		}
		j := c.buildJobLocked(rec.Job, *rec.Spec)
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
		c.queue = append(c.queue, j.cells...)
		if key := rec.Spec.SubmitKey; key != "" {
			c.submitted[key] = j.id
		}
		var n int
		if _, err := fmt.Sscanf(rec.Job, "job-%d", &n); err == nil {
			c.nextJob = max(c.nextJob, n)
		}
	case recSteal:
		j, ok := c.jobs[rec.Job]
		if !ok {
			return fmt.Errorf("steal on unknown job %q", rec.Job)
		}
		if rec.Victim >= len(j.cells) {
			return fmt.Errorf("steal victim cell %d out of range", rec.Victim)
		}
		victim := j.cells[rec.Victim]
		stolen := &cell{
			job: j, id: len(j.cells), kind: "soak",
			start: rec.Mid, end: victim.end, cursor: rec.Mid, liveCursor: rec.Mid,
		}
		if stolen.id != rec.Cell {
			return fmt.Errorf("steal produced cell %d, journal says %d", stolen.id, rec.Cell)
		}
		victim.end = rec.Mid
		j.cells = append(j.cells, stolen)
		// The live path hands the stolen cell straight to the thief;
		// on replay the following lease record does that. Queue it so
		// a crash right after the steal cannot strand it (stale queue
		// entries for non-pending cells are skipped at lease time).
		c.queue = append(c.queue, stolen)
	case recLease:
		j, ok := c.jobs[rec.Job]
		if !ok {
			return fmt.Errorf("lease on unknown job %q", rec.Job)
		}
		if rec.Cell >= len(j.cells) {
			return fmt.Errorf("lease cell %d out of range", rec.Cell)
		}
		cl := j.cells[rec.Cell]
		c.grantLocked(cl, rec.Lease, rec.Worker, rec.Nonce)
		var n int
		if _, err := fmt.Sscanf(rec.Lease, "lease-%d", &n); err == nil {
			c.nextLease = max(c.nextLease, n)
		}
	case recHB:
		if cl, ok := c.leases[rec.Lease]; ok {
			cl.liveCursor = rec.Cursor
			cl.liveRuns = rec.Runs
			cl.liveFindings = rec.Findings
			cl.expiry = c.now().Add(c.leaseTTL)
			if rec.Snap != nil {
				cl.liveSnap = rec.Snap
				c.appendSampleLocked(rec.Ms, rec.Worker, cl, rec.Snap)
			}
		}
	case recComplete:
		cl, ok := c.leases[rec.Lease]
		if !ok {
			return fmt.Errorf("complete on unknown lease %q", rec.Lease)
		}
		c.completeLocked(cl, rec.Lease, rec.Worker, rec.Ms, rec.Runs, rec.Findings, rec.Rows, rec.Snap)
	case recRelease:
		if cl, ok := c.leases[rec.Lease]; ok {
			delete(c.leases, rec.Lease)
			cl.liveCursor = rec.Cursor
			cl.liveRuns = rec.Runs
			cl.liveFindings = rec.Findings
			if rec.Snap != nil {
				cl.liveSnap = rec.Snap
			}
			c.requeueLocked(cl)
		}
	case recFail:
		if cl, ok := c.leases[rec.Lease]; ok {
			delete(c.leases, rec.Lease)
			c.requeueLocked(cl)
			c.strikeLocked(cl, rec.Msg)
		}
	case recExpire:
		if cl, ok := c.leases[rec.Lease]; ok {
			delete(c.leases, rec.Lease)
			c.requeueLocked(cl)
			c.strikeLocked(cl, "lease expired")
		}
	case recShutdown:
		// Informational: the previous coordinator drained cleanly.
	default:
		return fmt.Errorf("unknown record type %q", rec.T)
	}
	return nil
}

// journalAppend appends a record unless the coordinator is replaying
// or journal-less. An append failure is remembered (JournalErr) but
// does not block the fleet: the coordinator keeps serving from memory
// and the operator sees the error on /api/status.
func (c *Coordinator) journalAppend(rec journalRecord, sync bool) {
	if c.journal == nil || c.replaying {
		return
	}
	if err := c.journal.append(rec, sync); err != nil && c.journalErr == nil {
		c.journalErr = err
	}
}

// JournalErr reports the first journal append failure, if any.
func (c *Coordinator) JournalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journalErr
}

// Drain stops leasing new cells and waits until every in-flight lease
// completes, is released, or TTL-expires — heartbeats, completions and
// the dashboard keep being served meanwhile. When the last lease is
// gone it journals a clean-shutdown marker and returns nil; if ctx
// expires first the remaining leases stay journaled as live (the next
// replay recovers them) and ctx's error is returned.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		c.mu.Lock()
		c.reap()
		live := len(c.leases)
		c.mu.Unlock()
		if live == 0 {
			c.mu.Lock()
			c.journalAppend(journalRecord{T: recShutdown}, true)
			c.mu.Unlock()
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Draining reports whether the coordinator has stopped leasing.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}
