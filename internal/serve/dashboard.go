package serve

// dashboardHTML is the self-contained live dashboard served at "/":
// no external assets, just a fetch loop over /api/status rendering the
// job wavefront (one block per cell, colored by state), per-worker
// throughput and the deduped findings feed. A saved copy of the page
// (curl / > dashboard.html) remains a readable snapshot — CI archives
// one per fleet run.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pok-serve fleet</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 14px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .2rem .7rem .2rem 0; border-bottom: 1px solid #8884; }
  .wave { display: flex; flex-wrap: wrap; gap: 2px; margin: .4rem 0; }
  .cell { height: 18px; min-width: 14px; border-radius: 3px; position: relative;
          background: #8883; overflow: hidden; }
  .cell .fill { position: absolute; inset: 0; width: 0; background: #4a90d9; }
  .cell.done .fill { width: 100%; background: #3cb371; }
  .cell.finding { outline: 2px solid #d9534f; outline-offset: -2px; }
  .muted { opacity: .65; } .bad { color: #d9534f; } .ok { color: #3cb371; }
  #err { color: #d9534f; }
</style>
</head>
<body>
<h1>pok-serve fleet <span id="meta" class="muted"></span></h1>
<div id="err"></div>
<h2>Workers</h2>
<div id="workers" class="muted">none yet</div>
<h2>Jobs</h2>
<div id="jobs" class="muted">none yet</div>
<script>
function esc(s) { return String(s).replace(/[&<>"]/g,
  ch => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[ch])); }

function renderWorkers(ws) {
  if (!ws || !ws.length) return '<span class="muted">none yet</span>';
  let h = '<table><tr><th>worker</th><th>cells</th><th>programs</th>' +
          '<th>prog/s</th><th>findings</th><th>retries</th><th>last seen</th></tr>';
  for (const w of ws) {
    const s = w.stats || {};
    const flaky = (s.rpc_retries || 0) + (s.heartbeat_errors || 0);
    h += '<tr><td>' + esc(w.name) + '</td><td>' + w.cells + '</td><td>' +
         w.programs + '</td><td>' + w.programs_per_sec.toFixed(2) + '</td><td>' +
         (w.findings ? '<span class="bad">' + w.findings + '</span>' : '0') +
         '</td><td' + (flaky ? '' : ' class="muted"') + '>' + (s.rpc_retries || 0) +
         (s.heartbeat_errors ? ' <span class="bad">(' + s.heartbeat_errors + ' hb)</span>' : '') +
         '</td><td class="muted">' + (w.idle_ms / 1000).toFixed(1) + 's ago</td></tr>';
  }
  return h + '</table>';
}

function renderJob(j) {
  let h = '<h3>' + esc(j.id) + ' <span class="muted">' + esc(j.kind) + '</span> ' +
          (j.state === 'done' ? '<span class="ok">done</span>' :
           j.state === 'failed' ? '<span class="bad">failed: ' + esc(j.failed || '') + '</span>' :
           esc(j.state)) +
          ' <span class="muted">' + j.done + '/' + j.programs + ' programs, ' +
          j.runs + ' runs, ' + j.findings + ' findings</span></h3>';
  h += '<div class="wave">';
  for (const c of (j.cells || [])) {
    const span = Math.max(1, c.end - c.start);
    const pct = Math.min(100, 100 * (c.cursor - c.start) / span);
    h += '<div class="cell ' + esc(c.state) + (c.findings ? ' finding' : '') +
         '" style="flex-grow:' + span + '" title="cell ' + c.id + ' [' + c.start +
         ',' + c.end + ') ' + esc(c.state) +
         (c.worker ? ' @' + esc(c.worker) : '') + '"><div class="fill" style="width:' +
         pct + '%"></div></div>';
  }
  h += '</div>';
  if (j.deduped && j.deduped.length) {
    h += '<table><tr><th>signature</th><th>count</th></tr>';
    for (const d of j.deduped) {
      h += '<tr><td class="bad">' + esc(d.sig.kind) +
           (d.sig.field ? '/' + esc(d.sig.field) : '') + '</td><td>' + d.count + '</td></tr>';
    }
    h += '</table>';
  }
  if (j.feed && j.feed.length) {
    h += '<details><summary>' + j.feed.length + ' findings</summary><table>' +
         '<tr><th>prog</th><th>cfg</th><th>sched</th><th>kind</th><th>detail</th></tr>';
    for (const f of j.feed) {
      h += '<tr><td>p' + f.program + '</td><td>' + esc(f.config) + '</td><td>' +
           esc(f.scheduler) + '</td><td class="bad">' + esc(f.kind) +
           (f.field ? '/' + esc(f.field) : '') + '</td><td class="muted">' +
           esc(f.detail || '') + '</td></tr>';
    }
    h += '</table></details>';
  }
  return h;
}

async function tick() {
  try {
    const st = await (await fetch('/api/status')).json();
    document.getElementById('err').textContent =
      st.journal_error ? 'journal error: ' + st.journal_error : '';
    document.getElementById('meta').textContent =
      'queue ' + st.queue_depth + ' · lease ' + st.lease_ttl_ms + 'ms' +
      (st.draining ? ' · DRAINING' : '');
    document.getElementById('workers').innerHTML = renderWorkers(st.workers);
    document.getElementById('jobs').innerHTML =
      (st.jobs && st.jobs.length) ? st.jobs.map(renderJob).join('')
                                  : '<span class="muted">none yet</span>';
  } catch (e) {
    document.getElementById('err').textContent = 'status fetch failed: ' + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
