package serve

// dashboardHTML is the self-contained live dashboard served at "/":
// no external assets, just a fetch loop over /api/status and
// /api/metrics rendering the job wavefront (one block per cell,
// colored by state, heat-tinted by recent progress), a streaming
// CPI-stack bar per config, per-worker throughput sparklines and the
// deduped findings feed. Fetches use cache:'no-cache' so the browser
// revalidates with If-None-Match and idle fleets answer 304 from the
// coordinator's ETag. A saved copy of the page (curl / >
// dashboard.html) remains a readable snapshot — CI archives one per
// fleet run.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pok-serve fleet</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 14px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .2rem .7rem .2rem 0; border-bottom: 1px solid #8884; }
  .wave { display: flex; flex-wrap: wrap; gap: 2px; margin: .4rem 0; }
  .cell { height: 18px; min-width: 14px; border-radius: 3px; position: relative;
          background: #8883; overflow: hidden; }
  .cell .fill { position: absolute; inset: 0; width: 0; background: #4a90d9; }
  .cell.hot .fill { background: #e8a33d; }
  .cell.done .fill { width: 100%; background: #3cb371; }
  .cell.finding { outline: 2px solid #d9534f; outline-offset: -2px; }
  .muted { opacity: .65; } .bad { color: #d9534f; } .ok { color: #3cb371; }
  #err { color: #d9534f; }
  .badge { display: inline-block; padding: 0 .45em; border-radius: .6em;
           background: #d9534f; color: #fff; font-size: .85em; margin-left: .4em; }
  .cpibar { display: flex; height: 16px; border-radius: 3px; overflow: hidden;
            margin: .15rem 0 .3rem; background: #8882; }
  .cpibar div { height: 100%; }
  .cpirow { margin: .2rem 0; }
  .legend span { display: inline-block; margin-right: .8em; white-space: nowrap; }
  .swatch { display: inline-block; width: .8em; height: .8em; border-radius: 2px;
            margin-right: .25em; vertical-align: -.05em; }
  svg.spark { vertical-align: middle; }
  svg.spark polyline { fill: none; stroke: #4a90d9; stroke-width: 1.5; }
</style>
</head>
<body>
<h1>pok-serve fleet <span id="meta" class="muted"></span><span id="badges"></span></h1>
<div id="err"></div>
<h2>Workers</h2>
<div id="workers" class="muted">none yet</div>
<h2>Jobs</h2>
<div id="jobs" class="muted">none yet</div>
<script>
function esc(s) { return String(s).replace(/[&<>"]/g,
  ch => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[ch])); }

// CPI-stack component order and palette (profile.Component order).
const COMPS = ['base','fetch','window','slice','replay','lsq','dcache','branch','dram'];
const PALETTE = ['#3cb371','#4a90d9','#8884d8','#e8a33d','#d9534f',
                 '#b5651d','#9acd32','#d96fd9','#708090'];

// prevCursor remembers each cell's cursor from the previous poll so
// the wavefront can heat-tint cells that advanced since then.
const prevCursor = new Map();

function sparkline(points, w, h) {
  if (points.length < 2) return '';
  const peak = Math.max(...points, 1e-9);
  const pts = points.map((v, i) =>
    (i * w / (points.length - 1)).toFixed(1) + ',' +
    (h - 2 - (h - 4) * v / peak).toFixed(1)).join(' ');
  return '<svg class="spark" width="' + w + '" height="' + h + '">' +
         '<polyline points="' + pts + '"/></svg>';
}

// workerSpark builds a throughput series (Minst/s) for one worker from
// consecutive sample deltas of the same job/cell lease.
function workerSpark(name, samples) {
  const series = [];
  const last = new Map();
  for (const s of samples || []) {
    if (s.worker !== name) continue;
    const key = s.job + '/' + s.cell;
    const p = last.get(key);
    last.set(key, s);
    if (!p || s.insts < p.insts || s.ms <= p.ms) continue;
    series.push((s.insts - p.insts) / ((s.ms - p.ms) / 1000) / 1e6);
  }
  return sparkline(series.slice(-40), 120, 18);
}

function renderWorkers(ws, samples) {
  if (!ws || !ws.length) return '<span class="muted">none yet</span>';
  let h = '<table><tr><th>worker</th><th>cells</th><th>programs</th>' +
          '<th>prog/s</th><th>Minst/s</th><th>throughput</th>' +
          '<th>findings</th><th>retries</th><th>last seen</th></tr>';
  for (const w of ws) {
    const s = w.stats || {};
    const m = w.metrics || {};
    const flaky = (s.rpc_retries || 0) + (s.heartbeat_errors || 0);
    h += '<tr><td>' + esc(w.name) + '</td><td>' + w.cells + '</td><td>' +
         w.programs + '</td><td>' + w.programs_per_sec.toFixed(2) + '</td><td>' +
         (m.minst_per_sec ? m.minst_per_sec.toFixed(2) : '-') + '</td><td>' +
         workerSpark(w.name, samples) + '</td><td>' +
         (w.findings ? '<span class="bad">' + w.findings + '</span>' : '0') +
         '</td><td' + (flaky ? '' : ' class="muted"') + '>' + (s.rpc_retries || 0) +
         (s.heartbeat_errors ? ' <span class="bad">(' + s.heartbeat_errors + ' hb)</span>' : '') +
         '</td><td class="muted">' + ((Date.now() - w.last_seen_ms) / 1000).toFixed(1) + 's ago</td></tr>';
  }
  return h + '</table>';
}

function renderCPIStacks(snap) {
  if (!snap || !snap.stacks) return '';
  let h = '<div class="cpistacks">';
  for (const cfg of Object.keys(snap.stacks).sort()) {
    const st = snap.stacks[cfg];
    const total = st.cycles || 1;
    const cpi = st.insts ? (st.cycles / st.insts).toFixed(3) : '-';
    h += '<div class="cpirow"><span>' + esc(cfg) + ' <span class="muted">CPI ' +
         cpi + (st.lossy ? ' (lossy)' : '') + '</span></span><div class="cpibar">';
    (st.components || []).forEach((c, i) => {
      if (c <= 0) return;
      h += '<div style="width:' + (100 * c / total) + '%;background:' + PALETTE[i] +
           '" title="' + COMPS[i] + ': ' + c + ' cycles (' +
           (100 * c / total).toFixed(1) + '%)"></div>';
    });
    h += '</div></div>';
  }
  h += '<div class="legend muted">' + COMPS.map((n, i) =>
    '<span><span class="swatch" style="background:' + PALETTE[i] + '"></span>' +
    n + '</span>').join('') + '</div></div>';
  return h;
}

function renderJob(j, jm) {
  let h = '<h3>' + esc(j.id) + ' <span class="muted">' + esc(j.kind) + '</span> ' +
          (j.state === 'done' ? '<span class="ok">done</span>' :
           j.state === 'failed' ? '<span class="bad">failed: ' + esc(j.failed || '') + '</span>' :
           esc(j.state)) +
          ' <span class="muted">' + j.done + '/' + j.programs + ' programs, ' +
          j.runs + ' runs, ' + j.findings + ' findings</span></h3>';
  h += '<div class="wave">';
  for (const c of (j.cells || [])) {
    const span = Math.max(1, c.end - c.start);
    const pct = Math.min(100, 100 * (c.cursor - c.start) / span);
    const key = j.id + '/' + c.id;
    const hot = prevCursor.has(key) && c.cursor > prevCursor.get(key);
    prevCursor.set(key, c.cursor);
    h += '<div class="cell ' + esc(c.state) + (hot ? ' hot' : '') +
         (c.findings ? ' finding' : '') +
         '" style="flex-grow:' + span + '" title="cell ' + c.id + ' [' + c.start +
         ',' + c.end + ') ' + esc(c.state) +
         (c.worker ? ' @' + esc(c.worker) : '') + '"><div class="fill" style="width:' +
         pct + '%"></div></div>';
  }
  h += '</div>';
  if (jm && jm.snapshot) h += renderCPIStacks(jm.snapshot);
  if (j.deduped && j.deduped.length) {
    h += '<table><tr><th>signature</th><th>count</th></tr>';
    for (const d of j.deduped) {
      h += '<tr><td class="bad">' + esc(d.sig.kind) +
           (d.sig.field ? '/' + esc(d.sig.field) : '') + '</td><td>' + d.count + '</td></tr>';
    }
    h += '</table>';
  }
  if (j.feed && j.feed.length) {
    h += '<details><summary>' + j.feed.length + ' findings</summary><table>' +
         '<tr><th>prog</th><th>cfg</th><th>sched</th><th>kind</th><th>detail</th></tr>';
    for (const f of j.feed) {
      h += '<tr><td>p' + f.program + '</td><td>' + esc(f.config) + '</td><td>' +
           esc(f.scheduler) + '</td><td class="bad">' + esc(f.kind) +
           (f.field ? '/' + esc(f.field) : '') + '</td><td class="muted">' +
           esc(f.detail || '') + '</td></tr>';
    }
    h += '</table></details>';
  }
  return h;
}

async function tick() {
  try {
    const st = await (await fetch('/api/status', {cache: 'no-cache'})).json();
    let mx = {};
    try { mx = await (await fetch('/api/metrics', {cache: 'no-cache'})).json(); }
    catch (e) { /* metrics endpoint optional for old coordinators */ }
    document.getElementById('err').textContent =
      st.journal_error ? 'journal error: ' + st.journal_error : '';
    let badges = '';
    if (st.journal_error) badges += '<span class="badge">journal error</span>';
    if (st.events_dropped) badges +=
      '<span class="badge">' + st.events_dropped + ' events dropped</span>';
    document.getElementById('badges').innerHTML = badges;
    document.getElementById('meta').textContent =
      'queue ' + st.queue_depth + ' · lease ' + st.lease_ttl_ms + 'ms' +
      (st.build ? ' · ' + (st.build.git_sha || '') + ' ' + (st.build.go_version || '') : '') +
      (st.draining ? ' · DRAINING' : '');
    const wmetrics = new Map((mx.workers || []).map(w => [w.name, w]));
    for (const w of (st.workers || [])) w.metrics = wmetrics.get(w.name);
    document.getElementById('workers').innerHTML =
      renderWorkers(st.workers, mx.samples);
    const jmetrics = new Map((mx.jobs || []).map(j => [j.id, j]));
    document.getElementById('jobs').innerHTML =
      (st.jobs && st.jobs.length) ?
        st.jobs.map(j => renderJob(j, jmetrics.get(j.id))).join('')
        : '<span class="muted">none yet</span>';
  } catch (e) {
    document.getElementById('err').textContent = 'status fetch failed: ' + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
